(* Unit tests for the core facade: configuration, metrics arithmetic,
   experiment sweeps, and report rendering. *)

open Acsi_core
open Acsi_policy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let small_program () =
  let open Acsi_lang.Dsl in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "S" ~fields:[]
           [ static_meth "inc" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ] ];
       ]
       [
         let_ "s" (i 0);
         for_ "k" (i 0) (i 150000) [ let_ "s" (call "S" "inc" [ v "s" ]) ];
         print (v "s");
       ])

let test_config_with_policy () =
  let cfg = Config.default ~policy:Policy.Context_insensitive in
  let cfg' = Config.with_policy cfg (Policy.Fixed 4) in
  check_bool "policy replaced" true
    (cfg'.Config.aos.Acsi_aos.System.policy = Policy.Fixed 4);
  check_int "other fields preserved" cfg.Config.sample_period
    cfg'.Config.sample_period

let test_checksum () =
  check_bool "order sensitive" true
    (Metrics.checksum [ 1; 2 ] <> Metrics.checksum [ 2; 1 ]);
  check_int "deterministic" (Metrics.checksum [ 5; 6; 7 ])
    (Metrics.checksum [ 5; 6; 7 ]);
  check_int "empty" 0 (Metrics.checksum [])

let run policy =
  (Runtime.run (Config.default ~policy) (small_program ())).Runtime.metrics

let test_metrics_of_run () =
  let m = run Policy.Context_insensitive in
  check_bool "total = app + aos" true
    (m.Metrics.total_cycles = m.Metrics.app_cycles + m.Metrics.aos_cycles);
  check_bool "components sum to aos" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 m.Metrics.component_cycles
    = m.Metrics.aos_cycles);
  check_bool "instructions counted" true (m.Metrics.instructions > 0);
  check_int "classes" 2 m.Metrics.classes_loaded;
  (* main + S.inc were executed *)
  check_int "methods compiled" 2 m.Metrics.methods_compiled

let test_metrics_percentages () =
  let base = run Policy.Context_insensitive in
  check_float "self speedup is zero" 0.0 (Metrics.speedup_pct ~baseline:base base);
  check_float "self code change is zero" 0.0
    (Metrics.code_size_change_pct ~baseline:base base);
  let doubled = { base with Metrics.total_cycles = base.Metrics.total_cycles * 2 } in
  check_float "half speed" (-50.0) (Metrics.speedup_pct ~baseline:base doubled);
  let halved = { base with Metrics.opt_code_bytes = base.Metrics.opt_code_bytes / 2 } in
  check_bool "code shrank" true
    (Metrics.code_size_change_pct ~baseline:base halved < -49.0)

let test_component_pct_sums_to_overhead () =
  let m = run (Policy.Fixed 3) in
  let sum =
    List.fold_left
      (fun acc (c, _) -> acc +. Metrics.component_pct m c)
      0.0 m.Metrics.component_cycles
  in
  let overhead_pct =
    100.0 *. float_of_int m.Metrics.aos_cycles /. float_of_int m.Metrics.total_cycles
  in
  check_bool "component percentages sum to overhead" true
    (Float.abs (sum -. overhead_pct) < 1e-6)

let test_harmonic_mean () =
  (* hm of identical values is the value *)
  check_float "constant" 10.0
    (Experiment.harmonic_mean_pct (fun _ -> 10.0) [ "a"; "b"; "c" ]);
  check_float "empty" 0.0 (Experiment.harmonic_mean_pct (fun _ -> 10.0) []);
  (* hm of ratios 1.25 and 0.8 is below the arithmetic mean of +25/-20 *)
  let v = function "a" -> 25.0 | _ -> -20.0 in
  check_bool "pulls toward the slow one" true
    (Experiment.harmonic_mean_pct v [ "a"; "b" ] < 2.5)

let test_sweep_and_report () =
  let benches = [ { Experiment.name = "tiny"; program = small_program () } ] in
  let cfg = Config.default ~policy:Policy.Context_insensitive in
  let sweep =
    Experiment.run_sweep cfg ~benches ~policies:[ Policy.Fixed 2; Policy.Fixed 3 ]
  in
  check_bool "baseline recorded" true
    ((Experiment.baseline sweep ~bench:"tiny").Metrics.total_cycles > 0);
  check_bool "point found" true
    (Experiment.find sweep ~bench:"tiny" ~policy:(Policy.Fixed 2) <> None);
  check_bool "missing point" true
    (Experiment.find sweep ~bench:"tiny" ~policy:(Policy.Fixed 5) = None);
  let render f =
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    f fmt sweep;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  check_bool "table1 mentions the bench" true (contains (render Report.table1) "tiny");
  check_bool "fig4 mentions harMean" true (contains (render Report.figure4) "harMean");
  check_bool "fig5 mentions code size" true (contains (render Report.figure5) "code size");
  check_bool "fig6 mentions components" true
    (contains (render Report.figure6) "CompilationThread");
  check_bool "summary mentions paper" true (contains (render Report.summary) "paper")

let test_run_no_aos_matches_run_output () =
  let program = small_program () in
  let cfg = Config.default ~policy:(Policy.Fixed 3) in
  let plain = Runtime.run_no_aos cfg program in
  let adaptive = Runtime.run cfg program in
  Alcotest.(check (list int))
    "same observable output"
    (Acsi_vm.Interp.output plain)
    (Acsi_vm.Interp.output adaptive.Runtime.vm)

let test_summarize_bounds () =
  let benches = [ { Experiment.name = "tiny"; program = small_program () } ] in
  let cfg = Config.default ~policy:Policy.Context_insensitive in
  let sweep = Experiment.run_sweep cfg ~benches ~policies:[ Policy.Fixed 2 ] in
  let s = Experiment.summarize sweep in
  check_bool "min <= mean <= max" true
    (s.Experiment.min_speedup_pct <= s.Experiment.mean_speedup_pct
    && s.Experiment.mean_speedup_pct <= s.Experiment.max_speedup_pct)

let suite =
  [
    Alcotest.test_case "config with_policy" `Quick test_config_with_policy;
    Alcotest.test_case "output checksum" `Quick test_checksum;
    Alcotest.test_case "metrics of a run" `Quick test_metrics_of_run;
    Alcotest.test_case "metrics percentages" `Quick test_metrics_percentages;
    Alcotest.test_case "component pct sums" `Quick
      test_component_pct_sums_to_overhead;
    Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
    Alcotest.test_case "sweep and reports" `Quick test_sweep_and_report;
    Alcotest.test_case "AOS preserves output via runtime" `Quick
      test_run_no_aos_matches_run_output;
    Alcotest.test_case "summary bounds" `Quick test_summarize_bounds;
  ]
