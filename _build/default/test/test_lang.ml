(* Unit tests for the mini-language compiler: construct semantics through
   execution, and diagnostics for every resolution error class. *)

open Acsi_lang

let check_int = Alcotest.(check int)
let check_out = Alcotest.(check (list int))

(* Compile a main body (plus optional classes/globals) and return the
   program's output. *)
let run ?(classes = []) ?(globals = []) main =
  let program = Compile.prog (Dsl.prog ~globals classes main) in
  let vm = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run vm;
  Acsi_vm.Interp.output vm

let expect_error ?(classes = []) ?(globals = []) main fragment =
  match run ~classes ~globals main with
  | _ -> Alcotest.failf "expected a compile error mentioning %S" fragment
  | exception Compile.Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg fragment)
        true (contains msg fragment)

(* --- expression semantics --- *)

let test_arithmetic () =
  let open Dsl in
  check_out "arith"
    [ 7; -1; 12; 2; 1; 6; 14; 5; 16; 1 ]
    (run
       [
         print (add (i 3) (i 4));
         print (sub (i 3) (i 4));
         print (mul (i 3) (i 4));
         print (div (i 11) (i 4));
         print (rem (i 9) (i 4));
         print (band (i 7) (i 14));
         print (bor (i 6) (i 12));
         print (bxor (i 3) (i 6));
         print (shl (i 1) (i 4));
         print (shr (i 3) (i 1));
       ])

let test_neg_not () =
  let open Dsl in
  check_out "neg/not" [ -5; 0; 1 ]
    (run [ print (neg (i 5)); print (not_ (i 3)); print (not_ (i 0)) ])

let test_comparisons () =
  let open Dsl in
  check_out "cmp" [ 1; 0; 1; 1; 0; 1 ]
    (run
       [
         print (eq (i 3) (i 3));
         print (ne (i 3) (i 3));
         print (lt (i 2) (i 3));
         print (le (i 3) (i 3));
         print (gt (i 2) (i 3));
         print (ge (i 3) (i 3));
       ])

(* Short-circuit evaluation must skip the second operand's side effects. *)
let test_short_circuit () =
  let open Dsl in
  let bump_and_return ret_v =
    [
      Dsl.static_meth "bump" [ "r" ] ~returns:true
        [ setg "hits" (add (g "hits") (i 1)); ret (i ret_v) ];
    ]
  in
  let classes = [ Dsl.cls "E" ~fields:[] (bump_and_return 1) ] in
  check_out "and skips rhs" [ 0; 0 ]
    (run ~classes ~globals:[ "hits" ]
       [
         print (and_ (i 0) (call "E" "bump" [ i 0 ]));
         print (g "hits");
       ]);
  check_out "or skips rhs" [ 1; 0 ]
    (run ~classes ~globals:[ "hits" ]
       [
         print (or_ (i 1) (call "E" "bump" [ i 0 ]));
         print (g "hits");
       ]);
  check_out "and evaluates rhs when needed" [ 1; 1 ]
    (run ~classes ~globals:[ "hits" ]
       [
         print (and_ (i 1) (call "E" "bump" [ i 0 ]));
         print (g "hits");
       ])

let test_cond_expression () =
  let open Dsl in
  check_out "cond" [ 10; 20 ]
    (run
       [
         print (cond (i 1) (i 10) (i 20));
         print (cond (i 0) (i 10) (i 20));
       ])

let test_control_flow () =
  let open Dsl in
  check_out "while" [ 10 ]
    (run
       [
         let_ "s" (i 0);
         let_ "k" (i 0);
         while_ (lt (v "k") (i 5))
           [ let_ "s" (add (v "s") (v "k")); let_ "k" (add (v "k") (i 1)) ];
         print (v "s");
       ]);
  check_out "for" [ 45 ]
    (run
       [
         let_ "s" (i 0);
         for_ "k" (i 0) (i 10) [ let_ "s" (add (v "s") (v "k")) ];
         print (v "s");
       ]);
  check_out "nested if" [ 2 ]
    (run
       [
         let_ "x" (i 7);
         if_ (gt (v "x") (i 10))
           [ print (i 1) ]
           [ if_ (gt (v "x") (i 5)) [ print (i 2) ] [ print (i 3) ] ];
       ])

let test_arrays () =
  let open Dsl in
  check_out "arrays" [ 5; 42; 0 ]
    (run
       [
         let_ "a" (arr_new (i 5));
         print (arr_len (v "a"));
         arr_set (v "a") (i 2) (i 42);
         print (arr_get (v "a") (i 2));
         print (arr_get (v "a") (i 3));
       ])

let test_objects_fields_inheritance () =
  let open Dsl in
  let classes =
    [
      cls "P" ~fields:[ "a" ]
        [
          meth "init" [ "a" ] ~returns:false [ set_thisf "a" (v "a") ];
          meth "describe" [] ~returns:true [ ret (thisf "a") ];
        ];
      cls "C" ~parent:"P" ~fields:[ "b" ]
        [
          meth "init2" [ "a"; "b" ] ~returns:false
            [ set_thisf "a" (v "a"); set_thisf "b" (v "b") ];
          meth "describe" [] ~returns:true
            [ ret (add (thisf "a") (thisf "b")) ];
        ];
    ]
  in
  check_out "override + inherited field" [ 5; 30; 1; 0; 1 ]
    (run ~classes
       [
         let_ "p" (new_ "P" [ i 5 ]);
         let_ "c" (new_ "C" []);
         expr (dcall (v "c") "C" "init2" [ i 10; i 20 ]);
         print (inv (v "p") "describe" []);
         print (inv (v "c") "describe" []);
         print (instof (v "c") "P");
         print (instof (v "p") "C");
         print (instof (v "c") "C");
       ])

let test_constructor_lookup_walks_up () =
  let open Dsl in
  let classes =
    [
      cls "P" ~fields:[ "x" ]
        [ meth "init" [ "x" ] ~returns:false [ set_thisf "x" (v "x") ] ];
      cls "C" ~parent:"P" ~fields:[] [];
    ]
  in
  check_out "inherited constructor" [ 9 ]
    (run ~classes
       [
         let_ "c" (new_ "C" [ i 9 ]);
         print (fld "P" (v "c") "x");
       ])

let test_arity_overloading () =
  let open Dsl in
  let classes =
    [
      cls "O" ~fields:[]
        [
          meth "f" [] ~returns:true [ ret (i 1) ];
          meth "f" [ "x" ] ~returns:true [ ret (add (v "x") (i 10)) ];
          meth "f" [ "x"; "y" ] ~returns:true [ ret (mul (v "x") (v "y")) ];
        ];
    ]
  in
  check_out "overloads dispatch by arity" [ 1; 15; 42 ]
    (run ~classes
       [
         let_ "o" (new_ "O" []);
         print (inv (v "o") "f" []);
         print (inv (v "o") "f" [ i 5 ]);
         print (inv (v "o") "f" [ i 6; i 7 ]);
       ])

let test_globals () =
  let open Dsl in
  check_out "globals" [ 0; 12 ]
    (run ~globals:[ "g1" ]
       [
         print (g "g1");
         setg "g1" (i 12);
         print (g "g1");
       ])

let test_recursion () =
  let open Dsl in
  let classes =
    [
      cls "R" ~fields:[]
        [
          static_meth "fib" [ "n" ] ~returns:true
            [
              if_ (lt (v "n") (i 2)) [ ret (v "n") ] [];
              ret
                (add
                   (call "R" "fib" [ sub (v "n") (i 1) ])
                   (call "R" "fib" [ sub (v "n") (i 2) ]));
            ];
        ];
    ]
  in
  check_out "fib" [ 55 ] (run ~classes [ print (call "R" "fib" [ i 10 ]) ])

(* --- diagnostics --- *)

let test_error_unknown_class () =
  Dsl.(expect_error [ let_ "x" (new_ "Nope" []) ] "unknown class")

let test_error_unknown_local () =
  Dsl.(expect_error [ print (v "nope") ] "unbound local")

let test_error_unknown_global () =
  Dsl.(expect_error [ print (g "nope") ] "unknown global")

let test_error_this_in_static () =
  Dsl.(expect_error [ print (Acsi_lang.Ast.This) ] "this outside")

let test_error_void_as_value () =
  let classes =
    Dsl.[ cls "E" ~fields:[] [ static_meth "v" [] ~returns:false [ retv ] ] ]
  in
  Dsl.(expect_error ~classes [ print (call "E" "v" []) ] "used as a value")

let test_error_arity_mismatch () =
  let classes =
    Dsl.
      [
        cls "E" ~fields:[]
          [ static_meth "f" [ "x" ] ~returns:true [ ret (v "x") ] ];
      ]
  in
  Dsl.(expect_error ~classes [ print (call "E" "f" []) ] "no static method")

let test_error_selector_conflict () =
  (* Same selector name/arity with conflicting result kinds. *)
  let classes =
    Dsl.
      [
        cls "A" ~fields:[] [ meth "f" [] ~returns:true [ ret (i 1) ] ];
        cls "B" ~fields:[] [ meth "f" [] ~returns:false [ retv ] ];
      ]
  in
  Dsl.(expect_error ~classes [ print (i 0) ] "disagrees")

let test_error_inheritance_cycle () =
  let classes =
    Dsl.
      [
        cls "A" ~parent:"B" ~fields:[] [];
        cls "B" ~parent:"A" ~fields:[] [];
      ]
  in
  Dsl.(expect_error ~classes [ print (i 0) ] "cycle")

let test_error_missing_field () =
  let classes = Dsl.[ cls "A" ~fields:[ "x" ] [] ] in
  Dsl.(
    expect_error ~classes
      [ let_ "a" (new_ "A" []); print (fld "A" (v "a") "y") ]
      "no field")

let test_error_value_return_in_void () =
  let classes =
    Dsl.[ cls "E" ~fields:[] [ static_meth "f" [] ~returns:false [ ret (i 1) ] ] ]
  in
  Dsl.(expect_error ~classes [ expr (call "E" "f" []) ] "returning a value")

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "neg and not" `Quick test_neg_not;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "short-circuit and/or" `Quick test_short_circuit;
    Alcotest.test_case "conditional expression" `Quick test_cond_expression;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "objects, fields, inheritance" `Quick
      test_objects_fields_inheritance;
    Alcotest.test_case "constructor lookup walks up" `Quick
      test_constructor_lookup_walks_up;
    Alcotest.test_case "arity overloading" `Quick test_arity_overloading;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "error: unknown class" `Quick test_error_unknown_class;
    Alcotest.test_case "error: unknown local" `Quick test_error_unknown_local;
    Alcotest.test_case "error: unknown global" `Quick test_error_unknown_global;
    Alcotest.test_case "error: this in static" `Quick test_error_this_in_static;
    Alcotest.test_case "error: void as value" `Quick test_error_void_as_value;
    Alcotest.test_case "error: arity mismatch" `Quick test_error_arity_mismatch;
    Alcotest.test_case "error: selector conflict" `Quick
      test_error_selector_conflict;
    Alcotest.test_case "error: inheritance cycle" `Quick
      test_error_inheritance_cycle;
    Alcotest.test_case "error: missing field" `Quick test_error_missing_field;
    Alcotest.test_case "error: value return in void" `Quick
      test_error_value_return_in_void;
  ]
