(* Richards: the whole-VM cross-validation oracle. The workload reports
   how many scheduling rounds ended with exactly the canonical
   implementation's counters (queueCount = 2322, holdCount = 928 at idle
   count 1000); any interpreter, front-end, inliner or peephole defect
   that perturbs semantics shows up as a mismatch. *)

open Acsi_core
open Acsi_policy

let check_bool = Alcotest.(check bool)

let rounds_ok vm =
  match Acsi_vm.Interp.output vm with
  | [ ok ] -> ok
  | other -> Alcotest.failf "unexpected output arity %d" (List.length other)

let test_baseline_matches_canonical () =
  let program = (Acsi_workloads.Workloads.find "richards").build ~scale:2 in
  let vm = Runtime.run_no_aos (Config.default ~policy:Policy.Context_insensitive) program in
  Alcotest.(check int) "both rounds canonical" 2 (rounds_ok vm)

let test_adaptive_system_matches_canonical () =
  let program = (Acsi_workloads.Workloads.find "richards").build ~scale:6 in
  List.iter
    (fun policy ->
      let result = Runtime.run (Config.default ~policy) program in
      Alcotest.(check int)
        ("canonical under " ^ Policy.to_string policy)
        6
        (rounds_ok result.Runtime.vm);
      check_bool "something was optimized" true
        (result.Runtime.metrics.Metrics.opt_methods > 0))
    [ Policy.Context_insensitive; Policy.Fixed 3; Policy.Hybrid_param_large 4 ]

let test_task_dispatch_is_polymorphic () =
  (* The task hierarchy's [run] is the hot megamorphic site: under a CS
     policy some of its targets get guard-inlined. *)
  let program = (Acsi_workloads.Workloads.find "richards").build ~scale:10 in
  let result = Runtime.run (Config.default ~policy:(Policy.Fixed 2)) program in
  check_bool "guards planted on task dispatch" true
    (result.Runtime.metrics.Metrics.guard_sites > 0);
  check_bool "guards executed" true
    (result.Runtime.metrics.Metrics.guard_hits > 0)

let suite =
  [
    Alcotest.test_case "baseline matches canonical counters" `Quick
      test_baseline_matches_canonical;
    Alcotest.test_case "adaptive system matches canonical counters" `Quick
      test_adaptive_system_matches_canonical;
    Alcotest.test_case "task dispatch exercises guards" `Quick
      test_task_dispatch_is_polymorphic;
  ]
