(* Property tests over randomly generated programs: the front end always
   produces verifiable bytecode, and neither forced inline expansion nor
   the full adaptive system may change a program's observable output. *)

open Acsi_bytecode
open Acsi_lang
open Acsi_core
module Gen = QCheck.Gen

(* --- a generator of random mini-language programs ---

   Fixed harness: classes A and B (B extends A) with a polymorphic [m],
   and a static [apply] dispatching on its argument; generated statements
   mix arithmetic, control flow, locals, and calls through the harness, so
   optimized runs exercise static, direct, and guarded-virtual inlining. *)

let harness_classes =
  let open Dsl in
  [
    cls "A" ~fields:[ "bias" ]
      [
        meth "init" [ "b" ] ~returns:false [ set_thisf "bias" (v "b") ];
        meth "m" [ "x" ] ~returns:true [ ret (add (v "x") (thisf "bias")) ];
      ];
    cls "B" ~parent:"A" ~fields:[]
      [
        meth "m" [ "x" ] ~returns:true
          [ ret (mul (add (v "x") (thisf "bias")) (i 2)) ];
      ];
    cls "Harness" ~fields:[]
      [
        static_meth "apply" [ "o"; "x" ] ~returns:true
          [ ret (inv (v "o") "m" [ v "x" ]) ];
        static_meth "clampdiv" [ "a"; "b" ] ~returns:true
          [ ret (div (v "a") (bor (v "b") (i 1))) ];
      ];
  ]

let ( let* ) g f = Gen.( >>= ) g f

(* Random expressions over integer locals currently in scope. *)
let rec gen_expr env depth =
  let leaf =
    Gen.oneof
      (Gen.map (fun n -> Ast.Int (n - 50)) (Gen.int_bound 100)
      ::
      (match env with
      | [] -> []
      | _ :: _ -> [ Gen.map (fun name -> Ast.Local name) (Gen.oneofl env) ]))
  in
  if depth <= 0 then leaf
  else
    Gen.frequency
      [
        (2, leaf);
        ( 2,
          Gen.map2
            (fun a b -> Ast.Binop (Acsi_bytecode.Instr.Add, a, b))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1)) );
        ( 1,
          Gen.map2
            (fun a b -> Ast.Binop (Acsi_bytecode.Instr.Sub, a, b))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1)) );
        ( 1,
          Gen.map2
            (fun a b ->
              Ast.Binop
                ( Acsi_bytecode.Instr.And,
                  Ast.Binop (Acsi_bytecode.Instr.Mul, a, b),
                  Ast.Int 65535 ))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1)) );
        ( 1,
          Gen.map2
            (fun a b -> Ast.Static_call ("Harness", "clampdiv", [ a; b ]))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1)) );
        ( 1,
          let* c = gen_expr env (depth - 1) in
          let* a = gen_expr env (depth - 1) in
          let* b = gen_expr env (depth - 1) in
          Gen.return (Ast.Cond (Ast.Cmp (Acsi_bytecode.Instr.Lt, c, Ast.Int 0), a, b))
        );
        ( 2,
          let* recv = Gen.oneofl [ "oa"; "ob" ] in
          let* x = gen_expr env (depth - 1) in
          Gen.return (Ast.Static_call ("Harness", "apply", [ Ast.Local recv; x ]))
        );
      ]

let rec gen_stmts env fuel ~lvl =
  if fuel <= 0 then Gen.return []
  else
    let* choice = Gen.int_bound 5 in
    match choice with
    | 0 ->
        (* declare or update a local *)
        let* name = Gen.oneofl [ "x"; "y"; "z" ] in
        let* e = gen_expr env 2 in
        let env = if List.mem name env then env else name :: env in
        let* rest = gen_stmts env (fuel - 1) ~lvl in
        Gen.return (Ast.Let (name, e) :: rest)
    | 1 ->
        let* e = gen_expr env 2 in
        let* rest = gen_stmts env (fuel - 1) ~lvl in
        Gen.return (Ast.Print (Ast.Binop (Acsi_bytecode.Instr.And, e, Ast.Int 1048575)) :: rest)
    | 2 ->
        let* c = gen_expr env 1 in
        let* t = gen_stmts env (fuel / 2) ~lvl in
        let* f = gen_stmts env (fuel / 2) ~lvl in
        let* rest = gen_stmts env (fuel - 1) ~lvl in
        Gen.return
          (Ast.If (Ast.Cmp (Acsi_bytecode.Instr.Ge, c, Ast.Int 0), t, f) :: rest)
    | 3 ->
        (* Loop variables are unique per nesting level; reusing one slot
           across nested loops would let the inner loop reset the outer
           counter below its bound — an infinite loop. *)
        let* n = Gen.int_range 1 20 in
        let name = Printf.sprintf "k%d" lvl in
        let* body = gen_stmts (name :: env) (fuel / 2) ~lvl:(lvl + 1) in
        let* rest = gen_stmts env (fuel - 1) ~lvl in
        Gen.return (Ast.For (name, Ast.Int 0, Ast.Int n, body) :: rest)
    | _ ->
        let* e = gen_expr env 2 in
        let* rest = gen_stmts env (fuel - 1) ~lvl in
        Gen.return (Ast.Expr e :: rest)

let gen_program =
  let* body = gen_stmts [] 12 ~lvl:0 in
  let open Dsl in
  Gen.return
    (prog harness_classes
       ([
          let_ "oa" (new_ "A" [ i 3 ]);
          let_ "ob" (new_ "B" [ i 5 ]);
          (* ensure some virtual traffic regardless of the random body *)
          for_ "w" (i 0) (i 50)
            [
              print
                (band
                   (add
                      (call "Harness" "apply" [ v "oa"; v "w" ])
                      (call "Harness" "apply" [ v "ob"; v "w" ]))
                   (i 1048575));
            ];
        ]
       @ body
       @ [ print (i 424242) ]))

let arbitrary_program = QCheck.make gen_program

let baseline_output program =
  let vm = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run vm;
  Acsi_vm.Interp.output vm

(* 1. The front end always yields verifiable code (Compile.prog runs the
   verifier internally; surviving it is the property). *)
let prop_compiles_and_verifies =
  QCheck.Test.make ~name:"generated programs compile and verify" ~count:60
    arbitrary_program (fun ast ->
      let program = Compile.prog ast in
      Program.method_count program > 0)

(* 2. Forced inline expansion of every method, under rules that recommend
   both polymorphic targets everywhere, preserves output. *)
let prop_expansion_preserves_output =
  QCheck.Test.make ~name:"forced expansion preserves output" ~count:40
    arbitrary_program (fun ast ->
      let program = Compile.prog ast in
      let expected = baseline_output program in
      let a_m = Program.find_method program ~cls:"A" ~name:"m" in
      let b_m = Program.find_method program ~cls:"B" ~name:"m" in
      (* Hot rules at every call site of every method, for both targets. *)
      let hot = ref [] in
      Array.iter
        (fun (m : Meth.t) ->
          Array.iteri
            (fun pc instr ->
              if Instr.is_call instr then
                List.iter
                  (fun (callee : Meth.t) ->
                    hot :=
                      ( Acsi_profile.Trace.make ~callee:callee.Meth.id
                          ~chain:
                            [
                              { Acsi_profile.Trace.caller = m.Meth.id; callsite = pc };
                            ],
                        50.0 )
                      :: !hot)
                  [ a_m; b_m ])
            m.Meth.body)
        (Program.methods program);
      let oracle = Acsi_jit.Oracle.create program in
      Acsi_jit.Oracle.set_rules oracle (Acsi_profile.Rules.of_hot_traces !hot);
      let vm = Acsi_vm.Interp.create program in
      Array.iter
        (fun (m : Meth.t) ->
          let code, _ =
            Acsi_jit.Expand.compile program (Acsi_vm.Interp.cost vm) oracle
              ~root:m
          in
          Acsi_vm.Interp.install_code vm m.Meth.id code)
        (Program.methods program);
      Acsi_vm.Interp.run vm;
      Acsi_vm.Interp.output vm = expected)

(* 3. The full adaptive system, under an aggressive configuration and
   several policies, preserves output. *)
let prop_adaptive_system_preserves_output =
  QCheck.Test.make ~name:"adaptive system preserves output" ~count:25
    arbitrary_program (fun ast ->
      let program = Compile.prog ast in
      let expected = baseline_output program in
      List.for_all
        (fun policy ->
          let cfg = Config.default ~policy in
          let cfg =
            { cfg with Config.sample_period = 5_000; invoke_stride = 16 }
          in
          let result = Runtime.run cfg program in
          Acsi_vm.Interp.output result.Runtime.vm = expected)
        Acsi_policy.Policy.
          [ Context_insensitive; Fixed 3; Hybrid_param_large 5 ])

(* 4. Metric identities hold on random programs. *)
let prop_metric_identities =
  QCheck.Test.make ~name:"metric identities" ~count:25 arbitrary_program
    (fun ast ->
      let program = Compile.prog ast in
      let cfg = Config.default ~policy:(Acsi_policy.Policy.Fixed 2) in
      let cfg = { cfg with Config.sample_period = 5_000; invoke_stride = 16 } in
      let m = (Runtime.run cfg program).Runtime.metrics in
      m.Metrics.total_cycles = m.Metrics.app_cycles + m.Metrics.aos_cycles
      && m.Metrics.guard_hits >= 0
      && m.Metrics.opt_code_bytes >= m.Metrics.installed_opt_bytes)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compiles_and_verifies;
      prop_expansion_preserves_output;
      prop_adaptive_system_preserves_output;
      prop_metric_identities;
    ]
