(* Tests for the executable-code representation: baseline construction,
   source-map queries, and the source-level view of optimized frames. *)

open Acsi_bytecode
open Acsi_vm
open Acsi_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let program () =
  let open Dsl in
  Compile.prog
    (prog
       [
         cls "C" ~fields:[]
           [
             static_meth "inner" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ];
             static_meth "outer" [ "x" ] ~returns:true
               [ ret (mul (call "C" "inner" [ v "x" ]) (i 2)) ];
           ];
       ]
       [ print (call "C" "outer" [ i 5 ]) ])

let test_baseline_identity_map () =
  let p = program () in
  let m = Program.find_method p ~cls:"C" ~name:"outer" in
  let code = Code.baseline Cost.default m in
  check_bool "baseline tier" true (code.Code.tier = Code.Baseline);
  check_int "body shared" (Array.length m.Meth.body)
    (Array.length code.Code.instrs);
  check_int "bytes model"
    (Array.length m.Meth.body * Cost.default.Cost.baseline_bytes_per_unit)
    code.Code.code_bytes;
  (* identity source map *)
  let (src_m, src_pc), parents = Code.source_at code ~pc:3 in
  check_bool "own method" true (Ids.Method_id.equal src_m m.Meth.id);
  check_int "same pc" 3 src_pc;
  check_int "no parents" 0 (List.length parents)

let test_optimized_source_map_attribution () =
  let p = program () in
  let outer = Program.find_method p ~cls:"C" ~name:"outer" in
  let inner = Program.find_method p ~cls:"C" ~name:"inner" in
  let oracle = Acsi_jit.Oracle.create p in
  let code, stats = Acsi_jit.Expand.compile p Cost.default oracle ~root:outer in
  check_bool "inner inlined" true (stats.Acsi_jit.Expand.inline_count > 0);
  (* every pc resolves; at least one resolves into inner with outer as its
     inline parent, and its parent callsite is a call instr in outer *)
  let found = ref false in
  Array.iteri
    (fun pc _ ->
      let (src_m, _), parents = Code.source_at code ~pc in
      match parents with
      | [ (parent, callsite) ] when Ids.Method_id.equal src_m inner.Meth.id ->
          check_bool "parent is outer" true
            (Ids.Method_id.equal parent outer.Meth.id);
          check_bool "callsite is a call in outer" true
            (Instr.is_call outer.Meth.body.(callsite));
          found := true
      | _ -> ())
    code.Code.instrs;
  check_bool "inlined instructions attributed" true !found

let test_pp_smoke () =
  let p = program () in
  let m = Program.find_method p ~cls:"C" ~name:"outer" in
  let rendered = Format.asprintf "%a" Code.pp (Code.baseline Cost.default m) in
  check_bool "disassembly mentions the call" true
    (String.length rendered > 0
    &&
    let contains sub =
      let n = String.length rendered and k = String.length sub in
      let rec go i =
        i + k <= n && (String.equal (String.sub rendered i k) sub || go (i + 1))
      in
      go 0
    in
    contains "call_static" && contains "[base]")

let suite =
  [
    Alcotest.test_case "baseline identity map" `Quick test_baseline_identity_map;
    Alcotest.test_case "optimized source attribution" `Quick
      test_optimized_source_map_attribution;
    Alcotest.test_case "disassembly rendering" `Quick test_pp_smoke;
  ]
