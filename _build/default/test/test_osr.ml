(* Tests for on-stack replacement: the extension that lets a long-running
   method benefit from its own recompilation without returning first. *)

open Acsi_bytecode
open Acsi_core
open Acsi_policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A single monolithic main whose hot loop never returns until the end —
   exactly the shape that cannot benefit from recompilation without OSR. *)
let monolithic_program () =
  let open Acsi_lang.Dsl in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "M" ~fields:[]
           [
             static_meth "work" [ "x" ] ~returns:true
               [ ret (band (add (mul (v "x") (i 17)) (i 3)) (i 65535)) ];
           ];
       ]
       [
         let_ "s" (i 0);
         for_ "k" (i 0) (i 400000)
           [ let_ "s" (call "M" "work" [ add (v "s") (v "k") ]) ];
         print (v "s");
       ])

let run ~osr program =
  let cfg = Config.default ~policy:(Policy.Fixed 2) in
  let cfg =
    { cfg with Config.aos = { cfg.Config.aos with Acsi_aos.System.enable_osr = osr } }
  in
  Runtime.run cfg program

let test_osr_fires_on_monolithic_main () =
  let program = monolithic_program () in
  let with_osr = run ~osr:true program in
  let without = run ~osr:false program in
  check_bool "OSR replaced at least one frame" true
    (Acsi_vm.Interp.osr_count with_osr.Runtime.vm > 0);
  check_int "no OSR without the flag" 0
    (Acsi_vm.Interp.osr_count without.Runtime.vm);
  Alcotest.(check (list int))
    "same output"
    (Acsi_vm.Interp.output without.Runtime.vm)
    (Acsi_vm.Interp.output with_osr.Runtime.vm);
  check_bool "OSR makes the monolithic main faster" true
    (with_osr.Runtime.metrics.Metrics.total_cycles
    < without.Runtime.metrics.Metrics.total_cycles)

let test_osr_preserves_workload_outputs () =
  List.iter
    (fun (name, program) ->
      let base = run ~osr:false program in
      let osr = run ~osr:true program in
      Alcotest.(check (list int))
        (name ^ " output under OSR")
        (Acsi_vm.Interp.output base.Runtime.vm)
        (Acsi_vm.Interp.output osr.Runtime.vm))
    (Acsi_workloads.Workloads.build_all ~scale_factor:0.15 ())

(* Direct mechanism test: install optimized code while a method is on
   stack and OSR it from a hook. *)
let test_osr_mechanism_direct () =
  let program = monolithic_program () in
  let main_id = Program.main program in
  let vm = Acsi_vm.Interp.create ~sample_period:50_000 program in
  let fired = ref 0 in
  Acsi_vm.Interp.set_on_timer_sample vm (fun vm ->
      if !fired = 0 then begin
        let oracle = Acsi_jit.Oracle.create program in
        let code, _ =
          Acsi_jit.Expand.compile program (Acsi_vm.Interp.cost vm) oracle
            ~root:(Program.meth program main_id)
        in
        Acsi_vm.Interp.install_code vm main_id code;
        if Acsi_vm.Interp.osr vm main_id then incr fired
      end);
  Acsi_vm.Interp.run vm;
  check_int "direct OSR succeeded" 1 !fired;
  check_int "counted" 1 (Acsi_vm.Interp.osr_count vm)

let suite =
  [
    Alcotest.test_case "OSR fires on a monolithic main" `Quick
      test_osr_fires_on_monolithic_main;
    Alcotest.test_case "OSR preserves workload outputs" `Slow
      test_osr_preserves_workload_outputs;
    Alcotest.test_case "OSR mechanism, direct" `Quick test_osr_mechanism_direct;
  ]
