(* Behavioural assertions on the micro workloads: each isolates one
   phenomenon, so we can assert on the phenomenon itself rather than just
   on output preservation. *)

open Acsi_core
open Acsi_policy
module Micro = Acsi_workloads.Micro

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(policy = Policy.Fixed 2) program =
  Runtime.run (Config.default ~policy) program

let test_all_run_and_preserve_output () =
  List.iter
    (fun (name, build) ->
      let program = build ~scale:30 in
      let baseline = Runtime.run_no_aos (Config.default ~policy:(Policy.Fixed 2)) program in
      List.iter
        (fun policy ->
          let result = run ~policy program in
          Alcotest.(check (list int))
            (name ^ " output under " ^ Policy.to_string policy)
            (Acsi_vm.Interp.output baseline)
            (Acsi_vm.Interp.output result.Runtime.vm))
        [ Policy.Context_insensitive; Policy.Fixed 3; Policy.Adaptive_resolving 4 ])
    Micro.all

(* Monomorphic dispatch: CHA binds it statically; once the driver is
   optimized, the tick call is inlined guard-free — no guards at all. *)
let test_mono_loop_guard_free () =
  let result = run (Micro.mono_loop ~scale:100) in
  let m = result.Runtime.metrics in
  check_bool "optimized something" true (m.Metrics.opt_methods > 0);
  check_int "no guards needed" 0 m.Metrics.guard_sites

(* Bimorphic 90/10: guarded inlining with the dominant target first; the
   common case hits, the rare case misses into the chain/fallback. *)
let test_bimorphic_guard_profile () =
  let result = run (Micro.bimorphic ~scale:500) in
  let m = result.Runtime.metrics in
  check_bool "guards were planted" true (m.Metrics.guard_sites > 0);
  check_bool "guards mostly hit" true
    (m.Metrics.guard_hits > 4 * max 1 m.Metrics.guard_misses)

(* Figure 1 in miniature: context-insensitive profiling sees a 50/50 mix
   at the shared site and pays guard misses; fixed(2) discriminates per
   context and eliminates misses entirely. *)
let test_context_split_discrimination () =
  let program = Micro.context_split ~scale:150 in
  let cins = run ~policy:Policy.Context_insensitive program in
  let cs = run ~policy:(Policy.Fixed 2) program in
  check_bool "cins pays guard misses" true
    (cins.Runtime.metrics.Metrics.guard_misses > 0);
  check_int "context sensitivity removes every miss" 0
    cs.Runtime.metrics.Metrics.guard_misses;
  check_bool "and produces less code" true
    (cs.Runtime.metrics.Metrics.opt_code_bytes
    < cins.Runtime.metrics.Metrics.opt_code_bytes)

(* Megamorphic: with eight equally likely receivers nothing crosses the
   1.5% dominance needed to be worth guarding strongly; misses remain
   under any policy, and the adaptive-resolution policy eventually gives
   the site up. *)
let test_megamorphic_gives_up () =
  let program = Micro.megamorphic ~scale:150 in
  let result = run ~policy:(Policy.Adaptive_resolving 4) program in
  let flagged, _, given_up =
    Acsi_aos.Flags.counts (Acsi_aos.System.flags result.Runtime.sys)
  in
  check_bool "the site was flagged or abandoned" true (given_up + flagged > 0)

(* Deep chain: fixed(n) actually collects depth-n traces. *)
let test_deep_chain_depths () =
  let program = Micro.deep_chain ~scale:100 in
  let result = run ~policy:(Policy.Fixed 5) program in
  let st = Acsi_aos.System.trace_stats result.Runtime.sys in
  check_bool "depth-5 traces collected" true
    (st.Acsi_aos.Trace_listener.depth_histogram.(5) > 0)

(* Phase flip: with decay enabled (default), the second phase's handler
   ends up inlined somewhere. *)
let test_phase_flip_adapts () =
  let program = Micro.phase_flip ~scale:800 in
  let cfg = Config.default ~policy:(Policy.Fixed 2) in
  let cfg =
    {
      cfg with
      Config.aos =
        {
          cfg.Config.aos with
          Acsi_aos.System.decay_factor = 0.5;
          decay_period = 1;
          ai_period = 2;
          refusal_ttl = 4;
          max_opt_versions = 8;
        };
    }
  in
  let result = Runtime.run cfg program in
  let program_of = Acsi_vm.Interp.program result.Runtime.vm in
  let late_step =
    Acsi_bytecode.Program.find_method program_of ~cls:"Late" ~name:"step"
  in
  let late_inlined = ref false in
  Acsi_aos.Registry.iter
    (Acsi_aos.System.registry result.Runtime.sys)
    ~f:(fun _ e ->
      if
        Hashtbl.mem e.Acsi_aos.Registry.inlined_methods
          (late_step.Acsi_bytecode.Meth.id :> int)
      then late_inlined := true);
  check_bool "the late-phase handler got inlined" true !late_inlined

let suite =
  [
    Alcotest.test_case "all micros run, output preserved" `Quick
      test_all_run_and_preserve_output;
    Alcotest.test_case "mono loop is guard-free" `Quick
      test_mono_loop_guard_free;
    Alcotest.test_case "bimorphic guards mostly hit" `Quick
      test_bimorphic_guard_profile;
    Alcotest.test_case "context split discriminates" `Quick
      test_context_split_discrimination;
    Alcotest.test_case "megamorphic site abandoned" `Quick
      test_megamorphic_gives_up;
    Alcotest.test_case "deep chain trace depths" `Quick test_deep_chain_depths;
    Alcotest.test_case "phase flip adapts with decay" `Quick
      test_phase_flip_adapts;
  ]
