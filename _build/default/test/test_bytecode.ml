(* Unit tests for the bytecode substrate: ids, instructions, the code
   buffer, program building/sealing, dispatch, CHA, and the verifier. *)

open Acsi_bytecode

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Ids --- *)

let test_ids_basic () =
  let a = Ids.Method_id.of_int 3 in
  let b = Ids.Method_id.of_int 3 in
  let c = Ids.Method_id.of_int 4 in
  check_bool "equal" true (Ids.Method_id.equal a b);
  check_bool "not equal" false (Ids.Method_id.equal a c);
  check_int "to_int" 3 (Ids.Method_id.to_int a);
  check_int "coerce" 4 (c :> int);
  check_bool "compare" true (Ids.Method_id.compare a c < 0)

let test_ids_negative_rejected () =
  Alcotest.check_raises "negative id" (Invalid_argument "Ids.of_int: negative id")
    (fun () -> ignore (Ids.Class_id.of_int (-1)))

(* --- Instr --- *)

let test_instr_jump_targets () =
  check (Alcotest.list Alcotest.int) "jump" [ 7 ] (Instr.jump_targets (Instr.Jump 7));
  check (Alcotest.list Alcotest.int) "jump_if" [ 2 ]
    (Instr.jump_targets (Instr.Jump_if 2));
  check (Alcotest.list Alcotest.int) "guard fail" [ 9 ]
    (Instr.jump_targets
       (Instr.Guard_method
          {
            Instr.expected = Ids.Method_id.of_int 0;
            sel = Ids.Selector.of_int 0;
            argc = 1;
            fail = 9;
          }));
  check (Alcotest.list Alcotest.int) "non-branch" []
    (Instr.jump_targets (Instr.Const 3))

let test_instr_with_jump_targets () =
  let shifted = Instr.with_jump_targets (Instr.Jump 3) ~f:(fun t -> t + 10) in
  (match shifted with
  | Instr.Jump 13 -> ()
  | _ -> Alcotest.fail "expected Jump 13");
  match Instr.with_jump_targets (Instr.Pop) ~f:(fun t -> t + 10) with
  | Instr.Pop -> ()
  | _ -> Alcotest.fail "non-branch must be unchanged"

let test_instr_is_call () =
  check_bool "static" true (Instr.is_call (Instr.Call_static (Ids.Method_id.of_int 0)));
  check_bool "virtual" true
    (Instr.is_call (Instr.Call_virtual (Ids.Selector.of_int 0, 2)));
  check_bool "direct" true (Instr.is_call (Instr.Call_direct (Ids.Method_id.of_int 0)));
  check_bool "const" false (Instr.is_call (Instr.Const 1))

let test_instr_pp_stable () =
  check Alcotest.string "const" "const 5" (Instr.to_string (Instr.Const 5));
  check Alcotest.string "binop" "add" (Instr.to_string (Instr.Binop Instr.Add));
  check Alcotest.string "cmp" "cmp.lt" (Instr.to_string (Instr.Cmp Instr.Lt))

(* --- Codebuf --- *)

let test_codebuf_linear () =
  let buf = Codebuf.create ~dummy:() in
  Codebuf.emit buf (Instr.Const 1) ();
  Codebuf.emit buf Instr.Pop ();
  let instrs, notes = Codebuf.finish buf in
  check_int "length" 2 (Array.length instrs);
  check_int "notes length" 2 (Array.length notes)

let test_codebuf_label_patching () =
  let buf = Codebuf.create ~dummy:() in
  let l = Codebuf.new_label buf in
  Codebuf.emit_branch buf (Instr.Jump 0) () l;
  Codebuf.emit buf Instr.Nop ();
  Codebuf.bind_label buf l;
  Codebuf.emit buf Instr.Return_void ();
  let instrs, _ = Codebuf.finish buf in
  match instrs.(0) with
  | Instr.Jump 2 -> ()
  | other -> Alcotest.failf "expected Jump 2, got %s" (Instr.to_string other)

let test_codebuf_backward_label () =
  let buf = Codebuf.create ~dummy:() in
  let l = Codebuf.new_label buf in
  Codebuf.bind_label buf l;
  Codebuf.emit buf Instr.Nop ();
  Codebuf.emit_branch buf (Instr.Jump 0) () l;
  let instrs, _ = Codebuf.finish buf in
  match instrs.(1) with
  | Instr.Jump 0 -> ()
  | other -> Alcotest.failf "expected Jump 0, got %s" (Instr.to_string other)

let test_codebuf_unbound_label () =
  let buf = Codebuf.create ~dummy:() in
  let l = Codebuf.new_label buf in
  Codebuf.emit_branch buf (Instr.Jump 0) () l;
  Alcotest.check_raises "unbound" (Invalid_argument "Codebuf: unbound label")
    (fun () -> ignore (Codebuf.finish buf))

let test_codebuf_double_bind () =
  let buf = Codebuf.create ~dummy:() in
  let l = Codebuf.new_label buf in
  Codebuf.bind_label buf l;
  Alcotest.check_raises "double bind"
    (Invalid_argument "Codebuf: label bound twice") (fun () ->
      Codebuf.bind_label buf l)

let test_codebuf_growth () =
  let buf = Codebuf.create ~dummy:0 in
  for k = 0 to 999 do
    Codebuf.emit buf (Instr.Const k) k
  done;
  let instrs, notes = Codebuf.finish buf in
  check_int "length" 1000 (Array.length instrs);
  check_int "note preserved" 777 notes.(777)

(* --- Program building --- *)

(* A small hierarchy: Base <- Mid <- Leaf, with an overridden method. *)
let build_hierarchy () =
  let b = Program.Builder.create () in
  let base = Program.Builder.declare_class b ~name:"Base" ~parent:None ~fields:[ "x" ] in
  let mid =
    Program.Builder.declare_class b ~name:"Mid" ~parent:(Some base)
      ~fields:[ "y" ]
  in
  let leaf =
    Program.Builder.declare_class b ~name:"Leaf" ~parent:(Some mid) ~fields:[]
  in
  let m_base =
    Program.Builder.declare_method b ~owner:base ~name:"value" ~kind:Meth.Instance
      ~arity:0 ~returns:true
  in
  let m_leaf =
    Program.Builder.declare_method b ~owner:leaf ~name:"value" ~kind:Meth.Instance
      ~arity:0 ~returns:true
  in
  let main =
    Program.Builder.declare_method b ~owner:base ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b m_base ~max_locals:1
    [| Instr.Const 1; Instr.Return |];
  Program.Builder.set_body b m_leaf ~max_locals:1
    [| Instr.Const 2; Instr.Return |];
  Program.Builder.set_body b main ~max_locals:1 [| Instr.Return_void |];
  let p = Program.Builder.seal b ~main in
  (p, base, mid, leaf, m_base, m_leaf)

let test_dispatch_override () =
  let p, base, mid, leaf, m_base, m_leaf = build_hierarchy () in
  let sel = (Program.meth p m_base).Meth.selector in
  let target cid = Program.dispatch p cid sel in
  check_bool "base gets base" true
    (target base = Some m_base);
  check_bool "mid inherits base" true (target mid = Some m_base);
  check_bool "leaf overrides" true (target leaf = Some m_leaf)

let test_field_layout_inheritance () =
  let p, _, mid, leaf, _, _ = build_hierarchy () in
  let mid_c = Program.clazz p mid in
  check_int "mid fields" 2 (Clazz.field_count mid_c);
  check_int "inherited x slot" 0 (Clazz.field_slot mid_c "x");
  check_int "own y slot" 1 (Clazz.field_slot mid_c "y");
  let leaf_c = Program.clazz p leaf in
  check_int "leaf inherits layout" 2 (Clazz.field_count leaf_c)

let test_cha () =
  let p, _, _, _, m_base, m_leaf = build_hierarchy () in
  let sel = (Program.meth p m_base).Meth.selector in
  let impls = Program.implementations p sel in
  check_int "two implementations" 2 (List.length impls);
  check_bool "both found" true
    (List.mem m_base impls && List.mem m_leaf impls);
  check_bool "not monomorphic" true
    (Program.monomorphic_target p sel = None)

let test_is_subclass () =
  let p, base, mid, leaf, _, _ = build_hierarchy () in
  check_bool "leaf <= base" true (Program.is_subclass p ~sub:leaf ~super:base);
  check_bool "leaf <= mid" true (Program.is_subclass p ~sub:leaf ~super:mid);
  check_bool "base </= leaf" false (Program.is_subclass p ~sub:base ~super:leaf);
  check_bool "reflexive" true (Program.is_subclass p ~sub:mid ~super:mid)

let test_find_class_and_method () =
  let p, _, _, _, m_base, _ = build_hierarchy () in
  check Alcotest.string "find_class" "Mid" (Program.find_class p "Mid").Clazz.name;
  Alcotest.check_raises "missing class" Not_found (fun () ->
      ignore (Program.find_class p "Nope"));
  let found = Program.find_method p ~cls:"Base" ~name:"value" in
  check_bool "find_method" true (Ids.Method_id.equal found.Meth.id m_base)

let test_duplicate_class_rejected () =
  let b = Program.Builder.create () in
  ignore (Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[]);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder: duplicate class A") (fun () ->
      ignore (Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[]))

let test_seal_requires_bodies () =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[] in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Alcotest.check_raises "no body"
    (Invalid_argument "Builder.seal: method main has no body") (fun () ->
      ignore (Program.Builder.seal b ~main))

let test_seal_checks_main_signature () =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[] in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:1 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1 [| Instr.Return_void |];
  Alcotest.check_raises "bad main"
    (Invalid_argument "Builder.seal: main must be a parameterless static method")
    (fun () -> ignore (Program.Builder.seal b ~main))

let test_selector_interning () =
  let b = Program.Builder.create () in
  let s1 = Program.Builder.intern_selector b "foo" in
  let s2 = Program.Builder.intern_selector b "foo" in
  let s3 = Program.Builder.intern_selector b "bar" in
  check_bool "same name same id" true (Ids.Selector.equal s1 s2);
  check_bool "distinct names distinct ids" false (Ids.Selector.equal s1 s3)

(* --- Verifier --- *)

(* Build a one-method program with the given body and run the verifier. *)
let verify_body ?(arity = 0) ?(returns = false) ?(max_locals = 2) body =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1 [| Instr.Return_void |];
  let m =
    Program.Builder.declare_method b ~owner:cls ~name:"m" ~kind:Meth.Static
      ~arity ~returns
  in
  Program.Builder.set_body b m ~max_locals body;
  let p = Program.Builder.seal b ~main in
  let meth = Program.meth p m in
  Verify.meth p meth;
  meth

let expect_verify_error body check_msg =
  match verify_body body with
  | _ -> Alcotest.fail "expected a verification error"
  | exception Verify.Error msg ->
      check_bool (Printf.sprintf "message %S mentions" msg) true (check_msg msg)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let test_verify_ok_and_max_stack () =
  let m =
    verify_body
      [|
        Instr.Const 1; Instr.Const 2; Instr.Const 3; Instr.Binop Instr.Add;
        Instr.Binop Instr.Mul; Instr.Pop; Instr.Return_void;
      |]
  in
  check_int "max stack" 3 m.Meth.max_stack

let test_verify_underflow () =
  expect_verify_error [| Instr.Pop; Instr.Return_void |] (fun m ->
      contains m "underflow")

let test_verify_jump_range () =
  expect_verify_error [| Instr.Jump 99; Instr.Return_void |] (fun m ->
      contains m "target")

let test_verify_unreachable_jump_range () =
  (* Out-of-range targets must be rejected even in unreachable code. *)
  expect_verify_error
    [| Instr.Return_void; Instr.Jump 99 |]
    (fun m -> contains m "target")

let test_verify_falls_off_end () =
  expect_verify_error [| Instr.Const 1; Instr.Pop |] (fun m ->
      contains m "falls off")

let test_verify_inconsistent_join () =
  (* One path pushes before the join, the other does not. *)
  expect_verify_error
    [|
      Instr.Const 0;
      Instr.Jump_if 3;
      Instr.Const 7;
      (* join: depth 1 from fall-through, 0 from branch *)
      Instr.Nop;
      Instr.Return_void;
    |]
    (fun m -> contains m "inconsistent")

let test_verify_return_depth () =
  expect_verify_error
    [| Instr.Const 1; Instr.Const 2; Instr.Return_void |]
    (fun m -> contains m "return_void with stack depth")

let test_verify_void_mismatch () =
  match
    verify_body ~returns:true [| Instr.Return_void |]
  with
  | _ -> Alcotest.fail "expected error"
  | exception Verify.Error m ->
      check_bool "void mismatch" true (contains m "value-returning")

let test_verify_local_bounds () =
  expect_verify_error [| Instr.Load 5; Instr.Pop; Instr.Return_void |]
    (fun m -> contains m "outside max_locals")

let suite =
  [
    Alcotest.test_case "ids basics" `Quick test_ids_basic;
    Alcotest.test_case "ids reject negatives" `Quick test_ids_negative_rejected;
    Alcotest.test_case "instr jump targets" `Quick test_instr_jump_targets;
    Alcotest.test_case "instr target rewriting" `Quick test_instr_with_jump_targets;
    Alcotest.test_case "instr is_call" `Quick test_instr_is_call;
    Alcotest.test_case "instr printing" `Quick test_instr_pp_stable;
    Alcotest.test_case "codebuf linear emit" `Quick test_codebuf_linear;
    Alcotest.test_case "codebuf forward label" `Quick test_codebuf_label_patching;
    Alcotest.test_case "codebuf backward label" `Quick test_codebuf_backward_label;
    Alcotest.test_case "codebuf unbound label" `Quick test_codebuf_unbound_label;
    Alcotest.test_case "codebuf double bind" `Quick test_codebuf_double_bind;
    Alcotest.test_case "codebuf growth" `Quick test_codebuf_growth;
    Alcotest.test_case "dispatch override" `Quick test_dispatch_override;
    Alcotest.test_case "field layout inheritance" `Quick test_field_layout_inheritance;
    Alcotest.test_case "class hierarchy analysis" `Quick test_cha;
    Alcotest.test_case "subclass relation" `Quick test_is_subclass;
    Alcotest.test_case "find class and method" `Quick test_find_class_and_method;
    Alcotest.test_case "duplicate class rejected" `Quick test_duplicate_class_rejected;
    Alcotest.test_case "seal requires bodies" `Quick test_seal_requires_bodies;
    Alcotest.test_case "seal checks main" `Quick test_seal_checks_main_signature;
    Alcotest.test_case "selector interning" `Quick test_selector_interning;
    Alcotest.test_case "verify computes max stack" `Quick test_verify_ok_and_max_stack;
    Alcotest.test_case "verify underflow" `Quick test_verify_underflow;
    Alcotest.test_case "verify jump range" `Quick test_verify_jump_range;
    Alcotest.test_case "verify unreachable jump range" `Quick
      test_verify_unreachable_jump_range;
    Alcotest.test_case "verify falls off end" `Quick test_verify_falls_off_end;
    Alcotest.test_case "verify inconsistent join" `Quick test_verify_inconsistent_join;
    Alcotest.test_case "verify return depth" `Quick test_verify_return_depth;
    Alcotest.test_case "verify void mismatch" `Quick test_verify_void_mismatch;
    Alcotest.test_case "verify local bounds" `Quick test_verify_local_bounds;
  ]
