(* Instruction-level interpreter tests: every opcode's semantics checked
   against hand-assembled bytecode. *)

open Acsi_bytecode
open Acsi_vm

let check_out = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a program whose main is exactly [body]; run it; return output. *)
let run_body ?(max_locals = 4) body =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals (Array.of_list body);
  let p = Program.Builder.seal b ~main in
  Verify.program p;
  let vm = Interp.create p in
  Interp.run vm;
  Interp.output vm

let print_top = [ Instr.Print_int; Instr.Return_void ]

let test_const_and_print () =
  check_out "const" [ 42 ] (run_body ([ Instr.Const 42 ] @ print_top))

let test_locals () =
  check_out "store/load" [ 7 ]
    (run_body
       ([ Instr.Const 7; Instr.Store 2; Instr.Load 2 ] @ print_top))

let test_stack_ops () =
  check_out "dup" [ 5; 5 ]
    (run_body
       [
         Instr.Const 5; Instr.Dup; Instr.Print_int; Instr.Print_int;
         Instr.Return_void;
       ]);
  check_out "swap" [ 1; 2 ]
    (run_body
       [
         Instr.Const 1; Instr.Const 2; Instr.Swap; Instr.Print_int;
         Instr.Print_int; Instr.Return_void;
       ]);
  check_out "pop" [ 3 ]
    (run_body
       ([ Instr.Const 3; Instr.Const 9; Instr.Pop ] @ print_top))

let binop_cases =
  [
    (Instr.Add, 7, 3, 10);
    (Instr.Sub, 7, 3, 4);
    (Instr.Mul, 7, 3, 21);
    (Instr.Div, 7, 3, 2);
    (Instr.Div, -7, 3, -2);  (* truncation toward zero, as in Java *)
    (Instr.Rem, 7, 3, 1);
    (Instr.Rem, -7, 3, -1);
    (Instr.And, 12, 10, 8);
    (Instr.Or, 12, 10, 14);
    (Instr.Xor, 12, 10, 6);
    (Instr.Shl, 3, 2, 12);
    (Instr.Shr, -8, 1, -4);  (* arithmetic shift *)
  ]

let test_binops () =
  List.iter
    (fun (op, a, b, expected) ->
      check_out
        (Printf.sprintf "%d op %d" a b)
        [ expected ]
        (run_body
           ([ Instr.Const a; Instr.Const b; Instr.Binop op ] @ print_top)))
    binop_cases

let cmp_cases =
  [
    (Instr.Eq, 3, 3, 1); (Instr.Eq, 3, 4, 0);
    (Instr.Ne, 3, 4, 1); (Instr.Lt, 3, 4, 1); (Instr.Lt, 4, 3, 0);
    (Instr.Le, 3, 3, 1); (Instr.Gt, 4, 3, 1); (Instr.Ge, 3, 4, 0);
  ]

let test_cmps () =
  List.iter
    (fun (c, a, b, expected) ->
      check_out "cmp" [ expected ]
        (run_body ([ Instr.Const a; Instr.Const b; Instr.Cmp c ] @ print_top)))
    cmp_cases

let test_unary () =
  check_out "neg" [ -9 ] (run_body ([ Instr.Const 9; Instr.Neg ] @ print_top));
  check_out "not zero" [ 1 ] (run_body ([ Instr.Const 0; Instr.Not ] @ print_top));
  check_out "not nonzero" [ 0 ]
    (run_body ([ Instr.Const 5; Instr.Not ] @ print_top))

let test_jumps () =
  (* jump over a poison print *)
  check_out "jump" [ 1 ]
    (run_body
       [
         Instr.Jump 3; Instr.Const 99; Instr.Print_int; Instr.Const 1;
         Instr.Print_int; Instr.Return_void;
       ]);
  (* conditional both ways *)
  check_out "jump_if taken" [ 1 ]
    (run_body
       [
         Instr.Const 1; Instr.Jump_if 4; Instr.Const 0; Instr.Jump 5;
         Instr.Const 1; Instr.Print_int; Instr.Return_void;
       ]);
  check_out "jump_ifnot taken" [ 1 ]
    (run_body
       [
         Instr.Const 0; Instr.Jump_ifnot 4; Instr.Const 0; Instr.Jump 5;
         Instr.Const 1; Instr.Print_int; Instr.Return_void;
       ])

let test_null_truthiness_in_branches () =
  check_out "null is false" [ 1 ]
    (run_body
       [
         Instr.Const_null; Instr.Jump_ifnot 4; Instr.Const 0; Instr.Jump 5;
         Instr.Const 1; Instr.Print_int; Instr.Return_void;
       ])

let test_arrays () =
  check_out "array lifecycle" [ 3; 0; 77 ]
    (run_body
       ([
          Instr.Const 3; Instr.Array_new; Instr.Store 0;
          (* length *)
          Instr.Load 0; Instr.Array_len; Instr.Print_int;
          (* default element *)
          Instr.Load 0; Instr.Const 1; Instr.Array_get; Instr.Print_int;
          (* set then get *)
          Instr.Load 0; Instr.Const 2; Instr.Const 77; Instr.Array_set;
          Instr.Load 0; Instr.Const 2; Instr.Array_get;
        ]
       @ print_top))

let test_globals () =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
  let slot = Program.Builder.declare_global b "g" in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1
    [|
      Instr.Get_global slot; Instr.Print_int;
      Instr.Const 5; Instr.Put_global slot;
      Instr.Get_global slot; Instr.Print_int; Instr.Return_void;
    |];
  let p = Program.Builder.seal b ~main in
  Verify.program p;
  let vm = Interp.create p in
  Interp.run vm;
  check_out "globals default to 0 then update" [ 0; 5 ] (Interp.output vm)

let test_objects_and_fields () =
  let b = Program.Builder.create () in
  let cls =
    Program.Builder.declare_class b ~name:"P" ~parent:None ~fields:[ "x"; "y" ]
  in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1
    [|
      Instr.New cls; Instr.Store 0;
      (* default field value *)
      Instr.Load 0; Instr.Get_field 0; Instr.Print_int;
      (* write and read back field 1 *)
      Instr.Load 0; Instr.Const 31; Instr.Put_field 1;
      Instr.Load 0; Instr.Get_field 1; Instr.Print_int;
      Instr.Return_void;
    |];
  let p = Program.Builder.seal b ~main in
  Verify.program p;
  let vm = Interp.create p in
  Interp.run vm;
  check_out "fields" [ 0; 31 ] (Interp.output vm)

let test_instance_of_and_dispatch_depth () =
  (* Dispatch through a 3-deep hierarchy; instance_of at each level. *)
  let b = Program.Builder.create () in
  let base = Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[] in
  let mid = Program.Builder.declare_class b ~name:"B" ~parent:(Some base) ~fields:[] in
  let leaf = Program.Builder.declare_class b ~name:"C" ~parent:(Some mid) ~fields:[] in
  let m_a =
    Program.Builder.declare_method b ~owner:base ~name:"id" ~kind:Meth.Instance
      ~arity:0 ~returns:true
  in
  let m_c =
    Program.Builder.declare_method b ~owner:leaf ~name:"id" ~kind:Meth.Instance
      ~arity:0 ~returns:true
  in
  let main =
    Program.Builder.declare_method b ~owner:base ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b m_a ~max_locals:1 [| Instr.Const 1; Instr.Return |];
  Program.Builder.set_body b m_c ~max_locals:1 [| Instr.Const 3; Instr.Return |];
  let sel = (fun () -> ()) in
  ignore sel;
  let selector = Program.Builder.intern_selector b "id" in
  Program.Builder.set_body b main ~max_locals:1
    [|
      (* B inherits A.id; C overrides *)
      Instr.New mid; Instr.Call_virtual (selector, 0); Instr.Print_int;
      Instr.New leaf; Instr.Call_virtual (selector, 0); Instr.Print_int;
      Instr.New leaf; Instr.Instance_of base; Instr.Print_int;
      Instr.New base; Instr.Instance_of leaf; Instr.Print_int;
      Instr.Return_void;
    |];
  let p = Program.Builder.seal b ~main in
  Verify.program p;
  let vm = Interp.create p in
  Interp.run vm;
  check_out "dispatch + instance_of" [ 1; 3; 1; 0 ] (Interp.output vm)

let test_call_cost_tiers () =
  (* A call into baseline code costs more than into optimized code. *)
  let open Acsi_lang.Dsl in
  let program =
    Acsi_lang.Compile.prog
      (prog
         [
           cls "K" ~fields:[]
             [ static_meth "f" [] ~returns:true [ ret (i 1) ] ];
         ]
         [ print (call "K" "f" []) ])
  in
  let f = Program.find_method program ~cls:"K" ~name:"f" in
  let run_once install =
    let vm = Interp.create program in
    if install then begin
      let oracle = Acsi_jit.Oracle.create program in
      let code, _ = Acsi_jit.Expand.compile program (Interp.cost vm) oracle ~root:f in
      Interp.install_code vm f.Meth.id code
    end;
    Interp.run vm;
    Interp.cycles vm
  in
  check_bool "optimized callee is cheaper" true (run_once true < run_once false)

let test_instruction_counters () =
  let out_cycles =
    let b = Program.Builder.create () in
    let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
    let main =
      Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
        ~arity:0 ~returns:false
    in
    Program.Builder.set_body b main ~max_locals:1
      [| Instr.Const 1; Instr.Pop; Instr.Return_void |];
    let p = Program.Builder.seal b ~main in
    Verify.program p;
    let vm = Interp.create p in
    Interp.run vm;
    (Interp.instructions_executed vm, Interp.cycles vm, Interp.calls_executed vm)
  in
  let instrs, cycles, calls = out_cycles in
  check_int "three instructions" 3 instrs;
  check_int "main counts as one call" 1 calls;
  check_int "cycles = instrs x baseline cost"
    (3 * Cost.default.Cost.baseline_instr)
    cycles

let suite =
  [
    Alcotest.test_case "const/print" `Quick test_const_and_print;
    Alcotest.test_case "locals" `Quick test_locals;
    Alcotest.test_case "stack ops" `Quick test_stack_ops;
    Alcotest.test_case "binops" `Quick test_binops;
    Alcotest.test_case "comparisons" `Quick test_cmps;
    Alcotest.test_case "unary ops" `Quick test_unary;
    Alcotest.test_case "jumps" `Quick test_jumps;
    Alcotest.test_case "null truthiness" `Quick test_null_truthiness_in_branches;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "objects and fields" `Quick test_objects_and_fields;
    Alcotest.test_case "dispatch and instance_of" `Quick
      test_instance_of_and_dispatch_depth;
    Alcotest.test_case "call cost tiers" `Quick test_call_cost_tiers;
    Alcotest.test_case "instruction counters" `Quick test_instruction_counters;
  ]
