(* Tests for the textual front end: lexing, parsing, execution of parsed
   programs, and diagnostics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_out = Alcotest.(check (list int))

let run src =
  let program = Acsi_lang.Parser.compile src in
  let vm = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run vm;
  Acsi_vm.Interp.output vm

let expect_syntax_error src fragment =
  match run src with
  | _ -> Alcotest.failf "expected a syntax error mentioning %S" fragment
  | exception Acsi_lang.Parser.Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
        in
        go 0
      in
      check_bool (Printf.sprintf "%S mentions %S" msg fragment) true
        (contains msg fragment)

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = Acsi_lang.Lexer.tokenize "x1 <= 42 // comment\n Cls .. ->" in
  let kinds = List.map (fun t -> t.Acsi_lang.Lexer.token) toks in
  Alcotest.(check bool)
    "token stream" true
    (kinds
    = [
        Acsi_lang.Lexer.Ident "x1";
        Acsi_lang.Lexer.Punct "<=";
        Acsi_lang.Lexer.Int 42;
        Acsi_lang.Lexer.Upper "Cls";
        Acsi_lang.Lexer.Punct "..";
        Acsi_lang.Lexer.Punct "->";
        Acsi_lang.Lexer.Eof;
      ])

let test_lexer_positions () =
  let toks = Acsi_lang.Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      check_int "a line" 1 a.Acsi_lang.Lexer.line;
      check_int "b line" 2 b.Acsi_lang.Lexer.line;
      check_int "b col" 3 b.Acsi_lang.Lexer.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_error () =
  match Acsi_lang.Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected a lexical error"
  | exception Acsi_lang.Lexer.Error _ -> ()

(* --- parsed program execution --- *)

let test_hello_arithmetic () =
  check_out "arith" [ 10; 1 ]
    (run "main { print 2 + 2 * 4; print 7 % 2; }")

let test_precedence_and_parens () =
  check_out "precedence" [ 14; 20; 1; 0 ]
    (run
       "main { print 2 + 3 * 4; print (2 + 3) * 4; print 1 < 2; print not \
        (3 != 3) and 0; }")

let test_control_flow () =
  check_out "loops" [ 45 ]
    (run
       "main { var s = 0; for k in 0 .. 10 { s = s + k; } print s; }");
  check_out "while" [ 8 ]
    (run
       "main { var x = 1; while (x < 5) { x = x * 2; } print x; }");
  check_out "if else" [ 2 ]
    (run
       "main { var x = 7; if (x > 10) { print 1; } else if (x > 5) { print \
        2; } else { print 3; } }")

let test_classes_and_dispatch () =
  let src =
    {|
    class Animal {
      field weight;
      def init(w) { this.weight = w; }
      def noise() -> int { return 0; }
      def heavy() -> int { return this.weight > 100; }
    }
    class Dog extends Animal {
      def noise() -> int { return 1; }
    }
    class Cat extends Animal {
      def noise() -> int { return 2; }
    }
    main {
      var d = new Dog(120);
      var c = new Cat(4);
      print d.noise();
      print c.noise();
      print d.heavy();
      print c.heavy();
      print d is Animal;
      print c is Dog;
      print d@Animal.weight;
      print d!Animal.noise();
    }
  |}
  in
  check_out "dispatch" [ 1; 2; 1; 0; 1; 0; 120; 0 ] (run src)

let test_statics_arrays_globals () =
  let src =
    {|
    global total;
    class Util {
      static def sum(a) -> int {
        var s = 0;
        for k in 0 .. len(a) { s = s + a[k]; }
        return s;
      }
    }
    main {
      var a = arr(5);
      for k in 0 .. 5 { a[k] = k * k; }
      total = Util.sum(a);
      print total;
    }
  |}
  in
  check_out "arrays+globals" [ 30 ] (run src)

let test_field_assignment_forms () =
  let src =
    {|
    class Box {
      field v;
      def init(v) { this.v = v; }
    }
    main {
      var b = new Box(1);
      b@Box.v = 9;
      print b@Box.v;
    }
  |}
  in
  check_out "typed field set" [ 9 ] (run src)

(* The quickstart's HashMapTest written as source text runs against the
   DSL-built Javalib? No — the textual program is self-contained. *)
let test_self_contained_map_program () =
  let src =
    {|
    class Key {
      field k;
      def init(k) { this.k = k; }
      def hashCode() -> int { return this.k; }
    }
    class Pair {
      field key; field value;
      def init(key, value) { this.key = key; this.value = value; }
    }
    class Table {
      field slots;
      def init(cap) {
        this.slots = arr(cap);
        for i in 0 .. cap { this.slots[i] = null; }
      }
      def put(key, value) {
        var idx = key.hashCode() % len(this.slots);
        this.slots[idx] = new Pair(key, value);
      }
      def get(key) -> int {
        var idx = key.hashCode() % len(this.slots);
        var p = this.slots[idx];
        if (p == null) { return 0 - 1; }
        return p@Pair.value;
      }
    }
    main {
      var t = new Table(8);
      t.put(new Key(3), 33);
      t.put(new Key(5), 55);
      print t.get(new Key(3));
      print t.get(new Key(5));
      print t.get(new Key(6));
    }
  |}
  in
  check_out "map program" [ 33; 55; -1 ] (run src)

(* Parsed programs behave identically under the adaptive system. *)
let test_parsed_program_under_aos () =
  let src =
    {|
    class W {
      static def step(x) -> int { return (x * 3 + 1) & 65535; }
    }
    main {
      var s = 1;
      for k in 0 .. 200000 { s = W.step(s); }
      print s;
    }
  |}
  in
  let program = Acsi_lang.Parser.compile src in
  let base = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run base;
  let result =
    Acsi_core.Runtime.run
      (Acsi_core.Config.default ~policy:(Acsi_policy.Policy.Fixed 3))
      program
  in
  Alcotest.(check (list int))
    "same output"
    (Acsi_vm.Interp.output base)
    (Acsi_vm.Interp.output result.Acsi_core.Runtime.vm);
  check_bool "adaptive system optimized it" true
    (result.Acsi_core.Runtime.metrics.Acsi_core.Metrics.opt_methods > 0)

(* --- diagnostics --- *)

let test_error_missing_main () = expect_syntax_error "class A { }" "no 'main'"

let test_error_untyped_field () =
  expect_syntax_error
    "class A { field x; } main { var a = new A(); print a.x; }"
    "needs a class"

let test_error_bad_assignment () =
  expect_syntax_error "main { 1 + 2 = 3; }" "cannot be assigned"

let test_error_unclosed_block () =
  expect_syntax_error "main { print 1;" "expected"

let test_error_duplicate_main () =
  expect_syntax_error "main { } main { }" "duplicate"

let test_error_reports_position () =
  match run "main {\n  print 1;\n  ?\n}" with
  | _ -> Alcotest.fail "expected an error"
  | exception Acsi_lang.Lexer.Error msg ->
      check_bool "mentions line 3" true
        (String.length msg >= 6 && String.equal (String.sub msg 0 6) "line 3")

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "arithmetic" `Quick test_hello_arithmetic;
    Alcotest.test_case "precedence" `Quick test_precedence_and_parens;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "classes and dispatch" `Quick test_classes_and_dispatch;
    Alcotest.test_case "statics, arrays, globals" `Quick
      test_statics_arrays_globals;
    Alcotest.test_case "typed field assignment" `Quick
      test_field_assignment_forms;
    Alcotest.test_case "self-contained map program" `Quick
      test_self_contained_map_program;
    Alcotest.test_case "parsed program under AOS" `Quick
      test_parsed_program_under_aos;
    Alcotest.test_case "error: missing main" `Quick test_error_missing_main;
    Alcotest.test_case "error: untyped field" `Quick test_error_untyped_field;
    Alcotest.test_case "error: bad assignment" `Quick test_error_bad_assignment;
    Alcotest.test_case "error: unclosed block" `Quick test_error_unclosed_block;
    Alcotest.test_case "error: duplicate main" `Quick test_error_duplicate_main;
    Alcotest.test_case "error: position reporting" `Quick
      test_error_reports_position;
  ]
