(* Unit tests for the context-sensitivity policies: depth bounds, naming,
   and the early-termination predicates of paper §4. *)

open Acsi_bytecode
open Acsi_policy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A program giving one method of each flavour the predicates inspect. *)
let fixture () =
  let open Acsi_lang.Dsl in
  let filler n = List.init n (fun k -> let_ "t" (add (i k) (i 1))) in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "F" ~fields:[]
           [
             meth "inst_with_params" [ "x" ] ~returns:true [ ret (v "x") ];
             meth "inst_paramless" [] ~returns:true [ ret (i 1) ];
             static_meth "static_with_params" [ "x" ] ~returns:true
               [ ret (v "x") ];
             static_meth "static_paramless" [] ~returns:true [ ret (i 2) ];
             static_meth "static_large" [ "x" ] ~returns:true
               (filler 40 @ [ ret (v "x") ]);
           ];
       ]
       [ print (i 0) ])

let meth program name = Program.find_method program ~cls:"F" ~name

let test_max_depth () =
  check_int "cins" 1 (Policy.max_depth Policy.Context_insensitive);
  check_int "fixed" 4 (Policy.max_depth (Policy.Fixed 4));
  check_int "clamped" 1 (Policy.max_depth (Policy.Fixed 0));
  check_int "hybrid" 3 (Policy.max_depth (Policy.Hybrid_param_large 3))

let test_names_roundtrip () =
  List.iter
    (fun p ->
      match Policy.of_string (Policy.to_string p) with
      | Some q -> check_bool (Policy.to_string p) true (p = q)
      | None -> Alcotest.failf "failed to parse %s" (Policy.to_string p))
    (Policy.Context_insensitive :: Policy.Adaptive_resolving 4
    :: Policy.paper_sweep)

let test_of_string_bare_names () =
  check_bool "bare fixed" true (Policy.of_string "fixed" = Some (Policy.Fixed 5));
  check_bool "bare cins" true
    (Policy.of_string "cins" = Some Policy.Context_insensitive);
  check_bool "unknown" true (Policy.of_string "zorp" = None)

let test_paper_sweep_shape () =
  check_int "6 families x 4 maxes" 24 (List.length Policy.paper_sweep)

let should_extend program p ~callee ~last_caller ~chain_len =
  Policy.should_extend p program ~callee:(meth program callee)
    ~last_caller:(meth program last_caller) ~chain_len

let test_cins_never_extends () =
  let program = fixture () in
  check_bool "cins" false
    (should_extend program Policy.Context_insensitive
       ~callee:"inst_with_params" ~last_caller:"inst_with_params" ~chain_len:1)

let test_fixed_extends_to_max () =
  let program = fixture () in
  let ext = should_extend program (Policy.Fixed 3) ~callee:"inst_with_params"
      ~last_caller:"inst_with_params" in
  check_bool "below max" true (ext ~chain_len:2);
  check_bool "at max" false (ext ~chain_len:3)

let test_parameterless_stops () =
  let program = fixture () in
  let p = Policy.Parameterless 5 in
  (* A parameterless callee needs no context beyond the plain edge. *)
  check_bool "parameterless callee stops" false
    (should_extend program p ~callee:"inst_paramless"
       ~last_caller:"inst_with_params" ~chain_len:1);
  (* A parameterless caller stops the walk above it. *)
  check_bool "parameterless caller stops" false
    (should_extend program p ~callee:"inst_with_params"
       ~last_caller:"static_paramless" ~chain_len:2);
  check_bool "parameters keep it going" true
    (should_extend program p ~callee:"inst_with_params"
       ~last_caller:"static_with_params" ~chain_len:2)

let test_class_methods_stops () =
  let program = fixture () in
  let p = Policy.Class_methods 5 in
  check_bool "instance caller stops" false
    (should_extend program p ~callee:"static_with_params"
       ~last_caller:"inst_with_params" ~chain_len:2);
  check_bool "static caller continues" true
    (should_extend program p ~callee:"static_with_params"
       ~last_caller:"static_with_params" ~chain_len:2)

let test_large_methods_stops () =
  let program = fixture () in
  let p = Policy.Large_methods 5 in
  check_bool "large caller stops" false
    (should_extend program p ~callee:"static_with_params"
       ~last_caller:"static_large" ~chain_len:2);
  check_bool "small caller continues" true
    (should_extend program p ~callee:"static_with_params"
       ~last_caller:"static_with_params" ~chain_len:2)

let test_hybrids_combine () =
  let program = fixture () in
  (* Hybrid 1 stops when EITHER parameterless or class-method fires. *)
  check_bool "hybrid1 stops on instance caller" false
    (should_extend program (Policy.Hybrid_param_class 5)
       ~callee:"static_with_params" ~last_caller:"inst_with_params"
       ~chain_len:2);
  check_bool "hybrid1 stops on parameterless" false
    (should_extend program (Policy.Hybrid_param_class 5)
       ~callee:"static_with_params" ~last_caller:"static_paramless"
       ~chain_len:2);
  check_bool "hybrid2 stops on large" false
    (should_extend program (Policy.Hybrid_param_large 5)
       ~callee:"static_with_params" ~last_caller:"static_large" ~chain_len:2);
  check_bool "hybrid2 continues otherwise" true
    (should_extend program (Policy.Hybrid_param_large 5)
       ~callee:"static_with_params" ~last_caller:"static_with_params"
       ~chain_len:2)

let test_adaptive_resolving_flag () =
  let program = fixture () in
  check_bool "is_adaptive" true
    (Policy.is_adaptive_resolving (Policy.Adaptive_resolving 3));
  check_bool "others are not" true
    (not (Policy.is_adaptive_resolving (Policy.Fixed 3)));
  (* The predicate itself never extends — deepening is flag-driven. *)
  check_bool "predicate says no" false
    (should_extend program (Policy.Adaptive_resolving 5)
       ~callee:"inst_with_params" ~last_caller:"inst_with_params" ~chain_len:1)

let suite =
  [
    Alcotest.test_case "max depth" `Quick test_max_depth;
    Alcotest.test_case "name round trip" `Quick test_names_roundtrip;
    Alcotest.test_case "of_string bare names" `Quick test_of_string_bare_names;
    Alcotest.test_case "paper sweep shape" `Quick test_paper_sweep_shape;
    Alcotest.test_case "cins never extends" `Quick test_cins_never_extends;
    Alcotest.test_case "fixed extends to max" `Quick test_fixed_extends_to_max;
    Alcotest.test_case "parameterless early termination" `Quick
      test_parameterless_stops;
    Alcotest.test_case "class-methods early termination" `Quick
      test_class_methods_stops;
    Alcotest.test_case "large-methods early termination" `Quick
      test_large_methods_stops;
    Alcotest.test_case "hybrids combine rules" `Quick test_hybrids_combine;
    Alcotest.test_case "adaptive resolving flag" `Quick
      test_adaptive_resolving_flag;
  ]
