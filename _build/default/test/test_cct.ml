(* Tests for the calling-context tree: structural sharing, query
   equivalence with the flat profile, and round-tripping of hot traces. *)

open Acsi_bytecode
open Acsi_profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mid n = Ids.Method_id.of_int n

let trace callee chain =
  Trace.make ~callee:(mid callee)
    ~chain:(List.map (fun (c, s) -> { Trace.caller = mid c; callsite = s }) chain)

let test_weights_accumulate () =
  let cct = Cct.create () in
  let t = trace 9 [ (1, 2); (3, 4) ] in
  Cct.add_trace cct t;
  Cct.add_trace cct t;
  Cct.add_trace ~weight:3.5 cct t;
  check_bool "weight" true (Cct.weight_of cct t = 5.5);
  check_bool "total" true (Cct.total_weight cct = 5.5);
  check_bool "absent path" true (Cct.weight_of cct (trace 9 [ (1, 7) ]) = 0.0)

let test_prefix_sharing () =
  let cct = Cct.create () in
  (* Two traces sharing caller context, one deeper: the shared prefix must
     be stored once. *)
  Cct.add_trace cct (trace 9 [ (1, 2); (3, 4) ]);
  Cct.add_trace cct (trace 8 [ (1, 3); (3, 4) ]);
  (* paths: root -> 3 -> 1 -> {9, 8}: 4 nodes *)
  check_int "nodes shared" 4 (Cct.node_count cct);
  check_int "depth" 3 (Cct.max_depth cct)

let test_distinct_callsites_distinct_nodes () =
  let cct = Cct.create () in
  Cct.add_trace cct (trace 9 [ (1, 2) ]);
  Cct.add_trace cct (trace 9 [ (1, 5) ]);
  (* root -> 1 -> 9@2 and 9@5: three nodes *)
  check_int "separate leaves per callsite" 3 (Cct.node_count cct)

let test_hot_traces_roundtrip () =
  let cct = Cct.create () in
  let hot_t = trace 9 [ (1, 2); (3, 4) ] in
  let cold_t = trace 8 [ (1, 6) ] in
  Cct.add_trace ~weight:99.0 cct hot_t;
  Cct.add_trace ~weight:1.0 cct cold_t;
  match Cct.to_hot_traces cct ~threshold:0.015 with
  | [ (t, w) ] ->
      check_bool "hot trace survives the round trip" true (Trace.equal t hot_t);
      check_bool "weight" true (w = 99.0)
  | other -> Alcotest.failf "expected one hot trace, got %d" (List.length other)

let test_equivalence_with_dcg () =
  (* Same sample stream into both representations: hot sets must agree. *)
  let dcg = Dcg.create () in
  let samples =
    [
      (trace 9 [ (1, 2); (3, 4) ], 40);
      (trace 9 [ (1, 2); (5, 6) ], 30);
      (trace 8 [ (1, 2) ], 25);
      (trace 7 [ (2, 0) ], 1);
    ]
  in
  List.iter
    (fun (t, n) ->
      for _ = 1 to n do
        Dcg.add_sample dcg t
      done)
    samples;
  let cct = Cct.of_dcg dcg in
  check_bool "totals agree" true
    (Cct.total_weight cct = Dcg.total_weight dcg);
  let normalize l =
    List.map (fun (t, w) -> (t, w)) l
    |> List.sort (fun (a, _) (b, _) -> Trace.compare a b)
  in
  let dcg_hot = normalize (Dcg.hot dcg ~threshold:0.015) in
  let cct_hot = normalize (Cct.to_hot_traces cct ~threshold:0.015) in
  check_int "same number of hot traces" (List.length dcg_hot)
    (List.length cct_hot);
  List.iter2
    (fun (t1, w1) (t2, w2) ->
      check_bool "same trace" true (Trace.equal t1 t2);
      check_bool "same weight" true (Float.abs (w1 -. w2) < 1e-9))
    dcg_hot cct_hot

let test_compaction_on_real_profile () =
  (* On a real workload profile, the CCT must not be larger than the flat
     table (shared prefixes can only help). *)
  let spec = Acsi_workloads.Workloads.find "javac" in
  let program = spec.Acsi_workloads.Workloads.build ~scale:40 in
  let result =
    Acsi_core.Runtime.run
      (Acsi_core.Config.default ~policy:(Acsi_policy.Policy.Fixed 4))
      program
  in
  let dcg = Acsi_aos.System.dcg result.Acsi_core.Runtime.sys in
  let cct = Cct.of_dcg dcg in
  check_bool "profile is non-trivial" true (Dcg.size dcg > 5);
  check_bool "CCT no larger than flat + leaves" true
    (Cct.node_count cct <= 3 * Dcg.size dcg);
  check_bool "rules from CCT are buildable" true
    (Rules.rule_count
       (Rules.of_hot_traces (Cct.to_hot_traces cct ~threshold:0.015))
    > 0)

let suite =
  [
    Alcotest.test_case "weights accumulate" `Quick test_weights_accumulate;
    Alcotest.test_case "prefix sharing" `Quick test_prefix_sharing;
    Alcotest.test_case "distinct callsites" `Quick
      test_distinct_callsites_distinct_nodes;
    Alcotest.test_case "hot traces round trip" `Quick test_hot_traces_roundtrip;
    Alcotest.test_case "equivalence with flat profile" `Quick
      test_equivalence_with_dcg;
    Alcotest.test_case "compaction on a real profile" `Quick
      test_compaction_on_real_profile;
  ]
