(* Tests for profile serialization and the offline profile-directed
   experiment it enables. *)

open Acsi_bytecode
open Acsi_profile
open Acsi_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mid n = Ids.Method_id.of_int n

let trace callee chain =
  Trace.make ~callee:(mid callee)
    ~chain:(List.map (fun (c, s) -> { Trace.caller = mid c; callsite = s }) chain)

let test_roundtrip () =
  let dcg = Dcg.create () in
  for _ = 1 to 7 do
    Dcg.add_sample dcg (trace 3 [ (1, 2) ])
  done;
  for _ = 1 to 4 do
    Dcg.add_sample dcg (trace 4 [ (1, 2); (5, 6) ])
  done;
  let restored = Persist.of_string (Persist.to_string dcg) in
  check_bool "weights restored" true
    (Dcg.weight restored (trace 3 [ (1, 2) ]) = 7.0
    && Dcg.weight restored (trace 4 [ (1, 2); (5, 6) ]) = 4.0);
  check_int "size restored" (Dcg.size dcg) (Dcg.size restored);
  check_bool "total restored" true
    (Dcg.total_weight restored = Dcg.total_weight dcg)

let test_stable_output () =
  let dcg = Dcg.create () in
  Dcg.add_sample dcg (trace 2 [ (9, 1) ]);
  Dcg.add_sample dcg (trace 1 [ (8, 0) ]);
  let s1 = Persist.to_string dcg in
  let s2 = Persist.to_string (Persist.of_string s1) in
  Alcotest.(check string) "canonical form is a fixed point" s1 s2

let test_malformed_inputs () =
  let bad input =
    match Persist.of_string input with
    | _ -> Alcotest.failf "accepted malformed input %S" input
    | exception Persist.Malformed _ -> ()
  in
  bad "";
  bad "not-a-header\n";
  bad "acsi-profile 1\ntrace\n";
  bad "acsi-profile 1\ntrace x 1.0 1:2\n";
  bad "acsi-profile 1\ntrace 3 1.0 nonsense\n";
  bad "acsi-profile 1\ntrace 3 1.0 1:2:3\n"

let test_file_roundtrip () =
  let dcg = Dcg.create () in
  Dcg.add_sample dcg (trace 3 [ (1, 2) ]);
  let path = Filename.temp_file "acsi_profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save path dcg;
      let restored = Persist.load path in
      check_int "file roundtrip" (Dcg.size dcg) (Dcg.size restored))

(* The offline experiment: collect a profile in run 1, seed run 2 with it;
   the seeded run must reach its inlining decisions with at most as many
   optimizing compilations as the cold run (no warm-up churn). *)
let test_offline_seeding () =
  let spec = Acsi_workloads.Workloads.find "jbb" in
  let program =
    spec.Acsi_workloads.Workloads.build ~scale:25
  in
  let cfg = Config.default ~policy:(Acsi_policy.Policy.Fixed 3) in
  let cold = Runtime.run cfg program in
  let collected = Acsi_aos.System.dcg cold.Runtime.sys in
  let profile = Persist.of_string (Persist.to_string collected) in
  let seeded = Runtime.run ~profile cfg program in
  Alcotest.(check (list int))
    "output unchanged"
    (Acsi_vm.Interp.output cold.Runtime.vm)
    (Acsi_vm.Interp.output seeded.Runtime.vm);
  check_bool "seeded run has rules from the first epoch" true
    (seeded.Runtime.metrics.Metrics.rule_count > 0);
  (* A mature profile from the start changes compilation churn in either
     direction (earlier rules, but also earlier missing-edge passes); it
     must stay in the same ballpark. *)
  check_bool "seeded compilation churn stays bounded" true
    (seeded.Runtime.metrics.Metrics.opt_compilations
    <= (2 * cold.Runtime.metrics.Metrics.opt_compilations) + 4)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "stable canonical output" `Quick test_stable_output;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed_inputs;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "offline profile seeding" `Quick test_offline_seeding;
  ]
