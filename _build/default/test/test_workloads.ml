(* Workload sanity: every benchmark compiles, verifies, runs at a small
   scale, produces deterministic output, and behaves identically with and
   without the adaptive optimization system. *)

open Acsi_core

let small_scale = 0.12

let programs = lazy (Acsi_workloads.Workloads.build_all ~scale_factor:small_scale ())

let cfg () = Config.default ~policy:Acsi_policy.Policy.Context_insensitive

let test_all_run () =
  List.iter
    (fun (name, program) ->
      let vm = Runtime.run_no_aos (cfg ()) program in
      Alcotest.(check bool)
        (name ^ " produced output") true
        (List.length (Acsi_vm.Interp.output vm) > 0))
    (Lazy.force programs)

let test_deterministic () =
  List.iter
    (fun (name, program) ->
      let out1 = Acsi_vm.Interp.output (Runtime.run_no_aos (cfg ()) program) in
      let out2 = Acsi_vm.Interp.output (Runtime.run_no_aos (cfg ()) program) in
      Alcotest.(check (list int)) (name ^ " deterministic") out1 out2)
    (Lazy.force programs)

let test_aos_preserves_output () =
  List.iter
    (fun (name, program) ->
      let base = Acsi_vm.Interp.output (Runtime.run_no_aos (cfg ()) program) in
      List.iter
        (fun policy ->
          let result = Runtime.run (Config.default ~policy) program in
          Alcotest.(check (list int))
            (Printf.sprintf "%s under %s" name
               (Acsi_policy.Policy.to_string policy))
            base
            (Acsi_vm.Interp.output result.Runtime.vm))
        Acsi_policy.Policy.
          [
            Context_insensitive;
            Fixed 3;
            Parameterless 4;
            Class_methods 4;
            Large_methods 4;
            Hybrid_param_class 5;
            Hybrid_param_large 5;
            Adaptive_resolving 4;
          ])
    (Lazy.force programs)

let test_compress_roundtrip () =
  let _, program =
    List.find (fun (n, _) -> String.equal n "compress") (Lazy.force programs)
  in
  let vm = Runtime.run_no_aos (cfg ()) program in
  match Acsi_vm.Interp.output vm with
  | [ _checksum; errors ] ->
      Alcotest.(check int) "compress roundtrip errors" 0 errors
  | other ->
      Alcotest.failf "unexpected compress output arity: %d" (List.length other)

let test_adaptive_system_compiles_methods () =
  (* Needs runs long enough for the sampler to find hot methods. *)
  List.iter
    (fun (name, program) ->
      let result =
        Runtime.run (Config.default ~policy:(Acsi_policy.Policy.Fixed 3)) program
      in
      let m = result.Runtime.metrics in
      Alcotest.(check bool)
        (name ^ " opt-compiled some methods")
        true
        (m.Metrics.opt_methods > 0);
      Alcotest.(check bool)
        (name ^ " took method samples")
        true
        (m.Metrics.method_samples > 0);
      Alcotest.(check bool)
        (name ^ " took trace samples")
        true (m.Metrics.trace_samples > 0))
    (Acsi_workloads.Workloads.build_all ~scale_factor:0.3 ())

let suite =
  [
    Alcotest.test_case "all benchmarks run" `Quick test_all_run;
    Alcotest.test_case "deterministic output" `Quick test_deterministic;
    Alcotest.test_case "AOS preserves observable behaviour" `Slow
      test_aos_preserves_output;
    Alcotest.test_case "compress roundtrip is lossless" `Quick
      test_compress_roundtrip;
    Alcotest.test_case "adaptive system compiles hot methods" `Quick
      test_adaptive_system_compiles_methods;
  ]
