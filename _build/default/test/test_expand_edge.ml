(* Edge-case tests for the inline expander: void callees, calls inside
   guarded inline bodies, operand stacks pending across inlined regions,
   and nested guard chains. *)

open Acsi_bytecode
open Acsi_jit
open Acsi_profile
open Acsi_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_program program =
  let vm = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run vm;
  (vm, Acsi_vm.Interp.output vm)

(* Compile [root] with rules that mark every call edge in the whole
   program hot for every CHA-possible target, then compare outputs. *)
let force_optimize ?(roots = None) program =
  let hot = ref [] in
  Array.iter
    (fun (m : Meth.t) ->
      Array.iteri
        (fun pc instr ->
          let add callee =
            hot :=
              ( Trace.make ~callee
                  ~chain:[ { Trace.caller = m.Meth.id; callsite = pc } ],
                50.0 )
              :: !hot
          in
          match instr with
          | Instr.Call_static mid | Instr.Call_direct mid -> add mid
          | Instr.Call_virtual (sel, _) ->
              List.iter add (Program.implementations program sel)
          | _ -> ())
        m.Meth.body)
    (Program.methods program);
  let oracle = Oracle.create program in
  Oracle.set_rules oracle (Rules.of_hot_traces !hot);
  let _, expected = run_program program in
  let vm = Acsi_vm.Interp.create program in
  let compiled =
    match roots with
    | Some names ->
        List.map (fun (cls, name) -> Program.find_method program ~cls ~name) names
    | None -> Array.to_list (Program.methods program)
  in
  List.iter
    (fun (m : Meth.t) ->
      let code, _ =
        Expand.compile program (Acsi_vm.Interp.cost vm) oracle ~root:m
      in
      Acsi_vm.Interp.install_code vm m.Meth.id code)
    compiled;
  Acsi_vm.Interp.run vm;
  Alcotest.(check (list int)) "output preserved" expected (Acsi_vm.Interp.output vm);
  vm

let test_void_callee_inlined () =
  let open Dsl in
  let program =
    Compile.prog
      (prog ~globals:[ "log" ]
         [
           cls "V" ~fields:[]
             [
               static_meth "bump" [ "x" ] ~returns:false
                 [ setg "log" (add (g "log") (v "x")) ];
               static_meth "work" [] ~returns:true
                 [
                   expr (call "V" "bump" [ i 3 ]);
                   expr (call "V" "bump" [ i 4 ]);
                   ret (g "log");
                 ];
             ];
         ]
         [ print (call "V" "work" []) ])
  in
  let vm = force_optimize program in
  (* the void callee really was inlined: no dynamic calls to it *)
  let bump = Program.find_method program ~cls:"V" ~name:"bump" in
  check_int "bump never invoked dynamically" 0
    (Acsi_vm.Interp.invocation_count vm bump.Meth.id)

let test_call_with_pending_operands () =
  let open Dsl in
  (* the callee result is consumed mid-expression, with operands already
     on the caller's stack when the inlined body runs *)
  let program =
    Compile.prog
      (prog
         [
           cls "P" ~fields:[]
             [
               static_meth "three" [] ~returns:true [ ret (i 3) ];
               static_meth "calc" [ "x" ] ~returns:true
                 [
                   ret
                     (add
                        (mul (v "x") (call "P" "three" []))
                        (sub (call "P" "three" []) (v "x")));
                 ];
             ];
         ]
         [ print (call "P" "calc" [ i 10 ]) ])
  in
  ignore (force_optimize program)

let test_call_inside_guarded_body () =
  let open Dsl in
  (* A virtual callee that itself calls a static helper: inlining the
     guarded target must recursively consider the inner call. *)
  let program =
    Compile.prog
      (prog
         [
           cls "H" ~fields:[]
             [ meth "go" [ "x" ] ~returns:true [ ret (v "x") ] ];
           cls "H1" ~parent:"H" ~fields:[]
             [
               meth "go" [ "x" ] ~returns:true
                 [ ret (call "S" "helper" [ v "x" ]) ];
             ];
           cls "H2" ~parent:"H" ~fields:[]
             [ meth "go" [ "x" ] ~returns:true [ ret (neg (v "x")) ] ];
           cls "S" ~fields:[]
             [
               static_meth "helper" [ "x" ] ~returns:true
                 [ ret (add (mul (v "x") (i 2)) (i 1)) ];
               static_meth "drive" [ "h"; "x" ] ~returns:true
                 [ ret (inv (v "h") "go" [ v "x" ]) ];
             ];
         ]
         [
           print (call "S" "drive" [ new_ "H1" []; i 5 ]);
           print (call "S" "drive" [ new_ "H2" []; i 5 ]);
           print (call "S" "drive" [ new_ "H" []; i 5 ]);
         ])
  in
  let vm = force_optimize ~roots:(Some [ ("S", "drive") ]) program in
  (* two guarded targets at most (max_guarded_targets = 2): the third
     receiver class must fall back through the guards *)
  check_bool "guard misses cover the unguarded class" true
    (Acsi_vm.Interp.guard_misses vm > 0);
  (* helper was inlined inside H1's guarded body: never invoked *)
  let helper = Program.find_method program ~cls:"S" ~name:"helper" in
  check_int "helper inlined transitively" 0
    (Acsi_vm.Interp.invocation_count vm helper.Meth.id)

let test_inline_depth_is_bounded () =
  let open Dsl in
  (* A 10-deep static chain: expansion must stop at the depth limit, not
     flatten the whole chain. *)
  let level k =
    static_meth
      (Printf.sprintf "f%d" k)
      [ "x" ] ~returns:true
      [ ret (call "C" (Printf.sprintf "f%d" (k - 1)) [ add (v "x") (i 1) ]) ]
  in
  let program =
    Compile.prog
      (prog
         [
           cls "C" ~fields:[]
             (static_meth "f0" [ "x" ] ~returns:true [ ret (v "x") ]
             :: List.init 10 (fun k -> level (k + 1)));
         ]
         [ print (call "C" "f10" [ i 0 ]) ])
  in
  let vm = force_optimize program in
  (* With a depth limit well below 10, some intermediate link must remain
     a real call rather than the chain flattening entirely. *)
  let residual_calls =
    List.init 10 (fun k ->
        let m =
          Program.find_method program ~cls:"C" ~name:(Printf.sprintf "f%d" k)
        in
        Acsi_vm.Interp.invocation_count vm m.Meth.id)
    |> List.fold_left ( + ) 0
  in
  check_bool "chain not fully flattened" true (residual_calls > 0)

let test_recursive_callee_not_inlined () =
  let open Dsl in
  let program =
    Compile.prog
      (prog
         [
           cls "R" ~fields:[]
             [
               static_meth "count" [ "n" ] ~returns:true
                 [
                   if_ (le (v "n") (i 0)) [ ret (i 0) ] [];
                   ret (add (i 1) (call "R" "count" [ sub (v "n") (i 1) ]));
                 ];
             ];
         ]
         [ print (call "R" "count" [ i 6 ]) ])
  in
  let vm = force_optimize program in
  let count = Program.find_method program ~cls:"R" ~name:"count" in
  check_bool "recursion still calls itself" true
    (Acsi_vm.Interp.invocation_count vm count.Meth.id > 0)

let suite =
  [
    Alcotest.test_case "void callee inlined" `Quick test_void_callee_inlined;
    Alcotest.test_case "pending operands across inline" `Quick
      test_call_with_pending_operands;
    Alcotest.test_case "call inside guarded body" `Quick
      test_call_inside_guarded_body;
    Alcotest.test_case "inline depth bounded" `Quick
      test_inline_depth_is_bounded;
    Alcotest.test_case "recursive callee kept as call" `Quick
      test_recursive_callee_not_inlined;
  ]
