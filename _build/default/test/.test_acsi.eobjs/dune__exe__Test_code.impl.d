test/test_code.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_vm Alcotest Array Code Compile Cost Dsl Format Ids Instr List Meth Program String
