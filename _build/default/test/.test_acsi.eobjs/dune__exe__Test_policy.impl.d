test/test_policy.ml: Acsi_bytecode Acsi_lang Acsi_policy Alcotest List Policy Program
