test/test_aos.ml: Accounting Acsi_aos Acsi_bytecode Acsi_jit Acsi_lang Acsi_policy Acsi_profile Acsi_vm Alcotest Array Db Flags Hot_methods Ids List Policy Program Registry System Trace_listener
