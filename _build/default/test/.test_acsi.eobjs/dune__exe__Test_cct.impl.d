test/test_cct.ml: Acsi_aos Acsi_bytecode Acsi_core Acsi_policy Acsi_profile Acsi_workloads Alcotest Cct Dcg Float Ids List Rules Trace
