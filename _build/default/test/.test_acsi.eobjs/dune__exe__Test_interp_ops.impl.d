test/test_interp_ops.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_vm Alcotest Array Cost Instr Interp List Meth Printf Program Verify
