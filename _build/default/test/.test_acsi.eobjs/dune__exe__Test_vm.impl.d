test/test_vm.ml: Acsi_bytecode Acsi_lang Acsi_vm Alcotest Ast Code Compile Cost Dsl Ids Instr Interp List Meth Printf Program String Value
