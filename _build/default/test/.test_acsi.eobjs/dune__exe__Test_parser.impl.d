test/test_parser.ml: Acsi_core Acsi_lang Acsi_policy Acsi_vm Alcotest List Printf String
