test/test_smoke.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_profile Acsi_vm Alcotest Array Code Compile Cost Dsl Expand Instr Interp List Meth Oracle Program Rules Trace
