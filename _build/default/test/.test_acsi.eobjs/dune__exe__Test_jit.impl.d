test/test_jit.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_profile Acsi_vm Alcotest Array Code Compile Cost Dsl Expand Ids Instr Interp List Meth Oracle Program Rules Size Trace
