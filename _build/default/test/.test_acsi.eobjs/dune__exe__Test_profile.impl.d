test/test_profile.ml: Acsi_bytecode Acsi_profile Alcotest Array Dcg Float Gen Ids List QCheck QCheck_alcotest Rules Trace
