test/test_bytecode.ml: Acsi_bytecode Alcotest Array Clazz Codebuf Ids Instr List Meth Printf Program String Verify
