test/test_micro.ml: Acsi_aos Acsi_bytecode Acsi_core Acsi_policy Acsi_vm Acsi_workloads Alcotest Array Config Hashtbl List Metrics Policy Runtime
