test/test_acsi.mli:
