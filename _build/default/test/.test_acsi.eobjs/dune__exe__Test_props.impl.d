test/test_props.ml: Acsi_bytecode Acsi_core Acsi_jit Acsi_lang Acsi_policy Acsi_profile Acsi_vm Array Ast Compile Config Dsl Instr List Meth Metrics Printf Program QCheck QCheck_alcotest Runtime
