test/test_core.ml: Acsi_aos Acsi_core Acsi_lang Acsi_policy Acsi_vm Alcotest Buffer Config Experiment Float Format List Metrics Policy Report Runtime String
