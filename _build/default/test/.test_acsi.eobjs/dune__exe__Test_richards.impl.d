test/test_richards.ml: Acsi_core Acsi_policy Acsi_vm Acsi_workloads Alcotest Config List Metrics Policy Runtime
