test/test_expand_edge.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_profile Acsi_vm Alcotest Array Compile Dsl Expand Instr List Meth Oracle Printf Program Rules Trace
