test/test_workloads.ml: Acsi_core Acsi_policy Acsi_vm Acsi_workloads Alcotest Config Lazy List Metrics Printf Runtime String
