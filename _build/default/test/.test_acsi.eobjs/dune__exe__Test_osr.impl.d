test/test_osr.ml: Acsi_aos Acsi_bytecode Acsi_core Acsi_jit Acsi_lang Acsi_policy Acsi_vm Acsi_workloads Alcotest Config List Metrics Policy Program Runtime
