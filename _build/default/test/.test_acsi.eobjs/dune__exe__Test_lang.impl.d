test/test_lang.ml: Acsi_lang Acsi_vm Alcotest Compile Dsl Printf String
