test/test_peephole.ml: Acsi_bytecode Acsi_jit Acsi_lang Acsi_vm Alcotest Array Expand Instr List Meth Oracle Peephole Program Verify
