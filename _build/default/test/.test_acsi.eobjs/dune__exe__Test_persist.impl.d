test/test_persist.ml: Acsi_aos Acsi_bytecode Acsi_core Acsi_policy Acsi_profile Acsi_vm Acsi_workloads Alcotest Config Dcg Filename Fun Ids List Metrics Persist Runtime Sys Trace
