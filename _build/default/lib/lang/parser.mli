(** Recursive-descent parser for the textual mini-language.

    Grammar sketch (see the repository's [examples/programs/] for real
    input):

    {v
    program   := topdecl*
    topdecl   := "global" ident ";"
               | "class" Upper ("extends" Upper)? "{" member* "}"
               | "main" block
    member    := "field" ident ";"
               | "static"? "def" ident "(" params ")" ("->" "int")? block
    stmt      := "var" ident "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "for" ident "in" expr ".." expr block
               | "return" expr? ";"  |  "print" expr ";"
               | lvalue "=" expr ";"  |  expr ";"
    expr      := usual precedence: or, and, "|", "^", "&", comparisons /
                 "is" Upper, shifts, + -, * / %, unary - / "not", postfix
    postfix   := "." m "(" args ")"          virtual call
               | "!" Upper "." m "(" args ")"  statically-bound call
               | "@" Upper "." f             typed field access
               | "[" expr "]"                array indexing
    primary   := int | "null" | "this" | ident | "(" expr ")"
               | "new" Upper "(" args ")"
               | "arr" "(" expr ")" | "len" "(" expr ")"   (builtins)
               | Upper "." m "(" args ")"    static call
    v}

    [this.f] reads an own field; a field of another object needs the
    typed form [e @ Class.f] (the language is untyped, so the class name
    fixes the field layout). A method marked [-> int] returns a value;
    otherwise it is void. Names introduced by [global] are resolved as
    globals wherever they appear. *)

exception Error of string
(** Syntax error with line/column. *)

val program : string -> Ast.prog
(** Parse source text. Raises {!Error} (or {!Lexer.Error}). *)

val compile : string -> Acsi_bytecode.Program.t
(** [program] followed by {!Compile.prog}. *)
