(** Compiler from the mini-language {!Ast} to sealed, verified bytecode
    programs.

    Resolution rules:
    - classes may be declared in any order; parents are sorted first;
    - instance methods sharing a name (selector) must agree on arity and on
      whether they return a value, program-wide — this stands in for the
      type checker a real front end would have;
    - a constructor is an instance method named ["init"] returning no
      value; [New (c, args)] runs the nearest ["init"] up the hierarchy;
    - the program entry point is a synthetic static method
      ["$Main.main"] holding the program's toplevel statements. *)

exception Error of string

val prog : Ast.prog -> Acsi_bytecode.Program.t
(** Compile, seal and verify a program. Raises {!Error} on any resolution
    or arity problem, and {!Acsi_bytecode.Verify.Error} if the generated
    code fails verification (which indicates a compiler bug — see the
    property tests). *)
