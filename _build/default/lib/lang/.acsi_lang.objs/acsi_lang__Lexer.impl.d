lib/lang/lexer.ml: Format List Printf String
