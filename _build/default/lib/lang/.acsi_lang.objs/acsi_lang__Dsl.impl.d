lib/lang/dsl.ml: Acsi_bytecode Ast Instr
