lib/lang/parser.mli: Acsi_bytecode Ast
