lib/lang/ast.ml: Acsi_bytecode
