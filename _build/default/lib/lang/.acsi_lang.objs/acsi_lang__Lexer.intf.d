lib/lang/lexer.mli:
