lib/lang/compile.ml: Acsi_bytecode Array Ast Bool Codebuf Format Hashtbl Ids Instr List Meth Option Printf Program String Verify
