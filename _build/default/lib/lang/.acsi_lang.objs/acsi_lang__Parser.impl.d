lib/lang/parser.ml: Acsi_bytecode Array Ast Compile Format Instr Lexer List Option Printf
