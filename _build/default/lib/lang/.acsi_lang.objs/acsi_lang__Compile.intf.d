lib/lang/compile.mli: Acsi_bytecode Ast
