(** Lexer for the textual mini-language (see {!Parser} for the grammar).

    Tokens carry their source position for diagnostics. Comments run from
    [//] to end of line; whitespace is insignificant. *)

type token =
  | Int of int
  | Ident of string  (** lower-case initial: locals, methods, fields *)
  | Upper of string  (** upper-case initial: class names *)
  | Kw of string  (** keywords: class extends field def static global main
                      var if else while for in return print new null this
                      is and or not *)
  | Punct of string
      (** punctuation/operators: [( ) { } [ ] ; , . @ ! = == != < <= > >=
          + - * / % & | ^ << >> -> ..] *)
  | Eof

type t = { token : token; line : int; col : int }

exception Error of string
(** Lexical error with position. *)

val tokenize : string -> t list
(** The token stream, ending in [Eof]. Raises {!Error}. *)

val token_to_string : token -> string
