(* Thin combinator layer over Ast for writing workloads compactly.

   Naming follows the convention: expressions are short lower-case words
   ([v], [g], [fld], [inv], ...), statements end in [_] only where the bare
   name would collide with a keyword or an expression ([let_], [if_],
   [while_], [for_]). *)

open Acsi_bytecode

let i n = Ast.Int n
let null = Ast.Null
let v name = Ast.Local name
let g name = Ast.Global name
let this = Ast.This
let neg e = Ast.Neg e
let not_ e = Ast.Not e
let add a b = Ast.Binop (Instr.Add, a, b)
let sub a b = Ast.Binop (Instr.Sub, a, b)
let mul a b = Ast.Binop (Instr.Mul, a, b)
let div a b = Ast.Binop (Instr.Div, a, b)
let rem a b = Ast.Binop (Instr.Rem, a, b)
let band a b = Ast.Binop (Instr.And, a, b)
let bor a b = Ast.Binop (Instr.Or, a, b)
let bxor a b = Ast.Binop (Instr.Xor, a, b)
let shl a b = Ast.Binop (Instr.Shl, a, b)
let shr a b = Ast.Binop (Instr.Shr, a, b)
let eq a b = Ast.Cmp (Instr.Eq, a, b)
let ne a b = Ast.Cmp (Instr.Ne, a, b)
let lt a b = Ast.Cmp (Instr.Lt, a, b)
let le a b = Ast.Cmp (Instr.Le, a, b)
let gt a b = Ast.Cmp (Instr.Gt, a, b)
let ge a b = Ast.Cmp (Instr.Ge, a, b)
let and_ a b = Ast.And (a, b)
let or_ a b = Ast.Or (a, b)
let cond c a b = Ast.Cond (c, a, b)
let call cls name args = Ast.Static_call (cls, name, args)
let inv recv name args = Ast.Virtual_call (recv, name, args)
let dcall recv cls name args = Ast.Direct_call (recv, cls, name, args)
let new_ cls args = Ast.New (cls, args)
let thisf name = Ast.This_field name
let fld cls recv name = Ast.Field (cls, recv, name)
let arr_new len = Ast.Array_new len
let arr_get a idx = Ast.Array_get (a, idx)
let arr_len a = Ast.Array_len a
let instof e cls = Ast.Instance_of (e, cls)
let let_ name e = Ast.Let (name, e)
let setg name e = Ast.Set_global (name, e)
let set_thisf name e = Ast.Set_this_field (name, e)
let setf cls recv name e = Ast.Set_field (cls, recv, name, e)
let arr_set a idx value = Ast.Array_set (a, idx, value)
let expr e = Ast.Expr e
let if_ c t e = Ast.If (c, t, e)
let while_ c body = Ast.While (c, body)
let for_ name lo hi body = Ast.For (name, lo, hi, body)
let ret e = Ast.Return (Some e)
let retv = Ast.Return None
let print e = Ast.Print e

let meth name params ~returns body =
  {
    Ast.md_name = name;
    md_kind = Ast.Instance;
    md_params = params;
    md_returns = returns;
    md_body = body;
  }

let static_meth name params ~returns body =
  {
    Ast.md_name = name;
    md_kind = Ast.Static;
    md_params = params;
    md_returns = returns;
    md_body = body;
  }

let cls ?parent name ~fields methods =
  {
    Ast.cd_name = name;
    cd_parent = parent;
    cd_fields = fields;
    cd_methods = methods;
  }

let prog ?(globals = []) classes main =
  { Ast.pr_classes = classes; pr_globals = globals; pr_main = main }
