(* The structured mini-language that workloads and examples are written in.

   The language is a small Java-like subset: classes with single
   inheritance, instance and static methods, integer arithmetic, arrays,
   and virtual dispatch. It compiles to the bytecode IR (see Compile).

   Field accesses on expressions other than [this] carry the static class
   name of the receiver so the compiler can resolve the field slot without
   a type checker; the named class only fixes the layout, dispatch stays
   fully dynamic. *)

type binop = Acsi_bytecode.Instr.binop
type cmp = Acsi_bytecode.Instr.cmp

type expr =
  | Int of int
  | Null
  | Local of string
  | Global of string
  | This
  | Neg of expr
  | Not of expr
  | Binop of binop * expr * expr
  | Cmp of cmp * expr * expr
  | And of expr * expr  (* short-circuit *)
  | Or of expr * expr  (* short-circuit *)
  | Cond of expr * expr * expr  (* conditional expression: c ? a : b *)
  | Static_call of string * string * expr list  (* class, method, args *)
  | Virtual_call of expr * string * expr list  (* receiver, selector, args *)
  | Direct_call of expr * string * string * expr list
      (* receiver, static class, method: statically-bound instance call *)
  | New of string * expr list  (* runs the class's "init" constructor *)
  | This_field of string
  | Field of string * expr * string  (* static class, receiver, field *)
  | Array_new of expr
  | Array_get of expr * expr
  | Array_len of expr
  | Instance_of of expr * string

type stmt =
  | Let of string * expr
      (* binds a fresh local on first use, reassigns afterwards *)
  | Set_global of string * expr
  | Set_this_field of string * expr
  | Set_field of string * expr * string * expr  (* class, receiver, field, v *)
  | Array_set of expr * expr * expr  (* array, index, value *)
  | Expr of expr  (* evaluate for effect; result (if any) is dropped *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (* for v = lo; v < hi; v = v + 1 — hi is re-evaluated per iteration *)
  | Return of expr option
  | Print of expr

type meth_kind = Static | Instance

type meth_decl = {
  md_name : string;
  md_kind : meth_kind;
  md_params : string list;
  md_returns : bool;
  md_body : stmt list;
}

type class_decl = {
  cd_name : string;
  cd_parent : string option;
  cd_fields : string list;
  cd_methods : meth_decl list;
}

type prog = {
  pr_classes : class_decl list;
  pr_globals : string list;
  pr_main : stmt list;
}
