open Acsi_bytecode

exception Error of string

let err fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let emit_u buf instr = Codebuf.emit buf instr ()
let branch_u buf instr label = Codebuf.emit_branch buf instr () label

type class_info = {
  ci_id : Ids.Class_id.t;
  ci_decl : Ast.class_decl;
  ci_layout : string array;  (* full field layout, inherited prefix first *)
}

type ctx = {
  builder : Program.Builder.t;
  class_infos : (string, class_info) Hashtbl.t;
  statics : (string, Ids.Method_id.t * Ast.meth_decl) Hashtbl.t;
      (* key "Class.method" *)
  instances : (string, Ids.Method_id.t * Ast.meth_decl) Hashtbl.t;
      (* key "Class.method", declared (not inherited) *)
  selector_sigs : (string, bool) Hashtbl.t;  (* mangled selector -> returns *)
  globals : (string, int) Hashtbl.t;
}

(* Selectors are overloaded by arity, Java-style: the interned dispatch
   name is "name/arity". *)
let mangle name arity = Printf.sprintf "%s/%d" name arity

let class_info ctx name =
  match Hashtbl.find_opt ctx.class_infos name with
  | Some ci -> ci
  | None -> err "unknown class %s" name

let field_slot ctx cls field =
  let ci = class_info ctx cls in
  let layout = ci.ci_layout in
  let rec find i =
    if i >= Array.length layout then
      err "class %s has no field %s" cls field
    else if String.equal layout.(i) field then i
    else find (i + 1)
  in
  find 0

(* Find an instance method by name/arity on [cls] or the nearest
   ancestor. *)
let rec find_instance ctx cls name ~arity =
  match Hashtbl.find_opt ctx.instances (cls ^ "." ^ mangle name arity) with
  | Some found -> found
  | None -> (
      let ci = class_info ctx cls in
      match ci.ci_decl.Ast.cd_parent with
      | Some parent -> find_instance ctx parent name ~arity
      | None -> err "class %s has no instance method %s/%d" cls name arity)

let find_static ctx cls name ~arity =
  match Hashtbl.find_opt ctx.statics (cls ^ "." ^ mangle name arity) with
  | Some found -> found
  | None -> err "class %s has no static method %s/%d" cls name arity

let selector_sig ctx name ~arity =
  match Hashtbl.find_opt ctx.selector_sigs (mangle name arity) with
  | Some s -> s
  | None -> err "no instance method anywhere is named %s/%d" name arity

(* Per-method-body compilation state. *)
type body_ctx = {
  ctx : ctx;
  em : unit Codebuf.t;
  locals : (string, int) Hashtbl.t;
  mutable next_slot : int;
  owner : string option;  (* enclosing class for This/This_field *)
  meth_name : string;  (* for error messages *)
}

let berr bc fmt =
  Format.kasprintf
    (fun msg -> err "in %s: %s" bc.meth_name msg)
    fmt

let local_slot bc name =
  match Hashtbl.find_opt bc.locals name with
  | Some slot -> slot
  | None ->
      let slot = bc.next_slot in
      Hashtbl.add bc.locals name slot;
      bc.next_slot <- slot + 1;
      slot

let bound_local bc name =
  match Hashtbl.find_opt bc.locals name with
  | Some slot -> slot
  | None -> berr bc "unbound local %s" name

let global_slot bc name =
  match Hashtbl.find_opt bc.ctx.globals name with
  | Some slot -> slot
  | None -> berr bc "unknown global %s" name

(* Compile an expression; returns whether a value was pushed. Void calls
   push nothing and are only legal in statement position ([want_value]
   false). All other expressions always push. *)
let rec compile_expr bc ~want_value (e : Ast.expr) =
  let emit = emit_u bc.em in
  let push1 () = true in
  match e with
  | Ast.Int n ->
      emit (Instr.Const n);
      push1 ()
  | Ast.Null ->
      emit Instr.Const_null;
      push1 ()
  | Ast.Local name ->
      emit (Instr.Load (bound_local bc name));
      push1 ()
  | Ast.Global name ->
      emit (Instr.Get_global (global_slot bc name));
      push1 ()
  | Ast.This -> (
      match bc.owner with
      | Some _ ->
          emit (Instr.Load 0);
          push1 ()
      | None -> berr bc "this outside an instance method")
  | Ast.Neg e1 ->
      ignore (compile_value bc e1);
      emit Instr.Neg;
      push1 ()
  | Ast.Not e1 ->
      ignore (compile_value bc e1);
      emit Instr.Not;
      push1 ()
  | Ast.Binop (op, a, b) ->
      ignore (compile_value bc a);
      ignore (compile_value bc b);
      emit (Instr.Binop op);
      push1 ()
  | Ast.Cmp (c, a, b) ->
      ignore (compile_value bc a);
      ignore (compile_value bc b);
      emit (Instr.Cmp c);
      push1 ()
  | Ast.And (a, b) ->
      let l_false = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      ignore (compile_value bc a);
      branch_u bc.em (Instr.Jump_ifnot 0) l_false;
      ignore (compile_value bc b);
      branch_u bc.em (Instr.Jump 0) l_end;
      Codebuf.bind_label bc.em l_false;
      emit (Instr.Const 0);
      Codebuf.bind_label bc.em l_end;
      push1 ()
  | Ast.Or (a, b) ->
      let l_true = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      ignore (compile_value bc a);
      branch_u bc.em (Instr.Jump_if 0) l_true;
      ignore (compile_value bc b);
      branch_u bc.em (Instr.Jump 0) l_end;
      Codebuf.bind_label bc.em l_true;
      emit (Instr.Const 1);
      Codebuf.bind_label bc.em l_end;
      push1 ()
  | Ast.Cond (c, a, b) ->
      let l_else = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      ignore (compile_value bc c);
      branch_u bc.em (Instr.Jump_ifnot 0) l_else;
      ignore (compile_value bc a);
      branch_u bc.em (Instr.Jump 0) l_end;
      Codebuf.bind_label bc.em l_else;
      ignore (compile_value bc b);
      Codebuf.bind_label bc.em l_end;
      push1 ()
  | Ast.Static_call (cls, name, args) ->
      let mid, decl = find_static bc.ctx cls name ~arity:(List.length args) in
      ignore decl;
      List.iter (fun a -> ignore (compile_value bc a)) args;
      emit (Instr.Call_static mid);
      if (not decl.Ast.md_returns) && want_value then
        berr bc "void static call %s.%s used as a value" cls name;
      decl.Ast.md_returns
  | Ast.Virtual_call (recv, name, args) ->
      let arity = List.length args in
      let returns = selector_sig bc.ctx name ~arity in
      ignore (compile_value bc recv);
      List.iter (fun a -> ignore (compile_value bc a)) args;
      let sel =
        Program.Builder.intern_selector bc.ctx.builder (mangle name arity)
      in
      emit (Instr.Call_virtual (sel, arity));
      if (not returns) && want_value then
        berr bc "void virtual call %s used as a value" name;
      returns
  | Ast.Direct_call (recv, cls, name, args) ->
      let mid, decl = find_instance bc.ctx cls name ~arity:(List.length args) in
      ignore decl;
      ignore (compile_value bc recv);
      List.iter (fun a -> ignore (compile_value bc a)) args;
      emit (Instr.Call_direct mid);
      if (not decl.Ast.md_returns) && want_value then
        berr bc "void direct call %s.%s used as a value" cls name;
      decl.Ast.md_returns
  | Ast.New (cls, args) ->
      let ci = class_info bc.ctx cls in
      emit (Instr.New ci.ci_id);
      (try
         let mid, decl =
           find_instance bc.ctx cls "init" ~arity:(List.length args)
         in
         if decl.Ast.md_returns then
           berr bc "constructor %s.init must not return a value" cls;
         emit Instr.Dup;
         List.iter (fun a -> ignore (compile_value bc a)) args;
         emit (Instr.Call_direct mid)
       with Error _ when args = [] -> ());
      push1 ()
  | Ast.This_field field -> (
      match bc.owner with
      | Some owner ->
          emit (Instr.Load 0);
          emit (Instr.Get_field (field_slot bc.ctx owner field));
          push1 ()
      | None -> berr bc "this.%s outside an instance method" field)
  | Ast.Field (cls, recv, field) ->
      ignore (compile_value bc recv);
      emit (Instr.Get_field (field_slot bc.ctx cls field));
      push1 ()
  | Ast.Array_new len ->
      ignore (compile_value bc len);
      emit Instr.Array_new;
      push1 ()
  | Ast.Array_get (a, idx) ->
      ignore (compile_value bc a);
      ignore (compile_value bc idx);
      emit Instr.Array_get;
      push1 ()
  | Ast.Array_len a ->
      ignore (compile_value bc a);
      emit Instr.Array_len;
      push1 ()
  | Ast.Instance_of (e1, cls) ->
      ignore (compile_value bc e1);
      emit (Instr.Instance_of (class_info bc.ctx cls).ci_id);
      push1 ()

and compile_value bc e =
  let pushed = compile_expr bc ~want_value:true e in
  assert pushed

(* Whether a statement list statically ends every control path in a
   return — used to suppress unreachable jumps after branches (which
   would otherwise produce out-of-range targets at the end of a body). *)
let rec stmts_terminate = function
  | [] -> false
  | [ last ] -> stmt_terminates last
  | _ :: rest -> stmts_terminate rest

and stmt_terminates = function
  | Ast.Return _ -> true
  | Ast.If (_, t, f) -> stmts_terminate t && stmts_terminate f
  | Ast.Let _ | Ast.Set_global _ | Ast.Set_this_field _ | Ast.Set_field _
  | Ast.Array_set _ | Ast.Expr _ | Ast.While _ | Ast.For _ | Ast.Print _ ->
      false

let rec compile_stmt bc ~returns (s : Ast.stmt) =
  let emit = emit_u bc.em in
  match s with
  | Ast.Let (name, e) ->
      compile_value bc e;
      emit (Instr.Store (local_slot bc name))
  | Ast.Set_global (name, e) ->
      compile_value bc e;
      emit (Instr.Put_global (global_slot bc name))
  | Ast.Set_this_field (field, e) -> (
      match bc.owner with
      | Some owner ->
          emit (Instr.Load 0);
          compile_value bc e;
          emit (Instr.Put_field (field_slot bc.ctx owner field))
      | None -> berr bc "this.%s outside an instance method" field)
  | Ast.Set_field (cls, recv, field, e) ->
      compile_value bc recv;
      compile_value bc e;
      emit (Instr.Put_field (field_slot bc.ctx cls field))
  | Ast.Array_set (a, idx, value) ->
      compile_value bc a;
      compile_value bc idx;
      compile_value bc value;
      emit Instr.Array_set
  | Ast.Expr e -> if compile_expr bc ~want_value:false e then emit Instr.Pop
  | Ast.If (c, t, f) ->
      let l_else = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      compile_value bc c;
      branch_u bc.em (Instr.Jump_ifnot 0) l_else;
      List.iter (compile_stmt bc ~returns) t;
      if not (stmts_terminate t) then branch_u bc.em (Instr.Jump 0) l_end;
      Codebuf.bind_label bc.em l_else;
      List.iter (compile_stmt bc ~returns) f;
      Codebuf.bind_label bc.em l_end
  | Ast.While (c, body) ->
      let l_head = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      Codebuf.bind_label bc.em l_head;
      compile_value bc c;
      branch_u bc.em (Instr.Jump_ifnot 0) l_end;
      List.iter (compile_stmt bc ~returns) body;
      branch_u bc.em (Instr.Jump 0) l_head;
      Codebuf.bind_label bc.em l_end
  | Ast.For (name, lo, hi, body) ->
      let slot = local_slot bc name in
      compile_value bc lo;
      emit (Instr.Store slot);
      let l_head = Codebuf.new_label bc.em in
      let l_end = Codebuf.new_label bc.em in
      Codebuf.bind_label bc.em l_head;
      emit (Instr.Load slot);
      compile_value bc hi;
      emit (Instr.Cmp Instr.Lt);
      branch_u bc.em (Instr.Jump_ifnot 0) l_end;
      List.iter (compile_stmt bc ~returns) body;
      emit (Instr.Load slot);
      emit (Instr.Const 1);
      emit (Instr.Binop Instr.Add);
      emit (Instr.Store slot);
      branch_u bc.em (Instr.Jump 0) l_head;
      Codebuf.bind_label bc.em l_end
  | Ast.Return (Some e) ->
      if not returns then berr bc "returning a value from a void method";
      compile_value bc e;
      emit Instr.Return
  | Ast.Return None ->
      if returns then berr bc "empty return in a value-returning method";
      emit Instr.Return_void
  | Ast.Print e ->
      compile_value bc e;
      emit Instr.Print_int

let compile_body ctx ~owner ~meth_name ~kind ~params ~returns body =
  let bc =
    {
      ctx;
      em = Codebuf.create ~dummy:();
      locals = Hashtbl.create 16;
      next_slot = 0;
      owner = (match kind with Ast.Instance -> Some owner | Ast.Static -> None);
      meth_name = Printf.sprintf "%s.%s" owner meth_name;
    }
  in
  (match kind with
  | Ast.Instance ->
      Hashtbl.add bc.locals "this" 0;
      bc.next_slot <- 1
  | Ast.Static -> ());
  List.iter (fun p -> ignore (local_slot bc p)) params;
  List.iter (compile_stmt bc ~returns) body;
  (* Close every path in a void method; value-returning methods must end in
     an explicit return on every path, which the verifier enforces. *)
  if not returns then emit_u bc.em Instr.Return_void;
  (fst (Codebuf.finish bc.em), max bc.next_slot 1)

(* Sort class declarations so parents precede children. *)
let topo_sort classes =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (c : Ast.class_decl) ->
      if Hashtbl.mem by_name c.cd_name then
        err "duplicate class %s" c.cd_name;
      Hashtbl.add by_name c.cd_name c)
    classes;
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (c : Ast.class_decl) =
    match Hashtbl.find_opt visited c.cd_name with
    | Some `Done -> ()
    | Some `Visiting -> err "inheritance cycle through %s" c.cd_name
    | None ->
        Hashtbl.add visited c.cd_name `Visiting;
        (match c.cd_parent with
        | Some parent -> (
            match Hashtbl.find_opt by_name parent with
            | Some p -> visit p
            | None -> err "class %s extends unknown class %s" c.cd_name parent)
        | None -> ());
        Hashtbl.replace visited c.cd_name `Done;
        order := c :: !order
  in
  List.iter visit classes;
  List.rev !order

let main_class_name = "$Main"

let prog (p : Ast.prog) =
  let builder = Program.Builder.create () in
  let ctx =
    {
      builder;
      class_infos = Hashtbl.create 32;
      statics = Hashtbl.create 64;
      instances = Hashtbl.create 64;
      selector_sigs = Hashtbl.create 64;
      globals = Hashtbl.create 16;
    }
  in
  let main_decl =
    {
      Ast.cd_name = main_class_name;
      cd_parent = None;
      cd_fields = [];
      cd_methods =
        [
          {
            Ast.md_name = "main";
            md_kind = Ast.Static;
            md_params = [];
            md_returns = false;
            md_body = p.Ast.pr_main;
          };
        ];
    }
  in
  let classes = topo_sort (p.Ast.pr_classes @ [ main_decl ]) in
  (* Pass 1: declare classes, compute layouts. *)
  List.iter
    (fun (c : Ast.class_decl) ->
      let parent_info =
        Option.map (fun name -> class_info ctx name) c.cd_parent
      in
      let cid =
        Program.Builder.declare_class builder ~name:c.cd_name
          ~parent:(Option.map (fun ci -> ci.ci_id) parent_info)
          ~fields:c.cd_fields
      in
      let inherited =
        match parent_info with Some ci -> ci.ci_layout | None -> [||]
      in
      let layout = Array.append inherited (Array.of_list c.cd_fields) in
      Hashtbl.add ctx.class_infos c.cd_name
        { ci_id = cid; ci_decl = c; ci_layout = layout })
    classes;
  List.iter (fun name -> ignore (Program.Builder.declare_global builder name))
    p.Ast.pr_globals;
  List.iteri
    (fun slot name -> Hashtbl.replace ctx.globals name slot)
    p.Ast.pr_globals;
  (* Pass 2: declare method signatures. *)
  List.iter
    (fun (c : Ast.class_decl) ->
      let ci = class_info ctx c.cd_name in
      List.iter
        (fun (m : Ast.meth_decl) ->
          let arity = List.length m.md_params in
          let key = c.cd_name ^ "." ^ mangle m.md_name arity in
          (match m.md_kind with
          | Ast.Instance -> (
              let sel_key = mangle m.md_name arity in
              match Hashtbl.find_opt ctx.selector_sigs sel_key with
              | Some r ->
                  if Bool.not (Bool.equal r m.md_returns) then
                    err
                      "instance method %s: signature disagrees with an \
                       earlier declaration of the same selector"
                      key
              | None -> Hashtbl.add ctx.selector_sigs sel_key m.md_returns)
          | Ast.Static -> ());
          let kind =
            match m.md_kind with
            | Ast.Static -> Meth.Static
            | Ast.Instance -> Meth.Instance
          in
          let table =
            match m.md_kind with
            | Ast.Static -> ctx.statics
            | Ast.Instance -> ctx.instances
          in
          if Hashtbl.mem table key then err "duplicate method %s" key;
          let mid =
            Program.Builder.declare_method builder ~owner:ci.ci_id
              ~name:(mangle m.md_name arity) ~kind ~arity
              ~returns:m.md_returns
          in
          Hashtbl.add table key (mid, m))
        c.cd_methods)
    classes;
  (* Pass 3: compile bodies. *)
  List.iter
    (fun (c : Ast.class_decl) ->
      List.iter
        (fun (m : Ast.meth_decl) ->
          let arity = List.length m.md_params in
          let key = c.cd_name ^ "." ^ mangle m.md_name arity in
          let mid, _ =
            match m.md_kind with
            | Ast.Static -> find_static ctx c.cd_name m.md_name ~arity
            | Ast.Instance -> Hashtbl.find ctx.instances key
          in
          let body, max_locals =
            compile_body ctx ~owner:c.cd_name ~meth_name:m.md_name
              ~kind:m.md_kind ~params:m.md_params ~returns:m.md_returns
              m.md_body
          in
          Program.Builder.set_body builder mid ~max_locals body)
        c.cd_methods)
    classes;
  let main_id, _ = find_static ctx main_class_name "main" ~arity:0 in
  let program = Program.Builder.seal builder ~main:main_id in
  Verify.program program;
  program
