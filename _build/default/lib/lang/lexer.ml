type token =
  | Int of int
  | Ident of string
  | Upper of string
  | Kw of string
  | Punct of string
  | Eof

type t = { token : token; line : int; col : int }

exception Error of string

let keywords =
  [
    "class"; "extends"; "field"; "def"; "static"; "global"; "main"; "var";
    "if"; "else"; "while"; "for"; "in"; "return"; "print"; "new"; "null";
    "this"; "is"; "and"; "or"; "not";
  ]

let token_to_string = function
  | Int n -> string_of_int n
  | Ident s | Upper s -> s
  | Kw s -> Printf.sprintf "keyword %s" s
  | Punct s -> Printf.sprintf "%S" s
  | Eof -> "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let pos = ref 0 in
  let err fmt =
    Format.kasprintf
      (fun msg ->
        raise (Error (Printf.sprintf "line %d, column %d: %s" !line !col msg)))
      fmt
  in
  (* Token positions are where the token starts, not where it ends. *)
  let start_line = ref 1 in
  let start_col = ref 1 in
  let mark () =
    start_line := !line;
    start_col := !col
  in
  let emit token =
    tokens := { token; line = !start_line; col = !start_col } :: !tokens
  in
  let advance () =
    (if !pos < n then
       match src.[!pos] with
       | '\n' ->
           incr line;
           col := 1
       | _ -> incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    mark ();
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      match int_of_string_opt (String.sub src start (!pos - start)) with
      | Some v -> emit (Int v)
      | None -> err "integer literal too large"
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      if List.mem word keywords then emit (Kw word)
      else if word.[0] >= 'A' && word.[0] <= 'Z' then emit (Upper word)
      else emit (Ident word)
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "<<" | ">>" | "->" | "..") as p) ->
          emit (Punct p);
          advance ();
          advance ()
      | Some _ | None -> (
          match c with
          | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' | '@' | '!'
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' ->
              emit (Punct (String.make 1 c));
              advance ()
          | _ -> err "unexpected character %C" c)
    end
  done;
  mark ();
  emit Eof;
  List.rev !tokens
