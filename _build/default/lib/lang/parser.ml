open Acsi_bytecode

exception Error of string

type state = { tokens : Lexer.t array; mutable pos : int }

let peek st = st.tokens.(st.pos).Lexer.token

let err st fmt =
  let t = st.tokens.(st.pos) in
  Format.kasprintf
    (fun msg ->
      raise
        (Error
           (Printf.sprintf "line %d, column %d: %s (found %s)" t.Lexer.line
              t.Lexer.col msg
              (Lexer.token_to_string t.Lexer.token))))
    fmt

let advance st = st.pos <- st.pos + 1

let accept st token =
  if peek st = token then begin
    advance st;
    true
  end
  else false

let expect st token what =
  if not (accept st token) then err st "expected %s" what

let expect_ident st what =
  match peek st with
  | Lexer.Ident name ->
      advance st;
      name
  | _ -> err st "expected %s" what

let expect_upper st what =
  match peek st with
  | Lexer.Upper name ->
      advance st;
      name
  | _ -> err st "expected %s" what

(* --- expressions --- *)

let binop_of = function
  | "+" -> Some Instr.Add
  | "-" -> Some Instr.Sub
  | "*" -> Some Instr.Mul
  | "/" -> Some Instr.Div
  | "%" -> Some Instr.Rem
  | "&" -> Some Instr.And
  | "|" -> Some Instr.Or
  | "^" -> Some Instr.Xor
  | "<<" -> Some Instr.Shl
  | ">>" -> Some Instr.Shr
  | _ -> None

let cmp_of = function
  | "==" -> Some Instr.Eq
  | "!=" -> Some Instr.Ne
  | "<" -> Some Instr.Lt
  | "<=" -> Some Instr.Le
  | ">" -> Some Instr.Gt
  | ">=" -> Some Instr.Ge
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept st (Lexer.Kw "or") then Ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_bitor st in
  if accept st (Lexer.Kw "and") then Ast.And (left, parse_and st) else left

and parse_level st ~ops ~next =
  let rec go left =
    match peek st with
    | Lexer.Punct p when List.mem p ops -> (
        advance st;
        match binop_of p with
        | Some op -> go (Ast.Binop (op, left, next st))
        | None -> err st "internal: unknown operator %s" p)
    | _ -> left
  in
  go (next st)

and parse_bitor st = parse_level st ~ops:[ "|" ] ~next:parse_bitxor
and parse_bitxor st = parse_level st ~ops:[ "^" ] ~next:parse_bitand
and parse_bitand st = parse_level st ~ops:[ "&" ] ~next:parse_cmp

and parse_cmp st =
  let left = parse_shift st in
  match peek st with
  | Lexer.Punct p when cmp_of p <> None -> (
      advance st;
      match cmp_of p with
      | Some c -> Ast.Cmp (c, left, parse_shift st)
      | None -> assert false)
  | Lexer.Kw "is" ->
      advance st;
      Ast.Instance_of (left, expect_upper st "a class name after 'is'")
  | _ -> left

and parse_shift st = parse_level st ~ops:[ "<<"; ">>" ] ~next:parse_addsub
and parse_addsub st = parse_level st ~ops:[ "+"; "-" ] ~next:parse_muldiv
and parse_muldiv st = parse_level st ~ops:[ "*"; "/"; "%" ] ~next:parse_unary

and parse_unary st =
  if accept st (Lexer.Punct "-") then Ast.Neg (parse_unary st)
  else if accept st (Lexer.Kw "not") then Ast.Not (parse_unary st)
  else parse_postfix st

and parse_args st =
  expect st (Lexer.Punct "(") "'('";
  if accept st (Lexer.Punct ")") then []
  else
    let rec go acc =
      let acc = parse_expr st :: acc in
      if accept st (Lexer.Punct ",") then go acc
      else begin
        expect st (Lexer.Punct ")") "')'";
        List.rev acc
      end
    in
    go []

and parse_postfix st =
  let rec go recv =
    match peek st with
    | Lexer.Punct "." -> (
        advance st;
        let name = expect_ident st "a method or field name after '.'" in
        match peek st with
        | Lexer.Punct "(" -> go (Ast.Virtual_call (recv, name, parse_args st))
        | _ -> (
            match recv with
            | Ast.This -> go (Ast.This_field name)
            | _ ->
                err st
                  "field access on a non-this object needs a class: e @ \
                   Class.%s"
                  name))
    | Lexer.Punct "!" ->
        advance st;
        let cls = expect_upper st "a class name after '!'" in
        expect st (Lexer.Punct ".") "'.'";
        let name = expect_ident st "a method name" in
        go (Ast.Direct_call (recv, cls, name, parse_args st))
    | Lexer.Punct "@" ->
        advance st;
        let cls = expect_upper st "a class name after '@'" in
        expect st (Lexer.Punct ".") "'.'";
        let field = expect_ident st "a field name" in
        go (Ast.Field (cls, recv, field))
    | Lexer.Punct "[" ->
        advance st;
        let idx = parse_expr st in
        expect st (Lexer.Punct "]") "']'";
        go (Ast.Array_get (recv, idx))
    | _ -> recv
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Lexer.Int n ->
      advance st;
      Ast.Int n
  | Lexer.Kw "null" ->
      advance st;
      Ast.Null
  | Lexer.Kw "this" ->
      advance st;
      Ast.This
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_expr st in
      expect st (Lexer.Punct ")") "')'";
      e
  | Lexer.Kw "new" ->
      advance st;
      let cls = expect_upper st "a class name after 'new'" in
      Ast.New (cls, parse_args st)
  | Lexer.Ident "arr" when st.tokens.(st.pos + 1).Lexer.token = Lexer.Punct "(" ->
      advance st;
      expect st (Lexer.Punct "(") "'('";
      let e = parse_expr st in
      expect st (Lexer.Punct ")") "')'";
      Ast.Array_new e
  | Lexer.Ident "len" when st.tokens.(st.pos + 1).Lexer.token = Lexer.Punct "(" ->
      advance st;
      expect st (Lexer.Punct "(") "'('";
      let e = parse_expr st in
      expect st (Lexer.Punct ")") "')'";
      Ast.Array_len e
  | Lexer.Ident name ->
      advance st;
      Ast.Local name
  | Lexer.Upper cls ->
      advance st;
      expect st (Lexer.Punct ".") "'.' (static call on a class)";
      let name = expect_ident st "a method name" in
      Ast.Static_call (cls, name, parse_args st)
  | _ -> err st "expected an expression"

(* --- statements --- *)

let rec parse_block st =
  expect st (Lexer.Punct "{") "'{'";
  let rec go acc =
    if accept st (Lexer.Punct "}") then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  match peek st with
  | Lexer.Kw "var" ->
      advance st;
      let name = expect_ident st "a variable name after 'var'" in
      expect st (Lexer.Punct "=") "'='";
      let e = parse_expr st in
      expect st (Lexer.Punct ";") "';'";
      Ast.Let (name, e)
  | Lexer.Kw "if" ->
      advance st;
      expect st (Lexer.Punct "(") "'('";
      let c = parse_expr st in
      expect st (Lexer.Punct ")") "')'";
      let then_ = parse_block st in
      let else_ =
        if accept st (Lexer.Kw "else") then
          match peek st with
          | Lexer.Kw "if" -> [ parse_stmt st ]
          | _ -> parse_block st
        else []
      in
      Ast.If (c, then_, else_)
  | Lexer.Kw "while" ->
      advance st;
      expect st (Lexer.Punct "(") "'('";
      let c = parse_expr st in
      expect st (Lexer.Punct ")") "')'";
      Ast.While (c, parse_block st)
  | Lexer.Kw "for" ->
      advance st;
      let name = expect_ident st "a loop variable after 'for'" in
      expect st (Lexer.Kw "in") "'in'";
      let lo = parse_expr st in
      expect st (Lexer.Punct "..") "'..'";
      let hi = parse_expr st in
      Ast.For (name, lo, hi, parse_block st)
  | Lexer.Kw "return" ->
      advance st;
      if accept st (Lexer.Punct ";") then Ast.Return None
      else begin
        let e = parse_expr st in
        expect st (Lexer.Punct ";") "';'";
        Ast.Return (Some e)
      end
  | Lexer.Kw "print" ->
      advance st;
      let e = parse_expr st in
      expect st (Lexer.Punct ";") "';'";
      Ast.Print e
  | _ -> (
      let e = parse_expr st in
      if accept st (Lexer.Punct "=") then begin
        let rhs = parse_expr st in
        expect st (Lexer.Punct ";") "';'";
        match e with
        | Ast.Local name -> Ast.Let (name, rhs)
        | Ast.This_field f -> Ast.Set_this_field (f, rhs)
        | Ast.Field (cls, recv, f) -> Ast.Set_field (cls, recv, f, rhs)
        | Ast.Array_get (a, i) -> Ast.Array_set (a, i, rhs)
        | _ -> err st "this expression cannot be assigned to"
      end
      else begin
        expect st (Lexer.Punct ";") "';'";
        Ast.Expr e
      end)

(* --- declarations --- *)

let parse_member st =
  match peek st with
  | Lexer.Kw "field" ->
      advance st;
      let name = expect_ident st "a field name" in
      expect st (Lexer.Punct ";") "';'";
      `Field name
  | Lexer.Kw "static" | Lexer.Kw "def" ->
      let kind =
        if accept st (Lexer.Kw "static") then Ast.Static else Ast.Instance
      in
      expect st (Lexer.Kw "def") "'def'";
      let name = expect_ident st "a method name" in
      expect st (Lexer.Punct "(") "'('";
      let params =
        if accept st (Lexer.Punct ")") then []
        else
          let rec go acc =
            let acc = expect_ident st "a parameter name" :: acc in
            if accept st (Lexer.Punct ",") then go acc
            else begin
              expect st (Lexer.Punct ")") "')'";
              List.rev acc
            end
          in
          go []
      in
      let returns =
        if accept st (Lexer.Punct "->") then begin
          (match peek st with
          | Lexer.Ident "int" -> advance st
          | _ -> err st "expected 'int' after '->'");
          true
        end
        else false
      in
      `Method
        {
          Ast.md_name = name;
          md_kind = kind;
          md_params = params;
          md_returns = returns;
          md_body = parse_block st;
        }
  | _ -> err st "expected a field or method declaration"

let parse_class st =
  expect st (Lexer.Kw "class") "'class'";
  let name = expect_upper st "a class name" in
  let parent =
    if accept st (Lexer.Kw "extends") then
      Some (expect_upper st "a parent class name")
    else None
  in
  expect st (Lexer.Punct "{") "'{'";
  let rec go fields methods =
    if accept st (Lexer.Punct "}") then
      {
        Ast.cd_name = name;
        cd_parent = parent;
        cd_fields = List.rev fields;
        cd_methods = List.rev methods;
      }
    else
      match parse_member st with
      | `Field f -> go (f :: fields) methods
      | `Method m -> go fields (m :: methods)
  in
  go [] []

(* Globals are declared at top level; occurrences parse as locals and are
   rewritten here. *)
let rec resolve_expr globals (e : Ast.expr) =
  let r = resolve_expr globals in
  match e with
  | Ast.Local name when List.mem name globals -> Ast.Global name
  | Ast.Int _ | Ast.Null | Ast.Local _ | Ast.Global _ | Ast.This -> e
  | Ast.Neg a -> Ast.Neg (r a)
  | Ast.Not a -> Ast.Not (r a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, r a, r b)
  | Ast.Cmp (c, a, b) -> Ast.Cmp (c, r a, r b)
  | Ast.And (a, b) -> Ast.And (r a, r b)
  | Ast.Or (a, b) -> Ast.Or (r a, r b)
  | Ast.Cond (c, a, b) -> Ast.Cond (r c, r a, r b)
  | Ast.Static_call (cls, m, args) -> Ast.Static_call (cls, m, List.map r args)
  | Ast.Virtual_call (recv, m, args) ->
      Ast.Virtual_call (r recv, m, List.map r args)
  | Ast.Direct_call (recv, cls, m, args) ->
      Ast.Direct_call (r recv, cls, m, List.map r args)
  | Ast.New (cls, args) -> Ast.New (cls, List.map r args)
  | Ast.This_field _ -> e
  | Ast.Field (cls, recv, f) -> Ast.Field (cls, r recv, f)
  | Ast.Array_new a -> Ast.Array_new (r a)
  | Ast.Array_get (a, i) -> Ast.Array_get (r a, r i)
  | Ast.Array_len a -> Ast.Array_len (r a)
  | Ast.Instance_of (a, cls) -> Ast.Instance_of (r a, cls)

let rec resolve_stmt globals (s : Ast.stmt) =
  let re = resolve_expr globals in
  let rs = List.map (resolve_stmt globals) in
  match s with
  | Ast.Let (name, e) when List.mem name globals -> Ast.Set_global (name, re e)
  | Ast.Let (name, e) -> Ast.Let (name, re e)
  | Ast.Set_global (name, e) -> Ast.Set_global (name, re e)
  | Ast.Set_this_field (f, e) -> Ast.Set_this_field (f, re e)
  | Ast.Set_field (cls, recv, f, e) -> Ast.Set_field (cls, re recv, f, re e)
  | Ast.Array_set (a, i, v) -> Ast.Array_set (re a, re i, re v)
  | Ast.Expr e -> Ast.Expr (re e)
  | Ast.If (c, t, f) -> Ast.If (re c, rs t, rs f)
  | Ast.While (c, body) -> Ast.While (re c, rs body)
  | Ast.For (name, lo, hi, body) -> Ast.For (name, re lo, re hi, rs body)
  | Ast.Return e -> Ast.Return (Option.map re e)
  | Ast.Print e -> Ast.Print (re e)

let resolve_class globals (c : Ast.class_decl) =
  {
    c with
    Ast.cd_methods =
      List.map
        (fun m ->
          { m with Ast.md_body = List.map (resolve_stmt globals) m.Ast.md_body })
        c.Ast.cd_methods;
  }

let program src =
  let st = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go classes globals main =
    match peek st with
    | Lexer.Eof -> (
        match main with
        | None -> err st "the program has no 'main' block"
        | Some body ->
            let globals = List.rev globals in
            {
              Ast.pr_classes =
                List.rev_map (resolve_class globals) classes;
              pr_globals = globals;
              pr_main = List.map (resolve_stmt globals) body;
            })
    | Lexer.Kw "global" ->
        advance st;
        let name = expect_ident st "a global name" in
        expect st (Lexer.Punct ";") "';'";
        go classes (name :: globals) main
    | Lexer.Kw "class" -> go (parse_class st :: classes) globals main
    | Lexer.Kw "main" -> (
        advance st;
        match main with
        | Some _ -> err st "duplicate 'main' block"
        | None -> go classes globals (Some (parse_block st)))
    | _ -> err st "expected 'global', 'class' or 'main'"
  in
  go [] [] None

let compile src = Compile.prog (program src)
