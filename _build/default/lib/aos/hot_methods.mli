(** The hot-methods organizer's sample aggregate.

    Counts timer samples per method; the controller treats a method as hot
    when it holds both a minimum number of samples and a minimum fraction
    of all samples. Counts decay together with the call graph so hotness
    tracks program phases. *)

open Acsi_bytecode

type t

val create : Program.t -> t
val add_sample : t -> Ids.Method_id.t -> unit
val samples : t -> Ids.Method_id.t -> float
val total : t -> float
val decay : t -> factor:float -> unit

val hot : t -> min_samples:float -> fraction:float -> (Ids.Method_id.t * float) list
(** Hottest first. *)
