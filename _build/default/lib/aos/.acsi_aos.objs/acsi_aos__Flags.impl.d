lib/aos/flags.ml: Acsi_bytecode Hashtbl Ids
