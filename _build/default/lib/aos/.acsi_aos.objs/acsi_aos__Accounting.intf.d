lib/aos/accounting.mli: Format
