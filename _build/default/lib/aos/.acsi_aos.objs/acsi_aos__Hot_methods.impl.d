lib/aos/hot_methods.ml: Acsi_bytecode Array Float Ids List Program
