lib/aos/trace_listener.ml: Acsi_bytecode Acsi_jit Acsi_policy Acsi_profile Acsi_vm Array Flags List Meth Program Trace
