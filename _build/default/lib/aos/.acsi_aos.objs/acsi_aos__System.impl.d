lib/aos/system.ml: Accounting Acsi_bytecode Acsi_jit Acsi_policy Acsi_profile Acsi_vm Array Db Dcg Flags Float Hashtbl Hot_methods Ids List Logs Meth Program Queue Registry Rules Trace Trace_listener
