lib/aos/registry.ml: Acsi_bytecode Acsi_jit Array Hashtbl Ids List Program
