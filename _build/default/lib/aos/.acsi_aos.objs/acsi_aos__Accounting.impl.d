lib/aos/accounting.ml: Array Format List
