lib/aos/db.mli: Acsi_bytecode Acsi_jit Ids
