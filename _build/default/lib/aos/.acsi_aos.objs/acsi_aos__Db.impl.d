lib/aos/db.ml: Acsi_bytecode Acsi_jit Hashtbl Ids List
