lib/aos/system.mli: Accounting Acsi_jit Acsi_policy Acsi_profile Acsi_vm Db Dcg Flags Registry Rules Trace_listener
