lib/aos/trace_listener.mli: Acsi_bytecode Acsi_policy Acsi_profile Acsi_vm Flags Program Trace
