lib/aos/registry.mli: Acsi_bytecode Acsi_jit Hashtbl Ids Program
