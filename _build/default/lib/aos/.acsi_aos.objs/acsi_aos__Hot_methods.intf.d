lib/aos/hot_methods.mli: Acsi_bytecode Ids Program
