lib/aos/flags.mli: Acsi_bytecode Ids
