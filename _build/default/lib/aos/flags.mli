(** Call-site flags for the adaptive-resolution policy (paper §4.3,
    "Adaptively Resolving Imprecisions").

    The AI organizer flags polymorphic call sites whose receiver
    distribution is not sufficiently skewed; the trace listener collects
    deeper context only at flagged sites. A site stays flagged until
    either deeper profile data resolves the imprecision or the system
    gives up, deeming the site inherently polymorphic. *)

open Acsi_bytecode

type state =
  | Flagged of int  (** attempts spent so far *)
  | Resolved
  | Given_up

type t

val create : unit -> t

val flagged : t -> caller:Ids.Method_id.t -> callsite:int -> bool
(** Whether the trace listener should deepen traces through this site. *)

val state : t -> caller:Ids.Method_id.t -> callsite:int -> state option

val flag : t -> caller:Ids.Method_id.t -> callsite:int -> max_attempts:int -> unit
(** Flag a site, or bump its attempt count; moves to [Given_up] past
    [max_attempts]. No effect on resolved or given-up sites. *)

val resolve : t -> caller:Ids.Method_id.t -> callsite:int -> unit

val counts : t -> int * int * int
(** (currently flagged, resolved, given up). *)
