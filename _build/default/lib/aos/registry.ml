open Acsi_bytecode

type entry = {
  mutable version : int;
  mutable stats : Acsi_jit.Expand.stats;
  mutable rule_stamp : int;
  inlined : (int * int * int, unit) Hashtbl.t;
  inlined_methods : (int, unit) Hashtbl.t;
}

type t = {
  entries : entry option array;
  mutable compilations : int;
  mutable cumulative_bytes : int;
  mutable cumulative_cycles : int;
}

let create program =
  {
    entries = Array.make (Program.method_count program) None;
    compilations = 0;
    cumulative_bytes = 0;
    cumulative_cycles = 0;
  }

let entry t (mid : Ids.Method_id.t) = t.entries.((mid :> int))

let record t (mid : Ids.Method_id.t) (stats : Acsi_jit.Expand.stats)
    ~rule_stamp =
  t.compilations <- t.compilations + 1;
  t.cumulative_bytes <- t.cumulative_bytes + stats.Acsi_jit.Expand.code_bytes;
  t.cumulative_cycles <-
    t.cumulative_cycles + stats.Acsi_jit.Expand.compile_cycles;
  let e =
    match t.entries.((mid :> int)) with
    | Some e ->
        e.version <- e.version + 1;
        e.stats <- stats;
        e.rule_stamp <- rule_stamp;
        Hashtbl.reset e.inlined;
        Hashtbl.reset e.inlined_methods;
        e
    | None ->
        let e =
          {
            version = 1;
            stats;
            rule_stamp;
            inlined = Hashtbl.create 16;
            inlined_methods = Hashtbl.create 8;
          }
        in
        t.entries.((mid :> int)) <- Some e;
        e
  in
  List.iter
    (fun ((caller, _, callee) as edge) ->
      Hashtbl.replace e.inlined edge ();
      Hashtbl.replace e.inlined_methods caller ();
      Hashtbl.replace e.inlined_methods callee ())
    stats.Acsi_jit.Expand.inlined_edges

let has_inlined t ~root ~(caller : Ids.Method_id.t) ~callsite
    ~(callee : Ids.Method_id.t) =
  match entry t root with
  | None -> false
  | Some e ->
      Hashtbl.mem e.inlined ((caller :> int), callsite, (callee :> int))

let contains_method t ~root (mid : Ids.Method_id.t) =
  match entry t root with
  | None -> false
  | Some e ->
      Ids.Method_id.equal root mid || Hashtbl.mem e.inlined_methods (mid :> int)

let opt_method_count t =
  Array.fold_left
    (fun acc e -> match e with Some _ -> acc + 1 | None -> acc)
    0 t.entries

let opt_compilation_count t = t.compilations

let installed_bytes t =
  Array.fold_left
    (fun acc e ->
      match e with
      | Some e -> acc + e.stats.Acsi_jit.Expand.code_bytes
      | None -> acc)
    0 t.entries

let cumulative_bytes t = t.cumulative_bytes
let cumulative_compile_cycles t = t.cumulative_cycles

let iter t ~f =
  Array.iteri
    (fun i e ->
      match e with Some e -> f (Ids.Method_id.of_int i) e | None -> ())
    t.entries
