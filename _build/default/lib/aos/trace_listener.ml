open Acsi_bytecode
open Acsi_profile

type stats = {
  mutable samples : int;
  mutable frames_walked : int;
  mutable callee_parameterless : int;
  mutable param_stop_within_5 : int;
  mutable class_stop_within_2 : int;
  mutable large_needs_4 : int;
  depth_histogram : int array;
}

type t = {
  program : Program.t;
  policy : Acsi_policy.Policy.t;
  flags : Flags.t;
  collect_termination_stats : bool;
  st : stats;
}

let create ?(collect_termination_stats = false) program ~policy ~flags =
  {
    program;
    policy;
    flags;
    collect_termination_stats;
    st =
      {
        samples = 0;
        frames_walked = 0;
        callee_parameterless = 0;
        param_stop_within_5 = 0;
        class_stop_within_2 = 0;
        large_needs_4 = 0;
        depth_histogram = Array.make 9 0;
      };
  }

let stats t = t.st

(* Instrumentation pass for the §4 in-text statistics: walk up to 5 edges
   regardless of policy and record where each early-termination condition
   would first fire. *)
let record_termination_stats t vm =
  let st = t.st in
  let frames = ref [] in
  let count = ref 0 in
  Acsi_vm.Interp.walk_source_stack vm ~f:(fun mid _pc ->
      frames := mid :: !frames;
      incr count;
      !count < 7);
  match List.rev !frames with
  | [] -> ()
  | callee_id :: callers ->
      let callee = Program.meth t.program callee_id in
      if Meth.is_parameterless callee then
        st.callee_parameterless <- st.callee_parameterless + 1;
      let callers = List.map (Program.meth t.program) callers in
      let param_stop =
        if Meth.is_parameterless callee then Some 1
        else
          let rec find i = function
            | [] -> None
            | c :: rest ->
                if Meth.is_parameterless c then Some i else find (i + 1) rest
          in
          find 1 callers
      in
      (match param_stop with
      | Some d when d <= 5 -> st.param_stop_within_5 <- st.param_stop_within_5 + 1
      | Some _ | None -> ());
      let rec first_matching i pred = function
        | [] -> None
        | c :: rest -> if pred c then Some i else first_matching (i + 1) pred rest
      in
      (match first_matching 1 Meth.is_instance callers with
      | Some d when d <= 2 -> st.class_stop_within_2 <- st.class_stop_within_2 + 1
      | Some _ | None -> ());
      let is_large m =
        match Acsi_jit.Size.clazz_of m with
        | Acsi_jit.Size.Large -> true
        | Acsi_jit.Size.Tiny | Acsi_jit.Size.Small | Acsi_jit.Size.Medium ->
            false
      in
      (match first_matching 1 is_large callers with
      | Some d when d <= 3 -> ()
      | Some _ | None -> st.large_needs_4 <- st.large_needs_4 + 1)

let sample t vm =
  if t.collect_termination_stats then record_termination_stats t vm;
  (* Collect the source frames lazily: [walk_source_stack] visits
     (method, pc) pairs innermost-first; the first is the callee, each
     subsequent pair a caller and the pc of its call site. *)
  let policy = t.policy in
  let max_depth = Acsi_policy.Policy.max_depth policy in
  let adaptive = Acsi_policy.Policy.is_adaptive_resolving policy in
  let callee = ref None in
  let chain_rev = ref [] in
  let chain_len = ref 0 in
  let walked = ref 0 in
  Acsi_vm.Interp.walk_source_stack vm ~f:(fun mid pc ->
      incr walked;
      match !callee with
      | None ->
          callee := Some (Program.meth t.program mid);
          true
      | Some callee_m ->
          let entry = { Trace.caller = mid; callsite = pc } in
          chain_rev := entry :: !chain_rev;
          incr chain_len;
          if !chain_len >= max_depth then false
          else if adaptive then
            (* Deepen only through a flagged sampled edge. *)
            let first =
              match List.rev !chain_rev with e :: _ -> e | [] -> entry
            in
            Flags.flagged t.flags ~caller:first.Trace.caller
              ~callsite:first.Trace.callsite
          else
            Acsi_policy.Policy.should_extend policy t.program ~callee:callee_m
              ~last_caller:(Program.meth t.program mid)
              ~chain_len:!chain_len);
  t.st.frames_walked <- t.st.frames_walked + !walked;
  match (!callee, List.rev !chain_rev) with
  | Some callee_m, (_ :: _ as chain) ->
      t.st.samples <- t.st.samples + 1;
      let depth = min (Array.length t.st.depth_histogram - 1) !chain_len in
      t.st.depth_histogram.(depth) <- t.st.depth_histogram.(depth) + 1;
      Some (Trace.make ~callee:callee_m.Meth.id ~chain, !walked)
  | Some _, [] | None, _ -> None
