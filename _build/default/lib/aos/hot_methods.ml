open Acsi_bytecode

type t = {
  counts : float array;
  mutable total_samples : float;
}

let create program =
  { counts = Array.make (Program.method_count program) 0.0; total_samples = 0.0 }

let add_sample t (mid : Ids.Method_id.t) =
  t.counts.((mid :> int)) <- t.counts.((mid :> int)) +. 1.0;
  t.total_samples <- t.total_samples +. 1.0

let samples t (mid : Ids.Method_id.t) = t.counts.((mid :> int))
let total t = t.total_samples

let decay t ~factor =
  Array.iteri (fun i c -> t.counts.(i) <- c *. factor) t.counts;
  t.total_samples <- t.total_samples *. factor

let hot t ~min_samples ~fraction =
  if t.total_samples <= 0.0 then []
  else
    let cut = Float.max min_samples (fraction *. t.total_samples) in
    let acc = ref [] in
    Array.iteri
      (fun i c ->
        if c >= cut then acc := (Ids.Method_id.of_int i, c) :: !acc)
      t.counts;
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc
