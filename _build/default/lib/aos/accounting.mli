(** Per-component cycle accounting for the adaptive optimization system.

    These are the components of the paper's Figure 6: the AOS listeners,
    the compilation thread, the decay organizer, the adaptive inlining
    organizer (which includes the dynamic call graph organizer and the
    missing-edge organizer), the method sample organizer, and the
    controller thread. *)

type component =
  | Listeners
  | Compilation
  | Decay_organizer
  | Ai_organizer
  | Method_organizer
  | Controller

val all_components : component list
val component_name : component -> string

type t

val create : unit -> t
val charge : t -> component -> int -> unit
val get : t -> component -> int
val total : t -> int
val pp : Format.formatter -> t -> unit
