(** The trace listener (paper §3.3): samples variable-depth call traces.

    Fired on an invocation stride by the VM (modeling prologue-yieldpoint
    edge sampling), it walks the source-level call stack — expanding
    optimized frames through their inline maps — and builds a trace whose
    depth is governed by the context-sensitivity policy. For the
    adaptive-resolution policy, depth is 1 unless the sampled edge's call
    site has been flagged by the AI organizer.

    The listener also keeps the instrumentation counters behind the
    paper's §4 in-text statistics (how soon each early-termination
    condition would fire), which the bench harness reports. *)

open Acsi_bytecode
open Acsi_profile

type stats = {
  mutable samples : int;
  mutable frames_walked : int;
  mutable callee_parameterless : int;
      (** samples whose callee itself declares no parameters *)
  mutable param_stop_within_5 : int;
      (** samples where the parameterless rule fires within 5 edges *)
  mutable class_stop_within_2 : int;
      (** samples where an instance caller appears within 2 edges *)
  mutable large_needs_4 : int;
      (** samples where no large caller appears within the first 3 edges *)
  depth_histogram : int array;  (** index = collected depth, 0..8 *)
}

type t

val create :
  ?collect_termination_stats:bool ->
  Program.t ->
  policy:Acsi_policy.Policy.t ->
  flags:Flags.t ->
  t

val sample : t -> Acsi_vm.Interp.t -> (Trace.t * int) option
(** Take one trace sample from the VM's current stack. Returns the trace
    and the number of stack frames walked (for cost accounting), or [None]
    when the stack is too shallow (no caller). *)

val stats : t -> stats
