open Acsi_bytecode

type state =
  | Flagged of int
  | Resolved
  | Given_up

type t = (int * int, state) Hashtbl.t

let create () = Hashtbl.create 32

let key ~(caller : Ids.Method_id.t) ~callsite = ((caller :> int), callsite)

let state t ~caller ~callsite = Hashtbl.find_opt t (key ~caller ~callsite)

let flagged t ~caller ~callsite =
  match state t ~caller ~callsite with
  | Some (Flagged _) -> true
  | Some Resolved | Some Given_up | None -> false

let flag t ~caller ~callsite ~max_attempts =
  let k = key ~caller ~callsite in
  match Hashtbl.find_opt t k with
  | None -> Hashtbl.replace t k (Flagged 1)
  | Some (Flagged n) ->
      if n >= max_attempts then Hashtbl.replace t k Given_up
      else Hashtbl.replace t k (Flagged (n + 1))
  | Some Resolved | Some Given_up -> ()

let resolve t ~caller ~callsite =
  let k = key ~caller ~callsite in
  match Hashtbl.find_opt t k with
  | Some (Flagged _) -> Hashtbl.replace t k Resolved
  | None | Some Resolved | Some Given_up -> ()

let counts t =
  Hashtbl.fold
    (fun _ st (f, r, g) ->
      match st with
      | Flagged _ -> (f + 1, r, g)
      | Resolved -> (f, r + 1, g)
      | Given_up -> (f, r, g + 1))
    t (0, 0, 0)
