type component =
  | Listeners
  | Compilation
  | Decay_organizer
  | Ai_organizer
  | Method_organizer
  | Controller

let all_components =
  [
    Listeners;
    Compilation;
    Decay_organizer;
    Ai_organizer;
    Method_organizer;
    Controller;
  ]

let component_name = function
  | Listeners -> "AOS Listeners"
  | Compilation -> "CompilationThread"
  | Decay_organizer -> "DecayOrganizer"
  | Ai_organizer -> "AIOrganizer"
  | Method_organizer -> "MethodSampleOrganizer"
  | Controller -> "ControllerThread"

let index = function
  | Listeners -> 0
  | Compilation -> 1
  | Decay_organizer -> 2
  | Ai_organizer -> 3
  | Method_organizer -> 4
  | Controller -> 5

type t = int array

let create () = Array.make 6 0
let charge t c cycles = t.(index c) <- t.(index c) + cycles
let get t c = t.(index c)
let total t = Array.fold_left ( + ) 0 t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c -> Format.fprintf fmt "%-22s %d@," (component_name c) (get t c))
    all_components;
  Format.fprintf fmt "@]"
