(** Couples a program, the VM and the adaptive optimization system into a
    single run. *)

type result = {
  metrics : Metrics.t;
  vm : Acsi_vm.Interp.t;
  sys : Acsi_aos.System.t;
}

val run :
  ?profile:Acsi_profile.Dcg.t -> Config.t -> Acsi_bytecode.Program.t -> result
(** Execute the program to completion under the adaptive system.
    [profile] seeds the dynamic call graph with a previously collected
    profile (offline profile-directed inlining). *)

val run_no_aos : Config.t -> Acsi_bytecode.Program.t -> Acsi_vm.Interp.t
(** Execute purely at baseline, no adaptive system (for semantics
    comparisons in tests). *)
