open Acsi_policy

type bench = { name : string; program : Acsi_bytecode.Program.t }

type point = { bench : string; policy : Policy.t; metrics : Metrics.t }

type sweep = {
  bench_names : string list;
  baselines : (string * Metrics.t) list;
  points : point list;
}

let run_sweep ?(progress = fun _ -> ()) cfg ~benches ~policies =
  let baselines =
    List.map
      (fun b ->
        progress (Printf.sprintf "%s under cins" b.name);
        let cfg = Config.with_policy cfg Policy.Context_insensitive in
        (b.name, (Runtime.run cfg b.program).Runtime.metrics))
      benches
  in
  let points =
    List.concat_map
      (fun policy ->
        List.map
          (fun b ->
            progress
              (Printf.sprintf "%s under %s" b.name (Policy.to_string policy));
            let cfg = Config.with_policy cfg policy in
            {
              bench = b.name;
              policy;
              metrics = (Runtime.run cfg b.program).Runtime.metrics;
            })
          benches)
      policies
  in
  { bench_names = List.map (fun b -> b.name) benches; baselines; points }

let find sweep ~bench ~policy =
  List.find_opt
    (fun p -> String.equal p.bench bench && p.policy = policy)
    sweep.points
  |> Option.map (fun p -> p.metrics)

let baseline sweep ~bench = List.assoc bench sweep.baselines

let with_point sweep ~bench ~policy ~f =
  match find sweep ~bench ~policy with
  | None -> 0.0
  | Some m -> f ~baseline:(baseline sweep ~bench) m

let speedup_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.speedup_pct

let code_size_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.code_size_change_pct

let compile_time_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.compile_time_change_pct

(* The paper's harMean bars aggregate ratios, not percentages: convert each
   percent change to a ratio, take the harmonic mean, convert back. *)
let harmonic_mean_pct value benches =
  match benches with
  | [] -> 0.0
  | _ :: _ ->
      let ratios =
        List.map (fun b -> 1.0 +. (value b /. 100.0)) benches
      in
      let n = float_of_int (List.length ratios) in
      let denom = List.fold_left (fun acc r -> acc +. (1.0 /. r)) 0.0 ratios in
      100.0 *. ((n /. denom) -. 1.0)

type summary = {
  mean_speedup_pct : float;
  min_speedup_pct : float;
  max_speedup_pct : float;
  mean_code_pct : float;
  best_code_reduction_pct : float;
  mean_compile_pct : float;
  best_compile_reduction_pct : float;
}

let summarize sweep =
  let speedups =
    List.map
      (fun p -> speedup_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let codes =
    List.map
      (fun p -> code_size_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let compiles =
    List.map
      (fun p -> compile_time_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ :: _ ->
        let ratios = List.map (fun x -> 1.0 +. (x /. 100.0)) xs in
        let n = float_of_int (List.length ratios) in
        100.0
        *. ((n /. List.fold_left (fun a r -> a +. (1.0 /. r)) 0.0 ratios) -. 1.0)
  in
  let min_l = List.fold_left Float.min infinity in
  let max_l = List.fold_left Float.max neg_infinity in
  {
    mean_speedup_pct = mean speedups;
    min_speedup_pct = min_l speedups;
    max_speedup_pct = max_l speedups;
    mean_code_pct = mean codes;
    best_code_reduction_pct = min_l codes;
    mean_compile_pct = mean compiles;
    best_compile_reduction_pct = min_l compiles;
  }
