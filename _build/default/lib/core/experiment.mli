(** Policy sweeps over benchmark suites: the machinery behind every table
    and figure of the paper's evaluation (see DESIGN.md's per-experiment
    index). *)

open Acsi_policy

type bench = { name : string; program : Acsi_bytecode.Program.t }

type point = { bench : string; policy : Policy.t; metrics : Metrics.t }

type sweep = {
  bench_names : string list;
  baselines : (string * Metrics.t) list;
      (** context-insensitive metrics per benchmark *)
  points : point list;
}

val run_sweep :
  ?progress:(string -> unit) ->
  Config.t ->
  benches:bench list ->
  policies:Policy.t list ->
  sweep
(** Runs every benchmark once under [Context_insensitive] (the baseline)
    and once per policy; the same configuration is used throughout. *)

val find : sweep -> bench:string -> policy:Policy.t -> Metrics.t option
val baseline : sweep -> bench:string -> Metrics.t

val speedup_pct : sweep -> bench:string -> policy:Policy.t -> float
val code_size_pct : sweep -> bench:string -> policy:Policy.t -> float
val compile_time_pct : sweep -> bench:string -> policy:Policy.t -> float

val harmonic_mean_pct : (string -> float) -> string list -> float
(** Harmonic mean of per-benchmark percent changes, computed on the
    underlying ratios as the paper's harMean bars are. *)

type summary = {
  mean_speedup_pct : float;  (** harmonic mean over benches and policies *)
  min_speedup_pct : float;
  max_speedup_pct : float;
  mean_code_pct : float;
  best_code_reduction_pct : float;
  mean_compile_pct : float;
  best_compile_reduction_pct : float;
}

val summarize : sweep -> summary
(** Aggregates over every policy point (the abstract's headline numbers). *)
