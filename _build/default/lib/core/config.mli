(** Top-level run configuration: the AOS configuration plus the VM's cost
    model and sampling parameters. *)

type t = {
  aos : Acsi_aos.System.config;
  cost : Acsi_vm.Cost.t;
  sample_period : int;  (** virtual cycles between timer samples *)
  invoke_stride : int;  (** invocations between trace samples *)
  cycle_limit : int;  (** safety limit; {!Acsi_vm.Interp.Cycle_limit_exceeded} *)
}

val default : policy:Acsi_policy.Policy.t -> t

val with_policy : t -> Acsi_policy.Policy.t -> t
(** The same configuration under another policy (used by sweeps so every
    policy faces identical parameters). *)
