lib/core/report.ml: Accounting Acsi_aos Acsi_policy Char Experiment Format List Metrics Option Policy Printf
