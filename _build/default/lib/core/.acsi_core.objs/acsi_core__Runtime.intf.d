lib/core/runtime.mli: Acsi_aos Acsi_bytecode Acsi_profile Acsi_vm Config Metrics
