lib/core/metrics.mli: Accounting Acsi_aos Acsi_vm Format System
