lib/core/config.mli: Acsi_aos Acsi_policy Acsi_vm
