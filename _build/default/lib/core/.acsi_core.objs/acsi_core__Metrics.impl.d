lib/core/metrics.ml: Accounting Acsi_aos Acsi_bytecode Acsi_jit Acsi_policy Acsi_profile Acsi_vm Array Db Format List Registry System
