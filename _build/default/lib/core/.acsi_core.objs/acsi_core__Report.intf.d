lib/core/report.mli: Acsi_policy Experiment Format Policy
