lib/core/experiment.ml: Acsi_bytecode Acsi_policy Config Float List Metrics Option Policy Printf Runtime String
