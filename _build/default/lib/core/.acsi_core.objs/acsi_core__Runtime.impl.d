lib/core/runtime.ml: Acsi_aos Acsi_vm Config Metrics
