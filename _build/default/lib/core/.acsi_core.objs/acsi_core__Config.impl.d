lib/core/config.ml: Acsi_aos Acsi_vm
