lib/core/experiment.mli: Acsi_bytecode Acsi_policy Config Metrics Policy
