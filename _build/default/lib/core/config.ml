type t = {
  aos : Acsi_aos.System.config;
  cost : Acsi_vm.Cost.t;
  sample_period : int;
  invoke_stride : int;
  cycle_limit : int;
}

let default ~policy =
  {
    aos = Acsi_aos.System.default_config policy;
    cost = Acsi_vm.Cost.default;
    sample_period = 100_000;
    invoke_stride = 512;
    cycle_limit = 4_000_000_000;
  }

let with_policy t policy =
  { t with aos = { t.aos with Acsi_aos.System.policy } }
