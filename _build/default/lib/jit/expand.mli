(** The optimizing compiler's inline expander.

    Produces optimized code for a root method by recursively splicing
    callee bodies into it under the oracle's direction:

    - arguments are popped into a fresh block of locals (the inlinee's
      frame, renumbered into the root frame);
    - the inlinee's returns are rewired to a join label, leaving the
      result on the operand stack exactly where a real call would;
    - speculative targets of polymorphic virtual sites are protected by
      method-test guards chained onto a fallback virtual call;
    - every emitted instruction carries a source-map entry so the trace
      listener can recover the source-level stack (paper §3.3).

    The produced code is re-verified ({!Acsi_bytecode.Verify}), which both
    computes its operand-stack bound and guarantees the transformation
    preserved the bytecode invariants. *)

open Acsi_bytecode

type stats = {
  expanded_units : int;  (** size of the optimized body in units *)
  inline_count : int;  (** call sites inlined (counting each guarded target) *)
  guard_count : int;
  compile_cycles : int;  (** modeled optimizing-compilation time *)
  code_bytes : int;  (** modeled machine-code size *)
  inlined_edges : (int * int * int) list;
      (** (source caller method, source pc, callee) for every inline
          performed — consumed by the AI missing-edge organizer *)
}

val compile :
  Program.t -> Acsi_vm.Cost.t -> Oracle.t -> root:Meth.t ->
  Acsi_vm.Code.t * stats
