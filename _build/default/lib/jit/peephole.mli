(** Classical peephole optimization over (expanded) bytecode.

    The paper's optimizing compiler runs a full classical-optimization
    pipeline after inlining; its size estimates assume effects like
    constant folding of inlined argument values (footnote 1). This pass
    makes a representative slice of that real:

    - constant folding of arithmetic, comparisons and unary operators;
    - algebraic simplification of push/pop, dup/pop and swap/swap pairs;
    - branch simplification: [Not] absorbed into conditional jumps,
      constant conditions resolved, jump-to-next elided;
    - jump threading through unconditional jump chains;
    - unreachable-code elimination with target remapping.

    Rewrites never cross basic-block leaders, so join-point stack shapes
    are preserved; the result still verifies (the expander re-verifies).
    Source-map annotations follow the surviving instructions. *)

open Acsi_bytecode

val optimize :
  Instr.t array * Acsi_vm.Code.src_entry array ->
  Instr.t array * Acsi_vm.Code.src_entry array
(** Optimize to a fixed point (bounded passes). The input arrays must have
    equal length; so do the output arrays. *)

val optimize_instrs : Instr.t array -> Instr.t array
(** [optimize] with dummy annotations; for tests and standalone use. *)
