lib/jit/peephole.mli: Acsi_bytecode Acsi_vm Instr
