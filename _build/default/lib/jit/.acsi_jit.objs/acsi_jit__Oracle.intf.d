lib/jit/oracle.mli: Acsi_bytecode Acsi_profile Ids Instr Meth Program Rules Trace
