lib/jit/oracle.ml: Acsi_bytecode Acsi_profile Array Ids Instr Lazy List Meth Program Rules Size Trace
