lib/jit/peephole.ml: Acsi_bytecode Acsi_vm Array Ids Instr List
