lib/jit/size.mli: Acsi_bytecode Instr Meth
