lib/jit/expand.ml: Acsi_bytecode Acsi_profile Acsi_vm Array Code Codebuf Cost Ids Instr List Meth Oracle Peephole Program Size Verify
