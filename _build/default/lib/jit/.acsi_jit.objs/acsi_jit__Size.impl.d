lib/jit/size.ml: Acsi_bytecode Array Instr Meth
