lib/jit/expand.mli: Acsi_bytecode Acsi_vm Meth Oracle Program
