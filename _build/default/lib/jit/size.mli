(** Method size classification (paper §3.1).

    Jikes RVM buckets inline candidates by the estimated machine-code size
    of the inlined body, measured in multiples of the code required for a
    method call:

    - {e tiny} (< 2x a call): unconditionally inlined when statically
      bound without a guard;
    - {e small} (2–5x): inlined subject to code-expansion and depth
      heuristics;
    - {e medium} (5–25x): candidates for profile-directed inlining only;
    - {e large} (> 25x): never inlined.

    The size estimate is adjusted downward when a call site passes constant
    arguments, modeling the expected benefit of constant folding inside the
    inlined body (paper footnote 1). *)

open Acsi_bytecode

type clazz = Tiny | Small | Medium | Large

val call_units : int
(** Instruction units a method call occupies (the classification unit). *)

val classify : units:int -> clazz

val clazz_of : Meth.t -> clazz
(** Classification of a method's unadjusted body size. *)

val estimate : Meth.t -> const_args:int -> int
(** Inline size estimate in units, reduced for each constant argument. *)

val const_args_at : Instr.t array -> pc:int -> int
(** How many of the arguments of the call at [pc] are provably constants —
    a shallow scan of the instructions that pushed them. *)

val clazz_to_string : clazz -> string
