open Acsi_bytecode

type clazz = Tiny | Small | Medium | Large

let call_units = 4

let classify ~units =
  if units < 2 * call_units then Tiny
  else if units < 5 * call_units then Small
  else if units < 25 * call_units then Medium
  else Large

let clazz_of m = classify ~units:(Meth.size_units m)

let estimate m ~const_args =
  let base = Meth.size_units m in
  let discount = const_args * (max 1 (base / 12)) in
  max 1 (base - discount)

(* A conservative scan backwards from the call: arguments pushed by a
   straight run of side-effect-free single-push instructions immediately
   before the call can be attributed; a [Const] among them counts. Any
   other shape stops the scan (we then know nothing about the remaining
   arguments). *)
let const_args_at body ~pc =
  let argc =
    match body.(pc) with
    | Instr.Call_static mid | Instr.Call_direct mid ->
        ignore mid;
        (* resolved by the caller via the oracle; here we only bound the
           scan window by the pushes we can see *)
        max_int
    | Instr.Call_virtual (_, argc) -> argc
    | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
    | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
    | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
    | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
    | Instr.Put_field _ | Instr.Get_global _ | Instr.Put_global _
    | Instr.Array_new | Instr.Array_get | Instr.Array_set | Instr.Array_len
    | Instr.Return | Instr.Return_void | Instr.Instance_of _
    | Instr.Guard_method _ | Instr.Print_int | Instr.Nop ->
        0
  in
  let rec scan i found =
    if i < 0 || pc - i > argc then found
    else
      match body.(i) with
      | Instr.Const _ -> scan (i - 1) (found + 1)
      | Instr.Const_null | Instr.Load _ | Instr.Get_global _ ->
          scan (i - 1) found
      | Instr.Store _ | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _
      | Instr.Neg | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
      | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
      | Instr.Put_field _ | Instr.Put_global _ | Instr.Array_new
      | Instr.Array_get | Instr.Array_set | Instr.Array_len
      | Instr.Call_static _ | Instr.Call_virtual _ | Instr.Call_direct _
      | Instr.Return | Instr.Return_void | Instr.Instance_of _
      | Instr.Guard_method _ | Instr.Print_int | Instr.Nop ->
          found
  in
  scan (pc - 1) 0

let clazz_to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"
