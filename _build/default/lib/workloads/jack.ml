(* "jack"-shaped workload: a parser generator expanding a grammar.

   Productions reference each other through a grammar table and expand
   recursively via a virtual [expand] method, giving deep mutually
   recursive call chains over a small class hierarchy. Like the real jack,
   the driver performs 16 identical passes over the same input. *)

open Acsi_lang.Dsl

let passes = 16

let classes =
  [
    (* The grammar table: productions are stored in a vector and call one
       another through it. *)
    cls "Grammar" ~fields:[ "prods" ]
      [
        meth "init" [ "prods" ] ~returns:false [ set_thisf "prods" (v "prods") ];
        meth "prodAt" [ "idx" ] ~returns:true
          [ ret (inv (thisf "prods") "at" [ v "idx" ]) ];
      ];
    cls "Prod" ~parent:"Obj" ~fields:[ "grammar"; "emitted" ]
      [
        (* Expands to a token count; [budget] bounds recursion. *)
        meth "expand" [ "budget" ] ~returns:true [ ret (i 1) ];
      ];
    (* terminal: emits a fixed handful of tokens *)
    cls "TermProd" ~parent:"Prod" ~fields:[ "width" ]
      [
        meth "init" [ "gram"; "width" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "grammar" (v "gram");
            set_thisf "width" (v "width");
          ];
        meth "expand" [ "budget" ] ~returns:true
          [
            set_thisf "emitted" (add (thisf "emitted") (thisf "width"));
            ret (thisf "width");
          ];
      ];
    (* sequence: expands two sub-productions *)
    cls "SeqProd" ~parent:"Prod" ~fields:[ "first"; "second" ]
      [
        meth "init" [ "gram"; "first"; "second" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "grammar" (v "gram");
            set_thisf "first" (v "first");
            set_thisf "second" (v "second");
          ];
        meth "expand" [ "budget" ] ~returns:true
          [
            if_ (le (v "budget") (i 0)) [ ret (i 1) ] [];
            let_ "a"
              (inv
                 (inv (thisf "grammar") "prodAt" [ thisf "first" ])
                 "expand"
                 [ sub (v "budget") (i 1) ]);
            let_ "b"
              (inv
                 (inv (thisf "grammar") "prodAt" [ thisf "second" ])
                 "expand"
                 [ sub (v "budget") (i 1) ]);
            ret (add (v "a") (v "b"));
          ];
      ];
    (* repetition: expands one sub-production several times *)
    cls "RepProd" ~parent:"Prod" ~fields:[ "inner"; "times" ]
      [
        meth "init" [ "gram"; "inner"; "times" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "grammar" (v "gram");
            set_thisf "inner" (v "inner");
            set_thisf "times" (v "times");
          ];
        meth "expand" [ "budget" ] ~returns:true
          [
            if_ (le (v "budget") (i 0)) [ ret (i 1) ] [];
            let_ "total" (i 0);
            for_ "k" (i 0) (thisf "times")
              [
                let_ "total"
                  (add (v "total")
                     (inv
                        (inv (thisf "grammar") "prodAt" [ thisf "inner" ])
                        "expand"
                        [ sub (v "budget") (i 1) ]));
              ];
            ret (v "total");
          ];
      ];
    (* alternation: picks a branch from a rotating counter *)
    cls "AltProd" ~parent:"Prod" ~fields:[ "left"; "right"; "turn" ]
      [
        meth "init" [ "gram"; "left"; "right" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "grammar" (v "gram");
            set_thisf "left" (v "left");
            set_thisf "right" (v "right");
            set_thisf "turn" (i 0);
          ];
        meth "expand" [ "budget" ] ~returns:true
          [
            if_ (le (v "budget") (i 0)) [ ret (i 1) ] [];
            set_thisf "turn" (add (thisf "turn") (i 1));
            let_ "pick"
              (cond
                 (eq (band (thisf "turn") (i 3)) (i 0))
                 (thisf "right")
                 (thisf "left"));
            ret
              (inv
                 (inv (thisf "grammar") "prodAt" [ v "pick" ])
                 "expand"
                 [ sub (v "budget") (i 1) ]);
          ];
      ];
  ]

let main ~scale =
  [
    let_ "prods" (new_ "Vector" [ i 16 ]);
    let_ "gram" (new_ "Grammar" [ v "prods" ]);
    (* prod 0,1: terminals; 2: seq(0,1); 3: rep(2 x3); 4: alt(3|0);
       5: seq(4,3) — the start symbol. *)
    expr (inv (v "prods") "add" [ new_ "TermProd" [ v "gram"; i 3 ] ]);
    expr (inv (v "prods") "add" [ new_ "TermProd" [ v "gram"; i 5 ] ]);
    expr (inv (v "prods") "add" [ new_ "SeqProd" [ v "gram"; i 0; i 1 ] ]);
    expr (inv (v "prods") "add" [ new_ "RepProd" [ v "gram"; i 2; i 3 ] ]);
    expr (inv (v "prods") "add" [ new_ "AltProd" [ v "gram"; i 3; i 0 ] ]);
    expr (inv (v "prods") "add" [ new_ "SeqProd" [ v "gram"; i 4; i 3 ] ]);
    let_ "tokens" (i 0);
    for_ "run" (i 0) (i scale)
      [
        for_ "p" (i 0) (i passes)
          [
            let_ "start" (inv (v "gram") "prodAt" [ i 5 ]);
            let_ "tokens"
              (band
                 (add (v "tokens") (inv (v "start") "expand" [ i 8 ]))
                 (i 1073741823));
          ];
      ];
    print (v "tokens");
  ]
