(* "SPECjbb2000"-shaped workload: warehouse transaction processing.

   A TPC-C-flavoured mix of transaction objects is dispatched through a
   virtual [process] method (NewOrder and Payment dominate), and the
   warehouse state lives in HashMaps keyed by different key classes from
   different transaction types — stacking the collection-class context
   sensitivity of db on top of a skewed transaction dispatch. *)

open Acsi_lang.Dsl

let items = 128
let customers = 64

let classes =
  [
    cls "Item" ~parent:"Obj" ~fields:[ "price"; "stock" ]
      [
        meth "init" [ "price"; "stock" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "price" (v "price");
            set_thisf "stock" (v "stock");
          ];
      ];
    cls "Customer" ~parent:"Obj" ~fields:[ "balance"; "paid" ]
      [
        meth "init" [ "balance" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "balance" (v "balance");
            set_thisf "paid" (i 0);
          ];
      ];
    cls "Warehouse" ~fields:[ "items"; "custs"; "orders"; "delivered" ]
      [
        meth "init" [ "items"; "custs" ] ~returns:false
          [
            set_thisf "items" (v "items");
            set_thisf "custs" (v "custs");
            set_thisf "orders" (i 0);
            set_thisf "delivered" (i 0);
          ];
        (* Item lookups use IntKey... *)
        meth "findItem" [ "iid" ] ~returns:true
          [ ret (inv (thisf "items") "get" [ new_ "IntKey" [ v "iid" ] ]) ];
        (* ...customer lookups use PairKey (district, customer). *)
        meth "findCustomer" [ "district"; "cid" ] ~returns:true
          [
            ret
              (inv (thisf "custs") "get"
                 [ new_ "PairKey" [ v "district"; v "cid" ] ]);
          ];
      ];
    cls "Txn" ~parent:"Obj" ~fields:[ "arg1"; "arg2" ]
      [
        meth "init" [ "a"; "b" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "arg1" (v "a");
            set_thisf "arg2" (v "b");
          ];
        meth "process" [ "wh" ] ~returns:true [ ret (i 0) ];
      ];
    cls "NewOrderTxn" ~parent:"Txn" ~fields:[]
      [
        meth "process" [ "wh" ] ~returns:true
          [
            let_ "total" (i 0);
            (* order 1-4 line items *)
            let_ "lines" (add (i 1) (band (thisf "arg2") (i 3)));
            for_ "l" (i 0) (v "lines")
              [
                let_ "it"
                  (inv (v "wh") "findItem"
                     [ rem (add (thisf "arg1") (mul (v "l") (i 17))) (i items) ]);
                if_ (ne (v "it") null)
                  [
                    let_ "total" (add (v "total") (fld "Item" (v "it") "price"));
                    setf "Item" (v "it") "stock"
                      (sub (fld "Item" (v "it") "stock") (i 1));
                  ]
                  [];
              ];
            setf "Warehouse" (v "wh") "orders"
              (add (fld "Warehouse" (v "wh") "orders") (i 1));
            ret (v "total");
          ];
      ];
    cls "PaymentTxn" ~parent:"Txn" ~fields:[]
      [
        meth "process" [ "wh" ] ~returns:true
          [
            let_ "c"
              (inv (v "wh") "findCustomer"
                 [ band (thisf "arg1") (i 7); rem (thisf "arg2") (i customers) ]);
            if_ (eq (v "c") null) [ ret (i 0) ] [];
            let_ "amount" (add (i 10) (band (thisf "arg1") (i 255)));
            setf "Customer" (v "c") "balance"
              (sub (fld "Customer" (v "c") "balance") (v "amount"));
            setf "Customer" (v "c") "paid"
              (add (fld "Customer" (v "c") "paid") (v "amount"));
            ret (v "amount");
          ];
      ];
    cls "OrderStatusTxn" ~parent:"Txn" ~fields:[]
      [
        meth "process" [ "wh" ] ~returns:true
          [ ret (fld "Warehouse" (v "wh") "orders") ];
      ];
    cls "DeliveryTxn" ~parent:"Txn" ~fields:[]
      [
        meth "process" [ "wh" ] ~returns:true
          [
            let_ "batch"
              (call "Util" "minInt"
                 [
                   i 10;
                   sub
                     (fld "Warehouse" (v "wh") "orders")
                     (fld "Warehouse" (v "wh") "delivered");
                 ]);
            if_ (lt (v "batch") (i 0)) [ ret (i 0) ] [];
            setf "Warehouse" (v "wh") "delivered"
              (add (fld "Warehouse" (v "wh") "delivered") (v "batch"));
            ret (v "batch");
          ];
      ];
    cls "StockLevelTxn" ~parent:"Txn" ~fields:[]
      [
        meth "process" [ "wh" ] ~returns:true
          [
            let_ "low" (i 0);
            for_ "k" (i 0) (i 20)
              [
                let_ "it"
                  (inv (v "wh") "findItem"
                     [ rem (add (thisf "arg1") (v "k")) (i items) ]);
                if_
                  (and_ (ne (v "it") null)
                     (lt (fld "Item" (v "it") "stock") (i 10)))
                  [ let_ "low" (add (v "low") (i 1)) ]
                  [];
              ];
            ret (v "low");
          ];
      ];
    cls "Driver" ~fields:[]
      [
        (* One transaction batch; re-invoked so optimized code is used. *)
        static_meth "runMix" [ "wh"; "rng"; "n" ] ~returns:true
          [
            let_ "throughput" (i 0);
            for_ "op" (i 0) (v "n")
              [
                let_ "mix" (inv (v "rng") "below" [ i 100 ]);
                let_ "a" (inv (v "rng") "next" []);
                let_ "b" (inv (v "rng") "next" []);
                (* TPC-C-ish mix: 45% NewOrder, 43% Payment, 4% others. *)
                let_ "txn"
                  (cond
                     (lt (v "mix") (i 45))
                     (new_ "NewOrderTxn" [ v "a"; v "b" ])
                     (cond
                        (lt (v "mix") (i 88))
                        (new_ "PaymentTxn" [ v "a"; v "b" ])
                        (cond
                           (lt (v "mix") (i 92))
                           (new_ "OrderStatusTxn" [ v "a"; v "b" ])
                           (cond
                              (lt (v "mix") (i 96))
                              (new_ "DeliveryTxn" [ v "a"; v "b" ])
                              (new_ "StockLevelTxn" [ v "a"; v "b" ])))));
                let_ "throughput"
                  (band
                     (add (v "throughput") (inv (v "txn") "process" [ v "wh" ]))
                     (i 1073741823));
              ];
            ret (v "throughput");
          ];
      ];
  ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 1900 ]);
    let_ "itemMap" (new_ "HashMap" [ i 256 ]);
    for_ "k" (i 0) (i items)
      [
        expr
          (inv (v "itemMap") "put"
             [
               new_ "IntKey" [ v "k" ];
               new_ "Item"
                 [
                   add (i 100) (inv (v "rng") "below" [ i 900 ]);
                   add (i 50) (inv (v "rng") "below" [ i 100 ]);
                 ];
             ]);
      ];
    let_ "custMap" (new_ "HashMap" [ i 256 ]);
    for_ "d" (i 0) (i 8)
      [
        for_ "c" (i 0) (i (customers / 8))
          [
            expr
              (inv (v "custMap") "put"
                 [
                   new_ "PairKey"
                     [ v "d"; add (mul (v "d") (i (customers / 8))) (v "c") ];
                   new_ "Customer" [ i 100000 ];
                 ]);
          ];
      ];
    let_ "wh" (new_ "Warehouse" [ v "itemMap"; v "custMap" ]);
    let_ "throughput" (i 0);
    for_ "batch" (i 0) (i scale)
      [
        let_ "throughput"
          (band
             (add (v "throughput")
                (call "Driver" "runMix" [ v "wh"; v "rng"; i 160 ]))
             (i 1073741823));
      ];
    print (v "throughput");
    print (fld "Warehouse" (v "wh") "orders");
    print (fld "Warehouse" (v "wh") "delivered");
  ]
