(* "mpegaudio"-shaped workload: fixed-point signal-processing kernels.

   Time concentrates in medium-sized static methods (filter, windowing,
   an 8-point transform) called from a per-frame driver — the profile
   where profile-directed inlining of medium methods is the main lever,
   with almost no virtual dispatch. *)

open Acsi_lang.Dsl

let frame = 256
let taps = 16

let classes =
  [
    cls "Dsp" ~fields:[]
      [
        (* Tiny: fixed-point multiply (Q10). *)
        static_meth "fxmul" [ "a"; "b" ] ~returns:true
          [ ret (shr (mul (v "a") (v "b")) (i 10)) ];
        (* Medium: FIR filter over a frame. *)
        static_meth "fir" [ "sig"; "coef"; "out" ] ~returns:false
          [
            let_ "n" (arr_len (v "sig"));
            let_ "t" (arr_len (v "coef"));
            for_ "k" (i 0) (v "n")
              [
                let_ "acc" (i 0);
                let_ "lim" (call "Util" "minInt" [ add (v "k") (i 1); v "t" ]);
                for_ "j" (i 0) (v "lim")
                  [
                    let_ "acc"
                      (add (v "acc")
                         (call "Dsp" "fxmul"
                            [
                              arr_get (v "sig") (sub (v "k") (v "j"));
                              arr_get (v "coef") (v "j");
                            ]));
                  ];
                arr_set (v "out") (v "k") (v "acc");
              ];
          ];
        (* Medium: a butterfly transform over 8-sample blocks. *)
        static_meth "xform8" [ "a"; "from" ] ~returns:false
          [
            for_ "s" (i 0) (i 3)
              [
                let_ "half" (shl (i 1) (v "s"));
                let_ "k" (i 0);
                while_ (lt (v "k") (i 8))
                  [
                    for_ "j" (i 0) (v "half")
                      [
                        let_ "i0" (add (v "from") (add (v "k") (v "j")));
                        let_ "i1" (add (v "i0") (v "half"));
                        let_ "x" (arr_get (v "a") (v "i0"));
                        let_ "y" (arr_get (v "a") (v "i1"));
                        arr_set (v "a") (v "i0") (add (v "x") (v "y"));
                        arr_set (v "a") (v "i1") (sub (v "x") (v "y"));
                      ];
                    let_ "k" (add (v "k") (mul (v "half") (i 2)));
                  ];
              ];
          ];
        (* Small: triangular window. *)
        static_meth "window" [ "a" ] ~returns:false
          [
            let_ "n" (arr_len (v "a"));
            for_ "k" (i 0) (v "n")
              [
                let_ "w"
                  (cond
                     (lt (v "k") (div (v "n") (i 2)))
                     (v "k")
                     (sub (v "n") (v "k")));
                arr_set (v "a") (v "k")
                  (call "Dsp" "fxmul" [ arr_get (v "a") (v "k"); shl (v "w") (i 3) ]);
              ];
          ];
        (* Tiny: saturating quantizer. *)
        static_meth "quantize" [ "x" ] ~returns:true
          [
            if_ (gt (v "x") (i 32767)) [ ret (i 32767) ] [];
            if_ (lt (v "x") (i (-32768))) [ ret (i (-32768)) ] [];
            ret (band (v "x") (i (-4)));
          ];
        (* Small: frame energy via the quantizer. *)
        static_meth "energy" [ "a" ] ~returns:true
          [
            let_ "e" (i 0);
            for_ "k" (i 0)
              (arr_len (v "a"))
              [
                let_ "q" (call "Dsp" "quantize" [ arr_get (v "a") (v "k") ]);
                let_ "e"
                  (band (add (v "e") (call "Util" "absInt" [ v "q" ]))
                     (i 1073741823));
              ];
            ret (v "e");
          ];
        (* One frame decode; re-invoked per frame. *)
        static_meth "processFrame" [ "rng"; "sigf"; "coef"; "out" ]
          ~returns:true
          [
            let_ "n" (arr_len (v "sigf"));
            for_ "k" (i 0) (v "n")
              [
                arr_set (v "sigf") (v "k")
                  (sub (inv (v "rng") "below" [ i 2048 ]) (i 1024));
              ];
            expr (call "Dsp" "window" [ v "sigf" ]);
            expr (call "Dsp" "fir" [ v "sigf"; v "coef"; v "out" ]);
            let_ "b" (i 0);
            while_ (lt (v "b") (v "n"))
              [
                expr (call "Dsp" "xform8" [ v "out"; v "b" ]);
                let_ "b" (add (v "b") (i 8));
              ];
            ret (call "Dsp" "energy" [ v "out" ]);
          ];
      ];
  ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 555 ]);
    let_ "sig" (arr_new (i frame));
    let_ "out" (arr_new (i frame));
    let_ "coef" (arr_new (i taps));
    for_ "k" (i 0) (i taps)
      [ arr_set (v "coef") (v "k") (sub (i 512) (mul (v "k") (i 28))) ];
    let_ "acc" (i 0);
    for_ "f" (i 0) (i (10 * scale))
      [
        let_ "acc"
          (band
             (add (v "acc")
                (call "Dsp" "processFrame" [ v "rng"; v "sig"; v "coef"; v "out" ]))
             (i 1073741823));
      ];
    print (v "acc");
  ]
