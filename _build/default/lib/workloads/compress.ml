(* "compress"-shaped workload: block compression over patterned data.

   Mirrors the SPECjvm98 201_compress profile: almost all time in a few
   large static methods with tight array loops (never inlined — they are
   Large), plus tiny bit-twiddling helpers that static heuristics inline.
   Virtual dispatch is rare, so context sensitivity should have little
   effect here — as in the paper, where compress barely moves. *)

open Acsi_lang.Dsl

let block = 512

let classes =
  [
    cls "Compress" ~fields:[]
      [
        (* Tiny helpers: unconditional inline fodder. *)
        static_meth "lowBits" [ "x"; "n" ] ~returns:true
          [ ret (band (v "x") (sub (shl (i 1) (v "n")) (i 1))) ];
        static_meth "mix" [ "h"; "x" ] ~returns:true
          [ ret (band (add (mul (v "h") (i 131)) (v "x")) (i 1073741823)) ];
        (* Large method: run-length + delta encoding. *)
        static_meth "compress" [ "data"; "out" ] ~returns:true
          [
            let_ "n" (arr_len (v "data"));
            let_ "o" (i 0);
            let_ "k" (i 0);
            while_ (lt (v "k") (v "n"))
              [
                let_ "x" (arr_get (v "data") (v "k"));
                let_ "run" (i 1);
                while_
                  (and_
                     (lt (add (v "k") (v "run")) (v "n"))
                     (eq (arr_get (v "data") (add (v "k") (v "run"))) (v "x")))
                  [ let_ "run" (add (v "run") (i 1)) ];
                if_
                  (gt (v "run") (i 2))
                  [
                    arr_set (v "out") (v "o") (neg (v "run"));
                    arr_set (v "out") (add (v "o") (i 1)) (v "x");
                    let_ "o" (add (v "o") (i 2));
                    let_ "k" (add (v "k") (v "run"));
                  ]
                  [
                    (* literal: stored raw; inputs are non-negative, so
                       literals never collide with negative run markers *)
                    arr_set (v "out") (v "o") (v "x");
                    let_ "o" (add (v "o") (i 1));
                    let_ "k" (add (v "k") (i 1));
                  ];
              ];
            ret (v "o");
          ];
        (* Large method: the inverse transform. *)
        static_meth "decompress" [ "enc"; "len"; "out" ] ~returns:true
          [
            let_ "o" (i 0);
            let_ "k" (i 0);
            while_ (lt (v "k") (v "len"))
              [
                let_ "x" (arr_get (v "enc") (v "k"));
                if_
                  (lt (v "x") (i 0))
                  [
                    let_ "run" (neg (v "x"));
                    let_ "val" (arr_get (v "enc") (add (v "k") (i 1)));
                    for_ "r" (i 0) (v "run")
                      [ arr_set (v "out") (add (v "o") (v "r")) (v "val") ];
                    let_ "o" (add (v "o") (v "run"));
                    let_ "k" (add (v "k") (i 2));
                  ]
                  [
                    arr_set (v "out") (v "o") (v "x");
                    let_ "o" (add (v "o") (i 1));
                    let_ "k" (add (v "k") (i 1));
                  ];
              ];
            ret (v "o");
          ];
        (* Small method: rolling checksum over a block. *)
        static_meth "checksum" [ "a"; "len" ] ~returns:true
          [
            let_ "h" (i 7);
            for_ "k" (i 0) (v "len")
              [
                let_ "h"
                  (call "Compress" "mix" [ v "h"; arr_get (v "a") (v "k") ]);
              ];
            ret (v "h");
          ];
        (* One full round-trip over a block; re-invoked per block. *)
        static_meth "roundTrip" [ "rng"; "data"; "enc"; "dec" ] ~returns:true
          [
            let_ "n" (arr_len (v "data"));
            for_ "k" (i 0) (v "n")
              [
                arr_set (v "data") (v "k")
                  (add (band (v "k") (i 15)) (inv (v "rng") "below" [ i 3 ]));
              ];
            let_ "en" (call "Compress" "compress" [ v "data"; v "enc" ]);
            let_ "m" (call "Compress" "decompress" [ v "enc"; v "en"; v "dec" ]);
            let_ "bad" (i 0);
            if_ (ne (v "m") (v "n")) [ let_ "bad" (i 1) ] [];
            for_ "k" (i 0) (v "n")
              [
                if_
                  (ne (arr_get (v "data") (v "k")) (arr_get (v "dec") (v "k")))
                  [ let_ "bad" (add (v "bad") (i 1)) ]
                  [];
              ];
            if_ (gt (v "bad") (i 0)) [ ret (neg (v "bad")) ] [];
            ret (call "Compress" "checksum" [ v "dec"; v "m" ]);
          ];
      ];
  ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 98765 ]);
    let_ "data" (arr_new (i block));
    let_ "enc" (arr_new (i (2 * block)));
    let_ "dec" (arr_new (i block));
    let_ "total" (i 0);
    let_ "errors" (i 0);
    for_ "rep" (i 0) (i (6 * scale))
      [
        let_ "r"
          (call "Compress" "roundTrip" [ v "rng"; v "data"; v "enc"; v "dec" ]);
        if_ (lt (v "r") (i 0))
          [ let_ "errors" (sub (v "errors") (v "r")) ]
          [ let_ "total" (band (add (v "total") (v "r")) (i 1073741823)) ];
      ];
    print (v "total");
    print (v "errors");
  ]
