(* "javac"-shaped workload: a compiler front end in miniature.

   A token generator emits random expression programs; a recursive-descent
   parser builds AST objects; the tree is then evaluated and measured
   through virtual [eval]/[count] methods. This gives the deepest call
   stacks of the suite (parser recursion above tiny node methods), the
   largest class count, and polymorphic sites whose distributions shift
   with tree shape — the profile that made javac the most
   context-sensitive SPECjvm98 member in the paper. *)

open Acsi_lang.Dsl

(* token codes *)
let t_num = 0
let t_var = 1
let t_plus = 2
let t_minus = 3
let t_times = 4
let t_lparen = 5
let t_rparen = 6
let t_end = 7

let node_classes =
  [
    cls "Node" ~parent:"Obj" ~fields:[]
      [
        meth "eval" [ "env" ] ~returns:true [ ret (i 0) ];
        meth "countNodes" [] ~returns:true [ ret (i 1) ];
      ];
    cls "NumN" ~parent:"Node" ~fields:[ "value" ]
      [
        meth "init" [ "value" ] ~returns:false
          [ expr (dcall this "Obj" "init" []); set_thisf "value" (v "value") ];
        meth "eval" [ "env" ] ~returns:true [ ret (thisf "value") ];
      ];
    cls "VarN" ~parent:"Node" ~fields:[ "slot" ]
      [
        meth "init" [ "slot" ] ~returns:false
          [ expr (dcall this "Obj" "init" []); set_thisf "slot" (v "slot") ];
        meth "eval" [ "env" ] ~returns:true
          [ ret (arr_get (v "env") (thisf "slot")) ];
      ];
    cls "BinN" ~parent:"Node" ~fields:[ "left"; "right" ]
      [
        meth "init" [ "l"; "r" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "left" (v "l");
            set_thisf "right" (v "r");
          ];
        meth "countNodes" [] ~returns:true
          [
            ret
              (add (i 1)
                 (add
                    (inv (thisf "left") "countNodes" [])
                    (inv (thisf "right") "countNodes" [])));
          ];
      ];
    cls "AddN" ~parent:"BinN" ~fields:[]
      [
        meth "eval" [ "env" ] ~returns:true
          [
            ret
              (add
                 (inv (thisf "left") "eval" [ v "env" ])
                 (inv (thisf "right") "eval" [ v "env" ]));
          ];
      ];
    cls "SubN" ~parent:"BinN" ~fields:[]
      [
        meth "eval" [ "env" ] ~returns:true
          [
            ret
              (sub
                 (inv (thisf "left") "eval" [ v "env" ])
                 (inv (thisf "right") "eval" [ v "env" ]));
          ];
      ];
    cls "MulN" ~parent:"BinN" ~fields:[]
      [
        meth "eval" [ "env" ] ~returns:true
          [
            ret
              (band
                 (mul
                    (inv (thisf "left") "eval" [ v "env" ])
                    (inv (thisf "right") "eval" [ v "env" ]))
                 (i 16777215));
          ];
      ];
    cls "NegN" ~parent:"Node" ~fields:[ "inner" ]
      [
        meth "init" [ "e" ] ~returns:false
          [ expr (dcall this "Obj" "init" []); set_thisf "inner" (v "e") ];
        meth "eval" [ "env" ] ~returns:true
          [ ret (neg (inv (thisf "inner") "eval" [ v "env" ])) ];
        meth "countNodes" [] ~returns:true
          [ ret (add (i 1) (inv (thisf "inner") "countNodes" [])) ];
      ];
  ]

let gen_class =
  cls "TokenGen" ~fields:[]
    [
      (* Recursively emit a random expression; returns the new position. *)
      static_meth "genExpr" [ "rng"; "toks"; "pos"; "depth" ] ~returns:true
        [
          if_
            (or_ (le (v "depth") (i 0)) (eq (inv (v "rng") "below" [ i 3 ]) (i 0)))
            [
              (* leaf: NUM or VAR *)
              if_
                (eq (inv (v "rng") "below" [ i 2 ]) (i 0))
                [
                  arr_set (v "toks") (v "pos") (i t_num);
                  arr_set (v "toks")
                    (add (v "pos") (i 1))
                    (inv (v "rng") "below" [ i 1000 ]);
                  ret (add (v "pos") (i 2));
                ]
                [
                  arr_set (v "toks") (v "pos") (i t_var);
                  arr_set (v "toks")
                    (add (v "pos") (i 1))
                    (inv (v "rng") "below" [ i 8 ]);
                  ret (add (v "pos") (i 2));
                ];
            ]
            [
              arr_set (v "toks") (v "pos") (i t_lparen);
              let_ "p"
                (call "TokenGen" "genExpr"
                   [ v "rng"; v "toks"; add (v "pos") (i 1); sub (v "depth") (i 1) ]);
              let_ "op" (inv (v "rng") "below" [ i 3 ]);
              if_
                (eq (v "op") (i 0))
                [ arr_set (v "toks") (v "p") (i t_plus) ]
                [
                  if_
                    (eq (v "op") (i 1))
                    [ arr_set (v "toks") (v "p") (i t_minus) ]
                    [ arr_set (v "toks") (v "p") (i t_times) ];
                ];
              let_ "p2"
                (call "TokenGen" "genExpr"
                   [ v "rng"; v "toks"; add (v "p") (i 1); sub (v "depth") (i 1) ]);
              arr_set (v "toks") (v "p2") (i t_rparen);
              ret (add (v "p2") (i 1));
            ];
        ];
    ]

let parser_class =
  cls "Parser" ~fields:[ "toks"; "pos" ]
    [
      meth "init" [ "toks" ] ~returns:false
        [ set_thisf "toks" (v "toks"); set_thisf "pos" (i 0) ];
      meth "peek" [] ~returns:true
        [ ret (arr_get (thisf "toks") (thisf "pos")) ];
      meth "advance" [] ~returns:true
        [
          let_ "t" (arr_get (thisf "toks") (thisf "pos"));
          set_thisf "pos" (add (thisf "pos") (i 1));
          ret (v "t");
        ];
      meth "parseExpr" [] ~returns:true
        [
          let_ "t" (inv this "parseTerm" []);
          while_
            (or_
               (eq (inv this "peek" []) (i t_plus))
               (eq (inv this "peek" []) (i t_minus)))
            [
              let_ "op" (inv this "advance" []);
              let_ "r" (inv this "parseTerm" []);
              if_
                (eq (v "op") (i t_plus))
                [ let_ "t" (new_ "AddN" [ v "t"; v "r" ]) ]
                [ let_ "t" (new_ "SubN" [ v "t"; v "r" ]) ];
            ];
          ret (v "t");
        ];
      meth "parseTerm" [] ~returns:true
        [
          let_ "f" (inv this "parseFactor" []);
          while_ (eq (inv this "peek" []) (i t_times))
            [
              expr (inv this "advance" []);
              let_ "f" (new_ "MulN" [ v "f"; inv this "parseFactor" [] ]);
            ];
          ret (v "f");
        ];
      meth "parseFactor" [] ~returns:true
        [
          let_ "t" (inv this "advance" []);
          if_ (eq (v "t") (i t_num))
            [ ret (new_ "NumN" [ inv this "advance" [] ]) ]
            [];
          if_ (eq (v "t") (i t_var))
            [ ret (new_ "VarN" [ inv this "advance" [] ]) ]
            [];
          if_
            (eq (v "t") (i t_lparen))
            [
              let_ "e" (inv this "parseExpr" []);
              expr (inv this "advance" []);
              (* consume the RPAREN *)
              ret (v "e");
            ]
            [];
          if_ (eq (v "t") (i t_minus))
            [ ret (new_ "NegN" [ inv this "parseFactor" [] ]) ]
            [];
          (* Unexpected token: treat as zero (generator never produces it). *)
          ret (new_ "NumN" [ i 0 ]);
        ];
    ]

let driver_class =
  cls "Driver" ~fields:[]
    [
      (* One generate/parse/evaluate cycle; re-invoked per program so the
         optimized parser and evaluator actually run. *)
      static_meth "compileAndRun" [ "rng"; "toks"; "env" ] ~returns:true
        [
          let_ "len" (call "TokenGen" "genExpr" [ v "rng"; v "toks"; i 0; i 6 ]);
          arr_set (v "toks") (v "len") (i 7);
          let_ "p" (new_ "Parser" [ v "toks" ]);
          let_ "tree" (inv (v "p") "parseExpr" []);
          let_ "acc" (inv (v "tree") "countNodes" []);
          for_ "e" (i 0) (i 6)
            [
              for_ "k" (i 0) (i 8)
                [ arr_set (v "env") (v "k") (inv (v "rng") "below" [ i 100 ]) ];
              let_ "acc"
                (band
                   (add (v "acc") (inv (v "tree") "eval" [ v "env" ]))
                   (i 1073741823));
            ];
          ret (v "acc");
        ];
    ]

let classes = node_classes @ [ gen_class; parser_class; driver_class ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 31337 ]);
    let_ "toks" (arr_new (i 4096));
    let_ "env" (arr_new (i 8));
    let_ "sum" (i 0);
    for_ "rep" (i 0) (i (4 * scale))
      [
        let_ "sum"
          (band
             (add (v "sum")
                (call "Driver" "compileAndRun" [ v "rng"; v "toks"; v "env" ]))
             (i 1073741823));
      ];
    print (v "sum");
  ]
