(* A miniature "java.util"-flavoured class library shared by the
   workloads, written in the mini-language.

   Its purpose mirrors the role the real collection classes play in the
   paper's motivation (Figure 1): library methods such as [HashMap.get]
   and [Sorter.sort] are reached from many call sites with *different*
   receiver/key class distributions per site, which is precisely the
   situation where context-sensitive profiles beat context-insensitive
   ones.

   All arithmetic is plain 63-bit integers; object identity comes from a
   global allocation counter seeded into every [Obj]. *)

open Acsi_lang.Dsl

let globals = [ "oidCounter" ]

(* Root class: identity-based hash and equality. *)
let obj_class =
  cls "Obj" ~fields:[ "oid" ]
    [
      meth "init" [] ~returns:false
        [
          setg "oidCounter" (add (g "oidCounter") (i 1));
          set_thisf "oid" (g "oidCounter");
        ];
      meth "hashCode" [] ~returns:true
        [ ret (band (mul (thisf "oid") (i 2654435761)) (i 1073741823)) ];
      meth "equals" [ "other" ] ~returns:true [ ret (eq this (v "other")) ];
    ]

(* Integer-valued key (the paper's MyKey). *)
let int_key_class =
  cls "IntKey" ~parent:"Obj" ~fields:[ "key" ]
    [
      meth "init" [ "k" ] ~returns:false
        [
          expr (dcall this "Obj" "init" []);
          set_thisf "key" (v "k");
        ];
      meth "hashCode" [] ~returns:true [ ret (thisf "key") ];
      meth "equals" [ "other" ] ~returns:true
        [
          ret
            (and_
               (instof (v "other") "IntKey")
               (eq (fld "IntKey" (v "other") "key") (thisf "key")));
        ];
    ]

(* A second key class with a different hash mix, so polymorphic hashCode /
   equals sites arise whenever both key kinds flow into the same map. *)
let pair_key_class =
  cls "PairKey" ~parent:"Obj" ~fields:[ "a"; "b" ]
    [
      meth "init" [ "x"; "y" ] ~returns:false
        [
          expr (dcall this "Obj" "init" []);
          set_thisf "a" (v "x");
          set_thisf "b" (v "y");
        ];
      meth "hashCode" [] ~returns:true
        [ ret (band (add (mul (thisf "a") (i 31)) (thisf "b")) (i 1073741823)) ];
      meth "equals" [ "other" ] ~returns:true
        [
          ret
            (and_
               (instof (v "other") "PairKey")
               (and_
                  (eq (fld "PairKey" (v "other") "a") (thisf "a"))
                  (eq (fld "PairKey" (v "other") "b") (thisf "b"))));
        ];
    ]

let map_entry_class =
  cls "MapEntry" ~fields:[ "key"; "value"; "next" ]
    [
      meth "init" [ "k"; "vv"; "n" ] ~returns:false
        [
          set_thisf "key" (v "k");
          set_thisf "value" (v "vv");
          set_thisf "next" (v "n");
        ];
    ]

(* Chained hash map; get/put call hashCode and equals virtually, exactly
   like the paper's simplified HashMap.get. *)
let hash_map_class =
  cls "HashMap" ~fields:[ "table"; "mask"; "size" ]
    [
      meth "init" [ "cap" ] ~returns:false
        [
          set_thisf "table" (arr_new (v "cap"));
          (* fresh array slots default to 0; buckets hold references *)
          for_ "k" (i 0) (v "cap")
            [ arr_set (thisf "table") (v "k") null ];
          set_thisf "mask" (sub (v "cap") (i 1));
          set_thisf "size" (i 0);
        ];
      meth "get" [ "key" ] ~returns:true
        [
          let_ "idx" (band (inv (v "key") "hashCode" []) (thisf "mask"));
          let_ "e" (arr_get (thisf "table") (v "idx"));
          while_ (ne (v "e") null)
            [
              if_
                (or_
                   (eq (fld "MapEntry" (v "e") "key") (v "key"))
                   (inv (v "key") "equals" [ fld "MapEntry" (v "e") "key" ]))
                [ ret (fld "MapEntry" (v "e") "value") ]
                [];
              let_ "e" (fld "MapEntry" (v "e") "next");
            ];
          ret null;
        ];
      meth "put" [ "key"; "val" ] ~returns:false
        [
          let_ "idx" (band (inv (v "key") "hashCode" []) (thisf "mask"));
          let_ "e" (arr_get (thisf "table") (v "idx"));
          while_ (ne (v "e") null)
            [
              if_
                (or_
                   (eq (fld "MapEntry" (v "e") "key") (v "key"))
                   (inv (v "key") "equals" [ fld "MapEntry" (v "e") "key" ]))
                [ setf "MapEntry" (v "e") "value" (v "val"); retv ]
                [];
              let_ "e" (fld "MapEntry" (v "e") "next");
            ];
          arr_set (thisf "table") (v "idx")
            (new_ "MapEntry"
               [ v "key"; v "val"; arr_get (thisf "table") (v "idx") ]);
          set_thisf "size" (add (thisf "size") (i 1));
        ];
      meth "count" [] ~returns:true [ ret (thisf "size") ];
    ]

(* Growable vector of values. *)
let vector_class =
  cls "Vector" ~fields:[ "data"; "length" ]
    [
      meth "init" [ "cap" ] ~returns:false
        [
          set_thisf "data" (arr_new (v "cap"));
          set_thisf "length" (i 0);
        ];
      meth "add" [ "x" ] ~returns:false
        [
          if_
            (eq (thisf "length") (arr_len (thisf "data")))
            [
              let_ "bigger" (arr_new (mul (arr_len (thisf "data")) (i 2)));
              for_ "k" (i 0) (thisf "length")
                [ arr_set (v "bigger") (v "k") (arr_get (thisf "data") (v "k")) ];
              set_thisf "data" (v "bigger");
            ]
            [];
          arr_set (thisf "data") (thisf "length") (v "x");
          set_thisf "length" (add (thisf "length") (i 1));
        ];
      meth "at" [ "idx" ] ~returns:true [ ret (arr_get (thisf "data") (v "idx")) ];
      meth "setAt" [ "idx"; "x" ] ~returns:false
        [ arr_set (thisf "data") (v "idx") (v "x") ];
      meth "size" [] ~returns:true [ ret (thisf "length") ];
    ]

(* Deterministic linear-congruential generator. *)
let rng_class =
  cls "Rng" ~fields:[ "seed" ]
    [
      meth "init" [ "s" ] ~returns:false
        [ set_thisf "seed" (band (v "s") (i 1073741823)) ];
      meth "next" [] ~returns:true
        [
          set_thisf "seed"
            (band
               (add (mul (thisf "seed") (i 1103515245)) (i 12345))
               (i 1073741823));
          ret (thisf "seed");
        ];
      meth "below" [ "bound" ] ~returns:true
        [ ret (rem (inv this "next" []) (v "bound")) ];
    ]

(* Comparator hierarchy: a classic source of polymorphic virtual sites. *)
let comparator_classes =
  [
    cls "Cmp" ~fields:[]
      [ meth "compare" [ "x"; "y" ] ~returns:true [ ret (sub (v "x") (v "y")) ] ];
    cls "AscCmp" ~parent:"Cmp" ~fields:[]
      [ meth "compare" [ "x"; "y" ] ~returns:true [ ret (sub (v "x") (v "y")) ] ];
    cls "DescCmp" ~parent:"Cmp" ~fields:[]
      [ meth "compare" [ "x"; "y" ] ~returns:true [ ret (sub (v "y") (v "x")) ] ];
    cls "ModCmp" ~parent:"Cmp" ~fields:[]
      [
        meth "compare" [ "x"; "y" ] ~returns:true
          [ ret (sub (rem (v "x") (i 1024)) (rem (v "y") (i 1024))) ];
      ];
  ]

(* Static helpers over int arrays, including an insertion sort driven by a
   comparator object (so every sort call site is a polymorphic dispatch on
   Cmp.compare). *)
let util_class =
  cls "Util" ~fields:[]
    [
      static_meth "fillRandom" [ "a"; "rng" ] ~returns:false
        [
          for_ "k" (i 0)
            (arr_len (v "a"))
            [ arr_set (v "a") (v "k") (inv (v "rng") "next" []) ];
        ];
      static_meth "sum" [ "a" ] ~returns:true
        [
          let_ "s" (i 0);
          for_ "k" (i 0)
            (arr_len (v "a"))
            [ let_ "s" (add (v "s") (arr_get (v "a") (v "k"))) ];
          ret (v "s");
        ];
      static_meth "sortBy" [ "a"; "cmp" ] ~returns:false
        [
          for_ "k" (i 1)
            (arr_len (v "a"))
            [
              let_ "x" (arr_get (v "a") (v "k"));
              let_ "j" (sub (v "k") (i 1));
              while_
                (and_
                   (ge (v "j") (i 0))
                   (gt (inv (v "cmp") "compare" [ arr_get (v "a") (v "j"); v "x" ]) (i 0)))
                [
                  arr_set (v "a") (add (v "j") (i 1)) (arr_get (v "a") (v "j"));
                  let_ "j" (sub (v "j") (i 1));
                ];
              arr_set (v "a") (add (v "j") (i 1)) (v "x");
            ];
        ];
      static_meth "minInt" [ "x"; "y" ] ~returns:true
        [ if_ (lt (v "x") (v "y")) [ ret (v "x") ] [ ret (v "y") ] ];
      static_meth "maxInt" [ "x"; "y" ] ~returns:true
        [ if_ (gt (v "x") (v "y")) [ ret (v "x") ] [ ret (v "y") ] ];
      static_meth "absInt" [ "x" ] ~returns:true
        [ if_ (lt (v "x") (i 0)) [ ret (neg (v "x")) ] [ ret (v "x") ] ];
    ]

let classes =
  [
    obj_class;
    int_key_class;
    pair_key_class;
    map_entry_class;
    hash_map_class;
    vector_class;
    rng_class;
    util_class;
  ]
  @ comparator_classes
