open Acsi_lang.Dsl

let build ?(globals = []) classes main =
  Acsi_lang.Compile.prog
    (prog
       ~globals:(Javalib.globals @ globals)
       (Javalib.classes @ classes)
       main)

let mono_loop ~scale =
  let classes =
    [
      cls "Only" ~parent:"Obj" ~fields:[]
        [ meth "tick" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ] ];
      cls "Driver" ~fields:[]
        [
          static_meth "batch" [ "o"; "n" ] ~returns:true
            [
              let_ "s" (i 0);
              for_ "k" (i 0) (v "n") [ let_ "s" (inv (v "o") "tick" [ v "s" ]) ];
              ret (v "s");
            ];
        ];
    ]
  in
  build classes
    [
      let_ "o" (new_ "Only" []);
      let_ "acc" (i 0);
      for_ "b" (i 0) (i scale)
        [
          let_ "acc"
            (band (add (v "acc") (call "Driver" "batch" [ v "o"; i 600 ]))
               (i 1073741823));
        ];
      print (v "acc");
    ]

(* Shared scaffolding for the receiver-distribution micros: a Handler
   hierarchy plus a driver that dispatches [step] on receivers drawn from
   a vector. *)
let handler_classes variants =
  cls "Handler" ~parent:"Obj" ~fields:[]
    [ meth "step" [ "x" ] ~returns:true [ ret (v "x") ] ]
  :: List.map
       (fun (name, factor) ->
         cls name ~parent:"Handler" ~fields:[]
           [
             meth "step" [ "x" ] ~returns:true
               [ ret (band (mul (v "x") (i factor)) (i 65535)) ];
           ])
       variants
  @ [
      cls "Driver" ~fields:[]
        [
          static_meth "batch" [ "pool"; "n" ] ~returns:true
            [
              let_ "s" (i 1);
              let_ "m" (inv (v "pool") "size" []);
              for_ "k" (i 0) (v "n")
                [
                  let_ "h" (inv (v "pool") "at" [ rem (v "k") (v "m") ]);
                  let_ "s" (add (v "s") (inv (v "h") "step" [ v "k" ]));
                ];
              ret (band (v "s") (i 1073741823));
            ];
        ];
    ]

let pool_program ~scale ~variants ~pool_of =
  build (handler_classes variants)
    ([ let_ "pool" (new_ "Vector" [ i 16 ]) ]
    @ pool_of
    @ [
        let_ "acc" (i 0);
        for_ "b" (i 0) (i scale)
          [
            let_ "acc"
              (band
                 (add (v "acc") (call "Driver" "batch" [ v "pool"; i 400 ]))
                 (i 1073741823));
          ];
        print (v "acc");
      ])

let add_n pool cls_name n =
  List.init n (fun _ -> expr (inv (v pool) "add" [ new_ cls_name [] ]))

let bimorphic ~scale =
  pool_program ~scale
    ~variants:[ ("Fast", 3); ("Rare", 5) ]
    ~pool_of:(add_n "pool" "Fast" 9 @ add_n "pool" "Rare" 1)

let megamorphic ~scale =
  let variants = List.init 8 (fun k -> (Printf.sprintf "H%d" k, 3 + k)) in
  pool_program ~scale ~variants
    ~pool_of:
      (List.concat_map (fun (name, _) -> add_n "pool" name 1) variants)

(* Figure 1 in miniature: the same [combine] helper reached from two call
   sites whose receiver class never varies per site. *)
let context_split ~scale =
  let classes =
    [
      cls "KeyA" ~parent:"Obj" ~fields:[]
        [ meth "mix" [ "x" ] ~returns:true [ ret (add (v "x") (i 7)) ] ];
      cls "KeyB" ~parent:"Obj" ~fields:[]
        [ meth "mix" [ "x" ] ~returns:true [ ret (mul (v "x") (i 3)) ] ];
      cls "Lib" ~fields:[]
        [
          (* the shared collection-class method *)
          static_meth "combine" [ "key"; "x" ] ~returns:true
            [ ret (band (inv (v "key") "mix" [ v "x" ]) (i 65535)) ];
        ];
      cls "Driver" ~fields:[]
        [
          static_meth "batch" [ "a"; "b"; "n" ] ~returns:true
            [
              let_ "s" (i 0);
              for_ "k" (i 0) (v "n")
                [
                  (* site 1: always KeyA; site 2: always KeyB *)
                  let_ "s" (add (v "s") (call "Lib" "combine" [ v "a"; v "k" ]));
                  let_ "s" (add (v "s") (call "Lib" "combine" [ v "b"; v "k" ]));
                ];
              ret (band (v "s") (i 1073741823));
            ];
        ];
    ]
  in
  build classes
    [
      let_ "a" (new_ "KeyA" []);
      let_ "b" (new_ "KeyB" []);
      let_ "acc" (i 0);
      for_ "batch" (i 0) (i scale)
        [
          let_ "acc"
            (band
               (add (v "acc") (call "Driver" "batch" [ v "a"; v "b"; i 300 ]))
               (i 1073741823));
        ];
      print (v "acc");
    ]

let deep_chain ~scale =
  let level name callee =
    static_meth name [ "x"; "y" ] ~returns:true
      [ ret (call "Chain" callee [ add (v "x") (i 1); bxor (v "y") (v "x") ]) ]
  in
  let classes =
    [
      cls "Chain" ~fields:[]
        [
          static_meth "l0" [ "x"; "y" ] ~returns:true
            [ ret (band (add (v "x") (v "y")) (i 65535)) ];
          level "l1" "l0";
          level "l2" "l1";
          level "l3" "l2";
          level "l4" "l3";
          level "l5" "l4";
          static_meth "batch" [ "n" ] ~returns:true
            [
              let_ "s" (i 0);
              for_ "k" (i 0) (v "n")
                [ let_ "s" (add (v "s") (call "Chain" "l5" [ v "k"; v "s" ])) ];
              ret (band (v "s") (i 1073741823));
            ];
        ];
    ]
  in
  build classes
    [
      let_ "acc" (i 0);
      for_ "b" (i 0) (i scale)
        [
          let_ "acc"
            (band (add (v "acc") (call "Chain" "batch" [ i 250 ]))
               (i 1073741823));
        ];
      print (v "acc");
    ]

let phase_flip ~scale =
  (* Two single-receiver pools, switched between halfway through. *)
  build
    (handler_classes [ ("Early", 3); ("Late", 5) ])
    [
      let_ "early" (new_ "Vector" [ i 4 ]);
      expr (inv (v "early") "add" [ new_ "Early" [] ]);
      let_ "late" (new_ "Vector" [ i 4 ]);
      expr (inv (v "late") "add" [ new_ "Late" [] ]);
      let_ "acc" (i 0);
      for_ "b" (i 0) (i scale)
        [
          let_ "acc"
            (band
               (add (v "acc") (call "Driver" "batch" [ v "early"; i 400 ]))
               (i 1073741823));
        ];
      for_ "b" (i 0) (i scale)
        [
          let_ "acc"
            (band (add (v "acc") (call "Driver" "batch" [ v "late"; i 400 ]))
               (i 1073741823));
        ];
      print (v "acc");
    ]

let all =
  [
    ("mono_loop", mono_loop);
    ("bimorphic", bimorphic);
    ("megamorphic", megamorphic);
    ("context_split", context_split);
    ("deep_chain", deep_chain);
    ("phase_flip", phase_flip);
  ]
