(* Richards: the classic operating-system-simulation benchmark (Martin
   Richards' task scheduler, as circulated in the Smalltalk/Java/V8
   versions), ported to the mini-language.

   This is the "larger and more object-oriented programs" extension the
   paper's §7 anticipates: scheduling walks a list of task control blocks
   and dispatches [run] across a four-way task hierarchy, with packet
   queues threaded through everything.

   The port follows the V8 JavaScript version closely enough that its
   known-good counters carry over: one scheduling round with an idle count
   of 1000 must end with queueCount = 2322 and holdCount = 928 — an
   independent cross-check that the whole VM substrate executes a
   non-trivial object-oriented program correctly. *)

open Acsi_lang.Dsl

(* ids / kinds / states of the classic benchmark *)
let id_idle = 0
let id_worker = 1
let id_handler_a = 2
let id_handler_b = 3
let id_device_a = 4
let id_device_b = 5
let kind_device = 0
let kind_work = 1
let data_size = 4
let state_running = 0
let state_runnable = 1
let state_suspended = 2
let state_suspended_runnable = 3
let state_held = 4
let idle_count = 1000
let expected_queue_count = 2322
let expected_hold_count = 928

let packet_class =
  cls "Packet" ~fields:[ "link"; "ident"; "kind"; "a1"; "a2" ]
    [
      meth "init" [ "link"; "ident"; "kind" ] ~returns:false
        [
          set_thisf "link" (v "link");
          set_thisf "ident" (v "ident");
          set_thisf "kind" (v "kind");
          set_thisf "a1" (i 0);
          set_thisf "a2" (arr_new (i data_size));
        ];
      (* append self to the end of [queue]; returns the new queue head *)
      meth "addTo" [ "queue" ] ~returns:true
        [
          set_thisf "link" null;
          if_ (eq (v "queue") null) [ ret this ] [];
          let_ "peek" (v "queue");
          let_ "next" (fld "Packet" (v "peek") "link");
          while_ (ne (v "next") null)
            [
              let_ "peek" (v "next");
              let_ "next" (fld "Packet" (v "peek") "link");
            ];
          setf "Packet" (v "peek") "link" this;
          ret (v "queue");
        ];
    ]

let tcb_class =
  cls "Tcb" ~fields:[ "link"; "ident"; "priority"; "queue"; "state"; "task" ]
    [
      meth "init" [ "link"; "ident"; "priority"; "queue"; "task" ]
        ~returns:false
        [
          set_thisf "link" (v "link");
          set_thisf "ident" (v "ident");
          set_thisf "priority" (v "priority");
          set_thisf "queue" (v "queue");
          set_thisf "task" (v "task");
          if_ (eq (v "queue") null)
            [ set_thisf "state" (i state_suspended) ]
            [ set_thisf "state" (i state_suspended_runnable) ];
        ];
      meth "setRunning" [] ~returns:false
        [ set_thisf "state" (i state_running) ];
      meth "markAsNotHeld" [] ~returns:false
        [ set_thisf "state" (band (thisf "state") (i (lnot state_held))) ];
      meth "markAsHeld" [] ~returns:false
        [ set_thisf "state" (bor (thisf "state") (i state_held)) ];
      meth "isHeldOrSuspended" [] ~returns:true
        [
          ret
            (or_
               (ne (band (thisf "state") (i state_held)) (i 0))
               (eq (thisf "state") (i state_suspended)));
        ];
      meth "markAsSuspended" [] ~returns:false
        [ set_thisf "state" (bor (thisf "state") (i state_suspended)) ];
      meth "markAsRunnable" [] ~returns:false
        [ set_thisf "state" (bor (thisf "state") (i state_runnable)) ];
      (* run one step: pop a pending packet if suspended-runnable, then
         dispatch into the task object; returns the next Tcb. *)
      meth "runStep" [] ~returns:true
        [
          let_ "packet" null;
          if_
            (eq (thisf "state") (i state_suspended_runnable))
            [
              let_ "packet" (thisf "queue");
              set_thisf "queue" (fld "Packet" (v "packet") "link");
              if_ (eq (thisf "queue") null)
                [ set_thisf "state" (i state_running) ]
                [ set_thisf "state" (i state_runnable) ];
            ]
            [];
          ret (inv (thisf "task") "run" [ v "packet" ]);
        ];
      meth "checkPriorityAdd" [ "task"; "packet" ] ~returns:true
        [
          if_
            (eq (thisf "queue") null)
            [
              set_thisf "queue" (v "packet");
              expr (dcall this "Tcb" "markAsRunnable" []);
              if_
                (gt (thisf "priority") (fld "Tcb" (v "task") "priority"))
                [ ret this ]
                [];
            ]
            [
              set_thisf "queue"
                (inv (v "packet") "addTo" [ thisf "queue" ]);
            ];
          ret (v "task");
        ];
    ]

let scheduler_class =
  cls "Scheduler"
    ~fields:
      [ "queueCount"; "holdCount"; "blocks"; "list"; "currentTcb"; "currentId" ]
    [
      meth "init" [] ~returns:false
        [
          set_thisf "queueCount" (i 0);
          set_thisf "holdCount" (i 0);
          set_thisf "blocks" (arr_new (i 6));
          for_ "k" (i 0) (i 6) [ arr_set (thisf "blocks") (v "k") null ];
          set_thisf "list" null;
        ];
      meth "addTask" [ "ident"; "priority"; "queue"; "task" ] ~returns:false
        [
          let_ "tcb"
            (new_ "Tcb"
               [ thisf "list"; v "ident"; v "priority"; v "queue"; v "task" ]);
          arr_set (thisf "blocks") (v "ident") (v "tcb");
          set_thisf "list" (v "tcb");
        ];
      meth "addRunningTask" [ "ident"; "priority"; "queue"; "task" ]
        ~returns:false
        [
          expr (dcall this "Scheduler" "addTask"
                  [ v "ident"; v "priority"; v "queue"; v "task" ]);
          expr (dcall (thisf "list") "Tcb" "setRunning" []);
        ];
      meth "schedule" [] ~returns:false
        [
          set_thisf "currentTcb" (thisf "list");
          while_
            (ne (thisf "currentTcb") null)
            [
              if_
                (inv (thisf "currentTcb") "isHeldOrSuspended" [])
                [
                  set_thisf "currentTcb"
                    (fld "Tcb" (thisf "currentTcb") "link");
                ]
                [
                  set_thisf "currentId"
                    (fld "Tcb" (thisf "currentTcb") "ident");
                  set_thisf "currentTcb"
                    (inv (thisf "currentTcb") "runStep" []);
                ];
            ];
        ];
      meth "release" [ "ident" ] ~returns:true
        [
          let_ "tcb" (arr_get (thisf "blocks") (v "ident"));
          if_ (eq (v "tcb") null) [ ret null ] [];
          expr (dcall (v "tcb") "Tcb" "markAsNotHeld" []);
          if_
            (gt (fld "Tcb" (v "tcb") "priority")
               (fld "Tcb" (thisf "currentTcb") "priority"))
            [ ret (v "tcb") ]
            [ ret (thisf "currentTcb") ];
        ];
      meth "holdCurrent" [] ~returns:true
        [
          set_thisf "holdCount" (add (thisf "holdCount") (i 1));
          expr (dcall (thisf "currentTcb") "Tcb" "markAsHeld" []);
          ret (fld "Tcb" (thisf "currentTcb") "link");
        ];
      meth "suspendCurrent" [] ~returns:true
        [
          expr (dcall (thisf "currentTcb") "Tcb" "markAsSuspended" []);
          ret (thisf "currentTcb");
        ];
      meth "queuePacket" [ "packet" ] ~returns:true
        [
          let_ "tcb"
            (arr_get (thisf "blocks") (fld "Packet" (v "packet") "ident"));
          if_ (eq (v "tcb") null) [ ret null ] [];
          set_thisf "queueCount" (add (thisf "queueCount") (i 1));
          setf "Packet" (v "packet") "link" null;
          setf "Packet" (v "packet") "ident" (thisf "currentId");
          ret
            (inv (v "tcb") "checkPriorityAdd"
               [ thisf "currentTcb"; v "packet" ]);
        ];
    ]

(* The four task flavours; [run] takes the popped packet (or null) and
   returns the next Tcb to schedule. *)
let task_classes =
  [
    cls "Task" ~fields:[ "sched" ]
      [ meth "run" [ "packet" ] ~returns:true [ ret null ] ];
    cls "IdleTask" ~parent:"Task" ~fields:[ "seed"; "count" ]
      [
        meth "init" [ "sched"; "seed"; "count" ] ~returns:false
          [
            set_thisf "sched" (v "sched");
            set_thisf "seed" (v "seed");
            set_thisf "count" (v "count");
          ];
        meth "run" [ "packet" ] ~returns:true
          [
            set_thisf "count" (sub (thisf "count") (i 1));
            if_ (eq (thisf "count") (i 0))
              [ ret (inv (thisf "sched") "holdCurrent" []) ]
              [];
            if_
              (eq (band (thisf "seed") (i 1)) (i 0))
              [
                set_thisf "seed" (shr (thisf "seed") (i 1));
                ret (inv (thisf "sched") "release" [ i id_device_a ]);
              ]
              [
                set_thisf "seed"
                  (bxor (shr (thisf "seed") (i 1)) (i 0xD008));
                ret (inv (thisf "sched") "release" [ i id_device_b ]);
              ];
          ];
      ];
    cls "DeviceTask" ~parent:"Task" ~fields:[ "pending" ]
      [
        meth "init" [ "sched" ] ~returns:false
          [
            set_thisf "sched" (v "sched");
            set_thisf "pending" null;
          ];
        meth "run" [ "packet" ] ~returns:true
          [
            if_
              (eq (v "packet") null)
              [
                if_ (eq (thisf "pending") null)
                  [ ret (inv (thisf "sched") "suspendCurrent" []) ]
                  [];
                let_ "p" (thisf "pending");
                set_thisf "pending" null;
                ret (inv (thisf "sched") "queuePacket" [ v "p" ]);
              ]
              [
                set_thisf "pending" (v "packet");
                ret (inv (thisf "sched") "holdCurrent" []);
              ];
          ];
      ];
    cls "WorkerTask" ~parent:"Task" ~fields:[ "handler"; "counter" ]
      [
        meth "init" [ "sched"; "handler"; "counter" ] ~returns:false
          [
            set_thisf "sched" (v "sched");
            set_thisf "handler" (v "handler");
            set_thisf "counter" (v "counter");
          ];
        meth "run" [ "packet" ] ~returns:true
          [
            if_ (eq (v "packet") null)
              [ ret (inv (thisf "sched") "suspendCurrent" []) ]
              [];
            set_thisf "handler"
              (sub (i (id_handler_a + id_handler_b)) (thisf "handler"));
            setf "Packet" (v "packet") "ident" (thisf "handler");
            setf "Packet" (v "packet") "a1" (i 0);
            for_ "k" (i 0) (i data_size)
              [
                set_thisf "counter" (add (thisf "counter") (i 1));
                if_ (gt (thisf "counter") (i 26))
                  [ set_thisf "counter" (i 1) ]
                  [];
                arr_set (fld "Packet" (v "packet") "a2") (v "k")
                  (thisf "counter");
              ];
            ret (inv (thisf "sched") "queuePacket" [ v "packet" ]);
          ];
      ];
    cls "HandlerTask" ~parent:"Task" ~fields:[ "workQ"; "deviceQ" ]
      [
        meth "init" [ "sched" ] ~returns:false
          [
            set_thisf "sched" (v "sched");
            set_thisf "workQ" null;
            set_thisf "deviceQ" null;
          ];
        meth "run" [ "packet" ] ~returns:true
          [
            if_
              (ne (v "packet") null)
              [
                if_
                  (eq (fld "Packet" (v "packet") "kind") (i kind_work))
                  [
                    set_thisf "workQ"
                      (inv (v "packet") "addTo" [ thisf "workQ" ]);
                  ]
                  [
                    set_thisf "deviceQ"
                      (inv (v "packet") "addTo" [ thisf "deviceQ" ]);
                  ];
              ]
              [];
            if_
              (ne (thisf "workQ") null)
              [
                let_ "count" (fld "Packet" (thisf "workQ") "a1");
                if_
                  (lt (v "count") (i data_size))
                  [
                    if_
                      (ne (thisf "deviceQ") null)
                      [
                        let_ "devp" (thisf "deviceQ");
                        set_thisf "deviceQ" (fld "Packet" (v "devp") "link");
                        setf "Packet" (v "devp") "a1"
                          (arr_get (fld "Packet" (thisf "workQ") "a2")
                             (v "count"));
                        setf "Packet" (thisf "workQ") "a1"
                          (add (v "count") (i 1));
                        ret (inv (thisf "sched") "queuePacket" [ v "devp" ]);
                      ]
                      [];
                  ]
                  [
                    let_ "workp" (thisf "workQ");
                    set_thisf "workQ" (fld "Packet" (v "workp") "link");
                    ret (inv (thisf "sched") "queuePacket" [ v "workp" ]);
                  ];
              ]
              [];
            ret (inv (thisf "sched") "suspendCurrent" []);
          ];
      ];
  ]

(* One full scheduling round; returns 1 when the counters match the
   canonical implementation's expected values. *)
let driver_class =
  cls "Richards" ~fields:[]
    [
      static_meth "round" [] ~returns:true
        [
          let_ "sched" (new_ "Scheduler" []);
          expr
            (inv (v "sched") "addRunningTask"
               [
                 i id_idle; i 0; null;
                 new_ "IdleTask" [ v "sched"; i 1; i idle_count ];
               ]);
          let_ "wq" (new_ "Packet" [ null; i id_worker; i kind_work ]);
          let_ "wq" (new_ "Packet" [ v "wq"; i id_worker; i kind_work ]);
          expr
            (inv (v "sched") "addTask"
               [
                 i id_worker; i 1000; v "wq";
                 new_ "WorkerTask" [ v "sched"; i id_handler_a; i 0 ];
               ]);
          let_ "qa" (new_ "Packet" [ null; i id_device_a; i kind_device ]);
          let_ "qa" (new_ "Packet" [ v "qa"; i id_device_a; i kind_device ]);
          let_ "qa" (new_ "Packet" [ v "qa"; i id_device_a; i kind_device ]);
          expr
            (inv (v "sched") "addTask"
               [
                 i id_handler_a; i 2000; v "qa";
                 new_ "HandlerTask" [ v "sched" ];
               ]);
          let_ "qb" (new_ "Packet" [ null; i id_device_b; i kind_device ]);
          let_ "qb" (new_ "Packet" [ v "qb"; i id_device_b; i kind_device ]);
          let_ "qb" (new_ "Packet" [ v "qb"; i id_device_b; i kind_device ]);
          expr
            (inv (v "sched") "addTask"
               [
                 i id_handler_b; i 3000; v "qb";
                 new_ "HandlerTask" [ v "sched" ];
               ]);
          expr
            (inv (v "sched") "addTask"
               [ i id_device_a; i 4000; null; new_ "DeviceTask" [ v "sched" ] ]);
          expr
            (inv (v "sched") "addTask"
               [ i id_device_b; i 5000; null; new_ "DeviceTask" [ v "sched" ] ]);
          expr (inv (v "sched") "schedule" []);
          ret
            (and_
               (eq (fld "Scheduler" (v "sched") "queueCount")
                  (i expected_queue_count))
               (eq (fld "Scheduler" (v "sched") "holdCount")
                  (i expected_hold_count)));
        ];
    ]

let classes =
  [ packet_class; tcb_class; scheduler_class ] @ task_classes @ [ driver_class ]

let main ~scale =
  [
    let_ "ok" (i 0);
    for_ "round" (i 0) (i scale)
      [ let_ "ok" (add (v "ok") (call "Richards" "round" [])) ];
    print (v "ok");
  ]
