(* "jess"-shaped workload: a forward-chaining rule engine in miniature.

   The hot loop dispatches [matches] and [fire] virtually across a rule
   hierarchy whose population is skewed (most rules are RuleGT), so guarded
   inlining of the dominant target pays off; the run is short relative to
   the other benchmarks — as in the paper, where small changes show up as
   larger swings on jess. *)

open Acsi_lang.Dsl

let classes =
  [
    cls "Fact" ~parent:"Obj" ~fields:[ "kind"; "slotA"; "slotB" ]
      [
        meth "init" [ "kind"; "a"; "b" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "kind" (v "kind");
            set_thisf "slotA" (v "a");
            set_thisf "slotB" (v "b");
          ];
      ];
    cls "Rule" ~parent:"Obj" ~fields:[ "threshold" ]
      [
        meth "init" [ "t" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "threshold" (v "t");
          ];
        meth "matches" [ "f" ] ~returns:true [ ret (i 0) ];
        meth "fire" [ "f" ] ~returns:false
          [ setg "fired" (add (g "fired") (i 1)) ];
      ];
    cls "RuleGT" ~parent:"Rule" ~fields:[]
      [
        meth "matches" [ "f" ] ~returns:true
          [ ret (gt (fld "Fact" (v "f") "slotA") (thisf "threshold")) ];
      ];
    cls "RuleLT" ~parent:"Rule" ~fields:[]
      [
        meth "matches" [ "f" ] ~returns:true
          [ ret (lt (fld "Fact" (v "f") "slotB") (thisf "threshold")) ];
      ];
    cls "RuleEq" ~parent:"Rule" ~fields:[]
      [
        meth "matches" [ "f" ] ~returns:true
          [ ret (eq (fld "Fact" (v "f") "kind") (rem (thisf "threshold") (i 4))) ];
      ];
    cls "RuleRange" ~parent:"Rule" ~fields:[]
      [
        meth "matches" [ "f" ] ~returns:true
          [
            let_ "a" (fld "Fact" (v "f") "slotA");
            ret
              (and_
                 (ge (v "a") (thisf "threshold"))
                 (lt (v "a") (add (thisf "threshold") (i 4096))));
          ];
        (* Firing a range rule also nudges the fact, creating phase drift. *)
        meth "fire" [ "f" ] ~returns:false
          [
            setg "fired" (add (g "fired") (i 1));
            setf "Fact" (v "f") "slotA"
              (band (add (fld "Fact" (v "f") "slotA") (i 17)) (i 65535));
          ];
      ];
    cls "RuleParity" ~parent:"Rule" ~fields:[]
      [
        meth "matches" [ "f" ] ~returns:true
          [
            ret
              (eq
                 (band (fld "Fact" (v "f") "slotB") (i 1))
                 (band (thisf "threshold") (i 1)));
          ];
      ];
    cls "Engine" ~fields:[ "rules"; "facts" ]
      [
        meth "init" [ "rules"; "facts" ] ~returns:false
          [
            set_thisf "rules" (v "rules");
            set_thisf "facts" (v "facts");
          ];
        meth "pass" [] ~returns:true
          [
            let_ "hits" (i 0);
            let_ "nf" (inv (thisf "facts") "size" []);
            let_ "nr" (inv (thisf "rules") "size" []);
            for_ "fi" (i 0) (v "nf")
              [
                let_ "f" (inv (thisf "facts") "at" [ v "fi" ]);
                for_ "ri" (i 0) (v "nr")
                  [
                    let_ "r" (inv (thisf "rules") "at" [ v "ri" ]);
                    if_
                      (inv (v "r") "matches" [ v "f" ])
                      [
                        expr (inv (v "r") "fire" [ v "f" ]);
                        let_ "hits" (add (v "hits") (i 1));
                      ]
                      [];
                  ];
              ];
            ret (v "hits");
          ];
      ];
  ]

let globals = [ "fired" ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 4242 ]);
    let_ "rules" (new_ "Vector" [ i 16 ]);
    (* Skewed rule population: RuleGT dominates the matches dispatch. *)
    for_ "k" (i 0) (i 6)
      [ expr (inv (v "rules") "add" [ new_ "RuleGT" [ mul (v "k") (i 9000) ] ]) ];
    expr (inv (v "rules") "add" [ new_ "RuleLT" [ i 20000 ] ]);
    expr (inv (v "rules") "add" [ new_ "RuleEq" [ i 2 ] ]);
    expr (inv (v "rules") "add" [ new_ "RuleRange" [ i 30000 ] ]);
    expr (inv (v "rules") "add" [ new_ "RuleParity" [ i 1 ] ]);
    let_ "facts" (new_ "Vector" [ i 64 ]);
    for_ "k" (i 0) (i 48)
      [
        expr
          (inv (v "facts") "add"
             [
               new_ "Fact"
                 [
                   inv (v "rng") "below" [ i 4 ];
                   inv (v "rng") "below" [ i 65536 ];
                   inv (v "rng") "below" [ i 65536 ];
                 ];
             ]);
      ];
    let_ "engine" (new_ "Engine" [ v "rules"; v "facts" ]);
    let_ "totalHits" (i 0);
    for_ "p" (i 0) (i (2 * scale))
      [ let_ "totalHits" (add (v "totalHits") (inv (v "engine") "pass" [])) ];
    print (v "totalHits");
    print (g "fired");
  ]
