(* "db"-shaped workload: a memory-resident record store.

   This is the benchmark built around the paper's Figure 1 situation: the
   shared [HashMap.get]/[HashMap.put] methods are reached from distinct
   call sites whose key classes differ (IntKey for the id index, PairKey
   for the bucket cache). Context-insensitive profiles see a mixed
   hashCode/equals distribution inside HashMap and either inline both
   targets everywhere or neither; context-sensitive profiles discriminate
   per site. Sorting through comparator objects adds further polymorphic
   sites whose distribution is call-site-dependent. *)

open Acsi_lang.Dsl

let classes =
  [
    cls "Record" ~parent:"Obj" ~fields:[ "rid"; "age"; "salary" ]
      [
        meth "init" [ "rid"; "age"; "salary" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "rid" (v "rid");
            set_thisf "age" (v "age");
            set_thisf "salary" (v "salary");
          ];
        meth "score" [] ~returns:true
          [ ret (add (mul (thisf "age") (i 3)) (div (thisf "salary") (i 100))) ];
      ];
    cls "Database" ~fields:[ "records"; "byId"; "cache"; "probeHits" ]
      [
        meth "init" [ "records"; "byId"; "cache" ] ~returns:false
          [
            set_thisf "records" (v "records");
            set_thisf "byId" (v "byId");
            set_thisf "cache" (v "cache");
            set_thisf "probeHits" (i 0);
          ];
        (* Call site A: HashMap.get with IntKey receivers only. *)
        meth "lookupById" [ "rid" ] ~returns:true
          [
            let_ "k" (new_ "IntKey" [ v "rid" ]);
            ret (inv (thisf "byId") "get" [ v "k" ]);
          ];
        (* Call site B: HashMap.get/put with PairKey receivers only. *)
        meth "probeCache" [ "age"; "bucket" ] ~returns:true
          [
            let_ "k" (new_ "PairKey" [ v "age"; v "bucket" ]);
            let_ "hit" (inv (thisf "cache") "get" [ v "k" ]);
            if_ (eq (v "hit") null)
              [ expr (inv (thisf "cache") "put" [ v "k"; i 1 ]) ]
              [ set_thisf "probeHits" (add (thisf "probeHits") (i 1)) ];
            ret (ne (v "hit") null);
          ];
      ];
      (* One batch of operations; invoked repeatedly so the adaptive system
       can recompile it and later batches run the optimized code (the role
       the SPEC harness's repeated iterations play). *)
    cls "Driver" ~fields:[]
      [
        static_meth "runBatch" [ "db"; "rng"; "ages"; "salaries"; "n" ]
          ~returns:true
          [
            let_ "checksum" (i 0);
            for_ "op" (i 0) (v "n")
              [
                let_ "what" (inv (v "rng") "below" [ i 400 ]);
                if_
                  (lt (v "what") (i 240))
                  [
                    let_ "r"
                      (inv (v "db") "lookupById"
                         [ inv (v "rng") "below" [ i 192 ] ]);
                    if_ (ne (v "r") null)
                      [
                        let_ "checksum"
                          (add (v "checksum") (inv (v "r") "score" []));
                      ]
                      [];
                  ]
                  [
                    if_
                      (lt (v "what") (i 399))
                      [
                        expr
                          (inv (v "db") "probeCache"
                             [
                               add (i 20) (inv (v "rng") "below" [ i 50 ]);
                               inv (v "rng") "below" [ i 40 ];
                             ]);
                      ]
                      [
                        let_ "m" (arr_len (v "ages"));
                        for_ "k" (i 0) (v "m")
                          [
                            let_ "r"
                              (inv (fld "Database" (v "db") "records") "at"
                                 [ v "k" ]);
                            arr_set (v "ages") (v "k")
                              (fld "Record" (v "r") "age");
                            arr_set (v "salaries") (v "k")
                              (fld "Record" (v "r") "salary");
                          ];
                        expr
                          (call "Util" "sortBy" [ v "ages"; new_ "AscCmp" [] ]);
                        expr
                          (call "Util" "sortBy"
                             [ v "salaries"; new_ "DescCmp" [] ]);
                        let_ "checksum"
                          (add (v "checksum")
                             (add
                                (arr_get (v "ages") (i 0))
                                (arr_get (v "salaries") (i 0))));
                      ];
                  ];
              ];
            ret (band (v "checksum") (i 1073741823));
          ];
      ];
  ]

let main ~scale =
  let records = 192 in
  let sorted = 24 in
  [
    let_ "rng" (new_ "Rng" [ i 777 ]);
    let_ "records" (new_ "Vector" [ i records ]);
    let_ "byId" (new_ "HashMap" [ i 512 ]);
    let_ "cache" (new_ "HashMap" [ i 256 ]);
    for_ "k" (i 0) (i records)
      [
        let_ "r"
          (new_ "Record"
             [
               v "k";
               add (i 20) (inv (v "rng") "below" [ i 50 ]);
               add (i 20000) (inv (v "rng") "below" [ i 80000 ]);
             ]);
        expr (inv (v "records") "add" [ v "r" ]);
        expr (inv (v "byId") "put" [ new_ "IntKey" [ v "k" ]; v "r" ]);
      ];
    let_ "db" (new_ "Database" [ v "records"; v "byId"; v "cache" ]);
    let_ "ages" (arr_new (i sorted));
    let_ "salaries" (arr_new (i sorted));
    let_ "checksum" (i 0);
    for_ "batch" (i 0) (i scale)
      [
        let_ "checksum"
          (band
             (add (v "checksum")
                (call "Driver" "runBatch"
                   [ v "db"; v "rng"; v "ages"; v "salaries"; i 250 ]))
             (i 1073741823));
      ];
    print (v "checksum");
    print (fld "Database" (v "db") "probeHits");
    print (inv (v "cache") "count" []);
  ]
