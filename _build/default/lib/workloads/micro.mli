(** Distilled single-effect microbenchmarks.

    Where the main suite imitates SPEC programs, each micro workload
    isolates one phenomenon the adaptive system must handle, so effects
    that are mixed together in the big benchmarks can be studied (and
    asserted on) in isolation:

    - {!mono_loop}: a hot, CHA-monomorphic virtual call — inlined
      guard-free by static binding, profile irrelevant;
    - {!bimorphic}: one site, two receivers at a 90/10 split — classic
      guarded inlining of the dominant target;
    - {!megamorphic}: one site, eight receivers, uniform — inherently
      polymorphic, the "give up" case for the §4.3 adaptive-resolution
      policy;
    - {!context_split}: the paper's Figure 1 in miniature — one shared
      callee whose receiver class is fully determined by the call site;
      context-insensitive profiles see 50/50, context-sensitive profiles
      see two monomorphic contexts;
    - {!deep_chain}: a six-deep parameter-passing call chain, stressing
      the fixed-depth policies' trace collection;
    - {!phase_flip}: a receiver distribution that inverts halfway through
      the run — the decay organizer's reason to exist. *)

open Acsi_bytecode

val mono_loop : scale:int -> Program.t
val bimorphic : scale:int -> Program.t
val megamorphic : scale:int -> Program.t
val context_split : scale:int -> Program.t
val deep_chain : scale:int -> Program.t
val phase_flip : scale:int -> Program.t

val all : (string * (scale:int -> Program.t)) list
(** Name/builder pairs, default-scale-free (callers pick the scale; 100 is
    a sensible default giving runs of tens of millions of cycles). *)
