lib/workloads/jess.ml: Acsi_lang
