lib/workloads/javac.ml: Acsi_lang
