lib/workloads/workloads.mli: Acsi_bytecode
