lib/workloads/richards.ml: Acsi_lang
