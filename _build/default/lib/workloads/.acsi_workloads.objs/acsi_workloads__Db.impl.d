lib/workloads/db.ml: Acsi_lang
