lib/workloads/javalib.ml: Acsi_lang
