lib/workloads/workloads.ml: Acsi_bytecode Acsi_lang Compress Db Jack Javac Javalib Jbb Jess List Mpegaudio Mtrt Richards String
