lib/workloads/micro.mli: Acsi_bytecode Program
