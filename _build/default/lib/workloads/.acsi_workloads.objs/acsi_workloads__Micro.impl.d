lib/workloads/micro.ml: Acsi_lang Javalib List Printf
