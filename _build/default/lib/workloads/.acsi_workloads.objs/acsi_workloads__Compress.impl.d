lib/workloads/compress.ml: Acsi_lang
