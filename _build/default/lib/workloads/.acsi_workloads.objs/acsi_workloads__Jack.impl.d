lib/workloads/jack.ml: Acsi_lang
