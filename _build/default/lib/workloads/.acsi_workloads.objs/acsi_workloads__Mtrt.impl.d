lib/workloads/mtrt.ml: Acsi_lang
