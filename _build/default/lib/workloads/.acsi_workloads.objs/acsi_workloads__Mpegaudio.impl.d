lib/workloads/mpegaudio.ml: Acsi_lang
