lib/workloads/jbb.ml: Acsi_lang
