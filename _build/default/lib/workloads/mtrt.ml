(* "mtrt"-shaped workload: a fixed-point ray caster with two interleaved
   render "threads".

   Shapes form a small hierarchy whose [hit] method is the hot polymorphic
   site; the scene is sphere-dominated so guarded inlining of the dominant
   target wins. Two logical threads render alternating rows through the
   same code paths, like the two-thread raytracer in SPECjvm98. All
   arithmetic is Q10 fixed point. *)

open Acsi_lang.Dsl

let width = 24
let height = 24

let classes =
  [
    cls "Shape" ~parent:"Obj" ~fields:[ "cx"; "cy"; "cz"; "shade" ]
      [
        (* Returns a hit parameter > 0, or 0 for a miss. *)
        meth "hit" [ "ox"; "oy"; "dx"; "dy" ] ~returns:true [ ret (i 0) ];
      ];
    cls "Sphere" ~parent:"Shape" ~fields:[ "radius" ]
      [
        meth "init" [ "x"; "y"; "r"; "shade" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "cx" (v "x");
            set_thisf "cy" (v "y");
            set_thisf "radius" (v "r");
            set_thisf "shade" (v "shade");
          ];
        (* 2D circle test in ray parameter space (Q10). *)
        meth "hit" [ "ox"; "oy"; "dx"; "dy" ] ~returns:true
          [
            let_ "px" (sub (thisf "cx") (v "ox"));
            let_ "py" (sub (thisf "cy") (v "oy"));
            let_ "tproj"
              (shr (add (mul (v "px") (v "dx")) (mul (v "py") (v "dy"))) (i 10));
            if_ (le (v "tproj") (i 0)) [ ret (i 0) ] [];
            let_ "qx" (sub (v "px") (shr (mul (v "dx") (v "tproj")) (i 10)));
            let_ "qy" (sub (v "py") (shr (mul (v "dy") (v "tproj")) (i 10)));
            let_ "d2"
              (add
                 (shr (mul (v "qx") (v "qx")) (i 10))
                 (shr (mul (v "qy") (v "qy")) (i 10)));
            let_ "r2" (shr (mul (thisf "radius") (thisf "radius")) (i 10));
            if_ (le (v "d2") (v "r2")) [ ret (v "tproj") ] [ ret (i 0) ];
          ];
      ];
    cls "Wall" ~parent:"Shape" ~fields:[ "axis"; "level" ]
      [
        meth "init" [ "axis"; "level"; "shade" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "axis" (v "axis");
            set_thisf "level" (v "level");
            set_thisf "shade" (v "shade");
          ];
        meth "hit" [ "ox"; "oy"; "dx"; "dy" ] ~returns:true
          [
            let_ "o" (cond (eq (thisf "axis") (i 0)) (v "ox") (v "oy"));
            let_ "d" (cond (eq (thisf "axis") (i 0)) (v "dx") (v "dy"));
            if_ (eq (v "d") (i 0)) [ ret (i 0) ] [];
            let_ "t" (div (shl (sub (thisf "level") (v "o")) (i 10)) (v "d"));
            if_ (gt (v "t") (i 0)) [ ret (v "t") ] [ ret (i 0) ];
          ];
      ];
    cls "Scene" ~fields:[ "shapes" ]
      [
        meth "init" [ "shapes" ] ~returns:false
          [ set_thisf "shapes" (v "shapes") ];
        (* Small-medium: closest-hit loop over the shape list. *)
        meth "trace" [ "ox"; "oy"; "dx"; "dy" ] ~returns:true
          [
            let_ "best" (i 1073741823);
            let_ "shade" (i 0);
            let_ "n" (inv (thisf "shapes") "size" []);
            for_ "k" (i 0) (v "n")
              [
                let_ "s" (inv (thisf "shapes") "at" [ v "k" ]);
                let_ "t" (inv (v "s") "hit" [ v "ox"; v "oy"; v "dx"; v "dy" ]);
                if_
                  (and_ (gt (v "t") (i 0)) (lt (v "t") (v "best")))
                  [
                    let_ "best" (v "t");
                    let_ "shade" (fld "Shape" (v "s") "shade");
                  ]
                  [];
              ];
            ret (v "shade");
          ];
        (* Render one row for one logical thread. *)
        meth "renderRow" [ "row"; "thread" ] ~returns:true
          [
            let_ "acc" (i 0);
            for_ "col" (i 0) (i width)
              [
                let_ "dx" (sub (shl (v "col") (i 6)) (i 768));
                let_ "dy" (sub (shl (v "row") (i 6)) (i 768));
                let_ "shade"
                  (inv this "trace"
                     [
                       add (i 100) (mul (v "thread") (i 37));
                       i 100;
                       add (v "dx") (i 1024);
                       add (v "dy") (i 512);
                     ]);
                let_ "acc" (add (v "acc") (v "shade"));
              ];
            ret (v "acc");
          ];
      ];
  ]

let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 2024 ]);
    let_ "shapes" (new_ "Vector" [ i 16 ]);
    (* Sphere-dominated scene: the hit dispatch is skewed. *)
    for_ "k" (i 0) (i 7)
      [
        expr
          (inv (v "shapes") "add"
             [
               new_ "Sphere"
                 [
                   inv (v "rng") "below" [ i 4096 ];
                   inv (v "rng") "below" [ i 4096 ];
                   add (i 256) (inv (v "rng") "below" [ i 512 ]);
                   add (i 1) (v "k");
                 ];
             ]);
      ];
    expr (inv (v "shapes") "add" [ new_ "Wall" [ i 0; i 4096; i 9 ] ]);
    let_ "scene" (new_ "Scene" [ v "shapes" ]);
    let_ "image0" (i 0);
    let_ "image1" (i 0);
    for_ "pass" (i 0) (i scale)
      [
        (* Two interleaved logical threads, alternating rows. *)
        for_ "row" (i 0) (i height)
          [
            let_ "image0"
              (band
                 (add (v "image0") (inv (v "scene") "renderRow" [ v "row"; i 0 ]))
                 (i 1073741823));
            let_ "image1"
              (band
                 (add (v "image1") (inv (v "scene") "renderRow" [ v "row"; i 1 ]))
                 (i 1073741823));
          ];
      ];
    print (v "image0");
    print (v "image1");
  ]
