type label = int

type 'a t = {
  dummy : 'a;
  mutable code : Instr.t array;
  mutable notes : 'a array;
  mutable len : int;
  mutable labels : int array;  (* label -> position, -1 while unbound *)
  mutable label_count : int;
  mutable fixups : (int * label) list;
}

let create ~dummy =
  {
    dummy;
    code = Array.make 64 Instr.Nop;
    notes = Array.make 64 dummy;
    len = 0;
    labels = Array.make 16 (-1);
    label_count = 0;
    fixups = [];
  }

let length t = t.len

let ensure_capacity t =
  if t.len = Array.length t.code then begin
    let code = Array.make (2 * t.len) Instr.Nop in
    let notes = Array.make (2 * t.len) t.dummy in
    Array.blit t.code 0 code 0 t.len;
    Array.blit t.notes 0 notes 0 t.len;
    t.code <- code;
    t.notes <- notes
  end

let emit t instr note =
  ensure_capacity t;
  t.code.(t.len) <- instr;
  t.notes.(t.len) <- note;
  t.len <- t.len + 1

let new_label t =
  if t.label_count = Array.length t.labels then begin
    let labels = Array.make (2 * t.label_count) (-1) in
    Array.blit t.labels 0 labels 0 t.label_count;
    t.labels <- labels
  end;
  let l = t.label_count in
  t.label_count <- l + 1;
  l

let bind_label t l =
  if t.labels.(l) >= 0 then invalid_arg "Codebuf: label bound twice";
  t.labels.(l) <- t.len

let emit_branch t instr note l =
  t.fixups <- (t.len, l) :: t.fixups;
  emit t instr note

let finish t =
  List.iter
    (fun (pc, l) ->
      let target = t.labels.(l) in
      if target < 0 then invalid_arg "Codebuf: unbound label";
      t.code.(pc) <- Instr.with_jump_targets t.code.(pc) ~f:(fun _ -> target))
    t.fixups;
  (Array.sub t.code 0 t.len, Array.sub t.notes 0 t.len)
