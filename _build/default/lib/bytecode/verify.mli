(** Bytecode verifier.

    Checks the structural well-formedness that the interpreter and the JIT
    inliner rely on, and computes each method's [max_stack]:

    - jump targets stay within the method body;
    - locals stay within [max_locals];
    - operand-stack depth is consistent at every join point and never
      negative;
    - [Return] executes with exactly the result on the stack and
      [Return_void] with an empty stack (this is what makes rewriting
      returns into jumps during inline expansion sound);
    - call arities and result kinds agree with callee signatures, including
      agreement across every CHA target of a virtual call;
    - execution cannot fall off the end of the body. *)

exception Error of string
(** Raised with a message naming the offending method and pc. *)

val meth : Program.t -> Meth.t -> unit
(** Verify one method and set its [max_stack]. Raises {!Error}. *)

val program : Program.t -> unit
(** Verify every method of a sealed program. Raises {!Error}. *)
