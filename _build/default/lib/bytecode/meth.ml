type kind = Static | Instance

type t = {
  id : Ids.Method_id.t;
  owner : Ids.Class_id.t;
  name : string;
  selector : Ids.Selector.t;
  kind : kind;
  arity : int;
  returns : bool;
  body : Instr.t array;
  max_locals : int;
  mutable max_stack : int;
}

let param_slots m =
  match m.kind with Static -> m.arity | Instance -> m.arity + 1

let is_instance m = match m.kind with Instance -> true | Static -> false
let is_parameterless m = m.arity = 0
let size_units m = Array.length m.body

let pp fmt m =
  Format.fprintf fmt "%s/%d%s%s" m.name m.arity
    (match m.kind with Static -> " [static]" | Instance -> "")
    (if m.returns then "" else " [void]")

let pp_body fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i ins -> Format.fprintf fmt "%3d: %a@," i Instr.pp ins) m.body;
  Format.fprintf fmt "@]"
