module type ID = sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Make () : ID = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Ids.of_int: negative id";
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp fmt i = Format.fprintf fmt "#%d" i
end

module Class_id = Make ()
module Method_id = Make ()
module Selector = Make ()
