(** Typed identifiers for the bytecode IR.

    All identifiers are dense non-negative integers assigned by the program
    builder, so they can index arrays directly via the [( :> int)] coercion
    while remaining distinct types to the checker. *)

module type ID = sig
  type t = private int

  val of_int : int -> t
  (** [of_int i] wraps [i]. Raises [Invalid_argument] if [i < 0]. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Class_id : ID
module Method_id : ID

module Selector : ID
(** Interned method-name selectors used for virtual dispatch. *)
