(** The bytecode instruction set.

    A stack-machine IR in the style of JVM bytecode, reduced to what the
    inlining study needs: integer arithmetic, locals, object fields, arrays,
    globals, static and virtual calls, and intra-method control flow with
    absolute jump targets.

    The [Guard_method] instruction never appears in source (baseline) code;
    it is inserted by the JIT to protect speculatively inlined virtual call
    targets (a "method test" guard in Jikes RVM terminology). *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of int
  | Const_null
  | Load of int  (** push local [i] *)
  | Store of int  (** pop into local [i] *)
  | Dup
  | Pop
  | Swap
  | Binop of binop  (** pops b then a, pushes [a op b] *)
  | Neg
  | Not  (** logical negation: 0 becomes 1, anything else 0 *)
  | Cmp of cmp  (** pops b then a, pushes 1 if [a cmp b] else 0 *)
  | Jump of int  (** absolute target within the method body *)
  | Jump_if of int  (** pop; jump if non-zero *)
  | Jump_ifnot of int  (** pop; jump if zero *)
  | New of Ids.Class_id.t  (** push a fresh object with zeroed fields *)
  | Get_field of int  (** pop receiver, push field [i] *)
  | Put_field of int  (** pop value then receiver, store field [i] *)
  | Get_global of int
  | Put_global of int
  | Array_new  (** pop length, push fresh zeroed array *)
  | Array_get  (** pop index then array, push element *)
  | Array_set  (** pop value, index, array *)
  | Array_len
  | Call_static of Ids.Method_id.t
      (** arguments on the stack, pushed left to right; pushes the result if
          the target returns a value *)
  | Call_virtual of Ids.Selector.t * int
      (** [Call_virtual (sel, argc)]: stack holds receiver then [argc]
          arguments; dispatches [sel] on the receiver's dynamic class *)
  | Call_direct of Ids.Method_id.t
      (** statically-bound instance call (constructors, JVM invokespecial):
          stack holds receiver then the declared arguments *)
  | Return  (** return the top of stack to the caller *)
  | Return_void
  | Instance_of of Ids.Class_id.t
      (** pop; push 1 if the value is an object of the class or a subclass *)
  | Guard_method of guard
  | Print_int  (** pop and append to the VM's observable output *)
  | Nop

and guard = {
  expected : Ids.Method_id.t;  (** speculated dispatch target *)
  sel : Ids.Selector.t;
  argc : int;  (** receiver sits [argc] slots below the stack top *)
  fail : int;  (** absolute jump target when the speculation fails *)
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val jump_targets : t -> int list
(** Absolute branch targets of [i] (empty for non-branching instructions). *)

val with_jump_targets : t -> f:(int -> int) -> t
(** Rewrite the branch targets of an instruction with [f]; identity for
    non-branching instructions. *)

val is_call : t -> bool
