type t = {
  id : Ids.Class_id.t;
  name : string;
  parent : Ids.Class_id.t option;
  fields : string array;
  own_methods : (Ids.Selector.t * Ids.Method_id.t) list;
}

let field_count c = Array.length c.fields

let field_slot c name =
  let rec find i =
    if i >= Array.length c.fields then raise Not_found
    else if String.equal c.fields.(i) name then i
    else find (i + 1)
  in
  find 0

let pp fmt c = Format.fprintf fmt "%s%a" c.name Ids.Class_id.pp c.id
