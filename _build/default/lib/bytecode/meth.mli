(** Methods of the bytecode IR.

    An instance method receives its receiver in local 0 and its declared
    parameters in locals 1..arity; a static method receives its parameters
    in locals 0..arity-1. [max_stack] is computed by the verifier when the
    program is sealed. *)

type kind = Static | Instance

type t = {
  id : Ids.Method_id.t;
  owner : Ids.Class_id.t;
  name : string;  (** unqualified name, e.g. ["get"] *)
  selector : Ids.Selector.t;
  kind : kind;
  arity : int;  (** declared parameters, excluding the receiver *)
  returns : bool;  (** whether the method pushes a result for its caller *)
  body : Instr.t array;
  max_locals : int;
  mutable max_stack : int;
}

val param_slots : t -> int
(** Number of locals consumed by parameters, including the receiver. *)

val is_instance : t -> bool
val is_parameterless : t -> bool
(** True when the method declares no parameters besides the receiver. *)

val size_units : t -> int
(** Size of the method body in instruction units (the unit of all code-size
    estimates in this system). *)

val pp : Format.formatter -> t -> unit
val pp_body : Format.formatter -> t -> unit
