type t = {
  classes : Clazz.t array;
  methods : Meth.t array;
  dispatch_table : Ids.Method_id.t option array array;  (* [class][selector] *)
  selector_names : string array;
  global_names : string array;
  main : Ids.Method_id.t;
}

let classes p = p.classes
let methods p = p.methods
let clazz p (cid : Ids.Class_id.t) = p.classes.((cid :> int))
let meth p (mid : Ids.Method_id.t) = p.methods.((mid :> int))
let main p = p.main
let global_count p = Array.length p.global_names
let selector_name p (s : Ids.Selector.t) = p.selector_names.((s :> int))
let selector_count p = Array.length p.selector_names

let dispatch p (cid : Ids.Class_id.t) (sel : Ids.Selector.t) =
  p.dispatch_table.((cid :> int)).((sel :> int))

let implementations p (sel : Ids.Selector.t) =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun row ->
      match row.((sel :> int)) with
      | Some m when not (Hashtbl.mem seen m) -> Hashtbl.add seen m ()
      | Some _ | None -> ())
    p.dispatch_table;
  Hashtbl.fold (fun m () acc -> m :: acc) seen []
  |> List.sort Ids.Method_id.compare

let monomorphic_target p sel =
  match implementations p sel with [ m ] -> Some m | [] | _ :: _ :: _ -> None

let is_subclass p ~sub ~super =
  let rec walk cid =
    Ids.Class_id.equal cid super
    ||
    match (clazz p cid).parent with None -> false | Some up -> walk up
  in
  walk sub

let find_class p name =
  let n = Array.length p.classes in
  let rec find i =
    if i >= n then raise Not_found
    else if String.equal p.classes.(i).Clazz.name name then p.classes.(i)
    else find (i + 1)
  in
  find 0

let find_method p ~cls ~name =
  let c = find_class p cls in
  let n = Array.length p.methods in
  (* Front ends may mangle arity into the stored name ("get/1"); accept
     both the exact and the mangled form. *)
  let matches stored =
    String.equal stored name
    ||
    let prefix = name ^ "/" in
    String.length stored > String.length prefix
    && String.equal (String.sub stored 0 (String.length prefix)) prefix
  in
  let rec find i =
    if i >= n then raise Not_found
    else
      let m = p.methods.(i) in
      if Ids.Class_id.equal m.Meth.owner c.Clazz.id && matches m.name then m
      else find (i + 1)
  in
  find 0

let class_count p = Array.length p.classes
let method_count p = Array.length p.methods

let total_bytecodes p =
  Array.fold_left (fun acc m -> acc + Meth.size_units m) 0 p.methods

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun (c : Clazz.t) ->
      Format.fprintf fmt "class %s" c.name;
      (match c.parent with
      | Some up -> Format.fprintf fmt " extends %s" (clazz p up).Clazz.name
      | None -> ());
      Format.fprintf fmt "@,";
      Array.iter
        (fun (m : Meth.t) ->
          if Ids.Class_id.equal m.owner c.id then
            Format.fprintf fmt "  @[<v>%a:@,%a@]@," Meth.pp m Meth.pp_body m)
        p.methods)
    p.classes;
  Format.fprintf fmt "@]"

module Builder = struct
  type pending_method = {
    pm_id : Ids.Method_id.t;
    pm_owner : Ids.Class_id.t;
    pm_name : string;
    pm_selector : Ids.Selector.t;
    pm_kind : Meth.kind;
    pm_arity : int;
    pm_returns : bool;
    mutable pm_body : (int * Instr.t array) option;  (* max_locals, body *)
  }

  type t = {
    mutable b_classes : Clazz.t list;  (* reversed *)
    mutable b_class_count : int;
    mutable b_methods : pending_method list;  (* reversed *)
    mutable b_method_count : int;
    b_selectors : (string, Ids.Selector.t) Hashtbl.t;
    mutable b_selector_names : string list;  (* reversed *)
    mutable b_selector_count : int;
    b_globals : (string, int) Hashtbl.t;
    mutable b_global_names : string list;  (* reversed *)
  }

  let create () =
    {
      b_classes = [];
      b_class_count = 0;
      b_methods = [];
      b_method_count = 0;
      b_selectors = Hashtbl.create 64;
      b_selector_names = [];
      b_selector_count = 0;
      b_globals = Hashtbl.create 16;
      b_global_names = [];
    }

  let intern_selector b name =
    match Hashtbl.find_opt b.b_selectors name with
    | Some s -> s
    | None ->
        let s = Ids.Selector.of_int b.b_selector_count in
        Hashtbl.add b.b_selectors name s;
        b.b_selector_names <- name :: b.b_selector_names;
        b.b_selector_count <- b.b_selector_count + 1;
        s

  let find_built_class b (cid : Ids.Class_id.t) =
    let idx = b.b_class_count - 1 - (cid :> int) in
    List.nth b.b_classes idx

  let declare_class b ~name ~parent ~fields =
    List.iter
      (fun (c : Clazz.t) ->
        if String.equal c.name name then
          invalid_arg (Printf.sprintf "Builder: duplicate class %s" name))
      b.b_classes;
    let inherited =
      match parent with
      | None -> [||]
      | Some up -> (find_built_class b up).Clazz.fields
    in
    let id = Ids.Class_id.of_int b.b_class_count in
    let cls =
      {
        Clazz.id;
        name;
        parent;
        fields = Array.append inherited (Array.of_list fields);
        own_methods = [];
      }
    in
    b.b_classes <- cls :: b.b_classes;
    b.b_class_count <- b.b_class_count + 1;
    id

  let declare_global b name =
    match Hashtbl.find_opt b.b_globals name with
    | Some slot -> slot
    | None ->
        let slot = Hashtbl.length b.b_globals in
        Hashtbl.add b.b_globals name slot;
        b.b_global_names <- name :: b.b_global_names;
        slot

  let replace_class b (cls : Clazz.t) =
    b.b_classes <-
      List.map
        (fun (c : Clazz.t) ->
          if Ids.Class_id.equal c.id cls.id then cls else c)
        b.b_classes

  let declare_method b ~owner ~name ~kind ~arity ~returns =
    let sel = intern_selector b name in
    let id = Ids.Method_id.of_int b.b_method_count in
    (match kind with
    | Meth.Instance ->
        let cls = find_built_class b owner in
        if List.mem_assoc sel cls.Clazz.own_methods then
          invalid_arg
            (Printf.sprintf "Builder: duplicate instance method %s.%s"
               cls.Clazz.name name);
        replace_class b
          { cls with Clazz.own_methods = (sel, id) :: cls.Clazz.own_methods }
    | Meth.Static -> ());
    let pm =
      {
        pm_id = id;
        pm_owner = owner;
        pm_name = name;
        pm_selector = sel;
        pm_kind = kind;
        pm_arity = arity;
        pm_returns = returns;
        pm_body = None;
      }
    in
    b.b_methods <- pm :: b.b_methods;
    b.b_method_count <- b.b_method_count + 1;
    id

  let set_body b (mid : Ids.Method_id.t) ~max_locals body =
    let idx = b.b_method_count - 1 - (mid :> int) in
    let pm = List.nth b.b_methods idx in
    pm.pm_body <- Some (max_locals, body)

  let seal b ~(main : Ids.Method_id.t) =
    let classes = Array.of_list (List.rev b.b_classes) in
    let methods =
      List.rev_map
        (fun pm ->
          match pm.pm_body with
          | None ->
              invalid_arg
                (Printf.sprintf "Builder.seal: method %s has no body"
                   pm.pm_name)
          | Some (max_locals, body) ->
              {
                Meth.id = pm.pm_id;
                owner = pm.pm_owner;
                name = pm.pm_name;
                selector = pm.pm_selector;
                kind = pm.pm_kind;
                arity = pm.pm_arity;
                returns = pm.pm_returns;
                body;
                max_locals;
                max_stack = 0;
              })
        b.b_methods
      |> Array.of_list
    in
    let nsel = b.b_selector_count in
    let dispatch_table =
      Array.map
        (fun (c : Clazz.t) ->
          let row = Array.make nsel None in
          (* Walk from the root down so children override inherited slots. *)
          let rec chain (c : Clazz.t) =
            match c.parent with
            | None -> [ c ]
            | Some up -> chain classes.((up :> int)) @ [ c ]
          in
          List.iter
            (fun (c : Clazz.t) ->
              List.iter
                (fun ((sel : Ids.Selector.t), mid) ->
                  row.((sel :> int)) <- Some mid)
                c.own_methods)
            (chain c);
          row)
        classes
    in
    let main_meth = methods.((main :> int)) in
    (match (main_meth.Meth.kind, main_meth.Meth.arity) with
    | Meth.Static, 0 -> ()
    | (Meth.Static | Meth.Instance), _ ->
        invalid_arg "Builder.seal: main must be a parameterless static method");
    {
      classes;
      methods;
      dispatch_table;
      selector_names = Array.of_list (List.rev b.b_selector_names);
      global_names = Array.of_list (List.rev b.b_global_names);
      main;
    }
end
