lib/bytecode/clazz.mli: Format Ids
