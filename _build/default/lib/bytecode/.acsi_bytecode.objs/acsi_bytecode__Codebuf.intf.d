lib/bytecode/codebuf.mli: Instr
