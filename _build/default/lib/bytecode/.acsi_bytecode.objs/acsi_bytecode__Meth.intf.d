lib/bytecode/meth.mli: Format Ids Instr
