lib/bytecode/instr.mli: Format Ids
