lib/bytecode/codebuf.ml: Array Instr List
