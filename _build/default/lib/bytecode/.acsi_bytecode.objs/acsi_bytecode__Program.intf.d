lib/bytecode/program.mli: Clazz Format Ids Instr Meth
