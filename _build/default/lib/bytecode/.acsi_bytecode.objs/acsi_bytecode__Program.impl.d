lib/bytecode/program.ml: Array Clazz Format Hashtbl Ids Instr List Meth Printf String
