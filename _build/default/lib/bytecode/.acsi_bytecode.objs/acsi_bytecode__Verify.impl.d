lib/bytecode/verify.ml: Array Bool Format Instr List Meth Printf Program Queue
