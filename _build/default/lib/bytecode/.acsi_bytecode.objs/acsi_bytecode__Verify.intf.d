lib/bytecode/verify.mli: Meth Program
