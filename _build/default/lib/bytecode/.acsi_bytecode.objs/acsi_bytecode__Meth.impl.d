lib/bytecode/meth.ml: Array Format Ids Instr
