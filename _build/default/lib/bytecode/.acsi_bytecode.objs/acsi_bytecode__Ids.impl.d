lib/bytecode/ids.ml: Format Int
