lib/bytecode/clazz.ml: Array Format Ids String
