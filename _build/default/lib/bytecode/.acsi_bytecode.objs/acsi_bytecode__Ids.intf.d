lib/bytecode/ids.mli: Format
