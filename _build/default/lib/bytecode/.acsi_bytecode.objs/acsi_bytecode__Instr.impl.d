lib/bytecode/instr.ml: Format Ids
