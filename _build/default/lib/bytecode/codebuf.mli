(** Growable instruction buffer with symbolic labels.

    Shared by every code generator in the system (the mini-language
    compiler and the JIT's inline expander). Branch instructions are
    emitted against labels and patched to absolute targets by {!finish}.
    Each instruction carries a caller-chosen annotation (the JIT uses this
    for source maps; the front end uses [unit]). *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int

type label

val new_label : 'a t -> label
val bind_label : 'a t -> label -> unit
(** Bind to the current position. A label may be bound only once. *)

val emit : 'a t -> Instr.t -> 'a -> unit

val emit_branch : 'a t -> Instr.t -> 'a -> label -> unit
(** Emit a branching instruction whose (single) target will be patched to
    the label's bound position. For [Guard_method] the patched target is
    the [fail] field. *)

val finish : 'a t -> Instr.t array * 'a array
(** Raises [Invalid_argument] if any referenced label is unbound. *)
