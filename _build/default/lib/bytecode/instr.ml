type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of int
  | Const_null
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Swap
  | Binop of binop
  | Neg
  | Not
  | Cmp of cmp
  | Jump of int
  | Jump_if of int
  | Jump_ifnot of int
  | New of Ids.Class_id.t
  | Get_field of int
  | Put_field of int
  | Get_global of int
  | Put_global of int
  | Array_new
  | Array_get
  | Array_set
  | Array_len
  | Call_static of Ids.Method_id.t
  | Call_virtual of Ids.Selector.t * int
  | Call_direct of Ids.Method_id.t
  | Return
  | Return_void
  | Instance_of of Ids.Class_id.t
  | Guard_method of guard
  | Print_int
  | Nop

and guard = {
  expected : Ids.Method_id.t;
  sel : Ids.Selector.t;
  argc : int;
  fail : int;
}

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp fmt = function
  | Const n -> Format.fprintf fmt "const %d" n
  | Const_null -> Format.fprintf fmt "const_null"
  | Load i -> Format.fprintf fmt "load %d" i
  | Store i -> Format.fprintf fmt "store %d" i
  | Dup -> Format.fprintf fmt "dup"
  | Pop -> Format.fprintf fmt "pop"
  | Swap -> Format.fprintf fmt "swap"
  | Binop op -> Format.fprintf fmt "%s" (binop_to_string op)
  | Neg -> Format.fprintf fmt "neg"
  | Not -> Format.fprintf fmt "not"
  | Cmp c -> Format.fprintf fmt "cmp.%s" (cmp_to_string c)
  | Jump t -> Format.fprintf fmt "jump %d" t
  | Jump_if t -> Format.fprintf fmt "jump_if %d" t
  | Jump_ifnot t -> Format.fprintf fmt "jump_ifnot %d" t
  | New c -> Format.fprintf fmt "new %a" Ids.Class_id.pp c
  | Get_field i -> Format.fprintf fmt "get_field %d" i
  | Put_field i -> Format.fprintf fmt "put_field %d" i
  | Get_global i -> Format.fprintf fmt "get_global %d" i
  | Put_global i -> Format.fprintf fmt "put_global %d" i
  | Array_new -> Format.fprintf fmt "array_new"
  | Array_get -> Format.fprintf fmt "array_get"
  | Array_set -> Format.fprintf fmt "array_set"
  | Array_len -> Format.fprintf fmt "array_len"
  | Call_static m -> Format.fprintf fmt "call_static %a" Ids.Method_id.pp m
  | Call_virtual (s, n) ->
      Format.fprintf fmt "call_virtual %a/%d" Ids.Selector.pp s n
  | Call_direct m -> Format.fprintf fmt "call_direct %a" Ids.Method_id.pp m
  | Return -> Format.fprintf fmt "return"
  | Return_void -> Format.fprintf fmt "return_void"
  | Instance_of c -> Format.fprintf fmt "instance_of %a" Ids.Class_id.pp c
  | Guard_method g ->
      Format.fprintf fmt "guard %a/%d expect=%a fail=%d" Ids.Selector.pp g.sel
        g.argc Ids.Method_id.pp g.expected g.fail
  | Print_int -> Format.fprintf fmt "print_int"
  | Nop -> Format.fprintf fmt "nop"

let to_string i = Format.asprintf "%a" pp i

let jump_targets = function
  | Jump t | Jump_if t | Jump_ifnot t -> [ t ]
  | Guard_method g -> [ g.fail ]
  | Const _ | Const_null | Load _ | Store _ | Dup | Pop | Swap | Binop _ | Neg
  | Not | Cmp _ | New _ | Get_field _ | Put_field _ | Get_global _
  | Put_global _ | Array_new | Array_get | Array_set | Array_len
  | Call_static _ | Call_virtual _ | Call_direct _ | Return | Return_void
  | Instance_of _ | Print_int | Nop ->
      []

let with_jump_targets i ~f =
  match i with
  | Jump t -> Jump (f t)
  | Jump_if t -> Jump_if (f t)
  | Jump_ifnot t -> Jump_ifnot (f t)
  | Guard_method g -> Guard_method { g with fail = f g.fail }
  | Const _ | Const_null | Load _ | Store _ | Dup | Pop | Swap | Binop _ | Neg
  | Not | Cmp _ | New _ | Get_field _ | Put_field _ | Get_global _
  | Put_global _ | Array_new | Array_get | Array_set | Array_len
  | Call_static _ | Call_virtual _ | Call_direct _ | Return | Return_void
  | Instance_of _ | Print_int | Nop ->
      i

let is_call = function
  | Call_static _ | Call_virtual _ | Call_direct _ -> true
  | Const _ | Const_null | Load _ | Store _ | Dup | Pop | Swap | Binop _ | Neg
  | Not | Cmp _ | Jump _ | Jump_if _ | Jump_ifnot _ | New _ | Get_field _
  | Put_field _ | Get_global _ | Put_global _ | Array_new | Array_get
  | Array_set | Array_len | Return | Return_void | Instance_of _
  | Guard_method _ | Print_int | Nop ->
      false
