(** Whole programs: the sealed class/method universe plus dispatch tables.

    Programs are constructed through {!Builder} in two phases — declare
    classes and method signatures first (so bodies can reference anything
    by id), then attach bodies and [seal]. Sealing freezes the universe and
    builds the virtual-dispatch tables; the reproduction assumes a closed
    world (no dynamic class loading), which makes class-hierarchy analysis
    sound (see DESIGN.md). *)

type t

val classes : t -> Clazz.t array
val methods : t -> Meth.t array
val clazz : t -> Ids.Class_id.t -> Clazz.t
val meth : t -> Ids.Method_id.t -> Meth.t
val main : t -> Ids.Method_id.t
val global_count : t -> int
val selector_name : t -> Ids.Selector.t -> string
val selector_count : t -> int

val dispatch : t -> Ids.Class_id.t -> Ids.Selector.t -> Ids.Method_id.t option
(** Dispatch target of a selector on a dynamic class, or [None] when the
    class does not understand the selector. *)

val implementations : t -> Ids.Selector.t -> Ids.Method_id.t list
(** Class-hierarchy analysis: every method a virtual call on this selector
    could reach in the sealed universe (distinct dispatch targets). *)

val monomorphic_target : t -> Ids.Selector.t -> Ids.Method_id.t option
(** [Some m] when CHA proves the selector has a single possible target. *)

val is_subclass : t -> sub:Ids.Class_id.t -> super:Ids.Class_id.t -> bool

val find_class : t -> string -> Clazz.t
(** Raises [Not_found]. *)

val find_method : t -> cls:string -> name:string -> Meth.t
(** Find a method declared on class [cls] (not inherited) by name.
    Raises [Not_found]. *)

val class_count : t -> int
val method_count : t -> int

val total_bytecodes : t -> int
(** Sum of body sizes over all methods, in instruction units. *)

val pp : Format.formatter -> t -> unit
(** Full disassembly listing. *)

module Builder : sig
  type program := t
  type t

  val create : unit -> t
  val intern_selector : t -> string -> Ids.Selector.t

  val declare_class :
    t ->
    name:string ->
    parent:Ids.Class_id.t option ->
    fields:string list ->
    Ids.Class_id.t
  (** Parents must be declared before children; the field layout places
      inherited slots first. Raises [Invalid_argument] on duplicate class
      names. *)

  val declare_global : t -> string -> int
  (** Returns the global's slot. Re-declaring a name returns its slot. *)

  val declare_method :
    t ->
    owner:Ids.Class_id.t ->
    name:string ->
    kind:Meth.kind ->
    arity:int ->
    returns:bool ->
    Ids.Method_id.t
  (** Raises [Invalid_argument] if the owner already declares an instance
      method with the same name. *)

  val set_body : t -> Ids.Method_id.t -> max_locals:int -> Instr.t array -> unit

  val seal : t -> main:Ids.Method_id.t -> program
  (** Raises [Invalid_argument] if any declared method lacks a body or
      [main] is not a parameterless static method. *)
end
