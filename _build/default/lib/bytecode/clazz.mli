(** Classes of the bytecode IR.

    Field slots are assigned densely: inherited fields first (in the
    parent's layout order), then the class's own declared fields. Instance
    methods are recorded by selector; dispatch tables are built when the
    program is sealed (see {!Program}). *)

type t = {
  id : Ids.Class_id.t;
  name : string;
  parent : Ids.Class_id.t option;
  fields : string array;  (** full layout, inherited prefix included *)
  own_methods : (Ids.Selector.t * Ids.Method_id.t) list;
      (** instance methods declared by this class itself *)
}

val field_count : t -> int

val field_slot : t -> string -> int
(** Slot of a named field. Raises [Not_found] if the class has no such
    field. *)

val pp : Format.formatter -> t -> unit
