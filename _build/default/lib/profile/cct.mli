(** A (partial) calling-context tree, after Ammons/Ball/Larus and the
    sampled variant of Arnold & Sweeney — the "more sophisticated
    representation of the profile data" the paper's §6 says the system
    may move to.

    Where the flat trace table stores every sampled trace separately, the
    CCT shares common context prefixes: a node is a method reached through
    the path of (caller, callsite) edges above it, and a sampled trace
    adds weight to the node at the end of its path. Because online traces
    are depth-bounded, the tree is rooted at each trace's outermost
    recorded caller — a partial CCT.

    The tree answers the same queries the rule builder needs
    ({!to_hot_traces} reproduces {!Dcg.hot}'s contract), so the two
    representations can be compared head to head; the bench harness
    reports their sizes side by side. *)

type t

val create : unit -> t

val add_trace : ?weight:float -> t -> Trace.t -> unit

val of_dcg : Dcg.t -> t
(** Build from an existing flat profile, preserving weights. *)

val total_weight : t -> float

val node_count : t -> int
(** Interior + leaf nodes (excluding the synthetic root): the
    representation-size figure to compare against {!Dcg.size}. *)

val max_depth : t -> int

val weight_of : t -> Trace.t -> float
(** Weight accumulated at exactly this trace's path (0 if absent). *)

val to_hot_traces : t -> threshold:float -> (Trace.t * float) list
(** Paths holding more than [threshold] of the total weight, heaviest
    first — interchangeable with [Dcg.hot] for rule building. *)
