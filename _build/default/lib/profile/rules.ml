open Acsi_bytecode

type rule = { trace : Trace.t; weight : float }

(* Indexed by the innermost chain entry (caller, callsite) — the component
   Eq. 3 always requires to match (min(k, j) >= 1). *)
type t = {
  by_site : (int * int, rule list) Hashtbl.t;
  count : int;
}

let empty = { by_site = Hashtbl.create 1; count = 0 }

let site_key (e : Trace.entry) = ((e.Trace.caller :> int), e.Trace.callsite)

let of_hot_traces hot =
  let by_site = Hashtbl.create 64 in
  List.iter
    (fun (trace, weight) ->
      let key = site_key trace.Trace.chain.(0) in
      let prev = Option.value (Hashtbl.find_opt by_site key) ~default:[] in
      Hashtbl.replace by_site key ({ trace; weight } :: prev))
    hot;
  { by_site; count = List.length hot }

let rule_count t = t.count

let rules_at t ~(caller : Ids.Method_id.t) ~callsite =
  Option.value
    (Hashtbl.find_opt t.by_site ((caller :> int), callsite))
    ~default:[]

(* Group applicable rules by identical context; a group's callee set is
   every hot callee recorded under exactly that context. *)
let candidates ?(exact = false) t ~site_chain =
  if Array.length site_chain = 0 then []
  else
    let applicable =
      rules_at t
        ~caller:site_chain.(0).Trace.caller
        ~callsite:site_chain.(0).Trace.callsite
      |> List.filter (fun r ->
             let chain = r.trace.Trace.chain in
             if exact then
               Array.length chain = Array.length site_chain
               && Trace.context_matches ~rule_chain:chain ~site_chain
             else Trace.context_matches ~rule_chain:chain ~site_chain)
    in
    match applicable with
    | [] -> []
    | _ :: _ ->
        (* Group by context. Contexts are few per site; association lists
           keep the code simple. *)
        let groups = ref [] in
        List.iter
          (fun r ->
            let chain = r.trace.Trace.chain in
            let rec insert = function
              | [] -> [ (chain, ref [ r ]) ]
              | ((c, rs) as g) :: rest ->
                  if
                    Array.length c = Array.length chain
                    && Trace.context_matches ~rule_chain:c ~site_chain:chain
                  then begin
                    rs := r :: !rs;
                    g :: rest
                  end
                  else g :: insert rest
            in
            groups := insert !groups)
          applicable;
        (* Intersect the groups' callee sets; weight of a surviving callee
           is its summed weight over all applicable rules. *)
        let weight_of = Hashtbl.create 8 in
        List.iter
          (fun r ->
            let key = (r.trace.Trace.callee :> int) in
            let prev =
              Option.value (Hashtbl.find_opt weight_of key) ~default:0.0
            in
            Hashtbl.replace weight_of key (prev +. r.weight))
          applicable;
        let in_group callee (_, rs) =
          List.exists
            (fun r -> Ids.Method_id.equal r.trace.Trace.callee callee)
            !rs
        in
        let survivors =
          Hashtbl.fold
            (fun key w acc ->
              let callee = Ids.Method_id.of_int key in
              if List.for_all (in_group callee) !groups then
                (callee, w) :: acc
              else acc)
            weight_of []
        in
        List.sort (fun (_, a) (_, b) -> Float.compare b a) survivors

let iter t ~f = Hashtbl.iter (fun _ rs -> List.iter f rs) t.by_site
