open Acsi_bytecode

type t = {
  table : float ref Trace.Table.t;
  mutable total : float;
}

let create () = { table = Trace.Table.create 512; total = 0.0 }

let add_sample t trace =
  (match Trace.Table.find_opt t.table trace with
  | Some w -> w := !w +. 1.0
  | None -> Trace.Table.add t.table trace (ref 1.0));
  t.total <- t.total +. 1.0

let weight t trace =
  match Trace.Table.find_opt t.table trace with
  | Some w -> !w
  | None -> 0.0

let total_weight t = t.total
let size t = Trace.Table.length t.table

let decay t ~factor ~prune_below =
  let doomed = ref [] in
  Trace.Table.iter
    (fun trace w ->
      w := !w *. factor;
      if !w < prune_below then doomed := trace :: !doomed)
    t.table;
  t.total <- t.total *. factor;
  List.iter
    (fun trace ->
      (match Trace.Table.find_opt t.table trace with
      | Some w -> t.total <- t.total -. !w
      | None -> ());
      Trace.Table.remove t.table trace)
    !doomed;
  if t.total < 0.0 then t.total <- 0.0

let hot t ~threshold =
  if t.total <= 0.0 then []
  else
    let cut = threshold *. t.total in
    let acc = ref [] in
    Trace.Table.iter
      (fun trace w -> if !w > cut then acc := (trace, !w) :: !acc)
      t.table;
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc

let iter t ~f = Trace.Table.iter (fun trace w -> f trace !w) t.table

let site_distribution t ~caller ~callsite =
  let per_callee = Hashtbl.create 8 in
  Trace.Table.iter
    (fun trace w ->
      let e = trace.Trace.chain.(0) in
      if Ids.Method_id.equal e.Trace.caller caller && e.Trace.callsite = callsite
      then
        let key = (trace.Trace.callee :> int) in
        let prev = Option.value (Hashtbl.find_opt per_callee key) ~default:0.0 in
        Hashtbl.replace per_callee key (prev +. !w))
    t.table;
  Hashtbl.fold
    (fun key w acc -> (Ids.Method_id.of_int key, w) :: acc)
    per_callee []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let edge_weight t ~caller ~callsite ~callee =
  let sum = ref 0.0 in
  Trace.Table.iter
    (fun trace w ->
      let e = trace.Trace.chain.(0) in
      if
        Ids.Method_id.equal trace.Trace.callee callee
        && Ids.Method_id.equal e.Trace.caller caller
        && e.Trace.callsite = callsite
      then sum := !sum +. !w)
    t.table;
  !sum
