(** Textual serialization of profile data.

    Lets a run's dynamic call graph be saved and fed to a later run,
    reproducing the *offline* profile-directed inlining setups the paper
    contrasts itself with (§6): the second run starts with a mature
    profile instead of warming one up online.

    The format is line-based and human-readable; method ids are the dense
    ids of the (deterministically built) program, so a profile is only
    meaningful for the program that produced it:

    {v
    acsi-profile 1
    trace <callee> <weight> <caller>:<callsite> [<caller>:<callsite> ...]
    v} *)

exception Malformed of string

val to_string : Dcg.t -> string

val of_string : string -> Dcg.t
(** Raises {!Malformed}. *)

val save : string -> Dcg.t -> unit
(** [save path dcg] writes the profile to a file. *)

val load : string -> Dcg.t
(** Raises {!Malformed} or [Sys_error]. *)
