lib/profile/dcg.ml: Acsi_bytecode Array Float Hashtbl Ids List Option Trace
