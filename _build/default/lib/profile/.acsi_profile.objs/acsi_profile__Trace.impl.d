lib/profile/trace.ml: Acsi_bytecode Array Format Hashtbl Ids Int
