lib/profile/trace.mli: Acsi_bytecode Format Hashtbl Ids
