lib/profile/persist.ml: Acsi_bytecode Array Buffer Dcg Float Fun Ids List Printf String Trace
