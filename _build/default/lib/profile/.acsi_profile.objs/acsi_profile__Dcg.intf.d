lib/profile/dcg.mli: Acsi_bytecode Ids Trace
