lib/profile/rules.mli: Acsi_bytecode Ids Trace
