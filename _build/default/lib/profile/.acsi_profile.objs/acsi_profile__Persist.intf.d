lib/profile/persist.mli: Dcg
