lib/profile/rules.ml: Acsi_bytecode Array Float Hashtbl Ids List Option Trace
