lib/profile/cct.ml: Acsi_bytecode Array Dcg Float Hashtbl Ids List Option Trace
