lib/profile/cct.mli: Dcg Trace
