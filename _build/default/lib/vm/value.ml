open Acsi_bytecode

type t =
  | Int of int
  | Null
  | Obj of obj
  | Arr of t array

and obj = {
  cls : Ids.Class_id.t;
  fields : t array;
}

let zero = Int 0

let alloc program cid =
  let cls = Program.clazz program cid in
  Obj { cls = cid; fields = Array.make (Clazz.field_count cls) zero }

let equal_cmp a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Null, Null -> true
  | Obj x, Obj y -> x == y
  | Arr x, Arr y -> x == y
  | (Int _ | Null | Obj _ | Arr _), _ -> false

let truthy = function
  | Int 0 | Null -> false
  | Int _ | Obj _ | Arr _ -> true

let rec pp fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Null -> Format.fprintf fmt "null"
  | Obj o -> Format.fprintf fmt "obj<%a>" Ids.Class_id.pp o.cls
  | Arr a ->
      Format.fprintf fmt "[|";
      Array.iteri
        (fun i v ->
          if i > 0 then Format.fprintf fmt "; ";
          if i < 8 then pp fmt v else if i = 8 then Format.fprintf fmt "...")
        a;
      Format.fprintf fmt "|]"
