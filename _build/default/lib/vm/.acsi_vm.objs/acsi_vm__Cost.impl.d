lib/vm/cost.ml:
