lib/vm/code.mli: Acsi_bytecode Cost Format Ids Instr Meth
