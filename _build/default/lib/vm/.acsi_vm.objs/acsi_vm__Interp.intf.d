lib/vm/interp.mli: Acsi_bytecode Code Cost Ids Program
