lib/vm/cost.mli:
