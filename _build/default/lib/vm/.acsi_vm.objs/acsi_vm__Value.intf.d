lib/vm/value.mli: Acsi_bytecode Format
