lib/vm/code.ml: Acsi_bytecode Array Cost Format Ids Instr Meth
