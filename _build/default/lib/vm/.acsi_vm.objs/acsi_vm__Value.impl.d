lib/vm/value.ml: Acsi_bytecode Array Clazz Format Ids Program
