lib/vm/interp.ml: Acsi_bytecode Array Clazz Code Cost Format Ids Instr List Meth Obj Program Value
