(** Context-sensitivity policies (paper §4).

    A policy governs how deep the trace listener walks the call stack when
    it takes a sample. [Context_insensitive] reproduces the pre-existing
    Jikes RVM behaviour (plain call edges, depth 1). [Fixed n] collects
    exactly [n] call edges when the stack allows. The adaptive policies are
    early-termination rules bounding a [Fixed n] walk:

    - [Parameterless]: stop once the method receiving state from above
      declares no parameters (nothing flows further down the chain);
    - [Class_methods]: stop once an instance (non-static) caller has been
      added — its receiver state is taken to dominate its calling context;
    - [Large_methods]: stop once a large caller has been added — a large
      method is never inlined into its parent, so context above it cannot
      be exploited;
    - the two hybrids stop when either component rule fires;
    - [Adaptive_resolving] (paper §4.3, left unimplemented there) starts
      context-insensitive and deepens only at call sites the AI organizer
      has flagged as insufficiently skewed polymorphic sites; the flag set
      lives in the AOS, so this module only carries the depth bound. *)

open Acsi_bytecode

type t =
  | Context_insensitive
  | Fixed of int
  | Parameterless of int
  | Class_methods of int
  | Large_methods of int
  | Hybrid_param_class of int
  | Hybrid_param_large of int
  | Adaptive_resolving of int

val max_depth : t -> int
(** Upper bound on collected trace depth (1 for [Context_insensitive]). *)

val name : t -> string
(** Short family name as used in the paper's figures: "cins", "fixed",
    "paramLess", "class", "large", "hybrid1", "hybrid2", "resolve". *)

val to_string : t -> string
(** e.g. ["fixed(max=3)"]. *)

val of_string : string -> t option
(** Parses [to_string]'s format as well as bare family names (which get
    max = 5, except "cins"). *)

val should_extend :
  t -> Program.t -> callee:Meth.t -> last_caller:Meth.t -> chain_len:int -> bool
(** Whether the trace listener, having already collected [chain_len] >= 1
    edges ending at [last_caller], should walk one level further.
    [Adaptive_resolving] always answers [false] here — its deepening is
    driven by the AOS flag set, not by this predicate. *)

val is_adaptive_resolving : t -> bool

val paper_sweep : t list
(** Every policy/max combination evaluated in the paper's figures:
    fixed, parameterless, class, large, hybrid1 and hybrid2 with max 2–5
    (context-insensitive is the baseline, not part of the sweep). *)
