open Acsi_bytecode

type t =
  | Context_insensitive
  | Fixed of int
  | Parameterless of int
  | Class_methods of int
  | Large_methods of int
  | Hybrid_param_class of int
  | Hybrid_param_large of int
  | Adaptive_resolving of int

let max_depth = function
  | Context_insensitive -> 1
  | Fixed n | Parameterless n | Class_methods n | Large_methods n
  | Hybrid_param_class n | Hybrid_param_large n | Adaptive_resolving n ->
      max 1 n

let name = function
  | Context_insensitive -> "cins"
  | Fixed _ -> "fixed"
  | Parameterless _ -> "paramLess"
  | Class_methods _ -> "class"
  | Large_methods _ -> "large"
  | Hybrid_param_class _ -> "hybrid1"
  | Hybrid_param_large _ -> "hybrid2"
  | Adaptive_resolving _ -> "resolve"

let to_string p =
  match p with
  | Context_insensitive -> "cins"
  | Fixed _ | Parameterless _ | Class_methods _ | Large_methods _
  | Hybrid_param_class _ | Hybrid_param_large _ | Adaptive_resolving _ ->
      Printf.sprintf "%s(max=%d)" (name p) (max_depth p)

let of_string s =
  let make family n =
    match family with
    | "cins" -> Some Context_insensitive
    | "fixed" -> Some (Fixed n)
    | "paramLess" | "paramless" -> Some (Parameterless n)
    | "class" -> Some (Class_methods n)
    | "large" -> Some (Large_methods n)
    | "hybrid1" -> Some (Hybrid_param_class n)
    | "hybrid2" -> Some (Hybrid_param_large n)
    | "resolve" -> Some (Adaptive_resolving n)
    | _ -> None
  in
  match String.index_opt s '(' with
  | None -> make s 5
  | Some i -> (
      let family = String.sub s 0 i in
      try
        Scanf.sscanf (String.sub s i (String.length s - i)) "(max=%d)"
          (fun n -> make family n)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

(* The state-flow tests of §4.3, applied to the most recently added chain
   element. [chain_len] = 1 means only the plain edge has been collected
   and [last_caller] is the immediate caller. *)

let parameterless_stops ~callee ~last_caller ~chain_len =
  if chain_len = 1 then
    Meth.is_parameterless callee || Meth.is_parameterless last_caller
  else Meth.is_parameterless last_caller

let class_method_stops ~last_caller = Meth.is_instance last_caller

let large_method_stops ~last_caller =
  match Acsi_jit.Size.clazz_of last_caller with
  | Acsi_jit.Size.Large -> true
  | Acsi_jit.Size.Tiny | Acsi_jit.Size.Small | Acsi_jit.Size.Medium -> false

let should_extend p _program ~callee ~last_caller ~chain_len =
  chain_len < max_depth p
  &&
  match p with
  | Context_insensitive -> false
  | Fixed _ -> true
  | Parameterless _ -> not (parameterless_stops ~callee ~last_caller ~chain_len)
  | Class_methods _ -> not (class_method_stops ~last_caller)
  | Large_methods _ -> not (large_method_stops ~last_caller)
  | Hybrid_param_class _ ->
      (not (parameterless_stops ~callee ~last_caller ~chain_len))
      && not (class_method_stops ~last_caller)
  | Hybrid_param_large _ ->
      (not (parameterless_stops ~callee ~last_caller ~chain_len))
      && not (large_method_stops ~last_caller)
  | Adaptive_resolving _ -> false

let is_adaptive_resolving = function
  | Adaptive_resolving _ -> true
  | Context_insensitive | Fixed _ | Parameterless _ | Class_methods _
  | Large_methods _ | Hybrid_param_class _ | Hybrid_param_large _ ->
      false

let paper_sweep =
  let maxes = [ 2; 3; 4; 5 ] in
  List.concat_map
    (fun make -> List.map make maxes)
    [
      (fun n -> Fixed n);
      (fun n -> Parameterless n);
      (fun n -> Class_methods n);
      (fun n -> Large_methods n);
      (fun n -> Hybrid_param_class n);
      (fun n -> Hybrid_param_large n);
    ]
