lib/policy/policy.mli: Acsi_bytecode Meth Program
