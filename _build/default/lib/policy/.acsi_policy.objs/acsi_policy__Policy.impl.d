lib/policy/policy.ml: Acsi_bytecode Acsi_jit List Meth Printf Scanf String
