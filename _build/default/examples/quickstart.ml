(* Quickstart: the paper's Figure 1, end to end.

   Builds the HashMapTest program from the paper in the mini-language,
   runs it under context-insensitive profiling and under fixed
   context-sensitive profiling (depth 2), and prints what each policy
   inlined at the two HashMap.get call sites in runTest.

   The paper's claim, observable here: context-insensitive profiling sees
   a 50/50 hashCode split inside HashMap.get and inlines BOTH targets
   (guarded) wherever it inlines at all, while the context-sensitive
   profile discriminates — MyKey.hashCode for the site reached from the
   first call in runTest, Object.hashCode for the second. *)

open Acsi_core
open Acsi_lang.Dsl

(* The paper's MyKey: hashCode returns the stored key. Javalib's Obj plays
   java.lang.Object (identity hash). *)
let my_key =
  cls "MyKey" ~parent:"Obj" ~fields:[ "key" ]
    [
      meth "init" [ "k" ] ~returns:false
        [ expr (dcall this "Obj" "init" []); set_thisf "key" (v "k") ];
      meth "hashCode" [] ~returns:true [ ret (thisf "key") ];
      meth "equals" [ "other" ] ~returns:true
        [
          ret
            (and_
               (instof (v "other") "MyKey")
               (eq (fld "MyKey" (v "other") "key") (thisf "key")));
        ];
    ]

(* HashMapTest.runTest, made hot by an invocation loop: the adaptive
   system only acts on methods it observes repeatedly. *)
let test_class =
  cls "HashMapTest" ~fields:[]
    [
      static_meth "runTest" [ "k1"; "k2"; "map" ] ~returns:true
        [
          let_ "counter" (i 0);
          let_ "counter"
            (add (v "counter") (inv (v "map") "get" [ v "k1" ]));
          let_ "counter"
            (add (v "counter") (inv (v "map") "get" [ v "k2" ]));
          ret (v "counter");
        ];
    ]

let program =
  Acsi_lang.Compile.prog
    (prog
       ~globals:Acsi_workloads.Javalib.globals
       (Acsi_workloads.Javalib.classes @ [ my_key; test_class ])
       [
         let_ "k1" (new_ "MyKey" [ i 22 ]);
         let_ "k2" (new_ "Obj" []);
         let_ "map" (new_ "HashMap" [ i 16 ]);
         expr (inv (v "map") "put" [ v "k1"; i 1 ]);
         expr (inv (v "map") "put" [ v "k2"; i 2 ]);
         let_ "counter" (i 0);
         for_ "rep" (i 0) (i 60000)
           [
             let_ "counter"
               (band
                  (add (v "counter")
                     (call "HashMapTest" "runTest" [ v "k1"; v "k2"; v "map" ]))
                  (i 1073741823));
           ];
         print (v "counter");
       ])

let describe_policy policy =
  let result = Runtime.run (Config.default ~policy) program in
  let m = result.Runtime.metrics in
  Format.printf "@.=== %s ===@." (Acsi_policy.Policy.to_string policy);
  Format.printf "output checksum %d, %d cycles, %d bytes of optimized code@."
    m.Metrics.output_checksum m.Metrics.total_cycles m.Metrics.opt_code_bytes;
  Format.printf "guard outcomes: %d hits / %d misses@." m.Metrics.guard_hits
    m.Metrics.guard_misses;
  (* Show every inline the compiler performed, with source call sites. *)
  Acsi_aos.Registry.iter
    (Acsi_aos.System.registry result.Runtime.sys)
    ~f:(fun mid entry ->
      let root = Acsi_bytecode.Program.meth program mid in
      List.iter
        (fun (caller_i, pc, callee_i) ->
          let caller =
            Acsi_bytecode.Program.meth program
              (Acsi_bytecode.Ids.Method_id.of_int caller_i)
          in
          let callee =
            Acsi_bytecode.Program.meth program
              (Acsi_bytecode.Ids.Method_id.of_int callee_i)
          in
          let owner (m : Acsi_bytecode.Meth.t) =
            (Acsi_bytecode.Program.clazz program m.Acsi_bytecode.Meth.owner)
              .Acsi_bytecode.Clazz.name
          in
          Format.printf "  in %s.%s: inlined %s.%s (at %s.%s pc %d)@."
            (owner root) root.Acsi_bytecode.Meth.name (owner callee)
            callee.Acsi_bytecode.Meth.name (owner caller)
            caller.Acsi_bytecode.Meth.name pc)
        entry.Acsi_aos.Registry.stats.Acsi_jit.Expand.inlined_edges)

let () =
  Format.printf
    "Paper Figure 1: HashMapTest under context-insensitive vs \
     context-sensitive profiling@.";
  describe_policy Acsi_policy.Policy.Context_insensitive;
  describe_policy (Acsi_policy.Policy.Fixed 2);
  Format.printf
    "@.Look for hashCode/equals: cins inlines both implementations behind \
     guards at every site it@.inlines at all; fixed(max=2) inlines exactly \
     the context-correct implementation per site.@."
