(* Tutorial: bringing your own workload.

   Shows the full public-API path a downstream user takes:
     1. describe a program with the Dsl combinators (classes, methods,
        virtual dispatch, the shared Javalib collections);
     2. compile it ([Acsi_lang.Compile.prog] seals and verifies);
     3. run it under a policy ([Acsi_core.Runtime.run]);
     4. read the metrics.

   The program is a tiny checkout system: carts of items with polymorphic
   pricing rules, looked up through the library HashMap. The two checkout
   lanes use different dominant pricing rules, so the rule dispatch inside
   Checkout.total is context-dependent — your own workloads become
   interesting for this system exactly when they contain such sites. *)

open Acsi_core
open Acsi_lang.Dsl

let classes =
  [
    (* Pricing rules: a polymorphic hierarchy dispatched per line item. *)
    cls "Pricing" ~parent:"Obj" ~fields:[]
      [
        meth "price" [ "base"; "qty" ] ~returns:true
          [ ret (mul (v "base") (v "qty")) ];
      ];
    cls "BulkPricing" ~parent:"Pricing" ~fields:[]
      [
        meth "price" [ "base"; "qty" ] ~returns:true
          [
            if_
              (ge (v "qty") (i 10))
              [ ret (div (mul (mul (v "base") (v "qty")) (i 9)) (i 10)) ]
              [ ret (mul (v "base") (v "qty")) ];
          ];
      ];
    cls "PromoPricing" ~parent:"Pricing" ~fields:[]
      [
        meth "price" [ "base"; "qty" ] ~returns:true
          [ ret (sub (mul (v "base") (v "qty")) (mul (i 5) (v "qty"))) ];
      ];
    cls "Checkout" ~fields:[ "prices"; "rule" ]
      [
        meth "init" [ "prices"; "rule" ] ~returns:false
          [ set_thisf "prices" (v "prices"); set_thisf "rule" (v "rule") ];
        meth "total" [ "rng"; "lines" ] ~returns:true
          [
            let_ "sum" (i 0);
            for_ "l" (i 0) (v "lines")
              [
                let_ "sku" (inv (v "rng") "below" [ i 64 ]);
                let_ "base"
                  (inv (thisf "prices") "get" [ new_ "IntKey" [ v "sku" ] ]);
                if_ (ne (v "base") null)
                  [
                    let_ "sum"
                      (add (v "sum")
                         (inv (thisf "rule") "price"
                            [
                              v "base";
                              add (i 1) (inv (v "rng") "below" [ i 15 ]);
                            ]));
                  ]
                  [];
              ];
            ret (band (v "sum") (i 1073741823));
          ];
      ];
  ]

let program =
  Acsi_lang.Compile.prog
    (prog
       ~globals:Acsi_workloads.Javalib.globals
       (Acsi_workloads.Javalib.classes @ classes)
       [
         let_ "rng" (new_ "Rng" [ i 7 ]);
         let_ "prices" (new_ "HashMap" [ i 128 ]);
         for_ "sku" (i 0) (i 64)
           [
             expr
               (inv (v "prices") "put"
                  [
                    new_ "IntKey" [ v "sku" ]; add (i 100) (mul (v "sku") (i 3));
                  ]);
           ];
         let_ "retail" (new_ "Checkout" [ v "prices"; new_ "BulkPricing" [] ]);
         let_ "promo" (new_ "Checkout" [ v "prices"; new_ "PromoPricing" [] ]);
         let_ "acc" (i 0);
         for_ "day" (i 0) (i 2500)
           [
             let_ "acc"
               (band
                  (add (v "acc") (inv (v "retail") "total" [ v "rng"; i 12 ]))
                  (i 1073741823));
             let_ "acc"
               (band
                  (add (v "acc") (inv (v "promo") "total" [ v "rng"; i 4 ]))
                  (i 1073741823));
           ];
         print (v "acc");
       ])

let () =
  Format.printf "Custom workload under three policies:@.@.";
  List.iter
    (fun policy ->
      let result = Runtime.run (Config.default ~policy) program in
      let m = result.Runtime.metrics in
      Format.printf
        "%-16s cycles=%-10d opt-bytes=%-6d guard hits/misses=%d/%d \
         checksum=%d@."
        (Acsi_policy.Policy.to_string policy)
        m.Metrics.total_cycles m.Metrics.opt_code_bytes m.Metrics.guard_hits
        m.Metrics.guard_misses m.Metrics.output_checksum)
    Acsi_policy.Policy.[ Context_insensitive; Fixed 3; Hybrid_param_class 4 ]
