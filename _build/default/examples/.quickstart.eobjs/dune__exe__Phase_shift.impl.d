examples/phase_shift.ml: Acsi_aos Acsi_bytecode Acsi_core Acsi_jit Acsi_lang Acsi_policy Acsi_workloads Config Format List Metrics Runtime String
