examples/policy_explorer.ml: Acsi_core Acsi_policy Acsi_workloads Array Config Format List Metrics Option Printf Runtime String Sys
