examples/quickstart.mli:
