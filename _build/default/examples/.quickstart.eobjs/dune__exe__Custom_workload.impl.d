examples/custom_workload.ml: Acsi_core Acsi_lang Acsi_policy Acsi_workloads Config Format List Metrics Runtime
