(* Policy explorer: sweep every context-sensitivity policy over one
   benchmark and print the three quantities the paper's evaluation is
   about — wall-clock speedup, optimized code size, compile time — each
   relative to the context-insensitive baseline.

   Usage: dune exec examples/policy_explorer.exe [-- BENCH [SCALE]] *)

open Acsi_core

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jbb" in
  let scale_arg =
    if Array.length Sys.argv > 2 then Some (int_of_string Sys.argv.(2))
    else None
  in
  (* Paper benchmark names first, then the micro workloads. *)
  let program =
    match Acsi_workloads.Workloads.find bench with
    | spec ->
        let scale =
          Option.value scale_arg
            ~default:spec.Acsi_workloads.Workloads.default_scale
        in
        spec.Acsi_workloads.Workloads.build ~scale
    | exception Not_found -> (
        match List.assoc_opt bench Acsi_workloads.Micro.all with
        | Some build -> build ~scale:(Option.value scale_arg ~default:400)
        | None ->
            Format.eprintf "unknown benchmark %s (paper: %s; micro: %s)@."
              bench
              (String.concat ", "
                 (List.map
                    (fun (s : Acsi_workloads.Workloads.spec) ->
                      s.Acsi_workloads.Workloads.name)
                    Acsi_workloads.Workloads.all))
              (String.concat ", " (List.map fst Acsi_workloads.Micro.all));
            exit 2)
  in
  Format.printf "Policy sweep on %s@.@." bench;
  let baseline =
    (Runtime.run
       (Config.default ~policy:Acsi_policy.Policy.Context_insensitive)
       program)
      .Runtime.metrics
  in
  Format.printf "%-18s %10s %12s %12s %15s@." "policy" "speedup%" "code-size%"
    "compile%" "guards";
  Format.printf "%-18s %10s %12d %12d %15s@." "cins" "-"
    baseline.Metrics.opt_code_bytes baseline.Metrics.opt_compile_cycles
    (Printf.sprintf "%d/%d" baseline.Metrics.guard_hits
       baseline.Metrics.guard_misses);
  List.iter
    (fun policy ->
      let m = (Runtime.run (Config.default ~policy) program).Runtime.metrics in
      Format.printf "%-18s %+10.2f %+12.2f %+12.2f %15s@."
        (Acsi_policy.Policy.to_string policy)
        (Metrics.speedup_pct ~baseline m)
        (Metrics.code_size_change_pct ~baseline m)
        (Metrics.compile_time_change_pct ~baseline m)
        (Printf.sprintf "%d/%d" m.Metrics.guard_hits m.Metrics.guard_misses))
    (Acsi_policy.Policy.paper_sweep
    @ [ Acsi_policy.Policy.Adaptive_resolving 4 ])
