(* Phase shift: what the decay organizer is for.

   The program processes events through a polymorphic [handle] dispatch
   whose receiver distribution flips between phases: phase 1 is all
   FastHandler, phase 2 all SlowHandler. Without decay, phase-1 profile
   weight would keep the stale target looking hot forever; the decay
   organizer (paper §3.2) biases the dynamic call graph toward recent
   samples so the AI missing-edge organizer can recompile with the new
   dominant target.

   The example prints, per configuration, which handler implementations
   the optimizing compiler had inlined by the end of the run. *)

open Acsi_core
open Acsi_lang.Dsl

let classes =
  [
    cls "Handler" ~parent:"Obj" ~fields:[]
      [ meth "handle" [ "x" ] ~returns:true [ ret (v "x") ] ];
    cls "FastHandler" ~parent:"Handler" ~fields:[]
      [
        meth "handle" [ "x" ] ~returns:true
          [ ret (band (add (mul (v "x") (i 3)) (i 7)) (i 65535)) ];
      ];
    cls "SlowHandler" ~parent:"Handler" ~fields:[]
      [
        meth "handle" [ "x" ] ~returns:true
          [
            let_ "acc" (v "x");
            for_ "k" (i 0) (i 4)
              [
                let_ "acc"
                  (band (add (mul (v "acc") (i 5)) (v "k")) (i 65535));
              ];
            ret (v "acc");
          ];
      ];
    cls "Pump" ~fields:[]
      [
        static_meth "drain" [ "h"; "n" ] ~returns:true
          [
            let_ "acc" (i 0);
            for_ "k" (i 0) (v "n")
              [
                let_ "acc"
                  (band
                     (add (v "acc") (inv (v "h") "handle" [ v "k" ]))
                     (i 1073741823));
              ];
            ret (v "acc");
          ];
      ];
  ]

let program =
  Acsi_lang.Compile.prog
    (prog
       ~globals:Acsi_workloads.Javalib.globals
       (Acsi_workloads.Javalib.classes @ classes)
       [
         let_ "fast" (new_ "FastHandler" []);
         let_ "slow" (new_ "SlowHandler" []);
         let_ "acc" (i 0);
         (* Phase 1: FastHandler only. *)
         for_ "b" (i 0) (i 2600)
           [
             let_ "acc"
               (band
                  (add (v "acc") (call "Pump" "drain" [ v "fast"; i 60 ]))
                  (i 1073741823));
           ];
         (* Phase 2: SlowHandler only. *)
         for_ "b" (i 0) (i 2600)
           [
             let_ "acc"
               (band
                  (add (v "acc") (call "Pump" "drain" [ v "slow"; i 60 ]))
                  (i 1073741823));
           ];
         print (v "acc");
       ])

let handler_inlines result =
  let names = ref [] in
  Acsi_aos.Registry.iter
    (Acsi_aos.System.registry result.Runtime.sys)
    ~f:(fun _ entry ->
      List.iter
        (fun (_, _, callee_i) ->
          let callee =
            Acsi_bytecode.Program.meth program
              (Acsi_bytecode.Ids.Method_id.of_int callee_i)
          in
          let owner =
            (Acsi_bytecode.Program.clazz program callee.Acsi_bytecode.Meth.owner)
              .Acsi_bytecode.Clazz.name
          in
          if String.equal callee.Acsi_bytecode.Meth.name "handle/1" then
            names := owner :: !names)
        entry.Acsi_aos.Registry.stats.Acsi_jit.Expand.inlined_edges);
  List.sort_uniq String.compare !names

let run ~decay_factor label =
  let cfg = Config.default ~policy:(Acsi_policy.Policy.Fixed 2) in
  let cfg =
    {
      cfg with
      Config.aos =
        {
          cfg.Config.aos with
          Acsi_aos.System.decay_factor;
          decay_period = 1;
          ai_period = 2;
          refusal_ttl = 4;
        };
    }
  in
  let result = Runtime.run cfg program in
  let m = result.Runtime.metrics in
  Format.printf
    "%-22s total=%9d cycles, guard hits/misses=%d/%d, handler targets \
     inlined by the end: %s@."
    label m.Metrics.total_cycles m.Metrics.guard_hits m.Metrics.guard_misses
    (String.concat ", " (handler_inlines result))

let () =
  Format.printf "Phase-shift adaptation via the decay organizer@.@.";
  run ~decay_factor:0.5 "with decay (0.5)";
  run ~decay_factor:1.0 "without decay (1.0)";
  Format.printf
    "@.With decay, phase-2 samples displace phase-1 weight, the stale \
     FastHandler rule cools@.off, and the missing-edge organizer gets \
     SlowHandler inlined; without decay the phase-1@.profile keeps \
     dominating phase 2.@."
