(* Diff two BENCH_results.json files (or two runs of one trajectory
   file): per-cell wall-clock deltas, sorted by magnitude, plus the
   totals — one command to spot a performance regression after a change.

     compare.exe OLD.json NEW.json [--all] [--old-run N] [--new-run N]
                 [--allow-cross-tier] [--allow-cross-seed]
                 [--allow-cross-spec]

   By default the *last* run of each file is compared (a results file is
   a trajectory; see results.ml). Wall-clock deltas are informational —
   the host is noisy — but a total_cycles mismatch between runs at the
   same scale factor means the simulated execution itself changed, which
   the determinism contract forbids; that exits non-zero.

   Runs carry the execution tier they ran on ("interp" or "closure").
   Comparing wall-clock across tiers at the same scale answers a
   different question than a regression check — the delta is the tier
   speedup, not a change in the code under test — so by default such a
   comparison is refused; --allow-cross-tier runs it anyway (the cycle
   identity between tiers still holds and is still enforced). When both
   runs recorded a host-time calibration section, the per-tier
   ns-per-virtual-cycle drift is reported informationally.

   Runs are also stamped with whether the static pre-warm oracle was on
   (--static-seed). Unlike the tier, seeding is a measured behaviour
   change — cycle counts legitimately differ — so comparing across the
   stamp at equal scale would report the oracle's effect as a
   regression; refused unless --allow-cross-seed (which also waives the
   cycle-identity check, since the identity does not hold across the
   seed). When both runs carry a "static" warmup-ablation section, the
   per-workload warmup-requests deltas are diffed like every other
   deterministic cell.

   The --speculate stamp (guard-free speculative inlining + deopt) is
   the same shape as the seed stamp: cycle counts legitimately move
   under speculation, so a cross-spec comparison at equal scale is
   refused unless --allow-cross-spec (which likewise waives the
   cycle-identity check). When both runs carry a "speculation"
   guards-vs-guard-free section, its guard counts, deopt counts and
   checksums are held to the determinism contract like every other
   deterministic cell. *)

let usage =
  "usage: compare.exe OLD.json NEW.json [--all] [--old-run N] [--new-run N] \
   [--allow-cross-tier] [--slo KEY=BUDGET]...\n\
   SLO keys (checked against the NEW run, violation exits 1): p99 \
   (telemetry session-latency p99), warmup (static-ablation seeded warmup \
   requests), deopts (telemetry deopt count), guards (speculation guard \
   checks, on half)"

let die fmt = Format.kasprintf (fun m -> prerr_endline m; exit 2) fmt

type opts = {
  mutable old_file : string option;
  mutable new_file : string option;
  mutable all : bool;
  mutable old_run : int option;  (* index into the trajectory; default last *)
  mutable new_run : int option;
  mutable allow_cross_tier : bool;
  mutable allow_cross_seed : bool;
  mutable allow_cross_spec : bool;
  mutable slo : (string * int) list;  (* declared budgets, argv order *)
}

let parse_args () =
  let o =
    {
      old_file = None;
      new_file = None;
      all = false;
      old_run = None;
      new_run = None;
      allow_cross_tier = false;
      allow_cross_seed = false;
      allow_cross_spec = false;
      slo = [];
    }
  in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> i
    | _ -> die "invalid %s value %s@.%s" name v usage
  in
  let rec go = function
    | [] -> ()
    | "--all" :: rest ->
        o.all <- true;
        go rest
    | "--allow-cross-tier" :: rest ->
        o.allow_cross_tier <- true;
        go rest
    | "--allow-cross-seed" :: rest ->
        o.allow_cross_seed <- true;
        go rest
    | "--allow-cross-spec" :: rest ->
        o.allow_cross_spec <- true;
        go rest
    | "--old-run" :: v :: rest ->
        o.old_run <- Some (int_arg "--old-run" v);
        go rest
    | "--new-run" :: v :: rest ->
        o.new_run <- Some (int_arg "--new-run" v);
        go rest
    | "--slo" :: v :: rest ->
        (match String.index_opt v '=' with
        | Some i ->
            let key = String.sub v 0 i in
            let budget =
              int_arg "--slo"
                (String.sub v (i + 1) (String.length v - i - 1))
            in
            if
              not (List.mem key [ "p99"; "warmup"; "deopts"; "guards" ])
            then die "unknown SLO key %S@.%s" key usage;
            o.slo <- o.slo @ [ (key, budget) ]
        | None -> die "invalid --slo value %s (want KEY=BUDGET)@.%s" v usage);
        go rest
    | arg :: rest when o.old_file = None ->
        o.old_file <- Some arg;
        go rest
    | arg :: rest when o.new_file = None ->
        o.new_file <- Some arg;
        go rest
    | arg :: _ -> die "unexpected argument %s@.%s" arg usage
  in
  go (List.tl (Array.to_list Sys.argv));
  match (o.old_file, o.new_file) with
  | Some a, Some b -> (o, a, b)
  | _ -> die "two results files required@.%s" usage

let load path idx =
  let runs =
    try Results.read_file path with
    | Sys_error msg -> die "%s" msg
    | Results.Parse_error msg -> die "%s: %s" path msg
  in
  let n = List.length runs in
  if n = 0 then die "%s: no runs" path;
  let i = match idx with Some i -> i | None -> n - 1 in
  if i >= n then die "%s: run %d requested but only %d recorded" path i n;
  (List.nth runs i, i, n)

let () =
  let o, old_path, new_path = parse_args () in
  let old_run, old_i, old_n = load old_path o.old_run in
  let new_run, new_i, new_n = load new_path o.new_run in
  let seed_label r =
    if r.Results.static_seed then "seeded" else "reactive"
  in
  let spec_label r =
    if r.Results.speculate then "speculative" else "guarded"
  in
  Printf.printf
    "old: %s (run %d/%d)  jobs %d  scale %g  tier %s  %s  %s  wall_total \
     %.2fs\n"
    old_path old_i (old_n - 1) old_run.Results.jobs old_run.Results.scale_factor
    old_run.Results.tier (seed_label old_run) (spec_label old_run)
    old_run.Results.wall_total_s;
  Printf.printf
    "new: %s (run %d/%d)  jobs %d  scale %g  tier %s  %s  %s  wall_total \
     %.2fs\n"
    new_path new_i (new_n - 1) new_run.Results.jobs new_run.Results.scale_factor
    new_run.Results.tier (seed_label new_run) (spec_label new_run)
    new_run.Results.wall_total_s;
  let same_scale =
    old_run.Results.scale_factor = new_run.Results.scale_factor
  in
  if not same_scale then
    print_endline
      "note: scale factors differ — cycle counts are not comparable, only \
       reporting wall-clock";
  (* A wall-clock diff across execution tiers at equal scale measures the
     tier speedup, not a regression in the code under test — almost never
     what a comparison is for, so refuse unless explicitly overridden.
     (Cycle identity across tiers is part of the determinism contract and
     is still enforced below when the comparison proceeds.) *)
  if
    same_scale
    && old_run.Results.tier <> new_run.Results.tier
    && not o.allow_cross_tier
  then
    die
      "refusing to compare runs from different execution tiers (%s vs %s) at \
       equal scale: the wall-clock delta would measure the tier, not the \
       change under test. Pass --allow-cross-tier to compare anyway."
      old_run.Results.tier new_run.Results.tier;
  (* The static-seed stamp cuts deeper than the tier: a seeded run's
     cycle counts legitimately differ from a reactive run's, so at
     equal scale the determinism check below would report the oracle's
     intended effect as a violation. Refuse, and when overridden, skip
     the cycle checks rather than fail them. *)
  let cross_seed =
    old_run.Results.static_seed <> new_run.Results.static_seed
  in
  if same_scale && cross_seed && not o.allow_cross_seed then
    die
      "refusing to compare a %s run against a %s run at equal scale: the \
       static pre-warm oracle changes cycle counts by design, so the diff \
       would measure the oracle, not the change under test. Pass \
       --allow-cross-seed to compare anyway (cycle-identity checks are \
       then skipped)."
      (seed_label old_run) (seed_label new_run);
  (* The speculate stamp has the same force as the seed stamp: guard-free
     inlining legitimately changes cycle counts (that is its point), so a
     cross-spec diff at equal scale would report the subsystem's intended
     effect as a regression. Refuse, and when overridden, skip the cycle
     checks rather than fail them. *)
  let cross_spec =
    old_run.Results.speculate <> new_run.Results.speculate
  in
  if same_scale && cross_spec && not o.allow_cross_spec then
    die
      "refusing to compare a %s run against a %s run at equal scale: \
       guard-free speculative inlining changes cycle counts by design, so \
       the diff would measure the speculation, not the change under test. \
       Pass --allow-cross-spec to compare anyway (cycle-identity checks \
       are then skipped)."
      (spec_label old_run) (spec_label new_run);
  let check_cycles = same_scale && not cross_seed && not cross_spec in
  (* Cost-model drift: when both runs measured host time per charged
     virtual cycle, report how much each tier's measured cost moved.
     Informational only — the host is noisy — but a large drift means
     wall-clock comparisons against older trajectory points are suspect. *)
  (match (old_run.Results.calibration, new_run.Results.calibration) with
  | [], _ | _, [] -> ()
  | old_cal, new_cal ->
      Printf.printf "\ncalibration drift (host ns per charged virtual cycle):\n";
      List.iter
        (fun (nk : Results.calib) ->
          let ns (k : Results.calib) =
            if k.Results.k_cycles = 0 then 0.0
            else k.Results.k_host_s *. 1e9 /. float_of_int k.Results.k_cycles
          in
          match
            List.find_opt
              (fun (ok : Results.calib) ->
                ok.Results.k_tier = nk.Results.k_tier)
              old_cal
          with
          | Some ok ->
              let o_ns = ns ok and n_ns = ns nk in
              Printf.printf "  %-8s %8.2f -> %8.2f ns/cycle (%+.1f%%)\n"
                nk.Results.k_tier o_ns n_ns
                (if o_ns > 0.0 then (n_ns -. o_ns) /. o_ns *. 100.0 else 0.0)
          | None ->
              Printf.printf "  %-8s (new)  %8.2f ns/cycle\n" nk.Results.k_tier
                (ns nk))
        new_cal);
  (* Charge-constant sanity verdicts (bench --trace): a verdict flip
     between runs means the measured host cost of a charged system cycle
     moved across the consistency band relative to app execution — the
     Cost constants (or the host) changed character. Informational, like
     all host-time figures, but worth a loud note. *)
  (match
     (old_run.Results.calibration_check, new_run.Results.calibration_check)
   with
  | None, None -> ()
  | None, Some n ->
      Printf.printf
        "\ncalibration check (new): ratio %.2f, verdict %s (no old verdict)\n"
        n.Results.v_ratio n.Results.v_verdict
  | Some o, None ->
      Printf.printf
        "\ncalibration check: old run had verdict %s, new run recorded none\n"
        o.Results.v_verdict
  | Some o, Some n ->
      Printf.printf "\ncalibration check: ratio %.2f -> %.2f, verdict %s -> %s\n"
        o.Results.v_ratio n.Results.v_ratio o.Results.v_verdict
        n.Results.v_verdict;
      if o.Results.v_verdict <> n.Results.v_verdict then
        Printf.printf
          "  WARNING: charge-constant verdict flipped (%s -> %s) — the \
           system charge constants have drifted relative to measured host \
           cost\n"
          o.Results.v_verdict n.Results.v_verdict);
  let old_cells = Hashtbl.create 64 in
  List.iter
    (fun (c : Results.cell) ->
      Hashtbl.replace old_cells (c.Results.bench, c.Results.policy) c)
    old_run.Results.cells;
  let matched = ref [] in
  let added = ref [] in
  let cycle_mismatches = ref [] in
  List.iter
    (fun (c : Results.cell) ->
      let key = (c.Results.bench, c.Results.policy) in
      match Hashtbl.find_opt old_cells key with
      | None -> added := key :: !added
      | Some old_c ->
          Hashtbl.remove old_cells key;
          if check_cycles && old_c.Results.total_cycles <> c.Results.total_cycles
          then cycle_mismatches := (key, old_c, c) :: !cycle_mismatches;
          matched := (key, old_c.Results.wall_s, c.Results.wall_s) :: !matched)
    new_run.Results.cells;
  let removed = Hashtbl.fold (fun key _ acc -> key :: acc) old_cells [] in
  let deltas =
    List.map (fun (key, o, n) -> (key, o, n, n -. o)) !matched
    |> List.sort (fun (_, _, _, a) (_, _, _, b) ->
           Float.compare (Float.abs b) (Float.abs a))
  in
  let shown = if o.all then deltas else
    (let rec take k = function
       | x :: rest when k > 0 -> x :: take (k - 1) rest
       | _ -> []
     in
     take 15 deltas)
  in
  Printf.printf "\n%-10s %-22s %9s %9s %9s %8s\n" "bench" "policy" "old ms"
    "new ms" "delta ms" "delta %";
  List.iter
    (fun ((bench, policy), o, n, d) ->
      Printf.printf "%-10s %-22s %9.1f %9.1f %+9.1f %+7.1f%%\n" bench policy
        (o *. 1e3) (n *. 1e3) (d *. 1e3)
        (if o > 0.0 then d /. o *. 100.0 else 0.0))
    shown;
  if not o.all && List.length deltas > List.length shown then
    Printf.printf "  ... %d more cells (--all to list)\n"
      (List.length deltas - List.length shown);
  let sum f = List.fold_left (fun acc (_, o, n, _) -> acc +. f o n) 0.0 deltas in
  let old_sum = sum (fun o _ -> o) and new_sum = sum (fun _ n -> n) in
  Printf.printf
    "\ntotals over %d matched cells: %.2fs -> %.2fs (%+.2fs, %+.1f%%)\n"
    (List.length deltas) old_sum new_sum (new_sum -. old_sum)
    (if old_sum > 0.0 then (new_sum -. old_sum) /. old_sum *. 100.0 else 0.0);
  List.iter
    (fun (bench, policy) ->
      Printf.printf "cell only in new run: %s/%s\n" bench policy)
    (List.rev !added);
  List.iter
    (fun (bench, policy) ->
      Printf.printf "cell only in old run: %s/%s\n" bench policy)
    removed;
  (* Server cells carry the same determinism contract: at equal scale,
     matched (bench, policy) server cells must agree on cycles and the
     latency percentiles. Runs recorded before server mode existed have
     no server section, so nothing matches and nothing is checked. *)
  let server_mismatches = ref [] in
  if check_cycles then begin
    let old_scells = Hashtbl.create 8 in
    List.iter
      (fun (s : Results.scell) ->
        Hashtbl.replace old_scells (s.Results.s_bench, s.Results.s_policy) s)
      old_run.Results.server;
    List.iter
      (fun (s : Results.scell) ->
        match
          Hashtbl.find_opt old_scells (s.Results.s_bench, s.Results.s_policy)
        with
        | Some o
          when o.Results.s_total_cycles <> s.Results.s_total_cycles
               || o.Results.s_p50 <> s.Results.s_p50
               || o.Results.s_p95 <> s.Results.s_p95
               || o.Results.s_p99 <> s.Results.s_p99 ->
            server_mismatches := (o, s) :: !server_mismatches
        | Some _ | None -> ())
      new_run.Results.server
  end;
  (* Sharded-server cells carry the determinism contract in full: for a
     given (bench, policy, shards, pool, pool_policy, sessions, period)
     configuration at equal scale, the makespan, latency percentiles and
     steal count are all pure functions of the configuration — byte-
     identical across --jobs — so any drift is a violation. Runs
     recorded before the sharded server existed have no shards section,
     so nothing matches and nothing is checked. *)
  let shard_mismatches = ref [] in
  if check_cycles then begin
    let old_hcells = Hashtbl.create 8 in
    let hkey (h : Results.hcell) =
      ( h.Results.sh_bench,
        h.Results.sh_policy,
        h.Results.sh_shards,
        h.Results.sh_pool,
        h.Results.sh_pool_policy,
        h.Results.sh_sessions,
        h.Results.sh_period )
    in
    List.iter
      (fun (h : Results.hcell) -> Hashtbl.replace old_hcells (hkey h) h)
      old_run.Results.shards;
    List.iter
      (fun (h : Results.hcell) ->
        match Hashtbl.find_opt old_hcells (hkey h) with
        | Some o
          when o.Results.sh_makespan <> h.Results.sh_makespan
               || o.Results.sh_p50 <> h.Results.sh_p50
               || o.Results.sh_p95 <> h.Results.sh_p95
               || o.Results.sh_p99 <> h.Results.sh_p99
               || o.Results.sh_steals <> h.Results.sh_steals ->
            shard_mismatches := (o, h) :: !shard_mismatches
        | Some _ | None -> ())
      new_run.Results.shards
  end;
  (* Fleet-telemetry cells carry the contract in full as well: for a
     given (bench, shards, sessions, interval) configuration at equal
     scale, every recorded figure — histogram quantiles, exact
     count/sum, flow counts, the conservation verdict and the
     order-sensitive series checksum — is byte-identical across --jobs
     and across repeated runs, so any drift is a violation. Runs
     recorded before fleet telemetry existed have no telemetry section,
     so nothing matches and nothing is checked. *)
  let telemetry_mismatches = ref [] in
  if check_cycles then begin
    let old_tcells = Hashtbl.create 8 in
    let tkey (t : Results.tcell) =
      ( t.Results.t_bench,
        t.Results.t_shards,
        t.Results.t_sessions,
        t.Results.t_interval )
    in
    List.iter
      (fun (t : Results.tcell) -> Hashtbl.replace old_tcells (tkey t) t)
      old_run.Results.telemetry;
    List.iter
      (fun (t : Results.tcell) ->
        match Hashtbl.find_opt old_tcells (tkey t) with
        | Some o when o <> t ->
            telemetry_mismatches := (o, t) :: !telemetry_mismatches
        | Some _ | None -> ())
      new_run.Results.telemetry
  end;
  (* Static warmup-ablation cells: report the per-workload
     warmup-requests movement between the two runs, and hold the cells
     to the determinism contract at equal scale. The section is
     self-contained (each cell embeds its own off/on halves, both run
     with an explicit seed setting), so it is comparable even across
     the global seed stamp. *)
  let static_mismatches = ref [] in
  (match (old_run.Results.static, new_run.Results.static) with
  | [], _ | _, [] -> ()
  | old_static, new_static ->
      Printf.printf
        "\nstatic-oracle warmup ablation (requests to steady state, \
         off -> on):\n";
      List.iter
        (fun (n : Results.pcell) ->
          match
            List.find_opt
              (fun (p : Results.pcell) ->
                p.Results.p_bench = n.Results.p_bench
                && p.Results.p_policy = n.Results.p_policy)
              old_static
          with
          | Some old_p ->
              Printf.printf
                "  %-10s old %3d -> %3d   new %3d -> %3d   (seeding delta \
                 %+d old, %+d new)\n"
                n.Results.p_bench old_p.Results.p_warmup_off
                old_p.Results.p_warmup_on n.Results.p_warmup_off
                n.Results.p_warmup_on
                (old_p.Results.p_warmup_on - old_p.Results.p_warmup_off)
                (n.Results.p_warmup_on - n.Results.p_warmup_off);
              if
                same_scale
                && (old_p.Results.p_warmup_off <> n.Results.p_warmup_off
                   || old_p.Results.p_warmup_on <> n.Results.p_warmup_on
                   || old_p.Results.p_checksum_off <> n.Results.p_checksum_off
                   || old_p.Results.p_checksum_on <> n.Results.p_checksum_on)
              then static_mismatches := (old_p, n) :: !static_mismatches
          | None ->
              Printf.printf "  %-10s (new)  %3d -> %3d\n" n.Results.p_bench
                n.Results.p_warmup_off n.Results.p_warmup_on)
        new_static);
  (* Speculation (guards-vs-guard-free) cells: report each workload's
     guard-check movement between the two runs, and hold every recorded
     figure to the determinism contract at equal scale. Like the static
     section, each cell embeds its own off/on halves with explicit
     settings, so it is comparable even across the global --speculate
     stamp. *)
  let spec_mismatches = ref [] in
  (match (old_run.Results.speculation, new_run.Results.speculation) with
  | [], _ | _, [] -> ()
  | old_spec, new_spec ->
      Printf.printf
        "\nguards-vs-guard-free ablation (guard checks, off -> on):\n";
      List.iter
        (fun (n : Results.gcell) ->
          let checks_off (g : Results.gcell) =
            g.Results.g_hits_off + g.Results.g_misses_off
          in
          let checks_on (g : Results.gcell) =
            g.Results.g_hits_on + g.Results.g_misses_on
          in
          match
            List.find_opt
              (fun (g : Results.gcell) ->
                g.Results.g_bench = n.Results.g_bench
                && g.Results.g_policy = n.Results.g_policy)
              old_spec
          with
          | Some old_g ->
              Printf.printf
                "  %-10s old %6d -> %-6d   new %6d -> %-6d   (deopts %d \
                 storm + %d invalidated)\n"
                n.Results.g_bench (checks_off old_g) (checks_on old_g)
                (checks_off n) (checks_on n) n.Results.g_storms_on
                n.Results.g_invalidated_on;
              if
                same_scale
                && (old_g.Results.g_hits_off <> n.Results.g_hits_off
                   || old_g.Results.g_misses_off <> n.Results.g_misses_off
                   || old_g.Results.g_hits_on <> n.Results.g_hits_on
                   || old_g.Results.g_misses_on <> n.Results.g_misses_on
                   || old_g.Results.g_storms_on <> n.Results.g_storms_on
                   || old_g.Results.g_invalidated_on
                      <> n.Results.g_invalidated_on
                   || old_g.Results.g_checksum_off <> n.Results.g_checksum_off
                   || old_g.Results.g_checksum_on <> n.Results.g_checksum_on)
              then spec_mismatches := (old_g, n) :: !spec_mismatches
          | None ->
              Printf.printf "  %-10s (new)  %6d -> %-6d\n" n.Results.g_bench
                (checks_off n) (checks_on n))
        new_spec);
  (* Traced component breakdowns carry the contract too: at equal scale,
     matched (bench, policy) component cells must agree on every
     component's cycle count — the per-component split is deterministic,
     not just the totals. Runs recorded without --trace have no
     components section, so nothing matches and nothing is checked. *)
  let component_mismatches = ref [] in
  if check_cycles then begin
    let old_ccells = Hashtbl.create 8 in
    List.iter
      (fun (c : Results.ccell) ->
        Hashtbl.replace old_ccells (c.Results.c_bench, c.Results.c_policy) c)
      old_run.Results.components;
    List.iter
      (fun (c : Results.ccell) ->
        match
          Hashtbl.find_opt old_ccells (c.Results.c_bench, c.Results.c_policy)
        with
        | Some o when o.Results.c_components <> c.Results.c_components ->
            component_mismatches := (o, c) :: !component_mismatches
        | Some _ | None -> ())
      new_run.Results.components
  end;
  (* The SLO gate: declared budgets are checked against the NEW run's
     recorded sections — the same numbers the determinism checks above
     hold byte-stable — so a budget can only regress when the simulated
     behaviour itself regressed. A declared budget with no recorded
     data is a violation too: a gate that silently passes because the
     section went missing is not a gate. *)
  let slo_violations = ref [] in
  List.iter
    (fun (key, budget) ->
      let max_over f = function
        | [] -> None
        | cells ->
            Some
              (List.fold_left (fun acc c -> max acc (f c)) min_int cells)
      in
      let measured =
        match key with
        | "p99" ->
            max_over
              (fun (t : Results.tcell) -> t.Results.t_hist_p99)
              new_run.Results.telemetry
        | "deopts" ->
            max_over
              (fun (t : Results.tcell) -> t.Results.t_deopts)
              new_run.Results.telemetry
        | "warmup" ->
            max_over
              (fun (p : Results.pcell) -> p.Results.p_warmup_on)
              new_run.Results.static
        | "guards" ->
            max_over
              (fun (g : Results.gcell) ->
                g.Results.g_hits_on + g.Results.g_misses_on)
              new_run.Results.speculation
        | _ -> None
      in
      match measured with
      | None ->
          slo_violations :=
            (key, budget, None) :: !slo_violations
      | Some m when m > budget ->
          slo_violations := (key, budget, Some m) :: !slo_violations
      | Some m -> Printf.printf "SLO ok: %s %d within budget %d\n" key m budget)
    o.slo;
  if
    !cycle_mismatches <> [] || !server_mismatches <> []
    || !shard_mismatches <> []
    || !telemetry_mismatches <> []
    || !static_mismatches <> []
    || !spec_mismatches <> []
    || !component_mismatches <> []
    || !slo_violations <> []
  then begin
    if !cycle_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: total_cycles changed on %d cells:\n"
        (List.length !cycle_mismatches);
      List.iter
        (fun ((bench, policy), (o : Results.cell), (n : Results.cell)) ->
          Printf.printf "  %s/%s: %d -> %d\n" bench policy
            o.Results.total_cycles n.Results.total_cycles)
        (List.rev !cycle_mismatches)
    end;
    if !server_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: server cells changed on %d cells:\n"
        (List.length !server_mismatches);
      List.iter
        (fun ((o : Results.scell), (n : Results.scell)) ->
          Printf.printf
            "  %s/%s: cycles %d -> %d, p50/p95/p99 %d/%d/%d -> %d/%d/%d\n"
            n.Results.s_bench n.Results.s_policy o.Results.s_total_cycles
            n.Results.s_total_cycles o.Results.s_p50 o.Results.s_p95
            o.Results.s_p99 n.Results.s_p50 n.Results.s_p95 n.Results.s_p99)
        (List.rev !server_mismatches)
    end;
    if !shard_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: sharded-server cells changed on %d cells:\n"
        (List.length !shard_mismatches);
      List.iter
        (fun ((o : Results.hcell), (n : Results.hcell)) ->
          Printf.printf
            "  %s/%s shards=%d pool=%d/%s: makespan %d -> %d, p50/p95/p99 \
             %d/%d/%d -> %d/%d/%d, steals %d -> %d\n"
            n.Results.sh_bench n.Results.sh_policy n.Results.sh_shards
            n.Results.sh_pool n.Results.sh_pool_policy o.Results.sh_makespan
            n.Results.sh_makespan o.Results.sh_p50 o.Results.sh_p95
            o.Results.sh_p99 n.Results.sh_p50 n.Results.sh_p95 n.Results.sh_p99
            o.Results.sh_steals n.Results.sh_steals)
        (List.rev !shard_mismatches)
    end;
    if !telemetry_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: fleet-telemetry cells changed on %d \
         cells:\n"
        (List.length !telemetry_mismatches);
      List.iter
        (fun ((o : Results.tcell), (n : Results.tcell)) ->
          Printf.printf
            "  %s shards=%d: latency p50/p90/p99 %d/%d/%d -> %d/%d/%d, \
             count %d -> %d, flows %d+%d -> %d+%d (conserved %b -> %b), \
             deopts %d -> %d, series checksum %s\n"
            n.Results.t_bench n.Results.t_shards o.Results.t_hist_p50
            o.Results.t_hist_p90 o.Results.t_hist_p99 n.Results.t_hist_p50
            n.Results.t_hist_p90 n.Results.t_hist_p99 o.Results.t_hist_count
            n.Results.t_hist_count o.Results.t_steal_flows
            o.Results.t_adopt_flows n.Results.t_steal_flows
            n.Results.t_adopt_flows o.Results.t_flow_conserved
            n.Results.t_flow_conserved o.Results.t_deopts n.Results.t_deopts
            (if o.Results.t_series_checksum = n.Results.t_series_checksum
             then "unchanged"
             else "changed"))
        (List.rev !telemetry_mismatches)
    end;
    if !static_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: static warmup-ablation cells changed on \
         %d cells:\n"
        (List.length !static_mismatches);
      List.iter
        (fun ((o : Results.pcell), (n : Results.pcell)) ->
          Printf.printf
            "  %s/%s: warmup off/on %d/%d -> %d/%d, checksums %s\n"
            n.Results.p_bench n.Results.p_policy o.Results.p_warmup_off
            o.Results.p_warmup_on n.Results.p_warmup_off n.Results.p_warmup_on
            (if
               o.Results.p_checksum_off = n.Results.p_checksum_off
               && o.Results.p_checksum_on = n.Results.p_checksum_on
             then "unchanged"
             else "changed"))
        (List.rev !static_mismatches)
    end;
    if !spec_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: guards-vs-guard-free cells changed on %d \
         cells:\n"
        (List.length !spec_mismatches);
      List.iter
        (fun ((o : Results.gcell), (n : Results.gcell)) ->
          Printf.printf
            "  %s/%s: guards off %d/%d -> %d/%d, on %d/%d -> %d/%d, deopts \
             %d+%d -> %d+%d, checksums %s\n"
            n.Results.g_bench n.Results.g_policy o.Results.g_hits_off
            o.Results.g_misses_off n.Results.g_hits_off n.Results.g_misses_off
            o.Results.g_hits_on o.Results.g_misses_on n.Results.g_hits_on
            n.Results.g_misses_on o.Results.g_storms_on
            o.Results.g_invalidated_on n.Results.g_storms_on
            n.Results.g_invalidated_on
            (if
               o.Results.g_checksum_off = n.Results.g_checksum_off
               && o.Results.g_checksum_on = n.Results.g_checksum_on
             then "unchanged"
             else "changed"))
        (List.rev !spec_mismatches)
    end;
    if !component_mismatches <> [] then begin
      Printf.printf
        "\nDETERMINISM VIOLATION: per-component breakdown changed on %d \
         cells:\n"
        (List.length !component_mismatches);
      List.iter
        (fun ((o : Results.ccell), (n : Results.ccell)) ->
          Printf.printf "  %s/%s:\n" n.Results.c_bench n.Results.c_policy;
          List.iter
            (fun (nm, cycles) ->
              let old_cycles =
                match List.assoc_opt nm o.Results.c_components with
                | Some v -> v
                | None -> 0
              in
              if old_cycles <> cycles then
                Printf.printf "    %s: %d -> %d\n" nm old_cycles cycles)
            n.Results.c_components;
          List.iter
            (fun (nm, old_cycles) ->
              if not (List.mem_assoc nm n.Results.c_components) then
                Printf.printf "    %s: %d -> (absent)\n" nm old_cycles)
            o.Results.c_components)
        (List.rev !component_mismatches)
    end;
    if !slo_violations <> [] then begin
      Printf.printf "\nSLO VIOLATION on %d budgets:\n"
        (List.length !slo_violations);
      List.iter
        (fun (key, budget, measured) ->
          match measured with
          | Some m ->
              Printf.printf "  %s: measured %d exceeds budget %d\n" key m
                budget
          | None ->
              Printf.printf
                "  %s: budget %d declared but the new run recorded no data \
                 for it\n"
                key budget)
        (List.rev !slo_violations)
    end;
    exit 1
  end
