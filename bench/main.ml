(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                 full reproduction
     dune exec bench/main.exe -- --quick      ~4x smaller workloads
     dune exec bench/main.exe -- --fig4       one artifact only
     dune exec bench/main.exe -- --ablations  design-choice ablations
     dune exec bench/main.exe -- --serve      server-mode (virtual threads)
     dune exec bench/main.exe -- --serve --shards 1,4   sharded-server cells
     dune exec bench/main.exe -- --sessions N sessions per sharded cell
     dune exec bench/main.exe -- --trace      traced per-component sweep
     dune exec bench/main.exe -- --deopt      guards-vs-guard-free ablation
     dune exec bench/main.exe -- --speculate  guard-free speculation on
     dune exec bench/main.exe -- --micro      bechamel microbenchmarks
     dune exec bench/main.exe -- --jobs 8     domain-parallel driver
     dune exec bench/main.exe -- --no-native-tier   interpreter tier only
     dune exec bench/main.exe -- --static-seed   static pre-warm oracle on
     dune exec bench/main.exe -- --json       append run to BENCH_results.json
     dune exec bench/main.exe -- --json-out F append run to F instead
     dune exec bench/compare.exe A.json B.json   diff two results files

   Everything is deterministic: identical invocations print identical
   numbers, whatever --jobs is — cells fan out across domains but are
   collected and printed in serial order. Only wall-clock (recorded in
   BENCH_results.json) depends on the parallelism. *)

open Acsi_core
module Policy = Acsi_policy.Policy
module Workloads = Acsi_workloads.Workloads

type mode = {
  mutable table1 : bool;
  mutable fig4 : bool;
  mutable fig5 : bool;
  mutable fig6 : bool;
  mutable term_stats : bool;
  mutable summary : bool;
  mutable ablations : bool;
  mutable serve : bool;
  mutable trace : bool;
  mutable deopt : bool;
  mutable micro : bool;
  mutable shards : int list;
      (* shard counts for the sharded-server section (--serve) *)
  mutable sessions : int;
      (* open-loop sessions per sharded cell, before scale_factor *)
  mutable scale_factor : float;
  mutable jobs : int;
  mutable json : bool;
  mutable json_path : string;
}

(* Execution-tier selection for every run the harness performs.
   --no-native-tier keeps all methods on the interpreter tier; the
   printed numbers are byte-identical either way (the closure tier is a
   host-speed change only — test_tier pins this), so the flag exists to
   measure the host-time difference and to let compare.exe label runs
   with the tier they executed on. *)
let native_tier = ref true

let tier_name () = if !native_tier then "closure" else "interp"

(* --static-seed: run every cell with the static pre-warm oracle on
   (summaries drive inlining at method install, before any sample).
   Cycle counts legitimately change, so the run record is stamped with
   the flag and compare.exe refuses a cross-seed comparison at equal
   scale unless told otherwise — same shape as the tier stamp, except
   seeding is a measured behaviour change, not a host-speed one. *)
let static_seed = ref false

(* --speculate: run every cell with guard-free speculative inlining and
   the deoptimization machinery on (pre-existence-proven receivers at
   loaded-CHA-monomorphic sites inline with no guard; class loads and
   guard storms revert and deoptimize). Output checksums are unchanged
   by construction, but cycle counts legitimately move, so the run
   record is stamped and compare.exe refuses a cross-spec comparison at
   equal scale unless told otherwise — the static-seed shape again. *)
let speculate = ref false

let config ~policy =
  let cfg = Config.default ~policy in
  let cfg =
    if !native_tier then cfg
    else
      {
        cfg with
        Config.aos =
          { cfg.Config.aos with Acsi_aos.System.native_tier = false };
      }
  in
  let cfg =
    if not !static_seed then cfg
    else
      {
        cfg with
        Config.aos = { cfg.Config.aos with Acsi_aos.System.static_seed = true };
      }
  in
  if not !speculate then cfg
  else
    {
      cfg with
      Config.aos =
        {
          cfg.Config.aos with
          Acsi_aos.System.speculate = true;
          enable_osr = true;
        };
    }

let parse_args () =
  let m =
    {
      table1 = false;
      fig4 = false;
      fig5 = false;
      fig6 = false;
      term_stats = false;
      summary = false;
      ablations = false;
      serve = false;
      trace = false;
      deopt = false;
      micro = false;
      shards = [ 1; 2; 4 ];
      sessions = 1_000_000;
      scale_factor = 1.0;
      jobs = Parallel.available_cores ();
      json = false;
      json_path = "BENCH_results.json";
    }
  in
  let any = ref false in
  let rec go = function
    | [] -> ()
    | "--table1" :: rest ->
        m.table1 <- true;
        any := true;
        go rest
    | "--fig4" :: rest ->
        m.fig4 <- true;
        any := true;
        go rest
    | "--fig5" :: rest ->
        m.fig5 <- true;
        any := true;
        go rest
    | "--fig6" :: rest ->
        m.fig6 <- true;
        any := true;
        go rest
    | "--term-stats" :: rest ->
        m.term_stats <- true;
        any := true;
        go rest
    | "--summary" :: rest ->
        m.summary <- true;
        any := true;
        go rest
    | "--ablations" :: rest ->
        m.ablations <- true;
        any := true;
        go rest
    | "--serve" :: rest ->
        m.serve <- true;
        any := true;
        go rest
    | "--trace" :: rest ->
        m.trace <- true;
        any := true;
        go rest
    | "--deopt" :: rest ->
        m.deopt <- true;
        any := true;
        go rest
    | "--micro" :: rest ->
        m.micro <- true;
        any := true;
        go rest
    | "--shards" :: v :: rest ->
        (* Comma-separated shard counts for the --serve sharded
           section, e.g. --shards 4 or --shards 1,8. *)
        let parts = String.split_on_char ',' v in
        let parsed = List.filter_map int_of_string_opt parts in
        if
          List.length parsed = List.length parts
          && parsed <> []
          && List.for_all (fun n -> n >= 1 && n <= 64) parsed
        then m.shards <- parsed
        else begin
          Format.eprintf "invalid --shards value %s@." v;
          exit 2
        end;
        go rest
    | "--sessions" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> m.sessions <- n
        | Some _ | None ->
            Format.eprintf "invalid --sessions value %s@." v;
            exit 2);
        go rest
    | "--quick" :: rest ->
        m.scale_factor <- 0.25;
        go rest
    | "--scale-factor" :: f :: rest ->
        (match float_of_string_opt f with
        | Some v when v > 0.0 -> m.scale_factor <- v
        | Some _ | None ->
            Format.eprintf "invalid --scale-factor value %s@." f;
            exit 2);
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v -> m.jobs <- max 1 v
        | None ->
            Format.eprintf "invalid --jobs value %s@." n;
            exit 2);
        go rest
    | "--native-tier" :: rest ->
        native_tier := true;
        go rest
    | "--no-native-tier" :: rest ->
        native_tier := false;
        go rest
    | "--static-seed" :: rest ->
        static_seed := true;
        go rest
    | "--speculate" :: rest ->
        speculate := true;
        go rest
    | "--json" :: rest ->
        m.json <- true;
        go rest
    | "--json-out" :: p :: rest ->
        m.json <- true;
        m.json_path <- p;
        go rest
    | arg :: _ ->
        Format.eprintf "unknown argument %s@." arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  if not !any then begin
    (* Default: the full reproduction (micro excluded; it measures the
       harness, not the paper). *)
    m.table1 <- true;
    m.fig4 <- true;
    m.fig5 <- true;
    m.fig6 <- true;
    m.term_stats <- true;
    m.summary <- true;
    m.ablations <- true;
    m.serve <- true;
    m.trace <- true;
    m.deopt <- true;
    m.json <- true
  end;
  m

let hr title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* --- the main sweep, shared by table1/fig4/fig5/fig6/summary --- *)

(* Runs are deterministic, so a default-config (benchmark, policy) cell
   the sweep already executed would reproduce byte-identical results if
   re-run. The ablation and representation sections re-visit a handful of
   such cells; this cache lets them reuse the sweep's results instead.
   Only the cells those sections actually re-visit are retained. *)
let run_cache : (string * string, Runtime.result) Hashtbl.t = Hashtbl.create 16
let run_cache_mutex = Mutex.create ()

let cache_worthy bench policy =
  match policy with
  | Policy.Fixed 5 -> true (* the termination-stats section, every bench *)
  | Policy.Context_insensitive | Policy.Fixed (3 | 4) -> (
      (* the ablation / representation sections *)
      match bench with "db" | "javac" | "jbb" -> true | _ -> false)
  | _ -> false

let remember ~bench ~policy result =
  if cache_worthy bench policy then begin
    Mutex.lock run_cache_mutex;
    Hashtbl.replace run_cache (bench, Policy.to_string policy) result;
    Mutex.unlock run_cache_mutex
  end

(* Default-config run of [program] under [policy], served from the cache
   when the sweep already ran this cell. The sweep collects termination
   stats (see [sweep] below); that only fills counters on the trace
   listener, so a cached result is interchangeable with a fresh
   default-config run for everything the consuming sections read
   (metrics, profiles). [cfg] overrides the fallback configuration for
   callers that need those counters populated on a cache miss. *)
let cached_run ?cfg bench policy program =
  Mutex.lock run_cache_mutex;
  let hit = Hashtbl.find_opt run_cache (bench, Policy.to_string policy) in
  Mutex.unlock run_cache_mutex;
  match hit with
  | Some r -> r
  | None ->
      let cfg =
        match cfg with Some c -> c | None -> config ~policy
      in
      let r = Runtime.run cfg program in
      remember ~bench ~policy r;
      r

let the_sweep = ref None

let sweep mode =
  match !the_sweep with
  | Some s -> s
  | None ->
      let benches =
        List.map
          (fun (name, program) -> { Experiment.name; program })
          (Workloads.build_all ~scale_factor:mode.scale_factor ())
      in
      let cfg = config ~policy:Policy.Context_insensitive in
      (* Termination-stat collection only increments counters on the
         trace listener — no virtual-time or decision effect — so every
         figure is unchanged, and the fixed(max=5) cells double as the
         termination-stats section's runs. *)
      let cfg =
        {
          cfg with
          Config.aos =
            {
              cfg.Config.aos with
              Acsi_aos.System.collect_termination_stats = true;
            };
        }
      in
      let s =
        Experiment.run_sweep
          ~progress:(fun msg -> Format.eprintf "  [sweep] %s@." msg)
          ~jobs:mode.jobs ~cell_hook:remember cfg ~benches
          ~policies:Policy.paper_sweep
      in
      the_sweep := Some s;
      s

(* --- §4 in-text termination statistics --- *)

let term_stats mode =
  hr "Trace-termination statistics (paper section 4, in-text numbers)";
  Format.printf
    "Collected with the trace listener instrumented, under fixed(max=5).@.\
     Paper: ~20%% of callees immediately parameterless; 50-80%% hit a@.\
     parameterless method within 5 levels; 50-80%% hit a class (instance)@.\
     method within 2 edges; ~50%% need 4+ edges to reach a large method.@.@.";
  Format.printf "%-10s %10s %14s %12s %12s %12s@." "bench" "samples"
    "callee-p-less" "p-less<=5" "class<=2" "large>=4";
  (* One cell per benchmark; each returns its formatted row, printed in
     benchmark order below regardless of which domain ran it. *)
  let rows =
    Parallel.map ~jobs:mode.jobs
      (fun (name, program) ->
        let cfg = config ~policy:(Policy.Fixed 5) in
        let cfg =
          {
            cfg with
            Config.aos =
              {
                cfg.Config.aos with
                Acsi_aos.System.collect_termination_stats = true;
              };
          }
        in
        let result = cached_run ~cfg name (Policy.Fixed 5) program in
        let st = Acsi_aos.System.trace_stats result.Runtime.sys in
        let n = max 1 st.Acsi_aos.Trace_listener.samples in
        let pct x = 100.0 *. float_of_int x /. float_of_int n in
        Format.asprintf "%-10s %10d %13.1f%% %11.1f%% %11.1f%% %11.1f%%@." name
          st.Acsi_aos.Trace_listener.samples
          (pct st.Acsi_aos.Trace_listener.callee_parameterless)
          (pct st.Acsi_aos.Trace_listener.param_stop_within_5)
          (pct st.Acsi_aos.Trace_listener.class_stop_within_2)
          (pct st.Acsi_aos.Trace_listener.large_needs_4))
      (Workloads.build_all ~scale_factor:mode.scale_factor ())
  in
  List.iter print_string rows

(* --- ablations of the design choices DESIGN.md calls out --- *)

let ablations mode =
  hr "Ablations (DESIGN.md: key design decisions)";
  let interesting = [ "db"; "javac"; "jbb" ] in
  let programs =
    List.filter
      (fun (n, _) -> List.mem n interesting)
      (Workloads.build_all ~scale_factor:mode.scale_factor ())
  in
  let run ?(tweak_aos = fun c -> c) ?(tweak_oracle = fun c -> c) program
      policy =
    let cfg = config ~policy in
    let aos = tweak_aos cfg.Config.aos in
    let aos =
      {
        aos with
        Acsi_aos.System.oracle_config =
          tweak_oracle aos.Acsi_aos.System.oracle_config;
      }
    in
    (Runtime.run { cfg with Config.aos } program).Runtime.metrics
  in
  let show fmt name base m =
    Format.fprintf fmt
      "  %-32s speedup %+7.2f%%  code %+8.2f%%  compile %+8.2f%%@." name
      (Metrics.speedup_pct ~baseline:base m)
      (Metrics.code_size_change_pct ~baseline:base m)
      (Metrics.compile_time_change_pct ~baseline:base m)
  in
  (* Each benchmark's block is many serial runs (every row shares the
     block's baseline), so the blocks themselves are the parallel unit:
     one domain per benchmark, output buffered and printed in order. *)
  let blocks =
    Parallel.map ~jobs:mode.jobs
      (fun (name, program) ->
        let buf = Buffer.create 1024 in
        let fmt = Format.formatter_of_buffer buf in
        let show = show fmt in
        Format.fprintf fmt "@.%s (deltas vs context-insensitive baseline):@."
          name;
      let base =
        (cached_run name Policy.Context_insensitive program).Runtime.metrics
      in
      show "fixed(3), full system" base
        (cached_run name (Policy.Fixed 3) program).Runtime.metrics;
      show "fixed(3), exact-match oracle" base
        (run
           ~tweak_oracle:(fun c ->
             { c with Acsi_jit.Oracle.exact_match_only = true })
           program (Policy.Fixed 3));
      show "fixed(3), rules merged to edges" base
        (run
           ~tweak_aos:(fun c ->
             { c with Acsi_aos.System.merge_rules_to_edges = true })
           program (Policy.Fixed 3));
      show "fixed(3), time-based tracing" base
        (run
           ~tweak_aos:(fun c ->
             { c with Acsi_aos.System.trace_on_timer = true })
           program (Policy.Fixed 3));
      List.iter
        (fun threshold ->
          show
            (Printf.sprintf "fixed(3), hot threshold %.1f%%"
               (100.0 *. threshold))
            base
            (run
               ~tweak_aos:(fun c ->
                 { c with Acsi_aos.System.hot_edge_threshold = threshold })
               program (Policy.Fixed 3)))
        [ 0.005; 0.03 ];
      show "fixed(3), no peephole optimizer" base
        (run
           ~tweak_oracle:(fun c -> { c with Acsi_jit.Oracle.peephole = false })
           program (Policy.Fixed 3));
      show "fixed(3), with OSR (extension)" base
        (run
           ~tweak_aos:(fun c -> { c with Acsi_aos.System.enable_osr = true })
           program (Policy.Fixed 3));
      (* Offline profile-directed inlining: seed the run with the profile a
         previous identical run collected (see Acsi_profile.Persist). *)
      let cfg = config ~policy:(Policy.Fixed 3) in
      let collect = cached_run name (Policy.Fixed 3) program in
      let profile =
        Acsi_profile.Persist.of_string
          (Acsi_profile.Persist.to_string
             (Acsi_aos.System.dcg collect.Runtime.sys))
      in
      show "fixed(3), offline-seeded profile" base
        (Runtime.run ~profile cfg program).Runtime.metrics;
        Format.pp_print_flush fmt ();
        Buffer.contents buf)
      programs
  in
  List.iter print_string blocks;
  (* Representation comparison (paper section 6's future work): the flat
     trace table vs the calling-context tree on each benchmark's final
     profile. *)
  Format.printf
    "@.Profile representation sizes under fixed(max=4), flat trace-table entries vs CCT nodes:@.";
  let rows =
    Parallel.map ~jobs:mode.jobs
      (fun (name, program) ->
        let result = cached_run name (Policy.Fixed 4) program in
        let dcg = Acsi_aos.System.dcg result.Runtime.sys in
        let cct = Acsi_profile.Cct.of_dcg dcg in
        Format.asprintf "  %-10s flat=%4d entries   cct=%4d nodes (depth %d)@."
          name
          (Acsi_profile.Dcg.size dcg)
          (Acsi_profile.Cct.node_count cct)
          (Acsi_profile.Cct.max_depth cct))
      programs
  in
  List.iter print_string rows

(* --- extension: the §7 "more object-oriented programs" suite --- *)

let extended mode =
  hr "Extension: larger object-oriented programs (paper section 7)";
  (* Same shape as the ablations: one domain per program, buffered. *)
  let blocks =
    Parallel.map ~jobs:mode.jobs
      (fun (spec : Workloads.spec) ->
        let buf = Buffer.create 1024 in
        let fmt = Format.formatter_of_buffer buf in
        let scale =
          max 1
            (int_of_float
               (mode.scale_factor *. float_of_int spec.Workloads.default_scale))
        in
        let program = spec.Workloads.build ~scale in
        let base =
          (Runtime.run (config ~policy:Policy.Context_insensitive)
             program)
            .Runtime.metrics
        in
        Format.fprintf fmt "%s (%s):@." spec.Workloads.name
          spec.Workloads.description;
        List.iter
          (fun policy ->
            let m =
              (Runtime.run (config ~policy) program).Runtime.metrics
            in
            Format.fprintf fmt
              "  %-18s speedup %+7.2f%%  code %+8.2f%%  compile %+8.2f%%               guards %d/%d@."
              (Policy.to_string policy)
              (Metrics.speedup_pct ~baseline:base m)
              (Metrics.code_size_change_pct ~baseline:base m)
              (Metrics.compile_time_change_pct ~baseline:base m)
              m.Metrics.guard_hits m.Metrics.guard_misses)
          Policy.[ Fixed 2; Fixed 4; Parameterless 4; Hybrid_param_large 4 ];
        Format.pp_print_flush fmt ();
        Buffer.contents buf)
      Workloads.extended
  in
  List.iter print_string blocks

(* --- server mode: virtual-threaded request workloads --- *)

(* Three benchmarks served as closed-loop request workloads over one
   shared VM/AOS each, with the background compiler on. Every number
   printed (and recorded to the results file) is deterministic: the
   workloads are independent cells fanned out with Parallel.map and
   collected in order, so --jobs does not change the output. *)
let serve_mode mode =
  hr "Server mode (virtual threads, background compilation)";
  let policy = Policy.Fixed 3 in
  let cells =
    Parallel.map ~jobs:mode.jobs
      (fun name ->
        let spec = Workloads.find name in
        let scale =
          max 1
            (int_of_float
               (mode.scale_factor *. float_of_int spec.Workloads.default_scale))
        in
        let program = spec.Workloads.build ~scale in
        let result =
          Acsi_server.Server.run
            ~mode:
              (Acsi_server.Server.Closed
                 { clients = 4; requests_per_client = 6; think = 50_000 })
            ~name (config ~policy) program
        in
        let s = result.Acsi_server.Server.summary in
        (* The warmup curve as a sparkline (mean latency per window,
           high blocks = slow cold windows) next to the telemetry
           histogram's quantiles — all virtual-clock figures, so the
           panel is byte-stable like the summary above it. *)
        let tl = result.Acsi_server.Server.telemetry in
        let curve =
          Acsi_obs.Timeseries.spark
            (Array.of_list
               (List.map
                  (fun (w : Acsi_server.Server.window) ->
                    int_of_float w.Acsi_server.Server.w_mean_latency)
                  result.Acsi_server.Server.windows))
        in
        let lat = tl.Acsi_server.Server.tl_latency in
        let text =
          Format.asprintf
            "%a@.  warmup curve %s  (mean latency per window)  hist p50 %d \
             p90 %d p99 %d over %d requests@.@."
            Acsi_server.Server.pp_summary s curve
            (Acsi_obs.Hist.quantile lat 50.0)
            (Acsi_obs.Hist.quantile lat 90.0)
            (Acsi_obs.Hist.quantile lat 99.0)
            (Acsi_obs.Hist.count lat)
        in
        let cell =
          {
            Results.s_bench = name;
            s_policy = s.Acsi_server.Server.sv_policy;
            s_requests = s.Acsi_server.Server.sv_requests;
            s_total_cycles = s.Acsi_server.Server.sv_total_cycles;
            s_throughput_rpmc = s.Acsi_server.Server.sv_throughput_rpmc;
            s_p50 = s.Acsi_server.Server.sv_p50;
            s_p95 = s.Acsi_server.Server.sv_p95;
            s_p99 = s.Acsi_server.Server.sv_p99;
          }
        in
        (text, cell))
      [ "db"; "jess"; "compress" ]
  in
  List.iter (fun (text, _) -> print_string text) cells;
  List.map snd cells

(* --- sharded server: N virtual processors, work stealing --- *)

(* The session workload served open-loop across 1, 2 and 4 virtual
   processors (override the list with --shards, the load with
   --sessions). Cells run serially at top level: Acsi_server.Shards
   parallelises *inside* a cell — disjoint shards fan out across host
   domains between virtual-time barriers — and its figures are
   --jobs-independent by construction, so stdout stays byte-stable.

   The arrival period is fixed where one shard saturates (~3x
   overloaded: queueing delay dominates p50) while four shards keep up
   (p50 is approximately the bare service time). The throughput ratio
   and that latency contrast between the cells are the scaling story;
   every recorded figure lands in the results file's "shards" section,
   where compare.exe holds it to the determinism contract. *)
let shard_mode mode =
  hr "Sharded server (virtual processors, work stealing, compiler pool)";
  let policy = Policy.Fixed 3 in
  let spec = Workloads.find "session" in
  (* Scale 1 on purpose (not the spec's default_scale): the shortest
     session maximises sessions per host-second, and millions of tiny
     sessions are exactly the load the sharded tier exists for. *)
  let program = spec.Workloads.build ~scale:1 in
  let sessions =
    max 1000 (int_of_float (mode.scale_factor *. float_of_int mode.sessions))
  in
  let period = 450 in
  List.map
    (fun shards ->
      let result =
        Acsi_server.Shards.run ~jobs:mode.jobs ~pool:2
          ~pool_policy:Acsi_aos.System.Hot_first ~shards ~sessions ~period
          ~name:spec.Workloads.name (config ~policy) program
      in
      let s = result.Acsi_server.Shards.summary in
      Format.printf "%a@.@." Acsi_server.Shards.pp_summary s;
      (* Fleet-telemetry panel: per-shard live-session sparklines, the
         latency histogram's quantiles, and the flow-arrow counts with
         the conservation verdict — all virtual-clock figures, so the
         panel is byte-stable like the summary above it. *)
      let tel = result.Acsi_server.Shards.telemetry in
      let lat = tel.Acsi_server.Shards.tel_latency_all in
      let p q = Acsi_obs.Hist.quantile lat q in
      let steal_flows = Acsi_server.Shards.flow_pairs tel Acsi_server.Shards.Steal in
      let adopt_flows = Acsi_server.Shards.flow_pairs tel Acsi_server.Shards.Adopt in
      let deopt_flows =
        Acsi_server.Shards.flow_pairs tel Acsi_server.Shards.Deopt
        + Acsi_server.Shards.flow_pairs tel Acsi_server.Shards.Invalidate
      in
      let conserved = Acsi_server.Shards.flows_conserved tel in
      Format.printf
        "  telemetry: latency p50/p90/p99 %d/%d/%d over %d sessions, \
         compile-wait p99 %d, deopt-gap p99 %d@."
        (p 50.0) (p 90.0) (p 99.0) (Acsi_obs.Hist.count lat)
        (Acsi_obs.Hist.quantile tel.Acsi_server.Shards.tel_compile_wait 99.0)
        (Acsi_obs.Hist.quantile tel.Acsi_server.Shards.tel_deopt_gap 99.0);
      Format.printf "  flows: %d steal + %d adopt + %d deopt, conserved: %s@."
        steal_flows adopt_flows deopt_flows
        (if conserved then "yes" else "NO");
      Array.iteri
        (fun i series ->
          Format.printf "  shard%d live %s@." i
            (Acsi_obs.Timeseries.sparkline series "live"))
        tel.Acsi_server.Shards.tel_series;
      Format.printf "@.";
      let series_checksum =
        Array.fold_left
          (fun acc series ->
            ((acc * 31) + Acsi_obs.Timeseries.checksum series) land max_int)
          17
          tel.Acsi_server.Shards.tel_series
      in
      let deopts =
        Array.fold_left
          (fun acc series -> acc + Acsi_obs.Timeseries.last series "deopts")
          0
          tel.Acsi_server.Shards.tel_series
      in
      let tcell =
        {
          Results.t_bench = s.Acsi_server.Shards.sh_workload;
          t_shards = s.Acsi_server.Shards.sh_shards;
          t_sessions = s.Acsi_server.Shards.sh_sessions;
          t_interval = tel.Acsi_server.Shards.tel_interval;
          t_hist_p50 = p 50.0;
          t_hist_p90 = p 90.0;
          t_hist_p99 = p 99.0;
          t_hist_count = Acsi_obs.Hist.count lat;
          t_hist_sum = Acsi_obs.Hist.sum lat;
          t_compile_wait_p99 =
            Acsi_obs.Hist.quantile tel.Acsi_server.Shards.tel_compile_wait
              99.0;
          t_deopt_gap_p99 =
            Acsi_obs.Hist.quantile tel.Acsi_server.Shards.tel_deopt_gap 99.0;
          t_steal_flows = steal_flows;
          t_adopt_flows = adopt_flows;
          t_flow_conserved = conserved;
          t_deopts = deopts;
          t_series_checksum = series_checksum;
        }
      in
      ( {
        Results.sh_bench = s.Acsi_server.Shards.sh_workload;
        sh_policy = s.Acsi_server.Shards.sh_policy;
        sh_shards = s.Acsi_server.Shards.sh_shards;
        sh_pool = s.Acsi_server.Shards.sh_pool;
        sh_pool_policy = s.Acsi_server.Shards.sh_pool_policy;
        sh_sessions = s.Acsi_server.Shards.sh_sessions;
        sh_period = s.Acsi_server.Shards.sh_period;
        sh_makespan = s.Acsi_server.Shards.sh_makespan;
        sh_throughput_spmc = s.Acsi_server.Shards.sh_throughput_spmc;
        sh_p50 = s.Acsi_server.Shards.sh_p50;
        sh_p95 = s.Acsi_server.Shards.sh_p95;
        sh_p99 = s.Acsi_server.Shards.sh_p99;
        sh_steals = s.Acsi_server.Shards.sh_steals;
        sh_fairness = s.Acsi_server.Shards.sh_fairness;
          sh_published = s.Acsi_server.Shards.sh_published;
          sh_adopted = s.Acsi_server.Shards.sh_adopted;
        },
        tcell ))
    mode.shards
  |> List.split

(* --- static pre-warm oracle: the warmup ablation (--serve) --- *)

(* Each serve workload run twice — static_seed off, then on — as a
   closed-loop request workload of tiny requests (scale 1 on purpose,
   like the sharded section: the warmup knee only shows when a request
   is small next to the compile work, and the cells stay identical in
   --quick and full runs). The claim under test is the paper's class-
   load-time gambit: summaries computed before the first request let
   the system install optimized code before any sample exists, so
   steady-state latency arrives earlier. Checksums must agree wherever
   requests do not interleave output (the checksum is order-sensitive;
   jess and jbb interleave, which the table reports honestly). *)
let static_oracle_mode mode =
  hr "Static pre-warm oracle (summary-seeded inlining, warmup ablation)";
  let policy = Policy.Fixed 3 in
  let serve ~seeded name program =
    let cfg = config ~policy in
    let cfg =
      {
        cfg with
        Config.aos = { cfg.Config.aos with Acsi_aos.System.static_seed = seeded };
      }
    in
    (Acsi_server.Server.run
       ~mode:
         (Acsi_server.Server.Closed
            { clients = 4; requests_per_client = 16; think = 50_000 })
       ~name cfg program)
      .Acsi_server.Server.summary
  in
  let cells =
    Parallel.map ~jobs:mode.jobs
      (fun name ->
        let spec = Workloads.find name in
        let program = spec.Workloads.build ~scale:1 in
        let off = serve ~seeded:false name program in
        let on_ = serve ~seeded:true name program in
        {
          Results.p_bench = name;
          p_policy = off.Acsi_server.Server.sv_policy;
          p_requests = off.Acsi_server.Server.sv_requests;
          p_warmup_off = off.Acsi_server.Server.sv_warmup_requests;
          p_warmup_on = on_.Acsi_server.Server.sv_warmup_requests;
          p_steady_off = off.Acsi_server.Server.sv_steady_latency;
          p_steady_on = on_.Acsi_server.Server.sv_steady_latency;
          p_checksum_off = off.Acsi_server.Server.sv_output_checksum;
          p_checksum_on = on_.Acsi_server.Server.sv_output_checksum;
        })
      [ "db"; "jess"; "compress"; "jack"; "javac"; "jbb"; "session" ]
  in
  Format.printf "%-10s %8s %11s %11s %7s %12s %12s  %s@." "bench" "requests"
    "warmup-off" "warmup-on" "delta" "steady-off" "steady-on" "checksum";
  List.iter
    (fun (p : Results.pcell) ->
      Format.printf "%-10s %8d %11d %11d %+7d %12.0f %12.0f  %s@."
        p.Results.p_bench p.Results.p_requests p.Results.p_warmup_off
        p.Results.p_warmup_on
        (p.Results.p_warmup_on - p.Results.p_warmup_off)
        p.Results.p_steady_off p.Results.p_steady_on
        (if p.Results.p_checksum_off = p.Results.p_checksum_on then
           "identical"
         else "differs (interleaved output)"))
    cells;
  let improved =
    List.length
      (List.filter
         (fun (p : Results.pcell) ->
           p.Results.p_warmup_on < p.Results.p_warmup_off
           && p.Results.p_checksum_off = p.Results.p_checksum_on)
         cells)
  in
  Format.printf
    "@.%d of %d workloads reach steady state earlier with the static oracle \
     (identical output)@."
    improved (List.length cells);
  cells

(* --- guards vs guard-free: the speculative-inlining ablation --- *)

(* Each panel workload run twice — speculation off, then on — at its
   full default scale (fixed on purpose, like the sharded section: the
   speculative compile has to land before the hot phase ends for the
   guard-count contrast to be visible, so the cells stay identical in
   --quick and full runs). The claim under test is Detlefs & Agesen's:
   at loaded-CHA-monomorphic sites whose receiver provably pre-exists
   the activation, the inline guard can be dropped entirely, and class
   loading plus deoptimization — not a method test per dispatch — pays
   for the speculation. Output checksums must match on every row; a
   mismatch means the deopt machinery changed program semantics, and
   the harness aborts. *)
let deopt_panel mode =
  hr "Guards vs guard-free speculation (pre-existence + deoptimization)";
  let policy = Policy.Fixed 3 in
  let guard_cost = Acsi_vm.Cost.default.Acsi_vm.Cost.guard in
  let cells =
    Parallel.map ~jobs:mode.jobs
      (fun name ->
        let spec = Workloads.find name in
        let program = spec.Workloads.build ~scale:spec.Workloads.default_scale in
        let half ~spec_on =
          let cfg = config ~policy in
          let cfg =
            {
              cfg with
              Config.aos =
                {
                  cfg.Config.aos with
                  Acsi_aos.System.speculate = spec_on;
                  enable_osr =
                    (spec_on || cfg.Config.aos.Acsi_aos.System.enable_osr);
                };
            }
          in
          (Runtime.run cfg program).Runtime.metrics
        in
        let off = half ~spec_on:false in
        let on_ = half ~spec_on:true in
        {
          Results.g_bench = name;
          g_policy = Policy.to_string policy;
          g_hits_off = off.Metrics.guard_hits;
          g_misses_off = off.Metrics.guard_misses;
          g_hits_on = on_.Metrics.guard_hits;
          g_misses_on = on_.Metrics.guard_misses;
          g_storms_on = on_.Metrics.deopt_guard;
          g_invalidated_on = on_.Metrics.deopt_invalidate;
          g_cycles_off = off.Metrics.total_cycles;
          g_cycles_on = on_.Metrics.total_cycles;
          g_checksum_off = off.Metrics.output_checksum;
          g_checksum_on = on_.Metrics.output_checksum;
        })
      [ "javac"; "jack"; "jbb"; "dispatch" ]
  in
  Format.printf "%-10s %15s %15s %12s %12s %13s %s@." "bench" "guards-off"
    "guards-on" "guard-cyc-off" "guard-cyc-on" "deopts-on" "checksum";
  List.iter
    (fun (g : Results.gcell) ->
      let checks_off = g.Results.g_hits_off + g.Results.g_misses_off in
      let checks_on = g.Results.g_hits_on + g.Results.g_misses_on in
      Format.printf "%-10s %7d/%-7d %7d/%-7d %12d %12d %5d st %3d inv  %s@."
        g.Results.g_bench g.Results.g_hits_off g.Results.g_misses_off
        g.Results.g_hits_on g.Results.g_misses_on (checks_off * guard_cost)
        (checks_on * guard_cost) g.Results.g_storms_on
        g.Results.g_invalidated_on
        (if g.Results.g_checksum_off = g.Results.g_checksum_on then
           "identical"
         else "DIFFERS");
      if g.Results.g_checksum_off <> g.Results.g_checksum_on then begin
        Format.eprintf
          "SEMANTIC VIOLATION: %s output checksum changed under \
           speculation (%d vs %d)@."
          g.Results.g_bench g.Results.g_checksum_off g.Results.g_checksum_on;
        exit 1
      end)
    cells;
  let reclaimed =
    List.fold_left
      (fun acc (g : Results.gcell) ->
        acc
        + ((g.Results.g_hits_off + g.Results.g_misses_off
            - g.Results.g_hits_on - g.Results.g_misses_on)
          * guard_cost))
      0 cells
  in
  Format.printf
    "@.%d guard cycles reclaimed across the panel (identical output \
     everywhere)@."
    reclaimed;
  cells

(* --- traced sweep: per-component overhead from tracer spans --- *)

(* Figure-6 ground truth, measured the hard way: re-run a handful of
   cells with the structured tracer on and reconcile each AOS
   component's summed span durations against its Accounting total —
   exact equality, or the harness aborts. The breakdowns are printed
   and recorded to the results file ("components" section) so
   compare.exe can flag any drift between two runs at the same scale.
   Tracing is off-clock (no probe cost), so every cell's total_cycles
   is identical to its untraced twin in the main sweep. *)
let traced_components mode =
  hr "Traced per-component overhead (tracer spans vs accounting)";
  let benches = [ "db"; "javac"; "jbb" ] in
  let policies =
    Policy.[ Context_insensitive; Fixed 3; Hybrid_param_large 4 ]
  in
  let cells =
    Parallel.map ~jobs:mode.jobs
      (fun (bench, policy) ->
        let spec = Workloads.find bench in
        let scale =
          max 1
            (int_of_float
               (mode.scale_factor *. float_of_int spec.Workloads.default_scale))
        in
        let program = spec.Workloads.build ~scale in
        let cfg = config ~policy in
        let cfg =
          {
            cfg with
            Config.aos =
              {
                cfg.Config.aos with
                Acsi_aos.System.obs =
                  {
                    Acsi_obs.Control.off with
                    Acsi_obs.Control.trace = true;
                    capacity = 1 lsl 20;
                  };
              };
          }
        in
        let result = Runtime.run ~calibrate:true cfg program in
        let sys = result.Runtime.sys in
        let tracer = Acsi_aos.System.tracer sys in
        let totals = Acsi_obs.Export.track_totals tracer in
        let acct = Acsi_aos.System.accounting sys in
        let rows =
          List.map
            (fun c ->
              let nm = Acsi_aos.Accounting.component_name c in
              let acct_v = Acsi_aos.Accounting.get acct c in
              let span_v =
                match List.assoc_opt nm totals with Some v -> v | None -> 0
              in
              if span_v <> acct_v && Acsi_obs.Tracer.dropped tracer = 0
              then begin
                Format.eprintf
                  "RECONCILIATION FAILURE: %s/%s %s spans=%d accounting=%d@."
                  bench (Policy.to_string policy) nm span_v acct_v;
                exit 1
              end;
              (nm, acct_v))
            Acsi_aos.Accounting.all_components
        in
        let text =
          Format.asprintf "%s / %s:@.%a@.@." bench (Policy.to_string policy)
            (Acsi_obs.Export.pp_breakdown
               ~total:result.Runtime.metrics.Metrics.total_cycles)
            rows
        in
        ( text,
          {
            Results.c_bench = bench;
            c_policy = Policy.to_string policy;
            c_components = rows;
          },
          Acsi_vm.Interp.calibration result.Runtime.vm ))
      (List.concat_map
         (fun b -> List.map (fun p -> (b, p)) policies)
         benches)
  in
  List.iter (fun (text, _, _) -> print_string text) cells;
  (* Host-time calibration, aggregated over the traced cells: how many
     nanoseconds of host time one charged virtual cycle costs on each
     execution tier. This is the measured (not assumed) cost model the
     closure tier's speedup claim rests on. Host time is
     nondeterministic, so the table goes to stderr with the other
     diagnostics — stdout stays byte-stable — and to the results file's
     "calibration" section for compare.exe to track drift. *)
  let buckets = Hashtbl.create 4 in
  List.iter
    (fun (_, _, cal) ->
      List.iter
        (fun (tier, cycles, host_s) ->
          let c0, s0 =
            match Hashtbl.find_opt buckets tier with
            | Some (c, s) -> (c, s)
            | None -> (0, 0.0)
          in
          Hashtbl.replace buckets tier (c0 + cycles, s0 +. host_s))
        cal)
    cells;
  let calibration =
    List.filter_map
      (fun tier ->
        match Hashtbl.find_opt buckets tier with
        | Some (cycles, host_s) when cycles > 0 ->
            Some { Results.k_tier = tier; k_cycles = cycles; k_host_s = host_s }
        | Some _ | None -> None)
      [ "interp"; "closure"; "system" ]
  in
  Format.eprintf
    "  [calibration] host ns per charged virtual cycle, over %d traced cells:@."
    (List.length cells);
  List.iter
    (fun (k : Results.calib) ->
      Format.eprintf "  [calibration]   %-8s %12d cycles  %8.3fs  %8.2f ns/cycle@."
        k.Results.k_tier k.Results.k_cycles k.Results.k_host_s
        (k.Results.k_host_s *. 1e9 /. float_of_int k.Results.k_cycles))
    calibration;
  (* Charge-constant sanity check: Cost prices system work (compilation,
     organizer, tracing) in the same virtual currency as application
     bytecodes, so a charged system cycle should cost roughly the same
     host time as a charged app cycle. [0.5, 2.0] is generous — the two
     buckets run different host code — but catches order-of-magnitude
     drift, e.g. a new system component charging one cycle for
     milliseconds of work. Verdict is recorded in the results file;
     compare.exe flags a verdict flip between runs.

     On the closure tier the steady verdict is "undercharged" — app
     cycles execute as compiled OCaml closures (a few ns each) while
     system cycles cover organizer/compiler data-structure work priced
     by the paper's constants, and tracing host time is deliberately
     off-clock — so the check's value is the *stability* of the verdict
     and ratio, not the verdict being green. *)
  let ns tier =
    match Hashtbl.find_opt buckets tier with
    | Some (cycles, host_s) when cycles > 0 ->
        Some (host_s *. 1e9 /. float_of_int cycles)
    | Some _ | None -> None
  in
  let check =
    match (ns (tier_name ()), ns "system") with
    | Some app_ns, Some system_ns when app_ns > 0.0 ->
        let ratio = system_ns /. app_ns in
        let verdict =
          if ratio > 2.0 then "undercharged"
          else if ratio < 0.5 then "overcharged"
          else "consistent"
        in
        Format.eprintf
          "  [calibration] system-charge sanity: system %.2f ns/cycle vs %s \
           %.2f ns/cycle — ratio %.2f, verdict: %s@."
          system_ns (tier_name ()) app_ns ratio verdict;
        Some
          {
            Results.v_app_ns = app_ns;
            v_system_ns = system_ns;
            v_ratio = ratio;
            v_verdict = verdict;
          }
    | _ -> None
  in
  (List.map (fun (_, c, _) -> c) cells, calibration, check)

(* --- machine-readable results: per-cell wall-clock + virtual cycles --- *)

(* Wall-clock is the only non-deterministic number the harness produces,
   so it goes to a side file instead of stdout (which stays byte-stable
   run to run). The virtual cycles per cell are repeated here so a
   results file is self-contained for plotting/regression scripts. The
   file is a trajectory — each invocation appends its run, so the
   wall-clock history survives in one file and compare.exe can diff any
   two points of it (see results.ml). *)
let write_json mode (s : Experiment.sweep option) server shards
    telemetry_cells static_cells speculation_cells components calibration
    calibration_check =
  let path = mode.json_path in
  let wall_total_s, cells =
    match s with
    | None -> (0.0, [])
    | Some s ->
        ( s.Experiment.wall_total_s,
          List.map
            (fun (t : Experiment.timing) ->
              {
                Results.bench = t.Experiment.t_bench;
                policy = t.Experiment.t_policy;
                wall_s = t.Experiment.t_wall_s;
                total_cycles = t.Experiment.t_cycles;
              })
            s.Experiment.timings )
  in
  let run =
    {
      Results.jobs = mode.jobs;
      scale_factor = mode.scale_factor;
      wall_total_s;
      tier = tier_name ();
      static_seed = !static_seed;
      speculate = !speculate;
      cells;
      server;
      shards;
      telemetry = telemetry_cells;
      static = static_cells;
      speculation = speculation_cells;
      components;
      calibration;
      calibration_check;
    }
  in
  let prior =
    if not (Sys.file_exists path) then []
    else
      try Results.read_file path
      with Sys_error msg | Results.Parse_error msg ->
        Format.eprintf
          "  [json] warning: could not read existing %s (%s); starting a \
           fresh trajectory@."
          path msg;
        []
  in
  Results.write_file path (prior @ [ run ]);
  Format.eprintf
    "  [json] appended run %d to %s (%d cells, %d server cells, %d shard \
     cells, %d static cells, %d component cells, sweep wall %.2fs, jobs %d)@."
    (List.length prior) path (List.length cells) (List.length server)
    (List.length shards) (List.length static_cells) (List.length components)
    wall_total_s mode.jobs

(* --- bechamel microbenchmarks: one Test.make per table/figure kernel --- *)

let micro () =
  hr "Bechamel microbenchmarks (one kernel per table/figure)";
  let open Bechamel in
  let program = (Workloads.find "db").Workloads.build ~scale:2 in
  let jess = (Workloads.find "jess").Workloads.build ~scale:4 in
  (* Table 1 kernel: program construction + characteristics scan. *)
  let table1_kernel =
    Test.make ~name:"table1/build+scan"
      (Staged.stage (fun () ->
           let p = (Workloads.find "jack").Workloads.build ~scale:1 in
           ignore (Acsi_bytecode.Program.total_bytecodes p)))
  in
  (* Figure 4 kernel: a complete adaptive run (wall-clock datum). *)
  let fig4_kernel =
    Test.make ~name:"fig4/adaptive-run"
      (Staged.stage (fun () ->
           ignore (Runtime.run (config ~policy:(Policy.Fixed 3)) jess)))
  in
  (* Figure 5 kernel: inline expansion + code-size accounting. *)
  let oracle = Acsi_jit.Oracle.create program in
  let hot_method =
    Acsi_bytecode.Program.find_method program ~cls:"HashMap" ~name:"get"
  in
  let fig5_kernel =
    Test.make ~name:"fig5/inline-expansion"
      (Staged.stage (fun () ->
           ignore
             (Acsi_jit.Expand.compile program Acsi_vm.Cost.default oracle
                ~root:hot_method)))
  in
  (* Figure 6 kernel: profile maintenance (the organizers' data path). *)
  let mid = hot_method.Acsi_bytecode.Meth.id in
  let entry = { Acsi_profile.Trace.caller = mid; callsite = 3 } in
  let trace = Acsi_profile.Trace.make ~callee:mid ~chain:[ entry; entry ] in
  let fig6_kernel =
    Test.make ~name:"fig6/profile-maintenance"
      (Staged.stage (fun () ->
           let dcg = Acsi_profile.Dcg.create () in
           for _ = 1 to 64 do
             Acsi_profile.Dcg.add_sample dcg trace
           done;
           Acsi_profile.Dcg.decay dcg ~factor:0.95 ~prune_below:0.05;
           ignore (Acsi_profile.Dcg.hot dcg ~threshold:0.015)))
  in
  (* Termination-stats kernel: the oracle's partial-match query. *)
  let rules =
    Acsi_profile.Rules.of_hot_traces [ (trace, 100.0); (trace, 50.0) ]
  in
  let term_kernel =
    Test.make ~name:"term-stats/partial-match"
      (Staged.stage (fun () ->
           ignore
             (Acsi_profile.Rules.candidates rules
                ~site_chain:[| entry; entry; entry |])))
  in
  let tests =
    Test.make_grouped ~name:"acsi"
      [ table1_kernel; fig4_kernel; fig5_kernel; fig6_kernel; term_kernel ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Format.printf "%-36s %16s@." "kernel" "ns/run (OLS)";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-36s %16.1f@." name est
      | Some _ | None -> Format.printf "%-36s %16s@." name "n/a")
    results

let () =
  let mode = parse_args () in
  Format.printf
    "Adaptive Online Context-Sensitive Inlining (CGO 2003) — reproduction \
     harness@.scale factor %.2f@."
    mode.scale_factor;
  if mode.table1 then begin
    hr "Table 1";
    Report.table1 Format.std_formatter (sweep mode);
    Format.print_newline ()
  end;
  if mode.fig4 then begin
    hr "Figure 4";
    Report.figure4 Format.std_formatter (sweep mode)
  end;
  if mode.fig5 then begin
    hr "Figure 5";
    Report.figure5 Format.std_formatter (sweep mode)
  end;
  if mode.fig6 then begin
    hr "Figure 6";
    Report.figure6 Format.std_formatter (sweep mode);
    Format.print_newline ()
  end;
  if mode.term_stats then term_stats mode;
  if mode.summary then begin
    hr "Summary";
    Report.summary Format.std_formatter (sweep mode);
    Format.print_newline ()
  end;
  if mode.ablations then begin
    ablations mode;
    extended mode
  end;
  let server_cells = if mode.serve then serve_mode mode else [] in
  let shard_cells, telemetry_cells =
    if mode.serve then shard_mode mode else ([], [])
  in
  let static_cells = if mode.serve then static_oracle_mode mode else [] in
  let speculation_cells = if mode.deopt then deopt_panel mode else [] in
  let component_cells, calibration, calibration_check =
    if mode.trace then traced_components mode else ([], [], None)
  in
  if mode.micro then micro ();
  if
    mode.json
    && (Option.is_some !the_sweep || server_cells <> [] || shard_cells <> []
       || static_cells <> [] || speculation_cells <> []
       || component_cells <> [])
  then
    write_json mode !the_sweep server_cells shard_cells telemetry_cells
      static_cells speculation_cells component_cells calibration
      calibration_check;
  Format.printf "@.done.@."
