(* Reading and writing BENCH_results.json: the machine-readable side
   channel of the bench driver. A results file holds a *trajectory* — a
   list of runs, one appended per invocation — so the wall-clock history
   of the repo is tracked in one committed file and [compare.exe] can
   diff any two points of it. The parser is a minimal recursive-descent
   JSON reader covering exactly what the writer emits (plus the PR 1
   single-run format, accepted for backward compatibility). *)

type cell = {
  bench : string;
  policy : string;
  wall_s : float;
  total_cycles : int;
}

(* One server-mode (virtual-threaded) cell: deterministic latency and
   throughput figures from Acsi_server.Server. Everything here except
   wall-clock is covered by the determinism contract. *)
type scell = {
  s_bench : string;
  s_policy : string;
  s_requests : int;
  s_total_cycles : int;
  s_throughput_rpmc : float;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
}

(* One traced-sweep cell: the per-AOS-component cycle breakdown measured
   from tracer spans (reconciled against the accounting before being
   recorded — see main.ml). Fully deterministic at a given scale. *)
type ccell = {
  c_bench : string;
  c_policy : string;
  c_components : (string * int) list;
      (* component name -> cycles, in canonical Accounting order *)
}

(* Host-time calibration for one execution-tier bucket: how many virtual
   cycles were charged by that tier's windows and how much host time they
   took. ns-per-virtual-cycle is derived, not stored. Host seconds are
   informational (the host is noisy) — only the bench's --trace mode
   records these. *)
type calib = {
  k_tier : string; (* "interp" | "closure" | "system" *)
  k_cycles : int;
  k_host_s : float;
}

(* One sharded-server cell: the multi-processor serving figures from
   Acsi_server.Shards. Everything here is deterministic for a given
   (workload, shards, pool, sessions, period, scale) — byte-identical
   across --jobs — so compare.exe treats a mismatch as a determinism
   violation, like server cells. *)
type hcell = {
  sh_bench : string;
  sh_policy : string;
  sh_shards : int;
  sh_pool : int;
  sh_pool_policy : string;
  sh_sessions : int;
  sh_period : int;
  sh_makespan : int;
  sh_throughput_spmc : float;
  sh_p50 : int;
  sh_p95 : int;
  sh_p99 : int;
  sh_steals : int;
  sh_fairness : float;
  sh_published : int;
  sh_adopted : int;
}

(* Calibration sanity-check verdict (bench --trace): the measured host
   ns-per-charged-virtual-cycle of the system bucket divided by the app
   execution tier's. The charge constants in Acsi_vm.Cost price system
   work (compilation, organizer, tracing) in the same virtual currency
   as application bytecodes; if a charged system cycle costs wildly
   more (or less) host time than a charged app cycle, the constants
   have drifted from reality. Verdict: "consistent" when the ratio is
   within [0.5, 2.0], "undercharged" above, "overcharged" below. *)
type calcheck = {
  v_app_ns : float; (* host ns per charged cycle, app execution tier *)
  v_system_ns : float; (* host ns per charged cycle, system bucket *)
  v_ratio : float; (* v_system_ns /. v_app_ns *)
  v_verdict : string; (* "consistent" | "undercharged" | "overcharged" *)
}

(* One static-oracle warmup-ablation cell (bench --serve): the same
   closed-loop serve workload run twice — static_seed off, then on —
   at a tiny scale where requests are short enough for the warmup knee
   to be visible. Both halves are deterministic; checksums may licitly
   differ only on workloads whose concurrent requests interleave
   output (the checksum is order-sensitive), never on the others. *)
type pcell = {
  p_bench : string;
  p_policy : string;
  p_requests : int;
  p_warmup_off : int; (* sv_warmup_requests, static_seed off *)
  p_warmup_on : int; (* sv_warmup_requests, static_seed on *)
  p_steady_off : float; (* sv_steady_latency, static_seed off *)
  p_steady_on : float; (* sv_steady_latency, static_seed on *)
  p_checksum_off : int;
  p_checksum_on : int;
}

(* One guards-vs-guard-free ablation cell (bench --deopt): the same
   workload run twice — speculation off, then on — at its full default
   scale. Both halves are deterministic, and the output checksums must
   always agree: guard-free speculative inlining plus deoptimization is
   a performance transform, never a semantic one. *)
type gcell = {
  g_bench : string;
  g_policy : string;
  g_hits_off : int; (* inline-guard hits, speculation off *)
  g_misses_off : int;
  g_hits_on : int;
  g_misses_on : int;
  g_storms_on : int; (* deopts after repeated guard failure, on half *)
  g_invalidated_on : int; (* deopts after class-load invalidation *)
  g_cycles_off : int; (* total_cycles per half *)
  g_cycles_on : int;
  g_checksum_off : int;
  g_checksum_on : int;
}

(* One fleet-telemetry cell (bench --serve, sharded half): the
   observability figures from Acsi_server.Shards.telemetry — histogram
   quantiles, flow-arrow counts with the conservation verdict, and the
   order-sensitive checksum of every per-shard time-series. All of it is
   deterministic for a given cell configuration and byte-identical
   across --jobs, so compare.exe treats any mismatch as a determinism
   violation, and the SLO gate reads its budgets from here. *)
type tcell = {
  t_bench : string;
  t_shards : int;
  t_sessions : int;
  t_interval : int; (* barrier length = series sampling interval *)
  t_hist_p50 : int; (* session-latency histogram quantiles ... *)
  t_hist_p90 : int;
  t_hist_p99 : int;
  t_hist_count : int; (* ... with exact count and sum *)
  t_hist_sum : int;
  t_compile_wait_p99 : int;
  t_deopt_gap_p99 : int;
  t_steal_flows : int; (* complete steal arrows (= sh_steals) *)
  t_adopt_flows : int; (* complete adopt arrows (= sh_adopted) *)
  t_flow_conserved : bool; (* Shards.flows_conserved verdict *)
  t_deopts : int; (* guard + invalidation deopts, all shards *)
  t_series_checksum : int; (* folded over per-shard series checksums *)
}

type run = {
  jobs : int;
  scale_factor : float;
  wall_total_s : float;
  tier : string;
      (* execution tier the sweep ran on: "closure" (the default
         second tier) or "interp" (--no-native-tier); absent in files
         written before the tier existed, which reads as "interp" *)
  static_seed : bool;
      (* whether the run's cells executed with the static pre-warm
         oracle on (--static-seed); absent in files written before the
         oracle existed, which reads as false *)
  speculate : bool;
      (* whether the run's cells executed with guard-free speculative
         inlining + deoptimization on (--speculate); absent in files
         written before the deopt subsystem existed, which reads as
         false *)
  cells : cell list;
  server : scell list;
      (* empty for runs recorded before server mode existed *)
  shards : hcell list;
      (* empty for runs recorded before the sharded server existed *)
  telemetry : tcell list;
      (* empty for runs recorded before fleet telemetry existed *)
  static : pcell list;
      (* empty for runs recorded before the static oracle existed or
         without --serve *)
  speculation : gcell list;
      (* empty for runs recorded before the deopt subsystem existed or
         without --deopt *)
  components : ccell list;
      (* empty for runs recorded without --trace *)
  calibration : calib list;
      (* empty for runs recorded without --trace *)
  calibration_check : calcheck option;
      (* None for runs recorded without --trace *)
}

(* --- JSON values --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let string_ () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad unicode escape";
              (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?' (* the writer never emits these *)
              | None -> fail "bad unicode escape");
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_ ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items (v :: acc)
        | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let field () =
        skip_ws ();
        let k = string_ () in
        skip_ws ();
        expect ':';
        let v = value () in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            fields (kv :: acc)
        | Some '}' ->
            incr pos;
            Obj (List.rev (kv :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      fields []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* --- results files --- *)

let field name = function
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Parse_error (Printf.sprintf "expected an object for %S" name))

let num = function
  | Num f -> f
  | _ -> raise (Parse_error "expected a number")

let str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let cell_of_json j =
  {
    bench = str (field "bench" j);
    policy = str (field "policy" j);
    wall_s = num (field "wall_s" j);
    total_cycles = int_of_float (num (field "total_cycles" j));
  }

let scell_of_json j =
  {
    s_bench = str (field "bench" j);
    s_policy = str (field "policy" j);
    s_requests = int_of_float (num (field "requests" j));
    s_total_cycles = int_of_float (num (field "total_cycles" j));
    s_throughput_rpmc = num (field "throughput_rpmc" j);
    s_p50 = int_of_float (num (field "p50" j));
    s_p95 = int_of_float (num (field "p95" j));
    s_p99 = int_of_float (num (field "p99" j));
  }

let ccell_of_json j =
  {
    c_bench = str (field "bench" j);
    c_policy = str (field "policy" j);
    c_components =
      (match field "components" j with
      | Obj kvs -> List.map (fun (k, v) -> (k, int_of_float (num v))) kvs
      | _ -> raise (Parse_error "expected an object of component cycles"));
  }

let hcell_of_json j =
  {
    sh_bench = str (field "bench" j);
    sh_policy = str (field "policy" j);
    sh_shards = int_of_float (num (field "shards" j));
    sh_pool = int_of_float (num (field "pool" j));
    sh_pool_policy = str (field "pool_policy" j);
    sh_sessions = int_of_float (num (field "sessions" j));
    sh_period = int_of_float (num (field "period" j));
    sh_makespan = int_of_float (num (field "makespan" j));
    sh_throughput_spmc = num (field "throughput_spmc" j);
    sh_p50 = int_of_float (num (field "p50" j));
    sh_p95 = int_of_float (num (field "p95" j));
    sh_p99 = int_of_float (num (field "p99" j));
    sh_steals = int_of_float (num (field "steals" j));
    sh_fairness = num (field "fairness" j);
    sh_published = int_of_float (num (field "published" j));
    sh_adopted = int_of_float (num (field "adopted" j));
  }

(* Output checksums use the full 63-bit int range, beyond a float's 53
   bits of exact precision, so they travel as JSON strings. *)
let checksum_field name j =
  match int_of_string_opt (str (field name j)) with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "bad checksum in %S" name))

let tcell_of_json j =
  {
    t_bench = str (field "bench" j);
    t_shards = int_of_float (num (field "shards" j));
    t_sessions = int_of_float (num (field "sessions" j));
    t_interval = int_of_float (num (field "interval" j));
    t_hist_p50 = int_of_float (num (field "hist_p50" j));
    t_hist_p90 = int_of_float (num (field "hist_p90" j));
    t_hist_p99 = int_of_float (num (field "hist_p99" j));
    t_hist_count = int_of_float (num (field "hist_count" j));
    (* Sums and checksums use the full 63-bit range: strings. *)
    t_hist_sum = checksum_field "hist_sum" j;
    t_compile_wait_p99 = int_of_float (num (field "compile_wait_p99" j));
    t_deopt_gap_p99 = int_of_float (num (field "deopt_gap_p99" j));
    t_steal_flows = int_of_float (num (field "steal_flows" j));
    t_adopt_flows = int_of_float (num (field "adopt_flows" j));
    t_flow_conserved =
      (match field "flow_conserved" j with
      | Bool b -> b
      | _ -> raise (Parse_error "expected a bool for flow_conserved"));
    t_deopts = int_of_float (num (field "deopts" j));
    t_series_checksum = checksum_field "series_checksum" j;
  }

let pcell_of_json j =
  {
    p_bench = str (field "bench" j);
    p_policy = str (field "policy" j);
    p_requests = int_of_float (num (field "requests" j));
    p_warmup_off = int_of_float (num (field "warmup_off" j));
    p_warmup_on = int_of_float (num (field "warmup_on" j));
    p_steady_off = num (field "steady_off" j);
    p_steady_on = num (field "steady_on" j);
    p_checksum_off = checksum_field "checksum_off" j;
    p_checksum_on = checksum_field "checksum_on" j;
  }

let gcell_of_json j =
  {
    g_bench = str (field "bench" j);
    g_policy = str (field "policy" j);
    g_hits_off = int_of_float (num (field "hits_off" j));
    g_misses_off = int_of_float (num (field "misses_off" j));
    g_hits_on = int_of_float (num (field "hits_on" j));
    g_misses_on = int_of_float (num (field "misses_on" j));
    g_storms_on = int_of_float (num (field "storms_on" j));
    g_invalidated_on = int_of_float (num (field "invalidated_on" j));
    g_cycles_off = int_of_float (num (field "cycles_off" j));
    g_cycles_on = int_of_float (num (field "cycles_on" j));
    g_checksum_off = checksum_field "checksum_off" j;
    g_checksum_on = checksum_field "checksum_on" j;
  }

let calcheck_of_json j =
  {
    v_app_ns = num (field "app_ns" j);
    v_system_ns = num (field "system_ns" j);
    v_ratio = num (field "ratio" j);
    v_verdict = str (field "verdict" j);
  }

let calib_of_json j =
  {
    k_tier = str (field "tier" j);
    k_cycles = int_of_float (num (field "cycles" j));
    k_host_s = num (field "host_s" j);
  }

let run_of_json j =
  {
    jobs = int_of_float (num (field "jobs" j));
    scale_factor = num (field "scale_factor" j);
    wall_total_s = num (field "wall_total_s" j);
    tier =
      (* Absent in files written before the closure tier existed: those
         runs executed on the interpreter. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "tier" kvs with
          | None | Some Null -> "interp"
          | Some v -> str v)
      | _ -> "interp");
    static_seed =
      (* Absent in files written before the static oracle existed:
         those runs were purely reactive. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "static_seed" kvs with
          | None | Some Null -> false
          | Some (Bool b) -> b
          | Some _ -> raise (Parse_error "expected a bool for static_seed"))
      | _ -> false);
    speculate =
      (* Absent in files written before the deopt subsystem existed:
         those runs never speculated. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "speculate" kvs with
          | None | Some Null -> false
          | Some (Bool b) -> b
          | Some _ -> raise (Parse_error "expected a bool for speculate"))
      | _ -> false);
    cells =
      (match field "cells" j with
      | Arr cells -> List.map cell_of_json cells
      | _ -> raise (Parse_error "expected an array of cells"));
    server =
      (* Absent in files written before server mode existed. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "server" kvs with
          | None | Some Null -> []
          | Some (Arr scells) -> List.map scell_of_json scells
          | Some _ ->
              raise (Parse_error "expected an array under \"server\""))
      | _ -> []);
    shards =
      (* Absent in files written before the sharded server existed. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "shards" kvs with
          | None | Some Null -> []
          | Some (Arr hcells) -> List.map hcell_of_json hcells
          | Some _ ->
              raise (Parse_error "expected an array under \"shards\""))
      | _ -> []);
    telemetry =
      (* Absent in files written before fleet telemetry existed. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "telemetry" kvs with
          | None | Some Null -> []
          | Some (Arr tcells) -> List.map tcell_of_json tcells
          | Some _ ->
              raise (Parse_error "expected an array under \"telemetry\""))
      | _ -> []);
    static =
      (* Absent in files written before the static-oracle ablation. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "static" kvs with
          | None | Some Null -> []
          | Some (Arr pcells) -> List.map pcell_of_json pcells
          | Some _ ->
              raise (Parse_error "expected an array under \"static\""))
      | _ -> []);
    speculation =
      (* Absent in files written before the deopt subsystem existed. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "speculation" kvs with
          | None | Some Null -> []
          | Some (Arr gcells) -> List.map gcell_of_json gcells
          | Some _ ->
              raise (Parse_error "expected an array under \"speculation\""))
      | _ -> []);
    components =
      (* Absent in files written without a traced sweep. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "components" kvs with
          | None | Some Null -> []
          | Some (Arr ccells) -> List.map ccell_of_json ccells
          | Some _ ->
              raise (Parse_error "expected an array under \"components\""))
      | _ -> []);
    calibration =
      (* Absent in files written without a traced sweep. *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "calibration" kvs with
          | None | Some Null -> []
          | Some (Arr cs) -> List.map calib_of_json cs
          | Some _ ->
              raise (Parse_error "expected an array under \"calibration\""))
      | _ -> []);
    calibration_check =
      (* Absent in files written without a traced sweep (or before the
         sanity check existed). *)
      (match j with
      | Obj kvs -> (
          match List.assoc_opt "calibration_check" kvs with
          | None | Some Null -> None
          | Some v -> Some (calcheck_of_json v))
      | _ -> None);
  }

(* A trajectory file is {"runs": [...]}; a bare run object (the PR 1
   format) reads as a one-run trajectory. *)
let runs_of_json j =
  match j with
  | Obj kvs when List.mem_assoc "runs" kvs -> (
      match List.assoc "runs" kvs with
      | Arr runs -> List.map run_of_json runs
      | _ -> raise (Parse_error "expected an array under \"runs\""))
  | j -> [ run_of_json j ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  runs_of_json (parse contents)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let output_run oc r ~last =
  Printf.fprintf oc
    "    {\n\
    \      \"jobs\": %d,\n\
    \      \"scale_factor\": %g,\n\
    \      \"wall_total_s\": %.6f,\n\
    \      \"tier\": \"%s\",\n\
    \      \"static_seed\": %b,\n\
    \      \"speculate\": %b,\n\
    \      \"cells\": [\n"
    r.jobs r.scale_factor r.wall_total_s (json_escape r.tier) r.static_seed
    r.speculate;
  let last_cell = List.length r.cells - 1 in
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "        {\"bench\": \"%s\", \"policy\": \"%s\", \"wall_s\": %.6f, \
         \"total_cycles\": %d}%s\n"
        (json_escape c.bench) (json_escape c.policy) c.wall_s c.total_cycles
        (if i = last_cell then "" else ","))
    r.cells;
  Printf.fprintf oc "      ]";
  (* The server section is only written when present, so trajectories
     without server-mode runs keep their exact prior shape. *)
  if r.server <> [] then begin
    Printf.fprintf oc ",\n      \"server\": [\n";
    let last_s = List.length r.server - 1 in
    List.iteri
      (fun i s ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"policy\": \"%s\", \"requests\": %d, \
           \"total_cycles\": %d, \"throughput_rpmc\": %.6f, \"p50\": %d, \
           \"p95\": %d, \"p99\": %d}%s\n"
          (json_escape s.s_bench) (json_escape s.s_policy) s.s_requests
          s.s_total_cycles s.s_throughput_rpmc s.s_p50 s.s_p95 s.s_p99
          (if i = last_s then "" else ","))
      r.server;
    Printf.fprintf oc "      ]"
  end;
  (* The shards section is likewise only written when the sharded
     server ran (bench --serve on a repo with lib/server/shards). *)
  if r.shards <> [] then begin
    Printf.fprintf oc ",\n      \"shards\": [\n";
    let last_h = List.length r.shards - 1 in
    List.iteri
      (fun i h ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"policy\": \"%s\", \"shards\": %d, \
           \"pool\": %d, \"pool_policy\": \"%s\", \"sessions\": %d, \
           \"period\": %d, \"makespan\": %d, \"throughput_spmc\": %.6f, \
           \"p50\": %d, \"p95\": %d, \"p99\": %d, \"steals\": %d, \
           \"fairness\": %.6f, \"published\": %d, \"adopted\": %d}%s\n"
          (json_escape h.sh_bench) (json_escape h.sh_policy) h.sh_shards
          h.sh_pool
          (json_escape h.sh_pool_policy)
          h.sh_sessions h.sh_period h.sh_makespan h.sh_throughput_spmc h.sh_p50
          h.sh_p95 h.sh_p99 h.sh_steals h.sh_fairness h.sh_published
          h.sh_adopted
          (if i = last_h then "" else ","))
      r.shards;
    Printf.fprintf oc "      ]"
  end;
  (* The telemetry section is likewise only written when the sharded
     server ran with fleet telemetry (bench --serve). *)
  if r.telemetry <> [] then begin
    Printf.fprintf oc ",\n      \"telemetry\": [\n";
    let last_t = List.length r.telemetry - 1 in
    List.iteri
      (fun i t ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"shards\": %d, \"sessions\": %d, \
           \"interval\": %d, \"hist_p50\": %d, \"hist_p90\": %d, \
           \"hist_p99\": %d, \"hist_count\": %d, \"hist_sum\": \"%d\", \
           \"compile_wait_p99\": %d, \"deopt_gap_p99\": %d, \"steal_flows\": \
           %d, \"adopt_flows\": %d, \"flow_conserved\": %b, \"deopts\": %d, \
           \"series_checksum\": \"%d\"}%s\n"
          (json_escape t.t_bench) t.t_shards t.t_sessions t.t_interval
          t.t_hist_p50 t.t_hist_p90 t.t_hist_p99 t.t_hist_count t.t_hist_sum
          t.t_compile_wait_p99 t.t_deopt_gap_p99 t.t_steal_flows
          t.t_adopt_flows t.t_flow_conserved t.t_deopts t.t_series_checksum
          (if i = last_t then "" else ","))
      r.telemetry;
    Printf.fprintf oc "      ]"
  end;
  (* The static-oracle ablation section is likewise only written when
     bench --serve ran it. *)
  if r.static <> [] then begin
    Printf.fprintf oc ",\n      \"static\": [\n";
    let last_p = List.length r.static - 1 in
    List.iteri
      (fun i p ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"policy\": \"%s\", \"requests\": %d, \
           \"warmup_off\": %d, \"warmup_on\": %d, \"steady_off\": %.6f, \
           \"steady_on\": %.6f, \"checksum_off\": \"%d\", \"checksum_on\": \
           \"%d\"}%s\n"
          (json_escape p.p_bench) (json_escape p.p_policy) p.p_requests
          p.p_warmup_off p.p_warmup_on p.p_steady_off p.p_steady_on
          p.p_checksum_off p.p_checksum_on
          (if i = last_p then "" else ","))
      r.static;
    Printf.fprintf oc "      ]"
  end;
  (* The guards-vs-guard-free ablation section is likewise only written
     when bench --deopt ran it. *)
  if r.speculation <> [] then begin
    Printf.fprintf oc ",\n      \"speculation\": [\n";
    let last_g = List.length r.speculation - 1 in
    List.iteri
      (fun i g ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"policy\": \"%s\", \"hits_off\": %d, \
           \"misses_off\": %d, \"hits_on\": %d, \"misses_on\": %d, \
           \"storms_on\": %d, \"invalidated_on\": %d, \"cycles_off\": %d, \
           \"cycles_on\": %d, \"checksum_off\": \"%d\", \"checksum_on\": \
           \"%d\"}%s\n"
          (json_escape g.g_bench) (json_escape g.g_policy) g.g_hits_off
          g.g_misses_off g.g_hits_on g.g_misses_on g.g_storms_on
          g.g_invalidated_on g.g_cycles_off g.g_cycles_on g.g_checksum_off
          g.g_checksum_on
          (if i = last_g then "" else ","))
      r.speculation;
    Printf.fprintf oc "      ]"
  end;
  (* Likewise only written when a traced sweep ran. *)
  if r.components <> [] then begin
    Printf.fprintf oc ",\n      \"components\": [\n";
    let last_c = List.length r.components - 1 in
    List.iteri
      (fun i c ->
        Printf.fprintf oc
          "        {\"bench\": \"%s\", \"policy\": \"%s\", \"components\": {"
          (json_escape c.c_bench) (json_escape c.c_policy);
        List.iteri
          (fun k (nm, cycles) ->
            Printf.fprintf oc "%s\"%s\": %d"
              (if k = 0 then "" else ", ")
              (json_escape nm) cycles)
          c.c_components;
        Printf.fprintf oc "}}%s\n" (if i = last_c then "" else ","))
      r.components;
    Printf.fprintf oc "      ]"
  end;
  (* Likewise only written when --trace measured host time per tier. *)
  if r.calibration <> [] then begin
    Printf.fprintf oc ",\n      \"calibration\": [\n";
    let last_k = List.length r.calibration - 1 in
    List.iteri
      (fun i k ->
        Printf.fprintf oc
          "        {\"tier\": \"%s\", \"cycles\": %d, \"host_s\": %.6f}%s\n"
          (json_escape k.k_tier) k.k_cycles k.k_host_s
          (if i = last_k then "" else ","))
      r.calibration;
    Printf.fprintf oc "      ]"
  end;
  (* Likewise only written when --trace computed the sanity verdict. *)
  (match r.calibration_check with
  | None -> ()
  | Some v ->
      Printf.fprintf oc
        ",\n\
        \      \"calibration_check\": {\"app_ns\": %.6f, \"system_ns\": \
         %.6f, \"ratio\": %.6f, \"verdict\": \"%s\"}"
        v.v_app_ns v.v_system_ns v.v_ratio (json_escape v.v_verdict));
  Printf.fprintf oc "\n    }%s\n" (if last then "" else ",")

let write_file path runs =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"runs\": [\n";
  let last = List.length runs - 1 in
  List.iteri (fun i r -> output_run oc r ~last:(i = last)) runs;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc
