(* Quick end-to-end pipeline checks: DSL -> compile -> verify -> run,
   then JIT-expand a method and check behaviour is preserved. *)

open Acsi_bytecode
open Acsi_lang
open Acsi_vm
open Acsi_jit
open Acsi_profile

let sample_prog =
  Dsl.(
    prog
      [
        cls "A" ~fields:[]
          [ meth "foo" [] ~returns:true [ ret (i 1) ] ];
        cls "B" ~parent:"A" ~fields:[]
          [ meth "foo" [] ~returns:true [ ret (i 2) ] ];
        cls "Calc" ~fields:[ "acc" ]
          [
            meth "init" [ "start" ] ~returns:false
              [ set_thisf "acc" (v "start") ];
            meth "step" [ "x" ] ~returns:true
              [
                set_thisf "acc" (add (thisf "acc") (mul (v "x") (i 2)));
                ret (thisf "acc");
              ];
          ];
      ]
      [
        let_ "a" (new_ "A" []);
        let_ "b" (new_ "B" []);
        let_ "s" (i 0);
        for_ "i" (i 0) (i 11)
          [ let_ "s" (add (v "s") (add (inv (v "a") "foo" []) (inv (v "b") "foo" []))) ];
        print (v "s");
        let_ "c" (new_ "Calc" [ i 5 ]);
        expr (inv (v "c") "step" [ i 3 ]);
        print (inv (v "c") "step" [ i 1 ]);
      ])

let run_program program =
  let vm = Interp.create program in
  Interp.run vm;
  (vm, Interp.output vm)

let test_compile_run () =
  let program = Compile.prog sample_prog in
  let _, out = run_program program in
  (* 11 iterations of (1 + 2) = 33; Calc: 5 + 6 = 11, then 11 + 2 = 13 *)
  Alcotest.(check (list int)) "output" [ 33; 13 ] out

let test_opt_preserves_semantics () =
  let program = Compile.prog sample_prog in
  let _, base_out = run_program program in
  (* Optimize every method with an empty rule set (static heuristics only),
     then with a fully-seeded profile; output must not change. *)
  let check_with rules label =
    let vm = Interp.create program in
    let oracle = Oracle.create program in
    Oracle.set_rules oracle rules;
    Array.iter
      (fun m ->
        let code, _ = Expand.compile program (Interp.cost vm) oracle ~root:m in
        Interp.install_code vm m.Meth.id code)
      (Program.methods program);
    Interp.run vm;
    Alcotest.(check (list int)) label base_out (Interp.output vm)
  in
  check_with (Rules.empty ()) "static-only inlining preserves output";
  (* Seed a profile that recommends both A.foo and B.foo at every site. *)
  let foo_a = Program.find_method program ~cls:"A" ~name:"foo" in
  let foo_b = Program.find_method program ~cls:"B" ~name:"foo" in
  let main = Program.meth program (Program.main program) in
  let hot =
    List.concat_map
      (fun (callee : Meth.t) ->
        Array.to_list main.Meth.body
        |> List.mapi (fun pc instr -> (pc, instr))
        |> List.filter_map (fun (pc, instr) ->
               match instr with
               | Instr.Call_virtual (_, _) ->
                   Some
                     ( Trace.make ~callee:callee.Meth.id
                         ~chain:
                           [ { Trace.caller = main.Meth.id; callsite = pc } ],
                       100.0 )
               | _ -> None))
      [ foo_a; foo_b ]
  in
  check_with (Rules.of_hot_traces hot) "profile-guided inlining preserves output"

let test_expand_inlines_tiny () =
  let program = Compile.prog sample_prog in
  let oracle = Oracle.create program in
  let step = Program.find_method program ~cls:"Calc" ~name:"step" in
  ignore step;
  let main = Program.meth program (Program.main program) in
  let code, stats =
    Expand.compile program Cost.default oracle ~root:main
  in
  Alcotest.(check bool) "some inlining happened" true (stats.Expand.inline_count > 0);
  Alcotest.(check bool)
    "opt code is larger than baseline body" true
    (Array.length code.Code.instrs >= Array.length main.Meth.body)

let suite =
  [
    Alcotest.test_case "compile and run" `Quick test_compile_run;
    Alcotest.test_case "optimization preserves semantics" `Quick
      test_opt_preserves_semantics;
    Alcotest.test_case "expander inlines tiny methods" `Quick
      test_expand_inlines_tiny;
  ]
