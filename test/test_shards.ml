(* The sharded multi-processor server (Acsi_server.Shards): determinism
   across the host-parallelism axis, work-stealing conservation and
   fairness, the publish-once shared code cache, DCG merging into the
   organizer's global view, and the compiler-pool queue policies.

   Loads are kept small (a few thousand sessions) — every property here
   is scale-free; the bench's @shard-smoke golden and the shards section
   of BENCH_results.json pin the big-run numbers. *)

module System = Acsi_aos.System
module Config = Acsi_core.Config
module Policy = Acsi_policy.Policy
module Shards = Acsi_server.Shards
module Workloads = Acsi_workloads.Workloads
module Dcg = Acsi_profile.Dcg
module Trace = Acsi_profile.Trace

let program = lazy ((Workloads.find "session").Workloads.build ~scale:1)

let run ?(seed = 11) ?(jobs = 1) ?(pool = 1) ?(pool_policy = System.Fifo)
    ?(sessions = 3000) ?(period = 600) ~shards () =
  Shards.run ~seed ~jobs ~pool ~pool_policy ~barrier:100_000 ~shards ~sessions
    ~period ~name:"session"
    (Config.default ~policy:(Policy.Fixed 3))
    (Lazy.force program)

(* --- determinism: the jobs x shards matrix --- *)

(* The whole point of the bulk-synchronous design: host parallelism is
   confined to disjoint shards between barriers, so every figure the run
   produces — makespan, percentiles, steal count, per-shard stats, the
   output checksum — is a pure function of (seed, shards, load), however
   many domains executed it, and however many times. *)
let test_jobs_determinism () =
  List.iter
    (fun shards ->
      let a = run ~shards ~jobs:1 () in
      let b = run ~shards ~jobs:2 () in
      let c = run ~shards ~jobs:4 () in
      let again = run ~shards ~jobs:1 () in
      List.iter
        (fun (label, (other : Shards.result)) ->
          Alcotest.(check bool)
            (Printf.sprintf "shards=%d summary identical (%s)" shards label)
            true
            (a.Shards.summary = other.Shards.summary);
          Alcotest.(check bool)
            (Printf.sprintf "shards=%d per-shard stats identical (%s)" shards
               label)
            true
            (a.Shards.shard_stats = other.Shards.shard_stats);
          Alcotest.(check bool)
            (Printf.sprintf "shards=%d publication log identical (%s)" shards
               label)
            true
            (a.Shards.publications = other.Shards.publications))
        [ ("jobs 2", b); ("jobs 4", c); ("repeat", again) ])
    [ 1; 2; 3; 4 ]

(* Different seeds must actually produce different schedules — otherwise
   the determinism checks above are vacuous. *)
let test_seed_sensitivity () =
  let a = run ~shards:2 ~seed:11 () in
  let b = run ~shards:2 ~seed:12 () in
  Alcotest.(check bool)
    "different seeds, different runs" false
    (a.Shards.summary = b.Shards.summary)

(* --- work stealing: conservation, fairness, scaling --- *)

let test_steal_conservation_and_fairness () =
  let r = run ~shards:4 ~sessions:4000 () in
  let s = r.Shards.summary in
  let stats = r.Shards.shard_stats in
  (* Every admitted session completes: served sums to the offered load. *)
  Alcotest.(check int) "all sessions served" s.Shards.sh_sessions
    (List.fold_left (fun acc h -> acc + h.Shards.h_served) 0 stats);
  (* Steals are a permutation of work, not a source or sink of it. *)
  let sum f = List.fold_left (fun acc h -> acc + f h) 0 stats in
  Alcotest.(check int)
    "steals in = steals out"
    (sum (fun h -> h.Shards.h_steals_out))
    (sum (fun h -> h.Shards.h_steals_in));
  Alcotest.(check int)
    "summary counts each moved session once" s.Shards.sh_steals
    (sum (fun h -> h.Shards.h_steals_in));
  Alcotest.(check bool) "stealing happened" true (s.Shards.sh_steals > 0);
  (* The home-shard hash over-weights shard 0 by 2x; stealing must keep
     the served split well inside that skew. (Only *due* sessions move,
     so perfect balance is not expected under overload.) *)
  Alcotest.(check bool)
    (Printf.sprintf "served fairness %.3f within bound" s.Shards.sh_fairness)
    true
    (s.Shards.sh_fairness < 2.0);
  (* Per-shard scheduler fairness carries over from the server tier: no
     runnable thread inside a shard waits longer than one full rotation
     of its run queue. *)
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d resume gap %d <= max-live %d" h.Shards.h_id
           h.Shards.h_max_resume_gap h.Shards.h_max_live)
        true
        (h.Shards.h_max_resume_gap <= h.Shards.h_max_live))
    stats

(* Under a saturating load, more virtual processors must serve it in
   proportionally less virtual time. The bench pins the big-run ratio
   (>= 2.5x at 4 shards); here a generous floor guards the mechanism. *)
let test_throughput_scales () =
  let t shards =
    (run ~shards ~sessions:4000 ()).Shards.summary.Shards.sh_throughput_spmc
  in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 shards scale throughput (%.1f -> %.1f)" t1 t4)
    true
    (t4 > 2.0 *. t1)

(* --- the publish-once shared code cache --- *)

let test_publish_once_and_adoption () =
  let r = run ~shards:4 ~sessions:4000 () in
  let s = r.Shards.summary in
  let mids = List.map fst r.Shards.publications in
  let distinct = List.sort_uniq compare mids in
  (* First publication wins forever: a method appears at most once in
     the publication log, whatever later recompilations shards do. *)
  Alcotest.(check int)
    "no method published twice"
    (List.length distinct) (List.length mids);
  Alcotest.(check int)
    "summary counts the log" (List.length mids) s.Shards.sh_published;
  Alcotest.(check bool) "methods were published" true (s.Shards.sh_published > 0);
  (* Cross-shard reuse actually happened, and the summary count is the
     sum of what each shard's AOS adopted. *)
  Alcotest.(check bool) "code was adopted" true (s.Shards.sh_adopted > 0);
  Alcotest.(check int)
    "adoption count is the sum over shards" s.Shards.sh_adopted
    (List.fold_left
       (fun acc sys -> acc + System.adopted_installs sys)
       0 r.Shards.systems);
  (* An adopting shard paid no compile cycles for adopted methods: the
     origin shard is recorded, and it is never the adopter itself (a
     shard cannot adopt its own publication). *)
  List.iter
    (fun (_, origin) ->
      Alcotest.(check bool) "origin shard is valid" true
        (origin >= 0 && origin < s.Shards.sh_shards))
    r.Shards.publications

(* --- DCG merge: the organizer's global view --- *)

let test_merged_dcg_preserves_weight () =
  let r = run ~shards:3 ~sessions:3000 () in
  let shard_total =
    List.fold_left
      (fun acc sys -> acc +. Dcg.total_weight (System.dcg sys))
      0.0 r.Shards.systems
  in
  let merged = Dcg.total_weight r.Shards.merged_dcg in
  Alcotest.(check bool)
    (Printf.sprintf "merged total %.6f = sum of shard totals %.6f" merged
       shard_total)
    true
    (Float.abs (merged -. shard_total) < 1e-6);
  (* The global view covers every trace any shard saw. *)
  let covers = ref true in
  List.iter
    (fun sys ->
      Dcg.iter (System.dcg sys) ~f:(fun trace _ ->
          if Dcg.weight r.Shards.merged_dcg trace = 0.0 then covers := false))
    r.Shards.systems;
  Alcotest.(check bool) "every shard trace is in the merged view" true !covers

(* Unit-level: merge adds weights trace by trace and totals are
   additive, including on overlap. *)
let test_dcg_merge_unit () =
  let p = Lazy.force program in
  let mid =
    (Acsi_bytecode.Program.find_method p ~cls:"ReadEndpoint" ~name:"handle")
      .Acsi_bytecode.Meth.id
  in
  let mid2 =
    (Acsi_bytecode.Program.find_method p ~cls:"WriteEndpoint" ~name:"handle")
      .Acsi_bytecode.Meth.id
  in
  let entry = { Trace.caller = mid; callsite = 1 } in
  let t_shared = Trace.make ~callee:mid ~chain:[ entry ] in
  let t_only_a = Trace.make ~callee:mid2 ~chain:[ entry ] in
  let t_only_b = Trace.make ~callee:mid2 ~chain:[ entry; entry ] in
  let a = Dcg.create () and b = Dcg.create () in
  Dcg.add_weight a t_shared 2.0;
  Dcg.add_weight a t_only_a 1.5;
  Dcg.add_weight b t_shared 3.0;
  Dcg.add_weight b t_only_b 0.5;
  Dcg.merge ~into:a b;
  Alcotest.(check (float 1e-9)) "overlap adds" 5.0 (Dcg.weight a t_shared);
  Alcotest.(check (float 1e-9)) "a-only kept" 1.5 (Dcg.weight a t_only_a);
  Alcotest.(check (float 1e-9)) "b-only inserted" 0.5 (Dcg.weight a t_only_b);
  Alcotest.(check (float 1e-9)) "total additive" 7.0 (Dcg.total_weight a);
  Alcotest.(check int) "size" 3 (Dcg.size a);
  (* The source is read-only under merge. *)
  Alcotest.(check (float 1e-9)) "source untouched" 3.5 (Dcg.total_weight b)

(* --- compiler pool queue policies --- *)

(* Each policy is itself deterministic, serves the full load, and the
   policies genuinely reorder compilation (hot-first differs from FIFO
   on a pool that queues). A pool of 1 under FIFO is the serial
   background-compiler model exactly — pinned by the serve-smoke golden
   staying byte-identical. *)
let test_pool_policies () =
  let once policy = run ~shards:2 ~sessions:4000 ~pool:2 ~pool_policy:policy () in
  List.iter
    (fun policy ->
      let a = once policy and b = once policy in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic" (System.queue_policy_name policy))
        true
        (a.Shards.summary = b.Shards.summary);
      Alcotest.(check int)
        (Printf.sprintf "%s serves everything"
           (System.queue_policy_name policy))
        4000
        a.Shards.summary.Shards.sh_sessions)
    [ System.Fifo; System.Hot_first; System.Deadline ];
  Alcotest.(check bool)
    "policy axis round-trips through names" true
    (List.for_all
       (fun p -> System.queue_policy_of_string (System.queue_policy_name p) = Some p)
       [ System.Fifo; System.Hot_first; System.Deadline ])

(* --- fleet telemetry: flow conservation and aggregate identities --- *)

(* The conservation witness, plus the cross-checks that tie the flow log
   and the time-series back to the counters the summary already pins:
   telemetry is a second bookkeeping of the same events, so every
   aggregate must agree exactly. *)
let test_flow_conservation_and_aggregates () =
  let r = run ~shards:4 ~sessions:4000 () in
  let s = r.Shards.summary in
  let tel = r.Shards.telemetry in
  Alcotest.(check bool) "flows conserved" true (Shards.flows_conserved tel);
  Alcotest.(check int) "steal arrows = summary steals" s.Shards.sh_steals
    (Shards.flow_pairs tel Shards.Steal);
  Alcotest.(check int) "adopt arrows = summary adoptions" s.Shards.sh_adopted
    (Shards.flow_pairs tel Shards.Adopt);
  (* Per-shard flow halves agree with each shard's steal counters. *)
  let flow_count dir shard =
    List.length
      (List.filter
         (fun (f : Shards.flow) ->
           f.Shards.f_kind = Shards.Steal
           && f.Shards.f_dir = dir && f.Shards.f_shard = shard)
         tel.Shards.tel_flows)
  in
  List.iter
    (fun (h : Shards.shard_stat) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d steal-out flows" h.Shards.h_id)
        h.Shards.h_steals_out
        (flow_count Acsi_obs.Tracer.Out h.Shards.h_id);
      Alcotest.(check int)
        (Printf.sprintf "shard %d steal-in flows" h.Shards.h_id)
        h.Shards.h_steals_in
        (flow_count Acsi_obs.Tracer.In h.Shards.h_id))
    r.Shards.shard_stats;
  (* The time-series' final cumulative rows are the same counters. *)
  List.iter
    (fun (h : Shards.shard_stat) ->
      let series = tel.Shards.tel_series.(h.Shards.h_id) in
      Alcotest.(check int)
        (Printf.sprintf "shard %d series served" h.Shards.h_id)
        h.Shards.h_served
        (Acsi_obs.Timeseries.last series "served");
      Alcotest.(check int)
        (Printf.sprintf "shard %d series steals_in" h.Shards.h_id)
        h.Shards.h_steals_in
        (Acsi_obs.Timeseries.last series "steals_in");
      Alcotest.(check int)
        (Printf.sprintf "shard %d series steals_out" h.Shards.h_id)
        h.Shards.h_steals_out
        (Acsi_obs.Timeseries.last series "steals_out");
      Alcotest.(check int)
        (Printf.sprintf "shard %d series adopted" h.Shards.h_id)
        h.Shards.h_adopted
        (Acsi_obs.Timeseries.last series "adopted"))
    r.Shards.shard_stats;
  (* The latency histograms re-aggregate the summary's percentiles'
     source data: exact count matches, merged = per-shard sum. *)
  Alcotest.(check int) "latency histogram counts every session"
    s.Shards.sh_sessions
    (Acsi_obs.Hist.count tel.Shards.tel_latency_all);
  Alcotest.(check int) "merged latency = sum of per-shard counts"
    (Acsi_obs.Hist.count tel.Shards.tel_latency_all)
    (Array.fold_left
       (fun acc h -> acc + Acsi_obs.Hist.count h)
       0 tel.Shards.tel_latency);
  Alcotest.(check int) "steal-distance histogram counts every steal"
    s.Shards.sh_steals
    (Acsi_obs.Hist.count tel.Shards.tel_steal_distance)

(* Telemetry rides the virtual clock only, and flows are emitted in the
   serial barrier section: everything it contains is byte-identical
   across the host-parallelism axis, like the summary itself. *)
let test_telemetry_jobs_determinism () =
  let a = run ~shards:3 ~jobs:1 () in
  let b = run ~shards:3 ~jobs:4 () in
  let ta = a.Shards.telemetry and tb = b.Shards.telemetry in
  Alcotest.(check bool) "flow logs identical" true
    (ta.Shards.tel_flows = tb.Shards.tel_flows);
  Array.iteri
    (fun i sa ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d series checksum" i)
        (Acsi_obs.Timeseries.checksum sa)
        (Acsi_obs.Timeseries.checksum tb.Shards.tel_series.(i)))
    ta.Shards.tel_series;
  List.iter
    (fun (label, ha, hb) ->
      Alcotest.(check int)
        (label ^ " histogram checksum")
        (Acsi_obs.Hist.checksum ha) (Acsi_obs.Hist.checksum hb))
    [
      ("latency", ta.Shards.tel_latency_all, tb.Shards.tel_latency_all);
      ("steal-distance", ta.Shards.tel_steal_distance,
       tb.Shards.tel_steal_distance);
      ("compile-wait", ta.Shards.tel_compile_wait, tb.Shards.tel_compile_wait);
      ("deopt-gap", ta.Shards.tel_deopt_gap, tb.Shards.tel_deopt_gap);
    ]

(* The Perfetto materialization: every flow becomes an "s"/"f" arrow
   pair sharing its id, the tracer never drops, and the chrome document
   carries both halves. *)
let test_telemetry_tracer_export () =
  let r = run ~shards:2 ~sessions:4000 () in
  let tel = r.Shards.telemetry in
  Alcotest.(check bool) "some steals to trace" true
    (Shards.flow_pairs tel Shards.Steal > 0);
  let tracer = Shards.telemetry_tracer tel in
  Alcotest.(check int) "exact-capacity tracer never drops" 0
    (Acsi_obs.Tracer.dropped tracer);
  let flows_out = ref 0 and flows_in = ref 0 in
  Acsi_obs.Tracer.iter tracer ~f:(fun e ->
      match e with
      | Acsi_obs.Tracer.Flow { dir = Acsi_obs.Tracer.Out; _ } ->
          incr flows_out
      | Acsi_obs.Tracer.Flow { dir = Acsi_obs.Tracer.In; _ } -> incr flows_in
      | _ -> ());
  Alcotest.(check int) "every flow half materialized"
    (List.length tel.Shards.tel_flows)
    (!flows_out + !flows_in);
  Alcotest.(check int) "out halves = in halves" !flows_out !flows_in;
  let buf = Buffer.create 4096 in
  Acsi_obs.Export.to_chrome_json buf tracer;
  let chrome = Buffer.contents buf in
  let contains sub =
    let n = String.length chrome and m = String.length sub in
    let rec go i =
      i + m <= n && (String.equal (String.sub chrome i m) sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "chrome export has flow-start arrows" true
    (contains "\"ph\":\"s\",\"cat\":\"flow\"");
  Alcotest.(check bool) "chrome export has binding flow-finish arrows" true
    (contains "\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\"");
  Alcotest.(check bool) "steal arrows are named" true (contains "\"steal\"")

let suite =
  [
    Alcotest.test_case "jobs x shards determinism matrix" `Slow
      test_jobs_determinism;
    Alcotest.test_case "seed changes the schedule" `Quick
      test_seed_sensitivity;
    Alcotest.test_case "steal conservation and fairness" `Quick
      test_steal_conservation_and_fairness;
    Alcotest.test_case "throughput scales with shards" `Quick
      test_throughput_scales;
    Alcotest.test_case "publish-once cache and adoption" `Quick
      test_publish_once_and_adoption;
    Alcotest.test_case "merged DCG preserves weight" `Quick
      test_merged_dcg_preserves_weight;
    Alcotest.test_case "Dcg.merge unit semantics" `Quick test_dcg_merge_unit;
    Alcotest.test_case "compiler pool queue policies" `Quick test_pool_policies;
    Alcotest.test_case "flow conservation and telemetry aggregates" `Quick
      test_flow_conservation_and_aggregates;
    Alcotest.test_case "telemetry jobs determinism" `Slow
      test_telemetry_jobs_determinism;
    Alcotest.test_case "telemetry tracer chrome export" `Quick
      test_telemetry_tracer_export;
  ]
