(* Observability (lib/obs): the event tracer's ring and probe-cost
   model, the reconciliation contract between tracer spans and the AOS
   accounting (sync, async and probe-on-clock runs), decision
   provenance completeness against the refusal database and the
   registry, the CCT profile's sample accounting, exporter determinism
   (including across parallel domains), and the zero-perturbation
   guarantee: a fully-instrumented run reports byte-identical metrics
   to an untraced one. *)

open Acsi_core
module Policy = Acsi_policy.Policy
module System = Acsi_aos.System
module Accounting = Acsi_aos.Accounting
module Db = Acsi_aos.Db
module Interp = Acsi_vm.Interp
module Sched = Acsi_server.Sched
module Workloads = Acsi_workloads.Workloads
module Control = Acsi_obs.Control
module Tracer = Acsi_obs.Tracer
module Export = Acsi_obs.Export
module Provenance = Acsi_obs.Provenance
module Cprof = Acsi_obs.Cprof

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let obs_all =
  {
    Control.trace = true;
    provenance = true;
    cprof = true;
    capacity = 1 lsl 20;
    probe_on_clock = false;
  }

let db ~scale = (Workloads.find "db").Workloads.build ~scale

let run_with ?(policy = Policy.Fixed 3) ~obs program =
  let cfg = Config.default ~policy in
  Runtime.run
    { cfg with Config.aos = { cfg.Config.aos with System.obs } }
    program

(* --- the tracer ring --- *)

let test_ring_and_drops () =
  let tr = Tracer.create ~capacity:4 () in
  check_bool "enabled" true (Tracer.enabled tr);
  check_bool "null disabled" false (Tracer.enabled Tracer.null);
  for k = 1 to 6 do
    Tracer.span tr ~track:"t" ~name:(string_of_int k) ~t0:0 ~t1:k
  done;
  check_int "capacity bounds length" 4 (Tracer.length tr);
  check_int "oldest two dropped" 2 (Tracer.dropped tr);
  let names = ref [] in
  Tracer.iter tr ~f:(fun e ->
      match e with
      | Tracer.Span { name; _ } -> names := name :: !names
      | _ -> ());
  Alcotest.(check (list string))
    "oldest-first survivors" [ "3"; "4"; "5"; "6" ]
    (List.rev !names);
  (* Zero-duration spans are skipped entirely. *)
  Tracer.span tr ~track:"t" ~name:"zero" ~t0:7 ~t1:7;
  check_int "zero-duration span skipped" 4 (Tracer.length tr);
  (* The null tracer records nothing and never fails. *)
  Tracer.span Tracer.null ~track:"t" ~name:"x" ~t0:0 ~t1:1;
  check_int "null holds nothing" 0 (Tracer.length Tracer.null)

let test_probe_charges_clock () =
  let charged = ref 0 in
  let tr =
    Tracer.create ~probe:5 ~charge:(fun c -> charged := !charged + c)
      ~capacity:16 ()
  in
  Tracer.span tr ~track:"t" ~name:"a" ~t0:0 ~t1:1;
  Tracer.counter tr ~track:"t" ~name:"c" ~t:1 ~value:9;
  Tracer.instant tr ~track:"t" ~name:"i" ~t:2 ();
  check_int "5 cycles per recorded event" 15 !charged;
  (* A skipped (zero-duration) span must not charge either. *)
  Tracer.span tr ~track:"t" ~name:"z" ~t0:3 ~t1:3;
  check_int "no probe cost for skipped events" 15 !charged

(* --- zero perturbation: tracing must not move a single cycle --- *)

let test_metrics_unchanged_when_traced () =
  let program = db ~scale:2 in
  let plain = (run_with ~obs:Control.off program).Runtime.metrics in
  let traced = (run_with ~obs:obs_all program).Runtime.metrics in
  check_bool "fully-instrumented run reports identical metrics" true
    (plain = traced)

(* --- reconciliation: span totals = accounting totals, exactly --- *)

let check_reconciled label sys =
  let tracer = System.tracer sys in
  check_int (label ^ ": no ring drops") 0 (Tracer.dropped tracer);
  let totals = Export.track_totals tracer in
  let acct = System.accounting sys in
  List.iter
    (fun c ->
      let nm = Accounting.component_name c in
      let span_v =
        match List.assoc_opt nm totals with Some v -> v | None -> 0
      in
      check_int
        (Printf.sprintf "%s: %s spans = accounting" label nm)
        (Accounting.get acct c) span_v)
    Accounting.all_components

let test_reconciliation_sync () =
  let result = run_with ~obs:obs_all (db ~scale:4) in
  check_reconciled "sync" result.Runtime.sys;
  (* Component tracks together cover the whole AOS overhead. *)
  let totals = Export.track_totals (System.tracer result.Runtime.sys) in
  let component_names = List.map Accounting.component_name Accounting.all_components in
  let component_sum =
    List.fold_left
      (fun acc (nm, v) ->
        if List.mem nm component_names then acc + v else acc)
      0 totals
  in
  check_int "component tracks sum to the AOS total"
    result.Runtime.metrics.Metrics.aos_cycles component_sum

(* A threaded, background-compiling run, instrumented: the async
   compile spans on the CompilationThread track must keep the
   reconciliation exact, and the overlapped share must make the
   accounting identity non-trivial (total <> app + aos). *)
let async_run () =
  let program = db ~scale:2 in
  let cfg = Config.default ~policy:(Policy.Fixed 3) in
  let vm =
    Interp.create ~cost:cfg.Config.cost
      ~sample_period:cfg.Config.sample_period
      ~invoke_stride:cfg.Config.invoke_stride program
  in
  let aos =
    { cfg.Config.aos with System.async_compile = true; obs = obs_all }
  in
  let sys = System.create aos vm in
  let sched =
    Sched.create ~quantum:25_000 ~switch_cost:200
      ~cycle_limit:cfg.Config.cycle_limit
      ~on_switch:(fun () -> System.poll_async_installs sys)
      ~tracer:(System.tracer sys) vm
  in
  let t1 = Sched.spawn sched in
  let t2 = Sched.spawn sched in
  ignore (t1, t2);
  let rec drain () =
    match Sched.run_slice sched with Some _ -> drain () | None -> ()
  in
  drain ();
  System.poll_async_installs sys;
  (vm, sys)

let test_reconciliation_async () =
  let vm, sys = async_run () in
  check_reconciled "async" sys;
  let m = Metrics.of_run vm sys in
  check_bool "background compiles installed" true (m.Metrics.async_installs > 0);
  check_bool "overlapped AOS cycles recorded" true
    (m.Metrics.overlapped_aos_cycles > 0);
  check_bool "overlap bounded by the AOS total" true
    (m.Metrics.overlapped_aos_cycles <= m.Metrics.aos_cycles);
  (* The async-accounting identity (the double-count fix): application
     time deducts only the AOS work the clock actually saw. *)
  check_int "app = total - (aos - overlapped)"
    (m.Metrics.total_cycles
    - (m.Metrics.aos_cycles - m.Metrics.overlapped_aos_cycles))
    m.Metrics.app_cycles;
  check_bool "identity is non-trivial (total <> app + aos)" true
    (m.Metrics.total_cycles <> m.Metrics.app_cycles + m.Metrics.aos_cycles);
  (* Scheduler slices land on per-thread tracks, outside the components. *)
  let totals = Export.track_totals (System.tracer sys) in
  check_bool "vthread tracks present" true
    (List.exists (fun (nm, _) -> nm = "vthread-0") totals)

let test_sync_run_has_no_overlap () =
  let m = (run_with ~obs:Control.off (db ~scale:2)).Runtime.metrics in
  check_int "stalling model: overlapped = 0" 0 m.Metrics.overlapped_aos_cycles;
  check_int "total = app + aos"
    m.Metrics.total_cycles
    (m.Metrics.app_cycles + m.Metrics.aos_cycles)

(* --- the probe-cost model --- *)

let test_probe_on_clock () =
  let program = db ~scale:2 in
  let free = run_with ~obs:obs_all program in
  let paid =
    run_with ~obs:{ obs_all with Control.probe_on_clock = true } program
  in
  check_bool "paid probes slow the run down" true
    (paid.Runtime.metrics.Metrics.total_cycles
    > free.Runtime.metrics.Metrics.total_cycles);
  (* Probe cycles go to the clock only, never to a component, so the
     reconciliation contract survives the perturbed run too. *)
  check_reconciled "probe-on-clock" paid.Runtime.sys

(* --- decision provenance --- *)

let prov_of sys =
  match System.provenance sys with
  | Some prov -> prov
  | None -> Alcotest.fail "provenance store missing"

let test_provenance_completeness () =
  let result = run_with ~obs:obs_all (db ~scale:4) in
  let sys = result.Runtime.sys in
  let prov = prov_of sys in
  let inlined, refused = Provenance.outcome_counts prov in
  check_int "outcomes partition the decisions"
    (Provenance.count prov)
    (inlined + refused);
  check_bool "decisions were recorded" true (Provenance.count prov > 0);
  (* Every inline the registry's installed code carries was decided
     through the oracle, hence recorded (recompiled-away versions only
     add more decisions). *)
  let m = result.Runtime.metrics in
  check_bool "registry inlines all have decisions" true
    (m.Metrics.inline_total > 0 && inlined >= m.Metrics.inline_total);
  (* Every refusal edge the database holds was refused at least once
     with the same taxonomy reason. *)
  let refused_with reason =
    List.length
      (List.filter
         (fun (d : Provenance.decision) ->
           match d.Provenance.d_info.Provenance.i_outcome with
           | Provenance.Refused r -> String.equal r reason
           | Provenance.Inlined _ -> false)
         (Provenance.all prov))
  in
  List.iter
    (fun (reason, n) ->
      let reason = Acsi_jit.Oracle.refusal_reason_to_string reason in
      check_bool
        (Printf.sprintf "db reason %s backed by >= %d decisions" reason n)
        true
        (refused_with reason >= n))
    (Db.refusal_reasons (System.db sys));
  (* Sequence numbers are the emission order, densely. *)
  List.iteri
    (fun i (d : Provenance.decision) -> check_int "dense d_seq" i d.Provenance.d_seq)
    (Provenance.all prov)

let test_provenance_at_query () =
  let result = run_with ~obs:obs_all (db ~scale:4) in
  let prov = prov_of result.Runtime.sys in
  let all = Provenance.all prov in
  let some_caller =
    match all with
    | d :: _ -> d.Provenance.d_info.Provenance.i_context.(0).Acsi_profile.Trace.caller
    | [] -> Alcotest.fail "no decisions"
  in
  let manual ?pc () =
    List.filter
      (fun (d : Provenance.decision) ->
        let e = d.Provenance.d_info.Provenance.i_context.(0) in
        e.Acsi_profile.Trace.caller = some_caller
        && match pc with None -> true | Some pc -> e.Acsi_profile.Trace.callsite = pc)
      all
  in
  let got = Provenance.at prov ~caller:some_caller () in
  check_int "at ~caller matches a manual filter"
    (List.length (manual ())) (List.length got);
  check_bool "at ~caller is non-empty" true (got <> []);
  let pc =
    (List.hd got).Provenance.d_info.Provenance.i_context.(0)
      .Acsi_profile.Trace.callsite
  in
  check_int "at ~caller ~callsite matches too"
    (List.length (manual ~pc ()))
    (List.length (Provenance.at prov ~caller:some_caller ~callsite:pc ()))

(* --- the CCT profile --- *)

let test_cprof_accounting () =
  let result = run_with ~obs:obs_all (db ~scale:4) in
  let cp =
    match System.cprof result.Runtime.sys with
    | Some cp -> cp
    | None -> Alcotest.fail "cprof missing"
  in
  check_bool "samples taken" true (Cprof.samples cp > 0);
  check_int "every sample attributes one period of cycles"
    (Cprof.samples cp * Interp.sample_period result.Runtime.vm)
    (Cprof.total_weight cp);
  check_bool "context nodes exist" true (Cprof.node_count cp > 0);
  let render r =
    Format.asprintf "%a"
      (Cprof.pp_flame
         ~name:(fun mid ->
           (Acsi_bytecode.Program.meth (Interp.program r.Runtime.vm) mid)
             .Acsi_bytecode.Meth.name)
         ?min_pct:None)
      cp
  in
  (* Two renders of the same tree are identical (sorted children, no
     hash-order leak). *)
  Alcotest.(check string) "flamegraph renders deterministically"
    (render result) (render result)

(* --- exporters --- *)

let chrome_of sys =
  let buf = Buffer.create 4096 in
  Export.to_chrome_json buf (System.tracer sys);
  Buffer.contents buf

let test_export_shapes () =
  let result = run_with ~obs:obs_all (db ~scale:2) in
  let tracer = System.tracer result.Runtime.sys in
  let chrome = chrome_of result.Runtime.sys in
  check_bool "chrome document shape" true
    (String.length chrome > 2
    && String.sub chrome 0 16 = "{\"traceEvents\":["
    && String.sub chrome (String.length chrome - 3) 3 = "]}\n");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
    in
    go 0
  in
  check_bool "thread-name metadata present" true
    (contains chrome "\"thread_name\"");
  check_bool "component track named" true (contains chrome "CompilationThread");
  let buf = Buffer.create 4096 in
  Export.to_jsonl buf tracer;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one JSONL line per event" (Tracer.length tracer)
    (List.length lines)

(* Identical traced runs produce byte-identical exports, whether they
   execute serially or fanned out across domains (the --jobs contract,
   extended to the event stream). *)
let test_export_determinism_across_domains () =
  let serial = chrome_of (run_with ~obs:obs_all (db ~scale:2)).Runtime.sys in
  let parallel =
    Parallel.map ~jobs:4
      (fun () -> chrome_of (run_with ~obs:obs_all (db ~scale:2)).Runtime.sys)
      [ (); (); (); () ]
  in
  List.iteri
    (fun i t ->
      Alcotest.(check string)
        (Printf.sprintf "domain %d matches the serial export" i)
        serial t)
    parallel

(* --- log-bucketed histograms (fleet telemetry, generation two) --- *)

module Hist = Acsi_obs.Hist
module Timeseries = Acsi_obs.Timeseries
module Load = Acsi_server.Load

let test_hist_basics () =
  let h = Hist.create () in
  check_int "empty quantile" 0 (Hist.quantile h 99.0);
  List.iter (Hist.record h) [ 5; 5; 7; 100; 100_000 ];
  check_int "exact count" 5 (Hist.count h);
  check_int "exact sum" (5 + 5 + 7 + 100 + 100_000) (Hist.sum h);
  check_int "exact min" 5 (Hist.min_value h);
  check_int "exact max" 100_000 (Hist.max_value h);
  (* Values below 2^sub_bits land in exact unit buckets. *)
  check_int "small values are exact" 5 (Hist.quantile h 20.0);
  check_int "p100 is the exact max" 100_000 (Hist.quantile h 100.0);
  Hist.record h (-3);
  check_int "negatives clamp to 0" 0 (Hist.min_value h);
  (* iter_buckets visits ascending, non-empty only, covering the count. *)
  let total = ref 0 and last_hi = ref (-1) in
  Hist.iter_buckets h ~f:(fun ~lo ~hi ~count ->
      check_bool "ascending buckets" true (lo > !last_hi);
      check_bool "lo <= hi" true (lo <= hi);
      last_hi := hi;
      total := !total + count);
  check_int "buckets cover every recording" (Hist.count h) !total

let test_hist_merge_equals_replay () =
  let xs = List.init 500 (fun i -> (i * 7919) mod 300_000) in
  let one = Hist.create () in
  List.iter (Hist.record one) xs;
  let a = Hist.create () and b = Hist.create () in
  List.iteri
    (fun i v -> Hist.record (if i mod 2 = 0 then a else b) v)
    xs;
  Hist.merge ~into:a b;
  check_int "merged count" (Hist.count one) (Hist.count a);
  check_int "merged sum" (Hist.sum one) (Hist.sum a);
  check_int "merged max" (Hist.max_value one) (Hist.max_value a);
  check_int "merged checksum" (Hist.checksum one) (Hist.checksum a);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "merged p%.0f" p)
        (Hist.quantile one p) (Hist.quantile a p))
    [ 50.0; 90.0; 99.0 ]

(* The accuracy contract, pinned differentially: for any multiset and
   percentile, the histogram quantile brackets the exact nearest-rank
   reference spec Load.percentile within one bucket's relative error. *)
let prop_hist_quantile_brackets_percentile =
  QCheck.Test.make
    ~name:"hist quantiles bracket Load.percentile within a bucket" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 1 300) (int_range 0 5_000_000)))
    (fun (sub_bits, values) ->
      let h = Hist.create ~sub_bits () in
      List.iter (Hist.record h) values;
      let arr = Array.of_list values in
      List.for_all
        (fun p ->
          let exact = Load.percentile arr p in
          let q = Hist.quantile h p in
          exact <= q && q <= exact + (exact asr sub_bits) + 1
          ||
          QCheck.Test.fail_reportf
            "p%.0f of %d values: exact %d, hist %d outside [%d, %d] \
             (sub_bits %d)"
            p (List.length values) exact q exact
            (exact + (exact asr sub_bits) + 1)
            sub_bits)
        [ 1.0; 25.0; 50.0; 90.0; 95.0; 99.0; 100.0 ])

(* Merge order is immaterial: a histogram is a pure function of the
   recorded multiset. *)
let prop_hist_merge_commutes =
  QCheck.Test.make ~name:"hist merge is order-insensitive" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 100) (int_range 0 1_000_000))
        (list_of_size Gen.(int_range 0 100) (int_range 0 1_000_000)))
    (fun (xs, ys) ->
      let mk vs =
        let h = Hist.create () in
        List.iter (Hist.record h) vs;
        h
      in
      let ab = mk xs and ba = mk ys in
      Hist.merge ~into:ab (mk ys);
      Hist.merge ~into:ba (mk xs);
      Hist.checksum ab = Hist.checksum ba
      && Hist.count ab = Hist.count ba
      && Hist.sum ab = Hist.sum ba
      && Hist.quantile ab 99.0 = Hist.quantile ba 99.0)

(* --- virtual-clock time-series --- *)

let test_timeseries_basics () =
  let s = Timeseries.create ~interval:10 ~columns:[ "gauge"; "total" ] in
  check_int "empty last" 0 (Timeseries.last s "total");
  for i = 1 to 40 do
    Timeseries.sample s ~now:(i * 10) [| i mod 4; i |]
  done;
  check_int "rows" 40 (Timeseries.length s);
  check_int "last of cumulative column" 40 (Timeseries.last s "total");
  let t, vs = Timeseries.row s 0 in
  check_int "first row time" 10 t;
  check_int "first row gauge" 1 vs.(0);
  check_int "column extraction" 40
    (Array.length (Timeseries.column s "gauge"));
  (* The checksum is order-sensitive: swapping two samples changes it. *)
  let s2 = Timeseries.create ~interval:10 ~columns:[ "gauge"; "total" ] in
  for i = 40 downto 1 do
    Timeseries.sample s2 ~now:(i * 10) [| i mod 4; i |]
  done;
  check_bool "checksum sees row order" true
    (Timeseries.checksum s <> Timeseries.checksum s2);
  Alcotest.check_raises "arity is enforced"
    (Invalid_argument "Timeseries.sample: wrong arity") (fun () ->
      Timeseries.sample s ~now:500 [| 1 |])

let test_sparkline () =
  Alcotest.(check string)
    "max maps to the full block, zero to the baseline"
    "\xe2\x96\x81\xe2\x96\x84\xe2\x96\x88"
    (Timeseries.spark [| 0; 7; 14 |]);
  Alcotest.(check string)
    "all-zero input flatlines" "\xe2\x96\x81\xe2\x96\x81"
    (Timeseries.spark [| 0; 0 |]);
  Alcotest.(check string) "empty input renders empty" ""
    (Timeseries.spark [||])

(* --- telemetry text renderers --- *)

let test_telemetry_renderers () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
    in
    go 0
  in
  let s = Timeseries.create ~interval:5 ~columns:[ "depth" ] in
  Timeseries.sample s ~now:5 [| 3 |];
  Timeseries.sample s ~now:10 [| 4 |];
  let h = Hist.create () in
  List.iter (Hist.record h) [ 1; 2; 2; 900 ];
  let buf = Buffer.create 256 in
  Export.series_openmetrics buf ~prefix:"acsi_"
    ~labels:[ ("shard", "0") ] s;
  Export.hist_openmetrics buf ~name:"acsi_lat" ~labels:[ ("shard", "0") ] h;
  let om = Buffer.contents buf in
  check_bool "openmetrics TYPE line" true
    (contains om "# TYPE acsi_depth gauge");
  check_bool "openmetrics labeled sample" true
    (contains om "acsi_depth{shard=\"0\"} 3 5\n");
  check_bool "openmetrics +Inf bucket carries the count" true
    (contains om "acsi_lat_bucket{shard=\"0\",le=\"+Inf\"} 4");
  check_bool "openmetrics exact sum" true
    (contains om "acsi_lat_sum{shard=\"0\"} 905");
  Buffer.clear buf;
  Export.series_jsonl buf ~name:"shard" ~labels:[ ("shard", "0") ] s;
  Export.hist_jsonl buf ~name:"lat" h;
  let jl = Buffer.contents buf in
  check_bool "jsonl sample line" true
    (contains jl "{\"ev\":\"sample\",\"series\":\"shard\",\"shard\":\"0\",\"t\":5,\"depth\":3}");
  check_bool "jsonl hist line carries count and sum" true
    (contains jl "\"count\":4,\"sum\":905")

let suite =
  [
    Alcotest.test_case "ring capacity and drops" `Quick test_ring_and_drops;
    Alcotest.test_case "probe charges the clock" `Quick
      test_probe_charges_clock;
    Alcotest.test_case "tracing does not perturb metrics" `Quick
      test_metrics_unchanged_when_traced;
    Alcotest.test_case "reconciliation (sync)" `Quick
      test_reconciliation_sync;
    Alcotest.test_case "reconciliation (async server)" `Quick
      test_reconciliation_async;
    Alcotest.test_case "sync runs have no overlap" `Quick
      test_sync_run_has_no_overlap;
    Alcotest.test_case "probe-on-clock cost model" `Quick test_probe_on_clock;
    Alcotest.test_case "provenance completeness" `Quick
      test_provenance_completeness;
    Alcotest.test_case "provenance queries" `Quick test_provenance_at_query;
    Alcotest.test_case "cprof sample accounting" `Quick test_cprof_accounting;
    Alcotest.test_case "export shapes" `Quick test_export_shapes;
    Alcotest.test_case "export determinism across domains" `Quick
      test_export_determinism_across_domains;
    Alcotest.test_case "hist basics" `Quick test_hist_basics;
    Alcotest.test_case "hist merge equals replay" `Quick
      test_hist_merge_equals_replay;
    QCheck_alcotest.to_alcotest prop_hist_quantile_brackets_percentile;
    QCheck_alcotest.to_alcotest prop_hist_merge_commutes;
    Alcotest.test_case "timeseries basics" `Quick test_timeseries_basics;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "telemetry text renderers" `Quick
      test_telemetry_renderers;
  ]
