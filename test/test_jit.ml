(* Unit tests for the JIT: size classes, the oracle's decision logic, and
   the inline expander's transformation (exercised by executing the code
   it produces). *)

open Acsi_bytecode
open Acsi_vm
open Acsi_jit
open Acsi_profile
open Acsi_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Size --- *)

let test_size_classes () =
  let classify u = Size.classify ~units:u in
  check_bool "tiny" true (classify 7 = Size.Tiny);
  check_bool "small lower" true (classify 8 = Size.Small);
  check_bool "small upper" true (classify 19 = Size.Small);
  check_bool "medium lower" true (classify 20 = Size.Medium);
  check_bool "medium upper" true (classify 99 = Size.Medium);
  check_bool "large" true (classify 100 = Size.Large)

let test_size_estimate_const_discount () =
  let m =
    {
      Meth.id = Ids.Method_id.of_int 0;
      owner = Ids.Class_id.of_int 0;
      name = "m";
      selector = Ids.Selector.of_int 0;
      kind = Meth.Static;
      arity = 2;
      returns = true;
      body = Array.make 24 Instr.Nop;
      max_locals = 2;
      max_stack = 0;
    }
  in
  let base = Size.estimate m ~const_args:0 in
  let with_consts = Size.estimate m ~const_args:2 in
  check_int "no discount" 24 base;
  check_bool "discounted" true (with_consts < base);
  check_bool "never below 1" true (Size.estimate m ~const_args:100 >= 1)

let test_const_args_at () =
  let sel = Ids.Selector.of_int 0 in
  let body =
    [|
      Instr.Load 0;
      Instr.Const 1;
      Instr.Const 2;
      Instr.Call_virtual (sel, 2);
      Instr.Return_void;
    |]
  in
  check_int "two consts" 2 (Size.const_args_at body ~pc:3);
  let body2 =
    [| Instr.Load 0; Instr.Load 1; Instr.Call_virtual (sel, 1); Instr.Return_void |]
  in
  check_int "no consts" 0 (Size.const_args_at body2 ~pc:2)

(* --- shared fixture: a program with tiny/medium/large callees and a
   polymorphic hierarchy --- *)

let fixture () =
  let open Dsl in
  let filler n =
    (* [n] statements that survive as ~3 instructions each *)
    List.init n (fun k -> let_ "t" (add (i k) (i 1)))
  in
  let classes =
    [
      cls "A" ~fields:[] [ meth "poly" [] ~returns:true [ ret (i 1) ] ];
      cls "B" ~parent:"A" ~fields:[] [ meth "poly" [] ~returns:true [ ret (i 2) ] ];
      cls "C" ~parent:"A" ~fields:[] [ meth "poly" [] ~returns:true [ ret (i 3) ] ];
      cls "T" ~fields:[]
        [
          static_meth "tiny" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ];
          static_meth "medium" [ "x" ] ~returns:true
            (filler 12 @ [ ret (mul (v "x") (i 3)) ]);
          static_meth "large" [ "x" ] ~returns:true
            (filler 40 @ [ ret (v "x") ]);
          static_meth "recur" [ "x" ] ~returns:true
            [
              if_ (le (v "x") (i 0)) [ ret (i 0) ] [];
              ret (call "T" "recur" [ sub (v "x") (i 1) ]);
            ];
          static_meth "caller" [ "o"; "x" ] ~returns:true
            [
              let_ "a" (call "T" "tiny" [ v "x" ]);
              let_ "b" (call "T" "medium" [ v "x" ]);
              let_ "c" (call "T" "large" [ v "x" ]);
              let_ "d" (inv (v "o") "poly" []);
              ret (add (add (v "a") (v "b")) (add (v "c") (v "d")));
            ];
        ];
    ]
  in
  Compile.prog
    (prog classes
       [
         print (call "T" "caller" [ new_ "A" []; i 5 ]);
         print (call "T" "caller" [ new_ "B" []; i 5 ]);
         print (call "T" "recur" [ i 3 ]);
       ])

let find program name = Program.find_method program ~cls:"T" ~name

let compile_with ?rules program root =
  let rules = match rules with Some r -> r | None -> Rules.empty () in
  let oracle = Oracle.create program in
  Oracle.set_rules oracle rules;
  Expand.compile program Cost.default oracle ~root

(* Run the program with [code] installed for [root] and compare output to
   the baseline. *)
let preserves_output program root code =
  let base_vm = Interp.create program in
  Interp.run base_vm;
  let vm = Interp.create program in
  Interp.install_code vm root.Meth.id code;
  Interp.run vm;
  Alcotest.(check (list int))
    "behaviour preserved" (Interp.output base_vm) (Interp.output vm)

(* --- oracle --- *)

let decide ?rules ?(site = 0) ?(depth = 0)
    ?(expanded_units = 0) program root call =
  let rules = match rules with Some r -> r | None -> Rules.empty () in
  let oracle = Oracle.create program in
  Oracle.set_rules oracle rules;
  Oracle.decide oracle ~root
    ~site_chain:[| { Trace.caller = root.Meth.id; callsite = site } |]
    ~chain_methods:[ root.Meth.id ] ~depth ~expanded_units ~call ~const_args:0

let test_oracle_tiny_always () =
  let program = fixture () in
  let caller = find program "caller" in
  let tiny = find program "tiny" in
  match decide program caller (Instr.Call_static tiny.Meth.id) with
  | Oracle.Inline [ { Oracle.target; guarded = false; _ } ] ->
      check_bool "tiny inlined" true (Ids.Method_id.equal target tiny.Meth.id)
  | Oracle.Inline _ | Oracle.No_inline -> Alcotest.fail "tiny must inline"

let test_oracle_large_never () =
  let program = fixture () in
  let caller = find program "caller" in
  let large = find program "large" in
  check_bool "large refused" true
    (decide program caller (Instr.Call_static large.Meth.id) = Oracle.No_inline)

let test_oracle_medium_needs_profile () =
  let program = fixture () in
  let caller = find program "caller" in
  let medium = find program "medium" in
  let call = Instr.Call_static medium.Meth.id in
  check_bool "cold medium refused" true
    (decide program caller call = Oracle.No_inline);
  let rules =
    Rules.of_hot_traces
      [
        ( Trace.make ~callee:medium.Meth.id
            ~chain:[ { Trace.caller = caller.Meth.id; callsite = 4 } ],
          100.0 );
      ]
  in
  match decide ~rules ~site:4 program caller call with
  | Oracle.Inline [ { Oracle.guarded = false; _ } ] -> ()
  | Oracle.Inline _ | Oracle.No_inline ->
      Alcotest.fail "hot medium must inline"

let test_oracle_recursion_refused () =
  let program = fixture () in
  let recur = find program "recur" in
  check_bool "self call refused" true
    (decide program recur (Instr.Call_static recur.Meth.id) = Oracle.No_inline)

let test_oracle_depth_limit () =
  let program = fixture () in
  let caller = find program "caller" in
  let tiny = find program "tiny" in
  check_bool "too deep" true
    (decide ~depth:99 program caller (Instr.Call_static tiny.Meth.id)
    = Oracle.No_inline)

let test_oracle_budget_limit () =
  let program = fixture () in
  let caller = find program "caller" in
  let tiny = find program "tiny" in
  check_bool "budget exhausted" true
    (decide ~expanded_units:100_000 program caller
       (Instr.Call_static tiny.Meth.id)
    = Oracle.No_inline)

let test_oracle_polymorphic_guarded () =
  let program = fixture () in
  let caller = find program "caller" in
  let a_poly = Program.find_method program ~cls:"A" ~name:"poly" in
  let b_poly = Program.find_method program ~cls:"B" ~name:"poly" in
  let sel = a_poly.Meth.selector in
  let site = 17 in
  let mk callee w =
    ( Trace.make ~callee
        ~chain:[ { Trace.caller = caller.Meth.id; callsite = site } ],
      w )
  in
  let rules =
    Rules.of_hot_traces [ mk a_poly.Meth.id 60.0; mk b_poly.Meth.id 40.0 ]
  in
  match decide ~rules ~site program caller (Instr.Call_virtual (sel, 0)) with
  | Oracle.Inline targets ->
      check_int "two guarded targets" 2 (List.length targets);
      check_bool "all guarded" true
        (List.for_all (fun t -> t.Oracle.guarded) targets);
      (match targets with
      | { Oracle.target; _ } :: _ ->
          check_bool "dominant first" true
            (Ids.Method_id.equal target a_poly.Meth.id)
      | [] -> Alcotest.fail "unreachable")
  | Oracle.No_inline -> Alcotest.fail "hot polymorphic site must inline"

let test_oracle_cold_polymorphic_refused () =
  let program = fixture () in
  let caller = find program "caller" in
  let a_poly = Program.find_method program ~cls:"A" ~name:"poly" in
  check_bool "no profile, no guarded inlining" true
    (decide program caller (Instr.Call_virtual (a_poly.Meth.selector, 0))
    = Oracle.No_inline)

let test_oracle_refusal_reported () =
  let program = fixture () in
  let caller = find program "caller" in
  let large = find program "large" in
  let oracle = Oracle.create program in
  let site = 9 in
  Oracle.set_rules oracle
    (Rules.of_hot_traces
       [
         ( Trace.make ~callee:large.Meth.id
             ~chain:[ { Trace.caller = caller.Meth.id; callsite = site } ],
           50.0 );
       ]);
  let reported = ref None in
  Oracle.set_on_refusal oracle (fun ~site:_ ~callee reason ->
      reported := Some (callee, reason));
  ignore
    (Oracle.decide oracle ~root:caller
       ~site_chain:[| { Trace.caller = caller.Meth.id; callsite = site } |]
       ~chain_methods:[ caller.Meth.id ] ~depth:0 ~expanded_units:0
       ~call:(Instr.Call_static large.Meth.id) ~const_args:0);
  match !reported with
  | Some (callee, Oracle.Too_large) ->
      check_bool "refused callee" true (Ids.Method_id.equal callee large.Meth.id)
  | Some (_, other) ->
      Alcotest.failf "unexpected reason %s" (Oracle.refusal_reason_to_string other)
  | None -> Alcotest.fail "expected a refusal report"

(* --- expander --- *)

let test_expand_static_inline_runs () =
  let program = fixture () in
  let caller = find program "caller" in
  let code, stats = compile_with program caller in
  check_bool "inlined something" true (stats.Expand.inline_count > 0);
  preserves_output program caller code

let test_expand_guarded_inline_runs () =
  let program = fixture () in
  let caller = find program "caller" in
  let a_poly = Program.find_method program ~cls:"A" ~name:"poly" in
  let b_poly = Program.find_method program ~cls:"B" ~name:"poly" in
  (* Find the polymorphic call site in caller's body. *)
  let site = ref (-1) in
  Array.iteri
    (fun pc instr ->
      match instr with Instr.Call_virtual _ -> site := pc | _ -> ())
    caller.Meth.body;
  check_bool "found site" true (!site >= 0);
  let mk callee w =
    ( Trace.make ~callee
        ~chain:[ { Trace.caller = caller.Meth.id; callsite = !site } ],
      w )
  in
  let rules =
    Rules.of_hot_traces [ mk a_poly.Meth.id 60.0; mk b_poly.Meth.id 40.0 ]
  in
  let code, stats = compile_with ~rules program caller in
  check_int "two guards" 2 stats.Expand.guard_count;
  (* Execution covers a guard hit (A receiver) and a chained guard (B), and
     class C — absent from the rules — would take the fallback. *)
  preserves_output program caller code

let test_expand_fallback_path () =
  (* A receiver class that no guard expects must reach the fallback
     virtual call. *)
  let program = fixture () in
  let caller = find program "caller" in
  let a_poly = Program.find_method program ~cls:"A" ~name:"poly" in
  let site = ref (-1) in
  Array.iteri
    (fun pc instr ->
      match instr with Instr.Call_virtual _ -> site := pc | _ -> ())
    caller.Meth.body;
  let rules =
    Rules.of_hot_traces
      [
        ( Trace.make ~callee:a_poly.Meth.id
            ~chain:[ { Trace.caller = caller.Meth.id; callsite = !site } ],
          60.0 );
      ]
  in
  let code, _ = compile_with ~rules program caller in
  let vm = Interp.create program in
  Interp.install_code vm caller.Meth.id code;
  Interp.run vm;
  (* The B receiver misses A's guard. *)
  check_bool "guard misses happened" true (Interp.guard_misses vm > 0);
  let base = Interp.create program in
  Interp.run base;
  Alcotest.(check (list int)) "output" (Interp.output base) (Interp.output vm)

let test_expand_source_map () =
  let program = fixture () in
  let caller = find program "caller" in
  let tiny = find program "tiny" in
  let code, _ = compile_with program caller in
  (* Every pc must map to a source method; at least one instruction must
     come from the inlined tiny body with caller as its parent. *)
  match code.Code.src with
  | None -> Alcotest.fail "optimized code must carry a source map"
  | Some entries ->
      check_int "map covers code" (Array.length code.Code.instrs)
        (Array.length entries);
      let from_tiny =
        Array.exists
          (fun e ->
            Ids.Method_id.equal e.Code.src_meth tiny.Meth.id
            && (match e.Code.parents with
               | (parent, _) :: _ -> Ids.Method_id.equal parent caller.Meth.id
               | [] -> false))
          entries
      in
      check_bool "tiny body attributed with parent" true from_tiny

let test_expand_verifies () =
  (* The expander re-verifies its output; a successful compile implies the
     bytecode invariants held. Check max_stack grew sensibly. *)
  let program = fixture () in
  let caller = find program "caller" in
  let code, _ = compile_with program caller in
  check_bool "max stack positive" true (code.Code.max_stack > 0);
  check_bool "locals grew for inlinee frames" true
    (code.Code.max_locals >= caller.Meth.max_locals)

let test_expand_stats_accounting () =
  let program = fixture () in
  let caller = find program "caller" in
  let _, stats = compile_with program caller in
  check_int "bytes = units x opt bytes" stats.Expand.code_bytes
    (stats.Expand.expanded_units * Cost.default.Cost.opt_bytes_per_unit);
  check_int "cycles = fixed + units x unit"
    stats.Expand.compile_cycles
    (Cost.default.Cost.opt_compile_fixed
    + (stats.Expand.expanded_units * Cost.default.Cost.opt_compile_unit))

let test_expand_no_rules_no_guards () =
  let program = fixture () in
  let caller = find program "caller" in
  let _, stats = compile_with program caller in
  check_int "no guards without profile" 0 stats.Expand.guard_count

let suite =
  [
    Alcotest.test_case "size classes" `Quick test_size_classes;
    Alcotest.test_case "size estimate discount" `Quick
      test_size_estimate_const_discount;
    Alcotest.test_case "const args scan" `Quick test_const_args_at;
    Alcotest.test_case "oracle: tiny always" `Quick test_oracle_tiny_always;
    Alcotest.test_case "oracle: large never" `Quick test_oracle_large_never;
    Alcotest.test_case "oracle: medium needs profile" `Quick
      test_oracle_medium_needs_profile;
    Alcotest.test_case "oracle: recursion refused" `Quick
      test_oracle_recursion_refused;
    Alcotest.test_case "oracle: depth limit" `Quick test_oracle_depth_limit;
    Alcotest.test_case "oracle: budget limit" `Quick test_oracle_budget_limit;
    Alcotest.test_case "oracle: polymorphic guarded" `Quick
      test_oracle_polymorphic_guarded;
    Alcotest.test_case "oracle: cold polymorphic refused" `Quick
      test_oracle_cold_polymorphic_refused;
    Alcotest.test_case "oracle: refusal reported" `Quick
      test_oracle_refusal_reported;
    Alcotest.test_case "expand: static inline" `Quick
      test_expand_static_inline_runs;
    Alcotest.test_case "expand: guarded inline" `Quick
      test_expand_guarded_inline_runs;
    Alcotest.test_case "expand: fallback path" `Quick test_expand_fallback_path;
    Alcotest.test_case "expand: source map" `Quick test_expand_source_map;
    Alcotest.test_case "expand: verified output" `Quick test_expand_verifies;
    Alcotest.test_case "expand: stats accounting" `Quick
      test_expand_stats_accounting;
    Alcotest.test_case "expand: no rules, no guards" `Quick
      test_expand_no_rules_no_guards;
  ]
