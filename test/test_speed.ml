(* Tests for the simulator speed overhaul: the pre-decoded, batched
   interpreter against the naive reference loop (bit-identical clocks,
   counters, output, and hook firing points), sweep determinism across
   domain counts, and the DCG per-site index. *)

open Acsi_bytecode
open Acsi_core
module Interp = Acsi_vm.Interp
module Dcode = Acsi_vm.Dcode
module Dcg = Acsi_profile.Dcg
module Trace = Acsi_profile.Trace
module Workloads = Acsi_workloads.Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let mid = Ids.Method_id.of_int

let trace callee chain =
  Trace.make ~callee:(mid callee)
    ~chain:
      (List.map (fun (c, s) -> { Trace.caller = mid c; callsite = s }) chain)

(* --- determinism regressions --- *)

(* The same workload run twice produces identical metrics, output, and
   profile mass: nothing in the VM or AOS depends on wall-clock, address
   hashing, or other ambient state. *)
let test_run_twice () =
  let program = (Workloads.find "db").Workloads.build ~scale:1 in
  let run () =
    Runtime.run (Config.default ~policy:(Acsi_policy.Policy.Fixed 3)) program
  in
  let a = run () in
  let b = run () in
  check_bool "metrics identical" true (a.Runtime.metrics = b.Runtime.metrics);
  check_bool "output identical" true
    (Interp.output a.Runtime.vm = Interp.output b.Runtime.vm);
  check_bool "profile mass identical" true
    (Dcg.total_weight (Acsi_aos.System.dcg a.Runtime.sys)
    = Dcg.total_weight (Acsi_aos.System.dcg b.Runtime.sys))

(* A sweep fanned across 4 domains is the same sweep as the serial one —
   the cells are independent and collected by index. *)
let test_sweep_jobs () =
  let benches =
    List.map
      (fun name ->
        {
          Experiment.name;
          program = (Workloads.find name).Workloads.build ~scale:1;
        })
      [ "db"; "jess" ]
  in
  let policies =
    Acsi_policy.Policy.[ Fixed 2; Parameterless 3 ]
  in
  let cfg = Config.default ~policy:Acsi_policy.Policy.Context_insensitive in
  let s1 = Experiment.run_sweep ~jobs:1 cfg ~benches ~policies in
  let s4 = Experiment.run_sweep ~jobs:4 cfg ~benches ~policies in
  check_bool "bench names" true
    (s1.Experiment.bench_names = s4.Experiment.bench_names);
  check_bool "baselines" true
    (s1.Experiment.baselines = s4.Experiment.baselines);
  check_bool "points" true (s1.Experiment.points = s4.Experiment.points);
  check_bool "cell cycles" true
    (List.map (fun t -> t.Experiment.t_cycles) s1.Experiment.timings
    = List.map (fun t -> t.Experiment.t_cycles) s4.Experiment.timings)

(* --- DCG site index --- *)

let test_site_index () =
  let dcg = Dcg.create () in
  let t1 = trace 10 [ (1, 2) ] in
  let t2 = trace 11 [ (1, 2) ] in
  let t3 = trace 10 [ (1, 2); (3, 4) ] in
  let t4 = trace 12 [ (5, 6) ] in
  for _ = 1 to 4 do
    Dcg.add_sample dcg t1
  done;
  Dcg.add_sample dcg t2;
  Dcg.add_sample dcg t3;
  Dcg.add_sample dcg t3;
  Dcg.add_sample dcg t4;
  check_int "two live sites" 2 (Dcg.site_count dcg);
  check_int "three traces at (1,2)" 3
    (Dcg.site_entry_count dcg ~caller:(mid 1) ~callsite:2);
  check_bool "edge weight sums depths" true
    (Dcg.edge_weight dcg ~caller:(mid 1) ~callsite:2 ~callee:(mid 10) = 6.0);
  (match Dcg.site_distribution dcg ~caller:(mid 1) ~callsite:2 with
  | [ (c10, 6.0); (c11, 1.0) ] ->
      check_bool "distribution callees" true
        (Ids.Method_id.equal c10 (mid 10) && Ids.Method_id.equal c11 (mid 11))
  | other ->
      Alcotest.failf "unexpected distribution (%d entries)" (List.length other));
  (* Decay prunes t2 (1.0 -> 0.5) and t4; the index must follow: the
     (5,6) site empties out and is dropped, (1,2) keeps two traces. *)
  Dcg.decay dcg ~factor:0.5 ~prune_below:0.6;
  check_int "pruned trace leaves site" 2
    (Dcg.site_entry_count dcg ~caller:(mid 1) ~callsite:2);
  check_int "empty site dropped" 0
    (Dcg.site_entry_count dcg ~caller:(mid 5) ~callsite:6);
  check_int "one live site" 1 (Dcg.site_count dcg);
  check_bool "post-decay edge weight" true
    (Dcg.edge_weight dcg ~caller:(mid 1) ~callsite:2 ~callee:(mid 10) = 3.0);
  check_bool "post-decay total" true (Dcg.total_weight dcg = 3.0);
  (* Prune everything. *)
  Dcg.decay dcg ~factor:0.1 ~prune_below:1.0;
  check_int "all sites dropped" 0 (Dcg.site_count dcg);
  check_int "table empty" 0 (Dcg.size dcg);
  check_bool "total ~ 0" true (Float.abs (Dcg.total_weight dcg) < 1e-9)

(* The cached trace hash is the documented structural formula, and stays
   consistent through [edge] (which rebuilds the chain). *)
let test_trace_hash () =
  let manual callee chain =
    let h = ref (Ids.Method_id.hash (mid callee)) in
    List.iter
      (fun (c, s) ->
        h := (!h * 31) + Ids.Method_id.hash (mid c);
        h := (!h * 31) + s)
      chain;
    !h land max_int
  in
  let t = trace 7 [ (1, 2); (3, 4) ] in
  check_int "hash is the structural formula" (manual 7 [ (1, 2); (3, 4) ])
    (Trace.hash t);
  check_int "edge recomputes the cache" (manual 7 [ (1, 2) ])
    (Trace.hash (Trace.edge t));
  check_int "edge hash equals a fresh depth-1 trace"
    (Trace.hash (trace 7 [ (1, 2) ]))
    (Trace.hash (Trace.edge t))

(* --- pre-decoded interpreter --- *)

(* The decoder keeps the stream 1:1 with source pcs and actually fuses
   something on real workloads; [~fuse:false] fuses nothing. *)
let test_decoder_shape () =
  let program = (Workloads.find "db").Workloads.build ~scale:1 in
  let vm = Interp.create program in
  let vm_nofuse = Interp.create ~fuse:false program in
  let total_fused = ref 0 in
  Array.iter
    (fun (m : Meth.t) ->
      let id = m.Meth.id in
      let code = Interp.code_of vm id in
      let dc = Interp.decoded_of vm id in
      check_int
        (Printf.sprintf "stream 1:1 for %s" m.Meth.name)
        (Array.length code.Acsi_vm.Code.instrs)
        (Array.length dc.Dcode.ops);
      total_fused := !total_fused + Dcode.fused_count dc;
      check_int
        (Printf.sprintf "no fusion when disabled for %s" m.Meth.name)
        0
        (Dcode.fused_count (Interp.decoded_of vm_nofuse id)))
    (Program.methods program);
  check_bool "superinstructions selected somewhere" true (!total_fused > 0)

(* Differential property: on random programs, the batched interpreter
   (with and without superinstructions) is indistinguishable from the
   naive reference loop — cycles, instruction/call/guard counters,
   output, and the exact cycle count at every timer and invoke hook
   firing. The sample period is chosen co-prime to the instruction costs
   so windows end both on event boundaries and mid-instruction. *)
let prop_decoded_matches_reference =
  QCheck.Test.make ~name:"pre-decoded interpreter matches naive reference"
    ~count:40 Test_props.arbitrary_program (fun ast ->
      let program = Acsi_lang.Compile.prog ast in
      let exec ~fuse ~reference =
        let vm =
          Interp.create ~sample_period:997 ~invoke_stride:16 ~fuse program
        in
        let timer_fires = ref [] in
        let invoke_fires = ref [] in
        let first_execs = ref [] in
        Interp.set_on_timer_sample vm (fun vm ->
            timer_fires := Interp.cycles vm :: !timer_fires);
        Interp.set_on_invoke vm (fun vm m ->
            invoke_fires := (Interp.cycles vm, (m :> int)) :: !invoke_fires);
        Interp.set_on_first_execution vm (fun m ->
            first_execs := (m :> int) :: !first_execs);
        if reference then Interp.run_reference vm else Interp.run vm;
        ( Interp.cycles vm,
          Interp.instructions_executed vm,
          Interp.calls_executed vm,
          Interp.guard_hits vm,
          Interp.guard_misses vm,
          Interp.output vm,
          !timer_fires,
          !invoke_fires,
          !first_execs )
      in
      let reference = exec ~fuse:true ~reference:true in
      reference = exec ~fuse:true ~reference:false
      && reference = exec ~fuse:false ~reference:false)

(* Same property through the whole adaptive system: driving the AOS (code
   installation, OSR, decay, recompilation) from the reference loop ends
   in the same metrics and profile as the production loop. *)
let prop_aos_matches_reference =
  QCheck.Test.make ~name:"adaptive system agrees across interpreter loops"
    ~count:15 Test_props.arbitrary_program (fun ast ->
      let program = Acsi_lang.Compile.prog ast in
      let cfg = Config.default ~policy:(Acsi_policy.Policy.Fixed 3) in
      let cfg = { cfg with Config.sample_period = 5_000; invoke_stride = 16 } in
      let exec ~reference =
        let vm =
          Interp.create ~cost:cfg.Config.cost
            ~sample_period:cfg.Config.sample_period
            ~invoke_stride:cfg.Config.invoke_stride program
        in
        let sys = Acsi_aos.System.create cfg.Config.aos vm in
        (if reference then
           Interp.run_reference ~cycle_limit:cfg.Config.cycle_limit vm
         else Interp.run ~cycle_limit:cfg.Config.cycle_limit vm);
        ( Metrics.of_run vm sys,
          Interp.output vm,
          Dcg.total_weight (Acsi_aos.System.dcg sys) )
      in
      exec ~reference:true = exec ~reference:false)

let suite =
  [
    Alcotest.test_case "same run twice is identical" `Quick test_run_twice;
    Alcotest.test_case "sweep: jobs 1 = jobs 4" `Slow test_sweep_jobs;
    Alcotest.test_case "dcg: site index tracks decay/pruning" `Quick
      test_site_index;
    Alcotest.test_case "trace: cached hash" `Quick test_trace_hash;
    Alcotest.test_case "dcode: 1:1 stream, fusion on/off" `Quick
      test_decoder_shape;
    QCheck_alcotest.to_alcotest prop_decoded_matches_reference;
    QCheck_alcotest.to_alcotest prop_aos_matches_reference;
  ]
