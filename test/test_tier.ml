(* The closure ("native") execution tier is required to be an exact
   host-speed re-encoding of the interpreter: every test here runs the
   same program with the tier on and off and demands byte-identical
   observable state — output, cycle counts, every metric — plus the
   negative half of the contract: code the install gate rejects stays on
   the interpreter tier, and preemption boundaries land identically no
   matter which tier a frame runs on. *)

open Acsi_lang
module Interp = Acsi_vm.Interp
module Tier = Acsi_vm.Tier
module Code = Acsi_vm.Code
module System = Acsi_aos.System
module Config = Acsi_core.Config
module Runtime = Acsi_core.Runtime
module Metrics = Acsi_core.Metrics
module Policy = Acsi_policy.Policy
module Workloads = Acsi_workloads.Workloads
module Provenance = Acsi_obs.Provenance

let small_scale = 0.12

let programs = lazy (Workloads.build_all ~scale_factor:small_scale ())

let with_tier on (cfg : Config.t) =
  { cfg with Config.aos = { cfg.Config.aos with System.native_tier = on } }

(* Aggressive sampling so even small runs go through the full adaptive
   pipeline (optimizing compiles, hence tier installs). *)
let aggressive (cfg : Config.t) =
  { cfg with Config.sample_period = 5_000; invoke_stride = 16 }

(* --- satellite: differential equality over the whole benchmark suite --- *)

(* Output AND the full metrics record (cycles, code space, samples,
   refusal taxonomy, ...): the tier may differ from the interpreter in
   host time only. *)
let test_workloads_differential () =
  List.iter
    (fun (name, program) ->
      List.iter
        (fun policy ->
          let cfg = Config.default ~policy in
          let on = Runtime.run (with_tier true cfg) program in
          let off = Runtime.run (with_tier false cfg) program in
          let label what =
            Printf.sprintf "%s under %s: %s" name (Policy.to_string policy)
              what
          in
          Alcotest.(check (list int))
            (label "output") (Interp.output off.Runtime.vm)
            (Interp.output on.Runtime.vm);
          Alcotest.(check int)
            (label "total_cycles")
            off.Runtime.metrics.Metrics.total_cycles
            on.Runtime.metrics.Metrics.total_cycles;
          Alcotest.(check bool)
            (label "full metrics record") true
            (off.Runtime.metrics = on.Runtime.metrics))
        [ Policy.Context_insensitive; Policy.Fixed 3 ])
    (Lazy.force programs)

(* --- satellite: differential over the random-program corpus --- *)

let prop_tier_differential =
  QCheck.Test.make ~name:"closure tier preserves output and cycles"
    ~count:20 Test_props.arbitrary_program (fun ast ->
      let program = Compile.prog ast in
      let cfg =
        aggressive (Config.default ~policy:(Policy.Hybrid_param_large 5))
      in
      let on = Runtime.run (with_tier true cfg) program in
      let off = Runtime.run (with_tier false cfg) program in
      Interp.output on.Runtime.vm = Interp.output off.Runtime.vm
      && on.Runtime.metrics = off.Runtime.metrics)

(* --- satellite: the install gate rejects malformed code --- *)

let counter_prog =
  Dsl.(
    prog
      [
        cls "W" ~fields:[ "acc" ]
          [
            meth "init" [ "start" ] ~returns:false
              [ set_thisf "acc" (v "start") ];
            meth "bump" [ "x" ] ~returns:true
              [
                set_thisf "acc" (add (thisf "acc") (v "x"));
                ret (thisf "acc");
              ];
          ];
      ]
      [
        let_ "w" (new_ "W" [ i 0 ]);
        let_ "s" (i 0);
        for_ "i" (i 0) (i 2000)
          [ let_ "s" (add (v "s") (inv (v "w") "bump" [ i 1 ])) ];
        print (v "s");
      ])

let test_malformed_code_rejected () =
  let program = Compile.prog counter_prog in
  let vm = Interp.create program in
  let main = Acsi_bytecode.Program.main program in
  let good = Interp.code_of vm main in
  (* An operand-stack underflow: pops from the empty entry stack. The
     source map marks both instructions as JIT-synthesized — [Jit_check]
     trusts unmapped (baseline) code, so the map is what routes this
     through full re-verification, exactly as for real optimized code. *)
  let bad =
    {
      good with
      Code.tier = Code.Optimized;
      Code.instrs = [| Acsi_bytecode.Instr.Pop; Acsi_bytecode.Instr.Return_void |];
      Code.src =
        Some
          (Array.make 2
             { Code.src_meth = main; Code.src_pc = -1; Code.parents = [] });
    }
  in
  Alcotest.(check bool)
    "Jit_check rejects the code" true
    (Acsi_analysis.Jit_check.check program bad <> []);
  (* The tier compiler's own verification pass refuses it as well (the
     gate the AOS relies on when [verify_installed] is off)... *)
  (match Tier.install vm main bad with
  | () -> Alcotest.fail "tier compiled stack-underflowing code"
  | exception _ -> ());
  (* ...and the method stays on the interpreter tier. *)
  Alcotest.(check bool)
    "no closure code installed" false
    (Interp.native_installed vm main)

(* --- satellite: tier decisions recorded in provenance --- *)

let test_provenance_records_tier_decisions () =
  let _, program =
    List.find (fun (n, _) -> String.equal n "db") (Lazy.force programs)
  in
  let cfg = Config.default ~policy:(Policy.Fixed 3) in
  let cfg =
    {
      cfg with
      Config.aos =
        {
          cfg.Config.aos with
          System.obs =
            {
              Acsi_obs.Control.off with
              Acsi_obs.Control.provenance = true;
            };
        };
    }
  in
  let result = Runtime.run cfg program in
  match System.provenance result.Runtime.sys with
  | None -> Alcotest.fail "provenance store missing"
  | Some prov ->
      let compiled, rejected, fell_back =
        Provenance.tier_outcome_counts prov
      in
      Alcotest.(check bool)
        "tier decisions recorded" true
        (Provenance.tier_count prov > 0);
      Alcotest.(check int)
        "decision total is consistent" (Provenance.tier_count prov)
        (compiled + rejected + fell_back);
      Alcotest.(check bool)
        "verified workload code all compiled" true
        (compiled > 0 && rejected = 0 && fell_back = 0)

(* --- satellite: preemption across tiers --- *)

(* Virtual threads suspend at cycle-budget window boundaries. With the
   tier on, those boundaries fall inside closure-compiled frames; the
   suspension points (and hence the whole interleaving) must be
   cycle-identical to the interpreter-tier run. *)
let threaded_run ~tier_on program =
  let vm = Interp.create ~sample_period:5_000 ~invoke_stride:16 program in
  let aos =
    {
      (System.default_config (Policy.Fixed 3)) with
      System.native_tier = tier_on;
    }
  in
  let _sys = System.create aos vm in
  let th1 = Interp.spawn vm in
  let th2 = Interp.spawn vm in
  let resumes = ref 0 in
  let rec drive () =
    let s1 = Interp.resume vm th1 ~quantum:997 in
    let s2 = Interp.resume vm th2 ~quantum:997 in
    incr resumes;
    if s1 = Interp.Running || s2 = Interp.Running then drive ()
  in
  drive ();
  (Interp.output vm, Interp.cycles vm, !resumes, Interp.native_installed vm
                                                   (Acsi_bytecode.Program.main
                                                      program))

let test_preemption_across_tiers () =
  let program = Compile.prog counter_prog in
  let out_on, cycles_on, resumes_on, tiered = threaded_run ~tier_on:true program in
  let out_off, cycles_off, resumes_off, _ = threaded_run ~tier_on:false program in
  Alcotest.(check bool) "closure tier engaged" true tiered;
  Alcotest.(check bool)
    "suspensions landed mid-run" true (resumes_on > 5);
  Alcotest.(check (list int)) "interleaved output" out_off out_on;
  Alcotest.(check int) "final cycles" cycles_off cycles_on;
  Alcotest.(check int) "resume count" resumes_off resumes_on

(* --- satellite: determinism across concurrent domains --- *)

(* The baseline compile cache is shared across VMs and domains (the
   bench's --jobs mode); concurrent runs must neither interfere nor
   drift from a serial run. *)
let test_cross_domain_determinism () =
  let _, program =
    List.find (fun (n, _) -> String.equal n "jess") (Lazy.force programs)
  in
  let cfg = with_tier true (Config.default ~policy:(Policy.Fixed 3)) in
  let run () =
    let r = Runtime.run cfg program in
    (Interp.output r.Runtime.vm, r.Runtime.metrics)
  in
  let serial = run () in
  let d1 = Domain.spawn run in
  let d2 = Domain.spawn run in
  let r1 = Domain.join d1 in
  let r2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 matches serial" true (r1 = serial);
  Alcotest.(check bool) "domain 2 matches serial" true (r2 = serial)

(* --- satellite: the fused superinstruction table, as coverage --- *)

module Dcode = Acsi_vm.Dcode
module Cost = Acsi_vm.Cost
module Instr = Acsi_bytecode.Instr
module Ids = Acsi_bytecode.Ids

(* One row per superinstruction in Dcode's fuse table: the shortest
   source sequence that must fuse slot 0 into exactly that op. If a
   pattern is dropped, or longest-match priority changes, the row
   fails; if a new superinstruction is added without a row here, the
   count check fails. *)
let fusion_rows =
  let open Instr in
  [
    ("load2", [ Load 0; Load 1 ]);
    ("load2_binop", [ Load 0; Load 1; Binop Add ]);
    ("load2_binop_store", [ Load 0; Load 1; Binop Add; Store 2 ]);
    ("load2_cmp_jumpifnot", [ Load 0; Load 1; Cmp Lt; Jump_ifnot 0 ]);
    ("load_const_binop", [ Load 0; Const 3; Binop Add ]);
    ("load_const_binop_store", [ Load 0; Const 3; Binop Add; Store 1 ]);
    ("load_const_cmp_jumpifnot", [ Load 0; Const 3; Cmp Lt; Jump_ifnot 0 ]);
    ("load_store", [ Load 0; Store 1 ]);
    ("load_getfield", [ Load 0; Get_field 0 ]);
    ("load_getfield_store", [ Load 0; Get_field 0; Store 1 ]);
    ("load_jumpifnot", [ Load 0; Jump_ifnot 0 ]);
    ("load_binop", [ Load 0; Binop Add ]);
    ("load_cmp", [ Load 0; Cmp Eq ]);
    ("load_arrayget", [ Load 0; Array_get ]);
    ("store_load", [ Store 0; Load 1 ]);
    ("store_store", [ Store 0; Store 1 ]);
    ("store_jump", [ Store 0; Jump 0 ]);
    ("getfield_load", [ Get_field 0; Load 0 ]);
    ("const_store", [ Const 3; Store 0 ]);
    ("const_binop", [ Const 3; Binop Add ]);
    ("const_cmp", [ Const 3; Cmp Eq ]);
    ("cmp_jumpifnot", [ Cmp Lt; Jump_ifnot 0 ]);
    ("cmp_jumpif", [ Cmp Lt; Jump_if 0 ]);
    ("binop_store", [ Binop Add; Store 0 ]);
    ("binop_const", [ Binop Add; Const 3 ]);
    ("binop_binop", [ Binop Add; Binop Sub ]);
    ("arrayget_store", [ Array_get; Store 0 ]);
  ]

let fused_kind = function
  | Dcode.Load2 _ -> Some "load2"
  | Dcode.Load2_binop _ -> Some "load2_binop"
  | Dcode.Load2_binop_store _ -> Some "load2_binop_store"
  | Dcode.Load2_cmp_jumpifnot _ -> Some "load2_cmp_jumpifnot"
  | Dcode.Load_const_binop _ -> Some "load_const_binop"
  | Dcode.Load_const_binop_store _ -> Some "load_const_binop_store"
  | Dcode.Load_const_cmp_jumpifnot _ -> Some "load_const_cmp_jumpifnot"
  | Dcode.Load_store _ -> Some "load_store"
  | Dcode.Load_getfield _ -> Some "load_getfield"
  | Dcode.Load_getfield_store _ -> Some "load_getfield_store"
  | Dcode.Load_jumpifnot _ -> Some "load_jumpifnot"
  | Dcode.Load_binop _ -> Some "load_binop"
  | Dcode.Load_cmp _ -> Some "load_cmp"
  | Dcode.Load_arrayget _ -> Some "load_arrayget"
  | Dcode.Store_load _ -> Some "store_load"
  | Dcode.Store_store _ -> Some "store_store"
  | Dcode.Store_jump _ -> Some "store_jump"
  | Dcode.Getfield_load _ -> Some "getfield_load"
  | Dcode.Const_store _ -> Some "const_store"
  | Dcode.Const_binop _ -> Some "const_binop"
  | Dcode.Const_cmp _ -> Some "const_cmp"
  | Dcode.Cmp_jumpifnot _ -> Some "cmp_jumpifnot"
  | Dcode.Cmp_jumpif _ -> Some "cmp_jumpif"
  | Dcode.Binop_store _ -> Some "binop_store"
  | Dcode.Binop_const _ -> Some "binop_const"
  | Dcode.Binop_binop _ -> Some "binop_binop"
  | Dcode.Arrayget_store _ -> Some "arrayget_store"
  | _ -> None

let test_fusion_coverage () =
  Alcotest.(check int) "every superinstruction has a row" 27
    (List.length fusion_rows);
  List.iter
    (fun (name, instrs) ->
      let code =
        {
          Code.meth = Ids.Method_id.of_int 0;
          tier = Code.Baseline;
          instrs = Array.of_list (instrs @ [ Instr.Return_void ]);
          max_locals = 8;
          max_stack = 8;
          src = None;
          code_bytes = 0;
          assumptions = [];
        }
      in
      let dc = Dcode.of_code Cost.default code in
      let op = dc.Dcode.ops.(0) in
      Alcotest.(check (option string))
        (Printf.sprintf "slot 0 fuses to %s" name)
        (Some name) (fused_kind op);
      Alcotest.(check int)
        (Printf.sprintf "%s covers its components" name)
        (List.length instrs) (Dcode.width op);
      (* Fusion never crosses the off switch. *)
      Alcotest.(check (option string))
        (Printf.sprintf "%s not fused with fuse:false" name)
        None
        (fused_kind (Dcode.of_code ~fuse:false Cost.default code).Dcode.ops.(0)))
    fusion_rows

(* Cost neutrality across the corpus: disabling fusion must change
   neither the observable output nor a single virtual cycle — fused ops
   charge exactly [width * icost] and fire hooks at the same counts, so
   the only difference is host dispatch overhead. *)
let test_fusion_cost_neutral () =
  List.iter
    (fun (name, program) ->
      let run fuse =
        let vm = Interp.create ~fuse program in
        Interp.run vm;
        (Interp.output vm, Interp.cycles vm)
      in
      let out_on, cyc_on = run true in
      let out_off, cyc_off = run false in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: output identical" name)
        out_off out_on;
      Alcotest.(check int)
        (Printf.sprintf "%s: cycle total identical" name)
        cyc_off cyc_on)
    (Lazy.force programs)

let suite =
  [
    Alcotest.test_case "workload differential, tier on vs off" `Quick
      test_workloads_differential;
    Alcotest.test_case "fused superinstruction coverage" `Quick
      test_fusion_coverage;
    Alcotest.test_case "fusion is cost-neutral" `Quick
      test_fusion_cost_neutral;
    QCheck_alcotest.to_alcotest prop_tier_differential;
    Alcotest.test_case "install gate rejects malformed code" `Quick
      test_malformed_code_rejected;
    Alcotest.test_case "tier decisions recorded in provenance" `Quick
      test_provenance_records_tier_decisions;
    Alcotest.test_case "preemption across tiers" `Quick
      test_preemption_across_tiers;
    Alcotest.test_case "cross-domain determinism" `Quick
      test_cross_domain_determinism;
  ]
