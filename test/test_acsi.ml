let () =
  Alcotest.run "acsi"
    [
      ("bytecode", Test_bytecode.suite);
      ("lang", Test_lang.suite);
      ("parser", Test_parser.suite);
      ("vm", Test_vm.suite);
      ("interp-ops", Test_interp_ops.suite);
      ("code", Test_code.suite);
      ("profile", Test_profile.suite);
      ("persist", Test_persist.suite);
      ("cct", Test_cct.suite);
      ("jit", Test_jit.suite);
      ("expand-edge", Test_expand_edge.suite);
      ("policy", Test_policy.suite);
      ("peephole", Test_peephole.suite);
      ("analysis", Test_analysis.suite);
      ("osr", Test_osr.suite);
      ("deopt", Test_deopt.suite);
      ("aos", Test_aos.suite);
      ("obs", Test_obs.suite);
      ("smoke", Test_smoke.suite);
      ("server", Test_server.suite);
      ("core", Test_core.suite);
      ("props", Test_props.suite);
      ("speed", Test_speed.suite);
      ("brain", Test_brain.suite);
      ("workloads", Test_workloads.suite);
      ("micro", Test_micro.suite);
      ("richards", Test_richards.suite);
      ("tier", Test_tier.suite);
      ("shards", Test_shards.suite);
    ]
