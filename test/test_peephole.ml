(* Unit tests for the peephole optimizer: each rewrite in isolation, and
   semantic preservation over the mini-language constructs. *)

open Acsi_bytecode
open Acsi_jit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let opt = Peephole.optimize_instrs

let count_instrs pred instrs =
  Array.to_list instrs |> List.filter pred |> List.length

let is_const = function Instr.Const _ -> true | _ -> false

let test_const_fold_binop () =
  let out =
    opt [| Instr.Const 3; Instr.Const 4; Instr.Binop Instr.Add; Instr.Return |]
  in
  check_int "folded to two instrs" 2 (Array.length out);
  (match out.(0) with
  | Instr.Const 7 -> ()
  | other -> Alcotest.failf "expected const 7, got %s" (Instr.to_string other))

let test_const_fold_nested () =
  (* (2*3) + 4 folds completely across passes *)
  let out =
    opt
      [|
        Instr.Const 2; Instr.Const 3; Instr.Binop Instr.Mul; Instr.Const 4;
        Instr.Binop Instr.Add; Instr.Return;
      |]
  in
  check_int "fully folded" 2 (Array.length out);
  match out.(0) with
  | Instr.Const 10 -> ()
  | other -> Alcotest.failf "expected const 10, got %s" (Instr.to_string other)

let test_no_fold_div_by_zero () =
  let out =
    opt [| Instr.Const 3; Instr.Const 0; Instr.Binop Instr.Div; Instr.Return |]
  in
  (* must keep the runtime error *)
  check_int "division preserved" 4 (Array.length out)

let test_const_fold_cmp_and_unary () =
  let out =
    opt [| Instr.Const 3; Instr.Const 4; Instr.Cmp Instr.Lt; Instr.Return |]
  in
  (match out.(0) with
  | Instr.Const 1 -> ()
  | other -> Alcotest.failf "cmp folded wrong: %s" (Instr.to_string other));
  let out = opt [| Instr.Const 5; Instr.Neg; Instr.Return |] in
  (match out.(0) with
  | Instr.Const -5 -> ()
  | other -> Alcotest.failf "neg folded wrong: %s" (Instr.to_string other));
  let out = opt [| Instr.Const 0; Instr.Not; Instr.Return |] in
  match out.(0) with
  | Instr.Const 1 -> ()
  | other -> Alcotest.failf "not folded wrong: %s" (Instr.to_string other)

let test_push_pop_elimination () =
  let out =
    opt [| Instr.Const 9; Instr.Pop; Instr.Const 1; Instr.Return |]
  in
  check_int "pair removed" 2 (Array.length out);
  let out = opt [| Instr.Load 0; Instr.Dup; Instr.Pop; Instr.Return |] in
  check_int "dup/pop removed" 2 (Array.length out)

let test_not_jump_fusion () =
  let out =
    opt
      [|
        Instr.Load 0; Instr.Not; Instr.Jump_ifnot 4; Instr.Nop;
        Instr.Const 1; Instr.Return;
      |]
  in
  check_bool "fused into jump_if" true
    (Array.exists (function Instr.Jump_if _ -> true | _ -> false) out);
  check_bool "not eliminated" true
    (not (Array.exists (function Instr.Not -> true | _ -> false) out))

let test_constant_branch_resolution () =
  (* const 1; jump_ifnot dead-branch: the branch never fires; the dead
     branch's code must disappear entirely. *)
  let out =
    opt
      [|
        Instr.Const 1; Instr.Jump_ifnot 4; Instr.Const 7; Instr.Return;
        Instr.Const 8; Instr.Return;
      |]
  in
  check_bool "dead branch removed" true
    (not (Array.exists (function Instr.Const 8 -> true | _ -> false) out));
  check_int "only live code kept" 2 (Array.length out)

let test_jump_threading () =
  let out =
    opt
      [|
        Instr.Load 0; Instr.Jump_if 3; Instr.Return_void; Instr.Jump 5;
        Instr.Nop; Instr.Return_void;
      |]
  in
  (* the conditional jump should point directly at 5's new position *)
  let threaded =
    Array.exists
      (function
        | Instr.Jump_if t -> (
            match out.(t) with Instr.Return_void -> true | _ -> false)
        | _ -> false)
      out
  in
  check_bool "threaded through the jump chain" true threaded

let test_unreachable_elimination () =
  let out =
    opt [| Instr.Jump 3; Instr.Const 1; Instr.Pop; Instr.Return_void |]
  in
  check_int "dead instructions dropped" 1 (Array.length out);
  match out.(0) with
  | Instr.Return_void -> ()
  | other -> Alcotest.failf "expected return_void, got %s" (Instr.to_string other)

let test_no_rewrite_across_leaders () =
  (* The Const at 0 flows to a join at 2; the Binop at 2 must NOT fold
     with it because 2 is a jump target (depths would diverge). *)
  let body =
    [|
      Instr.Const 1;  (* 0 *)
      Instr.Const 2;  (* 1 *)
      Instr.Binop Instr.Add;  (* 2: jump target *)
      Instr.Jump_if 2;  (* 4 -> loops back *)
      Instr.Return_void;
    |]
  in
  (* target 2 is a leader: fold of (0,1,2) would break the loop's stack *)
  let out = opt body in
  check_bool "binop survives at the join" true
    (Array.exists (function Instr.Binop _ -> true | _ -> false) out)

(* Semantic preservation: optimize every method of a real program and
   compare outputs. *)
let test_preserves_semantics_on_program () =
  let open Acsi_lang.Dsl in
  let program =
    Acsi_lang.Compile.prog
      (prog
         [
           cls "P" ~fields:[]
             [
               static_meth "poly" [ "x" ] ~returns:true
                 [
                   (* constant-heavy code the folder will chew on *)
                   let_ "a" (add (i 3) (mul (i 4) (i 5)));
                   let_ "b" (cond (lt (i 2) (i 1)) (i 100) (v "x"));
                   ret (add (v "a") (sub (v "b") (neg (i 7))));
                 ];
             ];
         ]
         [
           let_ "s" (i 0);
           for_ "k" (i 0) (i 50) [ let_ "s" (call "P" "poly" [ v "s" ]) ];
           print (v "s");
         ])
  in
  let baseline = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run baseline;
  let vm = Acsi_vm.Interp.create program in
  Array.iter
    (fun (m : Meth.t) ->
      let optimized = Peephole.optimize_instrs m.Meth.body in
      let wrapper = { m with Meth.body = optimized; max_stack = 0 } in
      Verify.meth program wrapper;
      Acsi_vm.Interp.install_code vm m.Meth.id
        {
          Acsi_vm.Code.meth = m.Meth.id;
          tier = Acsi_vm.Code.Optimized;
          instrs = optimized;
          max_locals = m.Meth.max_locals;
          max_stack = wrapper.Meth.max_stack;
          src = None;
          code_bytes = 0;
          assumptions = [];
        })
    (Program.methods program);
  Acsi_vm.Interp.run vm;
  Alcotest.(check (list int))
    "output preserved"
    (Acsi_vm.Interp.output baseline)
    (Acsi_vm.Interp.output vm);
  check_bool "optimizer actually shrank something" true
    (Acsi_vm.Interp.instructions_executed vm
    < Acsi_vm.Interp.instructions_executed baseline)

let test_shrinks_expanded_code () =
  (* With peephole on, inlined constant arguments fold: the expanded code
     must be no larger than without it. *)
  let open Acsi_lang.Dsl in
  let program =
    Acsi_lang.Compile.prog
      (prog
         [
           cls "Q" ~fields:[]
             [
               static_meth "scale" [ "x"; "f" ] ~returns:true
                 [ ret (mul (v "x") (add (v "f") (i 1))) ];
               static_meth "use" [ "x" ] ~returns:true
                 [ ret (call "Q" "scale" [ v "x"; i 9 ]) ];
             ];
         ]
         [ print (call "Q" "use" [ i 4 ]) ])
  in
  let use = Program.find_method program ~cls:"Q" ~name:"use" in
  let compile ~peephole =
    let config = { Oracle.default_config with Oracle.peephole } in
    let oracle = Oracle.create ~config program in
    let _, stats = Expand.compile program Acsi_vm.Cost.default oracle ~root:use in
    stats.Expand.expanded_units
  in
  check_bool "peephole shrinks expanded code" true
    (compile ~peephole:true < compile ~peephole:false)

let suite =
  [
    Alcotest.test_case "const fold binop" `Quick test_const_fold_binop;
    Alcotest.test_case "const fold nested" `Quick test_const_fold_nested;
    Alcotest.test_case "no fold of division by zero" `Quick
      test_no_fold_div_by_zero;
    Alcotest.test_case "const fold cmp/neg/not" `Quick
      test_const_fold_cmp_and_unary;
    Alcotest.test_case "push/pop elimination" `Quick test_push_pop_elimination;
    Alcotest.test_case "not/jump fusion" `Quick test_not_jump_fusion;
    Alcotest.test_case "constant branch resolution" `Quick
      test_constant_branch_resolution;
    Alcotest.test_case "jump threading" `Quick test_jump_threading;
    Alcotest.test_case "unreachable elimination" `Quick
      test_unreachable_elimination;
    Alcotest.test_case "no rewrite across leaders" `Quick
      test_no_rewrite_across_leaders;
    Alcotest.test_case "preserves program semantics" `Quick
      test_preserves_semantics_on_program;
    Alcotest.test_case "shrinks expanded code" `Quick test_shrinks_expanded_code;
  ]
