(* Unit tests for the VM: values, cost accounting, runtime errors, guard
   semantics, hooks, code installation, and source-level stack walking. *)

open Acsi_bytecode
open Acsi_vm
open Acsi_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile ?(classes = []) ?(globals = []) main =
  Compile.prog (Dsl.prog ~globals classes main)

let expect_runtime_error program fragment =
  let vm = Interp.create program in
  match Interp.run vm with
  | () -> Alcotest.failf "expected a runtime error mentioning %S" fragment
  | exception Interp.Runtime_error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
        in
        go 0
      in
      check_bool (Printf.sprintf "%S mentions %S" msg fragment) true
        (contains msg fragment)

(* --- values --- *)

let test_value_equal_cmp () =
  let o1 = Value.Obj { Value.cls = Ids.Class_id.of_int 0; fields = [||] } in
  let o2 = Value.Obj { Value.cls = Ids.Class_id.of_int 0; fields = [||] } in
  check_bool "ints" true (Value.equal_cmp (Value.Int 3) (Value.Int 3));
  check_bool "nulls" true (Value.equal_cmp Value.Null Value.Null);
  check_bool "same obj" true (Value.equal_cmp o1 o1);
  check_bool "distinct objs" false (Value.equal_cmp o1 o2);
  check_bool "mixed" false (Value.equal_cmp (Value.Int 0) Value.Null)

let test_value_truthy () =
  check_bool "zero" false (Value.truthy (Value.Int 0));
  check_bool "null" false (Value.truthy Value.Null);
  check_bool "nonzero" true (Value.truthy (Value.Int (-2)));
  check_bool "array" true (Value.truthy (Value.Arr [||]))

(* --- runtime errors --- *)

let test_division_by_zero () =
  Dsl.(
    expect_runtime_error
      (compile [ print (div (i 1) (i 0)) ])
      "division by zero")

let test_null_dereference () =
  let classes = Dsl.[ cls "A" ~fields:[ "x" ] [] ] in
  Dsl.(
    expect_runtime_error
      (compile ~classes [ let_ "a" Ast.Null; print (fld "A" (v "a") "x") ])
      "null dereference")

let test_array_bounds () =
  Dsl.(
    expect_runtime_error
      (compile [ let_ "a" (arr_new (i 2)); print (arr_get (v "a") (i 5)) ])
      "out of bounds")

let test_negative_array_size () =
  Dsl.(
    expect_runtime_error
      (compile [ let_ "a" (arr_new (i (-3))); print (arr_len (v "a")) ])
      "negative array size")

let test_int_receiver () =
  let classes =
    Dsl.[ cls "A" ~fields:[] [ meth "f" [] ~returns:true [ ret (i 1) ] ] ]
  in
  Dsl.(
    expect_runtime_error
      (compile ~classes [ let_ "x" (i 5); print (inv (v "x") "f" []) ])
      "expected an object")

(* --- determinism and accounting --- *)

let simple_program () =
  Dsl.(
    compile
      ~classes:
        [
          cls "A" ~fields:[]
            [ static_meth "twice" [ "x" ] ~returns:true [ ret (mul (v "x") (i 2)) ] ];
        ]
      [
        let_ "s" (i 0);
        for_ "k" (i 0) (i 100) [ let_ "s" (add (v "s") (call "A" "twice" [ v "k" ])) ];
        print (v "s");
      ])

let test_cycle_determinism () =
  let run () =
    let vm = Interp.create (simple_program ()) in
    Interp.run vm;
    (Interp.cycles vm, Interp.instructions_executed vm, Interp.calls_executed vm)
  in
  check_bool "two runs agree" true (run () = run ())

let test_costs_move_the_clock () =
  let vm = Interp.create (simple_program ()) in
  Interp.run vm;
  check_bool "cycles exceed instructions x baseline cost" true
    (Interp.cycles vm
    >= Interp.instructions_executed vm * Cost.default.Cost.baseline_instr)

let test_charge_advances_clock () =
  let vm = Interp.create (simple_program ()) in
  Interp.charge vm 12345;
  check_int "charged" 12345 (Interp.cycles vm)

let test_cycle_limit () =
  let program =
    Dsl.(
      compile
        [
          let_ "k" (i 0);
          while_ (ge (v "k") (i 0)) [ let_ "k" (add (v "k") (i 1)) ];
        ])
  in
  let vm = Interp.create program in
  match Interp.run ~cycle_limit:500_000 vm with
  | () -> Alcotest.fail "expected cycle limit"
  | exception Interp.Cycle_limit_exceeded -> ()

(* --- hooks --- *)

let test_first_execution_hook () =
  let program = simple_program () in
  let vm = Interp.create program in
  let firsts = ref 0 in
  Interp.set_on_first_execution vm (fun _ -> incr firsts);
  Interp.run vm;
  (* main + A.twice *)
  check_int "two methods ran" 2 !firsts;
  check_bool "was_executed" true
    (Interp.was_executed vm
       (Program.find_method program ~cls:"A" ~name:"twice").Meth.id)

let test_invoke_stride_hook () =
  let program = simple_program () in
  let vm = Interp.create ~invoke_stride:10 program in
  let hits = ref 0 in
  Interp.set_on_invoke vm (fun _ _ -> incr hits);
  Interp.run vm;
  (* 101 invocations (100 calls + main), stride 10 *)
  check_int "stride samples" 10 !hits

let test_timer_hook () =
  let program = simple_program () in
  let vm = Interp.create ~sample_period:1_000 program in
  let samples = ref 0 in
  Interp.set_on_timer_sample vm (fun _ -> incr samples);
  Interp.run vm;
  check_bool "samples proportional to cycles" true
    (abs ((Interp.cycles vm / 1_000) - !samples) <= 1)

(* --- guards (hand-assembled code) --- *)

(* Two classes implementing [pick]: A.pick = 10, B.pick = 20. A hand-built
   optimized body for a static method guards on A's implementation with a
   fallback virtual call, so we can exercise both guard outcomes. *)
let guard_program () =
  let open Dsl in
  let classes =
    [
      cls "A" ~fields:[] [ meth "pick" [] ~returns:true [ ret (i 10) ] ];
      cls "B" ~parent:"A" ~fields:[] [ meth "pick" [] ~returns:true [ ret (i 20) ] ];
      cls "D" ~fields:[]
        [
          static_meth "dispatch" [ "o" ] ~returns:true
            [ ret (inv (v "o") "pick" []) ];
        ];
    ]
  in
  compile ~classes
    [
      print (call "D" "dispatch" [ new_ "A" [] ]);
      print (call "D" "dispatch" [ new_ "B" [] ]);
    ]

let test_guard_hit_and_miss () =
  let program = guard_program () in
  let dispatch = Program.find_method program ~cls:"D" ~name:"dispatch" in
  let pick_a = Program.find_method program ~cls:"A" ~name:"pick" in
  let sel = pick_a.Meth.selector in
  (* Optimized dispatch body: guard for A.pick, inline [Const 10], fall
     back to the virtual call. Receiver arrives in local 0. *)
  let instrs =
    [|
      Instr.Load 0;
      Instr.Guard_method { Instr.expected = pick_a.Meth.id; sel; argc = 0; fail = 5 };
      Instr.Pop;  (* discard the receiver the guard peeked at *)
      Instr.Const 10;
      Instr.Return;
      Instr.Call_virtual (sel, 0);
      Instr.Return;
    |]
  in
  let code =
    {
      Code.meth = dispatch.Meth.id;
      tier = Code.Optimized;
      instrs;
      max_locals = 1;
      max_stack = 2;
      src = None;
      code_bytes = 0;
      assumptions = [];
    }
  in
  let vm = Interp.create program in
  Interp.install_code vm dispatch.Meth.id code;
  Interp.run vm;
  Alcotest.(check (list int)) "behaviour preserved" [ 10; 20 ] (Interp.output vm);
  check_int "one hit" 1 (Interp.guard_hits vm);
  check_int "one miss" 1 (Interp.guard_misses vm)

let test_install_code_affects_next_invocation () =
  let program = guard_program () in
  let vm = Interp.create program in
  let tier_seen = ref [] in
  let dispatch = Program.find_method program ~cls:"D" ~name:"dispatch" in
  Interp.set_on_invoke vm (fun vm mid ->
      if Ids.Method_id.equal mid dispatch.Meth.id then
        tier_seen := (Interp.code_of vm mid).Code.tier :: !tier_seen);
  Interp.run vm;
  check_bool "baseline code by default" true
    ((Interp.code_of vm dispatch.Meth.id).Code.tier = Code.Baseline)

(* --- source stack walking --- *)

let test_walk_source_stack_baseline () =
  let open Dsl in
  let classes =
    [
      cls "W" ~fields:[]
        [
          static_meth "inner" [] ~returns:true [ ret (i 1) ];
          static_meth "outer" [] ~returns:true [ ret (call "W" "inner" []) ];
        ];
    ]
  in
  let program = compile ~classes [ print (call "W" "outer" []) ] in
  let inner = Program.find_method program ~cls:"W" ~name:"inner" in
  let vm = Interp.create ~invoke_stride:1 program in
  let seen = ref [] in
  Interp.set_on_invoke vm (fun vm mid ->
      if Ids.Method_id.equal mid inner.Meth.id then begin
        let frames = ref [] in
        Interp.walk_source_stack vm ~f:(fun m _pc ->
            frames := (Program.meth program m).Meth.name :: !frames;
            true);
        seen := List.rev !frames
      end);
  Interp.run vm;
  Alcotest.(check (list string))
    "stack is inner, outer, main"
    [ "inner/0"; "outer/0"; "main/0" ]
    !seen

let suite =
  [
    Alcotest.test_case "value equal_cmp" `Quick test_value_equal_cmp;
    Alcotest.test_case "value truthy" `Quick test_value_truthy;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "null dereference" `Quick test_null_dereference;
    Alcotest.test_case "array bounds" `Quick test_array_bounds;
    Alcotest.test_case "negative array size" `Quick test_negative_array_size;
    Alcotest.test_case "dispatch on integer" `Quick test_int_receiver;
    Alcotest.test_case "deterministic cycles" `Quick test_cycle_determinism;
    Alcotest.test_case "costs move the clock" `Quick test_costs_move_the_clock;
    Alcotest.test_case "charge advances clock" `Quick test_charge_advances_clock;
    Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
    Alcotest.test_case "first-execution hook" `Quick test_first_execution_hook;
    Alcotest.test_case "invoke stride hook" `Quick test_invoke_stride_hook;
    Alcotest.test_case "timer hook" `Quick test_timer_hook;
    Alcotest.test_case "guard hit and miss" `Quick test_guard_hit_and_miss;
    Alcotest.test_case "installed code tier" `Quick
      test_install_code_affects_next_invocation;
    Alcotest.test_case "source stack walk" `Quick test_walk_source_stack_baseline;
  ]
