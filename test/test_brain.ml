(* Differential tests for the AOS brain overhaul: every indexed organizer
   / oracle kernel is pinned to its pre-index reference spec on generated
   inputs, and the memoization caches are checked to be invisible (same
   results, any --jobs value, cache hits physically shared).

   Floating-point discipline: generated weights are small integers and
   decay factors are negative powers of two, so every aggregate the
   kernels compute is an exactly-representable dyadic rational — sums are
   exact in any association order, and equality comparisons between the
   indexed and reference implementations cannot be tripped by rounding. *)

open Acsi_bytecode
open Acsi_core
module Dcg = Acsi_profile.Dcg
module Trace = Acsi_profile.Trace
module Rules = Acsi_profile.Rules
module Registry = Acsi_aos.Registry
module System = Acsi_aos.System
module Workloads = Acsi_workloads.Workloads
module Gen = QCheck.Gen

let check_bool = Alcotest.(check bool)
let mid = Ids.Method_id.of_int

let trace callee chain =
  Trace.make ~callee:(mid callee)
    ~chain:
      (List.map (fun (c, s) -> { Trace.caller = mid c; callsite = s }) chain)

(* --- generators --- *)

let gen_entry = Gen.(pair (int_range 0 6) (int_range 0 4))
let gen_chain = Gen.(list_size (int_range 1 3) gen_entry)
let gen_trace = Gen.(map2 trace (int_range 0 7) gen_chain)

(* A DCG construction script: add batches of samples, interleaved with
   exact-dyadic decays. *)
type dcg_op = Add of Trace.t * int | Decay of float * float

let gen_dcg_op =
  Gen.(
    frequency
      [
        (6, map2 (fun t n -> Add (t, n)) gen_trace (int_range 1 5));
        ( 1,
          map2
            (fun f p -> Decay (f, p))
            (oneofl [ 0.5; 0.25 ])
            (oneofl [ 0.0; 0.25; 1.0 ]) );
      ])

let gen_dcg_script = Gen.(list_size (int_range 1 40) gen_dcg_op)

let build_dcg script =
  let dcg = Dcg.create () in
  List.iter
    (function
      | Add (t, n) ->
          for _ = 1 to n do
            Dcg.add_sample dcg t
          done
      | Decay (factor, prune_below) -> Dcg.decay dcg ~factor ~prune_below)
    script;
  dcg

let arbitrary_dcg_script = QCheck.make gen_dcg_script

(* --- adaptive-resolution organizer: flag_decisions --- *)

let sort_decisions l =
  List.sort
    (fun ((a : Ids.Method_id.t), s1, r1) (b, s2, r2) ->
      compare ((a :> int), s1, r1) ((b :> int), s2, r2))
    l

let prop_flag_decisions_match =
  QCheck.Test.make ~name:"flag_decisions matches reference spec" ~count:200
    arbitrary_dcg_script (fun script ->
      let dcg = build_dcg script in
      List.for_all
        (fun (skew_threshold, min_context_share) ->
          sort_decisions
            (System.flag_decisions dcg ~skew_threshold ~min_context_share)
          = sort_decisions
              (System.flag_decisions_reference dcg ~skew_threshold
                 ~min_context_share))
        [ (0.8, 0.1); (0.5, 0.5); (1.0, 0.0); (0.0, 1.0) ])

(* --- oracle: Rules.candidates --- *)

let gen_hot_traces =
  Gen.(
    list_size (int_range 0 12)
      (map2 (fun t w -> (t, float_of_int w)) gen_trace (int_range 1 16)))

let gen_site_chain = Gen.(map Array.of_list gen_chain)

let arbitrary_candidates_case =
  QCheck.make
    Gen.(pair gen_hot_traces (list_size (int_range 1 8) gen_site_chain))

let entry_array chain =
  Array.map
    (fun (c, s) -> { Trace.caller = mid c; callsite = s })
    chain

let prop_candidates_match =
  QCheck.Test.make ~name:"Rules.candidates matches reference spec" ~count:200
    arbitrary_candidates_case (fun (hot, queries) ->
      let rules = Rules.of_hot_traces hot in
      List.for_all
        (fun chain ->
          let site_chain = entry_array chain in
          Rules.candidates rules ~site_chain
          = Rules.candidates_reference rules ~site_chain
          && Rules.candidates ~exact:true rules ~site_chain
             = Rules.candidates_reference ~exact:true rules ~site_chain)
        queries)

(* The memo cache returns the cached list itself on a repeat query (same
   rules value, same chain contents in a fresh array), and a rebuilt
   rules value answers from a fresh cache. *)
let test_candidates_memo () =
  let hot =
    [
      (trace 3 [ (1, 0) ], 10.0);
      (trace 4 [ (1, 0) ], 8.0);
      (trace 3 [ (1, 0); (2, 1) ], 6.0);
    ]
  in
  let rules = Rules.of_hot_traces ~version:1 hot in
  let chain () = entry_array [| (1, 0) |] in
  let a = Rules.candidates rules ~site_chain:(chain ()) in
  let b = Rules.candidates rules ~site_chain:(chain ()) in
  check_bool "repeat query returns the cached result" true (a == b);
  check_bool "cached result is right" true
    (a = Rules.candidates_reference rules ~site_chain:(chain ()));
  (* The cache key must not alias the caller's (mutable) array. *)
  let mutated = chain () in
  let c = Rules.candidates rules ~site_chain:mutated in
  mutated.(0) <- { Trace.caller = mid 6; callsite = 4 };
  let d = Rules.candidates rules ~site_chain:(chain ()) in
  check_bool "mutating a queried chain does not poison the cache" true (c == d);
  let rebuilt = Rules.of_hot_traces ~version:2 hot in
  check_bool "rebuilt rules answer identically" true
    (Rules.candidates rebuilt ~site_chain:(chain ()) = a)

(* Rules.empty must not share state across values. *)
let test_empty_unshared () =
  let a = Rules.empty () in
  let b = Rules.empty () in
  ignore (Rules.candidates a ~site_chain:(entry_array [| (1, 0) |]));
  check_bool "separate values" true (a != b);
  check_bool "empty has no rules" true
    (Rules.rule_count a = 0 && Rules.rule_count b = 0)

(* --- registry: roots_containing / recompile_candidates --- *)

let registry_program =
  lazy ((Workloads.find "db").Workloads.build ~scale:1)

let gen_stats method_count =
  Gen.(
    map
      (fun edges ->
        {
          Acsi_jit.Expand.expanded_units = 1;
          inline_count = List.length edges;
          guard_count = 0;
          compile_cycles = 10;
          code_bytes = 64;
          inlined_edges = edges;
        })
      (list_size (int_range 0 6)
         (triple
            (int_range 0 (method_count - 1))
            (int_range 0 9)
            (int_range 0 (method_count - 1)))))

(* A registry construction script: (root, stats, rule_stamp) records,
   with repeats so recompilation (version bumps, index retraction of the
   old edge set) is exercised. *)
let gen_registry_script method_count =
  Gen.(
    list_size (int_range 1 25)
      (triple
         (int_range 0 (method_count - 1))
         (gen_stats method_count)
         (int_range 0 3)))

let arbitrary_registry_case =
  let program = Lazy.force registry_program in
  let n = Program.method_count program in
  QCheck.make
    Gen.(
      triple (gen_registry_script n)
        (list_size (int_range 1 10)
           (quad
              (int_range 0 (n - 1))
              (int_range 0 9)
              (int_range 0 (n - 1))
              (int_range 0 4)))
        (int_range 1 4))

let prop_registry_matches =
  QCheck.Test.make
    ~name:"roots_containing / recompile_candidates match reference specs"
    ~count:100 arbitrary_registry_case (fun (script, queries, max_opt_versions) ->
      let program = Lazy.force registry_program in
      let registry = Registry.create program in
      List.iter
        (fun (root, stats, rule_stamp) ->
          Registry.record registry (mid root) stats ~rule_stamp)
        script;
      Array.for_all
        (fun (m : Meth.t) ->
          Registry.roots_containing registry m.Meth.id
          = Registry.roots_containing_reference registry m.Meth.id)
        (Program.methods program)
      && List.for_all
           (fun (caller, callsite, callee, rules_version) ->
             System.recompile_candidates registry ~caller:(mid caller)
               ~callsite ~callee:(mid callee) ~rules_version ~max_opt_versions
             = System.recompile_candidates_reference registry
                 ~caller:(mid caller) ~callsite ~callee:(mid callee)
                 ~rules_version ~max_opt_versions)
           queries)

(* --- end to end: caches are invisible across --jobs --- *)

(* The adaptive-resolving policy exercises every path this PR indexed
   (flag_decisions, the candidates cache, the missing-edge scan), so a
   sweep including it must stay identical when fanned across domains:
   memoization is per-system state, never shared. *)
let test_sweep_jobs_resolving () =
  let benches =
    [
      {
        Experiment.name = "db";
        program = (Workloads.find "db").Workloads.build ~scale:1;
      };
    ]
  in
  let policies =
    Acsi_policy.Policy.[ Adaptive_resolving 4; Hybrid_param_large 3 ]
  in
  let cfg = Config.default ~policy:Acsi_policy.Policy.Context_insensitive in
  let s1 = Experiment.run_sweep ~jobs:1 cfg ~benches ~policies in
  let s2 = Experiment.run_sweep ~jobs:2 cfg ~benches ~policies in
  check_bool "points" true (s1.Experiment.points = s2.Experiment.points);
  check_bool "baselines" true
    (s1.Experiment.baselines = s2.Experiment.baselines);
  check_bool "cell cycles" true
    (List.map (fun t -> t.Experiment.t_cycles) s1.Experiment.timings
    = List.map (fun t -> t.Experiment.t_cycles) s2.Experiment.timings)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_flag_decisions_match;
    QCheck_alcotest.to_alcotest prop_candidates_match;
    Alcotest.test_case "rules: candidates memoization" `Quick
      test_candidates_memo;
    Alcotest.test_case "rules: empty is unshared" `Quick test_empty_unshared;
    QCheck_alcotest.to_alcotest prop_registry_matches;
    Alcotest.test_case "sweep with resolving policy: jobs 1 = jobs 2" `Slow
      test_sweep_jobs_resolving;
  ]
