(* Server mode: virtual threads over one shared VM, the round-robin
   scheduler, background compilation, and the deterministic load
   generator. Also the PR's reentrancy regression: two threads
   interleaving inside the *same* method must not corrupt each other
   (frames are per-invocation; window exits flush pc/sp, which is what
   makes suspension at a quantum boundary safe). *)

open Acsi_lang
module Interp = Acsi_vm.Interp
module System = Acsi_aos.System
module Config = Acsi_core.Config
module Metrics = Acsi_core.Metrics
module Policy = Acsi_policy.Policy
module Sched = Acsi_server.Sched
module Load = Acsi_server.Load
module Server = Acsi_server.Server
module Workloads = Acsi_workloads.Workloads

(* A self-contained program: every value it touches is a frame local or
   an object it allocated itself, so N interleaved executions must each
   print exactly 5050 no matter how they are scheduled. *)
let counter_prog =
  Dsl.(
    prog
      [
        cls "W" ~fields:[ "acc" ]
          [
            meth "init" [ "start" ] ~returns:false
              [ set_thisf "acc" (v "start") ];
            meth "bump" [ "x" ] ~returns:true
              [
                set_thisf "acc" (add (thisf "acc") (v "x"));
                ret (thisf "acc");
              ];
          ];
      ]
      [
        let_ "w" (new_ "W" [ i 0 ]);
        let_ "s" (i 0);
        for_ "i" (i 0) (i 100)
          [ let_ "s" (add (v "s") (inv (v "w") "bump" [ i 1 ])) ];
        print (v "s");
      ])

let counter_program () = Compile.prog counter_prog

(* --- satellite 1: interleaving two threads in the same method --- *)

let test_interleaved_reentrancy () =
  let program = counter_program () in
  (* Reference: one plain (non-threaded) run. *)
  let ref_vm = Interp.create program in
  Interp.run ref_vm;
  let expected = Interp.output ref_vm in
  Alcotest.(check (list int)) "reference output" [ 5050 ] expected;
  (* Two threads of the same program over one VM, with a quantum small
     enough that both are routinely suspended mid-[bump]/mid-loop. *)
  let vm = Interp.create program in
  let sched = Sched.create ~quantum:97 ~switch_cost:3 vm in
  let t1 = Sched.spawn sched in
  let t2 = Sched.spawn sched in
  let rec drain () =
    match Sched.run_slice sched with Some _ -> drain () | None -> ()
  in
  drain ();
  Alcotest.(check int) "both threads finished" 0 (Sched.live sched);
  Alcotest.(check (list int))
    "completion order is the spawn order"
    [ t1; t2 ]
    (List.map fst (Sched.completions sched));
  (* Interleaving actually happened: each thread needed many slices. *)
  Alcotest.(check bool)
    "threads interleaved" true
    (Sched.resumes sched ~tid:t1 > 5 && Sched.resumes sched ~tid:t2 > 5);
  Alcotest.(check (list int))
    "each interleaved execution computed 5050" [ 5050; 5050 ]
    (Interp.output vm)

let test_resume_rejects_bad_quantum () =
  let program = counter_program () in
  let vm = Interp.create program in
  let th = Interp.spawn vm in
  Alcotest.check_raises "quantum must be positive"
    (Invalid_argument "Interp.resume: quantum must be positive") (fun () ->
      ignore (Interp.resume vm th ~quantum:0))

(* --- satellite 3: fairness under round-robin --- *)

let test_fairness_no_starvation () =
  let program = counter_program () in
  let vm = Interp.create program in
  let sched = Sched.create ~quantum:199 ~switch_cost:5 vm in
  let tids = List.init 5 (fun _ -> Sched.spawn sched) in
  let rec drain () =
    match Sched.run_slice sched with Some _ -> drain () | None -> ()
  in
  drain ();
  Alcotest.(check int) "all five threads completed" 5
    (List.length (Sched.completions sched));
  Alcotest.(check int) "max live" 5 (Sched.max_live sched);
  (* Round-robin bound: between two resumes of one thread, at most every
     other live thread runs once — nobody waits longer than the peak
     number of live threads. *)
  Alcotest.(check bool)
    (Printf.sprintf "no starvation (max gap %d <= %d)"
       (Sched.max_resume_gap sched) (Sched.max_live sched))
    true
    (Sched.max_resume_gap sched <= Sched.max_live sched);
  (* Identical threads must get near-identical service. *)
  let resumes = List.map (fun tid -> Sched.resumes sched ~tid) tids in
  let mn = List.fold_left min max_int resumes in
  let mx = List.fold_left max 0 resumes in
  Alcotest.(check bool)
    (Printf.sprintf "balanced service (resumes %d..%d)" mn mx)
    true
    (mx - mn <= 2)

(* --- satellite 2: metrics snapshot / diff --- *)

let test_snapshot_diff () =
  let program = counter_program () in
  let vm = Interp.create program in
  let sys = System.create (System.default_config (Policy.Fixed 3)) vm in
  let s0 = Metrics.snapshot vm sys in
  Interp.charge vm 123;
  let s1 = Metrics.snapshot vm sys in
  let d = Metrics.diff ~before:s0 ~after:s1 in
  Alcotest.(check int) "cycles delta" 123 d.Metrics.s_cycles;
  Alcotest.(check int) "no instructions" 0 d.Metrics.s_instructions;
  Alcotest.(check int) "no calls" 0 d.Metrics.s_calls;
  Alcotest.(check int) "no compilations" 0 d.Metrics.s_opt_compilations;
  Alcotest.(check int) "no output" 0 d.Metrics.s_output_len

(* --- the load generator --- *)

let test_open_loop_arrivals () =
  let a = Load.open_loop_arrivals ~seed:42 ~period:1000 ~n:200 in
  let b = Load.open_loop_arrivals ~seed:42 ~period:1000 ~n:200 in
  Alcotest.(check (array int)) "deterministic" a b;
  let c = Load.open_loop_arrivals ~seed:43 ~period:1000 ~n:200 in
  Alcotest.(check bool) "seed-sensitive" true (a <> c);
  let prev = ref 0 in
  Array.iter
    (fun at ->
      let gap = at - !prev in
      Alcotest.(check bool)
        (Printf.sprintf "gap %d within [501, 1500]" gap)
        true
        (gap >= 501 && gap <= 1500);
      prev := at)
    a

let test_percentiles () =
  let xs = Array.init 100 (fun i -> 100 - i) in
  Alcotest.(check int) "p50" 50 (Load.percentile xs 50.0);
  Alcotest.(check int) "p95" 95 (Load.percentile xs 95.0);
  Alcotest.(check int) "p99" 99 (Load.percentile xs 99.0);
  Alcotest.(check int) "p100" 100 (Load.percentile xs 100.0);
  Alcotest.(check int) "empty" 0 (Load.percentile [||] 50.0);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Load.mean xs)

(* --- the server harness itself --- *)

let serve_db ?(async_compile = true) () =
  let program = (Workloads.find "db").Workloads.build ~scale:2 in
  Server.run ~quantum:25_000 ~switch_cost:200 ~seed:5 ~async_compile
    ~mode:
      (Server.Closed { clients = 2; requests_per_client = 2; think = 10_000 })
    ~name:"db"
    (Config.default ~policy:(Policy.Fixed 3))
    program

(* Tentpole acceptance: background compilation overlaps mutator
   progress — requests retire instructions while compiles are in
   flight, and the finished code is installed at yield points. *)
let test_async_compilation_overlaps () =
  let r = serve_db () in
  let s = r.Server.summary in
  Alcotest.(check int) "all requests served" 4 s.Server.sv_requests;
  Alcotest.(check bool)
    "background compiles were installed" true
    (s.Server.sv_async_installs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "mutator advanced %d instructions during compiles"
       s.Server.sv_overlap_instructions)
    true
    (s.Server.sv_overlap_instructions > 0);
  (* The warmup-curve windows tile the run exactly. *)
  let total = List.fold_left (fun a w -> a + w.Server.w_count) 0 r.Server.windows in
  Alcotest.(check int) "windows tile the requests" s.Server.sv_requests total;
  let installs =
    List.fold_left
      (fun a w -> a + w.Server.w_activity.Metrics.s_async_installs)
      0 r.Server.windows
  in
  Alcotest.(check int)
    "window install counts telescope to the total"
    s.Server.sv_async_installs installs

let test_sync_compile_still_works () =
  let r = serve_db ~async_compile:false () in
  let s = r.Server.summary in
  Alcotest.(check int) "all requests served" 4 s.Server.sv_requests;
  Alcotest.(check int) "no async installs in sync mode" 0
    s.Server.sv_async_installs;
  Alcotest.(check int) "no overlap in sync mode" 0
    s.Server.sv_overlap_instructions;
  Alcotest.(check bool) "still compiled" true (s.Server.sv_opt_compilations > 0)

(* Verify-on-install runs on background-compiled code too, and stays
   outside the virtual clock: disabling it must not move a single cycle
   of an async serve. *)
let test_async_verify_outside_clock () =
  let serve ~verify_installed =
    let program = (Workloads.find "db").Workloads.build ~scale:2 in
    let cfg = Config.default ~policy:(Policy.Fixed 3) in
    let cfg =
      {
        cfg with
        Config.aos = { cfg.Config.aos with System.verify_installed };
      }
    in
    (Server.run ~seed:5
       ~mode:
         (Server.Closed { clients = 2; requests_per_client = 2; think = 10_000 })
       ~name:"db" cfg program)
      .Server.summary
  in
  let on = serve ~verify_installed:true in
  let off = serve ~verify_installed:false in
  Alcotest.(check bool) "verification happened off the virtual clock" true
    (on = off);
  Alcotest.(check bool) "async installs were verified" true
    (on.Server.sv_async_installs > 0)

(* --- satellite 3: determinism of full server runs --- *)

let test_serve_deterministic () =
  let a = serve_db () and b = serve_db () in
  Alcotest.(check bool) "summaries identical" true (a.Server.summary = b.Server.summary);
  Alcotest.(check bool) "per-request records identical" true
    (a.Server.requests = b.Server.requests)

let test_serve_jobs_invariant () =
  let serve_one name =
    let program = (Workloads.find name).Workloads.build ~scale:2 in
    (Server.run ~seed:11
       ~mode:
         (Server.Closed { clients = 2; requests_per_client = 2; think = 10_000 })
       ~name
       (Config.default ~policy:(Policy.Fixed 3))
       program)
      .Server.summary
  in
  let benches = [ "db"; "jess" ] in
  let serial = Acsi_core.Parallel.map ~jobs:1 serve_one benches in
  let parallel = Acsi_core.Parallel.map ~jobs:3 serve_one benches in
  Alcotest.(check bool) "summaries independent of --jobs" true
    (serial = parallel)

(* --- static pre-warm oracle: warmup-reduction regression --- *)

(* The EXPERIMENTS.md warmup-ablation claim, pinned as a test: under the
   bench panel's exact configuration (scale 1, closed loop 4 clients x
   16 requests, Fixed 3), seeding from summaries must bring at least
   three serve workloads to steady state in fewer requests while leaving
   the merged output checksum byte-identical. *)
let test_static_seed_warmup_reduction () =
  let serve ~seeded name =
    let program = (Workloads.find name).Workloads.build ~scale:1 in
    let cfg = Config.default ~policy:(Policy.Fixed 3) in
    let cfg =
      {
        cfg with
        Config.aos = { cfg.Config.aos with System.static_seed = seeded };
      }
    in
    (Server.run
       ~mode:
         (Server.Closed { clients = 4; requests_per_client = 16; think = 50_000 })
       ~name cfg program)
      .Server.summary
  in
  let reduced =
    List.filter
      (fun name ->
        let off = serve ~seeded:false name in
        let on_ = serve ~seeded:true name in
        Alcotest.(check int)
          (name ^ ": same request count")
          off.Server.sv_requests on_.Server.sv_requests;
        on_.Server.sv_output_checksum = off.Server.sv_output_checksum
        && on_.Server.sv_warmup_requests < off.Server.sv_warmup_requests)
      [ "db"; "compress"; "jack"; "javac" ]
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "at least 3 of 4 workloads reach steady state earlier (got %d: %s)"
       (List.length reduced) (String.concat ", " reduced))
    true
    (List.length reduced >= 3)

let suite =
  [
    Alcotest.test_case "interleaved reentrancy (same method)" `Quick
      test_interleaved_reentrancy;
    Alcotest.test_case "resume rejects non-positive quantum" `Quick
      test_resume_rejects_bad_quantum;
    Alcotest.test_case "round-robin fairness" `Quick test_fairness_no_starvation;
    Alcotest.test_case "metrics snapshot diff" `Quick test_snapshot_diff;
    Alcotest.test_case "open-loop arrivals" `Quick test_open_loop_arrivals;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "async compilation overlaps mutator" `Slow
      test_async_compilation_overlaps;
    Alcotest.test_case "sync compilation path unchanged" `Slow
      test_sync_compile_still_works;
    Alcotest.test_case "async verify-on-install off the clock" `Slow
      test_async_verify_outside_clock;
    Alcotest.test_case "server runs are deterministic" `Slow
      test_serve_deterministic;
    Alcotest.test_case "server summaries invariant under --jobs" `Slow
      test_serve_jobs_invariant;
    Alcotest.test_case "static seeding cuts warmup, output identical" `Slow
      test_static_seed_warmup_reduction;
  ]
