(* The static-analysis library: a malformed-bytecode corpus with one
   body per error class, asserting the exact diagnostic each checker
   emits, plus a property that everything the JIT actually installs
   during adaptive runs re-verifies clean. *)

open Acsi_bytecode
open Acsi_analysis
open Acsi_core
module Policy = Acsi_policy.Policy
module Micro = Acsi_workloads.Micro

let check_diags = Alcotest.(check (list string))
let diag_strings ds = List.map Diag.to_string ds

(* A program with one class [T] and one static method [m] whose body
   [mk_body] builds (given the class id), plus a trivial main. The body
   is deliberately NOT verified here — each test drives the checker
   under test itself. *)
let prog_of ?(arity = 0) ?(returns = false) ?(max_locals = 2) mk_body =
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1 [| Instr.Return_void |];
  let m =
    Program.Builder.declare_method b ~owner:cls ~name:"m" ~kind:Meth.Static
      ~arity ~returns
  in
  Program.Builder.set_body b m ~max_locals (mk_body cls);
  let p = Program.Builder.seal b ~main in
  (p, Program.meth p m)

(* --- Typed verification ------------------------------------------- *)

(* Int on one path, a fresh object on the other, joined into the same
   local and then consumed by an int operation: the one definite error
   the Conflict element exists to catch. *)
let test_type_clash_at_join () =
  let p, m =
    prog_of (fun cls ->
        [|
          Instr.Const 0;
          Instr.Jump_if 5;
          Instr.Const 7;
          Instr.Store 1;
          Instr.Jump 7;
          Instr.New cls;
          Instr.Store 1;
          Instr.Load 1;
          Instr.Neg;
          Instr.Pop;
          Instr.Return_void;
        |])
  in
  check_diags "diagnostics"
    [ "m:8: neg expects an int but got a type clash at join (int vs reference)" ]
    (diag_strings (Typecheck.meth_diags p m))

(* --- Lint: unreachable code --------------------------------------- *)

let test_unreachable_block () =
  let p, m =
    prog_of ~max_locals:1 (fun _ ->
        [| Instr.Jump 2; Instr.Nop; Instr.Return_void |])
  in
  check_diags "single unreachable pc" [ "m:1: unreachable code" ]
    (diag_strings (Lint.meth p m))

let test_unreachable_range_and_epilogue () =
  let p, m =
    prog_of ~max_locals:1 (fun _ ->
        [| Instr.Return_void; Instr.Const 1; Instr.Pop; Instr.Return_void |])
  in
  check_diags "trailing non-return range is reported"
    [ "m:1: unreachable code (pcs 1-3)" ]
    (diag_strings (Lint.meth p m));
  (* ... but the front end's stranded all-returns epilogue is not. *)
  let p, m =
    prog_of ~max_locals:1 (fun _ -> [| Instr.Return_void; Instr.Return_void |])
  in
  check_diags "epilogue exempt" [] (diag_strings (Lint.meth p m))

(* --- Structural verification: the parameter-slots bugfix ---------- *)

let test_param_slots_exceed_locals () =
  let p, m =
    prog_of ~arity:3 ~max_locals:2 (fun _ ->
        [| Instr.Pop; Instr.Return_void |])
  in
  match Verify.meth p m with
  | () -> Alcotest.fail "expected Verify.Error"
  | exception Verify.Error msg ->
      Alcotest.(check string)
        "diagnostic" "m:0: 3 parameter slots do not fit in max_locals 2" msg

(* --- JIT-output invariants ---------------------------------------- *)

(* Classes A and B <: A, both answering [tick] (so CHA cannot bind the
   selector), and a static [root] whose body is supplied per test. *)
let jit_fixture root_body =
  let b = Program.Builder.create () in
  let a = Program.Builder.declare_class b ~name:"A" ~parent:None ~fields:[] in
  let bb =
    Program.Builder.declare_class b ~name:"B" ~parent:(Some a) ~fields:[]
  in
  let sel = Program.Builder.intern_selector b "tick" in
  let a_tick =
    Program.Builder.declare_method b ~owner:a ~name:"tick" ~kind:Meth.Instance
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b a_tick ~max_locals:1 [| Instr.Return_void |];
  let b_tick =
    Program.Builder.declare_method b ~owner:bb ~name:"tick" ~kind:Meth.Instance
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b b_tick ~max_locals:1 [| Instr.Return_void |];
  let root =
    Program.Builder.declare_method b ~owner:a ~name:"root" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b root ~max_locals:1 (root_body a sel a_tick);
  let p = Program.Builder.seal b ~main:root in
  (p, a, sel, a_tick, Program.meth p root)

let entry ?(parents = []) src_meth src_pc =
  { Acsi_vm.Code.src_meth; src_pc; parents }

let mk_code mid instrs srcs =
  {
    Acsi_vm.Code.meth = mid;
    tier = Acsi_vm.Code.Optimized;
    instrs;
    max_locals = 2;
    max_stack = 4;
    src = Some srcs;
    code_bytes = 0;
    assumptions = [];
  }

(* A devirtualized inline body reachable along a path that bypasses its
   method guard: the region is flagged pc by pc. *)
let test_guard_not_dominating () =
  let p, a, sel, a_tick, root =
    jit_fixture (fun a sel _ ->
        [| Instr.New a; Instr.Call_virtual (sel, 0); Instr.Return_void |])
  in
  let rid = root.Meth.id in
  let code =
    mk_code rid
      [|
        Instr.New a;
        Instr.Const 1;
        Instr.Jump_if 5;
        Instr.Guard_method { Instr.expected = a_tick; sel; argc = 0; fail = 7 };
        Instr.Nop;
        Instr.Store 1;
        Instr.Jump 8;
        Instr.Call_virtual (sel, 0);
        Instr.Return_void;
      |]
      [|
        entry rid 0;
        entry rid (-1);
        entry rid (-1);
        entry rid 1;
        entry rid (-1);
        entry ~parents:[ (rid, 1) ] a_tick (-1);
        entry ~parents:[ (rid, 1) ] a_tick 0;
        entry rid 1;
        entry rid 2;
      |]
  in
  check_diags "diagnostics"
    [
      "root$opt:5: inline body for tick not dominated by its method guard";
      "root$opt:6: inline body for tick not dominated by its method guard";
    ]
    (diag_strings (Jit_check.check p code))

(* An inline-map entry pointing past the end of its source method. *)
let test_stale_inline_map_pc () =
  let p, _, _, _, root =
    jit_fixture (fun a sel _ ->
        [| Instr.New a; Instr.Call_virtual (sel, 0); Instr.Return_void |])
  in
  let rid = root.Meth.id in
  let code =
    mk_code rid
      [| Instr.Nop; Instr.Return_void |]
      [| entry rid 99; entry rid 2 |]
  in
  check_diags "diagnostics"
    [ "root$opt:0: stale inline map: source pc 99 outside root (3 instrs)" ]
    (diag_strings (Jit_check.check p code))

(* A rewritten return whose jump lands back inside its own region. *)
let test_return_into_own_region () =
  let p, a, _, a_tick, root =
    jit_fixture (fun a _ a_tick ->
        [| Instr.New a; Instr.Call_direct a_tick; Instr.Return_void |])
  in
  let rid = root.Meth.id and tid = a_tick in
  let code =
    mk_code rid
      [|
        Instr.New a;
        Instr.Store 1;
        Instr.Nop;
        Instr.Jump 2;
        Instr.Return_void;
      |]
      [|
        entry rid 0;
        entry ~parents:[ (rid, 1) ] tid (-1);
        entry ~parents:[ (rid, 1) ] tid 0;
        entry ~parents:[ (rid, 1) ] tid 0;
        entry rid 2;
      |]
  in
  check_diags "diagnostics"
    [
      "root$opt:3: rewritten return of tick jumps into its own or a nested \
       inline region";
    ]
    (diag_strings (Jit_check.check p code))

(* An OSR-eligible entry (root-level, equal stack depth) whose carried
   stack slot changed kind between source and optimized code. *)
let test_osr_incompatible_stack () =
  let p, _, _, _, root =
    jit_fixture (fun a _ _ ->
        [| Instr.New a; Instr.Pop; Instr.Return_void |])
  in
  let rid = root.Meth.id in
  let code =
    mk_code rid
      [| Instr.Const 3; Instr.Pop; Instr.Return_void |]
      [| entry rid 0; entry rid 1; entry rid 2 |]
  in
  check_diags "diagnostics"
    [
      "root$opt:1: OSR entry for source pc 1: stack slot 0 is int in \
       optimized code but A at source";
    ]
    (diag_strings (Jit_check.check p code))

(* --- Property: installed code re-verifies ------------------------- *)

(* Whatever the adaptive system installs during a real run — inline
   expansion, peephole rewriting, guards, source maps — must satisfy
   every Jit_check invariant. Runs a random micro workload under a
   random policy and re-checks each Optimized method post hoc. *)
let prop_installed_code_reverifies =
  let policies =
    [ Policy.Fixed 2; Policy.Fixed 3; Policy.Adaptive_resolving 4 ]
  in
  QCheck.Test.make ~name:"every JIT-installed method re-verifies clean"
    ~count:8
    QCheck.(
      pair
        (int_bound (List.length Micro.all - 1))
        (int_bound (List.length policies - 1)))
    (fun (wi, pi) ->
      let name, build = List.nth Micro.all wi in
      let policy = List.nth policies pi in
      let program = build ~scale:30 in
      let result = Runtime.run (Config.default ~policy) program in
      Array.for_all
        (fun (m : Meth.t) ->
          let code = Acsi_vm.Interp.code_of result.Runtime.vm m.Meth.id in
          match code.Acsi_vm.Code.tier with
          | Acsi_vm.Code.Baseline -> true
          | Acsi_vm.Code.Optimized -> (
              match Jit_check.check program code with
              | [] -> true
              | d :: _ ->
                  QCheck.Test.fail_reportf "%s under %s: %s" name
                    (Policy.to_string policy) (Diag.to_string d)))
        (Program.methods program))

(* --- Property: summaries never contradict execution ---------------- *)

module Interp = Acsi_vm.Interp

(* Dynamic effect observation: drive a single virtual thread a quantum
   of one cycle at a time (instruction fusion off) and, before each
   slice, peek at the innermost frame's next source instruction. A
   write/allocation/print is attributed to EVERY method on the physical
   stack — the same transitive semantics the summary claims — and a
   return is attributed to the innermost method alone. Peeking can only
   under-observe (a slice may retire more than one instruction), which
   keeps the property one-sided: every observed fact must be claimed,
   never the converse. *)
let observed_facts program =
  let n = Array.length (Program.methods program) in
  let wr = Array.make n false
  and al = Array.make n false
  and io = Array.make n false
  and ret = Array.make n false in
  let vm = Interp.create ~fuse:false program in
  let th = Interp.spawn vm in
  let mark arr =
    for i = 0 to vm.Interp.depth - 1 do
      let fr = vm.Interp.frames.(i) in
      arr.((fr.Interp.f_code.Acsi_vm.Code.meth :> int)) <- true
    done
  in
  let status = ref Interp.Running in
  while !status = Interp.Running do
    (if vm.Interp.depth > 0 then
       let fr = vm.Interp.frames.(vm.Interp.depth - 1) in
       let mid = fr.Interp.f_code.Acsi_vm.Code.meth in
       let body = (Program.meth program mid).Meth.body in
       if fr.Interp.f_pc >= 0 && fr.Interp.f_pc < Array.length body then
         match body.(fr.Interp.f_pc) with
         | Instr.Put_field _ | Instr.Put_global _ | Instr.Array_set -> mark wr
         | Instr.New _ | Instr.Array_new -> mark al
         | Instr.Print_int -> mark io
         | Instr.Return | Instr.Return_void -> ret.((mid :> int)) <- true
         | _ -> ());
    status := Interp.resume vm th ~quantum:1
  done;
  (wr, al, io, ret)

let prop_summaries_sound_dynamically =
  QCheck.Test.make ~name:"summaries never contradict execution" ~count:15
    Test_props.arbitrary_program (fun ast ->
      let program = Acsi_lang.Compile.prog ast in
      let tbl = Summary.analyze program in
      let wr, al, io, ret = observed_facts program in
      (* Vacuity guard: generated programs always print from [main], so
         a working peek loop must observe [main] doing output. *)
      if not io.((Program.main program :> int)) then
        QCheck.Test.fail_reportf "dynamic harness observed no output in main";
      Array.for_all
        (fun (m : Meth.t) ->
          let s = Summary.get tbl m.Meth.id in
          let i = (m.Meth.id :> int) in
          let claimed what claim obs =
            if obs && not claim then
              QCheck.Test.fail_reportf
                "%s: summary claims no %s but execution observed one"
                m.Meth.name what
            else true
          in
          claimed "heap write" s.Summary.effects.Summary.writes_heap wr.(i)
          && claimed "allocation" s.Summary.effects.Summary.allocates al.(i)
          && claimed "output" s.Summary.effects.Summary.io io.(i)
          && (if s.Summary.pure && (wr.(i) || al.(i) || io.(i)) then
                QCheck.Test.fail_reportf
                  "%s: summary says pure but execution had effects"
                  m.Meth.name
              else true)
          &&
          if s.Summary.always_throws && ret.(i) then
            QCheck.Test.fail_reportf
              "%s: summary says always-throws but execution saw it return"
              m.Meth.name
          else true)
        (Program.methods program))

(* Monomorphic-dispatch proofs against the dynamic call graph: every
   receiver the profile actually observed at a CHA-proven site must be
   the proven target. *)
let prop_mono_proofs_match_dcg =
  QCheck.Test.make ~name:"CHA mono proofs match observed receivers" ~count:10
    Test_props.arbitrary_program (fun ast ->
      let program = Acsi_lang.Compile.prog ast in
      let tbl = Summary.analyze program in
      let cfg = Config.default ~policy:(Policy.Fixed 3) in
      let cfg = { cfg with Config.sample_period = 5_000; invoke_stride = 4 } in
      let result = Runtime.run cfg program in
      let dcg = Acsi_aos.System.dcg result.Runtime.sys in
      Array.for_all
        (fun (m : Meth.t) ->
          let s = Summary.get tbl m.Meth.id in
          List.for_all
            (fun (pc, target) ->
              List.for_all
                (fun (callee, w) ->
                  if w > 0.0 && callee <> target then
                    QCheck.Test.fail_reportf
                      "%s:%d proven monomorphic to %s but DCG observed %s"
                      m.Meth.name pc
                      (Program.meth program target).Meth.name
                      (Program.meth program callee).Meth.name
                  else true)
                (Acsi_profile.Dcg.site_distribution dcg ~caller:m.Meth.id
                   ~callsite:pc))
            s.Summary.mono_sites)
        (Program.methods program))

(* --- Summary corpus: always-throws, dynamically -------------------- *)

(* A division by a constant zero: the summary must prove always-throws,
   and actually running the method must trap, not return. *)
let test_always_throws_traps () =
  let p, m =
    prog_of ~max_locals:1 (fun _ ->
        [| Instr.Const 1; Instr.Const 0; Instr.Binop Instr.Div; Instr.Pop;
           Instr.Return_void |])
  in
  let tbl = Summary.analyze p in
  let s = Summary.get tbl m.Meth.id in
  Alcotest.(check bool) "summary proves always-throws" true s.Summary.always_throws;
  (* Seal a twin program whose main calls m, and watch it trap. *)
  let b = Program.Builder.create () in
  let cls = Program.Builder.declare_class b ~name:"T" ~parent:None ~fields:[] in
  let thrower =
    Program.Builder.declare_method b ~owner:cls ~name:"boom" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b thrower ~max_locals:1
    [| Instr.Const 1; Instr.Const 0; Instr.Binop Instr.Div; Instr.Pop;
       Instr.Return_void |];
  let main =
    Program.Builder.declare_method b ~owner:cls ~name:"main" ~kind:Meth.Static
      ~arity:0 ~returns:false
  in
  Program.Builder.set_body b main ~max_locals:1
    [| Instr.Call_static thrower; Instr.Return_void |];
  let p2 = Program.Builder.seal b ~main in
  let tbl2 = Summary.analyze p2 in
  Alcotest.(check bool) "caller inherits always-throws" true
    (Summary.get tbl2 thrower).Summary.always_throws;
  let vm = Interp.create p2 in
  Alcotest.(check bool) "execution traps, never returns" true
    (try
       Interp.run vm;
       false
     with Interp.Runtime_error _ -> true)

(* --- Determinism: the analyze table is independent of --jobs ------- *)

let test_summary_render_jobs_invariant () =
  let render name =
    let spec = Acsi_workloads.Workloads.find name in
    let program = spec.Acsi_workloads.Workloads.build ~scale:1 in
    Format.asprintf "%a"
      (fun fmt tbl -> Summary.print fmt program tbl)
      (Summary.analyze program)
  in
  let benches = [ "db"; "jess"; "mtrt" ] in
  let serial = Parallel.map ~jobs:1 render benches in
  let pooled = Parallel.map ~jobs:3 render benches in
  Alcotest.(check (list string)) "tables independent of --jobs" serial pooled

let suite =
  [
    Alcotest.test_case "type clash at join" `Quick test_type_clash_at_join;
    Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
    Alcotest.test_case "unreachable range + epilogue" `Quick
      test_unreachable_range_and_epilogue;
    Alcotest.test_case "param slots exceed locals" `Quick
      test_param_slots_exceed_locals;
    Alcotest.test_case "guard not dominating inline body" `Quick
      test_guard_not_dominating;
    Alcotest.test_case "stale inline-map pc" `Quick test_stale_inline_map_pc;
    Alcotest.test_case "return into own region" `Quick
      test_return_into_own_region;
    Alcotest.test_case "OSR-incompatible stack slot" `Quick
      test_osr_incompatible_stack;
    Alcotest.test_case "always-throws summary traps dynamically" `Quick
      test_always_throws_traps;
    Alcotest.test_case "summary table invariant under --jobs" `Quick
      test_summary_render_jobs_invariant;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_installed_code_reverifies;
        prop_summaries_sound_dynamically;
        prop_mono_proofs_match_dcg;
      ]
