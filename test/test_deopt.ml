(* Tests for the deoptimization subsystem: deopt tables, bidirectional
   on-stack transfer, pre-existence analysis, and guard-free speculative
   inlining end to end (guard storms, class-load invalidation, and the
   semantic-transparency contract on both execution tiers). *)

open Acsi_bytecode
open Acsi_core
open Acsi_policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixtures --- *)

(* The monolithic shape from test_osr: one long loop over an inlinable
   static call, so the optimized main has both root-level pcs and an
   inline region. *)
let monolithic_program () =
  let open Acsi_lang.Dsl in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "M" ~fields:[]
           [
             static_meth "work" [ "x" ] ~returns:true
               [ ret (band (add (mul (v "x") (i 17)) (i 3)) (i 65535)) ];
           ];
       ]
       [
         let_ "s" (i 0);
         for_ "k" (i 0) (i 400000)
           [ let_ "s" (call "M" "work" [ add (v "s") (v "k") ]) ];
         print (v "s");
       ])

(* The dispatch workload's handler hierarchy with a tunable hot-loop
   length and flip point: the [apply] site is loaded-CHA-monomorphic
   with a pre-existing receiver until [UrgentHandler] is first allocated
   at iteration [flip] — inside the hot activation. [flip] past [iters]
   (or negative) never fires. The two short tail phases re-enter the hot
   method after compilation has landed, so the speculation-off system
   actually executes its guarded code (OSR is off by default: compiled
   code activates on the next invocation). *)
let dispatch_like ~iters ~flip =
  let open Acsi_lang.Dsl in
  Acsi_lang.Compile.prog
    (prog
       ~globals:Acsi_workloads.Javalib.globals
       (Acsi_workloads.Javalib.classes @ Acsi_workloads.Dispatch.classes)
       [
         let_ "p" (new_ "Pipeline" []);
         let_ "n" (new_ "NormalHandler" [ i 7 ]);
         let_ "a1" (inv (v "p") "run" [ v "n"; i iters; i flip ]);
         let_ "u" (new_ "UrgentHandler" [ i 11 ]);
         let_ "a2" (inv (v "p") "run" [ v "u"; i (iters / 4); i (-1) ]);
         let_ "a3" (inv (v "p") "run" [ v "n"; i (iters / 4); i (-1) ]);
         print
           (band (add (v "a1") (add (v "a2") (v "a3"))) (i 1073741823));
       ])

let config ?(speculate = false) ?(native_tier = true) () =
  let cfg = Config.default ~policy:(Policy.Fixed 3) in
  {
    cfg with
    Config.aos =
      {
        cfg.Config.aos with
        Acsi_aos.System.speculate;
        enable_osr = speculate || cfg.Config.aos.Acsi_aos.System.enable_osr;
        native_tier;
      };
  }

(* --- deopt tables --- *)

let test_table_units () =
  let program = monolithic_program () in
  let main_id = Program.main program in
  let root = Program.meth program main_id in
  let oracle = Acsi_jit.Oracle.create program in
  let code, stats =
    Acsi_jit.Expand.compile program Acsi_vm.Cost.default oracle ~root
  in
  check_bool "fixture inlines something" true
    (stats.Acsi_jit.Expand.inline_count > 0);
  let table = Acsi_deopt.Deopt.table_of_code program code in
  check_bool "table belongs to the method" true
    (Acsi_deopt.Deopt.meth table = main_id);
  check_bool "optimized code has deopt points" true
    (Acsi_deopt.Deopt.point_count table > 0);
  let n = Array.length code.Acsi_vm.Code.instrs in
  let seen = ref 0 in
  for pc = 0 to n - 1 do
    match Acsi_deopt.Deopt.point_at table ~pc with
    | None ->
        check_bool "covered agrees with point_at" false
          (Acsi_deopt.Deopt.covered table ~pc)
    | Some plans ->
        incr seen;
        check_bool "covered agrees with point_at" true
          (Acsi_deopt.Deopt.covered table ~pc);
        check_bool "plans are non-empty" true (Array.length plans > 0);
        check_bool "outermost plan is the root" true
          (plans.(0).Acsi_vm.Interp.dp_meth = main_id);
        (* Root frame's locals start at the frame base; inner regions
           live strictly above it. *)
        check_int "root local base" 0 plans.(0).Acsi_vm.Interp.dp_base;
        Array.iteri
          (fun i p ->
            if i > 0 then
              check_bool "region locals above the root's" true
                (p.Acsi_vm.Interp.dp_base > 0))
          plans
  done;
  check_int "point_count counts mapped pcs" (Acsi_deopt.Deopt.point_count table)
    !seen;
  (* Baseline code is its own source: nothing to map. *)
  let vm = Acsi_vm.Interp.create program in
  let baseline = Acsi_vm.Interp.baseline_code_of vm main_id in
  check_int "baseline table is empty" 0
    (Acsi_deopt.Deopt.point_count
       (Acsi_deopt.Deopt.table_of_code program baseline))

(* --- the deopt mechanism, driven directly from a timer hook --- *)

let test_deopt_mechanism_direct () =
  let program = monolithic_program () in
  let main_id = Program.main program in
  let plain = Acsi_vm.Interp.create program in
  Acsi_vm.Interp.run plain;
  let vm = Acsi_vm.Interp.create ~sample_period:50_000 program in
  let stage = ref `Compile in
  let installed = ref None in
  Acsi_vm.Interp.set_on_timer_sample vm (fun vm ->
      match !stage with
      | `Compile ->
          let oracle = Acsi_jit.Oracle.create program in
          let code, _ =
            Acsi_jit.Expand.compile program (Acsi_vm.Interp.cost vm) oracle
              ~root:(Program.meth program main_id)
          in
          Acsi_vm.Interp.install_code vm main_id code;
          if Acsi_vm.Interp.osr vm main_id then begin
            installed :=
              Some (code, Acsi_deopt.Deopt.table_of_code program code);
            stage := `Deopt
          end
      | `Deopt -> (
          match !installed with
          | None -> ()
          | Some (code, table) ->
              let f =
                vm.Acsi_vm.Interp.frames.(vm.Acsi_vm.Interp.depth - 1)
              in
              if f.Acsi_vm.Interp.f_code == code then (
                match
                  Acsi_deopt.Deopt.point_at table ~pc:f.Acsi_vm.Interp.f_pc
                with
                | Some plans ->
                    Acsi_vm.Interp.deopt_top_frame vm ~plans
                      ~reason:Acsi_vm.Interp.Guard_storm;
                    stage := `Done
                | None -> ()))
      | `Done -> ());
  Acsi_vm.Interp.run vm;
  check_bool "transfer happened" true (!stage = `Done);
  check_int "one up" 1 (Acsi_vm.Interp.osr_up vm);
  check_int "one down" 1 (Acsi_vm.Interp.osr_down vm);
  check_int "reason recorded" 1 (Acsi_vm.Interp.deopt_guard_count vm);
  check_int "no invalidations" 0 (Acsi_vm.Interp.deopt_invalidate_count vm);
  Alcotest.(check (list int))
    "round trip is byte-identical"
    (Acsi_vm.Interp.output plain)
    (Acsi_vm.Interp.output vm)

(* --- pre-existence analysis --- *)

let test_preexistence () =
  let open Acsi_lang.Dsl in
  let program =
    Acsi_lang.Compile.prog
      (prog
         [
           cls "A" ~fields:[]
             [ meth "id" [ "x" ] ~returns:true [ ret (v "x") ] ];
           cls "B" ~parent:"A" ~fields:[]
             [ meth "id" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ] ];
           cls "T" ~fields:[]
             [
               (* Receiver is an unmodified, non-escaping argument. *)
               static_meth "viaArg" [ "h" ] ~returns:true
                 [ ret (inv (v "h") "id" [ i 1 ]) ];
               (* Receiver is freshly allocated inside the activation. *)
               static_meth "viaFresh" [] ~returns:true
                 [ ret (inv (new_ "A" []) "id" [ i 2 ]) ];
               (* Receiver argument was overwritten before the call. *)
               static_meth "viaClobbered" [ "h" ] ~returns:true
                 [
                   let_ "h" (new_ "B" []);
                   ret (inv (v "h") "id" [ i 3 ]);
                 ];
             ];
         ]
         [
           print (call "T" "viaArg" [ new_ "A" [] ]);
           print (call "T" "viaFresh" []);
           print (call "T" "viaClobbered" [ new_ "A" [] ]);
         ])
  in
  let table = Acsi_analysis.Summary.analyze program in
  let flags name =
    let m = Program.find_method program ~cls:"T" ~name in
    Acsi_analysis.Preexist.receiver_preexists program table m
  in
  let any a = Array.exists (fun b -> b) a in
  check_bool "argument receiver pre-exists" true (any (flags "viaArg"));
  check_bool "fresh receiver does not" false (any (flags "viaFresh"));
  check_bool "clobbered receiver does not" false (any (flags "viaClobbered"))

(* --- speculation end to end --- *)

let run_with cfg program =
  let r = Runtime.run cfg program in
  (r.Runtime.metrics, Acsi_vm.Interp.output r.Runtime.vm, r.Runtime.sys)

let test_speculation_dispatch () =
  let program = dispatch_like ~iters:40_000 ~flip:24_000 in
  let off, off_out, _ = run_with (config ()) program in
  let on_, on_out, sys = run_with (config ~speculate:true ()) program in
  Alcotest.(check (list int)) "identical output" off_out on_out;
  check_bool "guard checks eliminated" true
    (on_.Metrics.guard_hits + on_.Metrics.guard_misses
    < off.Metrics.guard_hits + off.Metrics.guard_misses);
  check_bool "speculative code was installed" true
    (Acsi_aos.System.speculative_installs sys > 0);
  check_bool "class load invalidated the speculation" true
    (on_.Metrics.deopt_invalidate >= 1);
  check_bool "a live frame was deoptimized" true (on_.Metrics.osr_down >= 1);
  check_bool "generalized OSR moved frames up" true (on_.Metrics.osr_up >= 1)

(* Speculation off must be inert: with [speculate] disabled no deopt
   machinery engages, and the subsystem's other knob
   ([deopt_guard_threshold]) must not perturb the run even at an extreme
   setting. *)
let test_speculation_off_is_inert () =
  let program = dispatch_like ~iters:40_000 ~flip:24_000 in
  let plain = Config.default ~policy:(Policy.Fixed 3) in
  let extreme =
    {
      plain with
      Config.aos =
        { plain.Config.aos with Acsi_aos.System.deopt_guard_threshold = 1 };
    }
  in
  let a, a_out, _ = run_with plain program in
  let b, b_out, sys = run_with extreme program in
  Alcotest.(check (list int)) "identical output" a_out b_out;
  check_int "identical cycles" a.Metrics.total_cycles b.Metrics.total_cycles;
  check_int "no deopt tables retired" 0 (Acsi_aos.System.pending_deopts sys);
  check_int "no speculative installs" 0
    (Acsi_aos.System.speculative_installs sys);
  check_int "no frames deoptimized" 0 b.Metrics.osr_down;
  check_int "no invalidation deopts" 0 b.Metrics.deopt_invalidate

(* Both execution tiers must agree bit for bit under speculation: same
   output, same cycle counts, same guard and deopt counters. *)
let test_speculation_both_tiers () =
  let program = dispatch_like ~iters:40_000 ~flip:24_000 in
  let key (m : Metrics.t) =
    ( m.Metrics.total_cycles,
      m.Metrics.guard_hits,
      m.Metrics.guard_misses,
      m.Metrics.osr_up,
      m.Metrics.osr_down,
      m.Metrics.deopt_guard,
      m.Metrics.deopt_invalidate,
      m.Metrics.output_checksum )
  in
  let closure, c_out, _ =
    run_with (config ~speculate:true ~native_tier:true ()) program
  in
  let interp, i_out, _ =
    run_with (config ~speculate:true ~native_tier:false ()) program
  in
  Alcotest.(check (list int)) "identical output" c_out i_out;
  check_bool "identical metrics across tiers" true
    (key closure = key interp)

(* Class-loading invalidation corpus: workloads that demonstrably load
   classes late must keep byte-identical output under speculation, and
   the AOS-free interpreter is the semantic referee. *)
let test_invalidation_corpus () =
  List.iter
    (fun name ->
      let spec = Acsi_workloads.Workloads.find name in
      let program =
        spec.Acsi_workloads.Workloads.build
          ~scale:spec.Acsi_workloads.Workloads.default_scale
      in
      let referee = Runtime.run_no_aos (config ()) program in
      let m, out, _ = run_with (config ~speculate:true ()) program in
      Alcotest.(check (list int))
        (name ^ " output matches the AOS-free referee")
        (Acsi_vm.Interp.output referee)
        out;
      if String.equal name "dispatch" then begin
        check_bool "dispatch invalidates at least once" true
          (m.Metrics.deopt_invalidate >= 1);
        check_int "dispatch runs guard-free" 0
          (m.Metrics.guard_hits + m.Metrics.guard_misses)
      end;
      if String.equal name "jbb" then
        check_bool "jbb hits the guard-storm path" true
          (m.Metrics.deopt_guard >= 1))
    [ "dispatch"; "javac"; "jbb" ]

(* --- QCheck: the interp -> optimized -> deopt -> interp round trip --- *)

(* Random hot-loop lengths and flip points (including flips that never
   fire and flips before the compile lands): whatever the adaptive
   system speculates, reverts or deoptimizes, the printed output must
   equal the AOS-free interpreter's. *)
let qcheck_roundtrip =
  QCheck.Test.make ~count:6 ~name:"speculative round trip is identity"
    QCheck.(pair (int_range 5_000 45_000) (int_range 0 11))
    (fun (iters, flip_pct) ->
      let flip = iters * flip_pct / 10 in
      (* flip_pct = 11 puts the flip past the loop: never fires *)
      let program = dispatch_like ~iters ~flip in
      let referee = Runtime.run_no_aos (config ()) program in
      let _, out, _ = run_with (config ~speculate:true ()) program in
      Acsi_vm.Interp.output referee = out)

let suite =
  [
    Alcotest.test_case "deopt table units" `Quick test_table_units;
    Alcotest.test_case "deopt mechanism, direct" `Quick
      test_deopt_mechanism_direct;
    Alcotest.test_case "pre-existence analysis" `Quick test_preexistence;
    Alcotest.test_case "speculation on dispatch shape" `Quick
      test_speculation_dispatch;
    Alcotest.test_case "speculation off is inert" `Quick
      test_speculation_off_is_inert;
    Alcotest.test_case "both tiers bit-identical" `Quick
      test_speculation_both_tiers;
    Alcotest.test_case "class-loading invalidation corpus" `Slow
      test_invalidation_corpus;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
