(* Unit tests for the adaptive optimization system: accounting, the AOS
   database, hot-method aggregation, adaptive-resolution flags, the trace
   listener, and end-to-end organizer behaviour on a live VM. *)

open Acsi_bytecode
open Acsi_aos
open Acsi_policy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mid n = Ids.Method_id.of_int n

(* --- accounting --- *)

let test_accounting () =
  let a = Accounting.create () in
  Accounting.charge a Accounting.Listeners 10;
  Accounting.charge a Accounting.Listeners 5;
  Accounting.charge a Accounting.Compilation 100;
  check_int "listeners" 15 (Accounting.get a Accounting.Listeners);
  check_int "compilation" 100 (Accounting.get a Accounting.Compilation);
  check_int "untouched" 0 (Accounting.get a Accounting.Controller);
  check_int "total" 115 (Accounting.total a);
  check_int "component count" 6 (List.length Accounting.all_components)

(* --- db --- *)

let test_db_refusals_and_ttl () =
  let db = Db.create () in
  let args = (mid 1, 3, mid 2) in
  let caller, callsite, callee = args in
  check_bool "empty" false
    (Db.refused db ~caller ~callsite ~callee ~now:0 ~ttl:10);
  Db.record_refusal db ~caller ~callsite ~callee ~stamp:5
    Acsi_jit.Oracle.Too_large;
  check_bool "fresh refusal holds" true
    (Db.refused db ~caller ~callsite ~callee ~now:7 ~ttl:10);
  check_bool "expired refusal releases" false
    (Db.refused db ~caller ~callsite ~callee ~now:20 ~ttl:10);
  check_bool "different callee unaffected" false
    (Db.refused db ~caller ~callsite ~callee:(mid 9) ~now:6 ~ttl:10);
  check_int "count" 1 (Db.refusal_count db)

let test_db_compilation_log_order () =
  let db = Db.create () in
  let ev v =
    {
      Db.ce_method = mid v;
      ce_version = 1;
      ce_units = v;
      ce_bytes = 0;
      ce_cycles = 0;
      ce_inlines = 0;
      ce_guards = 0;
    }
  in
  Db.record_compilation db (ev 1);
  Db.record_compilation db (ev 2);
  match Db.compilations db with
  | [ a; b ] ->
      check_int "oldest first" 1 a.Db.ce_units;
      check_int "then newer" 2 b.Db.ce_units
  | _ -> Alcotest.fail "expected two events"

(* --- hot methods --- *)

let test_hot_methods () =
  let program =
    Acsi_lang.Compile.prog (Acsi_lang.Dsl.prog [] [ Acsi_lang.Dsl.print (Acsi_lang.Dsl.i 0) ])
  in
  let h = Hot_methods.create program in
  let m = Program.main program in
  for _ = 1 to 10 do
    Hot_methods.add_sample h m
  done;
  check_bool "samples" true (Hot_methods.samples h m = 10.0);
  check_bool "total" true (Hot_methods.total h = 10.0);
  (match Hot_methods.hot h ~min_samples:3.0 ~fraction:0.01 with
  | [ (hot_m, w) ] ->
      check_bool "hot" true (Ids.Method_id.equal hot_m m && w = 10.0)
  | _ -> Alcotest.fail "expected one hot method");
  Hot_methods.decay h ~factor:0.1;
  check_bool "decayed" true (Hot_methods.samples h m = 1.0);
  check_bool "below min now" true
    (Hot_methods.hot h ~min_samples:3.0 ~fraction:0.01 = [])

(* --- flags --- *)

let test_flags_lifecycle () =
  let f = Flags.create () in
  let caller = mid 4 and callsite = 7 in
  check_bool "unflagged" false (Flags.flagged f ~caller ~callsite);
  Flags.flag f ~caller ~callsite ~max_attempts:2;
  check_bool "flagged" true (Flags.flagged f ~caller ~callsite);
  Flags.flag f ~caller ~callsite ~max_attempts:2;
  check_bool "still flagged at limit" true (Flags.flagged f ~caller ~callsite);
  Flags.flag f ~caller ~callsite ~max_attempts:2;
  check_bool "gives up past limit" false (Flags.flagged f ~caller ~callsite);
  check_bool "given up state" true
    (Flags.state f ~caller ~callsite = Some Flags.Given_up);
  (* Resolution freezes a flagged site. *)
  let c2 = 9 in
  Flags.flag f ~caller ~callsite:c2 ~max_attempts:5;
  Flags.resolve f ~caller ~callsite:c2;
  check_bool "resolved stops deepening" false (Flags.flagged f ~caller ~callsite:c2);
  Flags.flag f ~caller ~callsite:c2 ~max_attempts:5;
  check_bool "resolved is sticky" true
    (Flags.state f ~caller ~callsite:c2 = Some Flags.Resolved);
  let flagged, resolved, given_up = Flags.counts f in
  check_int "flagged count" 0 flagged;
  check_int "resolved count" 1 resolved;
  check_int "given up count" 1 given_up

(* --- trace listener depth per policy (on a live stack) --- *)

(* A chain of static calls deep enough to walk: main -> d4 -> d3 -> d2 ->
   d1 -> leaf, where every method passes a parameter. *)
let deep_program () =
  let open Acsi_lang.Dsl in
  let level name callee =
    static_meth name [ "x" ] ~returns:true
      [ ret (call "D" callee [ add (v "x") (i 1) ]) ]
  in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "D" ~fields:[]
           [
             static_meth "leaf" [ "x" ] ~returns:true [ ret (v "x") ];
             level "d1" "leaf";
             level "d2" "d1";
             level "d3" "d2";
             level "d4" "d3";
           ];
       ]
       [
         let_ "s" (i 0);
         for_ "k" (i 0) (i 20000)
           [ let_ "s" (add (v "s") (call "D" "d4" [ v "k" ])) ];
         print (v "s");
       ])

let max_collected_depth program policy =
  let vm = Acsi_vm.Interp.create ~invoke_stride:7 program in
  let listener =
    Trace_listener.create program ~policy ~flags:(Flags.create ())
  in
  let deepest = ref 0 in
  Acsi_vm.Interp.set_on_invoke vm (fun vm _ ->
      match Trace_listener.sample listener vm with
      | Some (t, _) -> deepest := max !deepest (Acsi_profile.Trace.depth t)
      | None -> ());
  Acsi_vm.Interp.run vm;
  !deepest

let test_listener_depth_by_policy () =
  let program = deep_program () in
  check_int "cins collects edges" 1
    (max_collected_depth program Policy.Context_insensitive);
  check_int "fixed 3 collects depth 3" 3
    (max_collected_depth program (Policy.Fixed 3));
  check_int "fixed 5 collects depth 5" 5
    (max_collected_depth program (Policy.Fixed 5));
  (* Every method here has parameters, so Parameterless == Fixed. *)
  check_int "parameterless walks through parameterful chain" 4
    (max_collected_depth program (Policy.Parameterless 4));
  (* All methods are static, so Class_methods == Fixed too. *)
  check_int "class methods walk through statics" 4
    (max_collected_depth program (Policy.Class_methods 4));
  (* Adaptive resolving stays at edges while nothing is flagged. *)
  check_int "resolve stays shallow unflagged" 1
    (max_collected_depth program (Policy.Adaptive_resolving 5))

let test_listener_stats_histogram () =
  let program = deep_program () in
  let vm = Acsi_vm.Interp.create ~invoke_stride:11 program in
  let listener =
    Trace_listener.create ~collect_termination_stats:true program
      ~policy:(Policy.Fixed 4) ~flags:(Flags.create ())
  in
  Acsi_vm.Interp.set_on_invoke vm (fun vm _ ->
      ignore (Trace_listener.sample listener vm));
  Acsi_vm.Interp.run vm;
  let st = Trace_listener.stats listener in
  check_bool "samples taken" true (st.Trace_listener.samples > 0);
  let histogram_total = Array.fold_left ( + ) 0 st.Trace_listener.depth_histogram in
  check_int "histogram covers every sample" st.Trace_listener.samples
    histogram_total;
  check_bool "frames walked >= samples" true
    (st.Trace_listener.frames_walked >= st.Trace_listener.samples)

(* --- the full system on a live run --- *)

let run_system ?(policy = Policy.Fixed 3) ?(tweak = fun c -> c) program =
  let vm =
    Acsi_vm.Interp.create ~sample_period:20_000 ~invoke_stride:64 program
  in
  let sys = System.create (tweak (System.default_config policy)) vm in
  Acsi_vm.Interp.run vm;
  (vm, sys)

let test_system_compiles_and_accounts () =
  let program = deep_program () in
  let vm, sys = run_system program in
  check_bool "optimized methods exist" true
    (Registry.opt_method_count (System.registry sys) > 0);
  check_bool "cumulative >= installed" true
    (Registry.cumulative_bytes (System.registry sys)
    >= Registry.installed_bytes (System.registry sys));
  check_bool "AOS cycles accounted" true
    (Accounting.total (System.accounting sys) > 0);
  check_bool "AOS cycles within total" true
    (Accounting.total (System.accounting sys) < Acsi_vm.Interp.cycles vm);
  check_bool "epochs ran" true (System.epochs_run sys > 0);
  check_bool "baseline compilations counted" true
    (System.baseline_compiled_methods sys >= 6)

let test_system_rules_from_traces () =
  let program = deep_program () in
  let _, sys = run_system program in
  check_bool "dcg populated" true (Acsi_profile.Dcg.size (System.dcg sys) > 0);
  check_bool "rules derived" true
    (Acsi_profile.Rules.rule_count (System.rules sys) > 0)

(* A two-phase polymorphic program: the hot [handle] target flips midway,
   so the missing-edge organizer must recompile the dispatch loop for the
   new phase (given decay and refusal expiry). *)
let phased_program () =
  let open Acsi_lang.Dsl in
  Acsi_lang.Compile.prog
    (prog
       [
         cls "H" ~fields:[] [ meth "handle" [ "x" ] ~returns:true [ ret (v "x") ] ];
         cls "H1" ~parent:"H" ~fields:[]
           [ meth "handle" [ "x" ] ~returns:true [ ret (add (v "x") (i 1)) ] ];
         cls "H2" ~parent:"H" ~fields:[]
           [ meth "handle" [ "x" ] ~returns:true [ ret (add (v "x") (i 2)) ] ];
         cls "P" ~fields:[]
           [
             static_meth "drain" [ "h"; "n" ] ~returns:true
               [
                 let_ "acc" (i 0);
                 for_ "k" (i 0) (v "n")
                   [ let_ "acc" (add (v "acc") (inv (v "h") "handle" [ v "k" ])) ];
                 ret (v "acc");
               ];
           ];
       ]
       [
         let_ "h1" (new_ "H1" []);
         let_ "h2" (new_ "H2" []);
         let_ "acc" (i 0);
         for_ "b" (i 0) (i 900)
           [ let_ "acc" (add (v "acc") (call "P" "drain" [ v "h1"; i 40 ])) ];
         for_ "b" (i 0) (i 900)
           [ let_ "acc" (add (v "acc") (call "P" "drain" [ v "h2"; i 40 ])) ];
         print (band (v "acc") (i 1073741823));
       ])

let test_system_missing_edge_recompiles () =
  let program = phased_program () in
  let _, sys =
    run_system
      ~tweak:(fun c ->
        {
          c with
          System.decay_factor = 0.5;
          decay_period = 1;
          ai_period = 2;
          refusal_ttl = 3;
        })
      program
  in
  let max_version = ref 0 in
  Registry.iter (System.registry sys) ~f:(fun _ e ->
      max_version := max !max_version e.Registry.version);
  check_bool "some method recompiled" true (!max_version > 1)

let test_system_trace_on_timer_ablation () =
  let program = deep_program () in
  let _, sys =
    run_system ~tweak:(fun c -> { c with System.trace_on_timer = true }) program
  in
  check_bool "timer-driven traces still flow" true
    (System.trace_samples_taken sys > 0)

(* --- static pre-warm oracle: determinism matrix --- *)

(* static_seed x native_tier x repetition, on real workloads: the tier
   must stay invisible (byte-identical output and cycles) with seeding
   on; seeding must preserve output while actually compiling something
   before the first sample; a reactive run must seed nothing; and the
   seeded run must be reproducible. With provenance on, every seeded
   decision carries the Static source. *)
let test_static_seed_matrix () =
  let module Config = Acsi_core.Config in
  let module Runtime = Acsi_core.Runtime in
  let run ~seeded ~tier ~prov program =
    let cfg = Config.default ~policy:(Policy.Fixed 3) in
    let cfg =
      {
        cfg with
        Config.aos =
          {
            cfg.Config.aos with
            System.static_seed = seeded;
            native_tier = tier;
            obs = { Acsi_obs.Control.off with Acsi_obs.Control.provenance = prov };
          };
      }
    in
    let r = Runtime.run cfg program in
    ( Acsi_vm.Interp.output r.Runtime.vm,
      r.Runtime.metrics.Acsi_core.Metrics.total_cycles,
      r.Runtime.sys )
  in
  List.iter
    (fun name ->
      let program =
        (Acsi_workloads.Workloads.find name).Acsi_workloads.Workloads.build
          ~scale:1
      in
      let out_on, cyc_on, sys_on = run ~seeded:true ~tier:true ~prov:true program in
      let out_interp, cyc_interp, _ =
        run ~seeded:true ~tier:false ~prov:false program
      in
      let out_again, cyc_again, _ =
        run ~seeded:true ~tier:true ~prov:false program
      in
      let out_react, cyc_react, sys_react =
        run ~seeded:false ~tier:true ~prov:false program
      in
      check_bool (name ^ ": tier invisible with seeding on") true
        (out_on = out_interp && cyc_on = cyc_interp);
      check_bool (name ^ ": seeded run reproducible") true
        (out_on = out_again && cyc_on = cyc_again);
      check_bool (name ^ ": seeding preserves output") true (out_on = out_react);
      check_bool (name ^ ": oracle seeded before first sample") true
        (System.static_seeded_methods sys_on > 0);
      check_int (name ^ ": reactive run seeds nothing") 0
        (System.static_seeded_methods sys_react);
      check_bool (name ^ ": seeding changes the cycle count") true
        (cyc_on <> cyc_react);
      match System.provenance sys_on with
      | None -> Alcotest.fail (name ^ ": provenance requested but absent")
      | Some prov ->
          let _, static, _ = Acsi_obs.Provenance.source_counts prov in
          check_bool (name ^ ": static-source decisions recorded") true
            (static > 0))
    [ "db"; "jess" ]

let suite =
  [
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "db refusals + ttl" `Quick test_db_refusals_and_ttl;
    Alcotest.test_case "db compilation log" `Quick test_db_compilation_log_order;
    Alcotest.test_case "hot methods" `Quick test_hot_methods;
    Alcotest.test_case "flags lifecycle" `Quick test_flags_lifecycle;
    Alcotest.test_case "listener depth per policy" `Quick
      test_listener_depth_by_policy;
    Alcotest.test_case "listener statistics" `Quick test_listener_stats_histogram;
    Alcotest.test_case "system compiles and accounts" `Quick
      test_system_compiles_and_accounts;
    Alcotest.test_case "system derives rules" `Quick test_system_rules_from_traces;
    Alcotest.test_case "missing-edge recompiles" `Quick
      test_system_missing_edge_recompiles;
    Alcotest.test_case "trace-on-timer ablation" `Quick
      test_system_trace_on_timer_ablation;
    Alcotest.test_case "static-seed determinism matrix" `Slow
      test_static_seed_matrix;
  ]
