(* Unit + property tests for the profile structures: traces, the dynamic
   call graph, and the partial-matching rule queries. *)

open Acsi_bytecode
open Acsi_profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mid n = Ids.Method_id.of_int n
let entry caller callsite = { Trace.caller = mid caller; callsite }

let trace callee chain =
  Trace.make ~callee:(mid callee) ~chain:(List.map (fun (c, s) -> entry c s) chain)

(* --- Trace --- *)

let test_trace_make_empty_chain () =
  Alcotest.check_raises "empty chain" (Invalid_argument "Trace.make: empty chain")
    (fun () -> ignore (Trace.make ~callee:(mid 0) ~chain:[]))

let test_trace_depth_and_edge () =
  let t = trace 9 [ (1, 2); (3, 4); (5, 6) ] in
  check_int "depth" 3 (Trace.depth t);
  let e = Trace.edge t in
  check_int "edge depth" 1 (Trace.depth e);
  check_bool "edge keeps innermost" true
    (Trace.entry_equal e.Trace.chain.(0) (entry 1 2))

let test_trace_equality () =
  let a = trace 9 [ (1, 2); (3, 4) ] in
  let b = trace 9 [ (1, 2); (3, 4) ] in
  let c = trace 9 [ (1, 2); (3, 5) ] in
  let d = trace 8 [ (1, 2); (3, 4) ] in
  check_bool "equal" true (Trace.equal a b);
  check_int "hash agrees" (Trace.hash a) (Trace.hash b);
  check_bool "callsite differs" false (Trace.equal a c);
  check_bool "callee differs" false (Trace.equal a d);
  check_int "compare self" 0 (Trace.compare a b)

let test_context_matches () =
  let rule = [| entry 1 2; entry 3 4; entry 5 6 |] in
  check_bool "site shorter: prefix matches" true
    (Trace.context_matches ~rule_chain:rule ~site_chain:[| entry 1 2 |]);
  check_bool "site longer: prefix matches" true
    (Trace.context_matches ~rule_chain:[| entry 1 2 |]
       ~site_chain:[| entry 1 2; entry 9 9 |]);
  check_bool "mismatch at 0" false
    (Trace.context_matches ~rule_chain:rule ~site_chain:[| entry 1 3 |]);
  check_bool "mismatch at 1" false
    (Trace.context_matches ~rule_chain:rule
       ~site_chain:[| entry 1 2; entry 3 5 |])

(* qcheck: Eq. 3 matching is reflexive, and prefix-truncation preserves it. *)
let arbitrary_chain =
  QCheck.(
    list_of_size Gen.(1 -- 5)
      (pair (int_bound 30) (int_bound 10))
    |> map (fun pairs ->
           Array.of_list (List.map (fun (c, s) -> entry c s) pairs)))

let prop_matching_reflexive =
  QCheck.Test.make ~name:"context_matches is reflexive" ~count:200
    arbitrary_chain (fun chain ->
      QCheck.assume (Array.length chain > 0);
      Trace.context_matches ~rule_chain:chain ~site_chain:chain)

let prop_matching_prefix =
  QCheck.Test.make ~name:"truncating a matching site still matches" ~count:200
    QCheck.(pair arbitrary_chain small_nat)
    (fun (chain, cut) ->
      QCheck.assume (Array.length chain > 0);
      let cut = 1 + (cut mod Array.length chain) in
      let prefix = Array.sub chain 0 cut in
      Trace.context_matches ~rule_chain:chain ~site_chain:prefix)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal traces hash equally" ~count:200
    QCheck.(pair arbitrary_chain (int_bound 20))
    (fun (chain, callee) ->
      QCheck.assume (Array.length chain > 0);
      let t1 = Trace.of_chain ~callee:(mid callee) ~chain in
      let t2 = Trace.of_chain ~callee:(mid callee) ~chain:(Array.copy chain) in
      Trace.equal t1 t2 && Trace.hash t1 = Trace.hash t2)

(* --- Dcg --- *)

let test_dcg_accumulation () =
  let dcg = Dcg.create () in
  let t1 = trace 9 [ (1, 2) ] in
  let t2 = trace 9 [ (1, 2); (3, 4) ] in
  Dcg.add_sample dcg t1;
  Dcg.add_sample dcg t1;
  Dcg.add_sample dcg t2;
  check_bool "weight t1" true (Dcg.weight dcg t1 = 2.0);
  check_bool "weight t2" true (Dcg.weight dcg t2 = 1.0);
  check_bool "different depths are separate entries" true
    (Dcg.weight dcg t1 <> Dcg.weight dcg t2);
  check_bool "total" true (Dcg.total_weight dcg = 3.0);
  check_int "size" 2 (Dcg.size dcg)

let test_dcg_decay_and_prune () =
  let dcg = Dcg.create () in
  let t1 = trace 9 [ (1, 2) ] in
  let t2 = trace 8 [ (1, 3) ] in
  for _ = 1 to 100 do
    Dcg.add_sample dcg t1
  done;
  Dcg.add_sample dcg t2;
  Dcg.decay dcg ~factor:0.5 ~prune_below:1.0;
  check_bool "t1 halved" true (Dcg.weight dcg t1 = 50.0);
  check_bool "t2 pruned" true (Dcg.weight dcg t2 = 0.0);
  check_int "size after prune" 1 (Dcg.size dcg)

let test_dcg_hot_threshold () =
  let dcg = Dcg.create () in
  let hot_t = trace 9 [ (1, 2) ] in
  let cold_t = trace 8 [ (1, 3) ] in
  for _ = 1 to 99 do
    Dcg.add_sample dcg hot_t
  done;
  Dcg.add_sample dcg cold_t;
  let hot = Dcg.hot dcg ~threshold:0.015 in
  check_int "one hot trace" 1 (List.length hot);
  (match hot with
  | [ (t, w) ] ->
      check_bool "the hot one" true (Trace.equal t hot_t);
      check_bool "weight" true (w = 99.0)
  | _ -> Alcotest.fail "unexpected");
  check_int "lower threshold admits both" 2
    (List.length (Dcg.hot dcg ~threshold:0.005))

let test_dcg_site_distribution () =
  let dcg = Dcg.create () in
  (* Same call site reached with two callees, one through deep context. *)
  for _ = 1 to 3 do
    Dcg.add_sample dcg (trace 10 [ (1, 2) ])
  done;
  Dcg.add_sample dcg (trace 11 [ (1, 2); (5, 6) ]);
  Dcg.add_sample dcg (trace 11 [ (1, 9) ]);
  match Dcg.site_distribution dcg ~caller:(mid 1) ~callsite:2 with
  | [ (first, w1); (second, w2) ] ->
      check_bool "heaviest first" true (Ids.Method_id.equal first (mid 10));
      check_bool "w1" true (w1 = 3.0);
      check_bool "second" true (Ids.Method_id.equal second (mid 11));
      check_bool "w2 aggregates depths" true (w2 = 1.0)
  | other -> Alcotest.failf "unexpected distribution size %d" (List.length other)

let test_dcg_edge_weight () =
  let dcg = Dcg.create () in
  Dcg.add_sample dcg (trace 10 [ (1, 2) ]);
  Dcg.add_sample dcg (trace 10 [ (1, 2); (5, 6) ]);
  Dcg.add_sample dcg (trace 10 [ (1, 3) ]);
  check_bool "edge weight sums depths" true
    (Dcg.edge_weight dcg ~caller:(mid 1) ~callsite:2 ~callee:(mid 10) = 2.0)

(* qcheck: decay by factor f scales total weight by f (before pruning). *)
let prop_decay_scales_total =
  QCheck.Test.make ~name:"decay scales total weight" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 5) (int_bound 5)))
    (fun samples ->
      let dcg = Dcg.create () in
      List.iter
        (fun (callee, site) -> Dcg.add_sample dcg (trace callee [ (0, site) ]))
        samples;
      let before = Dcg.total_weight dcg in
      Dcg.decay dcg ~factor:0.5 ~prune_below:0.0;
      Float.abs (Dcg.total_weight dcg -. (before *. 0.5)) < 1e-9)

(* --- Rules --- *)

let candidates_names rules site_chain =
  Rules.candidates rules ~site_chain
  |> List.map (fun ((m : Ids.Method_id.t), _) -> (m :> int))
  |> List.sort compare

let test_rules_exact_context () =
  let rules =
    Rules.of_hot_traces
      [ (trace 10 [ (1, 2); (3, 4) ], 5.0); (trace 11 [ (1, 2); (3, 7) ], 4.0) ]
  in
  check_int "count" 2 (Rules.rule_count rules);
  (* Full context picks out exactly the matching rule's callee. *)
  Alcotest.(check (list int)) "ctx A" [ 10 ]
    (candidates_names rules [| entry 1 2; entry 3 4 |]);
  Alcotest.(check (list int)) "ctx B" [ 11 ]
    (candidates_names rules [| entry 1 2; entry 3 7 |])

let test_rules_conflicting_contexts_intersect_empty () =
  let rules =
    Rules.of_hot_traces
      [ (trace 10 [ (1, 2); (3, 4) ], 5.0); (trace 11 [ (1, 2); (3, 7) ], 4.0) ]
  in
  (* Compiling with only the innermost entry: both rules applicable, the
     contexts disagree, the intersection is empty (paper §3.3). *)
  Alcotest.(check (list int)) "conflict kills candidates" []
    (candidates_names rules [| entry 1 2 |])

let test_rules_agreeing_contexts_survive () =
  let rules =
    Rules.of_hot_traces
      [ (trace 10 [ (1, 2); (3, 4) ], 5.0); (trace 10 [ (1, 2); (3, 7) ], 4.0) ]
  in
  (* Same callee hot under every applicable context: survives with the
     summed weight. *)
  match Rules.candidates rules ~site_chain:[| entry 1 2 |] with
  | [ (m, w) ] ->
      check_int "callee" 10 (m :> int);
      check_bool "weights summed" true (w = 9.0)
  | other -> Alcotest.failf "unexpected candidate count %d" (List.length other)

let test_rules_polymorphic_same_context () =
  let rules =
    Rules.of_hot_traces
      [ (trace 10 [ (1, 2) ], 6.0); (trace 11 [ (1, 2) ], 3.0) ]
  in
  (* One context group containing two callees: both are candidates,
     heaviest first (the context-insensitive guarded-inlining case). *)
  match Rules.candidates rules ~site_chain:[| entry 1 2 |] with
  | [ (m1, w1); (m2, _) ] ->
      check_int "heaviest first" 10 (m1 :> int);
      check_bool "weight" true (w1 = 6.0);
      check_int "second" 11 (m2 :> int)
  | other -> Alcotest.failf "unexpected candidate count %d" (List.length other)

let test_rules_deeper_site_than_rule () =
  let rules = Rules.of_hot_traces [ (trace 10 [ (1, 2) ], 5.0) ] in
  (* The compile context has more (irrelevant) context than the rule:
     partial matching still applies it. *)
  Alcotest.(check (list int)) "applies" [ 10 ]
    (candidates_names rules [| entry 1 2; entry 8 8; entry 9 9 |])

let test_rules_exact_match_ablation () =
  let rules =
    Rules.of_hot_traces [ (trace 10 [ (1, 2); (3, 4) ], 5.0) ]
  in
  check_int "partial matching applies the deep rule" 1
    (List.length (Rules.candidates rules ~site_chain:[| entry 1 2 |]));
  check_int "exact-match ablation does not" 0
    (List.length
       (Rules.candidates ~exact:true rules ~site_chain:[| entry 1 2 |]));
  check_int "exact-match with full context does" 1
    (List.length
       (Rules.candidates ~exact:true rules
          ~site_chain:[| entry 1 2; entry 3 4 |]))

let test_rules_wrong_site () =
  let rules = Rules.of_hot_traces [ (trace 10 [ (1, 2) ], 5.0) ] in
  Alcotest.(check (list int)) "different callsite" []
    (candidates_names rules [| entry 1 3 |]);
  Alcotest.(check (list int)) "different caller" []
    (candidates_names rules [| entry 2 2 |])

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matching_reflexive;
      prop_matching_prefix;
      prop_hash_consistent;
      prop_decay_scales_total;
    ]

let suite =
  [
    Alcotest.test_case "trace: empty chain rejected" `Quick
      test_trace_make_empty_chain;
    Alcotest.test_case "trace: depth and edge" `Quick test_trace_depth_and_edge;
    Alcotest.test_case "trace: equality and hash" `Quick test_trace_equality;
    Alcotest.test_case "trace: Eq.3 matching" `Quick test_context_matches;
    Alcotest.test_case "dcg: accumulation" `Quick test_dcg_accumulation;
    Alcotest.test_case "dcg: decay and prune" `Quick test_dcg_decay_and_prune;
    Alcotest.test_case "dcg: hot threshold" `Quick test_dcg_hot_threshold;
    Alcotest.test_case "dcg: site distribution" `Quick test_dcg_site_distribution;
    Alcotest.test_case "dcg: edge weight" `Quick test_dcg_edge_weight;
    Alcotest.test_case "rules: exact contexts" `Quick test_rules_exact_context;
    Alcotest.test_case "rules: conflicting contexts" `Quick
      test_rules_conflicting_contexts_intersect_empty;
    Alcotest.test_case "rules: agreeing contexts" `Quick
      test_rules_agreeing_contexts_survive;
    Alcotest.test_case "rules: polymorphic one context" `Quick
      test_rules_polymorphic_same_context;
    Alcotest.test_case "rules: site deeper than rule" `Quick
      test_rules_deeper_site_than_rule;
    Alcotest.test_case "rules: exact-match ablation" `Quick
      test_rules_exact_match_ablation;
    Alcotest.test_case "rules: wrong site" `Quick test_rules_wrong_site;
  ]
  @ qcheck_suite
