(* Command-line driver: run one benchmark under one context-sensitivity
   policy and print the run's metrics, optionally with the compilation log
   and the baseline comparison the paper's figures are built from. *)

open Acsi_core

let list_benchmarks () =
  Format.printf "@[<v>Available benchmarks:@,";
  List.iter
    (fun (s : Acsi_workloads.Workloads.spec) ->
      Format.printf "  %-10s %s (default scale %d)@,"
        s.Acsi_workloads.Workloads.name s.description s.default_scale)
    Acsi_workloads.Workloads.all;
  Format.printf "@]%!";
  0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Print the installed code of every method whose (unmangled) name
   contains [pattern]: the post-run view of what the JIT produced. *)
let disassemble program vm pattern =
  Array.iter
    (fun (m : Acsi_bytecode.Meth.t) ->
      let name = m.Acsi_bytecode.Meth.name in
      let matches =
        let n = String.length name and k = String.length pattern in
        let rec go i =
          i + k <= n
          && (String.equal (String.sub name i k) pattern || go (i + 1))
        in
        go 0
      in
      if matches then begin
        let code = Acsi_vm.Interp.code_of vm m.Acsi_bytecode.Meth.id in
        Format.printf "@.%a@." Acsi_vm.Code.pp code
      end)
    (Acsi_bytecode.Program.methods program)

(* Structural + typed verification of a whole program, with diagnostics
   in the [method:pc: message] format. Returns whether it passed. *)
let verify_program program =
  match
    Acsi_bytecode.Verify.program program;
    Acsi_analysis.Typecheck.program program
  with
  | () -> true
  | exception Acsi_bytecode.Verify.Error msg ->
      Format.eprintf "%s@." msg;
      false
  | exception Acsi_analysis.Diag.Error d ->
      Format.eprintf "%s@." (Acsi_analysis.Diag.to_string d);
      false

let run_one ~bench ~file ~policy_str ~scale ~compare_baseline
    ~show_compilations ~disasm ~jobs ~verify =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf
        "unknown policy %S (try: cins, fixed(max=3), paramLess(max=4), \
         class, large, hybrid1, hybrid2, resolve)@."
        policy_str;
      2
  | Some policy -> (
      match Acsi_workloads.Workloads.find bench with
      | exception Not_found ->
          Format.eprintf "unknown benchmark %S (use --list)@." bench;
          2
      | spec ->
          let scale =
            match scale with
            | Some s -> s
            | None -> spec.Acsi_workloads.Workloads.default_scale
          in
          match
            match file with
            | Some path -> Acsi_lang.Parser.compile (read_file path)
            | None -> spec.Acsi_workloads.Workloads.build ~scale
          with
          | exception Acsi_bytecode.Verify.Error msg ->
              Format.eprintf "%s@." msg;
              1
          | program ->
          (* Typed verification before execution: on by default for the
             textual-language pipeline, opt-in for built-in benchmarks. *)
          let verify_on =
            match verify with Some b -> b | None -> Option.is_some file
          in
          if verify_on && not (verify_program program) then 1
          else
          (* With --jobs > 1 the baseline of --compare runs on a second
             domain concurrently with the measured run; both runs are
             deterministic, so the printed numbers do not depend on it. *)
          let result, baseline_result =
            if compare_baseline && jobs > 1 then
              match
                Parallel.map ~jobs
                  (fun policy -> Runtime.run (Config.default ~policy) program)
                  [ policy; Acsi_policy.Policy.Context_insensitive ]
              with
              | [ r; b ] -> (r, Some b)
              | _ -> assert false
            else (Runtime.run (Config.default ~policy) program, None)
          in
          (match file with
          | Some path -> Format.printf "%s:@.%a@." path Metrics.pp result.Runtime.metrics
          | None ->
              Format.printf "%s at scale %d:@.%a@." bench scale Metrics.pp
                result.Runtime.metrics);
          if show_compilations then begin
            Format.printf "@.Compilation log:@.";
            List.iter
              (fun (e : Acsi_aos.Db.compilation_event) ->
                let m =
                  Acsi_bytecode.Program.meth program e.Acsi_aos.Db.ce_method
                in
                Format.printf
                  "  %-22s v%d %4d units %5d bytes %7d cycles %2d inlines %d \
                   guards@."
                  m.Acsi_bytecode.Meth.name e.Acsi_aos.Db.ce_version
                  e.Acsi_aos.Db.ce_units e.Acsi_aos.Db.ce_bytes
                  e.Acsi_aos.Db.ce_cycles e.Acsi_aos.Db.ce_inlines
                  e.Acsi_aos.Db.ce_guards)
              (Acsi_aos.Db.compilations (Acsi_aos.System.db result.Runtime.sys))
          end;
          (match disasm with
          | Some pattern -> disassemble program result.Runtime.vm pattern
          | None -> ());
          (if compare_baseline then
             let base =
               match baseline_result with
               | Some base -> base
               | None ->
                   Runtime.run
                     (Config.default
                        ~policy:Acsi_policy.Policy.Context_insensitive)
                     program
             in
             let bm = base.Runtime.metrics in
             let m = result.Runtime.metrics in
             Format.printf
               "@.vs context-insensitive baseline:@.  speedup %+.2f%%  code \
                size %+.2f%%  compile time %+.2f%%@."
               (Metrics.speedup_pct ~baseline:bm m)
               (Metrics.code_size_change_pct ~baseline:bm m)
               (Metrics.compile_time_change_pct ~baseline:bm m));
          0)

open Cmdliner

let bench_arg =
  Arg.(value & opt string "db" & info [ "b"; "bench" ] ~doc:"Benchmark name.")

let policy_arg =
  Arg.(
    value
    & opt string "fixed(max=3)"
    & info [ "p"; "policy" ]
        ~doc:
          "Context-sensitivity policy: cins, fixed, paramLess, class, large, \
           hybrid1, hybrid2, resolve; optionally with (max=N).")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "scale" ] ~doc:"Workload scale (default per benchmark).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List benchmarks and exit.")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:"Also run the context-insensitive baseline and print deltas.")

let compilations_arg =
  Arg.(
    value & flag
    & info [ "compilations" ] ~doc:"Print the optimizing-compilation log.")

let disasm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "disasm" ]
        ~doc:
          "After the run, disassemble the installed code of methods whose \
           name contains the given substring.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log adaptive-system events (compilations, rule rebuilds).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Domains to use; with --compare, 2+ runs the baseline \
           concurrently with the measured run.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ]
        ~doc:
          "Run a textual mini-language program (.acsi) instead of a named \
           benchmark.")

let verify_flag =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "verify" ]
              ~doc:
                "Run structural and typed verification over the whole \
                 program before executing (default for --file)." );
          ( Some false,
            info [ "no-verify" ] ~doc:"Skip pre-run typed verification." );
        ])

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let main list_only verbose bench file policy scale compare_baseline
    show_compilations disasm jobs verify =
  setup_logs verbose;
  if list_only then list_benchmarks ()
  else
    run_one ~bench ~file ~policy_str:policy ~scale ~compare_baseline
      ~show_compilations ~disasm ~jobs ~verify

(* `acsi-run lint [FILES]`: typed verification plus dead-code and
   unused-local lints over the given .acsi programs, or over every
   built-in workload when no file is given. *)
let lint_targets files =
  let findings = ref 0 and targets = ref 0 in
  let lint_one label program =
    incr targets;
    let diags = Acsi_analysis.Lint.program program in
    List.iter
      (fun d ->
        incr findings;
        Format.printf "%s: %s@." label (Acsi_analysis.Diag.to_string d))
      diags
  in
  let ok = ref true in
  (match files with
  | [] ->
      List.iter
        (fun (s : Acsi_workloads.Workloads.spec) ->
          lint_one s.Acsi_workloads.Workloads.name
            (s.Acsi_workloads.Workloads.build
               ~scale:s.Acsi_workloads.Workloads.default_scale))
        Acsi_workloads.Workloads.all
  | files ->
      List.iter
        (fun path ->
          match Acsi_lang.Parser.compile (read_file path) with
          | exception Acsi_bytecode.Verify.Error msg ->
              ok := false;
              Format.printf "%s: %s@." path msg
          | program -> lint_one path program)
        files);
  if !findings = 0 && !ok then begin
    Format.printf "lint: %d target%s clean@." !targets
      (if !targets = 1 then "" else "s");
    0
  end
  else 1

(* `acsi-run serve`: server-mode execution — each benchmark's requests
   run as virtual threads over one shared VM/AOS instance, with
   background compilation, and the summary reports throughput and
   latency percentiles. Deterministic: identical invocations print
   identical summaries. *)
let serve_benches ~benches ~policy_str ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~sync_compile ~show_windows =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some policy -> (
      let exception Unknown_bench of string in
      let names =
        List.filter
          (fun s -> String.length s > 0)
          (String.split_on_char ',' benches)
      in
      match
        List.map
          (fun name ->
            match Acsi_workloads.Workloads.find name with
            | spec -> spec
            | exception Not_found -> raise (Unknown_bench name))
          names
      with
      | exception Unknown_bench name ->
          Format.eprintf "unknown benchmark %S (use --list)@." name;
          2
      | specs ->
          let first = ref true in
          List.iter
            (fun (spec : Acsi_workloads.Workloads.spec) ->
              let scale =
                match scale with
                | Some s -> s
                | None -> spec.Acsi_workloads.Workloads.default_scale
              in
              let program = spec.Acsi_workloads.Workloads.build ~scale in
              let mode =
                match open_period with
                | Some period -> Acsi_server.Server.Open { period; requests }
                | None ->
                    Acsi_server.Server.Closed
                      { clients; requests_per_client = requests; think }
              in
              let result =
                Acsi_server.Server.run ~quantum ~switch_cost ~seed
                  ~async_compile:(not sync_compile) ~mode
                  ~name:spec.Acsi_workloads.Workloads.name
                  (Config.default ~policy) program
              in
              if not !first then Format.printf "@.";
              first := false;
              Format.printf "%a@." Acsi_server.Server.pp_summary
                result.Acsi_server.Server.summary;
              if show_windows then
                Format.printf "%a@." Acsi_server.Server.pp_windows
                  result.Acsi_server.Server.windows)
            specs;
          0)

let serve_bench_arg =
  Arg.(
    value
    & opt string "db,jess,compress"
    & info [ "b"; "bench" ] ~doc:"Comma-separated benchmark names to serve.")

let requests_arg =
  Arg.(
    value & opt int 8
    & info [ "requests" ]
        ~doc:
          "Requests per client (closed loop) or total requests (open loop).")

let clients_arg =
  Arg.(
    value & opt int 4
    & info [ "clients" ] ~doc:"Concurrent clients (closed loop).")

let think_arg =
  Arg.(
    value & opt int 50_000
    & info [ "think" ]
        ~doc:"Client think time in cycles between requests (closed loop).")

let open_period_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "open" ] ~docv:"PERIOD"
        ~doc:
          "Use an open-loop arrival schedule with the given mean \
           inter-arrival period in cycles instead of the closed loop.")

let quantum_arg =
  Arg.(
    value & opt int 25_000
    & info [ "quantum" ] ~doc:"Scheduler quantum in cycles.")

let switch_cost_arg =
  Arg.(
    value & opt int 200
    & info [ "switch-cost" ] ~doc:"Context-switch cost in cycles.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Seed for the open-loop arrival schedule.")

let sync_compile_arg =
  Arg.(
    value & flag
    & info [ "sync-compile" ]
        ~doc:
          "Compile synchronously at the sample that requested it instead \
           of on the background compiler thread.")

let windows_arg =
  Arg.(
    value & flag
    & info [ "windows" ] ~doc:"Also print the per-window warmup curve.")

let serve_main verbose benches policy scale requests clients think open_period
    quantum switch_cost seed sync_compile show_windows =
  setup_logs verbose;
  serve_benches ~benches ~policy_str:policy ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~sync_compile ~show_windows

let serve_cmd =
  let doc =
    "serve a deterministic request workload over one shared VM and \
     adaptive system, reporting throughput and latency percentiles"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_main $ verbose_arg $ serve_bench_arg $ policy_arg
      $ scale_arg $ requests_arg $ clients_arg $ think_arg $ open_period_arg
      $ quantum_arg $ switch_cost_arg $ seed_arg $ sync_compile_arg
      $ windows_arg)

let lint_files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Mini-language programs (.acsi) to lint; every built-in workload \
           when omitted.")

let run_cmd_term =
  Term.(
    const main $ list_arg $ verbose_arg $ bench_arg $ file_arg $ policy_arg
    $ scale_arg $ compare_arg $ compilations_arg $ disasm_arg $ jobs_arg
    $ verify_flag)

let lint_cmd =
  let doc =
    "typed verification, dead-code and unused-local lints over programs"
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint_targets $ lint_files_arg)

let cmd =
  let doc =
    "run an adaptive-context-sensitive-inlining experiment on one benchmark"
  in
  Cmd.group ~default:run_cmd_term (Cmd.info "acsi-run" ~doc)
    [ lint_cmd; serve_cmd ]

let () = exit (Cmd.eval' cmd)
