(* Command-line driver: run one benchmark under one context-sensitivity
   policy and print the run's metrics, optionally with the compilation log
   and the baseline comparison the paper's figures are built from. *)

open Acsi_core

let list_benchmarks () =
  Format.printf "@[<v>Available benchmarks:@,";
  List.iter
    (fun (s : Acsi_workloads.Workloads.spec) ->
      Format.printf "  %-10s %s (default scale %d)@,"
        s.Acsi_workloads.Workloads.name s.description s.default_scale)
    Acsi_workloads.Workloads.all;
  Format.printf "@]%!";
  0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Print the installed code of every method whose (unmangled) name
   contains [pattern]: the post-run view of what the JIT produced. *)
let disassemble program vm pattern =
  Array.iter
    (fun (m : Acsi_bytecode.Meth.t) ->
      let name = m.Acsi_bytecode.Meth.name in
      let matches =
        let n = String.length name and k = String.length pattern in
        let rec go i =
          i + k <= n
          && (String.equal (String.sub name i k) pattern || go (i + 1))
        in
        go 0
      in
      if matches then begin
        let code = Acsi_vm.Interp.code_of vm m.Acsi_bytecode.Meth.id in
        Format.printf "@.%a@." Acsi_vm.Code.pp code
      end)
    (Acsi_bytecode.Program.methods program)

(* Structural + typed verification of a whole program, with diagnostics
   in the [method:pc: message] format. Returns whether it passed. *)
let verify_program program =
  match
    Acsi_bytecode.Verify.program program;
    Acsi_analysis.Typecheck.program program
  with
  | () -> true
  | exception Acsi_bytecode.Verify.Error msg ->
      Format.eprintf "%s@." msg;
      false
  | exception Acsi_analysis.Diag.Error d ->
      Format.eprintf "%s@." (Acsi_analysis.Diag.to_string d);
      false

(* --native-tier / --no-native-tier: [None] keeps the config default
   (tier on). Purely a host-speed knob — metrics and output are
   bit-identical either way, which `--no-native-tier` exists to check. *)
let apply_tier tier (cfg : Config.t) =
  match tier with
  | None -> cfg
  | Some b ->
      {
        cfg with
        Config.aos = { cfg.Config.aos with Acsi_aos.System.native_tier = b };
      }

(* --static-seed: turn on the static pre-warm oracle (summary-driven
   inlining at method install time, before any sample). Default off —
   the purely reactive system all goldens are pinned to. *)
let apply_seed seed (cfg : Config.t) =
  if not seed then cfg
  else
    {
      cfg with
      Config.aos = { cfg.Config.aos with Acsi_aos.System.static_seed = true };
    }

(* --speculate: guard-free speculative inlining with deoptimization.
   Implies --enable-osr semantics: on-stack transfers both ways, so
   recompiles activate immediately and reverted methods drain their
   stale frames. *)
let apply_speculate spec (cfg : Config.t) =
  if not spec then cfg
  else
    {
      cfg with
      Config.aos =
        {
          cfg.Config.aos with
          Acsi_aos.System.speculate = true;
          enable_osr = true;
        };
    }

let run_one ~bench ~file ~policy_str ~scale ~compare_baseline
    ~show_compilations ~disasm ~jobs ~verify ~tier ~static_seed ~speculate =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf
        "unknown policy %S (try: cins, fixed(max=3), paramLess(max=4), \
         class, large, hybrid1, hybrid2, resolve)@."
        policy_str;
      2
  | Some policy -> (
      match Acsi_workloads.Workloads.find bench with
      | exception Not_found ->
          Format.eprintf "unknown benchmark %S (use --list)@." bench;
          2
      | spec ->
          let scale =
            match scale with
            | Some s -> s
            | None -> spec.Acsi_workloads.Workloads.default_scale
          in
          match
            match file with
            | Some path -> Acsi_lang.Parser.compile (read_file path)
            | None -> spec.Acsi_workloads.Workloads.build ~scale
          with
          | exception Acsi_bytecode.Verify.Error msg ->
              Format.eprintf "%s@." msg;
              1
          | program ->
          (* Typed verification before execution: on by default for the
             textual-language pipeline, opt-in for built-in benchmarks. *)
          let verify_on =
            match verify with Some b -> b | None -> Option.is_some file
          in
          if verify_on && not (verify_program program) then 1
          else
          (* With --jobs > 1 the baseline of --compare runs on a second
             domain concurrently with the measured run; both runs are
             deterministic, so the printed numbers do not depend on it. *)
          let result, baseline_result =
            if compare_baseline && jobs > 1 then
              match
                Parallel.map ~jobs
                  (fun policy ->
                    Runtime.run
                      (apply_speculate speculate
                         (apply_seed static_seed
                            (apply_tier tier (Config.default ~policy))))
                      program)
                  [ policy; Acsi_policy.Policy.Context_insensitive ]
              with
              | [ r; b ] -> (r, Some b)
              | _ -> assert false
            else
              ( Runtime.run
                  (apply_speculate speculate
                     (apply_seed static_seed
                        (apply_tier tier (Config.default ~policy))))
                  program,
                None )
          in
          (match file with
          | Some path -> Format.printf "%s:@.%a@." path Metrics.pp result.Runtime.metrics
          | None ->
              Format.printf "%s at scale %d:@.%a@." bench scale Metrics.pp
                result.Runtime.metrics);
          if show_compilations then begin
            Format.printf "@.Compilation log:@.";
            List.iter
              (fun (e : Acsi_aos.Db.compilation_event) ->
                let m =
                  Acsi_bytecode.Program.meth program e.Acsi_aos.Db.ce_method
                in
                Format.printf
                  "  %-22s v%d %4d units %5d bytes %7d cycles %2d inlines %d \
                   guards@."
                  m.Acsi_bytecode.Meth.name e.Acsi_aos.Db.ce_version
                  e.Acsi_aos.Db.ce_units e.Acsi_aos.Db.ce_bytes
                  e.Acsi_aos.Db.ce_cycles e.Acsi_aos.Db.ce_inlines
                  e.Acsi_aos.Db.ce_guards)
              (Acsi_aos.Db.compilations (Acsi_aos.System.db result.Runtime.sys))
          end;
          (match disasm with
          | Some pattern -> disassemble program result.Runtime.vm pattern
          | None -> ());
          (if compare_baseline then
             let base =
               match baseline_result with
               | Some base -> base
               | None ->
                   Runtime.run
                     (apply_speculate speculate
                        (apply_seed static_seed
                           (apply_tier tier
                              (Config.default
                                 ~policy:Acsi_policy.Policy.Context_insensitive))))
                     program
             in
             let bm = base.Runtime.metrics in
             let m = result.Runtime.metrics in
             Format.printf
               "@.vs context-insensitive baseline:@.  speedup %+.2f%%  code \
                size %+.2f%%  compile time %+.2f%%@."
               (Metrics.speedup_pct ~baseline:bm m)
               (Metrics.code_size_change_pct ~baseline:bm m)
               (Metrics.compile_time_change_pct ~baseline:bm m));
          0)

open Cmdliner

let bench_arg =
  Arg.(value & opt string "db" & info [ "b"; "bench" ] ~doc:"Benchmark name.")

let policy_arg =
  Arg.(
    value
    & opt string "fixed(max=3)"
    & info [ "p"; "policy" ]
        ~doc:
          "Context-sensitivity policy: cins, fixed, paramLess, class, large, \
           hybrid1, hybrid2, resolve; optionally with (max=N).")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "scale" ] ~doc:"Workload scale (default per benchmark).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List benchmarks and exit.")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:"Also run the context-insensitive baseline and print deltas.")

let compilations_arg =
  Arg.(
    value & flag
    & info [ "compilations" ] ~doc:"Print the optimizing-compilation log.")

let disasm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "disasm" ]
        ~doc:
          "After the run, disassemble the installed code of methods whose \
           name contains the given substring.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log adaptive-system events (compilations, rule rebuilds).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Domains to use; with --compare, 2+ runs the baseline \
           concurrently with the measured run.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ]
        ~doc:
          "Run a textual mini-language program (.acsi) instead of a named \
           benchmark.")

let verify_flag =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "verify" ]
              ~doc:
                "Run structural and typed verification over the whole \
                 program before executing (default for --file)." );
          ( Some false,
            info [ "no-verify" ] ~doc:"Skip pre-run typed verification." );
        ])

let tier_flag =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "native-tier" ]
              ~doc:
                "Execute optimized methods on the closure-compiled second \
                 tier (the default)." );
          ( Some false,
            info [ "no-native-tier" ]
              ~doc:
                "Interpreter tier only; metrics and output are identical, \
                 only host time changes." );
        ])

let static_seed_arg =
  Arg.(
    value & flag
    & info [ "static-seed" ]
        ~doc:
          "Enable the static pre-warm oracle: interprocedural summaries \
           computed at class-load time drive inlining at method install, \
           before any profile sample exists (provenance records these \
           under the static source).")

let speculate_arg =
  Arg.(
    value & flag
    & info [ "speculate" ]
        ~doc:
          "Enable guard-free speculative inlining: virtual sites \
           monomorphic over the loaded class universe whose receiver \
           pre-exists the activation are inlined with no guard; a class \
           load that breaks the recorded assumption (or a guard storm) \
           deoptimizes the method through its frame-state table. Implies \
           on-stack replacement in both directions.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let main list_only verbose bench file policy scale compare_baseline
    show_compilations disasm jobs verify tier static_seed speculate =
  setup_logs verbose;
  if list_only then list_benchmarks ()
  else
    run_one ~bench ~file ~policy_str:policy ~scale ~compare_baseline
      ~show_compilations ~disasm ~jobs ~verify ~tier ~static_seed ~speculate

(* --- trace / explain: the observability subcommands (lib/obs) --- *)

(* Load the program a subcommand should run: a textual mini-language
   file when given, a named built-in benchmark otherwise. Returns a
   human-readable label along with the program. *)
let load_program ~bench ~file ~scale =
  match file with
  | Some path -> (
      match Acsi_lang.Parser.compile (read_file path) with
      | exception Acsi_bytecode.Verify.Error msg ->
          Format.eprintf "%s@." msg;
          Error 1
      | program -> Ok (path, program))
  | None -> (
      match Acsi_workloads.Workloads.find bench with
      | exception Not_found ->
          Format.eprintf "unknown benchmark %S (use --list)@." bench;
          Error 2
      | spec ->
          let scale =
            match scale with
            | Some s -> s
            | None -> spec.Acsi_workloads.Workloads.default_scale
          in
          Ok
            ( Printf.sprintf "%s at scale %d" bench scale,
              spec.Acsi_workloads.Workloads.build ~scale ))

(* "Cls.name" display names for trace/explain output. *)
let qualified_name program mid =
  let m = Acsi_bytecode.Program.meth program mid in
  let c = Acsi_bytecode.Program.clazz program m.Acsi_bytecode.Meth.owner in
  c.Acsi_bytecode.Clazz.name ^ "." ^ m.Acsi_bytecode.Meth.name

let run_with_obs ~policy ~obs ~tier ~static_seed ~speculate program =
  let cfg =
    apply_speculate speculate
      (apply_seed static_seed (apply_tier tier (Config.default ~policy)))
  in
  Runtime.run
    { cfg with Config.aos = { cfg.Config.aos with Acsi_aos.System.obs } }
    program

let write_buffer path buf =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

(* `acsi-run trace`: run one workload with the structured tracer (and the
   CCT profiler) enabled, write a Perfetto-loadable Chrome trace-event
   file, and print the Figure-6-style per-component breakdown with its
   reconciliation check: with no ring drops, every AOS component's summed
   span durations must equal its Accounting total exactly. *)
let trace_one ~bench ~file ~policy_str ~scale ~out ~jsonl ~flame ~min_pct
    ~capacity ~probe_on_clock ~tier ~static_seed ~speculate =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some policy -> (
      match load_program ~bench ~file ~scale with
      | Error code -> code
      | Ok (label, program) ->
          let obs =
            {
              Acsi_obs.Control.trace = true;
              provenance = true;
              cprof = true;
              capacity;
              probe_on_clock;
            }
          in
          (* Reset the process-global tier-cache counters so the line
             below reports exactly this run's traffic (deterministic:
             one VM, no concurrent sweeps in this process). *)
          Metrics.reset_tier_cache_stats ();
          let result =
            run_with_obs ~policy ~obs ~tier ~static_seed ~speculate program
          in
          let sys = result.Runtime.sys in
          let m = result.Runtime.metrics in
          let tracer = Acsi_aos.System.tracer sys in
          let buf = Buffer.create 65536 in
          Acsi_obs.Export.to_chrome_json buf tracer;
          write_buffer out buf;
          (match jsonl with
          | None -> ()
          | Some path ->
              Buffer.clear buf;
              Acsi_obs.Export.to_jsonl buf tracer;
              write_buffer path buf);
          Format.printf "%s under %s:@." label
            (Acsi_policy.Policy.to_string policy);
          let totals = Acsi_obs.Export.track_totals tracer in
          Format.printf "@.%a@."
            (Acsi_obs.Export.pp_breakdown ~total:m.Metrics.total_cycles)
            totals;
          let inlined, refused =
            match Acsi_aos.System.provenance sys with
            | Some prov -> Acsi_obs.Provenance.outcome_counts prov
            | None -> (0, 0)
          in
          let dropped = Acsi_obs.Tracer.dropped tracer in
          Format.printf
            "@.%d events recorded (%d dropped), %d inline decisions (%d \
             inlined, %d refused)@."
            (Acsi_obs.Tracer.length tracer)
            dropped (inlined + refused) inlined refused;
          let cs = Metrics.tier_cache_stats () in
          Format.printf
            "tier cache: %d hits, %d misses, %d evictions (shared \
             baseline-compile MRU)@."
            cs.Metrics.hits cs.Metrics.misses cs.Metrics.evictions;
          (* On-stack transfer traffic; only under --speculate (or OSR)
             is there anything to say. *)
          if m.Metrics.osr_count > 0 then
            Format.printf
              "osr: %d up / %d down (deopt: %d guard-storm, %d \
               CHA-invalidated; %d speculative installs)@."
              m.Metrics.osr_up m.Metrics.osr_down m.Metrics.deopt_guard
              m.Metrics.deopt_invalidate
              (Acsi_aos.System.speculative_installs sys);
          (* The reconciliation contract (see Acsi_obs.Tracer): only
             checkable when the ring kept every event. *)
          let mismatches =
            List.filter_map
              (fun c ->
                let nm = Acsi_aos.Accounting.component_name c in
                let acct_v =
                  Acsi_aos.Accounting.get (Acsi_aos.System.accounting sys) c
                in
                let span_v =
                  match List.assoc_opt nm totals with Some v -> v | None -> 0
                in
                if acct_v <> span_v then Some (nm, acct_v, span_v) else None)
              Acsi_aos.Accounting.all_components
          in
          (if dropped > 0 then
             (* A wrapped ring silently undercounts spans, which could
                mask a genuine span-vs-Accounting divergence — so drops
                fail the check rather than skipping it. *)
             Format.printf
               "reconciliation: FAILED — %d events dropped, span totals \
                undercount (raise --capacity)@."
               dropped
           else if mismatches = [] then
             Format.printf
               "reconciliation: OK — every component's span total equals its \
                accounting total@."
           else
             List.iter
               (fun (nm, acct_v, span_v) ->
                 Format.printf
                   "reconciliation MISMATCH: %s accounting=%d spans=%d@." nm
                   acct_v span_v)
               mismatches);
          (if flame then
             match Acsi_aos.System.cprof sys with
             | Some cp ->
                 Format.printf "@.%a@."
                   (Acsi_obs.Cprof.pp_flame
                      ~name:(qualified_name program)
                      ~min_pct)
                   cp
             | None -> ());
          Format.printf "trace written to %s@." out;
          if mismatches <> [] || dropped > 0 then 1 else 0)

(* `acsi-run explain [METHOD[:PC]]`: run with the oracle's decision-
   provenance sink installed and print every recorded inline decision —
   optionally restricted to call sites in one method (matched by
   unqualified or "Cls.name" qualified name), or to one call-site pc. *)
let explain_one ~bench ~file ~policy_str ~scale ~query ~tier ~static_seed
    ~speculate =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some policy -> (
      match load_program ~bench ~file ~scale with
      | Error code -> code
      | Ok (label, program) -> (
          let obs =
            { Acsi_obs.Control.off with Acsi_obs.Control.provenance = true }
          in
          let result =
            run_with_obs ~policy ~obs ~tier ~static_seed ~speculate program
          in
          let sys = result.Runtime.sys in
          match Acsi_aos.System.provenance sys with
          | None ->
              Format.eprintf "internal error: provenance store missing@.";
              1
          | Some prov -> (
              let name = qualified_name program in
              let selected =
                match query with
                | None -> Ok (Acsi_obs.Provenance.all prov)
                | Some q -> (
                    let meth_str, pc =
                      match String.index_opt q ':' with
                      | None -> (q, Ok None)
                      | Some i ->
                          let pc_str =
                            String.sub q (i + 1) (String.length q - i - 1)
                          in
                          ( String.sub q 0 i,
                            match int_of_string_opt pc_str with
                            | Some pc when pc >= 0 -> Ok (Some pc)
                            | Some _ | None -> Error pc_str )
                    in
                    match pc with
                    | Error pc_str ->
                        Format.eprintf "invalid pc %S in query %S@." pc_str q;
                        Error 2
                    | Ok pc -> (
                        (* Method names carry an arity suffix ("get/1");
                           accept queries with or without it, qualified
                           by class or not. *)
                        let unmangled s =
                          match String.index_opt s '/' with
                          | Some i -> String.sub s 0 i
                          | None -> s
                        in
                        let callers =
                          Array.to_list
                            (Acsi_bytecode.Program.methods program)
                          |> List.filter_map
                               (fun (m : Acsi_bytecode.Meth.t) ->
                                 let mid = m.Acsi_bytecode.Meth.id in
                                 let forms =
                                   [
                                     m.Acsi_bytecode.Meth.name;
                                     unmangled m.Acsi_bytecode.Meth.name;
                                     name mid;
                                     unmangled (name mid);
                                   ]
                                 in
                                 if List.exists (String.equal meth_str) forms
                                 then Some mid
                                 else None)
                        in
                        match callers with
                        | [] ->
                            Format.eprintf
                              "no method named %S (try a \"Cls.name\" \
                               qualified name)@."
                              meth_str;
                            Error 2
                        | callers ->
                            Ok
                              (List.concat_map
                                 (fun caller ->
                                   Acsi_obs.Provenance.at prov ~caller
                                     ?callsite:pc ())
                                 callers)))
              in
              match selected with
              | Error code -> code
              | Ok decisions ->
                  let decisions =
                    List.sort
                      (fun (a : Acsi_obs.Provenance.decision) b ->
                        compare a.Acsi_obs.Provenance.d_seq
                          b.Acsi_obs.Provenance.d_seq)
                      decisions
                  in
                  let total = Acsi_obs.Provenance.count prov in
                  let inlined, refused =
                    Acsi_obs.Provenance.outcome_counts prov
                  in
                  Format.printf "%s under %s:@.@." label
                    (Acsi_policy.Policy.to_string policy);
                  if decisions = [] then
                    Format.printf "no recorded inline decisions match@."
                  else
                    List.iter
                      (fun d ->
                        Format.printf "%a@."
                          (Acsi_obs.Provenance.pp_decision ~name)
                          d)
                      decisions;
                  Format.printf
                    "@.%d decisions shown of %d recorded (%d inlined, %d \
                     refused)@."
                    (List.length decisions) total inlined refused;
                  (let sampled, static, speculative =
                     Acsi_obs.Provenance.source_counts prov
                   in
                   if static > 0 then
                     Format.printf
                       "%d decided by the static oracle (before any sample), \
                        %d sample-driven@."
                       static sampled;
                   if speculative > 0 then
                     Format.printf
                       "%d decided speculatively (guard-free, loaded-CHA + \
                        pre-existence)@."
                       speculative);
                  (* The orthogonal decision axis: what happened when each
                     installed optimized method was promoted to (or kept
                     off) the closure execution tier. Only shown for
                     whole-program queries — tier decisions are
                     per-method, not per-call-site. *)
                  (if query = None && Acsi_obs.Provenance.tier_count prov > 0
                   then begin
                     Format.printf "@.Execution-tier decisions:@.";
                     List.iter
                       (fun td ->
                         Format.printf "%a@."
                           (Acsi_obs.Provenance.pp_tier_decision ~name)
                           td)
                       (Acsi_obs.Provenance.tier_all prov);
                     let compiled, rejected, fell_back =
                       Acsi_obs.Provenance.tier_outcome_counts prov
                     in
                     Format.printf
                       "%d tier decisions (%d compiled, %d rejected, %d fell \
                        back)@."
                       (Acsi_obs.Provenance.tier_count prov)
                       compiled rejected fell_back
                   end);
                  0)))

(* `acsi-run lint [FILES]`: typed verification plus dead-code and
   unused-local lints over the given .acsi programs, or over every
   built-in workload when no file is given. *)
let lint_targets files =
  let findings = ref 0 and targets = ref 0 and notes = ref 0 in
  let lint_one label program =
    incr targets;
    let diags = Acsi_analysis.Lint.program program in
    List.iter
      (fun d ->
        incr findings;
        Format.printf "%s: %s@." label (Acsi_analysis.Diag.to_string d))
      diags;
    (* Summary-backed advisory notes: printed, never fatal — a
       monomorphic dispatch or a discarded pure result is legitimate
       code, just provably dead weight. *)
    List.iter
      (fun d ->
        incr notes;
        Format.printf "%s: note: %s@." label (Acsi_analysis.Diag.to_string d))
      (Acsi_analysis.Lint.program_notes program)
  in
  let ok = ref true in
  (match files with
  | [] ->
      List.iter
        (fun (s : Acsi_workloads.Workloads.spec) ->
          lint_one s.Acsi_workloads.Workloads.name
            (s.Acsi_workloads.Workloads.build
               ~scale:s.Acsi_workloads.Workloads.default_scale))
        Acsi_workloads.Workloads.all
  | files ->
      List.iter
        (fun path ->
          match Acsi_lang.Parser.compile (read_file path) with
          | exception Acsi_bytecode.Verify.Error msg ->
              ok := false;
              Format.printf "%s: %s@." path msg
          | program -> lint_one path program)
        files);
  if !findings = 0 && !ok then begin
    Format.printf "lint: %d target%s clean%s@." !targets
      (if !targets = 1 then "" else "s")
      (if !notes > 0 then Printf.sprintf " (%d advisory notes)" !notes
       else "");
    0
  end
  else 1

(* `acsi-run analyze [FILES]`: the compositional interprocedural summary
   pass ({!Acsi_analysis.Summary}) over the given .acsi programs, or
   over every built-in workload when no file is given. Pure static
   analysis — nothing executes; each table is a deterministic function
   of its program, so --jobs changes wall time only, never output. *)
let analyze_targets ~jobs files =
  let targets =
    match files with
    | [] ->
        List.map
          (fun (s : Acsi_workloads.Workloads.spec) ->
            ( s.Acsi_workloads.Workloads.name,
              fun () ->
                s.Acsi_workloads.Workloads.build
                  ~scale:s.Acsi_workloads.Workloads.default_scale ))
          Acsi_workloads.Workloads.all
    | files ->
        List.map
          (fun path ->
            (path, fun () -> Acsi_lang.Parser.compile (read_file path)))
          files
  in
  let render (label, build) =
    match build () with
    | exception Acsi_bytecode.Verify.Error msg ->
        Error (Printf.sprintf "%s: %s" label msg)
    | program ->
        let table = Acsi_analysis.Summary.analyze program in
        Ok
          (Format.asprintf "%s:@.%a" label
             (fun fmt () -> Acsi_analysis.Summary.print fmt program table)
             ())
  in
  (* Tables render to strings inside the pool; printing stays on the
     calling domain in input order, so the output is identical for
     every --jobs value. *)
  let rendered = Parallel.map ~jobs render targets in
  let ok = ref true in
  List.iteri
    (fun i r ->
      match r with
      | Ok text ->
          if i > 0 then Format.printf "@.";
          Format.printf "%s%!" text
      | Error msg ->
          ok := false;
          Format.eprintf "%s@." msg)
    rendered;
  if !ok then 0 else 1

(* `acsi-run serve`: server-mode execution — each benchmark's requests
   run as virtual threads over one shared VM/AOS instance, with
   background compilation, and the summary reports throughput and
   latency percentiles. Deterministic: identical invocations print
   identical summaries. *)
let serve_benches ~benches ~policy_str ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~sync_compile ~show_windows
    ~shards ~pool ~pool_policy_str ~barrier ~jobs ~static_seed =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some policy when shards > 0 -> (
      (* Sharded serving: N virtual processors with work stealing, a
         publish-once code cache and per-shard compiler pools.
         [--requests] is the total session count; arrivals are always
         open-loop ([--open], default period 2400). *)
      match Acsi_aos.System.queue_policy_of_string pool_policy_str with
      | None ->
          Format.eprintf "unknown pool policy %S (fifo|hot|deadline)@."
            pool_policy_str;
          2
      | Some pool_policy -> (
          let exception Unknown_bench of string in
          let names =
            List.filter
              (fun s -> String.length s > 0)
              (String.split_on_char ',' benches)
          in
          match
            List.map
              (fun name ->
                match Acsi_workloads.Workloads.find name with
                | spec -> spec
                | exception Not_found -> raise (Unknown_bench name))
              names
          with
          | exception Unknown_bench name ->
              Format.eprintf "unknown benchmark %S (use --list)@." name;
              2
          | specs ->
              let first = ref true in
              List.iter
                (fun (spec : Acsi_workloads.Workloads.spec) ->
                  let scale =
                    match scale with
                    | Some s -> s
                    | None -> spec.Acsi_workloads.Workloads.default_scale
                  in
                  let program = spec.Acsi_workloads.Workloads.build ~scale in
                  let period = Option.value open_period ~default:2400 in
                  let result =
                    Acsi_server.Shards.run ~quantum ~switch_cost ~seed ~jobs
                      ~barrier ~pool ~pool_policy ~shards ~sessions:requests
                      ~period ~name:spec.Acsi_workloads.Workloads.name
                      (apply_seed static_seed (Config.default ~policy))
                      program
                  in
                  if not !first then Format.printf "@.";
                  first := false;
                  Format.printf "%a@." Acsi_server.Shards.pp_summary
                    result.Acsi_server.Shards.summary;
                  if show_windows then
                    Format.printf "%a@." Acsi_server.Shards.pp_shards
                      result.Acsi_server.Shards.shard_stats)
                specs;
              0))
  | Some policy -> (
      let exception Unknown_bench of string in
      let names =
        List.filter
          (fun s -> String.length s > 0)
          (String.split_on_char ',' benches)
      in
      match
        List.map
          (fun name ->
            match Acsi_workloads.Workloads.find name with
            | spec -> spec
            | exception Not_found -> raise (Unknown_bench name))
          names
      with
      | exception Unknown_bench name ->
          Format.eprintf "unknown benchmark %S (use --list)@." name;
          2
      | specs ->
          let first = ref true in
          List.iter
            (fun (spec : Acsi_workloads.Workloads.spec) ->
              let scale =
                match scale with
                | Some s -> s
                | None -> spec.Acsi_workloads.Workloads.default_scale
              in
              let program = spec.Acsi_workloads.Workloads.build ~scale in
              let mode =
                match open_period with
                | Some period -> Acsi_server.Server.Open { period; requests }
                | None ->
                    Acsi_server.Server.Closed
                      { clients; requests_per_client = requests; think }
              in
              let result =
                Acsi_server.Server.run ~quantum ~switch_cost ~seed
                  ~async_compile:(not sync_compile) ~mode
                  ~name:spec.Acsi_workloads.Workloads.name
                  (apply_seed static_seed (Config.default ~policy))
                  program
              in
              if not !first then Format.printf "@.";
              first := false;
              Format.printf "%a@." Acsi_server.Server.pp_summary
                result.Acsi_server.Server.summary;
              if show_windows then
                Format.printf "%a@." Acsi_server.Server.pp_windows
                  result.Acsi_server.Server.windows)
            specs;
          0)

let serve_bench_arg =
  Arg.(
    value
    & opt string "db,jess,compress"
    & info [ "b"; "bench" ] ~doc:"Comma-separated benchmark names to serve.")

let requests_arg =
  Arg.(
    value & opt int 8
    & info [ "requests" ]
        ~doc:
          "Requests per client (closed loop) or total requests (open loop).")

let clients_arg =
  Arg.(
    value & opt int 4
    & info [ "clients" ] ~doc:"Concurrent clients (closed loop).")

let think_arg =
  Arg.(
    value & opt int 50_000
    & info [ "think" ]
        ~doc:"Client think time in cycles between requests (closed loop).")

let open_period_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "open" ] ~docv:"PERIOD"
        ~doc:
          "Use an open-loop arrival schedule with the given mean \
           inter-arrival period in cycles instead of the closed loop.")

let quantum_arg =
  Arg.(
    value & opt int 25_000
    & info [ "quantum" ] ~doc:"Scheduler quantum in cycles.")

let switch_cost_arg =
  Arg.(
    value & opt int 200
    & info [ "switch-cost" ] ~doc:"Context-switch cost in cycles.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Seed for the open-loop arrival schedule.")

let sync_compile_arg =
  Arg.(
    value & flag
    & info [ "sync-compile" ]
        ~doc:
          "Compile synchronously at the sample that requested it instead \
           of on the background compiler thread.")

let windows_arg =
  Arg.(
    value & flag
    & info [ "windows" ]
        ~doc:
          "Also print the per-window warmup curve (or, with --shards, the \
           per-shard breakdown).")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ]
        ~doc:
          "Serve across N sharded virtual processors (per-shard run \
           queues, deterministic work stealing, publish-once code cache). \
           0 (default) keeps the single-VM server. With shards, \
           --requests is the total session count and arrivals are always \
           open-loop.")

let pool_arg =
  Arg.(
    value & opt int 1
    & info [ "pool" ]
        ~doc:"Background compiler threads per shard (sharded mode).")

let pool_policy_arg =
  Arg.(
    value & opt string "fifo"
    & info [ "pool-policy" ]
        ~doc:"Compiler-pool queue policy: fifo, hot or deadline.")

let barrier_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "barrier" ]
        ~doc:
          "Virtual cycles between cross-shard barriers (DCG merge, code \
           publication, work stealing).")

let serve_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ]
        ~doc:
          "Host domains running shards in parallel within a round \
           (sharded mode); never affects results.")

let serve_main verbose benches policy scale requests clients think open_period
    quantum switch_cost seed sync_compile show_windows shards pool
    pool_policy_str barrier jobs static_seed =
  setup_logs verbose;
  serve_benches ~benches ~policy_str:policy ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~sync_compile ~show_windows
    ~shards ~pool ~pool_policy_str ~barrier ~jobs ~static_seed

let serve_cmd =
  let doc =
    "serve a deterministic request workload over one shared VM and \
     adaptive system, reporting throughput and latency percentiles"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_main $ verbose_arg $ serve_bench_arg $ policy_arg
      $ scale_arg $ requests_arg $ clients_arg $ think_arg $ open_period_arg
      $ quantum_arg $ switch_cost_arg $ seed_arg $ sync_compile_arg
      $ windows_arg $ shards_arg $ pool_arg $ pool_policy_arg $ barrier_arg
      $ serve_jobs_arg $ static_seed_arg)

(* `acsi-run metrics`: run one serve cell with fleet telemetry and print
   the virtual-clock time-series plus the latency / compile-wait /
   deopt-gap histograms as OpenMetrics (default) or JSONL text.
   Telemetry reads the virtual clock but never charges it, and sharded
   runs emit it only in the serial barrier section, so the export is
   byte-identical across --jobs and never perturbs the run it observes. *)
let metrics_one ~bench ~policy_str ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~shards ~pool ~pool_policy_str
    ~barrier ~jobs ~static_seed ~interval ~format ~flows_out =
  let module Export = Acsi_obs.Export in
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some _ when format <> "openmetrics" && format <> "jsonl" ->
      Format.eprintf "unknown format %S (openmetrics|jsonl)@." format;
      2
  | Some _ when flows_out <> None && shards <= 0 ->
      Format.eprintf "--flows needs --shards (flow arrows link shards)@.";
      2
  | Some policy -> (
      match Acsi_workloads.Workloads.find bench with
      | exception Not_found ->
          Format.eprintf "unknown benchmark %S (use --list)@." bench;
          2
      | spec -> (
          let scale =
            match scale with
            | Some s -> s
            | None -> spec.Acsi_workloads.Workloads.default_scale
          in
          let program = spec.Acsi_workloads.Workloads.build ~scale in
          let name = spec.Acsi_workloads.Workloads.name in
          let cfg = apply_seed static_seed (Config.default ~policy) in
          let buf = Buffer.create 4096 in
          if shards > 0 then
            match Acsi_aos.System.queue_policy_of_string pool_policy_str with
            | None ->
                Format.eprintf "unknown pool policy %S (fifo|hot|deadline)@."
                  pool_policy_str;
                2
            | Some pool_policy ->
                let period = Option.value open_period ~default:2400 in
                let result =
                  Acsi_server.Shards.run ~quantum ~switch_cost ~seed ~jobs
                    ~barrier ~pool ~pool_policy ~shards ~sessions:requests
                    ~period ~name cfg program
                in
                let tel = result.Acsi_server.Shards.telemetry in
                let {
                  Acsi_server.Shards.tel_series;
                  tel_latency_all;
                  tel_steal_distance;
                  tel_compile_wait;
                  tel_deopt_gap;
                  _
                } =
                  tel
                in
                let shard_labels i =
                  [ ("bench", name); ("shard", string_of_int i) ]
                in
                let labels = [ ("bench", name) ] in
                (match format with
                | "openmetrics" ->
                    Array.iteri
                      (fun i s ->
                        Export.series_openmetrics buf ~prefix:"acsi_"
                          ~labels:(shard_labels i) s)
                      tel_series;
                    Export.hist_openmetrics buf ~name:"acsi_session_latency"
                      ~labels tel_latency_all;
                    Export.hist_openmetrics buf ~name:"acsi_steal_distance"
                      ~labels tel_steal_distance;
                    Export.hist_openmetrics buf ~name:"acsi_compile_wait"
                      ~labels tel_compile_wait;
                    Export.hist_openmetrics buf ~name:"acsi_deopt_gap" ~labels
                      tel_deopt_gap;
                    Buffer.add_string buf "# EOF\n"
                | _ ->
                    Array.iteri
                      (fun i s ->
                        Export.series_jsonl buf ~name:"shard"
                          ~labels:(shard_labels i) s)
                      tel_series;
                    Export.hist_jsonl buf ~name:"session_latency" ~labels
                      tel_latency_all;
                    Export.hist_jsonl buf ~name:"steal_distance" ~labels
                      tel_steal_distance;
                    Export.hist_jsonl buf ~name:"compile_wait" ~labels
                      tel_compile_wait;
                    Export.hist_jsonl buf ~name:"deopt_gap" ~labels
                      tel_deopt_gap);
                (match flows_out with
                | None -> ()
                | Some path ->
                    let tracer = Acsi_server.Shards.telemetry_tracer tel in
                    let fbuf = Buffer.create 4096 in
                    Export.to_chrome_json fbuf tracer;
                    write_buffer path fbuf;
                    Format.eprintf "metrics: wrote flow trace to %s@." path);
                print_string (Buffer.contents buf);
                0
          else begin
            let mode =
              match open_period with
              | Some period -> Acsi_server.Server.Open { period; requests }
              | None ->
                  Acsi_server.Server.Closed
                    { clients; requests_per_client = requests; think }
            in
            let result =
              Acsi_server.Server.run ~quantum ~switch_cost ~seed
                ?telemetry_interval:interval ~mode ~name cfg program
            in
            let {
              Acsi_server.Server.tl_series;
              tl_latency;
              tl_compile_wait;
              tl_deopt_gap;
              _
            } =
              result.Acsi_server.Server.telemetry
            in
            let labels = [ ("bench", name) ] in
            (match format with
            | "openmetrics" ->
                Export.series_openmetrics buf ~prefix:"acsi_" ~labels
                  tl_series;
                Export.hist_openmetrics buf ~name:"acsi_request_latency"
                  ~labels tl_latency;
                Export.hist_openmetrics buf ~name:"acsi_compile_wait" ~labels
                  tl_compile_wait;
                Export.hist_openmetrics buf ~name:"acsi_deopt_gap" ~labels
                  tl_deopt_gap;
                Buffer.add_string buf "# EOF\n"
            | _ ->
                Export.series_jsonl buf ~name:"server" ~labels tl_series;
                Export.hist_jsonl buf ~name:"request_latency" ~labels
                  tl_latency;
                Export.hist_jsonl buf ~name:"compile_wait" ~labels
                  tl_compile_wait;
                Export.hist_jsonl buf ~name:"deopt_gap" ~labels tl_deopt_gap);
            print_string (Buffer.contents buf);
            0
          end))

let metrics_bench_arg =
  Arg.(
    value & opt string "session"
    & info [ "b"; "bench" ]
        ~doc:"Benchmark to serve while collecting telemetry.")

let metrics_shards_arg =
  Arg.(
    value & opt int 2
    & info [ "shards" ]
        ~doc:
          "Virtual processors for the sharded server; 0 collects \
           single-VM server telemetry instead.")

let metrics_interval_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "interval" ] ~docv:"CYCLES"
        ~doc:
          "Time-series sampling interval in virtual cycles (single-VM \
           mode; the sharded server always samples at round barriers).")

let metrics_format_arg =
  Arg.(
    value & opt string "openmetrics"
    & info [ "format" ] ~doc:"Output format: openmetrics or jsonl.")

let metrics_flows_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flows" ] ~docv:"FILE"
        ~doc:
          "Also write the cross-shard flow trace (steal/adopt/deopt \
           arrows between shard tracks) as Chrome trace-event JSON for \
           Perfetto (sharded mode).")

let metrics_main verbose bench policy scale requests clients think
    open_period quantum switch_cost seed shards pool pool_policy_str barrier
    jobs static_seed interval format flows_out =
  setup_logs verbose;
  metrics_one ~bench ~policy_str:policy ~scale ~requests ~clients ~think
    ~open_period ~quantum ~switch_cost ~seed ~shards ~pool ~pool_policy_str
    ~barrier ~jobs ~static_seed ~interval ~format ~flows_out

let metrics_cmd =
  let doc =
    "serve one benchmark with fleet telemetry and export the \
     virtual-clock time-series and latency histograms as OpenMetrics or \
     JSONL (deterministic: byte-identical across --jobs)"
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const metrics_main $ verbose_arg $ metrics_bench_arg $ policy_arg
      $ scale_arg $ requests_arg $ clients_arg $ think_arg $ open_period_arg
      $ quantum_arg $ switch_cost_arg $ seed_arg $ metrics_shards_arg
      $ pool_arg $ pool_policy_arg $ barrier_arg $ serve_jobs_arg
      $ static_seed_arg $ metrics_interval_arg $ metrics_format_arg
      $ metrics_flows_arg)

let lint_files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Mini-language programs (.acsi) to lint; every built-in workload \
           when omitted.")

let run_cmd_term =
  Term.(
    const main $ list_arg $ verbose_arg $ bench_arg $ file_arg $ policy_arg
    $ scale_arg $ compare_arg $ compilations_arg $ disasm_arg $ jobs_arg
    $ verify_flag $ tier_flag $ static_seed_arg $ speculate_arg)

let lint_cmd =
  let doc =
    "typed verification, dead-code and unused-local lints over programs"
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint_targets $ lint_files_arg)

let analyze_files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Mini-language programs (.acsi) to analyze; every built-in \
           workload when omitted.")

let analyze_main verbose jobs files =
  setup_logs verbose;
  analyze_targets ~jobs files

let analyze_cmd =
  let doc =
    "print the compositional interprocedural summary table (size after \
     inlining, effects, escapes, constness, always-throws, CHA \
     monomorphic-dispatch proofs) for programs, without executing them"
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze_main $ verbose_arg $ jobs_arg $ analyze_files_arg)

let trace_out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "out" ]
        ~doc:"Chrome trace-event output file (Perfetto-loadable).")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:"Also write the event stream as line-per-event JSON.")

let trace_flame_arg =
  Arg.(
    value & flag
    & info [ "flame" ]
        ~doc:
          "Also print the CCT-derived virtual-cycle profile as a text \
           flamegraph.")

let trace_min_pct_arg =
  Arg.(
    value & opt float 1.0
    & info [ "min-pct" ]
        ~doc:
          "Prune flamegraph subtrees below this percent of the profile \
           total.")

let trace_capacity_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "capacity" ]
        ~doc:
          "Tracer ring capacity in events; drops (oldest first) void the \
           reconciliation check.")

let trace_probe_arg =
  Arg.(
    value & flag
    & info [ "probe-on-clock" ]
        ~doc:
          "Charge the cost model's per-event probe cost to the virtual \
           clock, making the tracing overhead itself visible to the run.")

let trace_main verbose bench file policy scale out jsonl flame min_pct
    capacity probe_on_clock tier static_seed speculate =
  setup_logs verbose;
  trace_one ~bench ~file ~policy_str:policy ~scale ~out ~jsonl ~flame
    ~min_pct ~capacity ~probe_on_clock ~tier ~static_seed ~speculate

let trace_cmd =
  let doc =
    "run one workload with structured tracing on and export a \
     Perfetto-loadable trace plus the per-component overhead breakdown"
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_main $ verbose_arg $ bench_arg $ file_arg $ policy_arg
      $ scale_arg $ trace_out_arg $ trace_jsonl_arg $ trace_flame_arg
      $ trace_min_pct_arg $ trace_capacity_arg $ trace_probe_arg $ tier_flag
      $ static_seed_arg $ speculate_arg)

let explain_query_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"METHOD[:PC]"
        ~doc:
          "Restrict to decisions whose innermost context entry is a call \
           site in this method (unqualified or Cls.name), optionally at \
           exactly the given bytecode pc. All decisions when omitted.")

let explain_main verbose bench file policy scale query tier static_seed
    speculate =
  setup_logs verbose;
  explain_one ~bench ~file ~policy_str:policy ~scale ~query ~tier ~static_seed
    ~speculate

let explain_cmd =
  let doc =
    "run one workload with decision provenance on and print why the \
     oracle inlined (or refused) each context-sensitive candidate"
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const explain_main $ verbose_arg $ bench_arg $ file_arg $ policy_arg
      $ scale_arg $ explain_query_arg $ tier_flag $ static_seed_arg
      $ speculate_arg)

(* `acsi-run profile`: deterministic DCG persistence. --dump writes the
   run's final dynamic call graph in the textual {!Acsi_profile.Persist}
   format; --load seeds a run from a previously dumped profile,
   reproducing the offline profile-directed setups the paper contrasts
   itself with (§6). Profiles are program-specific (dense method ids),
   so dump and load must name the same benchmark and scale. *)
let profile_one ~bench ~file ~policy_str ~scale ~dump ~load ~tier
    ~static_seed ~speculate =
  match Acsi_policy.Policy.of_string policy_str with
  | None ->
      Format.eprintf "unknown policy %S@." policy_str;
      2
  | Some policy -> (
      match load_program ~bench ~file ~scale with
      | Error code -> code
      | Ok (label, program) -> (
          match
            match load with
            | None -> Ok None
            | Some path -> (
                try Ok (Some (Acsi_profile.Persist.load path)) with
                | Acsi_profile.Persist.Malformed msg ->
                    Error (Printf.sprintf "%s: malformed profile: %s" path msg)
                | Sys_error msg -> Error msg)
          with
          | Error msg ->
              Format.eprintf "%s@." msg;
              1
          | Ok profile ->
              let cfg =
                apply_speculate speculate
                  (apply_seed static_seed
                     (apply_tier tier (Config.default ~policy)))
              in
              let result = Runtime.run ?profile cfg program in
              Format.printf "%s under %s:@.%a@." label
                (Acsi_policy.Policy.to_string policy)
                Metrics.pp result.Runtime.metrics;
              (match load with
              | Some path -> Format.printf "profile seeded from %s@." path
              | None -> ());
              (match dump with
              | Some path ->
                  let dcg = Acsi_aos.System.dcg result.Runtime.sys in
                  Acsi_profile.Persist.save path dcg;
                  Format.printf "profile (%d traces) written to %s@."
                    (Acsi_profile.Dcg.size dcg) path
              | None -> ());
              0))

let profile_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~docv:"FILE"
        ~doc:"Write the run's final dynamic call graph to FILE.")

let profile_load_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:
          "Seed the dynamic call graph from FILE before the run (offline \
           profile-directed inlining).")

let profile_main verbose bench file policy scale dump load tier static_seed
    speculate =
  setup_logs verbose;
  profile_one ~bench ~file ~policy_str:policy ~scale ~dump ~load ~tier
    ~static_seed ~speculate

let profile_cmd =
  let doc =
    "run one workload and persist its dynamic call graph, or seed a run \
     from a dumped profile (deterministic text format)"
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const profile_main $ verbose_arg $ bench_arg $ file_arg $ policy_arg
      $ scale_arg $ profile_dump_arg $ profile_load_arg $ tier_flag
      $ static_seed_arg $ speculate_arg)

let cmd =
  let doc =
    "run an adaptive-context-sensitive-inlining experiment on one benchmark"
  in
  Cmd.group ~default:run_cmd_term (Cmd.info "acsi-run" ~doc)
    [
      analyze_cmd;
      lint_cmd;
      serve_cmd;
      metrics_cmd;
      trace_cmd;
      explain_cmd;
      profile_cmd;
    ]

let () = exit (Cmd.eval' cmd)
