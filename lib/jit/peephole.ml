open Acsi_bytecode

(* Block-boundary and reachability queries are shared with the static
   analysis library so the optimizer and the checkers that re-verify
   its output can never disagree about control flow. *)
let leaders = Acsi_analysis.Cfg.leaders

let fold_binop op a b =
  match (op : Instr.binop) with
  | Instr.Add -> Some (a + b)
  | Instr.Sub -> Some (a - b)
  | Instr.Mul -> Some (a * b)
  | Instr.Div -> if b = 0 then None else Some (a / b)
  | Instr.Rem -> if b = 0 then None else Some (a mod b)
  | Instr.And -> Some (a land b)
  | Instr.Or -> Some (a lor b)
  | Instr.Xor -> Some (a lxor b)
  | Instr.Shl -> Some (a lsl (b land 63))
  | Instr.Shr -> Some (a asr (b land 63))

let fold_cmp c a b =
  let r =
    match (c : Instr.cmp) with
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
  in
  if r then 1 else 0

(* One local-rewrite pass. Instructions are replaced by [Nop]s in place
   (position-preserving, so branch targets stay valid); compaction happens
   separately. Returns whether anything changed. *)
let rewrite_pass instrs =
  let n = Array.length instrs in
  let is_leader = leaders instrs in
  let changed = ref false in
  (* The previous one or two non-Nop instructions within the current basic
     block, as (pc, instr). *)
  let window : (int * Instr.t) list ref = ref [] in
  let kill pc =
    instrs.(pc) <- Instr.Nop;
    changed := true
  in
  let replace pc instr =
    instrs.(pc) <- instr;
    changed := true
  in
  for pc = 0 to n - 1 do
    if is_leader.(pc) then window := [];
    (match (instrs.(pc), !window) with
    | Instr.Nop, _ -> ()
    (* constant folding *)
    | Instr.Binop op, (p2, Instr.Const b) :: (p1, Instr.Const a) :: _ -> (
        match fold_binop op a b with
        | Some r ->
            kill p1;
            kill p2;
            replace pc (Instr.Const r)
        | None -> ())
    | Instr.Cmp c, (p2, Instr.Const b) :: (p1, Instr.Const a) :: _ ->
        kill p1;
        kill p2;
        replace pc (Instr.Const (fold_cmp c a b))
    | Instr.Neg, (p1, Instr.Const a) :: _ ->
        kill p1;
        replace pc (Instr.Const (-a))
    | Instr.Not, (p1, Instr.Const a) :: _ ->
        kill p1;
        replace pc (Instr.Const (if a = 0 then 1 else 0))
    (* algebraic push/pop cleanups *)
    | Instr.Pop, (p1, (Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Get_global _)) :: _ ->
        kill p1;
        kill pc
    | Instr.Pop, (p1, Instr.Dup) :: _ ->
        kill p1;
        kill pc
    | Instr.Swap, (p1, Instr.Swap) :: _ ->
        kill p1;
        kill pc
    (* branch simplification *)
    | Instr.Jump_if t, (p1, Instr.Not) :: _ ->
        kill p1;
        replace pc (Instr.Jump_ifnot t)
    | Instr.Jump_ifnot t, (p1, Instr.Not) :: _ ->
        kill p1;
        replace pc (Instr.Jump_if t)
    | Instr.Jump_if t, (p1, Instr.Const a) :: _ ->
        kill p1;
        replace pc (if a <> 0 then Instr.Jump t else Instr.Nop)
    | Instr.Jump_ifnot t, (p1, Instr.Const a) :: _ ->
        kill p1;
        replace pc (if a = 0 then Instr.Jump t else Instr.Nop)
    (* jump threading: a jump whose target is an unconditional jump *)
    | (Instr.Jump t | Instr.Jump_if t | Instr.Jump_ifnot t), _
      when t < n
           && (match instrs.(t) with
              | Instr.Jump t' -> t' <> t
              | _ -> false) -> (
        match instrs.(t) with
        | Instr.Jump t' ->
            replace pc (Instr.with_jump_targets instrs.(pc) ~f:(fun _ -> t'))
        | _ -> ())
    (* jump to the immediately following instruction *)
    | Instr.Jump t, _ when t = pc + 1 -> kill pc
    | ( ( Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
        | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
        | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
        | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
        | Instr.Put_field _ | Instr.Get_global _ | Instr.Put_global _
        | Instr.Array_new | Instr.Array_get | Instr.Array_set
        | Instr.Array_len | Instr.Call_static _ | Instr.Call_virtual _
        | Instr.Call_direct _ | Instr.Return | Instr.Return_void
        | Instr.Instance_of _ | Instr.Guard_method _ | Instr.Print_int ),
        _ ) ->
        ());
    (* Update the window with whatever now sits at pc, dropping entries a
       rewrite invalidated (their slot no longer holds that instruction). *)
    let survivors =
      List.filter (fun (p, i) -> instrs.(p) = i && i <> Instr.Nop) !window
    in
    match instrs.(pc) with
    | Instr.Nop -> window := survivors
    | instr ->
        window :=
          (pc, instr) :: (match survivors with a :: _ -> [ a ] | [] -> [])
  done;
  !changed

(* Reachability from pc 0 (guards and conditional jumps both continue and
   branch). *)
let reachable = Acsi_analysis.Cfg.reachable_instrs

(* Drop Nops and unreachable instructions, remapping branch targets. A
   branch target that itself dies remaps to the next surviving position. *)
let compact instrs srcs =
  let n = Array.length instrs in
  let live = reachable instrs in
  let keep = Array.init n (fun pc -> live.(pc) && instrs.(pc) <> Instr.Nop) in
  let new_pos = Array.make (n + 1) 0 in
  let count = ref 0 in
  for pc = 0 to n - 1 do
    new_pos.(pc) <- !count;
    if keep.(pc) then incr count
  done;
  new_pos.(n) <- !count;
  (* map a (possibly dead) target to the next surviving instruction *)
  let remap t =
    let rec next pc = if pc >= n || keep.(pc) then new_pos.(min pc n) else next (pc + 1) in
    next t
  in
  let out = Array.make !count Instr.Nop in
  let out_srcs =
    Array.make !count
      (match srcs with
      | [||] -> { Acsi_vm.Code.src_meth = Ids.Method_id.of_int 0; src_pc = -1; parents = [] }
      | _ -> srcs.(0))
  in
  for pc = 0 to n - 1 do
    if keep.(pc) then begin
      out.(new_pos.(pc)) <- Instr.with_jump_targets instrs.(pc) ~f:remap;
      out_srcs.(new_pos.(pc)) <- srcs.(pc)
    end
  done;
  (out, out_srcs)

let max_passes = 8

(* Alternate rewrite fixpoints with compaction: compaction itself exposes
   new windows (e.g. a jump becomes jump-to-next only after the dead code
   between them is dropped). *)
let optimize (instrs, srcs) =
  let rec round k instrs srcs =
    let instrs = Array.copy instrs in
    let srcs = Array.copy srcs in
    let rec go j = if j < max_passes && rewrite_pass instrs then go (j + 1) in
    go 0;
    let before = Array.length instrs in
    let instrs, srcs = compact instrs srcs in
    if k < max_passes && Array.length instrs < before then
      round (k + 1) instrs srcs
    else (instrs, srcs)
  in
  round 0 instrs srcs

let optimize_instrs instrs =
  let dummy =
    { Acsi_vm.Code.src_meth = Ids.Method_id.of_int 0; src_pc = -1; parents = [] }
  in
  fst (optimize (instrs, Array.make (Array.length instrs) dummy))
