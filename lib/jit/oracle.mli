(** The Inlining Oracle (paper §3.1).

    The optimizing compiler consults the oracle at every call site to learn
    which callees, if any, to inline there. The oracle combines:

    - static heuristics: size classes ({!Size}), inline depth and code
      expansion budgets, class-hierarchy analysis for static binding;
    - profile-directed rules: the hot traces exported by the adaptive
      inlining organizer, matched against the compilation context with
      partial matching (paper Eq. 3).

    Profile data extends the static heuristics exactly the three ways the
    paper lists: enabling guarded inlining at polymorphic virtual sites,
    admitting medium-sized methods, and letting small methods exceed the
    normal depth/expansion limits.

    Refusals of profile-recommended inlines are reported through a callback
    so the AOS database can stop the missing-edge organizer from
    re-recommending them. *)

open Acsi_bytecode
open Acsi_profile

type config = {
  exact_match_only : bool;
      (** ablation: disable Eq. 3 partial matching — a rule applies only
          when its recorded context equals the compilation context *)
  max_inline_depth : int;
  extended_inline_depth : int;
      (** allowed for profile-hot small callees (limits exceeded case) *)
  expansion_factor : int;
      (** expanded code may reach [factor * root_size + slack] units *)
  expansion_slack : int;
  extended_expansion_factor : int;
  max_guarded_targets : int;  (** guarded inlinees per virtual site *)
  peephole : bool;
      (** run classical peephole optimization on expanded code (see
          {!Peephole}); off = ablation *)
  speculate_unguarded : bool;
      (** inline loaded-CHA-monomorphic virtual sites with {e no} guard
          when the receiver provably pre-exists the activation; requires
          a {!speculation} evidence provider and an AOS prepared to
          deoptimize on invalidation. Off by default. *)
}

val default_config : config

type refusal_reason =
  | Too_large
  | Budget
  | Depth
  | Recursive
  | Context_conflict
      (** the callee is hot at this site under some contexts, but the
          applicable contexts disagree and the compilation context cannot
          discriminate (empty partial-match intersection) *)

val refusal_reason_to_string : refusal_reason -> string

val all_refusal_reasons : refusal_reason list
(** Every reason, in declaration order — the canonical order for
    per-reason breakdowns. *)

type target = {
  target : Ids.Method_id.t;
  guarded : bool;  (** true: protect with a method-test guard + fallback *)
  speculative : bool;
      (** unguarded by speculation, not CHA proof: the expander must
          record the (selector, target) assumption on the emitted code *)
}

type decision = No_inline | Inline of target list

type speculation = {
  spec_mono : Ids.Selector.t -> Ids.Method_id.t option;
      (** unique dispatch target of the selector over the {e loaded}
          class universe; [None] when absent or not unique *)
  spec_preexists : Meth.t -> int -> bool;
      (** [spec_preexists root pc]: the receiver of the virtual call at
          [root]'s [pc] provably pre-exists the activation (see
          {!Acsi_analysis.Preexist}) *)
}
(** Runtime evidence providers for guard-free speculation, supplied by
    the AOS — the oracle has no view of what is loaded. *)

type t

val create : ?config:config -> Program.t -> t

val config : t -> config
val set_rules : t -> Rules.t -> unit
val rules : t -> Rules.t

val set_on_refusal :
  t ->
  (site:Trace.entry array -> callee:Ids.Method_id.t -> refusal_reason -> unit) ->
  unit

val set_speculation : t -> speculation option -> unit
(** Install (or clear) the speculation evidence providers. Without one,
    [speculate_unguarded] never fires. *)

val set_on_decision : t -> (Acsi_obs.Provenance.info -> unit) -> unit
(** Install a decision-provenance sink: one record per callee the oracle
    considers (inlined or refused, with the Eq. 3 match evidence and
    budget state behind the verdict), plus records the refusal callback
    never sees — ["not-hot"] medium callees, ["guard-limit"] hot targets
    past [max_guarded_targets], and a callee-less ["no-match"] when a
    polymorphic site has rules but none survive partial matching.
    Building records is pure (reads the memoized rule index only) and
    skipped entirely when no sink is installed, so installing one never
    changes a decision. *)

val decide :
  t ->
  root:Meth.t ->
  site_chain:Trace.entry array ->
  chain_methods:Ids.Method_id.t list ->
  depth:int ->
  expanded_units:int ->
  call:Instr.t ->
  const_args:int ->
  decision
(** [site_chain] is the compilation context, innermost-first; entry 0 is
    the call site itself. [chain_methods] are the methods already in the
    current inline chain (recursion prevention); [depth] the current
    inline depth; [expanded_units] the units emitted so far for [root]. *)
