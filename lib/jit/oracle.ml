open Acsi_bytecode
open Acsi_profile

type config = {
  exact_match_only : bool;
  max_inline_depth : int;
  extended_inline_depth : int;
  expansion_factor : int;
  expansion_slack : int;
  extended_expansion_factor : int;
  max_guarded_targets : int;
  peephole : bool;
  speculate_unguarded : bool;
}

let default_config =
  {
    exact_match_only = false;
    max_inline_depth = 5;
    extended_inline_depth = 7;
    expansion_factor = 4;
    expansion_slack = 60;
    extended_expansion_factor = 6;
    max_guarded_targets = 2;
    peephole = true;
    speculate_unguarded = false;
  }

type refusal_reason =
  | Too_large
  | Budget
  | Depth
  | Recursive
  | Context_conflict

let refusal_reason_to_string = function
  | Too_large -> "too-large"
  | Budget -> "budget"
  | Depth -> "depth"
  | Recursive -> "recursive"
  | Context_conflict -> "context-conflict"

let all_refusal_reasons =
  [ Too_large; Budget; Depth; Recursive; Context_conflict ]

type target = {
  target : Ids.Method_id.t;
  guarded : bool;
  speculative : bool;
      (* unguarded on the strength of a loaded-CHA proof + pre-existing
         receiver; the expander records the assumption on the code *)
}

type decision = No_inline | Inline of target list

(* Evidence providers for guard-free speculation, supplied by the AOS
   (the oracle itself has no view of what is loaded at runtime):
   [spec_mono sel] is the unique dispatch target of [sel] over the
   *loaded* class universe (None when absent or not unique), and
   [spec_preexists root pc] whether the receiver of the virtual call at
   [root]'s [pc] provably pre-exists the activation. *)
type speculation = {
  spec_mono : Ids.Selector.t -> Ids.Method_id.t option;
  spec_preexists : Meth.t -> int -> bool;
}

type t = {
  program : Program.t;
  cfg : config;
  mutable rules : Rules.t;
  mutable on_refusal :
    site:Trace.entry array -> callee:Ids.Method_id.t -> refusal_reason -> unit;
  mutable on_decision : (Acsi_obs.Provenance.info -> unit) option;
  mutable speculation : speculation option;
}

let create ?(config = default_config) program =
  {
    program;
    cfg = config;
    rules = Rules.empty ();
    on_refusal = (fun ~site:_ ~callee:_ _ -> ());
    on_decision = None;
    speculation = None;
  }

let config t = t.cfg
let set_rules t rules = t.rules <- rules
let rules t = t.rules
let set_on_refusal t f = t.on_refusal <- f
let set_on_decision t f = t.on_decision <- Some f
let set_speculation t s = t.speculation <- s

(* Whether an inlined body of [est] units fits the expansion budget. *)
let budget_ok t ~extended ~root ~expanded_units ~est =
  let factor =
    if extended then t.cfg.extended_expansion_factor else t.cfg.expansion_factor
  in
  expanded_units + est
  <= (factor * Meth.size_units root) + t.cfg.expansion_slack

(* --- decision provenance --------------------------------------------- *)

(* Eq.-3 evidence for [mid] under [site_chain]: (max match depth, summed
   weight, deepest — ties heaviest — applicable rule). Pure reads of the
   memoized rule index; never runs unless a decision sink is installed. *)
let match_evidence t ~site_chain mid =
  Rules.applicable ~exact:t.cfg.exact_match_only t.rules ~site_chain
  |> List.filter (fun (r : Rules.rule) ->
         Ids.Method_id.equal r.Rules.trace.Trace.callee mid)
  |> List.fold_left
       (fun (depth, weight, best) (r : Rules.rule) ->
         let d =
           min
             (Array.length r.Rules.trace.Trace.chain)
             (Array.length site_chain)
         in
         let best =
           match best with
           | Some (bd, bw, _) when bd > d || (bd = d && bw >= r.Rules.weight)
             ->
               best
           | _ -> Some (d, r.Rules.weight, r.Rules.trace)
         in
         (max depth d, weight +. r.Rules.weight, best))
       (0, 0.0, None)

let emit_decision t ~root ~site_chain ~depth ~expanded_units ~const_args
    ~callee ~outcome ~speculative =
  match t.on_decision with
  | None -> ()
  | Some sink ->
      let base = Meth.size_units root in
      let est, (md, mw, best) =
        match callee with
        | Some mid ->
            ( Size.estimate (Program.meth t.program mid) ~const_args,
              match_evidence t ~site_chain mid )
        | None -> (0, (0, 0.0, None))
      in
      sink
        {
          Acsi_obs.Provenance.i_root = root.Meth.id;
          i_context = Array.copy site_chain;
          i_callee = callee;
          i_outcome = outcome;
          i_match_depth = md;
          i_match_weight = mw;
          i_matched_rule =
            (match best with Some (_, _, tr) -> Some tr | None -> None);
          i_inline_depth = depth;
          i_expanded_units = expanded_units;
          i_est = est;
          i_budget_limit =
            (t.cfg.expansion_factor * base) + t.cfg.expansion_slack;
          i_budget_ext_limit =
            (t.cfg.extended_expansion_factor * base) + t.cfg.expansion_slack;
          i_speculative = speculative;
        }

(* Verdict for one concrete callee. [hot] means the profile recommends this
   callee here; refusals of hot callees are reported. Returns the refusal
   reason (as its taxonomy string) so the decision sink can record it;
   ["not-hot"] marks the silent medium-size rejection the reporting
   callback never sees. *)
let consider t ~root ~site_chain ~chain_methods ~depth ~expanded_units ~hot
    ~const_args (callee : Meth.t) =
  let refuse reason =
    if hot then t.on_refusal ~site:site_chain ~callee:callee.Meth.id reason;
    Error (refusal_reason_to_string reason)
  in
  if List.exists (Ids.Method_id.equal callee.Meth.id) chain_methods then
    refuse Recursive
  else
    let est = Size.estimate callee ~const_args in
    match Size.classify ~units:est with
    | Size.Large -> refuse Too_large
    | Size.Tiny ->
        if depth >= t.cfg.extended_inline_depth then refuse Depth
        else if
          budget_ok t ~extended:true ~root ~expanded_units ~est
        then Ok callee.Meth.id
        else refuse Budget
    | Size.Small ->
        if
          depth < t.cfg.max_inline_depth
          && budget_ok t ~extended:false ~root ~expanded_units ~est
        then Ok callee.Meth.id
        else if
          (* profile data lets small methods exceed the normal limits *)
          hot
          && depth < t.cfg.extended_inline_depth
          && budget_ok t ~extended:true ~root ~expanded_units ~est
        then Ok callee.Meth.id
        else if depth >= t.cfg.max_inline_depth then refuse Depth
        else refuse Budget
    | Size.Medium ->
        if not hot then Error "not-hot"
        else if depth >= t.cfg.max_inline_depth then refuse Depth
        else if budget_ok t ~extended:false ~root ~expanded_units ~est then
          Ok callee.Meth.id
        else refuse Budget

let decide t ~root ~site_chain ~chain_methods ~depth ~expanded_units ~call
    ~const_args =
  let emit ?(speculative = false) ~callee ~outcome () =
    emit_decision t ~root ~site_chain ~depth ~expanded_units ~const_args
      ~callee ~outcome ~speculative
  in
  let candidates =
    lazy (Rules.candidates ~exact:t.cfg.exact_match_only t.rules ~site_chain)
  in
  (* Rule callees killed by the partial-match intersection at a site in
     the root method itself are recorded as refusals, so the missing-edge
     organizer stops recommending recompilations the oracle will keep
     rejecting. *)
  (if Array.length site_chain = 1 then
     let e0 = site_chain.(0) in
     Rules.rules_at t.rules ~caller:e0.Trace.caller ~callsite:e0.Trace.callsite
     |> List.iter (fun (r : Rules.rule) ->
            let callee = r.Rules.trace.Trace.callee in
            let surviving =
              List.exists
                (fun (c, _) -> Ids.Method_id.equal c callee)
                (Lazy.force candidates)
            in
            if not surviving then begin
              t.on_refusal ~site:site_chain ~callee Context_conflict;
              emit ~callee:(Some callee)
                ~outcome:
                  (Acsi_obs.Provenance.Refused
                     (refusal_reason_to_string Context_conflict))
                ()
            end));
  let is_hot mid =
    List.exists
      (fun (c, _) -> Ids.Method_id.equal c mid)
      (Lazy.force candidates)
  in
  let consider_one ?(speculative = false) ~guarded mid =
    let callee = Program.meth t.program mid in
    match
      consider t ~root ~site_chain ~chain_methods ~depth ~expanded_units
        ~hot:(is_hot mid) ~const_args callee
    with
    | Ok target ->
        emit ~speculative ~callee:(Some mid)
          ~outcome:(Acsi_obs.Provenance.Inlined { guarded })
          ();
        Some { target; guarded; speculative }
    | Error reason ->
        emit ~speculative ~callee:(Some mid)
          ~outcome:(Acsi_obs.Provenance.Refused reason)
          ();
        None
  in
  match (call : Instr.t) with
  | Instr.Call_static mid | Instr.Call_direct mid -> (
      match consider_one ~guarded:false mid with
      | Some target -> Inline [ target ]
      | None -> No_inline)
  | Instr.Call_virtual (sel, _argc) -> (
      match Program.monomorphic_target t.program sel with
      | Some mid -> (
          (* CHA statically binds the call: no guard needed (closed world,
             see DESIGN.md). *)
          match consider_one ~guarded:false mid with
          | Some target -> Inline [ target ]
          | None -> No_inline)
      | None ->
          (* Speculation first: a site CHA cannot bind over the sealed
             universe may still be monomorphic over the *loaded* one. If
             additionally the receiver pre-exists the activation, inline
             the unique loaded target with no guard at all — the AOS
             records the assumption and deoptimizes on invalidation.
             Root-level sites only: pre-existence facts are per root
             argument. *)
          let speculated =
            if not (t.cfg.speculate_unguarded && depth = 0) then None
            else
              match t.speculation with
              | None -> None
              | Some s -> (
                  match s.spec_mono sel with
                  | Some mid
                    when Array.length site_chain > 0
                         && s.spec_preexists root
                              site_chain.(0).Trace.callsite -> (
                      match
                        consider_one ~speculative:true ~guarded:false mid
                      with
                      | Some tgt -> Some (Inline [ tgt ])
                      | None -> None)
                  | _ -> None)
          in
          (match speculated with
          | Some d -> d
          | None ->
          (* Polymorphic: guarded inlining of the profile's dominant
             targets, most frequent first. *)
          let impls = Program.implementations t.program sel in
          let hot_targets =
            Lazy.force candidates
            |> List.filter (fun (mid, _) ->
                   List.exists (Ids.Method_id.equal mid) impls)
          in
          if Option.is_some t.on_decision then begin
            (* Targets past the guard limit are refused without being
               considered; a site whose rules all died in the
               partial-match intersection gets one callee-less record. *)
            List.filteri
              (fun i _ -> i >= t.cfg.max_guarded_targets)
              hot_targets
            |> List.iter (fun (mid, _) ->
                   emit ~callee:(Some mid)
                     ~outcome:(Acsi_obs.Provenance.Refused "guard-limit")
                     ());
            if
              hot_targets = []
              && Array.length site_chain > 0
              && Rules.rules_at t.rules
                   ~caller:site_chain.(0).Trace.caller
                   ~callsite:site_chain.(0).Trace.callsite
                 <> []
            then
              emit ~callee:None
                ~outcome:(Acsi_obs.Provenance.Refused "no-match")
                ()
          end;
          let chosen =
            List.filteri (fun i _ -> i < t.cfg.max_guarded_targets) hot_targets
            |> List.filter_map (fun (mid, _) ->
                   consider_one ~guarded:true mid)
          in
          (match chosen with [] -> No_inline | _ :: _ -> Inline chosen)))
  | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
  | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
  | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
  | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _ | Instr.Put_field _
  | Instr.Get_global _ | Instr.Put_global _ | Instr.Array_new
  | Instr.Array_get | Instr.Array_set | Instr.Array_len | Instr.Return
  | Instr.Return_void | Instr.Instance_of _ | Instr.Guard_method _
  | Instr.Print_int | Instr.Nop ->
      No_inline
