open Acsi_bytecode
open Acsi_vm

type stats = {
  expanded_units : int;
  inline_count : int;
  guard_count : int;
  compile_cycles : int;
  code_bytes : int;
  inlined_edges : (int * int * int) list;
}

type st = {
  program : Program.t;
  oracle : Oracle.t;
  root : Meth.t;
  buf : Code.src_entry Codebuf.t;
  mutable next_local : int;
  mutable inline_count : int;
  mutable guard_count : int;
  mutable inlined_edges : (int * int * int) list;
  mutable assumptions : (Ids.Selector.t * Ids.Method_id.t) list;
}

let dummy_src root =
  { Code.src_meth = root; src_pc = -1; parents = [] }

(* Emit the body of [m] into the buffer.
   [parents]: inline parents of this body's instructions, innermost-first.
   [chain_methods]: methods on the current inline chain (recursion check).
   [base]: local-slot offset of this body's frame.
   [ret]: where returns of this body go — [None] keeps them (root body),
   [Some l] rewires them to jump to [l]. *)
let rec emit_body st (m : Meth.t) ~parents ~chain_methods ~depth ~base ~ret =
  let body = m.Meth.body in
  let here = Array.map (fun _ -> Codebuf.new_label st.buf) body in
  let src pc = { Code.src_meth = m.Meth.id; src_pc = pc; parents } in
  let synth = { Code.src_meth = m.Meth.id; src_pc = -1; parents } in
  Array.iteri
    (fun pc instr ->
      Codebuf.bind_label st.buf here.(pc);
      match (instr : Instr.t) with
      | Instr.Load i -> Codebuf.emit st.buf (Instr.Load (base + i)) (src pc)
      | Instr.Store i -> Codebuf.emit st.buf (Instr.Store (base + i)) (src pc)
      | Instr.Jump t ->
          Codebuf.emit_branch st.buf (Instr.Jump 0) (src pc) here.(t)
      | Instr.Jump_if t ->
          Codebuf.emit_branch st.buf (Instr.Jump_if 0) (src pc) here.(t)
      | Instr.Jump_ifnot t ->
          Codebuf.emit_branch st.buf (Instr.Jump_ifnot 0) (src pc) here.(t)
      | Instr.Return -> (
          match ret with
          | None -> Codebuf.emit st.buf Instr.Return (src pc)
          | Some l -> Codebuf.emit_branch st.buf (Instr.Jump 0) (src pc) l)
      | Instr.Return_void -> (
          match ret with
          | None -> Codebuf.emit st.buf Instr.Return_void (src pc)
          | Some l -> Codebuf.emit_branch st.buf (Instr.Jump 0) (src pc) l)
      | Instr.Call_static _ | Instr.Call_direct _ | Instr.Call_virtual _ ->
          emit_call st m ~parents ~chain_methods ~depth ~pc ~instr ~src ~synth
      | Instr.Const _ | Instr.Const_null | Instr.Dup | Instr.Pop | Instr.Swap
      | Instr.Binop _ | Instr.Neg | Instr.Not | Instr.Cmp _ | Instr.New _
      | Instr.Get_field _ | Instr.Put_field _ | Instr.Get_global _
      | Instr.Put_global _ | Instr.Array_new | Instr.Array_get
      | Instr.Array_set | Instr.Array_len | Instr.Instance_of _
      | Instr.Guard_method _ | Instr.Print_int | Instr.Nop ->
          Codebuf.emit st.buf instr (src pc))
    body

(* Pop call arguments into a fresh frame for [callee] and splice its body,
   rewiring returns to [l_done]. *)
and emit_inline st (callee : Meth.t) ~caller_id ~pc ~parents ~chain_methods
    ~depth ~synth ~l_done =
  let callee_base = st.next_local in
  st.next_local <- st.next_local + callee.Meth.max_locals;
  let parents' = (caller_id, pc) :: parents in
  let synth' = { synth with Code.src_meth = callee.Meth.id; parents = parents' } in
  for k = Meth.param_slots callee - 1 downto 0 do
    Codebuf.emit st.buf (Instr.Store (callee_base + k)) synth'
  done;
  st.inline_count <- st.inline_count + 1;
  st.inlined_edges <-
    ((caller_id : Ids.Method_id.t :> int), pc, (callee.Meth.id :> int))
    :: st.inlined_edges;
  emit_body st callee ~parents:parents'
    ~chain_methods:(callee.Meth.id :: chain_methods)
    ~depth:(depth + 1) ~base:callee_base ~ret:(Some l_done)

and emit_call st (m : Meth.t) ~parents ~chain_methods ~depth ~pc ~instr ~src
    ~synth =
  let site_chain =
    Array.of_list
      ({ Acsi_profile.Trace.caller = m.Meth.id; callsite = pc }
      :: List.map
           (fun (caller, callsite) ->
             { Acsi_profile.Trace.caller; callsite })
           parents)
  in
  let const_args = Size.const_args_at m.Meth.body ~pc in
  let decision =
    Oracle.decide st.oracle ~root:st.root ~site_chain ~chain_methods ~depth
      ~expanded_units:(Codebuf.length st.buf) ~call:instr ~const_args
  in
  match decision with
  | Oracle.No_inline -> Codebuf.emit st.buf instr (src pc)
  | Oracle.Inline targets -> (
      let l_done = Codebuf.new_label st.buf in
      (match (instr : Instr.t) with
      | Instr.Call_static _ | Instr.Call_direct _ -> (
          match targets with
          | [ { Oracle.target; guarded = false; _ } ] ->
              emit_inline st
                (Program.meth st.program target)
                ~caller_id:m.Meth.id ~pc ~parents ~chain_methods ~depth ~synth
                ~l_done
          | [] | [ { Oracle.guarded = true; _ } ] | _ :: _ :: _ ->
              invalid_arg "Expand: bad oracle decision for a bound call")
      | Instr.Call_virtual (sel, argc) -> (
          match targets with
          | [ { Oracle.target; guarded = false; speculative } ] ->
              (* CHA-monomorphic over the sealed universe — statically
                 bound, no guard; or speculative: monomorphic only over
                 the loaded universe, still no guard, but the assumption
                 is recorded on the code so the AOS can invalidate it
                 when a class load breaks it. *)
              if speculative then begin
                let a = (sel, target) in
                if not (List.mem a st.assumptions) then
                  st.assumptions <- a :: st.assumptions
              end;
              emit_inline st
                (Program.meth st.program target)
                ~caller_id:m.Meth.id ~pc ~parents ~chain_methods ~depth ~synth
                ~l_done
          | _ :: _ ->
              List.iter
                (fun { Oracle.target; guarded; _ } ->
                  if not guarded then
                    invalid_arg
                      "Expand: unguarded target among guarded ones";
                  let l_next = Codebuf.new_label st.buf in
                  st.guard_count <- st.guard_count + 1;
                  Codebuf.emit_branch st.buf
                    (Instr.Guard_method
                       { Instr.expected = target; sel; argc; fail = 0 })
                    (src pc) l_next;
                  emit_inline st
                    (Program.meth st.program target)
                    ~caller_id:m.Meth.id ~pc ~parents ~chain_methods ~depth
                    ~synth ~l_done;
                  Codebuf.bind_label st.buf l_next)
                targets;
              (* Fallback: the original virtual dispatch. *)
              Codebuf.emit st.buf (Instr.Call_virtual (sel, argc)) (src pc)
          | [] -> invalid_arg "Expand: empty inline decision")
      | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
      | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
      | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
      | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
      | Instr.Put_field _ | Instr.Get_global _ | Instr.Put_global _
      | Instr.Array_new | Instr.Array_get | Instr.Array_set
      | Instr.Array_len | Instr.Return | Instr.Return_void
      | Instr.Instance_of _ | Instr.Guard_method _ | Instr.Print_int
      | Instr.Nop ->
          invalid_arg "Expand: inline decision for a non-call");
      Codebuf.bind_label st.buf l_done)

let compile program cost oracle ~root =
  let st =
    {
      program;
      oracle;
      root;
      buf = Codebuf.create ~dummy:(dummy_src root.Meth.id);
      next_local = root.Meth.max_locals;
      inline_count = 0;
      guard_count = 0;
      inlined_edges = [];
      assumptions = [];
    }
  in
  emit_body st root ~parents:[] ~chain_methods:[ root.Meth.id ] ~depth:0
    ~base:0 ~ret:None;
  let instrs, srcs = Codebuf.finish st.buf in
  let instrs, srcs =
    if (Oracle.config oracle).Oracle.peephole then
      Peephole.optimize (instrs, srcs)
    else (instrs, srcs)
  in
  let units = Array.length instrs in
  let code =
    {
      Code.meth = root.Meth.id;
      tier = Code.Optimized;
      instrs;
      max_locals = st.next_local;
      max_stack = 0;
      src = Some srcs;
      code_bytes = units * cost.Cost.opt_bytes_per_unit;
      assumptions = List.rev st.assumptions;
    }
  in
  (* Re-verify the optimized body; this computes max_stack and checks the
     transformation (inlining and peephole) kept every bytecode
     invariant. The AOS re-checks the full set of JIT invariants (typed
     verification, guard domination, OSR compatibility) before
     installing, via Acsi_analysis.Jit_check over this same wrapper. *)
  let wrapper = Acsi_analysis.Jit_check.wrapper_of program code in
  Verify.meth program wrapper;
  let code = { code with Code.max_stack = wrapper.Meth.max_stack } in
  let stats =
    {
      expanded_units = units;
      inline_count = st.inline_count;
      guard_count = st.guard_count;
      compile_cycles =
        cost.Cost.opt_compile_fixed + (units * cost.Cost.opt_compile_unit);
      code_bytes = code.Code.code_bytes;
      inlined_edges = st.inlined_edges;
    }
  in
  (code, stats)
