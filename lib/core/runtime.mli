(** Couples a program, the VM and the adaptive optimization system into a
    single run. *)

type result = {
  metrics : Metrics.t;
  vm : Acsi_vm.Interp.t;
  sys : Acsi_aos.System.t;
}

val run :
  ?profile:Acsi_profile.Dcg.t ->
  ?calibrate:bool ->
  Config.t ->
  Acsi_bytecode.Program.t ->
  result
(** Execute the program to completion under the adaptive system.
    [profile] seeds the dynamic call graph with a previously collected
    profile (offline profile-directed inlining). [calibrate] (default
    [false]) samples host time around every execution window, bucketed
    by tier; read the totals back with
    {!Acsi_vm.Interp.calibration}. Calibration only observes — virtual
    cycles and outputs are unchanged — but the sampling itself costs
    host time, so it is off outside the bench's [--trace] mode. *)

val run_no_aos : Config.t -> Acsi_bytecode.Program.t -> Acsi_vm.Interp.t
(** Execute purely at baseline, no adaptive system (for semantics
    comparisons in tests). *)
