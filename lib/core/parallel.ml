(* A small fork-join pool over OCaml 5 domains. Work items are claimed
   from a shared atomic counter; results land in a slot array indexed by
   the item's position, so the output order is the input order no matter
   which domain ran what. Exceptions are captured per item and re-raised
   in the caller, earliest item first. *)

let available_cores () = Domain.recommended_domain_count ()

let map ~jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some (match f items.(i) with v -> Ok v | exception e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end
