(** Metrics extracted from a completed run: everything the paper's
    evaluation reports, plus enough detail to debug a policy. *)

open Acsi_aos

type t = {
  policy : string;
  (* time *)
  total_cycles : int;  (** wall clock: application + all AOS components *)
  app_cycles : int;
  aos_cycles : int;
  component_cycles : (Accounting.component * int) list;
  (* code space *)
  opt_code_bytes : int;
      (** cumulative optimized machine code generated (Figure 5 metric) *)
  installed_opt_bytes : int;
  baseline_code_bytes : int;
  (* compilation *)
  opt_compile_cycles : int;
  opt_compilations : int;
  opt_methods : int;
  baseline_methods : int;
  (* profiling *)
  method_samples : int;
  trace_samples : int;
  dcg_size : int;
  rule_count : int;
  refusals : int;
  refusals_by_reason : (string * int) list;
      (** {!refusals} broken down by {!Acsi_jit.Oracle.refusal_reason}
          taxonomy string, in canonical reason order, zero counts
          included; sums to [refusals] *)
  (* execution detail *)
  instructions : int;
  calls : int;
  guard_hits : int;
  guard_misses : int;
  inline_total : int;
  guard_sites : int;
  output_checksum : int;
  (* program shape (Table 1) *)
  classes_loaded : int;
  methods_compiled : int;
  bytecodes_compiled : int;
  (* scheduler / server counters *)
  osr_count : int;  (** [osr_up + osr_down]: all on-stack transfers *)
  osr_up : int;
      (** interpreter/baseline frames transferred {e into} optimized
          code: root-level {!Acsi_vm.Interp.osr} plus generalized
          multi-frame {!Acsi_vm.Interp.osr_into} transfers *)
  osr_down : int;
      (** optimized frames deoptimized back to baseline
          ({!Acsi_vm.Interp.deopt_top_frame}); broken down by reason in
          {!deopt_guard} / {!deopt_invalidate} *)
  deopt_guard : int;  (** deopts after repeated inline-guard failure *)
  deopt_invalidate : int;
      (** deopts after a class load broke a speculation assumption *)
  async_installs : int;  (** background-model code installations *)
  max_compile_queue_depth : int;
      (** high-water mark of the AOS compile queue *)
  overlapped_aos_cycles : int;
      (** AOS cycles charged to the component accounting but not to the
          shared clock: background-compile work overlapped with mutator
          execution. The accounting identity is
          [app_cycles = total_cycles - (aos_cycles -
          overlapped_aos_cycles)]; in the stalling model it is 0 and
          [total = app + aos] holds exactly. *)
}

val of_run : Acsi_vm.Interp.t -> System.t -> t

(** {2 Snapshots}

    Counters on a shared VM + AOS instance advance monotonically across
    all the virtual threads and requests multiplexed onto it. To report
    per-request or per-window numbers without double-counting, take a
    {!snapshot} at each boundary and report {!diff}s. *)

type snapshot = {
  s_cycles : int;
  s_aos_cycles : int;
  s_instructions : int;
  s_calls : int;
  s_guard_hits : int;
  s_guard_misses : int;
  s_osr : int;
  s_osr_down : int;
  s_method_samples : int;
  s_trace_samples : int;
  s_opt_compilations : int;
      (** optimizing compilations started (background jobs count from
          job start, not install) *)
  s_async_installs : int;
  s_output_len : int;
}

val snapshot : Acsi_vm.Interp.t -> System.t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Fieldwise [after - before]: the activity within the window. *)

val speedup_pct : baseline:t -> t -> float
(** Wall-clock speedup of [t] over [baseline] as the paper plots it:
    positive = faster, in percent. *)

val code_size_change_pct : baseline:t -> t -> float
(** Percent change in optimized code bytes (negative = smaller). *)

val compile_time_change_pct : baseline:t -> t -> float

val component_pct : t -> Accounting.component -> float
(** Percent of total execution time spent in one AOS component
    (Figure 6). *)

val checksum : int list -> int
(** Order-sensitive checksum of a VM output stream. *)

(** {2 Tier cache statistics}

    Traffic counters of the process-global MRU baseline-compile cache
    ({!Acsi_vm.Tier}). Deliberately *not* part of {!t}: the counters are
    shared across every VM in the process and their hit/miss split
    depends on domain interleaving under parallel sweeps, so folding
    them into per-run metrics would break the determinism contract.
    Single-run tools ([acsi-run trace]) report them directly. *)

type cache_stats = Acsi_vm.Tier.cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
}

val tier_cache_stats : unit -> cache_stats
val reset_tier_cache_stats : unit -> unit

val pp : Format.formatter -> t -> unit
