(** Text rendering of the paper's tables and figures from sweep data. *)

open Acsi_policy

val table1 : Format.formatter -> Experiment.sweep -> unit
(** Benchmark characteristics: classes loaded, methods and bytecodes
    dynamically compiled (paper Table 1). *)

val figure4 : Format.formatter -> Experiment.sweep -> unit
(** Wall-clock speedup over context-insensitive inlining, six policy
    panels x max 2..5 (paper Figure 4). *)

val figure5 : Format.formatter -> Experiment.sweep -> unit
(** Optimized code size change (paper Figure 5). *)

val figure6 : Format.formatter -> Experiment.sweep -> unit
(** Percent of execution time per AOS component, averaged over
    benchmarks, for cins and each policy x depth (paper Figure 6). *)

val refusal_breakdown : Format.formatter -> Experiment.sweep -> unit
(** Recorded inline refusals by taxonomy reason (rows) per policy column,
    summed over the sweep's benchmarks — why the oracle said no. *)

val summary : Format.formatter -> Experiment.sweep -> unit
(** The abstract's headline numbers, paper vs measured. *)

val panel_policies : (string * (int -> Policy.t)) list
(** The six figure panels in paper order: (panel title, constructor). *)
