open Acsi_policy

type bench = { name : string; program : Acsi_bytecode.Program.t }

type point = { bench : string; policy : Policy.t; metrics : Metrics.t }

type timing = {
  t_bench : string;
  t_policy : string;  (* "cins" for the baseline cells *)
  t_wall_s : float;
  t_cycles : int;
}

type sweep = {
  bench_names : string list;
  baselines : (string * Metrics.t) list;
  points : point list;
  timings : timing list;
  wall_total_s : float;
}

(* One cell per (benchmark, policy) pair, baselines included; all cells
   are independent (a run shares no mutable state with any other), so
   they fan out across domains. Results are collected by cell index, so
   [baselines] and [points] come back in exactly the order the serial
   driver produced them. *)
type cell = Base of bench | Cell of bench * Policy.t

let run_sweep ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(cell_hook = fun ~bench:_ ~policy:_ _ -> ()) cfg ~benches ~policies =
  let cells =
    List.map (fun b -> Base b) benches
    @ List.concat_map
        (fun policy -> List.map (fun b -> Cell (b, policy)) benches)
        policies
  in
  let progress_mutex = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let run_cell cell =
    let b, policy, label =
      match cell with
      | Base b -> (b, Policy.Context_insensitive, "cins")
      | Cell (b, policy) -> (b, policy, Policy.to_string policy)
    in
    Mutex.lock progress_mutex;
    progress (Printf.sprintf "%s under %s" b.name label);
    Mutex.unlock progress_mutex;
    let cfg = Config.with_policy cfg policy in
    let c0 = Unix.gettimeofday () in
    let result = Runtime.run cfg b.program in
    let wall = Unix.gettimeofday () -. c0 in
    cell_hook ~bench:b.name ~policy result;
    let metrics = result.Runtime.metrics in
    ( metrics,
      {
        t_bench = b.name;
        t_policy = label;
        t_wall_s = wall;
        t_cycles = metrics.Metrics.total_cycles;
      } )
  in
  let results = Parallel.map ~jobs run_cell cells in
  let baselines, points =
    List.fold_left2
      (fun (baselines, points) cell (metrics, _) ->
        match cell with
        | Base b -> ((b.name, metrics) :: baselines, points)
        | Cell (b, policy) ->
            (baselines, { bench = b.name; policy; metrics } :: points))
      ([], []) cells results
  in
  {
    bench_names = List.map (fun b -> b.name) benches;
    baselines = List.rev baselines;
    points = List.rev points;
    timings = List.map snd results;
    wall_total_s = Unix.gettimeofday () -. t0;
  }

let find sweep ~bench ~policy =
  List.find_opt
    (fun p -> String.equal p.bench bench && p.policy = policy)
    sweep.points
  |> Option.map (fun p -> p.metrics)

let baseline sweep ~bench = List.assoc bench sweep.baselines

let with_point sweep ~bench ~policy ~f =
  match find sweep ~bench ~policy with
  | None -> 0.0
  | Some m -> f ~baseline:(baseline sweep ~bench) m

let speedup_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.speedup_pct

let code_size_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.code_size_change_pct

let compile_time_pct sweep ~bench ~policy =
  with_point sweep ~bench ~policy ~f:Metrics.compile_time_change_pct

(* The paper's harMean bars aggregate ratios, not percentages: convert each
   percent change to a ratio, take the harmonic mean, convert back. *)
let harmonic_mean_pct value benches =
  match benches with
  | [] -> 0.0
  | _ :: _ ->
      let ratios =
        List.map (fun b -> 1.0 +. (value b /. 100.0)) benches
      in
      let n = float_of_int (List.length ratios) in
      let denom = List.fold_left (fun acc r -> acc +. (1.0 /. r)) 0.0 ratios in
      100.0 *. ((n /. denom) -. 1.0)

type summary = {
  mean_speedup_pct : float;
  min_speedup_pct : float;
  max_speedup_pct : float;
  mean_code_pct : float;
  best_code_reduction_pct : float;
  mean_compile_pct : float;
  best_compile_reduction_pct : float;
}

let summarize sweep =
  let speedups =
    List.map
      (fun p -> speedup_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let codes =
    List.map
      (fun p -> code_size_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let compiles =
    List.map
      (fun p -> compile_time_pct sweep ~bench:p.bench ~policy:p.policy)
      sweep.points
  in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ :: _ ->
        let ratios = List.map (fun x -> 1.0 +. (x /. 100.0)) xs in
        let n = float_of_int (List.length ratios) in
        100.0
        *. ((n /. List.fold_left (fun a r -> a +. (1.0 /. r)) 0.0 ratios) -. 1.0)
  in
  let min_l = List.fold_left Float.min infinity in
  let max_l = List.fold_left Float.max neg_infinity in
  {
    mean_speedup_pct = mean speedups;
    min_speedup_pct = min_l speedups;
    max_speedup_pct = max_l speedups;
    mean_code_pct = mean codes;
    best_code_reduction_pct = min_l codes;
    mean_compile_pct = mean compiles;
    best_compile_reduction_pct = min_l compiles;
  }
