open Acsi_policy

let panel_policies =
  [
    ("Non-Adaptive Context Sensitivity", fun n -> Policy.Fixed n);
    ("Parameterless Methods", fun n -> Policy.Parameterless n);
    ("Class Methods", fun n -> Policy.Class_methods n);
    ("Large Methods", fun n -> Policy.Large_methods n);
    ("Hybrid 1 - Parameterless Class Methods", fun n -> Policy.Hybrid_param_class n);
    ("Hybrid 2 - Parameterless Large Methods", fun n -> Policy.Hybrid_param_large n);
  ]

let maxes = [ 2; 3; 4; 5 ]

let table1 fmt (sweep : Experiment.sweep) =
  Format.fprintf fmt
    "@[<v>Table 1: benchmark characteristics (this reproduction's synthetic \
     workloads)@,%-14s %8s %8s %10s@,"
    "Benchmark" "Classes" "Methods" "Bytecodes";
  List.iter
    (fun bench ->
      let m = Experiment.baseline sweep ~bench in
      Format.fprintf fmt "%-14s %8d %8d %10d@," bench m.Metrics.classes_loaded
        m.Metrics.methods_compiled m.Metrics.bytecodes_compiled)
    sweep.Experiment.bench_names;
  Format.fprintf fmt "@]"

let render_panel fmt sweep ~title ~make ~value ~unit_label =
  Format.fprintf fmt "@[<v>%s (%s vs cins)@,%-14s" title unit_label "Benchmark";
  List.iter (fun n -> Format.fprintf fmt " %8s" (Printf.sprintf "max=%d" n)) maxes;
  Format.fprintf fmt "@,";
  List.iter
    (fun bench ->
      Format.fprintf fmt "%-14s" bench;
      List.iter
        (fun n ->
          Format.fprintf fmt " %8.2f" (value sweep ~bench ~policy:(make n)))
        maxes;
      Format.fprintf fmt "@,")
    sweep.Experiment.bench_names;
  Format.fprintf fmt "%-14s" "harMean";
  List.iter
    (fun n ->
      let hm =
        Experiment.harmonic_mean_pct
          (fun bench -> value sweep ~bench ~policy:(make n))
          sweep.Experiment.bench_names
      in
      Format.fprintf fmt " %8.2f" hm)
    maxes;
  Format.fprintf fmt "@,@,@]"

let figure4 fmt sweep =
  Format.fprintf fmt
    "@[<v>Figure 4: wall-clock speedup over context-insensitive inlining \
     (%%; positive = faster)@,@,@]";
  List.iteri
    (fun i (title, make) ->
      render_panel fmt sweep
        ~title:(Printf.sprintf "(%c) %s" (Char.chr (Char.code 'a' + i)) title)
        ~make ~value:Experiment.speedup_pct ~unit_label:"speedup %")
    panel_policies

let figure5 fmt sweep =
  Format.fprintf fmt
    "@[<v>Figure 5: optimized code size change (%%; negative = smaller)@,@,@]";
  List.iteri
    (fun i (title, make) ->
      render_panel fmt sweep
        ~title:(Printf.sprintf "(%c) %s" (Char.chr (Char.code 'a' + i)) title)
        ~make ~value:Experiment.code_size_pct ~unit_label:"code size %")
    panel_policies

let mean_component_pct sweep ~policy c =
  let benches = sweep.Experiment.bench_names in
  let values =
    List.filter_map
      (fun bench ->
        match policy with
        | None ->
            Some (Metrics.component_pct (Experiment.baseline sweep ~bench) c)
        | Some policy ->
            Option.map
              (fun m -> Metrics.component_pct m c)
              (Experiment.find sweep ~bench ~policy))
      benches
  in
  match values with
  | [] -> 0.0
  | _ :: _ ->
      List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let figure6 fmt sweep =
  let open Acsi_aos in
  let columns =
    (None, "cins", 0)
    :: List.concat_map
         (fun (_, make) ->
           List.map
             (fun n ->
               let p = make n in
               (Some p, Policy.name p, n))
             maxes)
         panel_policies
  in
  Format.fprintf fmt
    "@[<v>Figure 6: %% of execution time in each AOS component (mean over \
     benchmarks)@,%-24s" "Component";
  List.iter
    (fun (_, name, n) ->
      Format.fprintf fmt " %12s"
        (if n = 0 then name else Printf.sprintf "%s/%d" name n))
    columns;
  Format.fprintf fmt "@,";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-24s" (Accounting.component_name c);
      List.iter
        (fun (policy, _, _) ->
          Format.fprintf fmt " %12.4f" (mean_component_pct sweep ~policy c))
        columns;
      Format.fprintf fmt "@,")
    Accounting.all_components;
  Format.fprintf fmt "@]"

(* Why the oracle said no: recorded inline refusals summed over the
   sweep's benchmarks, one column per policy (plus the cins baseline),
   one row per refusal-taxonomy reason. *)
let refusal_breakdown fmt (sweep : Experiment.sweep) =
  let columns =
    (None, "cins", 0)
    :: List.concat_map
         (fun (_, make) ->
           List.map (fun n -> (Some (make n), Policy.name (make n), n)) maxes)
         panel_policies
  in
  let reasons =
    match sweep.Experiment.baselines with
    | (_, m) :: _ -> List.map fst m.Metrics.refusals_by_reason
    | [] -> []
  in
  let count policy reason =
    List.fold_left
      (fun acc bench ->
        let m =
          match policy with
          | None -> Some (Experiment.baseline sweep ~bench)
          | Some policy -> Experiment.find sweep ~bench ~policy
        in
        match m with
        | Some m ->
            acc + (try List.assoc reason m.Metrics.refusals_by_reason
                   with Not_found -> 0)
        | None -> acc)
      0 sweep.Experiment.bench_names
  in
  Format.fprintf fmt
    "@[<v>Inline refusals by reason (sum over benchmarks)@,%-24s" "Reason";
  List.iter
    (fun (_, name, n) ->
      Format.fprintf fmt " %12s"
        (if n = 0 then name else Printf.sprintf "%s/%d" name n))
    columns;
  Format.fprintf fmt "@,";
  List.iter
    (fun reason ->
      Format.fprintf fmt "%-24s" reason;
      List.iter
        (fun (policy, _, _) ->
          Format.fprintf fmt " %12d" (count policy reason))
        columns;
      Format.fprintf fmt "@,")
    reasons;
  Format.fprintf fmt "@]"

let summary fmt sweep =
  let s = Experiment.summarize sweep in
  Format.fprintf fmt
    "@[<v>Headline summary (paper: abstract / section 5)@,\
     %-44s %10s %10s@,\
     %-44s %10s %10.2f@,\
     %-44s %10s %10.2f@,\
     %-44s %10s %10.2f@,\
     %-44s %10s %10.2f@,\
     %-44s %10s %10.2f@,\
     %-44s %10s %10.2f@,@]"
    "Metric" "paper" "measured"
    "mean speedup, % (paper: within +/-1)" "+/-1" s.Experiment.mean_speedup_pct
    "per-benchmark speedup min, %" "-4.2" s.Experiment.min_speedup_pct
    "per-benchmark speedup max, %" "5.3" s.Experiment.max_speedup_pct
    "mean code-space change, % (paper: ~-10)" "-10" s.Experiment.mean_code_pct
    "best code-space reduction, %" "-56.7" s.Experiment.best_code_reduction_pct
    "best compile-time reduction, %" "-33.0" s.Experiment.best_compile_reduction_pct
