open Acsi_aos
module Interp = Acsi_vm.Interp

type t = {
  policy : string;
  total_cycles : int;
  app_cycles : int;
  aos_cycles : int;
  component_cycles : (Accounting.component * int) list;
  opt_code_bytes : int;
  installed_opt_bytes : int;
  baseline_code_bytes : int;
  opt_compile_cycles : int;
  opt_compilations : int;
  opt_methods : int;
  baseline_methods : int;
  method_samples : int;
  trace_samples : int;
  dcg_size : int;
  rule_count : int;
  refusals : int;
  refusals_by_reason : (string * int) list;
  instructions : int;
  calls : int;
  guard_hits : int;
  guard_misses : int;
  inline_total : int;
  guard_sites : int;
  output_checksum : int;
  classes_loaded : int;
  methods_compiled : int;
  bytecodes_compiled : int;
  osr_count : int;
  osr_up : int;
  osr_down : int;
  deopt_guard : int;
  deopt_invalidate : int;
  async_installs : int;
  max_compile_queue_depth : int;
  overlapped_aos_cycles : int;
}

let checksum output =
  List.fold_left (fun acc v -> (acc * 31) + v + 17) 0 output land max_int

let of_run vm sys =
  let program = Interp.program vm in
  let acct = System.accounting sys in
  let registry = System.registry sys in
  let inline_total = ref 0 in
  let guard_sites = ref 0 in
  Registry.iter registry ~f:(fun _ e ->
      inline_total := !inline_total + e.Registry.stats.Acsi_jit.Expand.inline_count;
      guard_sites := !guard_sites + e.Registry.stats.Acsi_jit.Expand.guard_count);
  let total = Interp.cycles vm in
  let aos_cycles = Accounting.total acct in
  (* Async-compile accounting: background compile cycles are charged to
     the component accounting but never reach the shared clock — they
     overlap mutator execution. Subtracting the raw accounting total
     from the clock would deduct work the clock never saw and
     under-report application time, so the overlapped share is added
     back: [app = total - (aos - overlapped)]. In the stalling model
     [overlapped = 0] and this reduces to [total - aos]. *)
  let overlapped_aos_cycles = System.overlapped_aos_cycles sys in
  (* Table 1 reports dynamically compiled code: methods actually executed. *)
  let methods_compiled = System.baseline_compiled_methods sys in
  let bytecodes_compiled =
    Array.fold_left
      (fun acc (m : Acsi_bytecode.Meth.t) ->
        if Interp.was_executed vm m.Acsi_bytecode.Meth.id then
          acc + Acsi_bytecode.Meth.size_units m
        else acc)
      0
      (Acsi_bytecode.Program.methods program)
  in
  {
    policy = Acsi_policy.Policy.to_string (System.config sys).System.policy;
    total_cycles = total;
    app_cycles = total - (aos_cycles - overlapped_aos_cycles);
    aos_cycles;
    component_cycles =
      List.map (fun c -> (c, Accounting.get acct c)) Accounting.all_components;
    opt_code_bytes = Registry.cumulative_bytes registry;
    installed_opt_bytes = Registry.installed_bytes registry;
    baseline_code_bytes = System.baseline_code_bytes sys;
    opt_compile_cycles = Registry.cumulative_compile_cycles registry;
    opt_compilations = Registry.opt_compilation_count registry;
    opt_methods = Registry.opt_method_count registry;
    baseline_methods = System.baseline_compiled_methods sys;
    method_samples = System.method_samples_taken sys;
    trace_samples = System.trace_samples_taken sys;
    dcg_size = Acsi_profile.Dcg.size (System.dcg sys);
    rule_count = Acsi_profile.Rules.rule_count (System.rules sys);
    refusals = Db.refusal_count (System.db sys);
    refusals_by_reason =
      List.map
        (fun (r, n) -> (Acsi_jit.Oracle.refusal_reason_to_string r, n))
        (Db.refusal_reasons (System.db sys));
    instructions = Interp.instructions_executed vm;
    calls = Interp.calls_executed vm;
    guard_hits = Interp.guard_hits vm;
    guard_misses = Interp.guard_misses vm;
    inline_total = !inline_total;
    guard_sites = !guard_sites;
    output_checksum = checksum (Interp.output vm);
    classes_loaded = Acsi_bytecode.Program.class_count program;
    methods_compiled;
    bytecodes_compiled;
    osr_count = Interp.osr_count vm;
    osr_up = Interp.osr_up vm;
    osr_down = Interp.osr_down vm;
    deopt_guard = Interp.deopt_guard_count vm;
    deopt_invalidate = Interp.deopt_invalidate_count vm;
    async_installs = System.async_installs sys;
    max_compile_queue_depth = System.max_compile_queue_depth sys;
    overlapped_aos_cycles;
  }

(* Snapshot/diff over the counters that keep advancing monotonically on a
   shared VM + AOS instance. Server mode runs many requests against one
   instance; attributing work to a request (or a warmup window) by reading
   absolute counters would double-count everything that came before, so
   consumers snapshot at window boundaries and report the diffs. *)
type snapshot = {
  s_cycles : int;
  s_aos_cycles : int;
  s_instructions : int;
  s_calls : int;
  s_guard_hits : int;
  s_guard_misses : int;
  s_osr : int;
  s_osr_down : int;
  s_method_samples : int;
  s_trace_samples : int;
  s_opt_compilations : int;
  s_async_installs : int;
  s_output_len : int;
}

let snapshot vm sys =
  {
    s_cycles = Interp.cycles vm;
    s_aos_cycles = Accounting.total (System.accounting sys);
    s_instructions = Interp.instructions_executed vm;
    s_calls = Interp.calls_executed vm;
    s_guard_hits = Interp.guard_hits vm;
    s_guard_misses = Interp.guard_misses vm;
    s_osr = Interp.osr_count vm;
    s_osr_down = Interp.osr_down vm;
    s_method_samples = System.method_samples_taken sys;
    s_trace_samples = System.trace_samples_taken sys;
    s_opt_compilations =
      Registry.opt_compilation_count (System.registry sys)
      + System.in_flight_compiles sys;
    s_async_installs = System.async_installs sys;
    s_output_len = List.length (Interp.output vm);
  }

let diff ~before ~after =
  {
    s_cycles = after.s_cycles - before.s_cycles;
    s_aos_cycles = after.s_aos_cycles - before.s_aos_cycles;
    s_instructions = after.s_instructions - before.s_instructions;
    s_calls = after.s_calls - before.s_calls;
    s_guard_hits = after.s_guard_hits - before.s_guard_hits;
    s_guard_misses = after.s_guard_misses - before.s_guard_misses;
    s_osr = after.s_osr - before.s_osr;
    s_osr_down = after.s_osr_down - before.s_osr_down;
    s_method_samples = after.s_method_samples - before.s_method_samples;
    s_trace_samples = after.s_trace_samples - before.s_trace_samples;
    s_opt_compilations =
      after.s_opt_compilations - before.s_opt_compilations;
    s_async_installs = after.s_async_installs - before.s_async_installs;
    s_output_len = after.s_output_len - before.s_output_len;
  }

let pct_change ~from_v to_v =
  if from_v = 0 then 0.0
  else 100.0 *. (float_of_int to_v -. float_of_int from_v) /. float_of_int from_v

let speedup_pct ~baseline t =
  if t.total_cycles = 0 then 0.0
  else
    100.0
    *. ((float_of_int baseline.total_cycles /. float_of_int t.total_cycles)
       -. 1.0)

let code_size_change_pct ~baseline t =
  pct_change ~from_v:baseline.opt_code_bytes t.opt_code_bytes

let compile_time_change_pct ~baseline t =
  pct_change ~from_v:baseline.opt_compile_cycles t.opt_compile_cycles

let component_pct t c =
  if t.total_cycles = 0 then 0.0
  else
    100.0
    *. float_of_int (List.assoc c t.component_cycles)
    /. float_of_int t.total_cycles

let pp fmt t =
  let f = Format.fprintf in
  f fmt "@[<v>policy               %s@," t.policy;
  f fmt "total cycles         %d@," t.total_cycles;
  f fmt "  application        %d@," t.app_cycles;
  f fmt "  AOS overhead       %d (%.3f%%)@," t.aos_cycles
    (100.0 *. float_of_int t.aos_cycles /. float_of_int (max 1 t.total_cycles));
  List.iter
    (fun (c, cyc) ->
      f fmt "    %-22s %d@," (Accounting.component_name c) cyc)
    t.component_cycles;
  f fmt "opt code bytes       %d (installed %d)@," t.opt_code_bytes
    t.installed_opt_bytes;
  f fmt "baseline code bytes  %d@," t.baseline_code_bytes;
  f fmt "opt compile cycles   %d over %d compilations of %d methods@,"
    t.opt_compile_cycles t.opt_compilations t.opt_methods;
  f fmt "samples              %d method / %d trace@," t.method_samples
    t.trace_samples;
  f fmt "profile              %d traces, %d rules, %d refusals@," t.dcg_size
    t.rule_count t.refusals;
  List.iter
    (fun (reason, n) -> if n > 0 then f fmt "  refused %-12s %d@," reason n)
    t.refusals_by_reason;
  if t.overlapped_aos_cycles > 0 then
    f fmt "overlapped AOS       %d cycles (background compiles)@,"
      t.overlapped_aos_cycles;
  f fmt "execution            %d instrs, %d calls@," t.instructions t.calls;
  f fmt "guards               %d hits / %d misses (%d sites, %d inlines)@,"
    t.guard_hits t.guard_misses t.guard_sites t.inline_total;
  (* Deopt traffic only exists under speculation / generalized OSR;
     keep the line out of baseline reports so goldens stay stable. *)
  if t.osr_down > 0 || t.deopt_guard > 0 || t.deopt_invalidate > 0 then
    f fmt "deopt                %d up / %d down (%d guard-storm, %d invalidated)@,"
      t.osr_up t.osr_down t.deopt_guard t.deopt_invalidate;
  f fmt "output checksum      %d@]" t.output_checksum

type cache_stats = Acsi_vm.Tier.cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
}

let tier_cache_stats () = Acsi_vm.Tier.cache_stats ()
let reset_tier_cache_stats () = Acsi_vm.Tier.reset_cache_stats ()
