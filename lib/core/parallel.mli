(** Deterministic fork-join parallelism for the bench drivers.

    [map ~jobs f items] applies [f] to every item on a pool of [jobs]
    domains (the calling domain included) and returns the results in the
    input order, regardless of scheduling. [jobs <= 1] degrades to a
    plain sequential [List.map], so a serial run takes the exact code
    path of the pre-parallel driver.

    [f] must be safe to run concurrently with itself on different items;
    the simulator qualifies ({!Runtime.run} shares nothing mutable across
    runs). If one or more applications raise, the exception of the
    earliest item is re-raised after the pool drains. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
