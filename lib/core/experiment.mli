(** Policy sweeps over benchmark suites: the machinery behind every table
    and figure of the paper's evaluation (see DESIGN.md's per-experiment
    index). *)

open Acsi_policy

type bench = { name : string; program : Acsi_bytecode.Program.t }

type point = { bench : string; policy : Policy.t; metrics : Metrics.t }

type timing = {
  t_bench : string;
  t_policy : string;  (** ["cins"] for the baseline cells *)
  t_wall_s : float;  (** host wall-clock of this cell's run *)
  t_cycles : int;  (** the run's virtual cycles (deterministic) *)
}

type sweep = {
  bench_names : string list;
  baselines : (string * Metrics.t) list;
      (** context-insensitive metrics per benchmark *)
  points : point list;
  timings : timing list;
      (** one per cell, in cell order: every baseline, then every
          (policy, benchmark) point *)
  wall_total_s : float;
}

val run_sweep :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?cell_hook:(bench:string -> policy:Policy.t -> Runtime.result -> unit) ->
  Config.t ->
  benches:bench list ->
  policies:Policy.t list ->
  sweep
(** Runs every benchmark once under [Context_insensitive] (the baseline)
    and once per policy; the same configuration is used throughout.

    [jobs] (default 1) fans the independent (benchmark, policy) cells
    across that many domains ({!Parallel.map}); results are collected by
    cell index, so the sweep — all metrics, orderings, virtual cycles —
    is identical for every [jobs] value. Only wall-clock ([timings],
    [wall_total_s]) and the interleaving of [progress] callbacks (called
    under a mutex, from worker domains) vary.

    [cell_hook] is invoked once per cell, from the worker domain that ran
    it, with the cell's full {!Runtime.result} (baseline cells pass
    [Policy.Context_insensitive]). Since runs are deterministic, a driver
    can retain these results and skip re-running identical
    (benchmark, policy) cells later; the hook must be thread-safe when
    [jobs > 1]. *)

val find : sweep -> bench:string -> policy:Policy.t -> Metrics.t option
val baseline : sweep -> bench:string -> Metrics.t

val speedup_pct : sweep -> bench:string -> policy:Policy.t -> float
val code_size_pct : sweep -> bench:string -> policy:Policy.t -> float
val compile_time_pct : sweep -> bench:string -> policy:Policy.t -> float

val harmonic_mean_pct : (string -> float) -> string list -> float
(** Harmonic mean of per-benchmark percent changes, computed on the
    underlying ratios as the paper's harMean bars are. *)

type summary = {
  mean_speedup_pct : float;  (** harmonic mean over benches and policies *)
  min_speedup_pct : float;
  max_speedup_pct : float;
  mean_code_pct : float;
  best_code_reduction_pct : float;
  mean_compile_pct : float;
  best_compile_reduction_pct : float;
}

val summarize : sweep -> summary
(** Aggregates over every policy point (the abstract's headline numbers). *)
