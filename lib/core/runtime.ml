module Interp = Acsi_vm.Interp

type result = {
  metrics : Metrics.t;
  vm : Interp.t;
  sys : Acsi_aos.System.t;
}

let run ?profile ?(calibrate = false) (cfg : Config.t) program =
  let vm =
    Interp.create ~cost:cfg.Config.cost ~sample_period:cfg.Config.sample_period
      ~invoke_stride:cfg.Config.invoke_stride program
  in
  Interp.set_calibrate vm calibrate;
  let sys = Acsi_aos.System.create ?profile cfg.Config.aos vm in
  Interp.run ~cycle_limit:cfg.Config.cycle_limit vm;
  { metrics = Metrics.of_run vm sys; vm; sys }

let run_no_aos (cfg : Config.t) program =
  let vm =
    Interp.create ~cost:cfg.Config.cost ~sample_period:cfg.Config.sample_period
      ~invoke_stride:cfg.Config.invoke_stride program
  in
  Interp.run ~cycle_limit:cfg.Config.cycle_limit vm;
  vm
