open Acsi_bytecode

type entry = { caller : Ids.Method_id.t; callsite : int }

type t = {
  callee : Ids.Method_id.t;
  chain : entry array;
  h : int;  (* structural hash, cached: traces are hashed far more often
               than they are built (every DCG probe rehashes the key) *)
}

let compute_hash callee chain =
  let h = ref (Ids.Method_id.hash callee) in
  Array.iter
    (fun e ->
      h := (!h * 31) + Ids.Method_id.hash e.caller;
      h := (!h * 31) + e.callsite)
    chain;
  !h land max_int

let of_chain ~callee ~chain =
  if Array.length chain = 0 then invalid_arg "Trace.of_chain: empty chain";
  { callee; chain; h = compute_hash callee chain }

let make ~callee ~chain =
  if chain = [] then invalid_arg "Trace.make: empty chain";
  let chain = Array.of_list chain in
  { callee; chain; h = compute_hash callee chain }

let depth t = Array.length t.chain

let edge t =
  let chain = [| t.chain.(0) |] in
  { t with chain; h = compute_hash t.callee chain }

let entry_equal a b =
  Ids.Method_id.equal a.caller b.caller && a.callsite = b.callsite

let equal a b =
  Ids.Method_id.equal a.callee b.callee
  && Array.length a.chain = Array.length b.chain
  &&
  let rec go i =
    i >= Array.length a.chain
    || (entry_equal a.chain.(i) b.chain.(i) && go (i + 1))
  in
  go 0

let hash t = t.h

let compare a b =
  let c = Ids.Method_id.compare a.callee b.callee in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a.chain) (Array.length b.chain) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length a.chain then 0
        else
          let ea = a.chain.(i) and eb = b.chain.(i) in
          let c = Ids.Method_id.compare ea.caller eb.caller in
          if c <> 0 then c
          else
            let c = Int.compare ea.callsite eb.callsite in
            if c <> 0 then c else go (i + 1)
      in
      go 0

let context_matches ~rule_chain ~site_chain =
  let n = min (Array.length rule_chain) (Array.length site_chain) in
  let rec go i =
    i >= n || (entry_equal rule_chain.(i) site_chain.(i) && go (i + 1))
  in
  go 0

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  for i = Array.length t.chain - 1 downto 0 do
    let e = t.chain.(i) in
    Format.fprintf fmt "%a@%d => " Ids.Method_id.pp e.caller e.callsite
  done;
  Format.fprintf fmt "%a@]" Ids.Method_id.pp t.callee

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
