(** Context-sensitive call traces (paper Eq. 2).

    A trace records that [callee] was observed running, reached through the
    chain of call sites [chain], stored innermost-first: [chain.(0)] is the
    immediate caller and its call-site pc, [chain.(1)] that caller's caller,
    and so on. A chain of length 1 is a plain context-insensitive call edge
    (paper Eq. 1). *)

open Acsi_bytecode

type entry = { caller : Ids.Method_id.t; callsite : int }

type t = private {
  callee : Ids.Method_id.t;
  chain : entry array;  (** innermost-first; length >= 1 *)
  h : int;
      (** cached structural hash; private construction keeps it
          consistent with [callee]/[chain] *)
}

val make : callee:Ids.Method_id.t -> chain:entry list -> t
(** Raises [Invalid_argument] on an empty chain. *)

val of_chain : callee:Ids.Method_id.t -> chain:entry array -> t
(** Like {!make} from an already-built chain array (not copied; treat it
    as owned by the trace). Raises [Invalid_argument] on an empty chain. *)

val depth : t -> int
(** Number of call edges in the trace (the paper's context-sensitivity
    level): [depth] of a plain edge is 1. *)

val edge : t -> t
(** The context-insensitive edge underlying this trace (chain truncated to
    its innermost entry). *)

val entry_equal : entry -> entry -> bool
val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int

val context_matches : rule_chain:entry array -> site_chain:entry array -> bool
(** Paper Eq. 3: the chains agree on their first [min] entries
    (innermost-first). Used by the oracle to decide whether a recorded
    trace is applicable to a compilation context. *)

val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
