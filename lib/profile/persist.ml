open Acsi_bytecode

exception Malformed of string

let header = "acsi-profile 1"

let to_string dcg =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  (* Sort for stable output. *)
  let entries = ref [] in
  Dcg.iter dcg ~f:(fun trace w -> entries := (trace, w) :: !entries);
  let entries = List.sort (fun (a, _) (b, _) -> Trace.compare a b) !entries in
  List.iter
    (fun (trace, w) ->
      Buffer.add_string buf
        (Printf.sprintf "trace %d %.6f" (trace.Trace.callee :> int) w);
      Array.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf " %d:%d" (e.Trace.caller :> int) e.Trace.callsite))
        trace.Trace.chain;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let parse_entry word =
  match String.split_on_char ':' word with
  | [ caller; callsite ] -> (
      match (int_of_string_opt caller, int_of_string_opt callsite) with
      | Some c, Some s when c >= 0 && s >= 0 ->
          { Trace.caller = Ids.Method_id.of_int c; callsite = s }
      | _ -> raise (Malformed ("bad chain entry: " ^ word)))
  | _ -> raise (Malformed ("bad chain entry: " ^ word))

let of_string s =
  let dcg = Dcg.create () in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when String.equal (String.trim first) header -> ()
  | _ -> raise (Malformed "missing header"));
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if lineno > 0 && String.length line > 0 then
        match String.split_on_char ' ' line with
        | "trace" :: callee :: weight :: (_ :: _ as chain) -> (
            match (int_of_string_opt callee, float_of_string_opt weight) with
            | Some callee, Some weight when callee >= 0 && weight >= 0.0 ->
                let trace =
                  Trace.of_chain
                    ~callee:(Ids.Method_id.of_int callee)
                    ~chain:(Array.of_list (List.map parse_entry chain))
                in
                (* weights replay as whole samples; the sub-sample
                   fraction lost to rounding is below profiling noise *)
                let n = max 1 (int_of_float (Float.round weight)) in
                for _ = 1 to n do
                  Dcg.add_sample dcg trace
                done
            | _ -> raise (Malformed ("bad trace line: " ^ line)))
        | _ -> raise (Malformed ("bad line: " ^ line)))
    lines;
  dcg

let save path dcg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string dcg))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
