open Acsi_bytecode

type rule = { trace : Trace.t; weight : float }

(* The oracle asks for candidates once per call site per inline expansion,
   and recompilations revisit the same roots under the same rules — so the
   same (rules, site chain) query recurs many times between AI-organizer
   passes. Results are memoized per rules value: a fresh cache is
   allocated with every [of_hot_traces] (and every [empty ()]), so a new
   rules version invalidates the whole cache structurally and two
   simulated systems can never share (or race on) cached state. *)

module Chain_key = struct
  type t = { exact : bool; chain : Trace.entry array; h : int }

  let make ~exact chain =
    let h = ref (if exact then 1 else 0) in
    Array.iter
      (fun (e : Trace.entry) ->
        h := (!h * 31) + Ids.Method_id.hash e.Trace.caller;
        h := (!h * 31) + e.Trace.callsite)
      chain;
    { exact; chain; h = !h land max_int }

  let equal a b =
    a.exact = b.exact
    && Array.length a.chain = Array.length b.chain
    &&
    let rec go i =
      i >= Array.length a.chain
      || (Trace.entry_equal a.chain.(i) b.chain.(i) && go (i + 1))
    in
    go 0

  let hash t = t.h
end

module Cache = Hashtbl.Make (Chain_key)

(* Indexed by the innermost chain entry (caller, callsite) — the component
   Eq. 3 always requires to match (min(k, j) >= 1). *)
type t = {
  by_site : (int * int, rule list) Hashtbl.t;
  count : int;
  version : int;
  cache : (Ids.Method_id.t * float) list Cache.t;
}

let empty () =
  { by_site = Hashtbl.create 1; count = 0; version = 0; cache = Cache.create 1 }

let site_key (e : Trace.entry) = ((e.Trace.caller :> int), e.Trace.callsite)

let of_hot_traces ?(version = 0) hot =
  let by_site = Hashtbl.create 64 in
  List.iter
    (fun (trace, weight) ->
      let key = site_key trace.Trace.chain.(0) in
      let prev = Option.value (Hashtbl.find_opt by_site key) ~default:[] in
      Hashtbl.replace by_site key ({ trace; weight } :: prev))
    hot;
  { by_site; count = List.length hot; version; cache = Cache.create 64 }

let rule_count t = t.count
let version t = t.version

let rules_at t ~(caller : Ids.Method_id.t) ~callsite =
  Option.value
    (Hashtbl.find_opt t.by_site ((caller :> int), callsite))
    ~default:[]

let applicable_rules ~exact t ~site_chain =
  if Array.length site_chain = 0 then []
  else
  rules_at t
    ~caller:site_chain.(0).Trace.caller
    ~callsite:site_chain.(0).Trace.callsite
  |> List.filter (fun r ->
         let chain = r.trace.Trace.chain in
         if exact then
           Array.length chain = Array.length site_chain
           && Trace.context_matches ~rule_chain:chain ~site_chain
         else Trace.context_matches ~rule_chain:chain ~site_chain)

let applicable ?(exact = false) t ~site_chain =
  applicable_rules ~exact t ~site_chain

(* Shared tail of both implementations: the per-callee weights are summed
   in [applicable] order and folded out of the same table, so the
   optimized path reproduces the reference's result list exactly —
   including the order of equal-weight ties under the stable sort. *)
let weights_of_applicable applicable =
  let weight_of = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = (r.trace.Trace.callee :> int) in
      let prev = Option.value (Hashtbl.find_opt weight_of key) ~default:0.0 in
      Hashtbl.replace weight_of key (prev +. r.weight))
    applicable;
  weight_of

let compute_candidates ~exact t ~site_chain =
  match applicable_rules ~exact t ~site_chain with
  | [] -> []
  | applicable ->
      (* Group applicable rules by identical context; a group's callee set
         is every hot callee recorded under exactly that context. The
         groups are keyed by the chain rendered as int pairs, and each
         carries an int-keyed callee set, so both grouping and the
         intersection below are hash lookups instead of list scans. *)
      let groups : ((int * int) array, (int, unit) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun r ->
          let key =
            Array.map
              (fun (e : Trace.entry) ->
                ((e.Trace.caller :> int), e.Trace.callsite))
              r.trace.Trace.chain
          in
          let callees =
            match Hashtbl.find_opt groups key with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.add groups key s;
                s
          in
          Hashtbl.replace callees (r.trace.Trace.callee :> int) ())
        applicable;
      (* Intersect the groups' callee sets; weight of a surviving callee
         is its summed weight over all applicable rules. *)
      let weight_of = weights_of_applicable applicable in
      let survivors =
        Hashtbl.fold
          (fun key w acc ->
            let in_every_group =
              Hashtbl.fold
                (fun _ callees acc -> acc && Hashtbl.mem callees key)
                groups true
            in
            if in_every_group then (Ids.Method_id.of_int key, w) :: acc
            else acc)
          weight_of []
      in
      List.sort (fun (_, a) (_, b) -> Float.compare b a) survivors

let candidates ?(exact = false) t ~site_chain =
  if Array.length site_chain = 0 then []
  else
    let key = Chain_key.make ~exact site_chain in
    match Cache.find_opt t.cache key with
    | Some result -> result
    | None ->
        let result = compute_candidates ~exact t ~site_chain in
        (* The stored key must not alias the caller's (mutable) array. *)
        Cache.add t.cache { key with Chain_key.chain = Array.copy site_chain }
          result;
        result

(* The pre-index implementation, kept verbatim as the executable spec the
   differential tests compare [candidates] against. *)
let candidates_reference ?(exact = false) t ~site_chain =
  if Array.length site_chain = 0 then []
  else
    let applicable = applicable_rules ~exact t ~site_chain in
    match applicable with
    | [] -> []
    | _ :: _ ->
        (* Group by context. Contexts are few per site; association lists
           keep the code simple. *)
        let groups = ref [] in
        List.iter
          (fun r ->
            let chain = r.trace.Trace.chain in
            let rec insert = function
              | [] -> [ (chain, ref [ r ]) ]
              | ((c, rs) as g) :: rest ->
                  if
                    Array.length c = Array.length chain
                    && Trace.context_matches ~rule_chain:c ~site_chain:chain
                  then begin
                    rs := r :: !rs;
                    g :: rest
                  end
                  else g :: insert rest
            in
            groups := insert !groups)
          applicable;
        let weight_of = weights_of_applicable applicable in
        let in_group callee (_, rs) =
          List.exists
            (fun r -> Ids.Method_id.equal r.trace.Trace.callee callee)
            !rs
        in
        let survivors =
          Hashtbl.fold
            (fun key w acc ->
              let callee = Ids.Method_id.of_int key in
              if List.for_all (in_group callee) !groups then
                (callee, w) :: acc
              else acc)
            weight_of []
        in
        List.sort (fun (_, a) (_, b) -> Float.compare b a) survivors

let iter t ~f = Hashtbl.iter (fun _ rs -> List.iter f rs) t.by_site
