open Acsi_bytecode

(* Alongside the main trace table, an incremental secondary index keyed on
   the innermost (caller, callsite) of each trace. Buckets share the
   weight refs of the main table, so decay of a weight is visible through
   the index for free; only insertion and pruning maintain it. Per-site
   queries ([site_distribution], [edge_weight]) then touch exactly the
   traces recorded at that site instead of scanning the whole table.

   Each site additionally keeps two sub-indexes over the same weight refs:
   per-callee buckets (every trace of the site recording that callee, at
   any depth) and per-deep-context buckets (every trace with an identical
   chain of length >= 2). These are the "views" the adaptive-resolution
   organizer reads: with them, scanning every site's callee distribution
   and deep-context skew costs one pass over the live traces instead of
   the sites x entries (and contexts x contexts) products a flat table
   forces. Sums are recomputed from the buckets at query time rather than
   maintained as running floats, so a view never drifts from the table it
   indexes. *)

type site = {
  s_traces : float ref Trace.Table.t;
  s_callees : (int, float ref Trace.Table.t) Hashtbl.t;
  s_deep : ((int * int) list, float ref Trace.Table.t) Hashtbl.t;
}

type t = {
  table : float ref Trace.Table.t;
  sites : (int * int, site) Hashtbl.t;
  mutable total : float;
}

type site_view = site

let site_key (trace : Trace.t) =
  let e = trace.Trace.chain.(0) in
  ((e.Trace.caller :> int), e.Trace.callsite)

let ctx_key (trace : Trace.t) =
  Array.to_list trace.Trace.chain
  |> List.map (fun e -> ((e.Trace.caller :> int), e.Trace.callsite))

let create () =
  { table = Trace.Table.create 512; sites = Hashtbl.create 256; total = 0.0 }

let sub_bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some b -> b
  | None ->
      let b = Trace.Table.create 4 in
      Hashtbl.add tbl key b;
      b

let index_insert t trace w =
  let key = site_key trace in
  let site =
    match Hashtbl.find_opt t.sites key with
    | Some s -> s
    | None ->
        let s =
          {
            s_traces = Trace.Table.create 8;
            s_callees = Hashtbl.create 4;
            s_deep = Hashtbl.create 4;
          }
        in
        Hashtbl.add t.sites key s;
        s
  in
  Trace.Table.add site.s_traces trace w;
  Trace.Table.add (sub_bucket site.s_callees (trace.Trace.callee :> int)) trace w;
  if Array.length trace.Trace.chain >= 2 then
    Trace.Table.add (sub_bucket site.s_deep (ctx_key trace)) trace w

let index_remove t (trace : Trace.t) =
  let key = site_key trace in
  match Hashtbl.find_opt t.sites key with
  | None -> ()
  | Some site ->
      Trace.Table.remove site.s_traces trace;
      let drop tbl k =
        match Hashtbl.find_opt tbl k with
        | None -> ()
        | Some b ->
            Trace.Table.remove b trace;
            if Trace.Table.length b = 0 then Hashtbl.remove tbl k
      in
      drop site.s_callees (trace.Trace.callee :> int);
      if Array.length trace.Trace.chain >= 2 then
        drop site.s_deep (ctx_key trace);
      if Trace.Table.length site.s_traces = 0 then Hashtbl.remove t.sites key

let add_sample t trace =
  (match Trace.Table.find_opt t.table trace with
  | Some w -> w := !w +. 1.0
  | None ->
      let w = ref 1.0 in
      Trace.Table.add t.table trace w;
      index_insert t trace w);
  t.total <- t.total +. 1.0

let add_weight t trace w0 =
  if w0 > 0.0 then begin
    (match Trace.Table.find_opt t.table trace with
    | Some w -> w := !w +. w0
    | None ->
        let w = ref w0 in
        Trace.Table.add t.table trace w;
        index_insert t trace w);
    t.total <- t.total +. w0
  end

let merge ~into src =
  Trace.Table.iter (fun trace w -> add_weight into trace !w) src.table

let weight t trace =
  match Trace.Table.find_opt t.table trace with
  | Some w -> !w
  | None -> 0.0

let total_weight t = t.total
let size t = Trace.Table.length t.table

let decay t ~factor ~prune_below =
  (* Doomed weights are carried out of the scan so pruning needs no
     re-probe; the total is reduced entry by entry, in the same order the
     entries are removed. *)
  let doomed = ref [] in
  Trace.Table.iter
    (fun trace w ->
      w := !w *. factor;
      if !w < prune_below then doomed := (trace, w) :: !doomed)
    t.table;
  t.total <- t.total *. factor;
  List.iter
    (fun ((trace : Trace.t), w) ->
      t.total <- t.total -. !w;
      Trace.Table.remove t.table trace;
      index_remove t trace)
    !doomed;
  if t.total < 0.0 then t.total <- 0.0

let hot t ~threshold =
  if t.total <= 0.0 then []
  else
    let cut = threshold *. t.total in
    let acc = ref [] in
    Trace.Table.iter
      (fun trace w -> if !w > cut then acc := (trace, !w) :: !acc)
      t.table;
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc

let iter t ~f = Trace.Table.iter (fun trace w -> f trace !w) t.table

let site_entry_count t ~(caller : Ids.Method_id.t) ~callsite =
  match Hashtbl.find_opt t.sites ((caller :> int), callsite) with
  | Some site -> Trace.Table.length site.s_traces
  | None -> 0

let site_count t = Hashtbl.length t.sites

(* --- site views --- *)

let sum_bucket b = Trace.Table.fold (fun _ w acc -> acc +. !w) b 0.0
let max_bucket b = Trace.Table.fold (fun _ w acc -> Float.max acc !w) b 0.0

let iter_sites t ~f =
  Hashtbl.iter
    (fun (caller, callsite) site ->
      f ~caller:(Ids.Method_id.of_int caller) ~callsite site)
    t.sites

let view_entry_count (v : site_view) = Trace.Table.length v.s_traces
let view_callee_count (v : site_view) = Hashtbl.length v.s_callees
let view_total (v : site_view) = sum_bucket v.s_traces

let view_callee_weights (v : site_view) =
  Hashtbl.fold
    (fun callee b acc -> (Ids.Method_id.of_int callee, sum_bucket b) :: acc)
    v.s_callees []

let view_top_callee_weight (v : site_view) =
  Hashtbl.fold
    (fun _ b acc -> Float.max acc (sum_bucket b))
    v.s_callees 0.0

let view_deep_exists (v : site_view) ~f =
  (* Within one deep context the traces differ only by callee (the chain
     is the bucket key), so the context's top callee weight is the
     heaviest trace in the bucket. *)
  Hashtbl.fold
    (fun _ b acc -> acc || f ~total:(sum_bucket b) ~top:(max_bucket b))
    v.s_deep false

let view_deep_context_count (v : site_view) = Hashtbl.length v.s_deep

let site_view t ~(caller : Ids.Method_id.t) ~callsite =
  Hashtbl.find_opt t.sites ((caller :> int), callsite)

let site_distribution t ~(caller : Ids.Method_id.t) ~callsite =
  match site_view t ~caller ~callsite with
  | None -> []
  | Some v ->
      view_callee_weights v
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let edge_weight t ~(caller : Ids.Method_id.t) ~callsite
    ~(callee : Ids.Method_id.t) =
  match Hashtbl.find_opt t.sites ((caller :> int), callsite) with
  | None -> 0.0
  | Some site -> (
      match Hashtbl.find_opt site.s_callees ((callee :> int)) with
      | None -> 0.0
      | Some b -> sum_bucket b)
