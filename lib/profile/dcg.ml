open Acsi_bytecode

(* Alongside the main trace table, an incremental secondary index keyed on
   the innermost (caller, callsite) of each trace. Buckets share the
   weight refs of the main table, so decay of a weight is visible through
   the index for free; only insertion and pruning maintain it. Per-site
   queries ([site_distribution], [edge_weight]) then touch exactly the
   traces recorded at that site instead of scanning the whole table. *)

type t = {
  table : float ref Trace.Table.t;
  sites : (int * int, float ref Trace.Table.t) Hashtbl.t;
  mutable total : float;
}

let site_key (trace : Trace.t) =
  let e = trace.Trace.chain.(0) in
  ((e.Trace.caller :> int), e.Trace.callsite)

let create () =
  { table = Trace.Table.create 512; sites = Hashtbl.create 256; total = 0.0 }

let add_sample t trace =
  (match Trace.Table.find_opt t.table trace with
  | Some w -> w := !w +. 1.0
  | None ->
      let w = ref 1.0 in
      Trace.Table.add t.table trace w;
      let key = site_key trace in
      let bucket =
        match Hashtbl.find_opt t.sites key with
        | Some b -> b
        | None ->
            let b = Trace.Table.create 8 in
            Hashtbl.add t.sites key b;
            b
      in
      Trace.Table.add bucket trace w);
  t.total <- t.total +. 1.0

let weight t trace =
  match Trace.Table.find_opt t.table trace with
  | Some w -> !w
  | None -> 0.0

let total_weight t = t.total
let size t = Trace.Table.length t.table

let decay t ~factor ~prune_below =
  (* Doomed weights are carried out of the scan so pruning needs no
     re-probe; the total is reduced entry by entry, in the same order the
     entries are removed. *)
  let doomed = ref [] in
  Trace.Table.iter
    (fun trace w ->
      w := !w *. factor;
      if !w < prune_below then doomed := (trace, w) :: !doomed)
    t.table;
  t.total <- t.total *. factor;
  List.iter
    (fun ((trace : Trace.t), w) ->
      t.total <- t.total -. !w;
      Trace.Table.remove t.table trace;
      let key = site_key trace in
      match Hashtbl.find_opt t.sites key with
      | Some bucket ->
          Trace.Table.remove bucket trace;
          if Trace.Table.length bucket = 0 then Hashtbl.remove t.sites key
      | None -> ())
    !doomed;
  if t.total < 0.0 then t.total <- 0.0

let hot t ~threshold =
  if t.total <= 0.0 then []
  else
    let cut = threshold *. t.total in
    let acc = ref [] in
    Trace.Table.iter
      (fun trace w -> if !w > cut then acc := (trace, !w) :: !acc)
      t.table;
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc

let iter t ~f = Trace.Table.iter (fun trace w -> f trace !w) t.table

let site_entry_count t ~(caller : Ids.Method_id.t) ~callsite =
  match Hashtbl.find_opt t.sites ((caller :> int), callsite) with
  | Some bucket -> Trace.Table.length bucket
  | None -> 0

let site_count t = Hashtbl.length t.sites

let site_distribution t ~(caller : Ids.Method_id.t) ~callsite =
  match Hashtbl.find_opt t.sites ((caller :> int), callsite) with
  | None -> []
  | Some bucket ->
      let per_callee = Hashtbl.create 8 in
      Trace.Table.iter
        (fun (trace : Trace.t) w ->
          let key = (trace.Trace.callee :> int) in
          let prev =
            Option.value (Hashtbl.find_opt per_callee key) ~default:0.0
          in
          Hashtbl.replace per_callee key (prev +. !w))
        bucket;
      Hashtbl.fold
        (fun key w acc -> (Ids.Method_id.of_int key, w) :: acc)
        per_callee []
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let edge_weight t ~(caller : Ids.Method_id.t) ~callsite ~callee =
  match Hashtbl.find_opt t.sites ((caller :> int), callsite) with
  | None -> 0.0
  | Some bucket ->
      let sum = ref 0.0 in
      Trace.Table.iter
        (fun (trace : Trace.t) w ->
          if Ids.Method_id.equal trace.Trace.callee callee then
            sum := !sum +. !w)
        bucket;
      !sum
