(** The profiled dynamic call graph.

    Stores weighted call traces of arbitrary depth (a depth-1 trace is a
    context-insensitive call edge). Following the paper's hybrid approach
    (§3.3, "Partial Context Matches"), samples are *never* merged across
    different depths at collection time — a trace and its sub-traces are
    separate entries; only the oracle combines them through partial
    matching at query time.

    Weights are decayed periodically by the decay organizer so that hot-edge
    detection favours recently sampled edges (program phase adaptation). *)

open Acsi_bytecode

type t

val create : unit -> t

val add_sample : t -> Trace.t -> unit
(** Add one sample (weight 1.0). *)

val add_weight : t -> Trace.t -> float -> unit
(** Add [w] (> 0, else a no-op) to one trace's weight, inserting the
    trace — and indexing its site — when new. [add_sample t tr] is
    [add_weight t tr 1.0]. *)

val merge : into:t -> t -> unit
(** Fold every trace of the source graph into [into], adding weights
    trace by trace. Totals are additive: afterwards [into]'s total has
    grown by exactly the source's total. The source is not modified.
    This is the organizer-side flush of per-shard DCGs into the global
    view (the paper's per-virtual-processor sample buffers). *)

val weight : t -> Trace.t -> float
(** 0 when the trace was never sampled. *)

val total_weight : t -> float
val size : t -> int

val decay : t -> factor:float -> prune_below:float -> unit
(** Multiply every weight (and the total) by [factor], dropping entries
    whose weight falls below [prune_below]. *)

val hot : t -> threshold:float -> (Trace.t * float) list
(** Traces contributing more than [threshold] (a fraction, e.g. the
    paper's 0.015) of the total profile weight, heaviest first. *)

val iter : t -> f:(Trace.t -> float -> unit) -> unit

val site_distribution :
  t -> caller:Ids.Method_id.t -> callsite:int -> (Ids.Method_id.t * float) list
(** Callee distribution of one call site, aggregated over every recorded
    trace whose innermost entry is [(caller, callsite)], heaviest first.
    Used by the adaptive-resolution policy to find polymorphic sites with
    non-skewed distributions. Served from an incremental per-site index:
    cost is proportional to the traces recorded at the site, not to the
    size of the whole graph. *)

val edge_weight : t -> caller:Ids.Method_id.t -> callsite:int -> callee:Ids.Method_id.t -> float
(** Aggregated weight of a call edge over all trace depths. Served from
    the per-site index, like {!site_distribution}. *)

val site_entry_count : t -> caller:Ids.Method_id.t -> callsite:int -> int
(** Number of distinct traces currently indexed under the site
    [(caller, callsite)] — 0 once every trace of the site has been pruned
    (the index drops empty sites). For tests/inspection. *)

val site_count : t -> int
(** Number of distinct call sites with at least one live trace. *)

(** {2 Site views}

    A view over everything recorded at one call site: per-callee weight
    (aggregated over all trace depths) and per-deep-context weight (one
    bucket per distinct chain of length >= 2). Views are maintained
    incrementally on {!add_sample} and {!decay}-pruning and share the
    main table's weight refs, so reading one never scans the whole graph;
    weight sums are recomputed from the bucket at query time, so a view
    cannot drift from the table. The adaptive-resolution organizer
    ({!Acsi_aos.System}) is the main consumer. *)

type site_view

val iter_sites :
  t -> f:(caller:Ids.Method_id.t -> callsite:int -> site_view -> unit) -> unit
(** One call per live site, in no particular order. *)

val site_view :
  t -> caller:Ids.Method_id.t -> callsite:int -> site_view option

val view_entry_count : site_view -> int
(** Distinct traces at the site. *)

val view_callee_count : site_view -> int
(** Distinct callees recorded at the site (over all depths). *)

val view_total : site_view -> float
(** Total weight at the site (all depths). *)

val view_callee_weights : site_view -> (Ids.Method_id.t * float) list
(** Per-callee weight, aggregated over depths; unordered. *)

val view_top_callee_weight : site_view -> float
(** The heaviest callee's aggregated weight; 0 for an empty view. *)

val view_deep_exists :
  site_view -> f:(total:float -> top:float -> bool) -> bool
(** Whether some deep context (chain length >= 2) rooted at this site
    satisfies [f], given the context's total weight and its heaviest
    single callee's weight. Short-circuits on the first hit. *)

val view_deep_context_count : site_view -> int
(** Distinct deep contexts (chains of length >= 2) rooted at the site. *)
