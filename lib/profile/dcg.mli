(** The profiled dynamic call graph.

    Stores weighted call traces of arbitrary depth (a depth-1 trace is a
    context-insensitive call edge). Following the paper's hybrid approach
    (§3.3, "Partial Context Matches"), samples are *never* merged across
    different depths at collection time — a trace and its sub-traces are
    separate entries; only the oracle combines them through partial
    matching at query time.

    Weights are decayed periodically by the decay organizer so that hot-edge
    detection favours recently sampled edges (program phase adaptation). *)

open Acsi_bytecode

type t

val create : unit -> t

val add_sample : t -> Trace.t -> unit
(** Add one sample (weight 1.0). *)

val weight : t -> Trace.t -> float
(** 0 when the trace was never sampled. *)

val total_weight : t -> float
val size : t -> int

val decay : t -> factor:float -> prune_below:float -> unit
(** Multiply every weight (and the total) by [factor], dropping entries
    whose weight falls below [prune_below]. *)

val hot : t -> threshold:float -> (Trace.t * float) list
(** Traces contributing more than [threshold] (a fraction, e.g. the
    paper's 0.015) of the total profile weight, heaviest first. *)

val iter : t -> f:(Trace.t -> float -> unit) -> unit

val site_distribution :
  t -> caller:Ids.Method_id.t -> callsite:int -> (Ids.Method_id.t * float) list
(** Callee distribution of one call site, aggregated over every recorded
    trace whose innermost entry is [(caller, callsite)], heaviest first.
    Used by the adaptive-resolution policy to find polymorphic sites with
    non-skewed distributions. Served from an incremental per-site index:
    cost is proportional to the traces recorded at the site, not to the
    size of the whole graph. *)

val edge_weight : t -> caller:Ids.Method_id.t -> callsite:int -> callee:Ids.Method_id.t -> float
(** Aggregated weight of a call edge over all trace depths. Served from
    the per-site index, like {!site_distribution}. *)

val site_entry_count : t -> caller:Ids.Method_id.t -> callsite:int -> int
(** Number of distinct traces currently indexed under the site
    [(caller, callsite)] — 0 once every trace of the site has been pruned
    (the index drops empty sites). For tests/inspection. *)

val site_count : t -> int
(** Number of distinct call sites with at least one live trace. *)
