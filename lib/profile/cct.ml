open Acsi_bytecode

(* A node's key in its parent's child table: the call edge that leads to
   it. The synthetic root's children are keyed by the outermost recorded
   caller of each trace; below that, edges are (caller, callsite) pairs
   and the node represents the called method. *)
type node = {
  mutable weight : float;  (* samples whose trace ends exactly here *)
  children : (int * int, node) Hashtbl.t;
}

type t = {
  root : node;
  mutable total : float;
}

let make_node () = { weight = 0.0; children = Hashtbl.create 4 }
let create () = { root = make_node (); total = 0.0 }

(* The path of a trace from outermost to innermost: the outermost caller
   enters from the root, then each (caller, callsite) edge downward, with
   the callee last. Encoded as edge keys. *)
let path_of (trace : Trace.t) =
  let chain = trace.Trace.chain in
  let n = Array.length chain in
  let outermost = chain.(n - 1) in
  let acc = ref [ ((outermost.Trace.caller :> int), -1) ] in
  for i = n - 1 downto 1 do
    (* edge from chain.(i).caller into chain.(i-1).caller at callsite
       chain.(i).callsite *)
    acc :=
      ((chain.(i - 1).Trace.caller :> int), chain.(i).Trace.callsite) :: !acc
  done;
  acc := ((trace.Trace.callee :> int), chain.(0).Trace.callsite) :: !acc;
  List.rev !acc

let add_trace ?(weight = 1.0) t trace =
  let rec descend node = function
    | [] -> node.weight <- node.weight +. weight
    | key :: rest ->
        let child =
          match Hashtbl.find_opt node.children key with
          | Some c -> c
          | None ->
              let c = make_node () in
              Hashtbl.add node.children key c;
              c
        in
        descend child rest
  in
  descend t.root (path_of trace);
  t.total <- t.total +. weight

let of_dcg dcg =
  let t = create () in
  Dcg.iter dcg ~f:(fun trace w -> add_trace ~weight:w t trace);
  t

let total_weight t = t.total

let node_count t =
  let rec count node =
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children 1
  in
  count t.root - 1

let max_depth t =
  let rec depth node =
    Hashtbl.fold (fun _ child acc -> max acc (1 + depth child)) node.children 0
  in
  depth t.root

let weight_of t trace =
  let rec descend node = function
    | [] -> node.weight
    | key :: rest -> (
        match Hashtbl.find_opt node.children key with
        | Some child -> descend child rest
        | None -> 0.0)
  in
  descend t.root (path_of trace)

(* Rebuild a trace from a root-to-leaf path of (method, callsite) keys.
   The path mirrors [path_of]: outermost caller first (callsite -1), then
   successive callees with the callsite in their caller. *)
let trace_of_path path =
  match List.rev path with
  | (callee, innermost_cs) :: rest_rev ->
      let rec chain acc cs = function
        | [] -> acc
        | (m, parent_cs) :: rest ->
            chain
              ({ Trace.caller = Ids.Method_id.of_int m; callsite = cs } :: acc)
              parent_cs rest
      in
      let entries = List.rev (chain [] innermost_cs rest_rev) in
      Option.map
        (fun chain -> Trace.of_chain ~callee:(Ids.Method_id.of_int callee) ~chain)
        (match entries with
        | [] -> None
        | _ :: _ -> Some (Array.of_list entries))
  | [] -> None

let to_hot_traces t ~threshold =
  if t.total <= 0.0 then []
  else
    let cut = threshold *. t.total in
    let acc = ref [] in
    let rec walk node path =
      if node.weight > cut then begin
        match trace_of_path (List.rev path) with
        | Some trace -> acc := (trace, node.weight) :: !acc
        | None -> ()
      end;
      Hashtbl.iter (fun key child -> walk child (key :: path)) node.children
    in
    Hashtbl.iter (fun key child -> walk child [ key ]) t.root.children;
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc
