(** Inlining rules: the hot traces the adaptive-inlining organizer exports,
    indexed for the oracle's partial-match queries.

    A rule says "callee X, reached through context C, is hot and should be
    inlined if possible". Rules are rebuilt from the dynamic call graph on
    every AI-organizer pass; hot traces are *not* merged across depths —
    merging happens only through partial matching at query time (the
    paper's hybrid approach). *)

open Acsi_bytecode

type rule = { trace : Trace.t; weight : float }

type t

val empty : unit -> t
(** A fresh, unshared empty rule set. Allocated per call: a rules value
    carries a (mutable) memoization cache, and concurrently simulated
    systems must never alias profile state. *)

val of_hot_traces : ?version:int -> (Trace.t * float) list -> t
(** [version] stamps the rules generation (the AI organizer's counter);
    {!candidates} results are memoized per rules value, so a new version
    — a new [of_hot_traces] — structurally invalidates every cached
    query. *)

val rule_count : t -> int

val version : t -> int

val rules_at : t -> caller:Ids.Method_id.t -> callsite:int -> rule list
(** Every rule whose innermost chain entry is this call site. *)

val applicable :
  ?exact:bool -> t -> site_chain:Trace.entry array -> rule list
(** Every rule applicable to the compilation context under Eq. 3 partial
    matching: the rule's chain and [site_chain] agree on their first
    [min] entries (all entries, with [exact]). The raw evidence behind
    {!candidates} — exposed for decision provenance, which reports each
    candidate's match depth and summed weight. *)

val candidates :
  ?exact:bool -> t -> site_chain:Trace.entry array -> (Ids.Method_id.t * float) list
(** The oracle query (paper §3.3). [site_chain] is the compilation context,
    innermost-first: entry 0 is the call site being compiled, deeper
    entries come from inline parents already committed by the expander.

    Returns the callees to consider for (guarded) inlining, heaviest
    first: rules applicable under Eq. 3 are grouped by identical context,
    each group contributes its callee set, and the groups' sets are
    intersected.

    With [exact] (an ablation of the paper's partial matching), a rule is
    applicable only when its context equals the site chain exactly.

    Results are memoized on [(exact, site_chain)] within this rules
    value: repeated compiles of the same root under the same rules hit
    the cache instead of recomputing the partial-match intersection. *)

val candidates_reference :
  ?exact:bool -> t -> site_chain:Trace.entry array -> (Ids.Method_id.t * float) list
(** The pre-index implementation of {!candidates} (list-scan groups, no
    memoization), kept as the executable specification for differential
    tests. Must agree with {!candidates} exactly, including result
    order. *)

val iter : t -> f:(rule -> unit) -> unit
