module Interp = Acsi_vm.Interp

type entry = {
  e_tid : int;
  e_thread : Interp.thread;
  mutable e_resumes : int;
  mutable e_enqueued_at : int;  (* slice index when (re)enqueued *)
}

type t = {
  vm : Interp.t;
  quantum : int;
  switch_cost : int;
  cycle_limit : int;
  on_switch : unit -> unit;
  tracer : Acsi_obs.Tracer.t;
  ready : entry Queue.t;
  resumes_by_tid : (int, int) Hashtbl.t;
  mutable live : int;
  mutable max_live : int;
  mutable slices : int;
  mutable switches : int;
  mutable last_tid : int;  (* -1 before the first slice *)
  mutable max_resume_gap : int;
  mutable completions_rev : (int * int) list;
}

let create ?(quantum = 25_000) ?(switch_cost = 200) ?(cycle_limit = max_int)
    ?(on_switch = fun () -> ()) ?(tracer = Acsi_obs.Tracer.null) vm =
  if quantum <= 0 then invalid_arg "Sched.create: quantum must be positive";
  if switch_cost < 0 then
    invalid_arg "Sched.create: switch_cost must be non-negative";
  {
    vm;
    quantum;
    switch_cost;
    cycle_limit;
    on_switch;
    tracer;
    ready = Queue.create ();
    resumes_by_tid = Hashtbl.create 64;
    live = 0;
    max_live = 0;
    slices = 0;
    switches = 0;
    last_tid = -1;
    max_resume_gap = 0;
    completions_rev = [];
  }

let spawn t =
  let th = Interp.spawn t.vm in
  let tid = Interp.thread_id th in
  Queue.add
    { e_tid = tid; e_thread = th; e_resumes = 0; e_enqueued_at = t.slices }
    t.ready;
  Hashtbl.replace t.resumes_by_tid tid 0;
  t.live <- t.live + 1;
  t.max_live <- max t.max_live t.live;
  tid

let live t = t.live
let max_live t = t.max_live
let slices t = t.slices
let switches t = t.switches
let max_resume_gap t = t.max_resume_gap
let completions t = List.rev t.completions_rev

let resumes t ~tid =
  match Hashtbl.find_opt t.resumes_by_tid tid with Some n -> n | None -> 0

let run_slice t =
  match Queue.take_opt t.ready with
  | None -> None
  | Some e ->
      t.max_resume_gap <- max t.max_resume_gap (t.slices - e.e_enqueued_at);
      if e.e_tid <> t.last_tid then begin
        if t.last_tid >= 0 && t.switch_cost > 0 then
          Interp.charge t.vm t.switch_cost;
        t.switches <- t.switches + 1
      end;
      t.last_tid <- e.e_tid;
      t.on_switch ();
      e.e_resumes <- e.e_resumes + 1;
      Hashtbl.replace t.resumes_by_tid e.e_tid e.e_resumes;
      let t0 = Interp.cycles t.vm in
      let status =
        Interp.resume ~cycle_limit:t.cycle_limit t.vm e.e_thread
          ~quantum:t.quantum
      in
      (* One span per slice on the thread's own track: the interval the
         thread occupied the shared clock (including AOS work charged
         while it ran). Not an Accounting track, so reconciliation of
         the component tracks is untouched. *)
      if Acsi_obs.Tracer.enabled t.tracer then
        Acsi_obs.Tracer.span t.tracer
          ~track:(Printf.sprintf "vthread-%d" e.e_tid)
          ~name:"slice" ~t0 ~t1:(Interp.cycles t.vm);
      t.slices <- t.slices + 1;
      (match status with
      | Interp.Running ->
          e.e_enqueued_at <- t.slices;
          Queue.add e t.ready
      | Interp.Done ->
          t.live <- t.live - 1;
          t.completions_rev <-
            (e.e_tid, Interp.cycles t.vm) :: t.completions_rev);
      Some (e.e_tid, status)
