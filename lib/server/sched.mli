(** Deterministic round-robin scheduler for virtual threads.

    Multiplexes N {!Acsi_vm.Interp} threads over the shared virtual cycle
    clock with quantum-based preemption. Preemption happens only at the
    interpreter's cycle-budget window boundaries (its yield points), so
    AOS sampling in threaded runs fires at thread switches exactly as in
    Jikes RVM. Everything is driven by the virtual clock — no wall clock,
    no host threads — so a schedule is a pure function of (program,
    config, spawn order) and replays identically. *)

type t

val create :
  ?quantum:int ->
  ?switch_cost:int ->
  ?cycle_limit:int ->
  ?on_switch:(unit -> unit) ->
  ?tracer:Acsi_obs.Tracer.t ->
  Acsi_vm.Interp.t ->
  t
(** [quantum] (default 25_000) is the per-slice cycle budget.
    [switch_cost] (default 200) is charged to the shared clock whenever a
    slice runs a different thread than the previous slice (the
    context-switch tax). [on_switch] runs at the start of every slice,
    after the switch charge and before the thread resumes — the server
    uses it to install finished background compilations at thread-switch
    yield points. [tracer] (default {!Acsi_obs.Tracer.null}) receives one
    span per slice on a per-thread [vthread-N] track. *)

val spawn : t -> int
(** Register a fresh thread running the program's [main]; returns its
    thread id. The thread becomes runnable immediately (appended to the
    round-robin ready ring). *)

val live : t -> int
(** Threads spawned but not yet completed. *)

val max_live : t -> int
(** High-water mark of {!live} over the scheduler's lifetime. *)

val run_slice : t -> (int * Acsi_vm.Interp.thread_status) option
(** Resume the next ready thread for one quantum. Returns its id and
    whether it completed, or [None] when no thread is ready. *)

val slices : t -> int
(** Slices executed so far. *)

val switches : t -> int
(** Slices that changed the running thread (charged [switch_cost]). *)

val resumes : t -> tid:int -> int
(** Times the given thread has been resumed. *)

val max_resume_gap : t -> int
(** Fairness witness: the maximum number of slices any thread ever
    waited between two consecutive resumes (or between spawn and first
    resume). Under round-robin this is bounded by the number of
    simultaneously live threads — the no-starvation invariant the test
    suite pins. *)

val completions : t -> (int * int) list
(** [(tid, finish_cycle)] for every completed thread, in completion
    order. *)
