(** Server-mode execution: a deterministic request workload against one
    shared program / code cache / AOS instance.

    Each request is one invocation of the program's [main], run as a
    virtual thread under the round-robin {!Sched}. All requests share the
    VM (heap, globals, installed code, virtual clock) and the adaptive
    optimization system, so later requests run increasingly optimized
    code — the warmup-vs-steady-state curve the single-shot harness
    cannot see. Recompilation happens on the background compiler thread
    ({!Acsi_aos.System.config.async_compile}, on by default here), so
    compile cycles overlap request execution.

    Determinism: arrivals come from a seeded integer PRNG, scheduling
    from the virtual clock — two identical invocations produce identical
    schedules, latencies and summaries. *)

type mode =
  | Open of { period : int; requests : int }
      (** open loop: requests arrive on their own schedule (mean
          inter-arrival [period] cycles) whether or not the server keeps
          up — queueing delay counts toward latency *)
  | Closed of { clients : int; requests_per_client : int; think : int }
      (** closed loop: [clients] concurrent clients, each issuing its
          next request [think] cycles after its previous one completes *)

type request = {
  r_id : int;  (** admission order *)
  r_tid : int;  (** scheduler thread id *)
  r_arrival : int;  (** cycle the request entered the system *)
  r_finish : int;
  r_latency : int;  (** finish - arrival, queueing included *)
}

type window = {
  w_first : int;  (** index of the window's first request *)
  w_count : int;
  w_mean_latency : float;
  w_activity : Acsi_core.Metrics.snapshot;
      (** counter diff over the window ({!Acsi_core.Metrics.diff}):
          compiles, samples, AOS cycles attributable to the window *)
}

type summary = {
  sv_workload : string;
  sv_policy : string;
  sv_mode : string;
  sv_requests : int;
  sv_total_cycles : int;
  sv_throughput_rpmc : float;  (** requests per million virtual cycles *)
  sv_mean_latency : float;
  sv_p50 : int;
  sv_p95 : int;
  sv_p99 : int;
  sv_max_latency : int;
  sv_warmup_requests : int;  (** requests until steady state *)
  sv_steady_latency : float;  (** mean latency after warmup *)
  sv_slices : int;
  sv_switches : int;
  sv_max_live : int;
  sv_osr : int;
  sv_opt_compilations : int;
  sv_async_installs : int;
  sv_max_queue_depth : int;
  sv_overlap_instructions : int;
  sv_output_checksum : int;
}

(** Fleet telemetry for one run, collected off the virtual clock (the
    summary and every pinned figure are identical whether or not anyone
    consumes it): a fixed-interval {!Acsi_obs.Timeseries} over
    {!telemetry_columns}, the request-latency histogram, and the
    system's compile-queue-wait and deopt-to-recompile-gap histograms.
    Exported by [acsi-run metrics] as OpenMetrics/JSONL text. *)
type telemetry = {
  tl_interval : int;
  tl_series : Acsi_obs.Timeseries.t;
  tl_latency : Acsi_obs.Hist.t;
  tl_compile_wait : Acsi_obs.Hist.t;
  tl_deopt_gap : Acsi_obs.Hist.t;
}

val telemetry_columns : string list
(** The series schema: [live] (runnable virtual threads),
    [compile_queue], [in_flight] (pool jobs compiling), [served]
    (cumulative completions), [samples] (cumulative method samples),
    [deopts] (cumulative guard + invalidation deopts). *)

type result = {
  summary : summary;
  requests : request list;  (** completion order *)
  windows : window list;  (** the warmup curve, 8 windows *)
  telemetry : telemetry;
}

val run :
  ?quantum:int ->
  ?switch_cost:int ->
  ?seed:int ->
  ?async_compile:bool ->
  ?telemetry_interval:int ->
  mode:mode ->
  name:string ->
  Acsi_core.Config.t ->
  Acsi_bytecode.Program.t ->
  result
(** Serve the request schedule to completion. [name] labels the summary;
    [cfg] supplies the VM cost model, sampling configuration and AOS
    configuration (its [async_compile] field is overridden by the
    [async_compile] argument, default [true]). [telemetry_interval]
    (virtual cycles, default 1M) sets the time-series sampling period;
    sampling reads the clock but never charges it. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_windows : Format.formatter -> window list -> unit
(** The warmup curve, one line per window. *)
