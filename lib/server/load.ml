(* Splitmix64-style mixing with the multiplier constants truncated to
   OCaml's 63-bit ints. Quality is unimportant — only determinism and a
   lack of obvious arrival-period resonance matter. *)
let next_rand state =
  let z = (state + 0x1E3779B97F4A7C15) land max_int in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let open_loop_arrivals ~seed ~period ~n =
  if period <= 1 then invalid_arg "Load.open_loop_arrivals: period must be > 1";
  let arrivals = Array.make (max 0 n) 0 in
  let state = ref (next_rand (seed lxor 0x5DEECE66D)) in
  let clock = ref 0 in
  for i = 0 to n - 1 do
    state := next_rand !state;
    let gap = (period / 2) + 1 + (!state mod period) in
    clock := !clock + gap;
    arrivals.(i) <- !clock
  done;
  arrivals

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0
  else begin
    let sorted = Array.copy xs in
    Array.sort Int.compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 xs) /. float_of_int n

let window_mean xs first len =
  let sum = ref 0 in
  for i = first to first + len - 1 do
    sum := !sum + xs.(i)
  done;
  float_of_int !sum /. float_of_int len

let warmup_requests xs =
  let n = Array.length xs in
  if n = 0 then 0
  else begin
    let w = max 1 (n / 8) in
    let steady = window_mean xs (n - w) w in
    let rec find i =
      if i + w > n then n
      else if Float.abs (window_mean xs i w -. steady) <= 0.25 *. steady then i
      else find (i + 1)
    in
    find 0
  end
