module Interp = Acsi_vm.Interp
module System = Acsi_aos.System
module Config = Acsi_core.Config
module Metrics = Acsi_core.Metrics

type mode =
  | Open of { period : int; requests : int }
  | Closed of { clients : int; requests_per_client : int; think : int }

type request = {
  r_id : int;
  r_tid : int;
  r_arrival : int;
  r_finish : int;
  r_latency : int;
}

type window = {
  w_first : int;
  w_count : int;
  w_mean_latency : float;
  w_activity : Metrics.snapshot;
}

type summary = {
  sv_workload : string;
  sv_policy : string;
  sv_mode : string;
  sv_requests : int;
  sv_total_cycles : int;
  sv_throughput_rpmc : float;
  sv_mean_latency : float;
  sv_p50 : int;
  sv_p95 : int;
  sv_p99 : int;
  sv_max_latency : int;
  sv_warmup_requests : int;
  sv_steady_latency : float;
  sv_slices : int;
  sv_switches : int;
  sv_max_live : int;
  sv_osr : int;
  sv_opt_compilations : int;
  sv_async_installs : int;
  sv_max_queue_depth : int;
  sv_overlap_instructions : int;
  sv_output_checksum : int;
}

(* Fleet telemetry for one server run: a fixed-interval virtual-clock
   time-series plus log-bucketed histograms, populated off the clock —
   the summary above never changes whether anyone reads these. *)
type telemetry = {
  tl_interval : int;
  tl_series : Acsi_obs.Timeseries.t;
  tl_latency : Acsi_obs.Hist.t;
  tl_compile_wait : Acsi_obs.Hist.t;
  tl_deopt_gap : Acsi_obs.Hist.t;
}

let telemetry_columns =
  [ "live"; "compile_queue"; "in_flight"; "served"; "samples"; "deopts" ]

type result = {
  summary : summary;
  requests : request list;
  windows : window list;
  telemetry : telemetry;
}

let mode_string = function
  | Open { period; requests } ->
      Printf.sprintf "open(period=%d,requests=%d)" period requests
  | Closed { clients; requests_per_client; think } ->
      Printf.sprintf "closed(clients=%d,requests=%d,think=%d)" clients
        requests_per_client think

let total_requests = function
  | Open { requests; _ } -> requests
  | Closed { clients; requests_per_client; _ } ->
      clients * requests_per_client

(* Pending admissions, kept sorted by arrival cycle; insertion is stable
   (FIFO among equal arrivals), so the admission order — and with it
   every thread id — is deterministic. [client] is meaningful only in
   closed-loop mode. *)
let insert_pending pending (arrival, client) =
  let rec go = function
    | [] -> [ (arrival, client) ]
    | (a, c) :: rest when a <= arrival -> (a, c) :: go rest
    | rest -> (arrival, client) :: rest
  in
  go pending

let run ?(quantum = 25_000) ?(switch_cost = 200) ?(seed = 1)
    ?(async_compile = true) ?(telemetry_interval = 1_000_000) ~mode ~name
    (cfg : Config.t) program =
  if telemetry_interval <= 0 then
    invalid_arg "Server.run: telemetry_interval must be positive";
  let n_total = total_requests mode in
  if n_total <= 0 then invalid_arg "Server.run: no requests";
  let vm =
    Interp.create ~cost:cfg.Config.cost ~sample_period:cfg.Config.sample_period
      ~invoke_stride:cfg.Config.invoke_stride program
  in
  let aos = { cfg.Config.aos with System.async_compile } in
  let sys = System.create aos vm in
  let tracer = System.tracer sys in
  let sched =
    Sched.create ~quantum ~switch_cost ~cycle_limit:cfg.Config.cycle_limit
      ~on_switch:(fun () -> System.poll_async_installs sys)
      ~tracer vm
  in
  (* Initial arrival schedule. *)
  let pending =
    ref
      (match mode with
      | Open { period; requests } ->
          Array.to_list
            (Array.mapi
               (fun _ at -> (at, -1))
               (Load.open_loop_arrivals ~seed ~period ~n:requests))
      | Closed { clients; _ } -> List.init clients (fun c -> (0, c)))
  in
  let remaining = Array.make (match mode with
      | Closed { clients; _ } -> clients
      | Open _ -> 0)
      (match mode with
      | Closed { requests_per_client; _ } -> requests_per_client - 1
      | Open _ -> 0)
  in
  let next_rid = ref 0 in
  let by_tid : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  (* tid -> (rid, arrival, client) *)
  let completed_rev = ref [] in
  let completed_count = ref 0 in
  (* Warmup-curve windows: counter snapshots at window boundaries. *)
  let win = max 1 ((n_total + 7) / 8) in
  let snaps = ref [ (0, Metrics.snapshot vm sys) ] in
  (* Fleet telemetry: sampled at fixed virtual-clock boundaries as the
     serve loop crosses them, recorded off the clock. *)
  let series =
    Acsi_obs.Timeseries.create ~interval:telemetry_interval
      ~columns:telemetry_columns
  in
  let latency_hist = Acsi_obs.Hist.create () in
  let sample_row at =
    Acsi_obs.Timeseries.sample series ~now:at
      [|
        Sched.live sched;
        System.compile_queue_depth sys;
        System.in_flight_compiles sys;
        !completed_count;
        System.method_samples_taken sys;
        Interp.deopt_guard_count vm + Interp.deopt_invalidate_count vm;
      |]
  in
  let next_tick = ref telemetry_interval in
  let sample_due () =
    let now = Interp.cycles vm in
    while !next_tick <= now do
      sample_row !next_tick;
      next_tick := !next_tick + telemetry_interval
    done
  in
  let admit_due () =
    let now = Interp.cycles vm in
    let rec go = function
      | (at, client) :: rest when at <= now ->
          let tid = Sched.spawn sched in
          Hashtbl.replace by_tid tid (!next_rid, at, client);
          if Acsi_obs.Tracer.enabled tracer then
            Acsi_obs.Tracer.instant tracer ~track:"requests" ~name:"admit"
              ~t:now
              ~args:
                [
                  ("rid", string_of_int !next_rid);
                  ("tid", string_of_int tid);
                  ("arrival", string_of_int at);
                ]
              ();
          incr next_rid;
          go rest
      | rest -> rest
    in
    pending := go !pending
  in
  let finish_one tid =
    let finish = Interp.cycles vm in
    let rid, arrival, client =
      match Hashtbl.find_opt by_tid tid with
      | Some x -> x
      | None -> assert false
    in
    Hashtbl.remove by_tid tid;
    Acsi_obs.Hist.record latency_hist (finish - arrival);
    completed_rev :=
      {
        r_id = rid;
        r_tid = tid;
        r_arrival = arrival;
        r_finish = finish;
        r_latency = finish - arrival;
      }
      :: !completed_rev;
    incr completed_count;
    if Acsi_obs.Tracer.enabled tracer then
      Acsi_obs.Tracer.instant tracer ~track:"requests" ~name:"finish"
        ~t:finish
        ~args:
          [
            ("rid", string_of_int rid);
            ("latency", string_of_int (finish - arrival));
          ]
        ();
    if !completed_count mod win = 0 || !completed_count = n_total then
      snaps := (!completed_count, Metrics.snapshot vm sys) :: !snaps;
    (* Closed loop: the client thinks, then issues its next request. *)
    match mode with
    | Closed { think; _ } when client >= 0 && remaining.(client) > 0 ->
        remaining.(client) <- remaining.(client) - 1;
        pending := insert_pending !pending (finish + think, client)
    | Closed _ | Open _ -> ()
  in
  let rec serve () =
    sample_due ();
    admit_due ();
    match Sched.run_slice sched with
    | Some (tid, Interp.Done) ->
        finish_one tid;
        serve ()
    | Some (_, Interp.Running) -> serve ()
    | None -> (
        (* Nothing runnable: idle until the next arrival, if any. *)
        match !pending with
        | [] -> ()
        | (at, _) :: _ ->
            let now = Interp.cycles vm in
            if at > now then Interp.charge vm (at - now);
            serve ())
  in
  serve ();
  (* Close the series with an end-of-run row so cumulative columns end
     at their final totals (skipped when the run ended exactly on a
     boundary already sampled). *)
  (if Interp.cycles vm >= !next_tick - telemetry_interval + 1 then
     sample_row (Interp.cycles vm));
  let requests = List.rev !completed_rev in
  let latencies =
    Array.of_list (List.map (fun r -> r.r_latency) requests)
  in
  let total_cycles = Interp.cycles vm in
  let warmup = Load.warmup_requests latencies in
  let steady =
    if warmup >= n_total then Load.mean latencies
    else
      Load.mean (Array.sub latencies warmup (n_total - warmup))
  in
  (* Build the warmup curve from consecutive snapshot diffs. *)
  let windows =
    let snaps = List.rev !snaps in
    let rec pair = function
      | (i0, s0) :: ((i1, s1) :: _ as rest) ->
          {
            w_first = i0;
            w_count = i1 - i0;
            w_mean_latency =
              Load.mean (Array.sub latencies i0 (i1 - i0));
            w_activity = Metrics.diff ~before:s0 ~after:s1;
          }
          :: pair rest
      | [ _ ] | [] -> []
    in
    pair snaps
  in
  let summary =
    {
      sv_workload = name;
      sv_policy = Acsi_policy.Policy.to_string aos.System.policy;
      sv_mode = mode_string mode;
      sv_requests = n_total;
      sv_total_cycles = total_cycles;
      sv_throughput_rpmc =
        float_of_int n_total *. 1_000_000.0 /. float_of_int (max 1 total_cycles);
      sv_mean_latency = Load.mean latencies;
      sv_p50 = Load.percentile latencies 50.0;
      sv_p95 = Load.percentile latencies 95.0;
      sv_p99 = Load.percentile latencies 99.0;
      sv_max_latency = Array.fold_left max 0 latencies;
      sv_warmup_requests = warmup;
      sv_steady_latency = steady;
      sv_slices = Sched.slices sched;
      sv_switches = Sched.switches sched;
      sv_max_live = Sched.max_live sched;
      sv_osr = Interp.osr_count vm;
      sv_opt_compilations =
        Acsi_aos.Registry.opt_compilation_count (System.registry sys)
        + System.in_flight_compiles sys;
      sv_async_installs = System.async_installs sys;
      sv_max_queue_depth = System.max_compile_queue_depth sys;
      sv_overlap_instructions = System.async_overlap_instructions sys;
      sv_output_checksum = Metrics.checksum (Interp.output vm);
    }
  in
  let telemetry =
    {
      tl_interval = telemetry_interval;
      tl_series = series;
      tl_latency = latency_hist;
      tl_compile_wait = System.compile_wait_hist sys;
      tl_deopt_gap = System.deopt_gap_hist sys;
    }
  in
  { summary; requests; windows; telemetry }

let pp_summary fmt s =
  let f = Format.fprintf in
  f fmt "@[<v>workload             %s (%s)@," s.sv_workload s.sv_mode;
  f fmt "policy               %s@," s.sv_policy;
  f fmt "requests             %d in %d cycles@," s.sv_requests
    s.sv_total_cycles;
  f fmt "throughput           %.3f req/Mcycle@," s.sv_throughput_rpmc;
  f fmt "latency              mean %.0f  p50 %d  p95 %d  p99 %d  max %d@,"
    s.sv_mean_latency s.sv_p50 s.sv_p95 s.sv_p99 s.sv_max_latency;
  f fmt "warmup               %d requests to steady state (steady mean %.0f)@,"
    s.sv_warmup_requests s.sv_steady_latency;
  f fmt "scheduler            %d slices, %d switches, %d max live@,"
    s.sv_slices s.sv_switches s.sv_max_live;
  f fmt "compiler             %d compilations (%d async installs, queue high-water %d)@,"
    s.sv_opt_compilations s.sv_async_installs s.sv_max_queue_depth;
  f fmt "overlap              %d mutator instrs during background compiles@,"
    s.sv_overlap_instructions;
  f fmt "osr transfers        %d@," s.sv_osr;
  f fmt "output checksum      %d@]" s.sv_output_checksum

let pp_windows fmt windows =
  Format.fprintf fmt "@[<v>%-10s %8s %12s %9s %9s %8s@," "window" "requests"
    "mean-latency" "compiles" "installs" "samples";
  List.iter
    (fun w ->
      Format.fprintf fmt "%4d..%-4d %8d %12.0f %9d %9d %8d@," w.w_first
        (w.w_first + w.w_count - 1)
        w.w_count w.w_mean_latency w.w_activity.Metrics.s_opt_compilations
        w.w_activity.Metrics.s_async_installs
        w.w_activity.Metrics.s_method_samples)
    windows;
  Format.fprintf fmt "@]"
