module Interp = Acsi_vm.Interp
module Tier = Acsi_vm.Tier
module System = Acsi_aos.System
module Registry = Acsi_aos.Registry
module Dcg = Acsi_profile.Dcg
module Config = Acsi_core.Config
module Metrics = Acsi_core.Metrics
module Parallel = Acsi_core.Parallel

type shard_stat = {
  h_id : int;
  h_served : int;
  h_cycles : int;
  h_busy_last : int;
  h_slices : int;
  h_switches : int;
  h_max_live : int;
  h_max_resume_gap : int;
  h_steals_in : int;
  h_steals_out : int;
  h_opt_compilations : int;
  h_adopted : int;
  h_dcg_size : int;
}

type summary = {
  sh_workload : string;
  sh_policy : string;
  sh_shards : int;
  sh_sessions : int;
  sh_period : int;
  sh_pool : int;
  sh_pool_policy : string;
  sh_rounds : int;
  sh_makespan : int;
  sh_sum_cycles : int;
  sh_throughput_spmc : float;
  sh_mean_latency : float;
  sh_p50 : int;
  sh_p95 : int;
  sh_p99 : int;
  sh_max_latency : int;
  sh_steals : int;
  sh_fairness : float;
  sh_published : int;
  sh_adopted : int;
  sh_merged_dcg_size : int;
  sh_merged_dcg_weight : float;
  sh_output_checksum : int;
}

type result = {
  summary : summary;
  shard_stats : shard_stat list;
  publications : (Acsi_bytecode.Ids.Method_id.t * int) list;
  merged_dcg : Dcg.t;
  systems : System.t list;
}

(* One virtual processor. [sd_home] is the shard's slice of the global
   arrival schedule (ascending arrival; [sd_head] marks the next
   unadmitted entry) and [sd_stolen] holds sessions stolen from other
   shards at barriers. Sessions are (arrival, rid) tuples until
   admission spawns a virtual thread for them — which is what keeps a
   million-session backlog cheap. *)
type shard = {
  sd_id : int;
  sd_vm : Interp.t;
  sd_sys : System.t;
  sd_sched : Sched.t;
  sd_home : (int * int) array;
  mutable sd_head : int;
  sd_stolen : (int * int) Queue.t;
  sd_by_tid : (int, int * int) Hashtbl.t;
  mutable sd_latencies_rev : int list;
  mutable sd_served : int;
  mutable sd_steals_in : int;
  mutable sd_steals_out : int;
  mutable sd_busy_last : int;
  sd_pub_seen : int array;
}

(* A publish-once code-cache entry. [p_native] carries the publisher's
   closure-tier compilation: tier closures are VM-independent (runtime
   state flows through the interpreter's window-state record), so
   adopters install them directly instead of re-compiling. *)
type publication = {
  p_mid : Acsi_bytecode.Ids.Method_id.t;
  p_origin : int;
  p_code : Acsi_vm.Code.t;
  p_stats : Acsi_jit.Expand.stats;
  p_rule_stamp : int;
  p_native : (Interp.nfn array * int array) option;
}

let admit max_live sd =
  let now = Interp.cycles sd.sd_vm in
  let n_home = Array.length sd.sd_home in
  let rec go () =
    if Sched.live sd.sd_sched < max_live then begin
      let home_at =
        if sd.sd_head < n_home then fst sd.sd_home.(sd.sd_head) else max_int
      in
      let stolen_at =
        match Queue.peek_opt sd.sd_stolen with
        | Some (at, _) -> at
        | None -> max_int
      in
      if min home_at stolen_at <= now then begin
        let at, rid =
          if stolen_at <= home_at then Queue.pop sd.sd_stolen
          else begin
            let e = sd.sd_home.(sd.sd_head) in
            sd.sd_head <- sd.sd_head + 1;
            e
          end
        in
        let tid = Sched.spawn sd.sd_sched in
        Hashtbl.replace sd.sd_by_tid tid (rid, at);
        go ()
      end
    end
  in
  go ()

let finish_one sd tid =
  let finish = Interp.cycles sd.sd_vm in
  let _rid, arrival =
    match Hashtbl.find_opt sd.sd_by_tid tid with
    | Some x -> x
    | None -> assert false
  in
  Hashtbl.remove sd.sd_by_tid tid;
  sd.sd_latencies_rev <- (finish - arrival) :: sd.sd_latencies_rev;
  sd.sd_served <- sd.sd_served + 1;
  sd.sd_busy_last <- finish

(* Earliest arrival the shard still has queued (home or stolen). *)
let next_arrival sd =
  let home_at =
    if sd.sd_head < Array.length sd.sd_home then fst sd.sd_home.(sd.sd_head)
    else max_int
  in
  let stolen_at =
    match Queue.peek_opt sd.sd_stolen with
    | Some (at, _) -> at
    | None -> max_int
  in
  min home_at stolen_at

(* Run one shard up to the round's virtual-time limit. Touches only the
   shard's own state, so shards run on concurrent host domains; the
   spawn/join edges of [Parallel.map] order these mutations against the
   serial barrier work. An idle shard advances its clock to the next
   arrival (or the limit) — the processor waiting, exactly as in
   {!Server}. *)
let run_round max_live limit sd =
  let vm = sd.sd_vm in
  let rec loop () =
    admit max_live sd;
    if Interp.cycles vm < limit then
      match Sched.run_slice sd.sd_sched with
      | Some (tid, Interp.Done) ->
          finish_one sd tid;
          loop ()
      | Some (_, Interp.Running) -> loop ()
      | None ->
          let now = Interp.cycles vm in
          let target = min limit (max now (next_arrival sd)) in
          if target > now then Interp.charge vm (target - now);
          if target < limit then loop ()
  in
  loop ()

(* Due backlog: sessions whose arrival has passed but that are not yet
   admitted, plus live threads. Only the un-admitted part is movable. *)
let due_home sd =
  let now = Interp.cycles sd.sd_vm in
  let n = Array.length sd.sd_home in
  (* First index with arrival > now, binary search over the sorted
     suffix starting at sd_head. *)
  let lo = ref sd.sd_head and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst sd.sd_home.(mid) <= now then lo := mid + 1 else hi := mid
  done;
  !lo - sd.sd_head

let movable sd = due_home sd + Queue.length sd.sd_stolen

(* Deterministic work stealing at a barrier: greedily move the oldest
   due session from the most-backlogged shard to the least-backlogged
   one until the spread is <= 1. Victim/thief scans rotate by a
   splitmix hash of (seed, round) so tie-breaks do not systematically
   favour low shard ids. Stolen sessions keep their arrival, so
   latencies still measure from the original arrival. *)
let steal_pass shards ~seed ~round =
  let n = Array.length shards in
  if n > 1 then begin
    let offset =
      Load.next_rand (seed + ((round + 1) * 0x9E3779B9)) mod n
    in
    let offset = if offset < 0 then -offset else offset in
    let backlog = Array.map (fun sd -> movable sd + Sched.live sd.sd_sched) shards in
    let mov = Array.map movable shards in
    let continue_ = ref true in
    while !continue_ do
      let victim = ref (-1) and thief = ref (-1) in
      for k = 0 to n - 1 do
        let i = (offset + k) mod n in
        if mov.(i) > 0 && (!victim < 0 || backlog.(i) > backlog.(!victim))
        then victim := i;
        if !thief < 0 || backlog.(i) < backlog.(!thief) then thief := i
      done;
      if
        !victim >= 0 && !thief >= 0 && !victim <> !thief
        && backlog.(!victim) >= backlog.(!thief) + 2
      then begin
        let v = shards.(!victim) and t = shards.(!thief) in
        let session =
          (* Oldest due session first: compare the two queue heads. *)
          let home_at =
            if v.sd_head < Array.length v.sd_home then
              fst v.sd_home.(v.sd_head)
            else max_int
          in
          match Queue.peek_opt v.sd_stolen with
          | Some (at, _) when at <= home_at -> Queue.pop v.sd_stolen
          | _ ->
              let e = v.sd_home.(v.sd_head) in
              v.sd_head <- v.sd_head + 1;
              e
        in
        Queue.add session t.sd_stolen;
        v.sd_steals_out <- v.sd_steals_out + 1;
        t.sd_steals_in <- t.sd_steals_in + 1;
        backlog.(!victim) <- backlog.(!victim) - 1;
        mov.(!victim) <- mov.(!victim) - 1;
        backlog.(!thief) <- backlog.(!thief) + 1;
        mov.(!thief) <- mov.(!thief) + 1
      end
      else continue_ := false
    done
  end

(* Publish-once code cache. After each round, every shard's registry is
   scanned (in shard-id order, methods ascending) for versions not seen
   at the previous barrier; the first shard to have compiled a method
   publishes its code, stats and — when the tier took it — its closure
   compilation. Later compiles of an already-published method stay
   local. *)
let collect_publications published shards pubs_rev =
  Array.iter
    (fun sd ->
      let reg = System.registry sd.sd_sys in
      let fresh = ref [] in
      Registry.iter reg ~f:(fun mid entry ->
          if entry.Registry.version > sd.sd_pub_seen.((mid :> int)) then
            fresh := (mid, entry) :: !fresh);
      let fresh =
        List.sort (fun ((a : Acsi_bytecode.Ids.Method_id.t), _) (b, _) ->
            compare (a :> int) (b :> int))
          !fresh
      in
      List.iter
        (fun ((mid : Acsi_bytecode.Ids.Method_id.t), entry) ->
          sd.sd_pub_seen.((mid :> int)) <- entry.Registry.version;
          if not (Hashtbl.mem published (mid :> int)) then begin
            let code = Interp.code_of sd.sd_vm mid in
            let native =
              if Interp.native_installed sd.sd_vm mid then
                match Tier.compile sd.sd_vm code with
                | r -> Some r
                | exception _ -> None
              else None
            in
            let p =
              {
                p_mid = mid;
                p_origin = sd.sd_id;
                p_code = code;
                p_stats = entry.Registry.stats;
                p_rule_stamp = entry.Registry.rule_stamp;
                p_native = native;
              }
            in
            Hashtbl.add published (mid :> int) p;
            pubs_rev := p :: !pubs_rev
          end)
        fresh)
    shards

(* Adopt published code on every shard that has executed the method but
   never opt-compiled it. Runs every barrier, so a shard that first
   touches a method later still adopts at the next barrier. *)
let adopt_published published shards =
  let pubs =
    Hashtbl.fold (fun _ p acc -> p :: acc) published []
    |> List.sort (fun a b -> compare (a.p_mid :> int) (b.p_mid :> int))
  in
  Array.iter
    (fun sd ->
      List.iter
        (fun p ->
          if
            sd.sd_id <> p.p_origin
            && Registry.entry (System.registry sd.sd_sys) p.p_mid = None
            && Interp.was_executed sd.sd_vm p.p_mid
          then begin
            System.adopt_compiled sd.sd_sys p.p_mid p.p_code p.p_stats
              ~rule_stamp:p.p_rule_stamp ~native:p.p_native;
            sd.sd_pub_seen.((p.p_mid :> int)) <-
              (match Registry.entry (System.registry sd.sd_sys) p.p_mid with
              | Some e -> e.Registry.version
              | None -> 0)
          end)
        pubs)
    shards

let run ?(quantum = 25_000) ?(switch_cost = 200) ?(seed = 1) ?(jobs = 1)
    ?(barrier = 2_000_000) ?(max_live = 64) ?(hot_shard_weight = 2)
    ?(pool = 1) ?(pool_policy = System.Fifo) ~shards:n_shards ~sessions
    ~period ~name (cfg : Config.t) program =
  if n_shards <= 0 then invalid_arg "Shards.run: shards must be positive";
  if sessions <= 0 then invalid_arg "Shards.run: no sessions";
  let barrier = max quantum barrier in
  (* Global open-loop arrival schedule, then a deliberately skewed
     home-shard hash: shard 0 draws [hot_shard_weight] shares, every
     other shard one — a front-end router with a hot shard, the
     imbalance work stealing exists to fix. *)
  let arrivals = Load.open_loop_arrivals ~seed ~period ~n:sessions in
  let weight = max 1 hot_shard_weight in
  let total_shares = weight + (n_shards - 1) in
  let home = Array.make sessions 0 in
  let st = ref (Load.next_rand (seed lxor 0x2545F4914F6CDD1D)) in
  for rid = 0 to sessions - 1 do
    st := Load.next_rand !st;
    (if n_shards > 1 then
       let pick = !st mod total_shares in
       home.(rid) <-
         (if pick < weight then 0 else 1 + ((pick - weight) mod (n_shards - 1))))
  done;
  let n_methods = Acsi_bytecode.Program.method_count program in
  let mk_shard id =
    let vm =
      Interp.create ~cost:cfg.Config.cost
        ~sample_period:cfg.Config.sample_period
        ~invoke_stride:cfg.Config.invoke_stride program
    in
    let aos =
      {
        cfg.Config.aos with
        System.async_compile = true;
        compiler_pool = pool;
        compile_queue_policy = pool_policy;
      }
    in
    let sys = System.create aos vm in
    let sched =
      (* Sharded runs outlive the single-run default cycle budget by
         design (millions of sessions), so the per-resume limit is
         effectively unbounded; the barrier loop is the budget. *)
      Sched.create ~quantum ~switch_cost ~cycle_limit:max_int
        ~on_switch:(fun () -> System.poll_async_installs sys)
        vm
    in
    let mine = ref [] in
    for rid = sessions - 1 downto 0 do
      if home.(rid) = id then mine := (arrivals.(rid), rid) :: !mine
    done;
    {
      sd_id = id;
      sd_vm = vm;
      sd_sys = sys;
      sd_sched = sched;
      sd_home = Array.of_list !mine;
      sd_head = 0;
      sd_stolen = Queue.create ();
      sd_by_tid = Hashtbl.create 64;
      sd_latencies_rev = [];
      sd_served = 0;
      sd_steals_in = 0;
      sd_steals_out = 0;
      sd_busy_last = 0;
      sd_pub_seen = Array.make n_methods 0;
    }
  in
  let shards = Array.init n_shards mk_shard in
  let published : (int, publication) Hashtbl.t = Hashtbl.create 64 in
  let pubs_rev = ref [] in
  let total_served () =
    Array.fold_left (fun acc sd -> acc + sd.sd_served) 0 shards
  in
  let round = ref 0 in
  while total_served () < sessions do
    let limit = (!round + 1) * barrier in
    ignore
      (Parallel.map ~jobs:(min jobs n_shards)
         (fun sd ->
           run_round max_live limit sd;
           ())
         (Array.to_list shards));
    (* Serial barrier, shard-id order: publications, adoptions, steals.
       (The global DCG view is rebuilt once at the end — merging is
       associative over barriers, and organizers read shard-local DCGs
       during rounds.) *)
    collect_publications published shards pubs_rev;
    adopt_published published shards;
    steal_pass shards ~seed ~round:!round;
    incr round
  done;
  let merged_dcg = Dcg.create () in
  Array.iter (fun sd -> Dcg.merge ~into:merged_dcg (System.dcg sd.sd_sys)) shards;
  let latencies =
    Array.concat
      (Array.to_list
         (Array.map
            (fun sd -> Array.of_list (List.rev sd.sd_latencies_rev))
            shards))
  in
  let makespan = Array.fold_left (fun acc sd -> max acc sd.sd_busy_last) 0 shards in
  let sum_cycles =
    Array.fold_left (fun acc sd -> acc + Interp.cycles sd.sd_vm) 0 shards
  in
  let served_min =
    Array.fold_left (fun acc sd -> min acc sd.sd_served) max_int shards
  in
  let served_max =
    Array.fold_left (fun acc sd -> max acc sd.sd_served) 0 shards
  in
  let checksum =
    Array.fold_left
      (fun acc sd ->
        (acc * 31) + Metrics.checksum (Interp.output sd.sd_vm) + 17)
      0 shards
    land max_int
  in
  let publications =
    List.rev_map (fun p -> (p.p_mid, p.p_origin)) !pubs_rev
  in
  let adopted =
    Array.fold_left (fun acc sd -> acc + System.adopted_installs sd.sd_sys) 0
      shards
  in
  let shard_stats =
    Array.to_list
      (Array.map
         (fun sd ->
           {
             h_id = sd.sd_id;
             h_served = sd.sd_served;
             h_cycles = Interp.cycles sd.sd_vm;
             h_busy_last = sd.sd_busy_last;
             h_slices = Sched.slices sd.sd_sched;
             h_switches = Sched.switches sd.sd_sched;
             h_max_live = Sched.max_live sd.sd_sched;
             h_max_resume_gap = Sched.max_resume_gap sd.sd_sched;
             h_steals_in = sd.sd_steals_in;
             h_steals_out = sd.sd_steals_out;
             h_opt_compilations =
               Registry.opt_compilation_count (System.registry sd.sd_sys);
             h_adopted = System.adopted_installs sd.sd_sys;
             h_dcg_size = Dcg.size (System.dcg sd.sd_sys);
           })
         shards)
  in
  let summary =
    {
      sh_workload = name;
      sh_policy = Acsi_policy.Policy.to_string cfg.Config.aos.System.policy;
      sh_shards = n_shards;
      sh_sessions = sessions;
      sh_period = period;
      sh_pool = max 1 pool;
      sh_pool_policy = System.queue_policy_name pool_policy;
      sh_rounds = !round;
      sh_makespan = makespan;
      sh_sum_cycles = sum_cycles;
      sh_throughput_spmc =
        float_of_int sessions *. 1_000_000.0 /. float_of_int (max 1 makespan);
      sh_mean_latency = Load.mean latencies;
      sh_p50 = Load.percentile latencies 50.0;
      sh_p95 = Load.percentile latencies 95.0;
      sh_p99 = Load.percentile latencies 99.0;
      sh_max_latency = Array.fold_left max 0 latencies;
      sh_steals =
        Array.fold_left (fun acc sd -> acc + sd.sd_steals_in) 0 shards;
      sh_fairness =
        float_of_int served_max /. float_of_int (max 1 served_min);
      sh_published = List.length publications;
      sh_adopted = adopted;
      sh_merged_dcg_size = Dcg.size merged_dcg;
      sh_merged_dcg_weight = Dcg.total_weight merged_dcg;
      sh_output_checksum = checksum;
    }
  in
  {
    summary;
    shard_stats;
    publications;
    merged_dcg;
    systems = Array.to_list (Array.map (fun sd -> sd.sd_sys) shards);
  }

let pp_summary fmt s =
  let f = Format.fprintf in
  f fmt "@[<v>workload             %s (%d sessions, period %d)@,"
    s.sh_workload s.sh_sessions s.sh_period;
  f fmt "policy               %s@," s.sh_policy;
  f fmt "shards               %d (pool %d, %s queue)@," s.sh_shards s.sh_pool
    s.sh_pool_policy;
  f fmt "rounds               %d barriers@," s.sh_rounds;
  f fmt "makespan             %d cycles (sum over shards %d)@," s.sh_makespan
    s.sh_sum_cycles;
  f fmt "throughput           %.3f sessions/Mcycle@," s.sh_throughput_spmc;
  f fmt "latency              mean %.0f  p50 %d  p95 %d  p99 %d  max %d@,"
    s.sh_mean_latency s.sh_p50 s.sh_p95 s.sh_p99 s.sh_max_latency;
  f fmt "stealing             %d sessions moved@," s.sh_steals;
  f fmt "fairness             %.3f max/min served per shard@," s.sh_fairness;
  f fmt "code cache           %d published, %d adopted@," s.sh_published
    s.sh_adopted;
  f fmt "merged dcg           %d traces, total weight %.1f@,"
    s.sh_merged_dcg_size s.sh_merged_dcg_weight;
  f fmt "output checksum      %d@]" s.sh_output_checksum

let pp_shards fmt stats =
  Format.fprintf fmt "@[<v>%-6s %9s %12s %8s %8s %9s %9s %5s %9s %8s@,"
    "shard" "served" "cycles" "in" "out" "compiles" "adopted" "gap"
    "max-live" "dcg";
  List.iter
    (fun h ->
      Format.fprintf fmt "%-6d %9d %12d %8d %8d %9d %9d %5d %9d %8d@," h.h_id
        h.h_served h.h_cycles h.h_steals_in h.h_steals_out
        h.h_opt_compilations h.h_adopted h.h_max_resume_gap h.h_max_live
        h.h_dcg_size)
    stats;
  Format.fprintf fmt "@]"
