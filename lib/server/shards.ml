module Interp = Acsi_vm.Interp
module Tier = Acsi_vm.Tier
module System = Acsi_aos.System
module Registry = Acsi_aos.Registry
module Dcg = Acsi_profile.Dcg
module Config = Acsi_core.Config
module Metrics = Acsi_core.Metrics
module Parallel = Acsi_core.Parallel

type shard_stat = {
  h_id : int;
  h_served : int;
  h_cycles : int;
  h_busy_last : int;
  h_slices : int;
  h_switches : int;
  h_max_live : int;
  h_max_resume_gap : int;
  h_steals_in : int;
  h_steals_out : int;
  h_opt_compilations : int;
  h_adopted : int;
  h_dcg_size : int;
}

type summary = {
  sh_workload : string;
  sh_policy : string;
  sh_shards : int;
  sh_sessions : int;
  sh_period : int;
  sh_pool : int;
  sh_pool_policy : string;
  sh_rounds : int;
  sh_makespan : int;
  sh_sum_cycles : int;
  sh_throughput_spmc : float;
  sh_mean_latency : float;
  sh_p50 : int;
  sh_p95 : int;
  sh_p99 : int;
  sh_max_latency : int;
  sh_steals : int;
  sh_fairness : float;
  sh_published : int;
  sh_adopted : int;
  sh_merged_dcg_size : int;
  sh_merged_dcg_weight : float;
  sh_output_checksum : int;
}

(* --- fleet telemetry ------------------------------------------------ *)

type flow_kind = Steal | Adopt | Deopt | Invalidate

(* One half of a cross-shard flow arrow. The two halves of an arrow
   share [f_id]; [f_key] is the session rid for steals and the method id
   for adopt/deopt flows. All emission happens in the serial barrier
   section in shard-id order, so the flow log is byte-identical across
   [--jobs]. *)
type flow = {
  f_kind : flow_kind;
  f_id : int;
  f_dir : Acsi_obs.Tracer.flow_dir;
  f_shard : int;
  f_t : int;
  f_key : int;
}

let flow_name = function
  | Steal -> "steal"
  | Adopt -> "adopt"
  | Deopt -> "deopt"
  | Invalidate -> "invalidate"

type telemetry = {
  tel_interval : int;
  tel_series : Acsi_obs.Timeseries.t array;  (* one per shard *)
  tel_latency : Acsi_obs.Hist.t array;  (* one per shard *)
  tel_latency_all : Acsi_obs.Hist.t;
  tel_steal_distance : Acsi_obs.Hist.t;
  tel_compile_wait : Acsi_obs.Hist.t;
  tel_deopt_gap : Acsi_obs.Hist.t;
  tel_flows : flow list;  (* emission order; Out precedes its In *)
}

let telemetry_columns =
  [
    "live"; "backlog"; "compile_queue"; "in_flight"; "served"; "steals_in";
    "steals_out"; "adopted"; "samples"; "deopts";
  ]

(* Mutable telemetry state threaded through the barrier passes. *)
type tel_ctx = {
  mutable tc_flows : flow list;  (* newest first *)
  mutable tc_next_id : int;
  tc_dist : Acsi_obs.Hist.t;
}

let tel_flow tc kind ~out_shard ~out_t ~in_shard ~in_t ~key =
  let id = tc.tc_next_id in
  tc.tc_next_id <- id + 1;
  tc.tc_flows <-
    {
      f_kind = kind;
      f_id = id;
      f_dir = Acsi_obs.Tracer.In;
      f_shard = in_shard;
      f_t = in_t;
      f_key = key;
    }
    :: {
         f_kind = kind;
         f_id = id;
         f_dir = Acsi_obs.Tracer.Out;
         f_shard = out_shard;
         f_t = out_t;
         f_key = key;
       }
    :: tc.tc_flows

type result = {
  summary : summary;
  shard_stats : shard_stat list;
  publications : (Acsi_bytecode.Ids.Method_id.t * int) list;
  merged_dcg : Dcg.t;
  systems : System.t list;
  telemetry : telemetry;
}

(* One virtual processor. [sd_home] is the shard's slice of the global
   arrival schedule (ascending arrival; [sd_head] marks the next
   unadmitted entry) and [sd_stolen] holds sessions stolen from other
   shards at barriers. Sessions are (arrival, rid) tuples until
   admission spawns a virtual thread for them — which is what keeps a
   million-session backlog cheap. *)
type shard = {
  sd_id : int;
  sd_vm : Interp.t;
  sd_sys : System.t;
  sd_sched : Sched.t;
  sd_home : (int * int) array;
  mutable sd_head : int;
  sd_stolen : (int * int) Queue.t;
  sd_by_tid : (int, int * int) Hashtbl.t;
  mutable sd_latencies_rev : int list;
  mutable sd_served : int;
  mutable sd_steals_in : int;
  mutable sd_steals_out : int;
  mutable sd_busy_last : int;
  sd_pub_seen : int array;
  sd_latency_hist : Acsi_obs.Hist.t;
}

(* A publish-once code-cache entry. [p_native] carries the publisher's
   closure-tier compilation: tier closures are VM-independent (runtime
   state flows through the interpreter's window-state record), so
   adopters install them directly instead of re-compiling. *)
type publication = {
  p_mid : Acsi_bytecode.Ids.Method_id.t;
  p_origin : int;
  p_code : Acsi_vm.Code.t;
  p_stats : Acsi_jit.Expand.stats;
  p_rule_stamp : int;
  p_native : (Interp.nfn array * int array) option;
}

let admit max_live sd =
  let now = Interp.cycles sd.sd_vm in
  let n_home = Array.length sd.sd_home in
  let rec go () =
    if Sched.live sd.sd_sched < max_live then begin
      let home_at =
        if sd.sd_head < n_home then fst sd.sd_home.(sd.sd_head) else max_int
      in
      let stolen_at =
        match Queue.peek_opt sd.sd_stolen with
        | Some (at, _) -> at
        | None -> max_int
      in
      if min home_at stolen_at <= now then begin
        let at, rid =
          if stolen_at <= home_at then Queue.pop sd.sd_stolen
          else begin
            let e = sd.sd_home.(sd.sd_head) in
            sd.sd_head <- sd.sd_head + 1;
            e
          end
        in
        let tid = Sched.spawn sd.sd_sched in
        Hashtbl.replace sd.sd_by_tid tid (rid, at);
        go ()
      end
    end
  in
  go ()

let finish_one sd tid =
  let finish = Interp.cycles sd.sd_vm in
  let _rid, arrival =
    match Hashtbl.find_opt sd.sd_by_tid tid with
    | Some x -> x
    | None -> assert false
  in
  Hashtbl.remove sd.sd_by_tid tid;
  sd.sd_latencies_rev <- (finish - arrival) :: sd.sd_latencies_rev;
  Acsi_obs.Hist.record sd.sd_latency_hist (finish - arrival);
  sd.sd_served <- sd.sd_served + 1;
  sd.sd_busy_last <- finish

(* Earliest arrival the shard still has queued (home or stolen). *)
let next_arrival sd =
  let home_at =
    if sd.sd_head < Array.length sd.sd_home then fst sd.sd_home.(sd.sd_head)
    else max_int
  in
  let stolen_at =
    match Queue.peek_opt sd.sd_stolen with
    | Some (at, _) -> at
    | None -> max_int
  in
  min home_at stolen_at

(* Run one shard up to the round's virtual-time limit. Touches only the
   shard's own state, so shards run on concurrent host domains; the
   spawn/join edges of [Parallel.map] order these mutations against the
   serial barrier work. An idle shard advances its clock to the next
   arrival (or the limit) — the processor waiting, exactly as in
   {!Server}. *)
let run_round max_live limit sd =
  let vm = sd.sd_vm in
  let rec loop () =
    admit max_live sd;
    if Interp.cycles vm < limit then
      match Sched.run_slice sd.sd_sched with
      | Some (tid, Interp.Done) ->
          finish_one sd tid;
          loop ()
      | Some (_, Interp.Running) -> loop ()
      | None ->
          let now = Interp.cycles vm in
          let target = min limit (max now (next_arrival sd)) in
          if target > now then Interp.charge vm (target - now);
          if target < limit then loop ()
  in
  loop ()

(* Due backlog: sessions whose arrival has passed but that are not yet
   admitted, plus live threads. Only the un-admitted part is movable. *)
let due_home sd =
  let now = Interp.cycles sd.sd_vm in
  let n = Array.length sd.sd_home in
  (* First index with arrival > now, binary search over the sorted
     suffix starting at sd_head. *)
  let lo = ref sd.sd_head and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst sd.sd_home.(mid) <= now then lo := mid + 1 else hi := mid
  done;
  !lo - sd.sd_head

let movable sd = due_home sd + Queue.length sd.sd_stolen

(* Deterministic work stealing at a barrier: greedily move the oldest
   due session from the most-backlogged shard to the least-backlogged
   one until the spread is <= 1. Victim/thief scans rotate by a
   splitmix hash of (seed, round) so tie-breaks do not systematically
   favour low shard ids. Stolen sessions keep their arrival, so
   latencies still measure from the original arrival. *)
let steal_pass shards ~seed ~round ~now ~tel =
  let n = Array.length shards in
  if n > 1 then begin
    let offset =
      Load.next_rand (seed + ((round + 1) * 0x9E3779B9)) mod n
    in
    let offset = if offset < 0 then -offset else offset in
    let backlog = Array.map (fun sd -> movable sd + Sched.live sd.sd_sched) shards in
    let mov = Array.map movable shards in
    let continue_ = ref true in
    while !continue_ do
      let victim = ref (-1) and thief = ref (-1) in
      for k = 0 to n - 1 do
        let i = (offset + k) mod n in
        if mov.(i) > 0 && (!victim < 0 || backlog.(i) > backlog.(!victim))
        then victim := i;
        if !thief < 0 || backlog.(i) < backlog.(!thief) then thief := i
      done;
      if
        !victim >= 0 && !thief >= 0 && !victim <> !thief
        && backlog.(!victim) >= backlog.(!thief) + 2
      then begin
        let v = shards.(!victim) and t = shards.(!thief) in
        let session =
          (* Oldest due session first: compare the two queue heads. *)
          let home_at =
            if v.sd_head < Array.length v.sd_home then
              fst v.sd_home.(v.sd_head)
            else max_int
          in
          match Queue.peek_opt v.sd_stolen with
          | Some (at, _) when at <= home_at -> Queue.pop v.sd_stolen
          | _ ->
              let e = v.sd_home.(v.sd_head) in
              v.sd_head <- v.sd_head + 1;
              e
        in
        Queue.add session t.sd_stolen;
        v.sd_steals_out <- v.sd_steals_out + 1;
        t.sd_steals_in <- t.sd_steals_in + 1;
        (* Flow arrow from victim to thief at barrier time; steal
           distance is the shard-index hop the session made. *)
        tel_flow tel Steal ~out_shard:!victim ~out_t:now ~in_shard:!thief
          ~in_t:now ~key:(snd session);
        Acsi_obs.Hist.record tel.tc_dist (abs (!victim - !thief));
        backlog.(!victim) <- backlog.(!victim) - 1;
        mov.(!victim) <- mov.(!victim) - 1;
        backlog.(!thief) <- backlog.(!thief) + 1;
        mov.(!thief) <- mov.(!thief) + 1
      end
      else continue_ := false
    done
  end

(* Publish-once code cache. After each round, every shard's registry is
   scanned (in shard-id order, methods ascending) for versions not seen
   at the previous barrier; the first shard to have compiled a method
   publishes its code, stats and — when the tier took it — its closure
   compilation. Later compiles of an already-published method stay
   local. *)
let collect_publications published shards pubs_rev =
  Array.iter
    (fun sd ->
      let reg = System.registry sd.sd_sys in
      let fresh = ref [] in
      Registry.iter reg ~f:(fun mid entry ->
          if entry.Registry.version > sd.sd_pub_seen.((mid :> int)) then
            fresh := (mid, entry) :: !fresh);
      let fresh =
        List.sort (fun ((a : Acsi_bytecode.Ids.Method_id.t), _) (b, _) ->
            compare (a :> int) (b :> int))
          !fresh
      in
      List.iter
        (fun ((mid : Acsi_bytecode.Ids.Method_id.t), entry) ->
          sd.sd_pub_seen.((mid :> int)) <- entry.Registry.version;
          if not (Hashtbl.mem published (mid :> int)) then begin
            let code = Interp.code_of sd.sd_vm mid in
            let native =
              if Interp.native_installed sd.sd_vm mid then
                match Tier.compile sd.sd_vm code with
                | r -> Some r
                | exception _ -> None
              else None
            in
            let p =
              {
                p_mid = mid;
                p_origin = sd.sd_id;
                p_code = code;
                p_stats = entry.Registry.stats;
                p_rule_stamp = entry.Registry.rule_stamp;
                p_native = native;
              }
            in
            Hashtbl.add published (mid :> int) p;
            pubs_rev := p :: !pubs_rev
          end)
        fresh)
    shards

(* Adopt published code on every shard that has executed the method but
   never opt-compiled it. Runs every barrier, so a shard that first
   touches a method later still adopts at the next barrier. *)
let adopt_published published shards ~now ~tel =
  let pubs =
    Hashtbl.fold (fun _ p acc -> p :: acc) published []
    |> List.sort (fun a b -> compare (a.p_mid :> int) (b.p_mid :> int))
  in
  Array.iter
    (fun sd ->
      List.iter
        (fun p ->
          if
            sd.sd_id <> p.p_origin
            && Registry.entry (System.registry sd.sd_sys) p.p_mid = None
            && Interp.was_executed sd.sd_vm p.p_mid
          then begin
            System.adopt_compiled sd.sd_sys p.p_mid p.p_code p.p_stats
              ~rule_stamp:p.p_rule_stamp ~native:p.p_native;
            tel_flow tel Adopt ~out_shard:p.p_origin ~out_t:now
              ~in_shard:sd.sd_id ~in_t:now
              ~key:(p.p_mid :> int);
            sd.sd_pub_seen.((p.p_mid :> int)) <-
              (match Registry.entry (System.registry sd.sd_sys) p.p_mid with
              | Some e -> e.Registry.version
              | None -> 0)
          end)
        pubs)
    shards

let run ?(quantum = 25_000) ?(switch_cost = 200) ?(seed = 1) ?(jobs = 1)
    ?(barrier = 2_000_000) ?(max_live = 64) ?(hot_shard_weight = 2)
    ?(pool = 1) ?(pool_policy = System.Fifo) ~shards:n_shards ~sessions
    ~period ~name (cfg : Config.t) program =
  if n_shards <= 0 then invalid_arg "Shards.run: shards must be positive";
  if sessions <= 0 then invalid_arg "Shards.run: no sessions";
  let barrier = max quantum barrier in
  (* Global open-loop arrival schedule, then a deliberately skewed
     home-shard hash: shard 0 draws [hot_shard_weight] shares, every
     other shard one — a front-end router with a hot shard, the
     imbalance work stealing exists to fix. *)
  let arrivals = Load.open_loop_arrivals ~seed ~period ~n:sessions in
  let weight = max 1 hot_shard_weight in
  let total_shares = weight + (n_shards - 1) in
  let home = Array.make sessions 0 in
  let st = ref (Load.next_rand (seed lxor 0x2545F4914F6CDD1D)) in
  for rid = 0 to sessions - 1 do
    st := Load.next_rand !st;
    (if n_shards > 1 then
       let pick = !st mod total_shares in
       home.(rid) <-
         (if pick < weight then 0 else 1 + ((pick - weight) mod (n_shards - 1))))
  done;
  let n_methods = Acsi_bytecode.Program.method_count program in
  let mk_shard id =
    let vm =
      Interp.create ~cost:cfg.Config.cost
        ~sample_period:cfg.Config.sample_period
        ~invoke_stride:cfg.Config.invoke_stride program
    in
    let aos =
      {
        cfg.Config.aos with
        System.async_compile = true;
        compiler_pool = pool;
        compile_queue_policy = pool_policy;
      }
    in
    let sys = System.create aos vm in
    (* Telemetry event log on: drained every barrier (below), so it
       stays bounded by one round's deopt activity. *)
    System.set_telemetry_events sys true;
    let sched =
      (* Sharded runs outlive the single-run default cycle budget by
         design (millions of sessions), so the per-resume limit is
         effectively unbounded; the barrier loop is the budget. *)
      Sched.create ~quantum ~switch_cost ~cycle_limit:max_int
        ~on_switch:(fun () -> System.poll_async_installs sys)
        vm
    in
    let mine = ref [] in
    for rid = sessions - 1 downto 0 do
      if home.(rid) = id then mine := (arrivals.(rid), rid) :: !mine
    done;
    {
      sd_id = id;
      sd_vm = vm;
      sd_sys = sys;
      sd_sched = sched;
      sd_home = Array.of_list !mine;
      sd_head = 0;
      sd_stolen = Queue.create ();
      sd_by_tid = Hashtbl.create 64;
      sd_latencies_rev = [];
      sd_served = 0;
      sd_steals_in = 0;
      sd_steals_out = 0;
      sd_busy_last = 0;
      sd_pub_seen = Array.make n_methods 0;
      sd_latency_hist = Acsi_obs.Hist.create ();
    }
  in
  let shards = Array.init n_shards mk_shard in
  let published : (int, publication) Hashtbl.t = Hashtbl.create 64 in
  let pubs_rev = ref [] in
  let tel =
    { tc_flows = []; tc_next_id = 1; tc_dist = Acsi_obs.Hist.create () }
  in
  let series =
    Array.init n_shards (fun _ ->
        Acsi_obs.Timeseries.create ~interval:barrier
          ~columns:telemetry_columns)
  in
  (* Open deopt windows per (shard, mid): a flow arrow is emitted only
     when the matching reinstall closes the window, so every Out half
     has exactly one In half by construction. *)
  let open_deopts : (int * int, int * bool) Hashtbl.t = Hashtbl.create 16 in
  let drain_deopt_flows () =
    Array.iter
      (fun sd ->
        List.iter
          (fun (ev : System.tel_event) ->
            match ev with
            | System.Tel_deopt { mid; at; invalidated } ->
                Hashtbl.replace open_deopts (sd.sd_id, mid) (at, invalidated)
            | System.Tel_reinstall { mid; at; gap = _ } -> (
                match Hashtbl.find_opt open_deopts (sd.sd_id, mid) with
                | Some (t0, invalidated) ->
                    Hashtbl.remove open_deopts (sd.sd_id, mid);
                    tel_flow tel
                      (if invalidated then Invalidate else Deopt)
                      ~out_shard:sd.sd_id ~out_t:t0 ~in_shard:sd.sd_id
                      ~in_t:at ~key:mid
                | None -> ()))
          (System.take_telemetry_events sd.sd_sys))
      shards
  in
  let sample_series limit =
    Array.iteri
      (fun i sd ->
        Acsi_obs.Timeseries.sample series.(i) ~now:limit
          [|
            Sched.live sd.sd_sched;
            movable sd;
            System.compile_queue_depth sd.sd_sys;
            System.in_flight_compiles sd.sd_sys;
            sd.sd_served;
            sd.sd_steals_in;
            sd.sd_steals_out;
            System.adopted_installs sd.sd_sys;
            System.method_samples_taken sd.sd_sys;
            Interp.deopt_guard_count sd.sd_vm
            + Interp.deopt_invalidate_count sd.sd_vm;
          |])
      shards
  in
  let total_served () =
    Array.fold_left (fun acc sd -> acc + sd.sd_served) 0 shards
  in
  let round = ref 0 in
  while total_served () < sessions do
    let limit = (!round + 1) * barrier in
    ignore
      (Parallel.map ~jobs:(min jobs n_shards)
         (fun sd ->
           run_round max_live limit sd;
           ())
         (Array.to_list shards));
    (* Serial barrier, shard-id order: publications, adoptions, steals,
       then telemetry — deopt flow arrows drained from the shard
       systems and one time-series row per shard at the barrier stamp.
       (The global DCG view is rebuilt once at the end — merging is
       associative over barriers, and organizers read shard-local DCGs
       during rounds.) *)
    collect_publications published shards pubs_rev;
    adopt_published published shards ~now:limit ~tel;
    steal_pass shards ~seed ~round:!round ~now:limit ~tel;
    drain_deopt_flows ();
    sample_series limit;
    incr round
  done;
  let merged_dcg = Dcg.create () in
  Array.iter (fun sd -> Dcg.merge ~into:merged_dcg (System.dcg sd.sd_sys)) shards;
  let latencies =
    Array.concat
      (Array.to_list
         (Array.map
            (fun sd -> Array.of_list (List.rev sd.sd_latencies_rev))
            shards))
  in
  let makespan = Array.fold_left (fun acc sd -> max acc sd.sd_busy_last) 0 shards in
  let sum_cycles =
    Array.fold_left (fun acc sd -> acc + Interp.cycles sd.sd_vm) 0 shards
  in
  let served_min =
    Array.fold_left (fun acc sd -> min acc sd.sd_served) max_int shards
  in
  let served_max =
    Array.fold_left (fun acc sd -> max acc sd.sd_served) 0 shards
  in
  let checksum =
    Array.fold_left
      (fun acc sd ->
        (acc * 31) + Metrics.checksum (Interp.output sd.sd_vm) + 17)
      0 shards
    land max_int
  in
  let publications =
    List.rev_map (fun p -> (p.p_mid, p.p_origin)) !pubs_rev
  in
  let adopted =
    Array.fold_left (fun acc sd -> acc + System.adopted_installs sd.sd_sys) 0
      shards
  in
  let shard_stats =
    Array.to_list
      (Array.map
         (fun sd ->
           {
             h_id = sd.sd_id;
             h_served = sd.sd_served;
             h_cycles = Interp.cycles sd.sd_vm;
             h_busy_last = sd.sd_busy_last;
             h_slices = Sched.slices sd.sd_sched;
             h_switches = Sched.switches sd.sd_sched;
             h_max_live = Sched.max_live sd.sd_sched;
             h_max_resume_gap = Sched.max_resume_gap sd.sd_sched;
             h_steals_in = sd.sd_steals_in;
             h_steals_out = sd.sd_steals_out;
             h_opt_compilations =
               Registry.opt_compilation_count (System.registry sd.sd_sys);
             h_adopted = System.adopted_installs sd.sd_sys;
             h_dcg_size = Dcg.size (System.dcg sd.sd_sys);
           })
         shards)
  in
  let summary =
    {
      sh_workload = name;
      sh_policy = Acsi_policy.Policy.to_string cfg.Config.aos.System.policy;
      sh_shards = n_shards;
      sh_sessions = sessions;
      sh_period = period;
      sh_pool = max 1 pool;
      sh_pool_policy = System.queue_policy_name pool_policy;
      sh_rounds = !round;
      sh_makespan = makespan;
      sh_sum_cycles = sum_cycles;
      sh_throughput_spmc =
        float_of_int sessions *. 1_000_000.0 /. float_of_int (max 1 makespan);
      sh_mean_latency = Load.mean latencies;
      sh_p50 = Load.percentile latencies 50.0;
      sh_p95 = Load.percentile latencies 95.0;
      sh_p99 = Load.percentile latencies 99.0;
      sh_max_latency = Array.fold_left max 0 latencies;
      sh_steals =
        Array.fold_left (fun acc sd -> acc + sd.sd_steals_in) 0 shards;
      sh_fairness =
        float_of_int served_max /. float_of_int (max 1 served_min);
      sh_published = List.length publications;
      sh_adopted = adopted;
      sh_merged_dcg_size = Dcg.size merged_dcg;
      sh_merged_dcg_weight = Dcg.total_weight merged_dcg;
      sh_output_checksum = checksum;
    }
  in
  let telemetry =
    let latency_all = Acsi_obs.Hist.create () in
    let compile_wait = Acsi_obs.Hist.create () in
    let deopt_gap = Acsi_obs.Hist.create () in
    Array.iter
      (fun sd ->
        Acsi_obs.Hist.merge ~into:latency_all sd.sd_latency_hist;
        Acsi_obs.Hist.merge ~into:compile_wait
          (System.compile_wait_hist sd.sd_sys);
        Acsi_obs.Hist.merge ~into:deopt_gap (System.deopt_gap_hist sd.sd_sys))
      shards;
    {
      tel_interval = barrier;
      tel_series = series;
      tel_latency = Array.map (fun sd -> sd.sd_latency_hist) shards;
      tel_latency_all = latency_all;
      tel_steal_distance = tel.tc_dist;
      tel_compile_wait = compile_wait;
      tel_deopt_gap = deopt_gap;
      tel_flows = List.rev tel.tc_flows;
    }
  in
  {
    summary;
    shard_stats;
    publications;
    merged_dcg;
    systems = Array.to_list (Array.map (fun sd -> sd.sd_sys) shards);
    telemetry;
  }

let pp_summary fmt s =
  let f = Format.fprintf in
  f fmt "@[<v>workload             %s (%d sessions, period %d)@,"
    s.sh_workload s.sh_sessions s.sh_period;
  f fmt "policy               %s@," s.sh_policy;
  f fmt "shards               %d (pool %d, %s queue)@," s.sh_shards s.sh_pool
    s.sh_pool_policy;
  f fmt "rounds               %d barriers@," s.sh_rounds;
  f fmt "makespan             %d cycles (sum over shards %d)@," s.sh_makespan
    s.sh_sum_cycles;
  f fmt "throughput           %.3f sessions/Mcycle@," s.sh_throughput_spmc;
  f fmt "latency              mean %.0f  p50 %d  p95 %d  p99 %d  max %d@,"
    s.sh_mean_latency s.sh_p50 s.sh_p95 s.sh_p99 s.sh_max_latency;
  f fmt "stealing             %d sessions moved@," s.sh_steals;
  f fmt "fairness             %.3f max/min served per shard@," s.sh_fairness;
  f fmt "code cache           %d published, %d adopted@," s.sh_published
    s.sh_adopted;
  f fmt "merged dcg           %d traces, total weight %.1f@,"
    s.sh_merged_dcg_size s.sh_merged_dcg_weight;
  f fmt "output checksum      %d@]" s.sh_output_checksum

let pp_shards fmt stats =
  Format.fprintf fmt "@[<v>%-6s %9s %12s %8s %8s %9s %9s %5s %9s %8s@,"
    "shard" "served" "cycles" "in" "out" "compiles" "adopted" "gap"
    "max-live" "dcg";
  List.iter
    (fun h ->
      Format.fprintf fmt "%-6d %9d %12d %8d %8d %9d %9d %5d %9d %8d@," h.h_id
        h.h_served h.h_cycles h.h_steals_in h.h_steals_out
        h.h_opt_compilations h.h_adopted h.h_max_resume_gap h.h_max_live
        h.h_dcg_size)
    stats;
  Format.fprintf fmt "@]"

(* --- flow witnesses and export -------------------------------------- *)

let flow_pairs tel kind =
  List.fold_left
    (fun acc f ->
      if f.f_kind = kind && f.f_dir = Acsi_obs.Tracer.Out then acc + 1
      else acc)
    0 tel.tel_flows

(* Conservation witness: every flow id has exactly one Out and one In of
   the same kind; steal/adopt arrows cross shards, deopt arrows stay on
   their shard; the In never precedes its Out on the virtual clock. *)
let flows_conserved tel =
  let halves : (int, flow list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt halves f.f_id) in
      Hashtbl.replace halves f.f_id (f :: prev))
    tel.tel_flows;
  Hashtbl.fold
    (fun _ fs ok ->
      ok
      &&
      match fs with
      | [ a; b ] ->
          let out, inn =
            if a.f_dir = Acsi_obs.Tracer.Out then (a, b) else (b, a)
          in
          out.f_dir = Acsi_obs.Tracer.Out
          && inn.f_dir = Acsi_obs.Tracer.In
          && out.f_kind = inn.f_kind
          && out.f_key = inn.f_key
          && out.f_t <= inn.f_t
          && (match out.f_kind with
             | Steal | Adopt -> out.f_shard <> inn.f_shard
             | Deopt | Invalidate -> out.f_shard = inn.f_shard)
      | _ -> false)
    halves true

let shard_track i = Printf.sprintf "shard%d" i

(* Materialize the fleet trace: per-shard counter rows from the
   time-series plus every flow arrow (anchored on a 1-cycle span, which
   Perfetto uses to attach the arrow ends). Capacity is computed exactly,
   so nothing is ever dropped. *)
let telemetry_tracer tel =
  let rows =
    Array.fold_left
      (fun acc s -> acc + Acsi_obs.Timeseries.length s)
      0 tel.tel_series
  in
  let capacity =
    max 16 ((2 * rows) + (2 * List.length tel.tel_flows))
  in
  let tr = Acsi_obs.Tracer.create ~capacity () in
  Array.iteri
    (fun i s ->
      let track = shard_track i in
      Acsi_obs.Timeseries.iter s ~f:(fun ~now vs ->
          Acsi_obs.Tracer.counter tr ~track ~name:"live" ~t:now ~value:vs.(0);
          Acsi_obs.Tracer.counter tr ~track ~name:"backlog" ~t:now
            ~value:vs.(1)))
    tel.tel_series;
  List.iter
    (fun f ->
      let track = shard_track f.f_shard in
      let name = flow_name f.f_kind in
      Acsi_obs.Tracer.span tr ~track ~name ~t0:f.f_t ~t1:(f.f_t + 1);
      Acsi_obs.Tracer.flow tr ~track ~name ~t:f.f_t ~id:f.f_id ~dir:f.f_dir)
    tel.tel_flows;
  tr
