(** Sharded multi-processor serving: N virtual processors, one OCaml
    domain each.

    Each shard is a complete virtual processor — its own VM, adaptive
    optimization system, round-robin {!Sched} and virtual clock — and
    the shards execute in parallel on host domains between *virtual-time
    barriers*: every round, each shard runs until its clock reaches the
    round's limit, then all cross-shard interaction happens serially in
    shard-id order:

    - the per-shard DCGs are merged into the organizer's global view
      ({!Acsi_profile.Dcg.merge} — the paper's per-virtual-processor
      sample buffers, §4.1);
    - newly opt-compiled methods are *published once* to a shared code
      cache; other shards on which the method is live adopt the
      publisher's code — including its closure-tier compilation — via
      {!Acsi_aos.System.adopt_compiled}, paying no compile cycles;
    - unstarted sessions are rebalanced by deterministic work stealing
      (victim/thief selection rotates by a splitmix hash of the round,
      oldest due session moves first).

    Mid-execution virtual threads never migrate (their frames point into
    one VM's tables); the steal unit is a not-yet-admitted session, as
    in real work-stealing servers where a connection is bound to a
    worker at accept time.

    Determinism: every schedule decision is a function of (seed, shards,
    barrier, …) on virtual clocks only, and host parallelism is confined
    to the intra-round execution of disjoint shards, so a run's entire
    result — cycle counts, percentiles, steal counts, checksum — is
    byte-reproducible for a given configuration regardless of [~jobs]. *)

module System = Acsi_aos.System

type shard_stat = {
  h_id : int;
  h_served : int;
  h_cycles : int;  (** shard clock at end of run (incl. idle waits) *)
  h_busy_last : int;  (** clock at the shard's last session completion *)
  h_slices : int;
  h_switches : int;
  h_max_live : int;
  h_max_resume_gap : int;  (** per-shard scheduler fairness witness *)
  h_steals_in : int;
  h_steals_out : int;
  h_opt_compilations : int;
  h_adopted : int;
  h_dcg_size : int;
}

type summary = {
  sh_workload : string;
  sh_policy : string;
  sh_shards : int;
  sh_sessions : int;
  sh_period : int;
  sh_pool : int;
  sh_pool_policy : string;
  sh_rounds : int;
  sh_makespan : int;
      (** max over shards of the last session-completion cycle *)
  sh_sum_cycles : int;  (** sum of final shard clocks *)
  sh_throughput_spmc : float;  (** sessions per million makespan cycles *)
  sh_mean_latency : float;
  sh_p50 : int;
  sh_p95 : int;
  sh_p99 : int;
  sh_max_latency : int;
  sh_steals : int;
  sh_fairness : float;
      (** served-session balance witness: max/min served per shard *)
  sh_published : int;  (** methods published to the shared code cache *)
  sh_adopted : int;  (** cross-shard adoptions of published code *)
  sh_merged_dcg_size : int;
  sh_merged_dcg_weight : float;
  sh_output_checksum : int;
}

type result = {
  summary : summary;
  shard_stats : shard_stat list;
  publications : (Acsi_bytecode.Ids.Method_id.t * int) list;
      (** (method, origin shard), publication order *)
  merged_dcg : Acsi_profile.Dcg.t;
      (** the organizer's global view after the final barrier *)
  systems : System.t list;  (** per-shard AOS handles, for inspection *)
}

val run :
  ?quantum:int ->
  ?switch_cost:int ->
  ?seed:int ->
  ?jobs:int ->
  ?barrier:int ->
  ?max_live:int ->
  ?hot_shard_weight:int ->
  ?pool:int ->
  ?pool_policy:System.compile_queue_policy ->
  shards:int ->
  sessions:int ->
  period:int ->
  name:string ->
  Acsi_core.Config.t ->
  Acsi_bytecode.Program.t ->
  result
(** Serve [sessions] open-loop arrivals (mean inter-arrival [period])
    of the program's [main] across [shards] virtual processors.

    [jobs] (default 1) caps the host domains running shards in parallel
    within a round; it never affects results. [barrier] (default
    2_000_000) is the virtual-cycle round length between cross-shard
    barriers. [max_live] (default 64) caps concurrently admitted
    sessions per shard (admission control; pending sessions stay queued
    as cheap tuples, which is what makes million-session backlogs
    affordable). [hot_shard_weight] (default 2) over-weights shard 0 in
    the home-shard hash — a deliberately skewed front-end router — so
    work stealing has an imbalance to fix; 1 distributes uniformly.
    [pool]/[pool_policy] configure each shard's background compiler
    pool ({!System.config.compiler_pool}). Compilation is always
    asynchronous in sharded mode. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_shards : Format.formatter -> shard_stat list -> unit
