(** Sharded multi-processor serving: N virtual processors, one OCaml
    domain each.

    Each shard is a complete virtual processor — its own VM, adaptive
    optimization system, round-robin {!Sched} and virtual clock — and
    the shards execute in parallel on host domains between *virtual-time
    barriers*: every round, each shard runs until its clock reaches the
    round's limit, then all cross-shard interaction happens serially in
    shard-id order:

    - the per-shard DCGs are merged into the organizer's global view
      ({!Acsi_profile.Dcg.merge} — the paper's per-virtual-processor
      sample buffers, §4.1);
    - newly opt-compiled methods are *published once* to a shared code
      cache; other shards on which the method is live adopt the
      publisher's code — including its closure-tier compilation — via
      {!Acsi_aos.System.adopt_compiled}, paying no compile cycles;
    - unstarted sessions are rebalanced by deterministic work stealing
      (victim/thief selection rotates by a splitmix hash of the round,
      oldest due session moves first).

    Mid-execution virtual threads never migrate (their frames point into
    one VM's tables); the steal unit is a not-yet-admitted session, as
    in real work-stealing servers where a connection is bound to a
    worker at accept time.

    Determinism: every schedule decision is a function of (seed, shards,
    barrier, …) on virtual clocks only, and host parallelism is confined
    to the intra-round execution of disjoint shards, so a run's entire
    result — cycle counts, percentiles, steal counts, checksum — is
    byte-reproducible for a given configuration regardless of [~jobs]. *)

module System = Acsi_aos.System

type shard_stat = {
  h_id : int;
  h_served : int;
  h_cycles : int;  (** shard clock at end of run (incl. idle waits) *)
  h_busy_last : int;  (** clock at the shard's last session completion *)
  h_slices : int;
  h_switches : int;
  h_max_live : int;
  h_max_resume_gap : int;  (** per-shard scheduler fairness witness *)
  h_steals_in : int;
  h_steals_out : int;
  h_opt_compilations : int;
  h_adopted : int;
  h_dcg_size : int;
}

type summary = {
  sh_workload : string;
  sh_policy : string;
  sh_shards : int;
  sh_sessions : int;
  sh_period : int;
  sh_pool : int;
  sh_pool_policy : string;
  sh_rounds : int;
  sh_makespan : int;
      (** max over shards of the last session-completion cycle *)
  sh_sum_cycles : int;  (** sum of final shard clocks *)
  sh_throughput_spmc : float;  (** sessions per million makespan cycles *)
  sh_mean_latency : float;
  sh_p50 : int;
  sh_p95 : int;
  sh_p99 : int;
  sh_max_latency : int;
  sh_steals : int;
  sh_fairness : float;
      (** served-session balance witness: max/min served per shard *)
  sh_published : int;  (** methods published to the shared code cache *)
  sh_adopted : int;  (** cross-shard adoptions of published code *)
  sh_merged_dcg_size : int;
  sh_merged_dcg_weight : float;
  sh_output_checksum : int;
}

(** {2 Fleet telemetry}

    Collected off the virtual clock during the run and finalized after
    the last barrier; the summary above and all pinned goldens are
    byte-identical whether or not anyone consumes it. *)

type flow_kind =
  | Steal  (** a due session moved victim shard -> thief shard *)
  | Adopt  (** published code adopted: publisher -> adopter *)
  | Deopt  (** guard-storm deopt -> recompiled install, same shard *)
  | Invalidate  (** CHA-invalidation deopt -> reinstall, same shard *)

(** One half of a flow arrow linking shard tracks in the Perfetto
    export. The two halves of an arrow share [f_id] (an [Out] half at
    the origin and an [In] half at the destination); [f_key] is the
    session rid for steals and the method id otherwise. Flows are
    emitted only in the serial barrier section, in shard-id order, so
    the log is byte-identical across [--jobs]. *)
type flow = {
  f_kind : flow_kind;
  f_id : int;
  f_dir : Acsi_obs.Tracer.flow_dir;
  f_shard : int;
  f_t : int;  (** virtual cycles: barrier stamp for steal/adopt, the
                  deopt/reinstall clock for deopt arrows *)
  f_key : int;
}

val flow_name : flow_kind -> string

type telemetry = {
  tel_interval : int;  (** = the run's barrier length *)
  tel_series : Acsi_obs.Timeseries.t array;
      (** one per shard, one row per round over {!telemetry_columns} *)
  tel_latency : Acsi_obs.Hist.t array;  (** per-shard session latency *)
  tel_latency_all : Acsi_obs.Hist.t;  (** merged across shards *)
  tel_steal_distance : Acsi_obs.Hist.t;
      (** |victim - thief| per stolen session *)
  tel_compile_wait : Acsi_obs.Hist.t;
      (** merged {!System.compile_wait_hist} *)
  tel_deopt_gap : Acsi_obs.Hist.t;  (** merged {!System.deopt_gap_hist} *)
  tel_flows : flow list;
      (** emission order; each arrow's [Out] half precedes its [In] *)
}

val telemetry_columns : string list
(** Per-shard series schema: [live], [backlog] (due movable sessions),
    [compile_queue], [in_flight], [served], [steals_in], [steals_out],
    [adopted], [samples], [deopts] — gauges and cumulative counters
    sampled at every round barrier. *)

val flow_pairs : telemetry -> flow_kind -> int
(** Number of complete arrows of a kind (= its [Out] halves). With the
    conservation witness below, [flow_pairs t Steal = sh_steals] and
    [flow_pairs t Adopt = sh_adopted]. *)

val flows_conserved : telemetry -> bool
(** The conservation witness: every flow id has exactly one [Out] and
    one [In] half of the same kind and key, the [In] never precedes its
    [Out], steal/adopt arrows cross shards and deopt arrows stay on
    their shard. *)

val telemetry_tracer : telemetry -> Acsi_obs.Tracer.t
(** Materialize the fleet trace for {!Acsi_obs.Export.to_chrome_json}:
    per-shard [live]/[backlog] counter tracks from the time-series plus
    every flow arrow (anchored on 1-cycle spans). Capacity is computed
    exactly; the tracer never drops. *)

type result = {
  summary : summary;
  shard_stats : shard_stat list;
  publications : (Acsi_bytecode.Ids.Method_id.t * int) list;
      (** (method, origin shard), publication order *)
  merged_dcg : Acsi_profile.Dcg.t;
      (** the organizer's global view after the final barrier *)
  systems : System.t list;  (** per-shard AOS handles, for inspection *)
  telemetry : telemetry;
}

val run :
  ?quantum:int ->
  ?switch_cost:int ->
  ?seed:int ->
  ?jobs:int ->
  ?barrier:int ->
  ?max_live:int ->
  ?hot_shard_weight:int ->
  ?pool:int ->
  ?pool_policy:System.compile_queue_policy ->
  shards:int ->
  sessions:int ->
  period:int ->
  name:string ->
  Acsi_core.Config.t ->
  Acsi_bytecode.Program.t ->
  result
(** Serve [sessions] open-loop arrivals (mean inter-arrival [period])
    of the program's [main] across [shards] virtual processors.

    [jobs] (default 1) caps the host domains running shards in parallel
    within a round; it never affects results. [barrier] (default
    2_000_000) is the virtual-cycle round length between cross-shard
    barriers. [max_live] (default 64) caps concurrently admitted
    sessions per shard (admission control; pending sessions stay queued
    as cheap tuples, which is what makes million-session backlogs
    affordable). [hot_shard_weight] (default 2) over-weights shard 0 in
    the home-shard hash — a deliberately skewed front-end router — so
    work stealing has an imbalance to fix; 1 distributes uniformly.
    [pool]/[pool_policy] configure each shard's background compiler
    pool ({!System.config.compiler_pool}). Compilation is always
    asynchronous in sharded mode. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_shards : Format.formatter -> shard_stat list -> unit
