(** Deterministic load generation and latency statistics.

    Everything is seeded integer arithmetic on the virtual clock — no
    wall clock, no floats in the schedule itself — so identical seeds
    produce identical arrival schedules on every host. *)

val next_rand : int -> int
(** One step of the (splitmix-style) deterministic PRNG: maps a state to
    the next state. Exposed so schedules can be reproduced in tests. *)

val open_loop_arrivals : seed:int -> period:int -> n:int -> int array
(** [n] request arrival cycles for an open-loop (arrival-driven) load:
    inter-arrival gaps are drawn uniformly from [[period/2 + 1,
    period/2 + period]], so the mean inter-arrival is about [period]
    and arrivals are strictly increasing. *)

val percentile : int array -> float -> int
(** Nearest-rank percentile of an (unsorted) sample; [percentile xs 50.0]
    is the median. 0 on an empty sample. Exact (full copy + sort): this
    is the reference spec the log-bucketed {!Acsi_obs.Hist.quantile} is
    differentially tested against, and it keeps computing the pinned
    summary percentiles; histograms serve the telemetry surfaces. *)

val mean : int array -> float
(** Arithmetic mean; 0 on an empty sample. *)

val warmup_requests : int array -> int
(** Time-to-steady-state over latencies in completion order: the number
    of leading requests before the rolling window mean (window =
    [max 1 (n/8)]) first settles within 25% of the steady-state mean
    (the mean of the final window). Returns [n] when the run never
    settles. *)
