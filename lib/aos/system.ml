open Acsi_bytecode
open Acsi_profile
module Interp = Acsi_vm.Interp
module Cost = Acsi_vm.Cost

let log_src = Logs.Src.create "acsi.aos" ~doc:"adaptive optimization system"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Ordering discipline of the background compiler pool's shared queue.
   [Fifo] preserves enqueue order (with a pool of 1 this is byte-identical
   to the original serial background thread). [Hot_first] reorders each
   drain batch by current method hotness, so the methods burning the most
   cycles reach a free compiler first. [Deadline] is earliest-deadline-
   first where a job's deadline is its enqueue time plus slack
   proportional to the method's size — small methods overtake big ones
   enqueued slightly earlier. *)
type compile_queue_policy = Fifo | Hot_first | Deadline

let queue_policy_name = function
  | Fifo -> "fifo"
  | Hot_first -> "hot"
  | Deadline -> "deadline"

let queue_policy_of_string = function
  | "fifo" -> Some Fifo
  | "hot" | "hot-first" -> Some Hot_first
  | "deadline" -> Some Deadline
  | _ -> None

type config = {
  policy : Acsi_policy.Policy.t;
  hot_edge_threshold : float;
  hot_method_min_samples : float;
  hot_method_fraction : float;
  organizer_period : int;
  ai_period : int;
  decay_period : int;
  decay_factor : float;
  dcg_prune_below : float;
  oracle_config : Acsi_jit.Oracle.config;
  skew_threshold : float;
  min_context_share : float;
  max_flag_attempts : int;
  max_opt_versions : int;
  refusal_ttl : int;
  merge_rules_to_edges : bool;
  trace_on_timer : bool;
  enable_osr : bool;
  verify_installed : bool;
  native_tier : bool;
      (** compile [Jit_check]-clean optimized methods onto the closure
          execution tier ({!Acsi_vm.Tier}); purely a host-speed change —
          virtual cycles, output and all decisions are bit-identical
          either way *)
  static_seed : bool;
      (** static pre-warm oracle: at a method's first execution, if the
          interprocedural summaries ({!Acsi_analysis.Summary}) prove it
          has statically inlinable call sites, compile it optimized
          immediately — before any sample exists. Default [false]; the
          paper's system (and every golden) is purely reactive. *)
  speculate : bool;
      (** guard-free speculative inlining: let the oracle inline virtual
          sites that are monomorphic over the *loaded* class universe
          with no guard when the receiver pre-exists the activation,
          record the CHA assumptions on the installed code, invalidate
          synchronously on class load, deopt active stale frames through
          the {!Acsi_deopt} tables, and deopt guard-stormy methods.
          Default [false]; all goldens are pinned to the guarded
          system. *)
  deopt_guard_threshold : int;
      (** inline-guard failures at one (method, pc) site before the
          method is deoptimized back to baseline and re-enqueued for
          compilation *)
  collect_termination_stats : bool;
  async_compile : bool;
  compiler_pool : int;
      (** number of background compiler threads sharing the compile
          queue (async model only); 1 reproduces the serial background
          thread exactly *)
  compile_queue_policy : compile_queue_policy;
  obs : Acsi_obs.Control.config;
}

let default_config policy =
  {
    policy;
    hot_edge_threshold = 0.015;
    hot_method_min_samples = 3.0;
    hot_method_fraction = 0.01;
    organizer_period = 16;
    ai_period = 4;
    decay_period = 8;
    decay_factor = 0.95;
    dcg_prune_below = 0.05;
    oracle_config = Acsi_jit.Oracle.default_config;
    skew_threshold = 0.8;
    min_context_share = 0.1;
    max_flag_attempts = 8;
    max_opt_versions = 4;
    refusal_ttl = 12;
    merge_rules_to_edges = false;
    trace_on_timer = false;
    enable_osr = false;
    verify_installed = true;
    native_tier = true;
    static_seed = false;
    speculate = false;
    deopt_guard_threshold = 32;
    collect_termination_stats = false;
    async_compile = false;
    compiler_pool = 1;
    compile_queue_policy = Fifo;
    obs = Acsi_obs.Control.off;
  }

(* One background compilation in flight: the code is already produced
   (the compiler snapshots the rules when it starts the job), but it only
   becomes installable once the virtual clock reaches [ic_finish] — the
   point where the background compiler thread, running concurrently with
   the mutators, would have completed it. *)
type in_flight_compile = {
  ic_meth : Ids.Method_id.t;
  ic_code : Acsi_vm.Code.t;
  ic_stats : Acsi_jit.Expand.stats;
  ic_rule_stamp : int;  (** rules version the job was compiled against *)
  ic_start : int;  (** cycle a pool compiler began the job *)
  ic_finish : int;  (** cycle the job completes and may install *)
  ic_instrs_at_start : int;  (** mutator instruction count at [ic_start] *)
  ic_seq : int;  (** job submission order, install tie-break *)
}

(* Fleet-telemetry events, recorded only when [set_telemetry_events]
   turned the log on (the sharded server does, per round). Timestamps
   are this VM's virtual clock. *)
type tel_event =
  | Tel_deopt of { mid : int; at : int; invalidated : bool }
  | Tel_reinstall of { mid : int; at : int; gap : int }

type t = {
  cfg : config;
  vm : Interp.t;
  program : Program.t;
  cost : Cost.t;
  accounting : Accounting.t;
  db : Db.t;
  dcg : Dcg.t;
  registry : Registry.t;
  hot_methods : Hot_methods.t;
  flags : Flags.t;
  oracle : Acsi_jit.Oracle.t;
  listener : Trace_listener.t;
  (* static pre-warm oracle: summaries computed once at creation when
     [static_seed] is on; [static_compiling] marks oracle decisions made
     during a seed compilation so provenance can attribute them to the
     [Static] source *)
  summaries : Acsi_analysis.Summary.table option;
  mutable static_compiling : bool;
  mutable static_seeds : int;
  (* speculation & deoptimization: current optimized installs with their
     frame-state tables ([deopt_tables], keyed by method id); reverted
     codes whose active stale frames still await a downward transfer
     ([pending_deopt], matched by physical code identity); per-(method,
     pc) guard-failure counters; memoized pre-existence analyses *)
  deopt_tables : (int, Acsi_vm.Code.t * Acsi_deopt.Deopt.table) Hashtbl.t;
  mutable pending_deopt :
    (Acsi_vm.Code.t * Acsi_deopt.Deopt.table * Interp.deopt_reason) list;
  guard_fails : (int * int, int ref) Hashtbl.t;
  preexist_cache : (int, bool array) Hashtbl.t;
  mutable speculative_installs : int;
  mutable dropped_installs : int;
  mutable rules : Rules.t;
  mutable rules_version : int;
  (* buffers *)
  mutable method_buffer : Ids.Method_id.t list;
  mutable method_buffer_len : int;
  mutable trace_buffer : Trace.t list;
  mutable trace_buffer_len : int;
  (* compilation queue: method plus its enqueue cycle (deadline input) *)
  compile_queue : (Ids.Method_id.t * int) Queue.t;
  pending : bool array;
  (* asynchronous (pool) compilation: finished code waiting for its
     virtual finish time, kept sorted by (finish, submission seq) — with
     more than one compiler, jobs submitted later can finish earlier *)
  mutable in_flight : in_flight_compile list;
  mutable in_flight_seq : int;
  (* per-compiler busy-until timelines; length = max 1 compiler_pool *)
  compilers : int array;
  mutable async_installs : int;
  mutable adopted_installs : int;
  mutable max_queue_depth : int;
  mutable overlap_instructions : int;
  mutable overlapped_aos_cycles : int;
  obs : Acsi_obs.Control.t;
  (* fleet telemetry: always-on histograms (queue wait measured at
     compile start, deopt-to-reinstall gap) — off the virtual clock, so
     they never perturb a run — and an opt-in bounded event log the
     sharded server drains at barriers to draw deopt flow arrows *)
  tel_compile_wait : Acsi_obs.Hist.t;
  tel_deopt_gap : Acsi_obs.Hist.t;
  last_deopt : (int, int) Hashtbl.t;
  mutable tel_events_on : bool;
  mutable tel_events : tel_event list; (* newest first *)
  (* counters *)
  mutable baseline_methods : int;
  mutable baseline_bytes : int;
  mutable method_samples : int;
  mutable trace_samples : int;
  mutable samples_in_epoch : int;
  mutable epochs : int;
}

let config t = t.cfg
let accounting t = t.accounting
let db t = t.db
let dcg t = t.dcg
let registry t = t.registry
let rules t = t.rules
let flags t = t.flags
let trace_stats t = Trace_listener.stats t.listener
let baseline_compiled_methods t = t.baseline_methods
let baseline_code_bytes t = t.baseline_bytes
let method_samples_taken t = t.method_samples
let trace_samples_taken t = t.trace_samples
let epochs_run t = t.epochs
let compile_queue_depth t = Queue.length t.compile_queue
let max_compile_queue_depth t = t.max_queue_depth
let in_flight_compiles t = List.length t.in_flight
let async_installs t = t.async_installs
let adopted_installs t = t.adopted_installs
let compiler_pool_size t = Array.length t.compilers
let async_overlap_instructions t = t.overlap_instructions
let overlapped_aos_cycles t = t.overlapped_aos_cycles
let static_seeded_methods t = t.static_seeds
let summaries t = t.summaries
let speculative_installs t = t.speculative_installs
let dropped_installs t = t.dropped_installs
let pending_deopts t = List.length t.pending_deopt
let obs t = t.obs
let compile_wait_hist t = t.tel_compile_wait
let deopt_gap_hist t = t.tel_deopt_gap
let set_telemetry_events t on = t.tel_events_on <- on
let take_telemetry_events t =
  let evs = List.rev t.tel_events in
  t.tel_events <- [];
  evs
let tel_emit t e = if t.tel_events_on then t.tel_events <- e :: t.tel_events
let tracer t = t.obs.Acsi_obs.Control.tracer
let provenance t = t.obs.Acsi_obs.Control.prov
let cprof t = t.obs.Acsi_obs.Control.cprof

(* All AOS work is charged to both the component accounting (Figure 6) and
   the VM clock (total time includes the adaptive system).

   The tracer span mirrors the charge one-for-one: same component track,
   same cycle count, stamped at the pre-charge clock — so with tracing on
   and no ring drops, summed span durations per track reconcile exactly
   with the Accounting totals ([Acsi_obs.Export.track_totals]). [ev]
   names the span after the work being charged. *)
let charge ?(ev = "aos") t component cycles =
  (let tr = t.obs.Acsi_obs.Control.tracer in
   if Acsi_obs.Tracer.enabled tr then
     let t0 = Interp.cycles t.vm in
     Acsi_obs.Tracer.span tr
       ~track:(Accounting.component_name component)
       ~name:ev ~t0 ~t1:(t0 + cycles));
  Accounting.charge t.accounting component cycles;
  Interp.charge t.vm cycles

let enqueue_compile t (mid : Ids.Method_id.t) =
  if not t.pending.((mid :> int)) then begin
    t.pending.((mid :> int)) <- true;
    Queue.add (mid, Interp.cycles t.vm) t.compile_queue;
    t.max_queue_depth <- max t.max_queue_depth (Queue.length t.compile_queue);
    Acsi_obs.Tracer.counter (tracer t)
      ~track:(Accounting.component_name Accounting.Compilation)
      ~name:"queue-depth" ~t:(Interp.cycles t.vm)
      ~value:(Queue.length t.compile_queue)
  end

(* --- organizers --- *)

let method_organizer t =
  charge ~ev:"drain-method-buffer" t Accounting.Method_organizer
    (t.method_buffer_len * t.cost.Cost.organizer_per_event);
  List.iter (Hot_methods.add_sample t.hot_methods) t.method_buffer;
  t.method_buffer <- [];
  t.method_buffer_len <- 0

let dcg_organizer t =
  charge ~ev:"drain-trace-buffer" t Accounting.Ai_organizer
    (t.trace_buffer_len * t.cost.Cost.organizer_per_event);
  List.iter (Dcg.add_sample t.dcg) t.trace_buffer;
  t.trace_buffer <- [];
  t.trace_buffer_len <- 0

(* Adaptive resolution (§4.3): find hot polymorphic sites whose callee
   distribution is not skewed; flag them for deeper tracing unless some
   sufficiently heavy deep context already resolves them.

   The decision for one site depends only on that site's callee and
   deep-context weights, so the pass reads the DCG's incremental site
   views: one bucket-local sum per aggregate instead of the flat-table
   rebuild (and its contexts x contexts product) the reference spec
   below performs. The decision list is order-independent — every site
   yields at most one Resolve/Flag, and [Flags] state is per-site. *)
let flag_decisions dcg ~skew_threshold ~min_context_share =
  let acc = ref [] in
  Dcg.iter_sites dcg ~f:(fun ~caller ~callsite view ->
      if Dcg.view_callee_count view >= 2 then begin
        let total = Dcg.view_total view in
        let top = Dcg.view_top_callee_weight view in
        let resolve =
          top /. total >= skew_threshold
          || (* Does some heavy deep context already discriminate? *)
          Dcg.view_deep_exists view ~f:(fun ~total:ctotal ~top:ctop ->
              ctotal >= min_context_share *. total
              && ctop /. ctotal >= skew_threshold)
        in
        acc := (caller, callsite, resolve) :: !acc
      end);
  !acc

(* The pre-view implementation, kept as the executable spec for the
   differential tests: rebuild flat per-site / per-context aggregates
   from the whole trace table, then scan them with nested folds. *)
let flag_decisions_reference dcg ~skew_threshold ~min_context_share =
  let site_total : (int * int, float ref) Hashtbl.t = Hashtbl.create 32 in
  let site_callee : (int * int * int, float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let ctx_total : ((int * int) list, float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let ctx_callee : ((int * int) list * int, float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let bump tbl key w =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := !r +. w
    | None -> Hashtbl.add tbl key (ref w)
  in
  Dcg.iter dcg ~f:(fun trace w ->
      let e0 = trace.Trace.chain.(0) in
      let site = ((e0.Trace.caller :> int), e0.Trace.callsite) in
      let callee = (trace.Trace.callee :> int) in
      bump site_total site w;
      bump site_callee (fst site, snd site, callee) w;
      if Array.length trace.Trace.chain >= 2 then begin
        let ctx =
          Array.to_list trace.Trace.chain
          |> List.map (fun e -> ((e.Trace.caller :> int), e.Trace.callsite))
        in
        bump ctx_total ctx w;
        bump ctx_callee (ctx, callee) w
      end);
  let acc = ref [] in
  Hashtbl.iter
    (fun (caller_i, callsite) total ->
      let callees =
        Hashtbl.fold
          (fun (c, s, callee) w acc ->
            if c = caller_i && s = callsite then (callee, !w) :: acc else acc)
          site_callee []
      in
      match callees with
      | [] | [ _ ] -> ()
      | _ :: _ :: _ ->
          let top =
            List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 callees
          in
          let caller = Ids.Method_id.of_int caller_i in
          let resolve =
            top /. !total >= skew_threshold
            ||
            (* Does some heavy deep context already discriminate? *)
            Hashtbl.fold
              (fun ctx ctotal acc ->
                acc
                ||
                match ctx with
                | (c, s) :: _
                  when c = caller_i && s = callsite
                       && !ctotal >= min_context_share *. !total ->
                    let ctop =
                      Hashtbl.fold
                        (fun (ctx', _) w acc ->
                          if ctx' = ctx then Float.max acc !w else acc)
                        ctx_callee 0.0
                    in
                    ctop /. !ctotal >= skew_threshold
                | _ -> false)
              ctx_total false
          in
          acc := (caller, callsite, resolve) :: !acc)
    site_total;
  !acc

let update_flags t =
  List.iter
    (fun (caller, callsite, resolve) ->
      if resolve then Flags.resolve t.flags ~caller ~callsite
      else
        Flags.flag t.flags ~caller ~callsite
          ~max_attempts:t.cfg.max_flag_attempts)
    (flag_decisions t.dcg ~skew_threshold:t.cfg.skew_threshold
       ~min_context_share:t.cfg.min_context_share)

(* The roots worth recompiling for one missing hot edge: every optimized
   root whose current code contains the caller (so the call site lives in
   its code), is stale w.r.t. the current rules, has version headroom,
   and has not already inlined the edge. Ascending root order — the same
   order the reference scan visits entries in. *)
let recompile_candidates registry ~caller ~callsite ~callee ~rules_version
    ~max_opt_versions =
  List.filter
    (fun root ->
      match Registry.entry registry root with
      | None -> false
      | Some entry ->
          entry.Registry.rule_stamp < rules_version
          && entry.Registry.version < max_opt_versions
          && not (Registry.has_inlined registry ~root ~caller ~callsite ~callee))
    (Registry.roots_containing registry caller)

(* Executable spec of [recompile_candidates]: the product-of-linear-scans
   form (every registry entry probed for containment). For the
   differential tests; must agree exactly, including order. *)
let recompile_candidates_reference registry ~caller ~callsite ~callee
    ~rules_version ~max_opt_versions =
  let acc = ref [] in
  Registry.iter registry ~f:(fun root entry ->
      if
        Registry.contains_method registry ~root caller
        && entry.Registry.rule_stamp < rules_version
        && entry.Registry.version < max_opt_versions
        && not (Registry.has_inlined registry ~root ~caller ~callsite ~callee)
      then acc := root :: !acc);
  List.rev !acc

(* The AI missing-edge organizer: hot edges that optimized code failed to
   inline (and that the compiler has not refused) trigger recompilation,
   up to the per-method version cap. The edge's call site lives in the
   direct caller's own code, but also in every optimized root that inlined
   that caller — all of them are candidates.

   Virtual-time invariant: the organizer's cost model is one event per
   rule plus one event per (rule, registry entry) pair — what the
   reference scan charges as it walks every entry. The indexed scan
   visits only the roots that contain the caller, but charges the
   identical event count in one batched charge, so the clock (and every
   printed number) is unchanged. *)
let missing_edge_scan t =
  let entry_events =
    Registry.opt_method_count t.registry * t.cost.Cost.organizer_per_event
  in
  Rules.iter t.rules ~f:(fun r ->
      charge ~ev:"missing-edge-scan" t Accounting.Ai_organizer
        t.cost.Cost.organizer_per_event;
      let e0 = r.Rules.trace.Trace.chain.(0) in
      let caller = e0.Trace.caller in
      let callsite = e0.Trace.callsite in
      let callee = r.Rules.trace.Trace.callee in
      let callee_m = Program.meth t.program callee in
      let inlinable =
        match Acsi_jit.Size.clazz_of callee_m with
        | Acsi_jit.Size.Large -> false
        | Acsi_jit.Size.Tiny | Acsi_jit.Size.Small | Acsi_jit.Size.Medium ->
            true
      in
      if
        inlinable
        && not
             (Db.refused t.db ~caller ~callsite ~callee ~now:t.rules_version
                ~ttl:t.cfg.refusal_ttl)
      then begin
        charge ~ev:"missing-edge-scan" t Accounting.Ai_organizer entry_events;
        List.iter
          (fun root ->
            Log.debug (fun m ->
                m "missing edge %a@%d => %a: recompiling %a" Ids.Method_id.pp
                  caller callsite Ids.Method_id.pp callee Ids.Method_id.pp
                  root);
            enqueue_compile t root)
          (recompile_candidates t.registry ~caller ~callsite ~callee
             ~rules_version:t.rules_version
             ~max_opt_versions:t.cfg.max_opt_versions)
      end)

(* Ablation: collapse hot traces to their underlying edges, merging the
   weights — the "merge partial matches at collection time" alternative
   the paper rejects in §3.3. *)
let merge_to_edges hot =
  let table = Trace.Table.create 64 in
  List.iter
    (fun (trace, w) ->
      let edge = Trace.edge trace in
      match Trace.Table.find_opt table edge with
      | Some r -> r := !r +. w
      | None -> Trace.Table.add table edge (ref w))
    hot;
  Trace.Table.fold (fun trace w acc -> (trace, !w) :: acc) table []

let ai_organizer t =
  charge ~ev:"rebuild-rules" t Accounting.Ai_organizer
    (Dcg.size t.dcg * t.cost.Cost.ai_organizer_per_trace);
  let hot = Dcg.hot t.dcg ~threshold:t.cfg.hot_edge_threshold in
  let hot = if t.cfg.merge_rules_to_edges then merge_to_edges hot else hot in
  Log.debug (fun m ->
      m "AI organizer: %d traces in DCG, %d hot -> rules v%d"
        (Dcg.size t.dcg) (List.length hot) (t.rules_version + 1));
  (let tr = tracer t in
   if Acsi_obs.Tracer.enabled tr then begin
     let track = Accounting.component_name Accounting.Ai_organizer in
     let now = Interp.cycles t.vm in
     Acsi_obs.Tracer.counter tr ~track ~name:"dcg-size" ~t:now
       ~value:(Dcg.size t.dcg);
     Acsi_obs.Tracer.instant tr ~track ~name:"rules-rebuild" ~t:now
       ~args:
         [
           ("version", string_of_int (t.rules_version + 1));
           ("hot_traces", string_of_int (List.length hot));
         ]
       ()
   end);
  t.rules <- Rules.of_hot_traces ~version:(t.rules_version + 1) hot;
  t.rules_version <- t.rules_version + 1;
  Acsi_jit.Oracle.set_rules t.oracle t.rules;
  if Acsi_policy.Policy.is_adaptive_resolving t.cfg.policy then update_flags t;
  missing_edge_scan t

let decay_organizer t =
  charge ~ev:"decay" t Accounting.Decay_organizer
    (Dcg.size t.dcg * t.cost.Cost.decay_per_trace);
  Dcg.decay t.dcg ~factor:t.cfg.decay_factor
    ~prune_below:t.cfg.dcg_prune_below;
  Hot_methods.decay t.hot_methods ~factor:t.cfg.decay_factor

let controller t =
  let hot =
    Hot_methods.hot t.hot_methods ~min_samples:t.cfg.hot_method_min_samples
      ~fraction:t.cfg.hot_method_fraction
  in
  List.iter
    (fun (mid, _samples) ->
      charge ~ev:"plan-recompile" t Accounting.Controller
        t.cost.Cost.controller_per_event;
      match Registry.entry t.registry mid with
      | None -> enqueue_compile t mid
      | Some _ -> ())
    hot

(* Produce optimized code for one queued method (shared by the stalling
   and background compilation models). *)
let compile_one t (mid : Ids.Method_id.t) =
  t.pending.((mid :> int)) <- false;
  let root = Program.meth t.program mid in
  let code, stats = Acsi_jit.Expand.compile t.program t.cost t.oracle ~root in
  Log.info (fun m ->
      m "opt-compiled %s: %d units, %d inlines, %d guards" root.Meth.name
        stats.Acsi_jit.Expand.expanded_units
        stats.Acsi_jit.Expand.inline_count stats.Acsi_jit.Expand.guard_count);
  (code, stats)

(* --- speculation & deoptimization --- *)

(* The unique dispatch target of [sel] over the classes instantiated so
   far, or [None]: the loaded-CHA analogue of
   [Program.monomorphic_target] over the sealed universe. *)
let loaded_mono t sel =
  let n = Program.class_count t.program in
  let target = ref None in
  let unique = ref true in
  for c = 0 to n - 1 do
    let cid = Ids.Class_id.of_int c in
    if !unique && Interp.class_is_loaded t.vm cid then
      match Program.dispatch t.program cid sel with
      | Some m -> (
          match !target with
          | None -> target := Some m
          | Some m' -> if not (Ids.Method_id.equal m m') then unique := false)
      | None -> ()
  done;
  if !unique then !target else None

let preexist_pcs t (root : Meth.t) =
  match t.summaries with
  | None -> [||]
  | Some table -> (
      let key = (root.Meth.id :> int) in
      match Hashtbl.find_opt t.preexist_cache key with
      | Some a -> a
      | None ->
          let a =
            Acsi_analysis.Preexist.receiver_preexists t.program table root
          in
          Hashtbl.add t.preexist_cache key a;
          a)

let assumptions_hold t (code : Acsi_vm.Code.t) =
  List.for_all
    (fun (sel, target) ->
      match loaded_mono t sel with
      | Some m -> Ids.Method_id.equal m target
      | None -> false)
    code.Acsi_vm.Code.assumptions

(* Take [mid] off its current optimized code: future invocations run the
   baseline again (closure tier reinstalled to match), frames still
   executing the stale code are drained by [drain_pending_deopt] at the
   next timer samples, and a recompile is enqueued — the speculation
   closures read the *current* loaded universe, so the replacement is
   compiled without the broken assumption. Safe inside an execution
   window: mutates code tables only, never the frame stack. *)
let revert_optimized t (mid : Ids.Method_id.t) ~reason ~ev =
  match Hashtbl.find_opt t.deopt_tables (mid :> int) with
  | None -> ()
  | Some (code, table) ->
      Hashtbl.remove t.deopt_tables (mid :> int);
      t.pending_deopt <- (code, table, reason) :: t.pending_deopt;
      (let at = Interp.cycles t.vm in
       Hashtbl.replace t.last_deopt (mid :> int) at;
       tel_emit t
         (Tel_deopt
            {
              mid = (mid :> int);
              at;
              invalidated = reason = Interp.Cha_invalidated;
            }));
      let bcode = Interp.baseline_code_of t.vm mid in
      Interp.install_code t.vm mid bcode;
      (if t.cfg.native_tier then
         try Acsi_vm.Tier.install t.vm mid bcode with _ -> ());
      charge ~ev t Accounting.Controller t.cost.Cost.controller_per_event;
      Log.info (fun m ->
          m "deopt %s: reverted to baseline (%s)"
            (Program.meth t.program mid).Meth.name
            (match (reason : Interp.deopt_reason) with
            | Interp.Guard_storm -> "guard storm"
            | Interp.Cha_invalidated -> "CHA invalidated"));
      enqueue_compile t mid

let on_guard_miss t (mid : Ids.Method_id.t) pc =
  if Hashtbl.mem t.deopt_tables (mid :> int) then begin
    let key = ((mid :> int), pc) in
    let r =
      match Hashtbl.find_opt t.guard_fails key with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add t.guard_fails key r;
          r
    in
    incr r;
    if !r = t.cfg.deopt_guard_threshold then
      revert_optimized t mid ~reason:Interp.Guard_storm ~ev:"deopt-guard-storm"
  end

(* Synchronous CHA invalidation: fires from the class-load hook, i.e.
   after the allocation's cycles were charged but *before* the first
   instance of [cid] exists — so no dispatch can ever reach a
   speculative inline whose assumption the new class breaks. One
   controller event is charged per assumption-carrying code scanned. *)
let on_class_load t (cid : Ids.Class_id.t) =
  let broken = ref [] in
  Hashtbl.iter
    (fun key ((code : Acsi_vm.Code.t), _) ->
      if code.Acsi_vm.Code.assumptions <> [] then begin
        charge ~ev:"invalidate-scan" t Accounting.Controller
          t.cost.Cost.controller_per_event;
        if
          List.exists
            (fun (sel, target) ->
              match Program.dispatch t.program cid sel with
              | Some m -> not (Ids.Method_id.equal m target)
              | None -> false)
            code.Acsi_vm.Code.assumptions
        then broken := key :: !broken
      end)
    t.deopt_tables;
  List.iter
    (fun key ->
      revert_optimized t (Ids.Method_id.of_int key)
        ~reason:Interp.Cha_invalidated ~ev:"deopt-invalidate")
    (List.sort compare !broken)

(* Downward transfer of stale frames: when the top frame still runs a
   reverted code (matched by physical identity) and its pc has a valid
   deopt point, reconstruct the baseline frames there. Runs at timer
   samples — an instruction boundary, where frame mutation is legal. A
   pc without a point simply waits for a later sample. *)
let drain_pending_deopt t vm =
  match t.pending_deopt with
  | [] -> ()
  | pend ->
      if vm.Interp.depth > 0 then begin
        let fr = vm.Interp.frames.(vm.Interp.depth - 1) in
        let code = fr.Interp.f_code in
        match List.find_opt (fun (c, _, _) -> c == code) pend with
        | Some (_, table, reason) -> (
            match Acsi_deopt.Deopt.point_at table ~pc:fr.Interp.f_pc with
            | Some plans ->
                Interp.deopt_top_frame vm ~plans ~reason;
                charge ~ev:"deopt-transfer" t Accounting.Controller
                  (Array.length plans * t.cost.Cost.deopt_frame)
            | None -> ())
        | None -> ()
      end

(* Install freshly compiled code: verify, activate, optionally OSR the
   innermost frame, and record the compilation. [rule_stamp] is the rules
   version the code was built against — for background compilations that
   can be older than the current version at install time.

   The re-verification ({!Acsi_analysis.Jit_check}) models a debug-build
   safety net, not AOS work the paper's system performs, so it is
   deliberately NOT charged to the virtual clock: enabling or disabling
   it must never perturb timer samples, compilation decisions, or
   reported cycle counts. This holds for both compilation models —
   code produced by the background compiler thread passes through the
   same check before activation. *)
let install_compiled t mid code stats ~rule_stamp =
  if t.cfg.speculate && not (assumptions_hold t code) then begin
    (* A class load between compile and install broke an assumption
       (possible under the background model): drop the code and
       recompile against the current loaded universe. *)
    t.dropped_installs <- t.dropped_installs + 1;
    Log.info (fun m ->
        m "dropping stale speculative code for %s (assumption broken before install)"
          (Program.meth t.program mid).Meth.name);
    enqueue_compile t mid
  end
  else begin
  if t.cfg.verify_installed then
    Acsi_analysis.Jit_check.check_exn t.program code;
  Interp.install_code t.vm mid code;
  (* Closure-tier promotion, gated on {!Acsi_analysis.Jit_check}: the
     tier's closures inherit the interpreter's verifier-bounded unsafe
     accesses, so code must re-verify to be promoted — a rejected method
     simply stays on the interpreter tier. When [verify_installed] is on,
     the [check_exn] above already is that gate (install would have
     aborted on a finding); otherwise the gate runs here, demoted from
     exception to tier refusal. Like the re-verification, tier compilation
     is host-side work the modeled system doesn't perform: no virtual
     cycles are charged, so the flag can never perturb timer samples or
     reported totals. *)
  (if t.cfg.native_tier then
     let record outcome =
       match t.obs.Acsi_obs.Control.prov with
       | Some prov -> Acsi_obs.Provenance.add_tier prov mid outcome
       | None -> ()
     in
     let gate =
       if t.cfg.verify_installed then []
       else Acsi_analysis.Jit_check.check t.program code
     in
     match gate with
     | d :: _ ->
         Log.info (fun m ->
             m "closure tier rejected %s: %s"
               (Program.meth t.program mid).Meth.name
               (Acsi_analysis.Diag.to_string d));
         record
           (Acsi_obs.Provenance.Tier_rejected (Acsi_analysis.Diag.to_string d))
     | [] -> (
         match Acsi_vm.Tier.install t.vm mid code with
         | () -> record Acsi_obs.Provenance.Tier_compiled
         | exception exn ->
             Log.warn (fun m ->
                 m "closure tier failed on %s, staying on interpreter: %s"
                   (Program.meth t.program mid).Meth.name
                   (Printexc.to_string exn));
             record
               (Acsi_obs.Provenance.Tier_fell_back (Printexc.to_string exn))));
  (if t.cfg.speculate then begin
     Hashtbl.replace t.deopt_tables
       (mid :> int)
       (code, Acsi_deopt.Deopt.table_of_code t.program code);
     if code.Acsi_vm.Code.assumptions <> [] then
       t.speculative_installs <- t.speculative_installs + 1
   end);
  (if t.cfg.enable_osr then
     let moved = Interp.osr t.vm mid in
     if (not moved) && t.cfg.speculate then
       match Hashtbl.find_opt t.deopt_tables (mid :> int) with
       | Some (c, tbl) ->
           (* Generalized transfer: the root-level OSR above refuses
              frames suspended inside what is now an inline region; the
              deopt table can move those too (multi-frame collapse). *)
           let d0 = t.vm.Interp.depth in
           if Acsi_deopt.Deopt.try_osr_up t.vm c tbl then
             charge ~ev:"osr-up" t Accounting.Controller
               ((d0 - t.vm.Interp.depth + 1) * t.cost.Cost.deopt_frame)
       | None -> ());
  (* Deopt-to-recompile gap: this install closes any open deopt window
     for the method (clock read only; nothing is charged). *)
  (match Hashtbl.find_opt t.last_deopt (mid :> int) with
  | Some t0 ->
      Hashtbl.remove t.last_deopt (mid :> int);
      let at = Interp.cycles t.vm in
      let gap = at - t0 in
      Acsi_obs.Hist.record t.tel_deopt_gap gap;
      tel_emit t (Tel_reinstall { mid = (mid :> int); at; gap })
  | None -> ());
  Registry.record t.registry mid stats ~rule_stamp;
  Db.record_compilation t.db
    {
      Db.ce_method = mid;
      ce_version =
        (match Registry.entry t.registry mid with
        | Some e -> e.Registry.version
        | None -> 0);
      ce_units = stats.Acsi_jit.Expand.expanded_units;
      ce_bytes = stats.Acsi_jit.Expand.code_bytes;
      ce_cycles = stats.Acsi_jit.Expand.compile_cycles;
      ce_inlines = stats.Acsi_jit.Expand.inline_count;
      ce_guards = stats.Acsi_jit.Expand.guard_count;
    }
  end

(* The static pre-warm oracle (hybrid static+online inlining): at a
   method's first execution, if the interprocedural summaries prove the
   method has at least one statically inlinable call site (unique
   non-recursive target, Tiny/Small after its own inlining, not
   always-throwing), compile it optimized right away — before any sample
   exists. The rules are still empty at this point, so every inline the
   expander performs is decided by the oracle's static heuristics over
   summary-proven sites; provenance records them under the [Static]
   source. The compile itself stalls and is charged like any stalling
   opt-compile — seeding buys earlier optimized code, not free cycles.
   Seeded methods enter the registry at the current rules version, so
   the missing-edge organizer refines them later exactly as it would any
   reactively compiled method. *)
let static_seed_install t (mid : Ids.Method_id.t) =
  match t.summaries with
  | None -> ()
  | Some table ->
      if Acsi_analysis.Summary.seed_worthy table mid then begin
        let root = Program.meth t.program mid in
        t.static_compiling <- true;
        let code, stats =
          Acsi_jit.Expand.compile t.program t.cost t.oracle ~root
        in
        t.static_compiling <- false;
        t.static_seeds <- t.static_seeds + 1;
        Log.debug (fun m ->
            m "static seed %s: %d units, %d inlines" root.Meth.name
              stats.Acsi_jit.Expand.expanded_units
              stats.Acsi_jit.Expand.inline_count);
        charge ~ev:"static-seed-compile" t Accounting.Compilation
          stats.Acsi_jit.Expand.compile_cycles;
        install_compiled t mid code stats ~rule_stamp:t.rules_version
      end

(* The stalling compilation model (the default, and the paper's
   measurement configuration): compile cycles are charged to the shared
   clock, so the requesting execution waits for the compiler. *)
let compilation_thread t =
  while not (Queue.is_empty t.compile_queue) do
    let mid, enq = Queue.pop t.compile_queue in
    Acsi_obs.Hist.record t.tel_compile_wait (Interp.cycles t.vm - enq);
    let code, stats = compile_one t mid in
    charge ~ev:"opt-compile" t Accounting.Compilation
      stats.Acsi_jit.Expand.compile_cycles;
    install_compiled t mid code stats ~rule_stamp:t.rules_version
  done

(* Drain the compile queue into a batch ordered by the configured queue
   policy. All orderings are stable over the FIFO enqueue order, so
   [Fifo] is the identity and ties never depend on hash or allocation
   order. *)
let policy_order t jobs =
  match t.cfg.compile_queue_policy with
  | Fifo -> jobs
  | Hot_first ->
      List.stable_sort
        (fun (a, _) (b, _) ->
          Float.compare
            (Hot_methods.samples t.hot_methods b)
            (Hot_methods.samples t.hot_methods a))
        jobs
  | Deadline ->
      let deadline (mid, enq) =
        let units = Meth.size_units (Program.meth t.program mid) in
        enq + (units * t.cost.Cost.baseline_compile_unit)
      in
      List.stable_sort
        (fun a b -> compare (deadline a) (deadline b))
        jobs

(* The background compilation model: the compiler runs on its own virtual
   thread whose cycles overlap mutator execution. Each job starts when
   the (serial) background thread is free, finishes [compile_cycles]
   later on the shared clock, and is installed at the first yield point
   at or after its finish time. Compile cycles are charged to the
   Figure-6 component accounting but NOT to the shared clock — that is
   the overlap. *)
let start_async_compiles t =
  let jobs = ref [] in
  while not (Queue.is_empty t.compile_queue) do
    jobs := Queue.pop t.compile_queue :: !jobs
  done;
  List.iter
    (fun (mid, enq) ->
      let code, stats = compile_one t mid in
      Accounting.charge t.accounting Accounting.Compilation
        stats.Acsi_jit.Expand.compile_cycles;
      (* Charged to the Figure-6 accounting but not to the shared clock:
         these are the overlapped cycles the async model hides. *)
      t.overlapped_aos_cycles <-
        t.overlapped_aos_cycles + stats.Acsi_jit.Expand.compile_cycles;
      let now = Interp.cycles t.vm in
      (* Earliest-free compiler of the pool takes the job; ties go to the
         lowest index, so the assignment is a pure function of the
         timelines. *)
      let k = ref 0 in
      Array.iteri (fun i busy -> if busy < t.compilers.(!k) then k := i)
        t.compilers;
      let start = max now t.compilers.(!k) in
      let finish = start + stats.Acsi_jit.Expand.compile_cycles in
      t.compilers.(!k) <- finish;
      (* Queue wait = enqueue to the moment a pool compiler picks the
         job up, on the virtual timeline. *)
      Acsi_obs.Hist.record t.tel_compile_wait (start - enq);
      (* The span covers the pool compiler's own busy interval
         [start, finish) — exactly [compile_cycles] long, so the
         Compilation track still reconciles with its Accounting total. *)
      Acsi_obs.Tracer.span (tracer t)
        ~track:(Accounting.component_name Accounting.Compilation)
        ~name:"opt-compile-async" ~t0:start ~t1:finish;
      let seq = t.in_flight_seq in
      t.in_flight_seq <- seq + 1;
      let ic =
        {
          ic_meth = mid;
          ic_code = code;
          ic_stats = stats;
          ic_rule_stamp = t.rules_version;
          ic_start = start;
          ic_finish = finish;
          ic_instrs_at_start = Interp.instructions_executed t.vm;
          ic_seq = seq;
        }
      in
      (* Sorted insert by (finish, seq): the install poll pops from the
         head, and with one FIFO compiler this degenerates to the plain
         append of the serial model. *)
      let before, after =
        List.partition
          (fun o ->
            o.ic_finish < ic.ic_finish
            || (o.ic_finish = ic.ic_finish && o.ic_seq < ic.ic_seq))
          t.in_flight
      in
      t.in_flight <- before @ (ic :: after))
    (policy_order t (List.rev !jobs))

let poll_async_installs t =
  let now = Interp.cycles t.vm in
  let rec go () =
    match t.in_flight with
    | ic :: rest when ic.ic_finish <= now ->
        t.in_flight <- rest;
        t.async_installs <- t.async_installs + 1;
        Acsi_obs.Tracer.instant (tracer t)
          ~track:(Accounting.component_name Accounting.Compilation)
          ~name:"install-async" ~t:now
          ~args:
            [
              ( "method",
                (Program.meth t.program ic.ic_meth).Meth.name );
              ("finished_at", string_of_int ic.ic_finish);
            ]
          ();
        t.overlap_instructions <-
          t.overlap_instructions
          + (Interp.instructions_executed t.vm - ic.ic_instrs_at_start);
        install_compiled t ic.ic_meth ic.ic_code ic.ic_stats
          ~rule_stamp:ic.ic_rule_stamp;
        go ()
    | _ -> ()
  in
  go ()

(* Cross-shard adoption: install optimized code that was compiled (and
   published) by another shard's AOS. The adopter pays no compile cycles
   — that is the point of the publish-once code cache — but the install
   still passes through the same [Jit_check] gate as local installs.
   When the publisher also shipped its closure-tier compilation
   ([native]), the tier closures are reused directly: they are
   VM-independent (runtime state flows through the [wst] record), so
   re-verifying + re-compiling them per shard would be pure waste. *)
let adopt_compiled t mid code stats ~rule_stamp ~native =
  if code.Acsi_vm.Code.assumptions <> [] then
    invalid_arg
      "System.adopt_compiled: speculative code is shard-local (its CHA \
       assumptions hold against the publisher's loaded universe, not ours)";
  if t.cfg.verify_installed then
    Acsi_analysis.Jit_check.check_exn t.program code;
  Interp.install_code t.vm mid code;
  (match native with
  | Some (fns, entry_depths) when t.cfg.native_tier ->
      Interp.install_native t.vm mid ~fns ~entry_depths
  | _ ->
      if t.cfg.native_tier then
        let gate =
          if t.cfg.verify_installed then []
          else Acsi_analysis.Jit_check.check t.program code
        in
        (match gate with
        | [] -> ( try Acsi_vm.Tier.install t.vm mid code with _ -> ())
        | _ :: _ -> ()));
  Registry.record t.registry mid stats ~rule_stamp;
  t.adopted_installs <- t.adopted_installs + 1;
  Db.record_adoption t.db ~meth:mid
    ~version:
      (match Registry.entry t.registry mid with
      | Some e -> e.Registry.version
      | None -> 0)

let run_epoch t =
  t.epochs <- t.epochs + 1;
  method_organizer t;
  dcg_organizer t;
  if t.epochs mod t.cfg.ai_period = 0 then ai_organizer t;
  if t.epochs mod t.cfg.decay_period = 0 then decay_organizer t;
  controller t;
  if t.cfg.async_compile then start_async_compiles t else compilation_thread t

(* --- listeners (VM hooks) --- *)

let take_trace_sample t vm =
  match Trace_listener.sample t.listener vm with
  | Some (trace, walked) ->
      charge ~ev:"trace-sample" t Accounting.Listeners
        (walked * t.cost.Cost.trace_sample_frame);
      t.trace_buffer <- trace :: t.trace_buffer;
      t.trace_buffer_len <- t.trace_buffer_len + 1;
      t.trace_samples <- t.trace_samples + 1
  | None -> ()

let on_timer_sample t vm =
  (* Stale speculative frames deoptimize at the first settled boundary,
     before this sample can observe (and attribute cycles to) code that
     is no longer installed. *)
  if t.cfg.speculate then drain_pending_deopt t vm;
  (* Background compilations whose finish time has passed install at this
     yield point, before any new sampling or organizer work. *)
  if t.cfg.async_compile then poll_async_installs t;
  charge ~ev:"method-sample" t Accounting.Listeners t.cost.Cost.method_sample;
  if t.cfg.trace_on_timer then take_trace_sample t vm;
  (* CCT profile: attribute this sample's period to the full source-level
     calling context. Pure observation — walks the stack but charges
     nothing, so enabling it never moves the clock. *)
  (match t.obs.Acsi_obs.Control.cprof with
  | Some cp ->
      let rev = ref [] in
      Interp.walk_source_stack vm ~f:(fun mid pc ->
          rev := (mid, pc) :: !rev;
          true);
      Acsi_obs.Cprof.add_sample cp ~stack:(List.rev !rev)
        ~weight:(Interp.sample_period vm)
  | None -> ());
  (* The method listener records the currently executing (source) method. *)
  let current = ref None in
  Interp.walk_source_stack vm ~f:(fun mid _pc ->
      current := Some mid;
      false);
  (match !current with
  | Some mid ->
      t.method_buffer <- mid :: t.method_buffer;
      t.method_buffer_len <- t.method_buffer_len + 1;
      t.method_samples <- t.method_samples + 1
  | None -> ());
  t.samples_in_epoch <- t.samples_in_epoch + 1;
  if t.samples_in_epoch >= t.cfg.organizer_period then begin
    t.samples_in_epoch <- 0;
    run_epoch t
  end

let on_invoke t vm _callee =
  if not t.cfg.trace_on_timer then take_trace_sample t vm

let on_first_execution t mid =
  let m = Program.meth t.program mid in
  let units = Meth.size_units m in
  charge ~ev:"baseline-compile" t Accounting.Compilation
    (t.cost.Cost.baseline_compile_fixed
    + (units * t.cost.Cost.baseline_compile_unit));
  t.baseline_methods <- t.baseline_methods + 1;
  t.baseline_bytes <-
    t.baseline_bytes + (units * t.cost.Cost.baseline_bytes_per_unit);
  (* Lazy baseline compilation also targets the closure tier: the gate
     here is the verification pass {!Acsi_vm.Tier.compile} runs internally
     (its [Verify.entry_depths] worklist raises on anything the full
     verifier would reject), so an unverifiable body silently stays on
     the interpreter tier and fails dynamically exactly as before. The
     hook fires before the frame is pushed, so even the first invocation
     runs on the closures. Host-side work only — no virtual charge beyond
     the baseline-compile cost above, which is tier-independent. *)
  (if t.cfg.native_tier then
     match Acsi_vm.Tier.install t.vm mid (Interp.code_of t.vm mid) with
     | () -> (
         match t.obs.Acsi_obs.Control.prov with
         | Some prov ->
             Acsi_obs.Provenance.add_tier prov mid
               Acsi_obs.Provenance.Tier_compiled
         | None -> ())
     | exception exn -> (
         Log.debug (fun f ->
             f "closure tier skipped baseline %s: %s" m.Meth.name
               (Printexc.to_string exn));
         match t.obs.Acsi_obs.Control.prov with
         | Some prov ->
             Acsi_obs.Provenance.add_tier prov mid
               (Acsi_obs.Provenance.Tier_fell_back (Printexc.to_string exn))
         | None -> ()));
  (* The static pre-warm oracle replaces the just-installed baseline code
     with summary-driven optimized code before the first frame is even
     pushed — the hook fires ahead of the push, so the very first
     invocation runs the seeded code. *)
  if t.cfg.static_seed then static_seed_install t mid

let create ?profile cfg vm =
  let program = Interp.program vm in
  let flags = Flags.create () in
  let dcg = match profile with Some d -> d | None -> Dcg.create () in
  let oracle =
    let ocfg =
      if cfg.speculate then
        { cfg.oracle_config with Acsi_jit.Oracle.speculate_unguarded = true }
      else cfg.oracle_config
    in
    Acsi_jit.Oracle.create ~config:ocfg program
  in
  let obs =
    Acsi_obs.Control.create cfg.obs
      ~probe:(Interp.cost vm).Cost.probe
      ~charge:(fun c -> Interp.charge vm c)
      ~now:(fun () -> Interp.cycles vm)
  in
  let t =
    {
      cfg;
      vm;
      program;
      cost = Interp.cost vm;
      accounting = Accounting.create ();
      db = Db.create ();
      dcg;
      registry = Registry.create program;
      hot_methods = Hot_methods.create program;
      flags;
      oracle;
      listener =
        Trace_listener.create
          ~collect_termination_stats:cfg.collect_termination_stats program
          ~policy:cfg.policy ~flags;
      (* Summaries model class-load-time analysis performed before the
         measured run starts (like verification, host-side work); the
         compiles they trigger ARE charged, at seed time. *)
      summaries =
        (if cfg.static_seed || cfg.speculate then
           Some (Acsi_analysis.Summary.analyze program)
         else None);
      static_compiling = false;
      static_seeds = 0;
      deopt_tables = Hashtbl.create 16;
      pending_deopt = [];
      guard_fails = Hashtbl.create 16;
      preexist_cache = Hashtbl.create 16;
      speculative_installs = 0;
      dropped_installs = 0;
      rules = Rules.empty ();
      rules_version = 0;
      method_buffer = [];
      method_buffer_len = 0;
      trace_buffer = [];
      trace_buffer_len = 0;
      compile_queue = Queue.create ();
      pending = Array.make (Program.method_count program) false;
      in_flight = [];
      in_flight_seq = 0;
      compilers = Array.make (max 1 cfg.compiler_pool) 0;
      async_installs = 0;
      adopted_installs = 0;
      max_queue_depth = 0;
      overlap_instructions = 0;
      overlapped_aos_cycles = 0;
      obs;
      tel_compile_wait = Acsi_obs.Hist.create ();
      tel_deopt_gap = Acsi_obs.Hist.create ();
      last_deopt = Hashtbl.create 16;
      tel_events_on = false;
      tel_events = [];
      baseline_methods = 0;
      baseline_bytes = 0;
      method_samples = 0;
      trace_samples = 0;
      samples_in_epoch = 0;
      epochs = 0;
    }
  in
  Acsi_jit.Oracle.set_on_refusal oracle (fun ~site ~callee reason ->
      let e0 = site.(0) in
      Db.record_refusal t.db ~caller:e0.Trace.caller
        ~callsite:e0.Trace.callsite ~callee ~stamp:t.rules_version reason);
  (match obs.Acsi_obs.Control.prov with
  | Some prov ->
      Acsi_jit.Oracle.set_on_decision oracle (fun info ->
          let source =
            if info.Acsi_obs.Provenance.i_speculative then
              Acsi_obs.Provenance.Speculative
            else if t.static_compiling then Acsi_obs.Provenance.Static
            else Acsi_obs.Provenance.Sampled
          in
          Acsi_obs.Provenance.add ~source prov info)
  | None -> ());
  if cfg.speculate then begin
    Acsi_jit.Oracle.set_speculation oracle
      (Some
         {
           Acsi_jit.Oracle.spec_mono = (fun sel -> loaded_mono t sel);
           spec_preexists =
             (fun root pc ->
               let a = preexist_pcs t root in
               pc >= 0 && pc < Array.length a && a.(pc));
         });
    Interp.set_on_class_load vm (fun _vm cid -> on_class_load t cid);
    Interp.set_on_guard_miss vm (fun _vm mid pc -> on_guard_miss t mid pc)
  end;
  Interp.set_on_first_execution vm (on_first_execution t);
  Interp.set_on_timer_sample vm (on_timer_sample t);
  Interp.set_on_invoke vm (on_invoke t);
  t
