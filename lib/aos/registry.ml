open Acsi_bytecode

type entry = {
  mutable version : int;
  mutable stats : Acsi_jit.Expand.stats;
  mutable rule_stamp : int;
  inlined : (int * int * int, unit) Hashtbl.t;
  inlined_methods : (int, unit) Hashtbl.t;
}

(* [method_roots] inverts the entries' [inlined_methods] sets: method id ->
   the set of roots whose *current* optimized code contains an inlined
   copy of it. The missing-edge organizer asks "which optimized roots
   contain this caller?" once per rule per pass; the inverted index
   answers from one bucket instead of a scan over every entry.
   Maintained on [record]: a recompilation first retracts the root from
   the buckets of its previous code's methods, then inserts it into the
   new ones. The root's own membership ([contains_method] is reflexively
   true) is implicit — [roots_containing] adds it back — so the index
   only tracks genuine inlined bodies. *)
type t = {
  entries : entry option array;
  method_roots : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable entry_count : int;
  mutable compilations : int;
  mutable cumulative_bytes : int;
  mutable cumulative_cycles : int;
}

let create program =
  {
    entries = Array.make (Program.method_count program) None;
    method_roots = Hashtbl.create 64;
    entry_count = 0;
    compilations = 0;
    cumulative_bytes = 0;
    cumulative_cycles = 0;
  }

let entry t (mid : Ids.Method_id.t) = t.entries.((mid :> int))

let index_remove t ~root mid =
  match Hashtbl.find_opt t.method_roots mid with
  | None -> ()
  | Some bucket ->
      Hashtbl.remove bucket root;
      if Hashtbl.length bucket = 0 then Hashtbl.remove t.method_roots mid

let index_add t ~root mid =
  let bucket =
    match Hashtbl.find_opt t.method_roots mid with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.add t.method_roots mid b;
        b
  in
  Hashtbl.replace bucket root ()

let record t (mid : Ids.Method_id.t) (stats : Acsi_jit.Expand.stats)
    ~rule_stamp =
  t.compilations <- t.compilations + 1;
  t.cumulative_bytes <- t.cumulative_bytes + stats.Acsi_jit.Expand.code_bytes;
  t.cumulative_cycles <-
    t.cumulative_cycles + stats.Acsi_jit.Expand.compile_cycles;
  let e =
    match t.entries.((mid :> int)) with
    | Some e ->
        e.version <- e.version + 1;
        e.stats <- stats;
        e.rule_stamp <- rule_stamp;
        Hashtbl.iter
          (fun m () -> index_remove t ~root:(mid :> int) m)
          e.inlined_methods;
        Hashtbl.reset e.inlined;
        Hashtbl.reset e.inlined_methods;
        e
    | None ->
        let e =
          {
            version = 1;
            stats;
            rule_stamp;
            inlined = Hashtbl.create 16;
            inlined_methods = Hashtbl.create 8;
          }
        in
        t.entries.((mid :> int)) <- Some e;
        t.entry_count <- t.entry_count + 1;
        e
  in
  List.iter
    (fun ((caller, _, callee) as edge) ->
      Hashtbl.replace e.inlined edge ();
      Hashtbl.replace e.inlined_methods caller ();
      Hashtbl.replace e.inlined_methods callee ())
    stats.Acsi_jit.Expand.inlined_edges;
  Hashtbl.iter (fun m () -> index_add t ~root:(mid :> int) m) e.inlined_methods

let has_inlined t ~root ~(caller : Ids.Method_id.t) ~callsite
    ~(callee : Ids.Method_id.t) =
  match entry t root with
  | None -> false
  | Some e ->
      Hashtbl.mem e.inlined ((caller :> int), callsite, (callee :> int))

let contains_method t ~root (mid : Ids.Method_id.t) =
  match entry t root with
  | None -> false
  | Some e ->
      Ids.Method_id.equal root mid || Hashtbl.mem e.inlined_methods (mid :> int)

let roots_containing t (mid : Ids.Method_id.t) =
  let roots =
    match Hashtbl.find_opt t.method_roots (mid :> int) with
    | None -> []
    | Some bucket -> Hashtbl.fold (fun root () acc -> root :: acc) bucket []
  in
  let roots =
    if t.entries.((mid :> int)) <> None then (mid :> int) :: roots else roots
  in
  (* Ascending root order — the same order a scan over the entries array
     visits them in, so consumers enqueue work deterministically. *)
  List.sort_uniq Int.compare roots |> List.map Ids.Method_id.of_int

let opt_method_count t = t.entry_count
let opt_compilation_count t = t.compilations

let installed_bytes t =
  Array.fold_left
    (fun acc e ->
      match e with
      | Some e -> acc + e.stats.Acsi_jit.Expand.code_bytes
      | None -> acc)
    0 t.entries

let cumulative_bytes t = t.cumulative_bytes
let cumulative_compile_cycles t = t.cumulative_cycles

let iter t ~f =
  Array.iteri
    (fun i e ->
      match e with Some e -> f (Ids.Method_id.of_int i) e | None -> ())
    t.entries

(* Executable spec of [roots_containing]: the linear scan the inverted
   index replaces. Kept for the differential tests. *)
let roots_containing_reference t mid =
  let acc = ref [] in
  iter t ~f:(fun root _entry ->
      if contains_method t ~root mid then acc := root :: !acc);
  List.rev !acc
