(** The adaptive optimization system (paper Figure 3), wired onto a VM.

    [create] installs the three hooks the VM exposes:
    - first execution of a method charges its baseline compilation;
    - the timer sample drives the method listener, and every
      [organizer_period] samples runs an organizer epoch: the method
      sample organizer and the dynamic call graph organizer drain their
      buffers, the AI organizer periodically rebuilds inlining rules from
      hot traces (and, for the adaptive-resolution policy, re-flags
      insufficiently skewed polymorphic sites), the decay organizer
      periodically decays the profile, the controller turns hot methods
      into compilation plans, and the compilation thread drains the queue
      installing optimized code;
    - the invocation stride drives the trace listener.

    All overhead cycles are charged both to the per-component accounting
    (Figure 6) and to the VM clock, so total execution time includes the
    adaptive system's own cost. *)

open Acsi_profile

type compile_queue_policy =
  | Fifo  (** enqueue order; with a pool of 1, the serial model exactly *)
  | Hot_first  (** hottest method (current sample weight) first *)
  | Deadline
      (** earliest-deadline-first, deadline = enqueue cycle + slack
          proportional to method size: small methods overtake large ones
          enqueued slightly earlier *)

val queue_policy_name : compile_queue_policy -> string
val queue_policy_of_string : string -> compile_queue_policy option

type config = {
  policy : Acsi_policy.Policy.t;
  hot_edge_threshold : float;
      (** fraction of total profile weight above which a trace becomes an
          inlining rule (the paper's 1.5%) *)
  hot_method_min_samples : float;
  hot_method_fraction : float;
  organizer_period : int;  (** method samples per organizer epoch *)
  ai_period : int;  (** organizer epochs between AI-organizer passes *)
  decay_period : int;  (** organizer epochs between decay passes *)
  decay_factor : float;
  dcg_prune_below : float;  (** drop traces whose weight decays below this *)
  oracle_config : Acsi_jit.Oracle.config;
  skew_threshold : float;
      (** adaptive resolution: a site is imprecise when its top target
          holds less than this fraction of the site's weight *)
  min_context_share : float;
      (** adaptive resolution: a deep context must hold at least this
          fraction of its site's weight for its skew to count as a
          resolution *)
  max_flag_attempts : int;
  max_opt_versions : int;  (** recompilation cap per method *)
  refusal_ttl : int;
      (** AI-organizer passes before a recorded inline refusal expires and
          the missing-edge organizer may retry (phase adaptation) *)
  merge_rules_to_edges : bool;
      (** ablation: merge hot traces into plain edges when building rules
          (the collection-time merging the paper's hybrid approach avoids) *)
  trace_on_timer : bool;
      (** ablation: drive the trace listener from the timer instead of the
          invocation stride — edge weights become time-biased *)
  enable_osr : bool;
      (** extension: on-stack-replace the innermost frame when its method
          gets (re)compiled; the paper's system activates new code only on
          the next invocation *)
  verify_installed : bool;
      (** re-verify every JIT-compiled body ({!Acsi_analysis.Jit_check})
          before installing it: typed verification plus inline-map,
          guard-domination and OSR invariants. A debug-build safety net,
          so the work happens outside the virtual clock — toggling it
          never changes cycle counts. Default [true]. *)
  native_tier : bool;
      (** second execution tier: compile each installed optimized method
          into closure/threaded code ({!Acsi_vm.Tier}), gated on the same
          {!Acsi_analysis.Jit_check} verification — a method that fails
          the gate stays on the interpreter tier (recorded in provenance
          as the tier-decision axis). Purely a host-speed change: virtual
          cycles, stdout, and every adaptive decision are bit-identical
          with the flag on or off. Default [true]. *)
  static_seed : bool;
      (** static pre-warm oracle: at method first-execution time, consult
          the interprocedural summary table ({!Acsi_analysis.Summary})
          and immediately compile methods whose summaries prove
          profitable inlining — before any sample exists. Summary
          analysis itself models class-load-time work and is uncharged
          (like verification); the seed compilations it triggers ARE
          charged at seed time. Each seeded decision is recorded in
          provenance under the [Static] source. Default [false] — all
          goldens are pinned to the purely reactive system. *)
  speculate : bool;
      (** guard-free speculative inlining with deoptimization: the
          oracle may inline a virtual site with {e no} guard when the
          site is monomorphic over the {e loaded} class universe and the
          receiver provably pre-exists the activation
          ({!Acsi_analysis.Preexist}). The CHA assumptions ride on the
          installed {!Acsi_vm.Code.t}; a class load that breaks one
          triggers a synchronous revert to baseline (inside the load
          hook, before the first instance exists — so no dispatch can
          reach the broken inline) plus downward frame transfers through
          the {!Acsi_deopt} tables at the next timer samples, and a
          recompile against the new universe. Methods whose inline
          guards fail {!deopt_guard_threshold} times at one site are
          deoptimized the same way. Also unlocks generalized multi-frame
          OSR when {!enable_osr} is on. Default [false] — all goldens
          are pinned to the guarded system. *)
  deopt_guard_threshold : int;
      (** inline-guard failures at one (method, pc) site before the
          guard-storm deopt fires. Default 32. *)
  collect_termination_stats : bool;
  async_compile : bool;
      (** compile on a background virtual thread whose cycles overlap
          mutator execution instead of stalling it: jobs start when the
          (serial) background compiler is free, finish [compile_cycles]
          later on the shared clock, and install at the first yield point
          at or after their finish time ({!poll_async_installs}). Compile
          cycles are charged to the Figure-6 component accounting but not
          to the shared clock. Default [false] — the paper's measurement
          configuration stalls, and all goldens are pinned to it. *)
  compiler_pool : int;
      (** background compiler threads sharing the compile queue (async
          model only). Each has its own busy-until timeline; a drained
          job goes to the earliest-free compiler (ties to the lowest
          index). Default [1] — byte-identical to the serial background
          thread. *)
  compile_queue_policy : compile_queue_policy;
      (** ordering of each drained compile batch before pool assignment;
          every ordering is stable over FIFO enqueue order. Default
          {!Fifo}. *)
  obs : Acsi_obs.Control.config;
      (** observability: structured tracing, inline-decision provenance
          and the CCT profile ({!Acsi_obs}). Defaults to
          {!Acsi_obs.Control.off}; with everything off the system's
          behaviour — every cycle count and every printed number — is
          byte-identical to a build without the subsystem. *)
}

val default_config : Acsi_policy.Policy.t -> config

type t

val create : ?profile:Dcg.t -> config -> Acsi_vm.Interp.t -> t
(** [profile] seeds the dynamic call graph with previously collected data
    (see {!Acsi_profile.Persist}), reproducing offline profile-directed
    inlining: the first AI-organizer pass derives rules from a mature
    profile instead of warming one up online. *)

val config : t -> config
val accounting : t -> Accounting.t
val db : t -> Db.t
val dcg : t -> Dcg.t
val registry : t -> Registry.t
val rules : t -> Rules.t
val flags : t -> Flags.t
val trace_stats : t -> Trace_listener.stats

val baseline_compiled_methods : t -> int

val static_seeded_methods : t -> int
(** Methods compiled by the static pre-warm oracle (0 unless
    {!config.static_seed}). *)

val summaries : t -> Acsi_analysis.Summary.table option
(** The interprocedural summary table computed at [create] when
    {!config.static_seed} or {!config.speculate} is on; [None]
    otherwise. *)

val speculative_installs : t -> int
(** Optimized codes installed carrying at least one CHA assumption
    (0 unless {!config.speculate}). *)

val dropped_installs : t -> int
(** Compiled codes discarded at install time because a class load broke
    an assumption between compile and install (background model). *)

val pending_deopts : t -> int
(** Reverted codes whose stale frames may still await a downward
    transfer. *)

val baseline_code_bytes : t -> int
val method_samples_taken : t -> int
val trace_samples_taken : t -> int
val epochs_run : t -> int

(** {2 Asynchronous compilation} *)

val poll_async_installs : t -> unit
(** Install every background compilation whose virtual finish time has
    passed. Called automatically at each timer sample; schedulers may
    also call it at thread switches so installs land at the earliest
    yield point. No-op when nothing is ready (and in the stalling
    model, where the in-flight queue is always empty). *)

val compile_queue_depth : t -> int
(** Recompilation requests currently queued to the compiler. *)

val max_compile_queue_depth : t -> int
(** High-water mark of the compile queue over the run. *)

val in_flight_compiles : t -> int
(** Background compilations finished by the compiler model but not yet
    past their virtual finish time (always 0 in the stalling model). *)

val async_installs : t -> int
(** Code installations performed by the background compilation model. *)

val compiler_pool_size : t -> int

val adopt_compiled :
  t ->
  Acsi_bytecode.Ids.Method_id.t ->
  Acsi_vm.Code.t ->
  Acsi_jit.Expand.stats ->
  rule_stamp:int ->
  native:(Acsi_vm.Interp.nfn array * int array) option ->
  unit
(** Install optimized code compiled by another AOS instance (a shard's
    publish-once code-cache hit): the adopter pays no compile cycles,
    but the install still passes the {!config.verify_installed}
    [Jit_check] gate. [native], when provided and {!config.native_tier}
    is on, reuses the publisher's closure-tier compilation — closures
    are VM-independent, runtime state flows through the interpreter's
    window-state record. Recorded in the {!Db} adoption log and in
    {!adopted_installs}. Raises [Invalid_argument] on assumption-carrying
    (speculative) code: its CHA proofs hold against the publisher's
    loaded universe, not the adopter's. *)

val adopted_installs : t -> int
(** Cross-shard adoptions performed via {!adopt_compiled}. *)

val async_overlap_instructions : t -> int
(** Mutator instructions retired between background-compile job starts
    and their installs, summed over all jobs: positive means mutator
    execution demonstrably overlapped compilation. *)

val overlapped_aos_cycles : t -> int
(** AOS cycles charged to the per-component accounting but NOT to the
    shared virtual clock: exactly the background-compilation cycles the
    async model overlaps with mutator execution (always 0 in the
    stalling model). The accounting identity every run satisfies is
    [app_cycles = total_cycles - (aos_total - overlapped_aos_cycles)] —
    subtracting the raw accounting total from the clock would double
    count work the clock never saw. *)

(** {2 Observability} *)

val obs : t -> Acsi_obs.Control.t
(** The run's observability bundle (tracer + provenance + CCT profile),
    as configured by {!config.obs}. *)

val tracer : t -> Acsi_obs.Tracer.t
val provenance : t -> Acsi_obs.Provenance.t option
val cprof : t -> Acsi_obs.Cprof.t option

(** {2 Fleet telemetry}

    Always-on, off-the-clock instrumentation: recording reads the
    virtual clock but never charges it, so it cannot perturb any run
    (all pinned goldens are byte-identical with or without a consumer).
    The histograms live in {!Acsi_obs.Hist}'s log-bucketed
    representation and merge across shards. *)

val compile_wait_hist : t -> Acsi_obs.Hist.t
(** Virtual cycles each compile job spent queued: enqueue to the moment
    a compiler (the stalling thread, or a pool compiler's timeline)
    begins it. *)

val deopt_gap_hist : t -> Acsi_obs.Hist.t
(** Deopt-to-recompile gap: virtual cycles from a method's reversion
    ({!pending_deopts} growing) to the install of its replacement
    optimized code. *)

(** One fleet-telemetry event, timestamped on this VM's virtual clock.
    [Tel_deopt.invalidated] distinguishes CHA-invalidation deopts from
    guard storms; [Tel_reinstall.gap] is the matching deopt-to-recompile
    gap also recorded in {!deopt_gap_hist}. *)
type tel_event =
  | Tel_deopt of { mid : int; at : int; invalidated : bool }
  | Tel_reinstall of { mid : int; at : int; gap : int }

val set_telemetry_events : t -> bool -> unit
(** Turn the telemetry event log on or off (default off — the sharded
    server enables it and drains at every round barrier, bounding the
    log; unconsumed logs would grow with the run). *)

val take_telemetry_events : t -> tel_event list
(** Drain the pending event log, oldest first. *)

(** {2 Organizer kernels and their executable specs}

    The adaptive-resolution and missing-edge organizers run on indexed
    data (DCG site views, the registry's inverted method->roots index).
    The pre-index implementations are kept as reference specs; the
    [test_brain] differential suite pins each optimized kernel to its
    spec on generated inputs. *)

val flag_decisions :
  Dcg.t ->
  skew_threshold:float ->
  min_context_share:float ->
  (Acsi_bytecode.Ids.Method_id.t * int * bool) list
(** Adaptive-resolution verdicts, one per polymorphic site (>= 2 recorded
    callees): [(caller, callsite, resolve)] where [resolve = true] means
    the site's distribution is already skewed (directly or through a
    sufficiently heavy deep context) and tracing can stop. Unordered. *)

val flag_decisions_reference :
  Dcg.t ->
  skew_threshold:float ->
  min_context_share:float ->
  (Acsi_bytecode.Ids.Method_id.t * int * bool) list
(** Spec for {!flag_decisions}: flat aggregate rebuild + nested folds. *)

val recompile_candidates :
  Registry.t ->
  caller:Acsi_bytecode.Ids.Method_id.t ->
  callsite:int ->
  callee:Acsi_bytecode.Ids.Method_id.t ->
  rules_version:int ->
  max_opt_versions:int ->
  Acsi_bytecode.Ids.Method_id.t list
(** The missing-edge organizer's per-rule query: optimized roots that
    contain [caller], are stale w.r.t. [rules_version], have version
    headroom, and have not inlined the edge. Ascending root order. *)

val recompile_candidates_reference :
  Registry.t ->
  caller:Acsi_bytecode.Ids.Method_id.t ->
  callsite:int ->
  callee:Acsi_bytecode.Ids.Method_id.t ->
  rules_version:int ->
  max_opt_versions:int ->
  Acsi_bytecode.Ids.Method_id.t list
(** Spec for {!recompile_candidates}: a scan over every registry entry. *)
