(** The AOS database (paper §3.2): a central repository of compilation
    decisions and events.

    Its load-bearing use here is recording the optimizing compiler's
    refusals to inline particular call edges, so the missing-edge organizer
    does not keep recommending a recompilation the compiler will reject
    again. It also keeps a log of compilation events for reporting. *)

open Acsi_bytecode

type compilation_event = {
  ce_method : Ids.Method_id.t;
  ce_version : int;
  ce_units : int;
  ce_bytes : int;
  ce_cycles : int;
  ce_inlines : int;
  ce_guards : int;
}

type t

val create : unit -> t

val record_refusal :
  t ->
  caller:Ids.Method_id.t ->
  callsite:int ->
  callee:Ids.Method_id.t ->
  stamp:int ->
  Acsi_jit.Oracle.refusal_reason ->
  unit
(** [stamp] is the rules version current when the compiler refused; the
    refusal expires once the profile has moved far enough past it. *)

val refused :
  t ->
  caller:Ids.Method_id.t ->
  callsite:int ->
  callee:Ids.Method_id.t ->
  now:int ->
  ttl:int ->
  bool
(** Whether an unexpired refusal is on record: one stamped within [ttl]
    rules versions of [now]. Expiry is what lets the system revisit a
    refusal after the profile shifts (e.g. a program phase change). *)

val refusal_count : t -> int

val refusal_reasons : t -> (Acsi_jit.Oracle.refusal_reason * int) list
(** Recorded refusals broken down by reason, one entry per reason in
    {!Acsi_jit.Oracle.all_refusal_reasons} order (zero counts included).
    An edge refused more than once counts once, under its latest
    reason; the counts sum to {!refusal_count}. *)

val record_compilation : t -> compilation_event -> unit
val compilations : t -> compilation_event list
(** Oldest first. *)

val record_adoption : t -> meth:Ids.Method_id.t -> version:int -> unit
(** Log that optimized code compiled elsewhere (another shard's AOS)
    was adopted from the shared publish-once code cache, rather than
    compiled locally. *)

val adoptions : t -> (Ids.Method_id.t * int) list
(** Oldest first. *)

val adoption_count : t -> int
