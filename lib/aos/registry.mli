(** Registry of optimizing-compiler output: one entry per method that has
    been opt-compiled, tracking its current version, expansion statistics,
    the set of call edges its current code has inlined (consumed by the
    missing-edge organizer), and the rules version it was compiled
    against. Also aggregates the code-space and compile-time totals the
    evaluation reports. *)

open Acsi_bytecode

type entry = {
  mutable version : int;
  mutable stats : Acsi_jit.Expand.stats;
  mutable rule_stamp : int;  (** rules version the code was built against *)
  inlined : (int * int * int, unit) Hashtbl.t;
      (** (source caller, source pc, callee) edges inlined in current code *)
  inlined_methods : (int, unit) Hashtbl.t;
      (** methods whose bodies appear inlined in current code (callees and
          inline parents) — the roots whose code contains a given call
          site, needed by the missing-edge organizer *)
}

type t

val create : Program.t -> t

val record : t -> Ids.Method_id.t -> Acsi_jit.Expand.stats -> rule_stamp:int -> unit
(** Record a(nother) compilation of the method; bumps its version and
    replaces its inlined-edge set. *)

val entry : t -> Ids.Method_id.t -> entry option

val has_inlined :
  t -> root:Ids.Method_id.t -> caller:Ids.Method_id.t -> callsite:int ->
  callee:Ids.Method_id.t -> bool
(** Whether [root]'s current optimized code inlined the given source
    edge. *)

val contains_method : t -> root:Ids.Method_id.t -> Ids.Method_id.t -> bool
(** Whether [root]'s current code contains (an inlined copy of) the given
    method's body — i.e. call sites of that method may live inside
    [root]'s code. *)

val roots_containing : t -> Ids.Method_id.t -> Ids.Method_id.t list
(** Every opt-compiled root [r] with [contains_method ~root:r mid], in
    ascending method-id order (the order a scan over the registry visits
    entries). Served from an inverted method->roots index maintained on
    {!record}; cost is the size of the answer, not of the registry. *)

val roots_containing_reference : t -> Ids.Method_id.t -> Ids.Method_id.t list
(** Executable spec of {!roots_containing}: a linear scan over every
    entry. For differential tests; must agree exactly. *)

val opt_method_count : t -> int
(** Methods with an entry; served from a maintained counter, O(1). *)

val opt_compilation_count : t -> int

val installed_bytes : t -> int
(** Bytes of currently installed optimized code. *)

val cumulative_bytes : t -> int
(** Bytes of optimized code generated over the whole run, counting
    recompilations (the paper's Figure 5 metric: space consumed by the
    optimizing compiler's output). *)

val cumulative_compile_cycles : t -> int

val iter : t -> f:(Ids.Method_id.t -> entry -> unit) -> unit
