open Acsi_bytecode

type compilation_event = {
  ce_method : Ids.Method_id.t;
  ce_version : int;
  ce_units : int;
  ce_bytes : int;
  ce_cycles : int;
  ce_inlines : int;
  ce_guards : int;
}

type t = {
  refusals : (int * int * int, int * Acsi_jit.Oracle.refusal_reason) Hashtbl.t;
  mutable events_rev : compilation_event list;
  mutable adoptions_rev : (Ids.Method_id.t * int) list;
}

let create () =
  { refusals = Hashtbl.create 64; events_rev = []; adoptions_rev = [] }

let key ~(caller : Ids.Method_id.t) ~callsite ~(callee : Ids.Method_id.t) =
  ((caller :> int), callsite, (callee :> int))

let record_refusal t ~caller ~callsite ~callee ~stamp reason =
  Hashtbl.replace t.refusals (key ~caller ~callsite ~callee) (stamp, reason)

let refused t ~caller ~callsite ~callee ~now ~ttl =
  match Hashtbl.find_opt t.refusals (key ~caller ~callsite ~callee) with
  | Some (stamp, _) -> now - stamp <= ttl
  | None -> false

let refusal_count t = Hashtbl.length t.refusals

let refusal_reasons t =
  let count r =
    Hashtbl.fold
      (fun _ (_, reason) acc -> if reason = r then acc + 1 else acc)
      t.refusals 0
  in
  List.map (fun r -> (r, count r)) Acsi_jit.Oracle.all_refusal_reasons
let record_compilation t e = t.events_rev <- e :: t.events_rev
let compilations t = List.rev t.events_rev

let record_adoption t ~meth ~version =
  t.adoptions_rev <- (meth, version) :: t.adoptions_rev

let adoptions t = List.rev t.adoptions_rev
let adoption_count t = List.length t.adoptions_rev
