(* Log-bucketed integer histogram (HDR-style, power-of-two sub-bucketed).

   Values below [2^sub_bits] get exact unit buckets; above that, each
   power-of-two range [2^e, 2^(e+1)) is split into [2^sub_bits] equal
   sub-buckets of width [2^(e - sub_bits)], so the bucket width never
   exceeds value / 2^sub_bits — a bounded *relative* error.  Recording
   is a handful of integer ops and touches one array slot: cheap enough
   to stay on in the million-session server paths.  Quantiles are
   nearest-rank over the cumulative bucket counts and return the
   bucket's upper edge clamped to the recorded maximum, so
   [exact <= quantile <= exact + exact/2^sub_bits + 1] against the
   full-sort reference spec in [Acsi_server.Load.percentile]. *)

type t = {
  sub_bits : int;
  sub : int; (* 2^sub_bits sub-buckets per power-of-two range *)
  counts : int array;
  mutable count : int;
  mutable sum : int; (* exact sum of recorded values *)
  mutable max_v : int;
  mutable min_v : int;
}

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 16 then
    invalid_arg "Hist.create: sub_bits out of [1,16]";
  let sub = 1 lsl sub_bits in
  {
    sub_bits;
    sub;
    counts = Array.make (sub * (64 - sub_bits)) 0;
    count = 0;
    sum = 0;
    max_v = min_int;
    min_v = max_int;
  }

let sub_bits t = t.sub_bits
let count t = t.count
let sum t = t.sum
let max_value t = if t.count = 0 then 0 else t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v

(* Position of the most significant set bit of [v > 0]. *)
let msb v =
  let e = ref 0 in
  let x = ref (v lsr 1) in
  while !x > 0 do
    incr e;
    x := !x lsr 1
  done;
  !e

let index t v =
  if v < t.sub then v
  else
    let e = msb v in
    (t.sub * (e - t.sub_bits + 1)) + ((v lsr (e - t.sub_bits)) - t.sub)

(* Inclusive [lo, hi] range of bucket [i] — inverse of [index]. *)
let bounds t i =
  if i < t.sub then (i, i)
  else
    let q = i / t.sub and r = i mod t.sub in
    let width = 1 lsl (q - 1) in
    let lo = (t.sub + r) * width in
    (lo, lo + width - 1)

let record_n t v n =
  if n < 0 then invalid_arg "Hist.record_n: negative count";
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(index t v) <- t.counts.(index t v) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v > t.max_v then t.max_v <- v;
    if v < t.min_v then t.min_v <- v
  end

let record t v = record_n t v 1

let merge ~into src =
  if into.sub_bits <> src.sub_bits then
    invalid_arg "Hist.merge: sub_bits mismatch";
  Array.iteri
    (fun i n -> if n > 0 then into.counts.(i) <- into.counts.(i) + n)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    if src.min_v < into.min_v then into.min_v <- src.min_v
  end

let copy t =
  {
    t with
    counts = Array.copy t.counts;
  }

let quantile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Hist.quantile: p out of [0,100]";
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = min t.count (max 1 rank) in
    let cum = ref 0 in
    let i = ref 0 in
    let n = Array.length t.counts in
    while !cum < rank && !i < n do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let _, hi = bounds t (!i - 1) in
    min hi t.max_v
  end

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let iter_buckets t ~f =
  Array.iteri
    (fun i n ->
      if n > 0 then
        let lo, hi = bounds t i in
        f ~lo ~hi ~count:n)
    t.counts

let checksum t =
  let acc = ref 17 in
  Array.iteri
    (fun i n ->
      if n > 0 then acc := (((!acc * 31) + i) * 31) + n land max_int)
    t.counts;
  ((!acc * 31) + t.sum) land max_int
