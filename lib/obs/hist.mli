(** Log-bucketed integer histograms (HDR-style power-of-two sub-bucketing).

    The fleet-telemetry workhorse: session latencies, steal distances,
    compile-queue waits and deopt-to-recompile gaps are all recorded into
    these. Values below [2^sub_bits] get exact unit-width buckets; above
    that every power-of-two range is split into [2^sub_bits] equal
    sub-buckets, bounding the bucket width by [value / 2^sub_bits].

    Determinism contract: a histogram is a pure function of the multiset
    of recorded values — insertion order, host parallelism and merge
    order never change any observable (count, sum, quantiles, buckets).
    Recording is allocation-free after {!create}.

    Accuracy contract (pinned by the QCheck differential in
    [test/test_obs.ml]): for any recorded multiset and percentile [p],
    {!quantile} brackets the exact nearest-rank reference spec
    [Acsi_server.Load.percentile]:
    [exact <= quantile <= exact + exact/2^sub_bits + 1]. *)

type t

val create : ?sub_bits:int -> unit -> t
(** Fresh empty histogram. [sub_bits] (default 5, i.e. 32 sub-buckets,
    ~3% worst-case relative error) must be in [[1,16]]. *)

val sub_bits : t -> int

val record : t -> int -> unit
(** Record one value. Negative values clamp to 0. *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [v] with multiplicity [n >= 0]. *)

val count : t -> int
(** Exact number of recorded values. *)

val sum : t -> int
(** Exact sum of recorded (clamped) values — not bucket-approximated. *)

val max_value : t -> int
(** Exact largest recorded value (0 when empty). *)

val min_value : t -> int
(** Exact smallest recorded value (0 when empty). *)

val mean : t -> float

val merge : into:t -> t -> unit
(** Add every bucket of the source into [into]. The two histograms must
    share [sub_bits]. Equivalent to replaying the source's recordings. *)

val copy : t -> t

val quantile : t -> float -> int
(** [quantile t p] for [p] in [[0,100]]: nearest-rank quantile over the
    cumulative bucket counts, returning the owning bucket's upper edge
    clamped to {!max_value} (so [quantile t 100.0 = max_value t]).
    0 when empty. *)

val iter_buckets : t -> f:(lo:int -> hi:int -> count:int -> unit) -> unit
(** Visit non-empty buckets in ascending value order with their
    inclusive [lo..hi] value range — the export surface for OpenMetrics
    and JSONL rendering in {!Export}. *)

val checksum : t -> int
(** Order-insensitive fingerprint of (buckets, sum) for determinism
    checks in [BENCH_results.json]. *)
