(** Fixed-interval virtual-clock time-series.

    Gauges and cumulative counters sampled on a fixed column schema at
    virtual-clock interval boundaries — quantum ticks in the single-VM
    server ({!Acsi_server.Server}), round barriers in the sharded fleet
    ({!Acsi_server.Shards}). Because every timestamp is virtual, a
    series is a pure function of (program, config, seed): byte-identical
    across [--jobs] and across repeated runs. Rendering to JSONL and
    OpenMetrics text lives in {!Export}; the sparkline renderer here
    backs the [bench --serve] warmup-curve panel. *)

type t

val create : interval:int -> columns:string list -> t
(** Fresh series sampling the given non-empty column schema every
    [interval > 0] virtual cycles. *)

val interval : t -> int
val columns : t -> string list

val length : t -> int
(** Number of rows sampled so far. *)

val sample : t -> now:int -> int array -> unit
(** Append one row stamped at virtual time [now]. The value array must
    match the column schema's arity; callers sample at interval
    boundaries in ascending time order. *)

val row : t -> int -> int * int array
(** [row t i] is the [(time, values)] pair of row [i] (a fresh copy). *)

val iter : t -> f:(now:int -> int array -> unit) -> unit
(** Visit rows oldest-first. *)

val column : t -> string -> int array
(** One column's values over time. Raises on unknown names. *)

val last : t -> string -> int
(** Final value of a column (0 when the series is empty) — how callers
    read end-of-run totals out of cumulative counter columns. *)

val checksum : t -> int
(** Order-sensitive fingerprint over (time, values) rows for the
    determinism checks in [BENCH_results.json]. *)

val spark : int array -> string
(** Render values as one UTF-8 block character each ([▁]..[█]), scaled
    so the maximum maps to the full block; all-zero input flatlines at
    [▁]. *)

val sparkline : t -> string -> string
(** {!spark} over {!column}. *)
