(** The structured event tracer: a fixed-capacity ring buffer of spans,
    counters and instants, timestamped in virtual cycles.

    Every AOS component charge, scheduler slice and server request can be
    recorded here and exported ({!Export}) as a Chrome trace-event file
    (Perfetto-loadable) or a JSONL event log. Two contracts matter:

    - {b Determinism}: the event stream is a pure function of the run.
      Emitting events never perturbs the virtual clock or any decision —
      unless the probe-cost model is explicitly enabled (below).
    - {b Reconciliation}: a span is emitted for every cycle charged to an
      AOS component, with the component's name as its track, so summed
      span durations per track equal the {!Acsi_aos.Accounting} totals
      exactly (see {!Export.track_totals}).

    A disabled tracer ({!null}, or [enabled = false]) allocates nothing:
    every emit function checks {!enabled} first and returns immediately.
    Callers that would allocate arguments for an event (labels, arg
    lists) should guard on {!enabled} themselves.

    {b Probe-cost model}: real tracing is not free. When the tracer is
    created with [probe > 0], every recorded event charges [probe]
    cycles to the virtual clock through the [charge] callback — the
    modeled cost of the probe itself, visible to the timer and therefore
    to sampling and compilation decisions. The default probe cost lives
    in {!Acsi_vm.Cost.t} ([probe]) and is only applied when explicitly
    requested, so tracing is a zero-cost observer unless the experiment
    asks to measure its own overhead. Probe cycles are deliberately NOT
    charged to any AOS component: they would otherwise break the
    reconciliation contract above. *)

type flow_dir =
  | Out  (** the originating half of a flow arrow *)
  | In  (** the receiving half *)

type event =
  | Span of { track : string; name : string; t0 : int; t1 : int }
      (** [cycles t0 <= t1]; duration [t1 - t0] on [track]. *)
  | Counter of { track : string; name : string; t : int; value : int }
  | Instant of {
      track : string;
      name : string;
      t : int;
      args : (string * string) list;
    }
  | Flow of { track : string; name : string; t : int; id : int; dir : flow_dir }
      (** Half of a cross-track flow arrow (Perfetto [ph:"s"]/[ph:"f"]):
          the two halves share [id] and render as an arrow from the [Out]
          track/time to the [In] track/time — how cross-shard steal,
          adopt and deopt hand-offs are linked in the fleet export. The
          conservation witness in the test suite demands exactly one
          [Out] and one [In] per id. *)

type t

val null : t
(** The disabled tracer: never records, never allocates. *)

val create : ?probe:int -> ?charge:(int -> unit) -> capacity:int -> unit -> t
(** An enabled tracer holding at most [capacity] events (oldest dropped
    first once full — see {!dropped}). [probe] (default 0) is the
    on-clock cost charged through [charge] per recorded event. Raises
    [Invalid_argument] if [capacity <= 0]. *)

val enabled : t -> bool

val span : t -> track:string -> name:string -> t0:int -> t1:int -> unit
(** Record a complete span. No-op when disabled or [t1 <= t0] — zero
    durations would only clutter the export and contribute nothing to
    reconciliation. *)

val counter : t -> track:string -> name:string -> t:int -> value:int -> unit

val instant :
  t -> track:string -> name:string -> t:int -> ?args:(string * string) list ->
  unit -> unit

val flow :
  t -> track:string -> name:string -> t:int -> id:int -> dir:flow_dir -> unit
(** Record one half of a flow arrow (see {!event}). *)

val length : t -> int
(** Events currently held (<= capacity). *)

val dropped : t -> int
(** Events evicted because the ring was full. A non-zero value voids the
    reconciliation contract for this run; raise the capacity. *)

val iter : t -> f:(event -> unit) -> unit
(** Oldest first. *)
