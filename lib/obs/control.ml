type config = {
  trace : bool;
  provenance : bool;
  cprof : bool;
  capacity : int;
  probe_on_clock : bool;
}

let off =
  {
    trace = false;
    provenance = false;
    cprof = false;
    capacity = 65536;
    probe_on_clock = false;
  }

let enabled c = c.trace || c.provenance || c.cprof

type t = {
  tracer : Tracer.t;
  prov : Provenance.t option;
  cprof : Cprof.t option;
}

let disabled = { tracer = Tracer.null; prov = None; cprof = None }

let create config ~probe ~charge ~now =
  let tracer =
    if config.trace then
      let probe = if config.probe_on_clock then probe else 0 in
      Tracer.create ~probe ~charge ~capacity:config.capacity ()
    else Tracer.null
  in
  let prov = if config.provenance then Some (Provenance.create ~now ()) else None in
  let cprof = if config.cprof then Some (Cprof.create ()) else None in
  { tracer; prov; cprof }
