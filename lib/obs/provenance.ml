open Acsi_bytecode
open Acsi_profile

type outcome = Inlined of { guarded : bool } | Refused of string

type info = {
  i_root : Ids.Method_id.t;
  i_context : Trace.entry array;
  i_callee : Ids.Method_id.t option;
  i_outcome : outcome;
  i_match_depth : int;
  i_match_weight : float;
  i_matched_rule : Trace.t option;
  i_inline_depth : int;
  i_expanded_units : int;
  i_est : int;
  i_budget_limit : int;
  i_budget_ext_limit : int;
  i_speculative : bool;
}

type source = Sampled | Static | Speculative

type decision = {
  d_seq : int;
  d_cycle : int;
  d_source : source;
  d_info : info;
}

type tier_outcome =
  | Tier_compiled
  | Tier_rejected of string
  | Tier_fell_back of string

type tier_decision = {
  td_seq : int;
  td_cycle : int;
  td_meth : Ids.Method_id.t;
  td_outcome : tier_outcome;
}

type t = {
  now : unit -> int;
  mutable rev : decision list;
  mutable count : int;
  mutable tier_rev : tier_decision list;
  mutable tier_count : int;
}

let create ?(now = fun () -> 0) () =
  { now; rev = []; count = 0; tier_rev = []; tier_count = 0 }

let add ?(source = Sampled) t info =
  t.rev <-
    { d_seq = t.count; d_cycle = t.now (); d_source = source; d_info = info }
    :: t.rev;
  t.count <- t.count + 1

let add_tier t meth outcome =
  t.tier_rev <-
    {
      td_seq = t.tier_count;
      td_cycle = t.now ();
      td_meth = meth;
      td_outcome = outcome;
    }
    :: t.tier_rev;
  t.tier_count <- t.tier_count + 1

let count t = t.count
let all t = List.rev t.rev
let tier_count t = t.tier_count
let tier_all t = List.rev t.tier_rev

let tier_outcome_counts t =
  List.fold_left
    (fun (c, r, f) d ->
      match d.td_outcome with
      | Tier_compiled -> (c + 1, r, f)
      | Tier_rejected _ -> (c, r + 1, f)
      | Tier_fell_back _ -> (c, r, f + 1))
    (0, 0, 0) t.tier_rev

let at t ~(caller : Ids.Method_id.t) ?callsite () =
  List.filter
    (fun d ->
      let e0 = d.d_info.i_context.(0) in
      Ids.Method_id.equal e0.Trace.caller caller
      && match callsite with None -> true | Some pc -> e0.Trace.callsite = pc)
    (all t)

let outcome_counts t =
  List.fold_left
    (fun (i, r) d ->
      match d.d_info.i_outcome with
      | Inlined _ -> (i + 1, r)
      | Refused _ -> (i, r + 1))
    (0, 0) t.rev

let source_counts t =
  List.fold_left
    (fun (sampled, static, speculative) d ->
      match d.d_source with
      | Sampled -> (sampled + 1, static, speculative)
      | Static -> (sampled, static + 1, speculative)
      | Speculative -> (sampled, static, speculative + 1))
    (0, 0, 0) t.rev

let pp_context ~name fmt (ctx : Trace.entry array) =
  Array.iteri
    (fun i (e : Trace.entry) ->
      if i > 0 then Format.fprintf fmt " < ";
      Format.fprintf fmt "%s:%d" (name e.Trace.caller) e.Trace.callsite)
    ctx

let pp_decision ~name fmt d =
  let i = d.d_info in
  let callee =
    match i.i_callee with Some mid -> name mid | None -> "<no candidate>"
  in
  let verdict =
    match i.i_outcome with
    | Inlined { guarded = true } -> "INLINED (guarded)"
    | Inlined { guarded = false } when i.i_speculative ->
        "INLINED (speculative, no guard)"
    | Inlined { guarded = false } -> "INLINED"
    | Refused reason -> "refused: " ^ reason
  in
  Format.fprintf fmt "@[<v 2>#%d @@%d cycles%s  %a -> %s  %s@," d.d_seq
    d.d_cycle
    (match d.d_source with
    | Sampled -> ""
    | Static -> " [static]"
    | Speculative -> " [speculative]")
    (pp_context ~name) i.i_context callee verdict;
  (match (d.d_source, i.i_matched_rule, i.i_match_depth) with
  | Static, _, _ ->
      Format.fprintf fmt
        "static oracle: summary-driven, decided before any samples@,"
  | Speculative, _, _ ->
      Format.fprintf fmt
        "speculative oracle: loaded-CHA monomorphic + pre-existing \
         receiver, deopt on invalidation@,"
  | Sampled, Some rule, depth ->
      Format.fprintf fmt
        "matched rule %a (Eq.3 match depth %d of %d, weight %.2f)@," Trace.pp
        rule depth
        (Array.length i.i_context)
        i.i_match_weight
  | Sampled, None, _ ->
      Format.fprintf fmt "no profile rule matched (static heuristics only)@,");
  Format.fprintf fmt
    "budget: est %d units, expanded %d, limit %d (extended %d), inline depth \
     %d, root %s@]"
    i.i_est i.i_expanded_units i.i_budget_limit i.i_budget_ext_limit
    i.i_inline_depth (name i.i_root)

let pp_tier_decision ~name fmt d =
  let verdict =
    match d.td_outcome with
    | Tier_compiled -> "closure-tier COMPILED"
    | Tier_rejected why -> "closure-tier rejected: " ^ why
    | Tier_fell_back why -> "closure-tier fell back: " ^ why
  in
  Format.fprintf fmt "tier #%d @@%d cycles  %s  %s" d.td_seq d.td_cycle
    (name d.td_meth) verdict
