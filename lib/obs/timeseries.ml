(* Fixed-interval virtual-clock time-series.

   A run samples a fixed column schema (gauges and cumulative counters)
   at interval boundaries of the *virtual* clock — quantum ticks in the
   single-VM server, round barriers in the sharded fleet — so a series
   is a pure function of (program, config, seed) and byte-identical
   across host parallelism. Storage is one flat growable int array
   (row-major), allocation-light on the sampling path. *)

type t = {
  interval : int;
  columns : string array;
  ncols : int;
  mutable times : int array;
  mutable data : int array; (* row-major, ncols per row *)
  mutable len : int; (* rows *)
}

let create ~interval ~columns =
  if interval <= 0 then invalid_arg "Timeseries.create: interval <= 0";
  if columns = [] then invalid_arg "Timeseries.create: no columns";
  let columns = Array.of_list columns in
  let ncols = Array.length columns in
  {
    interval;
    columns;
    ncols;
    times = Array.make 16 0;
    data = Array.make (16 * ncols) 0;
    len = 0;
  }

let interval t = t.interval
let columns t = Array.to_list t.columns
let length t = t.len

let ensure t =
  if t.len = Array.length t.times then begin
    let cap = 2 * t.len in
    let times = Array.make cap 0 in
    Array.blit t.times 0 times 0 t.len;
    t.times <- times;
    let data = Array.make (cap * t.ncols) 0 in
    Array.blit t.data 0 data 0 (t.len * t.ncols);
    t.data <- data
  end

let sample t ~now values =
  if Array.length values <> t.ncols then
    invalid_arg "Timeseries.sample: wrong arity";
  ensure t;
  t.times.(t.len) <- now;
  Array.blit values 0 t.data (t.len * t.ncols) t.ncols;
  t.len <- t.len + 1

let row t i =
  if i < 0 || i >= t.len then invalid_arg "Timeseries.row: out of range";
  (t.times.(i), Array.sub t.data (i * t.ncols) t.ncols)

let iter t ~f =
  for i = 0 to t.len - 1 do
    f ~now:t.times.(i) (Array.sub t.data (i * t.ncols) t.ncols)
  done

let column_index t name =
  let rec find i =
    if i = t.ncols then invalid_arg ("Timeseries.column: unknown " ^ name)
    else if t.columns.(i) = name then i
    else find (i + 1)
  in
  find 0

let column t name =
  let c = column_index t name in
  Array.init t.len (fun i -> t.data.((i * t.ncols) + c))

let last t name =
  if t.len = 0 then 0
  else t.data.(((t.len - 1) * t.ncols) + column_index t name)

let checksum t =
  let acc = ref 17 in
  for i = 0 to t.len - 1 do
    acc := (!acc * 31) + t.times.(i);
    for c = 0 to t.ncols - 1 do
      acc := ((!acc * 31) + t.data.((i * t.ncols) + c)) land max_int
    done
  done;
  !acc land max_int

(* --- sparklines --- *)

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* Render [values] as one block character each, scaled so the maximum
   maps to the full block. All-zero (or empty) input renders as the
   lowest block throughout — a flatline, not an error. *)
let spark values =
  let hi = Array.fold_left max 0 values in
  let b = Buffer.create (Array.length values * 3) in
  Array.iter
    (fun v ->
      let v = if v < 0 then 0 else v in
      let i = if hi = 0 then 0 else v * 7 / hi in
      Buffer.add_string b blocks.(i))
    values;
  Buffer.contents b

let sparkline t name = spark (column t name)
